package uplan

import (
	"sort"
	"strings"
	"testing"

	"uplan/internal/bench"
	"uplan/internal/convert"
	"uplan/internal/core"
)

// canonicalPlanText renders a plan with every property list sorted by
// (category, name, rendered value), so representations that only differ
// in property insertion order — the legacy map[string]any decoders
// iterate JSON objects in random map order, the streaming decoder in
// document order — serialize to identical bytes.
func canonicalPlanText(p *core.Plan) string {
	cp := p.Clone()
	sortProps := func(props []core.Property) {
		sort.SliceStable(props, func(i, j int) bool {
			if props[i].Category != props[j].Category {
				return props[i].Category < props[j].Category
			}
			if props[i].Name != props[j].Name {
				return props[i].Name < props[j].Name
			}
			return props[i].Value.String() < props[j].Value.String()
		})
	}
	sortProps(cp.Properties)
	cp.Walk(func(n *core.Node, _ int) { sortProps(n.Properties) })
	return cp.MarshalIndentedText()
}

// TestStreamingDecoderMatchesLegacyPath is the differential guard for the
// streaming JSON decode port: across the full nine-dialect benchmark
// corpus, the streaming decoders must produce byte-identical canonical
// plans to the retained map[string]any reference path
// (convert.LegacyConvert). Non-JSON records flow through the shared
// text/table/XML parsers in both paths and keep the corpus honest about
// covering all nine dialects.
//
// Known, deliberate divergence not exercised by the corpus: composite
// property values (objects/arrays used as scalars). The streaming path
// captures them as compacted source text — original key order and
// escaping — while the legacy path re-marshals the decoded tree (sorted
// keys, HTML escaping). The corpus engines emit composites with sorted
// keys and Go-marshal escaping, so both forms coincide here; inputs with
// unsorted composite keys would legitimately differ.
func TestStreamingDecoderMatchesLegacyPath(t *testing.T) {
	corpus, err := bench.Corpus(42)
	if err != nil {
		t.Fatal(err)
	}
	jsonRecords := 0
	for i, rec := range corpus {
		trimmed := strings.TrimSpace(rec.Serialized)
		isJSON := strings.HasPrefix(trimmed, "{") || strings.HasPrefix(trimmed, "[")
		if isJSON {
			jsonRecords++
		}
		got, err := Convert(rec.Dialect, rec.Serialized)
		if err != nil {
			t.Fatalf("record %d (%s): streaming convert: %v", i, rec.Dialect, err)
		}
		want, err := convert.LegacyConvert(rec.Dialect, rec.Serialized)
		if err != nil {
			t.Fatalf("record %d (%s): legacy convert: %v", i, rec.Dialect, err)
		}
		if g, w := canonicalPlanText(got), canonicalPlanText(want); g != w {
			t.Errorf("record %d (%s): streaming and legacy plans diverge\n--- streaming ---\n%s\n--- legacy ---\n%s",
				i, rec.Dialect, g, w)
		}
		// The structural fingerprint — QPG's dedup key — must agree too.
		opts := core.FingerprintOptions{IncludeConfiguration: true, IncludeConfigurationValues: true}
		if got.FingerprintBytes(opts) != want.FingerprintBytes(opts) {
			t.Errorf("record %d (%s): fingerprints diverge", i, rec.Dialect)
		}
	}
	// The corpus must actually exercise the streaming decoders: the five
	// JSON-default dialects contribute 2/3 of the records.
	if jsonRecords < len(corpus)/2 {
		t.Fatalf("only %d/%d corpus records are JSON; differential coverage collapsed",
			jsonRecords, len(corpus))
	}
}

// TestArenaDecoderMatchesLegacyPath is the differential guard for the
// arena memory model: across the full nine-dialect corpus, plans built
// into one continuously reused arena (reset between records, detached with
// Plan.Clone — exactly the pipeline's owned-batch mode) must serialize to
// byte-identical canonical text and hash to equal fingerprints as the
// retained legacy reference path. This is what proves slab recycling,
// frontier growth, and compact cloning never corrupt or reorder plan
// content.
func TestArenaDecoderMatchesLegacyPath(t *testing.T) {
	corpus, err := bench.Corpus(42)
	if err != nil {
		t.Fatal(err)
	}
	arena := NewArena()
	opts := core.FingerprintOptions{IncludeConfiguration: true, IncludeConfigurationValues: true}
	for i, rec := range corpus {
		arena.Reset()
		built, err := ConvertInto(rec.Dialect, rec.Serialized, arena)
		if err != nil {
			t.Fatalf("record %d (%s): arena convert: %v", i, rec.Dialect, err)
		}
		got := built.Clone() // detach, like pipeline workers do
		want, err := convert.LegacyConvert(rec.Dialect, rec.Serialized)
		if err != nil {
			t.Fatalf("record %d (%s): legacy convert: %v", i, rec.Dialect, err)
		}
		if g, w := canonicalPlanText(got), canonicalPlanText(want); g != w {
			t.Errorf("record %d (%s): arena-built and legacy plans diverge\n--- arena ---\n%s\n--- legacy ---\n%s",
				i, rec.Dialect, g, w)
		}
		if got.MarshalText() != built.MarshalText() {
			t.Errorf("record %d (%s): detached clone differs from its arena original", i, rec.Dialect)
		}
		if got.FingerprintBytes(opts) != want.FingerprintBytes(opts) {
			t.Errorf("record %d (%s): fingerprints diverge", i, rec.Dialect)
		}
	}
}
