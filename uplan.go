// Package uplan is the public facade of the UPlan library, a Go
// implementation of "Towards a Unified Query Plan Representation" (Ba &
// Rigger, ICDE 2025). It re-exports the unified query plan representation
// so downstream users work against a stable surface while the
// implementation lives in internal packages.
//
// Quickstart:
//
//	plan, err := uplan.Convert("postgresql", explainOutput)
//	if err != nil { ... }
//	fmt.Println(plan.MarshalIndentedText())
//	fmt.Println(plan.Histogram())
//
// See the examples/ directory for complete programs covering the paper's
// three applications: DBMS-agnostic testing (QPG/CERT), visualization, and
// cross-DBMS benchmarking.
package uplan

import (
	"uplan/internal/campaign"
	"uplan/internal/codec"
	"uplan/internal/convert"
	"uplan/internal/core"
	"uplan/internal/dbms"
	"uplan/internal/pipeline"
	"uplan/internal/store"
)

// Core representation types, re-exported.
type (
	// Plan is a unified query plan: an operation tree plus plan-level
	// properties.
	Plan = core.Plan
	// Node is one operation in the plan tree.
	Node = core.Node
	// Operation is a categorized operation identifier.
	Operation = core.Operation
	// Property is a categorized key/value pair.
	Property = core.Property
	// Value is a property value (string, number, boolean, or null).
	Value = core.Value
	// OperationCategory is one of the seven operation categories.
	OperationCategory = core.OperationCategory
	// PropertyCategory is one of the four property categories.
	PropertyCategory = core.PropertyCategory
	// Registry maps DBMS-specific names to unified names.
	Registry = core.Registry
	// Arena is a slab allocator for plan construction; see ConvertInto
	// and core.PlanArena for the ownership rules.
	Arena = core.PlanArena
	// FingerprintOptions controls structural plan fingerprints.
	FingerprintOptions = core.FingerprintOptions
	// FingerprintSet tracks observed plan fingerprints on binary keys —
	// QPG's "is this plan structurally new?" coverage map.
	FingerprintSet = core.FingerprintSet
	// CategoryHistogram counts operations per category.
	CategoryHistogram = core.CategoryHistogram
)

// NewFingerprintSet returns an empty fingerprint set using the given
// options. Observe on an already-seen plan is allocation-free; use
// Plan.Fingerprint64 for the fastest sketch-style hashing and
// Plan.FingerprintBytes / HexFingerprint for collision-resistant keys
// and display.
func NewFingerprintSet(opts FingerprintOptions) *FingerprintSet {
	return core.NewFingerprintSet(opts)
}

// HexFingerprint renders a binary plan fingerprint in the traditional
// 32-character hex form.
func HexFingerprint(fp [32]byte) string { return core.HexFingerprint(fp) }

// The seven operation categories (Section III-C of the paper).
const (
	Producer   = core.Producer
	Combinator = core.Combinator
	Join       = core.Join
	Folder     = core.Folder
	Projector  = core.Projector
	Executor   = core.Executor
	Consumer   = core.Consumer
)

// The four property categories (Section III-D of the paper).
const (
	Cardinality   = core.Cardinality
	Cost          = core.Cost
	Configuration = core.Configuration
	Status        = core.Status
)

// Convert parses a DBMS-native serialized plan (EXPLAIN output in any of
// the dialect's documented formats) into the unified representation.
// Supported dialects: postgresql, mysql, tidb, sqlite, mongodb, neo4j,
// sparksql, sqlserver, influxdb.
//
// Convert reuses a process-wide cached converter per dialect (backed by
// one shared default registry) rather than rebuilding the registry on
// every call, and is safe for concurrent use. For corpus-scale work, use
// ConvertBatch or NewPipeline.
func Convert(dialect, serialized string) (*Plan, error) {
	c, err := convert.Cached(dialect)
	if err != nil {
		return nil, err
	}
	return c.Convert(serialized)
}

// Dialects lists the dialect keys Convert accepts, in sorted order.
func Dialects() []string { return convert.Dialects() }

// NewArena returns an empty plan-construction arena for use with
// ConvertInto. An arena batches a plan's many small allocations (nodes,
// property lists, child lists) into a few slabs and interns repeated
// strings; Reset recycles the slabs for the next plan, so a warmed-up
// arena converts with zero slab allocations. Arenas are not safe for
// concurrent use — give each goroutine its own, or set
// PipelineOptions.ReuseArenas to have the batch pipeline do that.
func NewArena() *Arena { return core.NewPlanArena() }

// ConvertInto is Convert with caller-managed memory: the plan is built
// inside ar and aliases its slabs. The plan stays valid until ar.Reset is
// called; to keep a plan beyond that, detach it first with Plan.Clone
// (which copies it into independent, compactly laid-out heap storage).
// Typical loop:
//
//	ar := uplan.NewArena()
//	for _, raw := range raws {
//		plan, err := uplan.ConvertInto("postgresql", raw, ar)
//		... // inspect plan, fingerprint it, keep plan.Clone() if needed
//		ar.Reset()
//	}
//
// A nil arena behaves exactly like Convert.
func ConvertInto(dialect, serialized string, ar *Arena) (*Plan, error) {
	return convert.ConvertInto(dialect, serialized, ar)
}

// Batch conversion types, re-exported from the pipeline subsystem.
type (
	// BatchRecord is one unit of batch work: a serialized plan tagged
	// with its dialect.
	BatchRecord = pipeline.Record
	// BatchResult pairs a record with its conversion outcome.
	BatchResult = pipeline.Result
	// BatchStats aggregates a batch run: totals, wall time, and
	// per-dialect throughput/errors/operation histograms.
	BatchStats = pipeline.Stats
	// DialectStats is one dialect's aggregate within BatchStats.
	DialectStats = pipeline.DialectStats
	// Pipeline is a streaming concurrent converter; see NewPipeline.
	Pipeline = pipeline.Pipeline
	// PipelineOptions configures ConvertBatch and NewPipeline: worker
	// count, channel buffering, ordered/unordered collection, and an
	// optional custom registry.
	PipelineOptions = pipeline.Options
)

// ConvertBatch converts a corpus of serialized plans concurrently through
// a worker pool and returns per-record results (indexed like the input)
// plus aggregate statistics. Per-record failures — unknown dialects or
// malformed plans mixed into the batch — are reported in the matching
// BatchResult.Err and counted in the stats; they do not stop the batch.
//
//	records := []uplan.BatchRecord{{Dialect: "postgresql", Serialized: out}, ...}
//	results, stats := uplan.ConvertBatch(records, uplan.PipelineOptions{Workers: 8})
//	fmt.Println(stats) // per-dialect plans/sec, errors, operation counts
func ConvertBatch(records []BatchRecord, opts PipelineOptions) ([]BatchResult, BatchStats) {
	return pipeline.ConvertBatch(records, opts)
}

// NewPipeline starts a streaming conversion pipeline: Submit records from
// any number of goroutines, consume Results as they complete (set
// PipelineOptions.Ordered for submission order), Close once every Submit
// has returned, then read Stats. Each worker reuses one converter per
// dialect, so a long-lived pipeline amortizes converter construction
// across the whole stream.
func NewPipeline(opts PipelineOptions) *Pipeline { return pipeline.New(opts) }

// Campaign orchestration types, re-exported from the campaign subsystem.
type (
	// CampaignOptions configures RunCampaigns: engines, oracles, query
	// budget, top-level seed, worker-pool bound, and an optional defect
	// injector.
	CampaignOptions = campaign.Options
	// CampaignResult is a campaign run's outcome: deduplicated findings in
	// canonical order plus merged per-engine statistics.
	CampaignResult = campaign.Result
	// CampaignFinding is one deduplicated campaign discovery.
	CampaignFinding = campaign.Finding
	// CampaignStats aggregates a campaign run in the style of BatchStats.
	CampaignStats = campaign.Stats
	// CampaignEngineStats is one engine's aggregate within CampaignStats.
	CampaignEngineStats = campaign.EngineStats
	// CampaignOracleStats is one oracle's aggregate within CampaignStats.
	CampaignOracleStats = campaign.OracleStats
	// CampaignOracle names a registered DBMS-agnostic testing technique
	// ("qpg", "cert", "tlp", "bounds"); CampaignOracles lists them.
	CampaignOracle = campaign.Oracle
	// CampaignEngine is one simulated engine instance — the value
	// CampaignOptions.Inject receives, so facade users can plant defects
	// (via its Quirks and Opts fields) without importing internal
	// packages.
	CampaignEngine = dbms.Engine
)

// Durable persistence types, re-exported from the store subsystem.
type (
	// PlanStore is the append-only, CRC-framed plan-and-finding log with
	// WAL-style recovery. Attach one to CampaignOptions.Store to journal a
	// campaign; reopen after a crash and set CampaignOptions.Resume to
	// continue it with a byte-identical outcome.
	PlanStore = store.Store
	// PlanStoreOptions tunes OpenStore (shard count, file opener).
	PlanStoreOptions = store.Options
	// PlanStoreRecovered is the state OpenStore rebuilt from the log:
	// plans, findings, per-task checkpoints, and what a torn tail cost.
	PlanStoreRecovered = store.Recovered
	// CampaignProgress is one durable per-task checkpoint record, as seen
	// by CampaignOptions.OnProgress.
	CampaignProgress = store.TaskProgress
)

// OpenStore opens (creating if needed) a durable plan-and-finding log
// directory, replaying and checksum-verifying every shard and truncating
// any torn tail left by a crash.
//
//	log, err := uplan.OpenStore(dir, uplan.PlanStoreOptions{})
//	if err != nil { ... }
//	defer log.Close()
//	opts := uplan.DefaultCampaignOptions()
//	opts.Store = log
//	opts.Resume = !log.Recovered().Empty()
//	res, err := uplan.RunCampaigns(opts)
func OpenStore(dir string, opts PlanStoreOptions) (*PlanStore, error) {
	return store.Open(dir, opts)
}

// DefaultCampaignOptions returns the campaign budget the smoke runs use.
func DefaultCampaignOptions() CampaignOptions { return campaign.DefaultOptions() }

// CampaignOracles lists the registered testing oracles in canonical
// order — "qpg", "cert", "tlp", "bounds" for the built-in set. Use the
// names in CampaignOptions.Oracles to run a subset.
func CampaignOracles() []CampaignOracle { return campaign.AllOracles() }

// RunCampaigns fans every registered testing oracle — QPG, CERT, TLP,
// and the cardinality-bounds oracle by default — out across the
// simulated engines (all nine by default) on a bounded worker pool —
// the paper's application A.1 run fleet-wide. Findings are deduplicated
// in a race-safe cross-engine store and returned in canonical order; each
// (engine, oracle) task derives its generator seed from
// CampaignOptions.Seed deterministically, so the same seed produces a
// byte-identical finding set at any worker count.
//
//	res, err := uplan.RunCampaigns(uplan.DefaultCampaignOptions())
//	fmt.Println(res.Stats)      // per-engine queries/sec, new-plan rate, findings
//	for _, f := range res.Findings { fmt.Println(f) }
func RunCampaigns(opts CampaignOptions) (*CampaignResult, error) {
	return campaign.Run(opts)
}

// EncodeBinary serializes a plan in the compact binary plan format — a
// deduplicated string table plus varint-framed depth-first node records
// (see internal/codec). Binary blobs are typically several times smaller
// than the JSON serialization and decode an order of magnitude faster.
func EncodeBinary(p *Plan) ([]byte, error) { return codec.Encode(p) }

// DecodeBinary decodes a binary plan blob produced by EncodeBinary,
// building the plan in ar (pass nil for plain heap allocation). A plan
// decoded into an arena follows the arena lifecycle: it is invalidated by
// ar.Reset unless detached with Plan.Clone first; its strings never alias
// the input buffer.
func DecodeBinary(data []byte, ar *Arena) (*Plan, error) {
	return codec.DecodeInto(data, ar)
}

// ParseText parses a unified plan from its text serialization (either the
// strict EBNF form or the indented human-readable form).
func ParseText(s string) (*Plan, error) { return core.ParseText(s) }

// ParseJSON parses a unified plan from its JSON serialization.
func ParseJSON(data []byte) (*Plan, error) { return core.ParseJSON(data) }

// DefaultRegistry returns a fresh copy of the built-in naming registry
// covering the nine studied DBMSs. Each call builds a new instance, so
// extending it does NOT affect Convert or ConvertBatch — pass the
// extended registry via PipelineOptions.Registry, or extend
// SharedRegistry instead.
func DefaultRegistry() *Registry { return core.DefaultRegistry() }

// SharedRegistry returns the process-wide registry backing Convert's and
// ConvertBatch's cached converters. Extend it with
// AddOperation/AliasOperation to make every subsequent conversion
// recognize a new system's vocabulary (Section IV-B's extensibility
// contract, live). The registry is safe for concurrent use.
func SharedRegistry() *Registry { return convert.SharedRegistry() }
