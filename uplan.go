// Package uplan is the public facade of the UPlan library, a Go
// implementation of "Towards a Unified Query Plan Representation" (Ba &
// Rigger, ICDE 2025). It re-exports the unified query plan representation
// so downstream users work against a stable surface while the
// implementation lives in internal packages.
//
// Quickstart:
//
//	plan, err := uplan.Convert("postgresql", explainOutput)
//	if err != nil { ... }
//	fmt.Println(plan.MarshalIndentedText())
//	fmt.Println(plan.Histogram())
//
// See the examples/ directory for complete programs covering the paper's
// three applications: DBMS-agnostic testing (QPG/CERT), visualization, and
// cross-DBMS benchmarking.
package uplan

import (
	"uplan/internal/convert"
	"uplan/internal/core"
)

// Core representation types, re-exported.
type (
	// Plan is a unified query plan: an operation tree plus plan-level
	// properties.
	Plan = core.Plan
	// Node is one operation in the plan tree.
	Node = core.Node
	// Operation is a categorized operation identifier.
	Operation = core.Operation
	// Property is a categorized key/value pair.
	Property = core.Property
	// Value is a property value (string, number, boolean, or null).
	Value = core.Value
	// OperationCategory is one of the seven operation categories.
	OperationCategory = core.OperationCategory
	// PropertyCategory is one of the four property categories.
	PropertyCategory = core.PropertyCategory
	// Registry maps DBMS-specific names to unified names.
	Registry = core.Registry
	// FingerprintOptions controls structural plan fingerprints.
	FingerprintOptions = core.FingerprintOptions
	// CategoryHistogram counts operations per category.
	CategoryHistogram = core.CategoryHistogram
)

// The seven operation categories (Section III-C of the paper).
const (
	Producer   = core.Producer
	Combinator = core.Combinator
	Join       = core.Join
	Folder     = core.Folder
	Projector  = core.Projector
	Executor   = core.Executor
	Consumer   = core.Consumer
)

// The four property categories (Section III-D of the paper).
const (
	Cardinality   = core.Cardinality
	Cost          = core.Cost
	Configuration = core.Configuration
	Status        = core.Status
)

// Convert parses a DBMS-native serialized plan (EXPLAIN output in any of
// the dialect's documented formats) into the unified representation.
// Supported dialects: postgresql, mysql, tidb, sqlite, mongodb, neo4j,
// sparksql, sqlserver, influxdb.
func Convert(dialect, serialized string) (*Plan, error) {
	return convert.Convert(dialect, serialized)
}

// Dialects lists the dialect keys Convert accepts.
func Dialects() []string { return convert.Dialects() }

// ParseText parses a unified plan from its text serialization (either the
// strict EBNF form or the indented human-readable form).
func ParseText(s string) (*Plan, error) { return core.ParseText(s) }

// ParseJSON parses a unified plan from its JSON serialization.
func ParseJSON(data []byte) (*Plan, error) { return core.ParseJSON(data) }

// DefaultRegistry returns the built-in naming registry covering the nine
// studied DBMSs. Extend it with AddOperation/AliasOperation to support
// additional systems (Section IV-B's extensibility contract).
func DefaultRegistry() *Registry { return core.DefaultRegistry() }
