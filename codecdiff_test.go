package uplan

import (
	"bytes"
	"testing"

	"uplan/internal/bench"
	"uplan/internal/codec"
	"uplan/internal/core"
)

// TestCodecMatchesJSONPath is the differential guard for the binary
// codec, in the style of the streaming-decoder guards above: across the
// full nine-dialect benchmark corpus, a plan encoded to the binary format
// and decoded back — through both the single-blob path and a packed
// corpus read with a continuously reused arena — must serialize to
// byte-identical canonical text and hash to equal fingerprints as the
// JSON-path original. The JSON round trip (MarshalJSON → ParseJSON) runs
// alongside as the reference serialization: both serializations must
// reproduce the same plan, which is what lets the store and the service
// swap formats without changing meaning.
func TestCodecMatchesJSONPath(t *testing.T) {
	corpus, err := bench.Corpus(42)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.FingerprintOptions{IncludeConfiguration: true, IncludeConfigurationValues: true}

	// Pack every converted plan into one corpus while checking blobs.
	var packed bytes.Buffer
	cw := codec.NewCorpusWriter(&packed)
	want := make([]*core.Plan, 0, len(corpus))
	arena := NewArena()
	for i, rec := range corpus {
		ref, err := Convert(rec.Dialect, rec.Serialized)
		if err != nil {
			t.Fatalf("record %d (%s): convert: %v", i, rec.Dialect, err)
		}
		want = append(want, ref)

		blob, err := codec.Encode(ref)
		if err != nil {
			t.Fatalf("record %d (%s): encode: %v", i, rec.Dialect, err)
		}
		arena.Reset()
		got, err := codec.DecodeInto(blob, arena)
		if err != nil {
			t.Fatalf("record %d (%s): decode: %v", i, rec.Dialect, err)
		}
		if g, w := canonicalPlanText(got), canonicalPlanText(ref); g != w {
			t.Errorf("record %d (%s): binary round trip diverges\n--- binary ---\n%s\n--- json path ---\n%s",
				i, rec.Dialect, g, w)
		}
		if got.MarshalText() != ref.MarshalText() {
			t.Errorf("record %d (%s): binary round trip reorders properties", i, rec.Dialect)
		}
		if got.Source != ref.Source {
			t.Errorf("record %d (%s): Source = %q, want %q", i, rec.Dialect, got.Source, ref.Source)
		}
		if got.FingerprintBytes(opts) != ref.FingerprintBytes(opts) {
			t.Errorf("record %d (%s): FingerprintBytes diverges", i, rec.Dialect)
		}
		if got.Fingerprint64(opts) != ref.Fingerprint64(opts) {
			t.Errorf("record %d (%s): Fingerprint64 diverges", i, rec.Dialect)
		}

		// The JSON serialization path must agree with the binary one.
		jsonBytes, err := ref.MarshalJSON()
		if err != nil {
			t.Fatalf("record %d (%s): marshal json: %v", i, rec.Dialect, err)
		}
		viaJSON, err := core.ParseJSON(jsonBytes)
		if err != nil {
			t.Fatalf("record %d (%s): parse json: %v", i, rec.Dialect, err)
		}
		if g, w := canonicalPlanText(got), canonicalPlanText(viaJSON); g != w {
			t.Errorf("record %d (%s): binary and JSON round trips diverge", i, rec.Dialect)
		}

		if err := cw.Add(ref); err != nil {
			t.Fatalf("record %d (%s): corpus add: %v", i, rec.Dialect, err)
		}
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}

	// Second pass: the packed corpus, decoded with one reused arena (the
	// benchmark's acceptance configuration), must reproduce every plan.
	r, err := codec.NewCorpusReader(packed.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != len(want) {
		t.Fatalf("packed corpus Len = %d, want %d", r.Len(), len(want))
	}
	for i, ref := range want {
		arena.Reset()
		got, err := r.Next(arena)
		if err != nil {
			t.Fatalf("packed plan %d: %v", i, err)
		}
		if got.MarshalText() != ref.MarshalText() || got.Source != ref.Source {
			t.Errorf("packed plan %d (%s): corpus decode diverges", i, ref.Source)
		}
		if got.Fingerprint64(opts) != ref.Fingerprint64(opts) {
			t.Errorf("packed plan %d (%s): Fingerprint64 diverges", i, ref.Source)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}
