// Command uplan-viz renders a DBMS-native serialized query plan as an
// ASCII tree, Graphviz DOT, or a self-contained HTML page, through the
// unified representation (paper application A.2: one visualizer for every
// DBMS).
//
// Usage:
//
//	uplan-viz -dialect mysql -renderer html [plan-file] > plan.html
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"uplan/internal/convert"
	"uplan/internal/viz"
)

func main() {
	dialect := flag.String("dialect", "", "source DBMS dialect: "+strings.Join(convert.Dialects(), ", "))
	renderer := flag.String("renderer", "ascii", "renderer: ascii, dot, html")
	title := flag.String("title", "UPlan query plan", "title for the HTML renderer")
	flag.Parse()
	if *dialect == "" {
		fmt.Fprintln(os.Stderr, "uplan-viz: -dialect is required")
		flag.Usage()
		os.Exit(2)
	}
	var input []byte
	var err error
	if flag.NArg() > 0 {
		input, err = os.ReadFile(flag.Arg(0))
	} else {
		input, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "uplan-viz:", err)
		os.Exit(1)
	}
	plan, err := convert.Convert(*dialect, string(input))
	if err != nil {
		fmt.Fprintln(os.Stderr, "uplan-viz:", err)
		os.Exit(1)
	}
	switch *renderer {
	case "ascii":
		fmt.Print(viz.ASCII(plan))
	case "dot":
		fmt.Print(viz.DOT(plan))
	case "html":
		fmt.Print(viz.HTML(*title, plan))
	default:
		fmt.Fprintf(os.Stderr, "uplan-viz: unknown renderer %q\n", *renderer)
		os.Exit(2)
	}
}
