// Command uplan converts a DBMS-native serialized query plan (EXPLAIN
// output read from a file or stdin) into the unified query plan
// representation, printed as indented text, strict EBNF text, or JSON.
//
// Usage:
//
//	uplan -dialect postgresql [-format text|ebnf|json] [plan-file]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"uplan/internal/convert"
)

func main() {
	dialect := flag.String("dialect", "", "source DBMS dialect: "+strings.Join(convert.Dialects(), ", "))
	format := flag.String("format", "text", "output format: text (indented), ebnf (strict grammar), json")
	flag.Parse()
	if *dialect == "" {
		fmt.Fprintln(os.Stderr, "uplan: -dialect is required")
		flag.Usage()
		os.Exit(2)
	}
	var input []byte
	var err error
	if flag.NArg() > 0 {
		input, err = os.ReadFile(flag.Arg(0))
	} else {
		input, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "uplan:", err)
		os.Exit(1)
	}
	plan, err := convert.Convert(*dialect, string(input))
	if err != nil {
		fmt.Fprintln(os.Stderr, "uplan:", err)
		os.Exit(1)
	}
	switch *format {
	case "text":
		fmt.Print(plan.MarshalIndentedText())
	case "ebnf":
		fmt.Println(plan.MarshalText())
	case "json":
		data, err := plan.MarshalJSONIndent()
		if err != nil {
			fmt.Fprintln(os.Stderr, "uplan:", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
	default:
		fmt.Fprintf(os.Stderr, "uplan: unknown output format %q\n", *format)
		os.Exit(2)
	}
}
