// Command uplan-bench regenerates the paper's benchmarking artifacts
// (application A.3): Table VI (TPC-H operation counts across five DBMSs),
// Table VII (YCSB on MongoDB, WDBench on Neo4j), Figure 4 (Producer-count
// variance per query), and the Listing 4 q11 analysis. The batch
// experiment measures conversion throughput of the mixed nine-dialect
// corpus, sequentially or through the concurrent pipeline.
//
// Usage:
//
//	uplan-bench [-seed 42] [-experiment all|table6|table7|figure4|q11|batch|text|campaign|serve|codec]
//	            [-parallel N] [-reuse-arenas] [-iters N] [-queries N] [-out FILE]
//	            [-store DIR] [-resume] [-checkpoint-every N]
//	            [-pack FILE] [-unpack FILE]
//	            [-cpuprofile FILE] [-memprofile FILE]
//
// -parallel N runs the batch experiment through the conversion pipeline
// with N workers and reports the speedup over the sequential one-shot
// path; -parallel 0 (the default) reports the sequential path only.
// -reuse-arenas turns on the pipeline's owned-batch arena mode.
// -out FILE additionally writes the batch experiment's throughput and
// speedup numbers as JSON (see BENCH_batch.json for the committed
// snapshots that record the perf trajectory across PRs).
//
// -experiment text measures each dialect's text-format converter
// trajectory — the one-shot path against a reused arena — over -iters
// conversions per dialect, reporting ns/plan and allocs/plan.
//
// -experiment campaign fans every registered testing oracle (QPG, CERT,
// TLP, and the cardinality-bounds oracle; -oracles selects a subset)
// across all nine simulated engines on a -parallel-bounded worker pool
// (0 means one worker per core) with a -queries budget per engine/oracle
// task, printing per-engine and per-oracle stats and the deduplicated
// findings. The finding set depends only on -seed, never on -parallel.
//
// -store DIR journals the campaign through the durable plan-and-finding
// log (internal/store): every plan fingerprint, finding, and per-task
// checkpoint survives a crash at any byte. SIGINT/SIGTERM cancel the run
// cooperatively — workers stop at the next query boundary, the final
// state is flushed, partial stats print, and the process exits 0. A
// second SIGINT/SIGTERM during that graceful checkpoint forces an
// immediate exit with status 3 (internal/shutdown), so a checkpoint hung
// on sick storage can always be abandoned deliberately.
// -resume continues an interrupted campaign from DIR: finished tasks are
// skipped, the rest re-run, and the combined outcome is byte-identical
// to an uninterrupted run. -checkpoint-every N bounds mid-task loss.
//
// -experiment serve load-tests the plan service end to end: it boots an
// in-process internal/serve server on a loopback :0 listener, fans
// -parallel serveclient clients out over -iters convert requests drawn
// from the mixed corpus (plus one full-corpus batch-convert), and
// reports client-observed requests/sec, cache hit rate, and shed
// counts. -out writes the run as JSON (see BENCH_batch.json's
// uplan_serve snapshots).
//
// -experiment codec packs the converted corpus into the compact binary
// plan format (internal/codec), compares the packed size against the
// JSON serialization, and measures decode throughput three ways: fresh
// allocations per plan, one continuously reused arena, and the streaming
// JSON reference path. -pack FILE keeps the packed corpus on disk;
// -unpack FILE decodes and summarizes an existing packed corpus instead
// of benchmarking. -iters sets the full-corpus passes per decode path;
// -out writes the run as JSON (see BENCH_batch.json's uplan_codec
// snapshots).
//
// -cpuprofile / -memprofile write pprof profiles covering whichever
// experiments ran, so hot-path regressions can be diagnosed with
// `go tool pprof` straight from this binary.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"uplan/internal/bench"
	"uplan/internal/campaign"
	"uplan/internal/convert"
	"uplan/internal/core"
	"uplan/internal/pipeline"
	"uplan/internal/shutdown"
	"uplan/internal/store"
)

// batchResult is the machine-readable outcome of the batch experiment,
// written by -out.
type batchResult struct {
	Experiment    string  `json:"experiment"`
	Seed          int64   `json:"seed"`
	CorpusRecords int     `json:"corpus_records"`
	Sequential    pathRun `json:"sequential"`
	Cached        pathRun `json:"sequential_cached"`
	// Pipeline is present when -parallel > 0. Workers is the requested
	// count; WorkersEffective is what ConvertBatch actually ran after
	// its GOMAXPROCS clamp — on a 1-CPU runner the two routinely differ.
	Pipeline         *pipeline.Report `json:"pipeline,omitempty"`
	Workers          int              `json:"workers,omitempty"`
	WorkersEffective int              `json:"workers_effective,omitempty"`
	ChunkSize        int              `json:"chunk_size,omitempty"`
	ReuseArenas      bool             `json:"reuse_arenas,omitempty"`
	SpeedupVsSeq     float64          `json:"speedup_vs_sequential,omitempty"`
	SpeedupVsCached  float64          `json:"speedup_vs_sequential_cached,omitempty"`
}

// pathRun records one conversion strategy's throughput.
type pathRun struct {
	Plans       int     `json:"plans"`
	Seconds     float64 `json:"seconds"`
	PlansPerSec float64 `json:"plans_per_sec"`
}

func main() {
	seed := flag.Int64("seed", 42, "data generator seed")
	experiment := flag.String("experiment", "all", "experiment: all, table6, table7, figure4, q11, batch, text, campaign, serve, codec")
	parallel := flag.Int("parallel", 0, "batch: pipeline worker count (0 = sequential only); campaign: task pool bound (0 = GOMAXPROCS)")
	chunk := flag.Int("chunk", 0, "batch experiment: records per pipeline dispatch chunk (0 = default)")
	reuseArenas := flag.Bool("reuse-arenas", false, "batch experiment: per-worker reusable arenas (owned-batch mode)")
	iters := flag.Int("iters", 2000, "text experiment: conversions per dialect per path")
	queries := flag.Int("queries", 100, "campaign experiment: generated-query budget per engine/oracle task")
	storeDir := flag.String("store", "", "campaign experiment: journal plans, findings, and checkpoints to this durable log directory")
	resume := flag.Bool("resume", false, "campaign experiment: resume an interrupted campaign from the -store directory")
	checkpointEvery := flag.Int("checkpoint-every", 50, "campaign experiment: queries between mid-task durability checkpoints (0 = task boundaries only)")
	oracles := flag.String("oracles", "", "campaign experiment: comma-separated oracle subset (default: all registered; e.g. qpg,cert,tlp,bounds)")
	out := flag.String("out", "", "batch experiment: write machine-readable JSON results to FILE")
	pack := flag.String("pack", "", "codec experiment: keep the packed binary corpus at FILE")
	unpack := flag.String("unpack", "", "codec experiment: decode and summarize an existing packed corpus instead of benchmarking")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the experiments to FILE")
	memprofile := flag.String("memprofile", "", "write an allocation profile to FILE on exit")
	flag.Parse()

	run := func(name string) bool { return *experiment == "all" || *experiment == name }
	// flushProfiles finalizes -cpuprofile/-memprofile. It runs both on the
	// normal return path and from fail(): os.Exit skips defers, and a
	// diagnostic run that dies mid-experiment is exactly when a valid
	// profile matters most.
	flushed := false
	var cpuFile *os.File // owned by flushProfiles; closing before StopCPUProfile would drop the flush
	flushProfiles := func() {
		if flushed {
			return
		}
		flushed = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if *memprofile != "" {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "uplan-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "uplan-bench:", err)
			}
		}
	}
	defer flushProfiles()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "uplan-bench:", err)
		flushProfiles()
		os.Exit(1)
	}
	if *out != "" && !run("batch") && *experiment != "serve" && *experiment != "codec" {
		fail(fmt.Errorf("-out only applies to the batch, serve, and codec experiments (got -experiment %s)", *experiment))
	}
	if (*pack != "" || *unpack != "") && *experiment != "codec" {
		fail(fmt.Errorf("-pack/-unpack only apply to the codec experiment (got -experiment %s)", *experiment))
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fail(err)
		}
		cpuFile = f
	}
	// The campaign experiment is explicit-only, like text: a nine-engine
	// bug-hunting fan-out is a workload of its own, not one of the
	// paper's tabulated artifacts, so "all" does not imply it.
	if *experiment == "campaign" {
		copts := campaign.DefaultOptions()
		copts.Seed = *seed
		copts.Workers = *parallel
		copts.Queries = *queries
		if *oracles != "" {
			for _, name := range strings.Split(*oracles, ",") {
				copts.Oracles = append(copts.Oracles, strings.TrimSpace(name))
			}
		}
		if *resume && *storeDir == "" {
			fail(fmt.Errorf("-resume requires -store DIR"))
		}
		if *storeDir != "" {
			log, err := store.Open(*storeDir, store.Options{})
			if err != nil {
				fail(err)
			}
			copts.Store = log
			copts.Resume = *resume
			copts.CheckpointEvery = *checkpointEvery
			defer func() {
				if err := log.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "uplan-bench:", err)
				}
			}()
			if *resume {
				rec := log.Recovered()
				fmt.Printf("resuming from %s: %d plans, %d findings, %d checkpointed tasks recovered",
					*storeDir, len(rec.Plans), len(rec.Findings), len(rec.Progress))
				if rec.Truncated > 0 {
					fmt.Printf(" (%d torn frame(s), %d byte(s) truncated)", rec.Truncated, rec.DroppedBytes)
				}
				fmt.Println()
			}
		}
		// A signal cancels the run cooperatively: workers stop at the next
		// query boundary, everything journaled so far is synced, and the
		// partial stats below still print — the run is interrupted, not
		// lost, and -resume picks it up where it stopped. A second signal
		// during that graceful checkpoint (store sync/close hung on sick
		// storage, say) forces an immediate exit with a distinct status.
		ctx, notifier := shutdown.Install(context.Background(),
			func(msg string) { fmt.Fprintln(os.Stderr, "uplan-bench:", msg) })
		defer notifier.Stop()
		copts.Context = ctx
		res, err := campaign.Run(copts)
		interrupted := errors.Is(err, context.Canceled)
		if err != nil && !interrupted {
			fail(err)
		}
		if interrupted {
			fmt.Printf("== Campaign interrupted (state saved%s) — partial results ==\n",
				map[bool]string{true: " to " + *storeDir, false: ""}[*storeDir != ""])
		}
		fmt.Printf("== Campaign: %d engines x %d oracles, %d queries per task, seed %d ==\n",
			len(res.Stats.Engines), len(res.Stats.Oracles), *queries, *seed)
		fmt.Print(res.Stats)
		fmt.Printf("findings (%d, deduplicated, canonical order):\n", len(res.Findings))
		for _, f := range res.Findings {
			fmt.Println("  " + f.String())
		}
	}
	// The serve experiment is explicit-only too: it boots a live HTTP
	// service and load-tests it through serveclient — a workload of its
	// own, not one of the paper's artifacts.
	if *experiment == "serve" {
		if *iters <= 0 {
			fail(fmt.Errorf("-iters must be positive (got %d)", *iters))
		}
		if err := runServeExperiment(*seed, *parallel, *iters, *reuseArenas, *out); err != nil {
			fail(err)
		}
	}
	// The codec experiment is explicit-only as well: a serialization
	// microbenchmark, not one of the paper's artifacts.
	if *experiment == "codec" {
		if *unpack != "" {
			if err := runCodecUnpack(*unpack); err != nil {
				fail(err)
			}
		} else {
			if *iters <= 0 {
				fail(fmt.Errorf("-iters must be positive (got %d)", *iters))
			}
			if err := runCodecExperiment(*seed, *iters, *pack, *out); err != nil {
				fail(err)
			}
		}
	}
	// The text experiment is explicit-only: it is a microbenchmark loop,
	// not one of the paper's artifacts, so "all" does not imply it.
	if *experiment == "text" {
		if *iters <= 0 {
			fail(fmt.Errorf("-iters must be positive (got %d)", *iters))
		}
		if err := runTextExperiment(*seed, *iters); err != nil {
			fail(err)
		}
	}

	if run("table6") || run("figure4") {
		reports, err := bench.RunTableVI(*seed)
		if err != nil {
			fail(err)
		}
		if run("table6") {
			fmt.Println("== Table VI: average operations per category (TPC-H) ==")
			fmt.Print(bench.FormatCategoryTable(reports))
			fmt.Println()
		}
		if run("figure4") {
			vs := bench.ProducerVariance(reports)
			fmt.Println("== Figure 4: Producer-count variance per TPC-H query ==")
			fmt.Print(bench.FormatVarianceSeries(vs))
			fmt.Printf("high variance (>5): q%v\n\n", bench.HighVarianceQueries(vs, 5))
		}
	}
	if run("table7") {
		reports, err := bench.RunTableVII(*seed)
		if err != nil {
			fail(err)
		}
		fmt.Println("== Table VII: YCSB (MongoDB) and WDBench (Neo4j) ==")
		fmt.Print(bench.FormatCategoryTable(reports))
		fmt.Println()
	}
	if run("batch") {
		corpus, err := bench.Corpus(*seed)
		if err != nil {
			fail(err)
		}
		fmt.Printf("== Batch conversion: %d-record mixed nine-dialect corpus ==\n", len(corpus))
		result := batchResult{
			Experiment:    "batch",
			Seed:          *seed,
			CorpusRecords: len(corpus),
		}

		// Sequential baseline: the one-shot path, which builds a fresh
		// registry-backed converter for every record.
		start := time.Now()
		for _, r := range corpus {
			if _, err := convert.Convert(r.Dialect, r.Serialized); err != nil {
				fail(err)
			}
		}
		seqElapsed := time.Since(start)
		seqRate := float64(len(corpus)) / seqElapsed.Seconds()
		result.Sequential = pathRun{len(corpus), seqElapsed.Seconds(), seqRate}
		fmt.Printf("sequential: %d plans in %.3fs (%.0f plans/s)\n",
			len(corpus), seqElapsed.Seconds(), seqRate)

		// Cached path: one shared converter per dialect, the facade's
		// single-plan fast path.
		start = time.Now()
		for _, r := range corpus {
			c, err := convert.Cached(r.Dialect)
			if err != nil {
				fail(err)
			}
			if _, err := c.Convert(r.Serialized); err != nil {
				fail(err)
			}
		}
		cachedElapsed := time.Since(start)
		cachedRate := float64(len(corpus)) / cachedElapsed.Seconds()
		result.Cached = pathRun{len(corpus), cachedElapsed.Seconds(), cachedRate}
		fmt.Printf("sequential-cached: %d plans in %.3fs (%.0f plans/s)\n",
			len(corpus), cachedElapsed.Seconds(), cachedRate)

		if *parallel > 0 {
			if *chunk <= 0 {
				*chunk = pipeline.DefaultChunkSize
			}
			popts := pipeline.Options{Workers: *parallel, ChunkSize: *chunk, ReuseArenas: *reuseArenas}
			results, stats := pipeline.ConvertBatch(corpus, popts)
			for _, r := range results {
				if r.Err != nil {
					fail(r.Err)
				}
			}
			effective := *parallel
			if n := runtime.GOMAXPROCS(0); effective > n {
				effective = n
			}
			fmt.Printf("pipeline (%d workers requested, %d effective, chunk %d):\n%s",
				*parallel, effective, popts.ChunkSize, stats)
			fmt.Printf("speedup over sequential: %.2fx\n", stats.PlansPerSec()/seqRate)
			report := stats.Report()
			result.Pipeline = &report
			result.Workers = *parallel
			result.WorkersEffective = effective
			result.ChunkSize = popts.ChunkSize
			result.ReuseArenas = *reuseArenas
			result.SpeedupVsSeq = stats.PlansPerSec() / seqRate
			result.SpeedupVsCached = stats.PlansPerSec() / cachedRate
		}
		if *out != "" {
			data, err := json.MarshalIndent(result, "", "  ")
			if err != nil {
				fail(err)
			}
			data = append(data, '\n')
			if err := os.WriteFile(*out, data, 0o644); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", *out)
		}
		fmt.Println()
	}
	if run("q11") {
		a, err := bench.RunQ11(*seed)
		if err != nil {
			fail(err)
		}
		fmt.Println("== Listing 4 / q11 analysis ==")
		fmt.Println("--- PostgreSQL (unified) ---")
		fmt.Print(a.PostgresPlan.MarshalIndentedText())
		fmt.Println("--- TiDB (unified) ---")
		fmt.Print(a.TiDBPlan.MarshalIndentedText())
		fmt.Printf("full table scans: postgresql=%d tidb=%d\n", a.PGScans, a.TiDBScans)
		fmt.Printf("redundant scan time: %.3f ms of %.3f ms (%.0f%%)\n",
			a.RedundantMS, a.TotalMS, a.SavingsFraction()*100)
	}
}

// runTextExperiment measures every text-dialect converter through the
// one-shot path and through a reused arena, reporting ns/plan and
// allocs/plan so the text-path trajectory is trackable like the batch
// path's.
func runTextExperiment(seed int64, iters int) error {
	samples, err := bench.TextSamples(seed)
	if err != nil {
		return err
	}
	fmt.Printf("== Text converters: %d conversions per dialect per path ==\n", iters)
	fmt.Printf("%-14s %12s %12s %14s %14s %9s\n",
		"dialect", "oneshot ns", "reuse ns", "oneshot allocs", "reuse allocs", "speedup")
	measure := func(fn func()) (nsPerOp float64, allocsPerOp float64) {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		return float64(elapsed.Nanoseconds()) / float64(iters),
			float64(after.Mallocs-before.Mallocs) / float64(iters)
	}
	for _, s := range samples {
		conv, err := convert.Cached(s.Dialect)
		if err != nil {
			return err
		}
		if _, err := conv.Convert(s.Raw); err != nil {
			return fmt.Errorf("%s: %w", s.Name, err)
		}
		//lint:allow oracleerr timed closure; the same conversion was validated just above
		oneNs, oneAllocs := measure(func() { conv.Convert(s.Raw) })
		ar := core.NewPlanArena()
		// Validate the arena path too before timing it: a failing path
		// measures its error return and reports a bogus speedup.
		if _, err := convert.ConvertInto(s.Dialect, s.Raw, ar); err != nil {
			return fmt.Errorf("%s (arena path): %w", s.Name, err)
		}
		ar.Reset()
		reuseNs, reuseAllocs := measure(func() {
			//lint:allow oracleerr timed closure; the arena path was validated just above
			convert.ConvertInto(s.Dialect, s.Raw, ar)
			ar.Reset()
		})
		fmt.Printf("%-14s %12.0f %12.0f %14.1f %14.1f %8.2fx\n",
			s.Name, oneNs, reuseNs, oneAllocs, reuseAllocs, oneNs/reuseNs)
	}
	return nil
}
