package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"uplan/internal/bench"
	"uplan/internal/codec"
	"uplan/internal/convert"
	"uplan/internal/core"
)

// codecResult is the machine-readable outcome of the codec experiment,
// written by -out. It records the binary format's two claims: the packed
// corpus is smaller than the JSON serialization, and decoding it is
// multiples faster than the streaming JSON path.
type codecResult struct {
	Experiment    string `json:"experiment"`
	Seed          int64  `json:"seed"`
	CorpusRecords int    `json:"corpus_records"`
	// PackedBytes and JSONBytes compare the corpus's binary size against
	// the sum of its canonical JSON serializations.
	PackedBytes int     `json:"packed_bytes"`
	JSONBytes   int     `json:"json_bytes"`
	PackedRatio float64 `json:"packed_ratio"`
	// Decode paths, full corpus passes: Oneshot allocates a fresh arena
	// per plan, Reuse cycles one arena (the acceptance configuration),
	// JSON reparses the same plans from their canonical JSON via
	// core.ParseJSON — the format a stored corpus would otherwise use.
	// (The native-EXPLAIN streaming path is benchmarked separately as
	// BenchmarkDecodeJSON/stream; the codec-vs-stream ratio lives in
	// BenchmarkCodecDecode.)
	Oneshot decodeRun `json:"decode_oneshot"`
	Reuse   decodeRun `json:"decode_reuse"`
	JSON    decodeRun `json:"decode_parse_json"`
	// SpeedupVsJSON is Reuse.PlansPerSec / JSON.PlansPerSec.
	SpeedupVsJSON float64 `json:"speedup_vs_parse_json"`
}

// decodeRun records one decode strategy's throughput over repeated full
// corpus passes.
type decodeRun struct {
	Plans         int     `json:"plans"`
	Passes        int     `json:"passes"`
	Seconds       float64 `json:"seconds"`
	PlansPerSec   float64 `json:"plans_per_sec"`
	NsPerPlan     float64 `json:"ns_per_plan"`
	AllocsPerPlan float64 `json:"allocs_per_plan"`
}

// measureDecode runs fn (one full corpus pass) passes times and reports
// the per-plan cost.
func measureDecode(plans, passes int, fn func() error) (decodeRun, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < passes; i++ {
		if err := fn(); err != nil {
			return decodeRun{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	total := plans * passes
	return decodeRun{
		Plans:         plans,
		Passes:        passes,
		Seconds:       elapsed.Seconds(),
		PlansPerSec:   float64(total) / elapsed.Seconds(),
		NsPerPlan:     float64(elapsed.Nanoseconds()) / float64(total),
		AllocsPerPlan: float64(after.Mallocs-before.Mallocs) / float64(total),
	}, nil
}

// runCodecUnpack opens an existing packed corpus, decodes every plan, and
// prints a summary — the verification half of -pack.
func runCodecUnpack(path string) error {
	r, err := codec.OpenCorpus(path)
	if err != nil {
		return err
	}
	defer r.Close()
	ar := core.NewPlanArena()
	bySource := map[string]int{}
	nodes := 0
	for {
		ar.Reset()
		p, err := r.Next(ar)
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return fmt.Errorf("unpacking %s: %w", path, err)
		}
		bySource[p.Source]++
		nodes += p.NodeCount()
	}
	fmt.Printf("== Unpack: %s ==\n", path)
	fmt.Printf("%d plans, %d nodes, %d dialects\n", r.Len(), nodes, len(bySource))
	for _, src := range sortedKeys(bySource) {
		fmt.Printf("  %-14s %d\n", src, bySource[src])
	}
	if err := r.Close(); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// runCodecExperiment packs the converted corpus into the binary format
// and measures the decode paths against the streaming JSON reference.
// packPath, when non-empty, keeps the packed corpus file (otherwise it
// lives in a temp directory for the run); iters is the number of full
// corpus passes per decode path.
func runCodecExperiment(seed int64, iters int, packPath, out string) error {
	corpus, err := bench.Corpus(seed)
	if err != nil {
		return err
	}
	plans := make([]*core.Plan, len(corpus))
	jsonBodies := make([][]byte, len(corpus))
	jsonBytes := 0
	for i, rec := range corpus {
		c, err := convert.Cached(rec.Dialect)
		if err != nil {
			return err
		}
		p, err := c.Convert(rec.Serialized)
		if err != nil {
			return fmt.Errorf("record %d (%s): %w", i, rec.Dialect, err)
		}
		plans[i] = p
		body, err := p.MarshalJSON()
		if err != nil {
			return err
		}
		jsonBodies[i] = body
		jsonBytes += len(body)
	}

	path := packPath
	if path == "" {
		dir, err := os.MkdirTemp("", "uplan-codec-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		path = filepath.Join(dir, "corpus.upc")
	}
	if err := codec.WriteCorpusFile(path, plans); err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}

	result := codecResult{
		Experiment:    "codec",
		Seed:          seed,
		CorpusRecords: len(corpus),
		PackedBytes:   int(info.Size()),
		JSONBytes:     jsonBytes,
		PackedRatio:   float64(info.Size()) / float64(jsonBytes),
	}
	fmt.Printf("== Codec: %d-record corpus packed to %s ==\n", len(corpus), path)
	fmt.Printf("packed: %d bytes vs %d JSON bytes (%.2fx)\n",
		result.PackedBytes, result.JSONBytes, result.PackedRatio)

	r, err := codec.OpenCorpus(path)
	if err != nil {
		return err
	}
	defer r.Close()

	// One validated warm pass before timing anything.
	warm := core.NewPlanArena()
	decodePass := func(ar *core.PlanArena) error {
		r.Rewind()
		for i := 0; i < r.Len(); i++ {
			if ar != nil {
				ar.Reset()
			}
			if _, err := r.Next(ar); err != nil {
				return err
			}
		}
		return nil
	}
	if err := decodePass(warm); err != nil {
		return err
	}

	result.Oneshot, err = measureDecode(len(corpus), iters, func() error { return decodePass(nil) })
	if err != nil {
		return err
	}
	result.Reuse, err = measureDecode(len(corpus), iters, func() error { return decodePass(warm) })
	if err != nil {
		return err
	}
	result.JSON, err = measureDecode(len(corpus), iters, func() error {
		for _, body := range jsonBodies {
			if _, err := core.ParseJSON(body); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	result.SpeedupVsJSON = result.Reuse.PlansPerSec / result.JSON.PlansPerSec

	fmt.Printf("%-14s %12s %14s %14s\n", "decode path", "ns/plan", "plans/s", "allocs/plan")
	for _, row := range []struct {
		name string
		run  decodeRun
	}{{"oneshot", result.Oneshot}, {"reuse-arena", result.Reuse}, {"parse-json", result.JSON}} {
		fmt.Printf("%-14s %12.0f %14.0f %14.2f\n",
			row.name, row.run.NsPerPlan, row.run.PlansPerSec, row.run.AllocsPerPlan)
	}
	fmt.Printf("reuse-arena vs parse-json: %.2fx plans/s\n", result.SpeedupVsJSON)
	if packPath != "" {
		fmt.Printf("kept packed corpus at %s\n", packPath)
	}

	if out != "" {
		data, err := json.MarshalIndent(result, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	fmt.Println()
	return nil
}
