package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"uplan/internal/bench"
	"uplan/internal/serve"
	"uplan/internal/serve/serveclient"
)

// serveResult is the machine-readable outcome of the serve experiment,
// written by -out. It measures the service end to end — HTTP round
// trips through serveclient against a live in-process server — so the
// numbers include wire serialization, admission, and cache effects the
// raw pipeline benchmarks exclude.
type serveResult struct {
	Experiment    string  `json:"experiment"`
	Seed          int64   `json:"seed"`
	CorpusRecords int     `json:"corpus_records"`
	Clients       int     `json:"clients"`
	ReuseArenas   bool    `json:"reuse_arenas,omitempty"`
	Convert       loadRun `json:"convert"`
	// Batch is one full-corpus batch-convert round trip; PlansPerSec is
	// the server-reported pipeline rate inside that request.
	Batch struct {
		Plans          int     `json:"plans"`
		Seconds        float64 `json:"seconds"`
		ServerPlansSec float64 `json:"server_plans_per_sec"`
	} `json:"batch"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	Shed        int64 `json:"shed"`
	Errors      int64 `json:"errors"`
}

// loadRun records one client-observed load phase.
type loadRun struct {
	Requests       int     `json:"requests"`
	Seconds        float64 `json:"seconds"`
	RequestsPerSec float64 `json:"requests_per_sec"`
}

// runServeExperiment boots an in-process plan service on a loopback :0
// listener and drives it with concurrent serveclient clients: iters
// single converts round-robined over the mixed corpus, then one
// full-corpus batch convert. The server is drained (not killed) at the
// end, so the run also exercises the clean-shutdown path every time.
func runServeExperiment(seed int64, clients, iters int, reuseArenas bool, out string) error {
	corpus, err := bench.Corpus(seed)
	if err != nil {
		return err
	}
	if clients <= 0 {
		clients = runtime.GOMAXPROCS(0)
	}

	srv := serve.New(serve.Options{
		Addr:        "127.0.0.1:0",
		ReuseArenas: reuseArenas,
		// The load test measures throughput, not shedding: queue deep
		// enough that the client fan-in is never refused.
		MaxInFlight: clients,
		MaxQueue:    4 * clients,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	base := "http://" + l.Addr().String()
	fmt.Printf("== Serve: %d clients x %d convert requests against %s (%d-record corpus) ==\n",
		clients, iters, base, len(corpus))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	result := serveResult{
		Experiment:    "serve",
		Seed:          seed,
		CorpusRecords: len(corpus),
		Clients:       clients,
		ReuseArenas:   reuseArenas,
	}

	// Phase 1: single converts, one shared atomic cursor so the request
	// total is exact regardless of client count.
	var next, errs atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := serveclient.New(base, serveclient.Options{})
			for {
				i := next.Add(1) - 1
				if i >= int64(iters) {
					return
				}
				rec := corpus[int(i)%len(corpus)]
				if _, err := client.Convert(ctx, rec.Dialect, rec.Serialized); err != nil {
					errs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	result.Convert = loadRun{
		Requests:       iters,
		Seconds:        elapsed.Seconds(),
		RequestsPerSec: float64(iters) / elapsed.Seconds(),
	}
	fmt.Printf("convert: %d requests in %.3fs (%.0f req/s, %d errors)\n",
		iters, elapsed.Seconds(), result.Convert.RequestsPerSec, errs.Load())

	// Phase 2: one full-corpus batch round trip.
	client := serveclient.New(base, serveclient.Options{})
	records := make([]serve.ConvertRequest, len(corpus))
	for i, r := range corpus {
		records[i] = serve.ConvertRequest{Dialect: r.Dialect, Serialized: r.Serialized}
	}
	start = time.Now()
	batch, err := client.BatchConvert(ctx, records)
	if err != nil {
		errs.Add(1)
		fmt.Fprintln(os.Stderr, "uplan-bench: batch-convert:", err)
	} else {
		result.Batch.Plans = batch.Converted
		result.Batch.Seconds = time.Since(start).Seconds()
		result.Batch.ServerPlansSec = batch.PlansPerSec
		fmt.Printf("batch-convert: %d plans in %.3fs round trip (server pipeline %.0f plans/s)\n",
			batch.Converted, result.Batch.Seconds, batch.PlansPerSec)
	}

	// The server's own counters close the loop: cache hit rate is the
	// corpus-repeat effect, shed should be zero at this queue depth.
	snap := srv.Metrics()
	result.CacheHits = snap.Cache.Hits
	result.CacheMisses = snap.Cache.Misses
	result.Shed = snap.Shed.Single + snap.Shed.Batch
	result.Errors = errs.Load()
	hitRate := 0.0
	if tot := snap.Cache.Hits + snap.Cache.Misses; tot > 0 {
		hitRate = float64(snap.Cache.Hits) / float64(tot)
	}
	fmt.Printf("cache: %d hits / %d misses (%.0f%% hit rate); shed: %d; panics: %d\n",
		snap.Cache.Hits, snap.Cache.Misses, 100*hitRate, result.Shed, snap.Panics)

	// Clean drain, every run: the load test doubles as a shutdown test.
	drainCtx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := srv.Drain(drainCtx); err != nil {
		return err
	}
	if err := <-serveErr; err != nil {
		return err
	}

	if errs.Load() > 0 {
		return fmt.Errorf("serve experiment: %d request(s) failed", errs.Load())
	}
	if out != "" {
		data, err := json.MarshalIndent(result, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	fmt.Println()
	return nil
}
