// Command uplan-serve runs the hardened plan service (internal/serve):
// an HTTP/JSON front end over the conversion pipeline and campaign
// store with bounded admission, per-request deadlines, panic isolation,
// and graceful drain.
//
// Usage:
//
//	uplan-serve [-addr 127.0.0.1:8091] [-workers N] [-inflight N] [-queue N]
//	            [-request-timeout 5s] [-batch-timeout 30s] [-read-timeout 10s]
//	            [-max-body BYTES] [-max-batch N] [-cache N] [-reuse-arenas]
//	            [-store DIR] [-drain-timeout 10s] [-debug-delay 0]
//
// Endpoints: POST /v1/convert, /v1/batch-convert, /v1/fingerprint,
// /v1/compare; GET /v1/campaign-status, /healthz, /readyz, /metrics.
//
// -store DIR attaches the durable campaign log: /v1/campaign-status
// reports its recovered progress, and the drain path syncs it before
// exit so everything journaled is durable.
//
// Shutdown: the first SIGINT/SIGTERM starts a graceful drain — the
// listener closes, /readyz flips to 503, in-flight requests finish or
// are deadline-cancelled at -drain-timeout, the store is synced, and
// the process exits 0. A second signal during the drain forces an
// immediate exit with status 3 (internal/shutdown), so a drain hung on
// sick storage can always be abandoned deliberately.
//
// -debug-delay is a fault-injection aid: it makes every admitted
// conversion handler sleep first, so queue-full sheds and drains with
// in-flight work are deterministic to provoke (the CI smoke job uses
// it). Never set it in production.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"uplan/internal/serve"
	"uplan/internal/shutdown"
	"uplan/internal/store"
)

func main() {
	os.Exit(run())
}

// run is main with an exit code, so defers (store close, notifier stop)
// execute before the process exits.
func run() int {
	addr := flag.String("addr", serve.DefaultAddr, "listen address")
	workers := flag.Int("workers", 0, "batch conversion workers per request (0 = GOMAXPROCS)")
	inflight := flag.Int("inflight", 0, "admission slots: concurrent requests doing conversion work (0 = 2x GOMAXPROCS)")
	queue := flag.Int("queue", serve.DefaultMaxQueue, "admission queue bound before shedding with 429 (batches shed at half; negative = shed immediately)")
	requestTimeout := flag.Duration("request-timeout", serve.DefaultRequestTimeout, "deadline for single-plan requests, queue wait included")
	batchTimeout := flag.Duration("batch-timeout", serve.DefaultBatchTimeout, "deadline for batch-convert requests")
	readTimeout := flag.Duration("read-timeout", serve.DefaultReadTimeout, "connection read deadline (slow-loris bound)")
	maxBody := flag.Int64("max-body", serve.DefaultMaxBodyBytes, "request body byte cap (413 beyond)")
	maxBatch := flag.Int("max-batch", serve.DefaultMaxBatchRecords, "records per batch-convert request (413 beyond)")
	cacheSize := flag.Int("cache", serve.DefaultCacheSize, "convert response cache entries (negative disables)")
	reuseArenas := flag.Bool("reuse-arenas", false, "batch requests use the pipeline's owned-batch arena mode")
	storeDir := flag.String("store", "", "attach the durable campaign log at DIR (served by /v1/campaign-status, synced on drain)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long a graceful drain waits for in-flight requests before cancelling them")
	debugDelay := flag.Duration("debug-delay", 0, "fault injection: sleep every admitted conversion handler this long (testing only)")
	flag.Parse()

	warn := func(msg string) { fmt.Fprintln(os.Stderr, "uplan-serve:", msg) }

	opts := serve.Options{
		Addr:            *addr,
		Workers:         *workers,
		MaxInFlight:     *inflight,
		MaxQueue:        *queue,
		RequestTimeout:  *requestTimeout,
		BatchTimeout:    *batchTimeout,
		ReadTimeout:     *readTimeout,
		MaxBodyBytes:    *maxBody,
		MaxBatchRecords: *maxBatch,
		CacheSize:       *cacheSize,
		ReuseArenas:     *reuseArenas,
		HandlerDelay:    *debugDelay,
	}
	if *debugDelay > 0 {
		warn(fmt.Sprintf("fault injection active: -debug-delay %s holds every admitted handler", *debugDelay))
	}
	if *storeDir != "" {
		log, err := store.Open(*storeDir, store.Options{})
		if err != nil {
			warn(err.Error())
			return 1
		}
		defer func() {
			if err := log.Close(); err != nil {
				warn("store close: " + err.Error())
			}
		}()
		opts.Store = log
		rec := log.Recovered()
		fmt.Printf("uplan-serve: campaign store %s attached: %d plans, %d findings, %d checkpointed tasks\n",
			*storeDir, len(rec.Plans), len(rec.Findings), len(rec.Progress))
	}

	srv := serve.New(opts)

	// Listen before arming signals so a bad -addr fails fast with a plain
	// error instead of looking like a drain.
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		warn(err.Error())
		return 1
	}
	fmt.Printf("uplan-serve: listening on %s\n", l.Addr())

	// First signal cancels ctx (graceful drain below); a second one during
	// the drain forces exit 3 from inside the notifier.
	ctx, notifier := shutdown.Install(context.Background(), warn)
	defer notifier.Stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	select {
	case err := <-serveErr:
		// The listener died without a signal — a real failure.
		if err != nil {
			warn(err.Error())
			return 1
		}
		return 0
	case <-ctx.Done():
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	if err := srv.Drain(drainCtx); err != nil {
		warn(err.Error())
		code = 1
	}
	if err := <-serveErr; err != nil {
		warn(err.Error())
		code = 1
	}
	if code == 0 {
		fmt.Println("uplan-serve: drained clean")
	}
	return code
}
