// Command uplan-fuzz runs the paper's Table V campaign: QPG and CERT —
// both implemented once, DBMS-agnostically, over the unified plan
// representation — hunt the 17 injected defects in the simulated MySQL,
// PostgreSQL, and TiDB engines.
//
// Usage:
//
//	uplan-fuzz [-seed 11] [-budget 350] [-bug 113302]
package main

import (
	"flag"
	"fmt"
	"os"

	"uplan/internal/bugs"
)

func main() {
	seed := flag.Int64("seed", 11, "generator seed")
	budget := flag.Int("budget", 350, "query budget per bug")
	bugID := flag.String("bug", "", "hunt a single bug ID (default: all of Table V)")
	flag.Parse()

	var results []bugs.CampaignResult
	if *bugID != "" {
		var target *bugs.Bug
		for i := range bugs.TableV {
			if bugs.TableV[i].ID == *bugID {
				target = &bugs.TableV[i]
			}
		}
		if target == nil {
			fmt.Fprintf(os.Stderr, "uplan-fuzz: unknown bug id %q\n", *bugID)
			os.Exit(2)
		}
		res, err := bugs.RunOne(*target, *seed, *budget)
		if err != nil {
			fmt.Fprintln(os.Stderr, "uplan-fuzz:", err)
			os.Exit(1)
		}
		results = []bugs.CampaignResult{res}
	} else {
		var err error
		results, err = bugs.RunTableV(*seed, *budget)
		if err != nil {
			fmt.Fprintln(os.Stderr, "uplan-fuzz:", err)
			os.Exit(1)
		}
	}

	found := 0
	fmt.Printf("%-12s %-8s %-8s %-10s %-12s %s\n",
		"DBMS", "Found by", "Bug ID", "Status", "Severity", "Result")
	for _, r := range results {
		mark := "missed"
		if r.Found {
			mark = "rediscovered"
			found++
		}
		fmt.Printf("%-12s %-8s %-8s %-10s %-12s %s\n",
			r.Bug.DBMS, r.Bug.FoundBy, r.Bug.ID, r.Bug.Status, r.Bug.Severity, mark)
		if r.Found {
			fmt.Printf("             evidence: %s\n", r.Evidence)
		}
	}
	fmt.Printf("\n%d/%d injected bugs rediscovered\n", found, len(results))
}
