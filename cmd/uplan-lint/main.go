// Command uplan-lint runs uplan's custom static-analysis suite — the
// arenaescape, oracleerr, and hotalloc analyzers that mechanically enforce
// the arena-lifecycle, oracle-error, and hot-path contracts — over the
// given package patterns.
//
// Usage:
//
//	uplan-lint [flags] [packages]
//
//	uplan-lint ./...                       # whole tree, all analyzers
//	uplan-lint -analyzers oracleerr ./...  # single-analyzer selection
//	uplan-lint -json ./... | jq .          # machine-readable findings
//
// The process exits 0 when the tree is clean, 1 when any diagnostic was
// reported, and 2 on usage or load errors. Findings are suppressed per
// line with `//lint:allow <analyzer> <reason>`; the reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"uplan/internal/lint"
)

func main() {
	var (
		analyzers = flag.String("analyzers", "", "comma-separated analyzer selection (default: all)")
		jsonOut   = flag.Bool("json", false, "emit diagnostics as JSON, one object per line")
		listOnly  = flag.Bool("list", false, "list the available analyzers and exit")
		dir       = flag.String("dir", "", "module directory to run in (default: current directory)")
		extraDeny = flag.String("oracleerr.deny", "", "comma-separated additional deny-list entries (pkgpath.Func or pkgpath.Type.Method)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: uplan-lint [flags] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listOnly {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected, err := lint.Select(*analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *extraDeny != "" {
		for _, d := range strings.Split(*extraDeny, ",") {
			if d = strings.TrimSpace(d); d != "" {
				lint.OracleErrDeny = append(lint.OracleErrDeny, d)
			}
		}
	}

	pkgs, err := lint.Load(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, selected)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			if err := enc.Encode(struct {
				File     string `json:"file"`
				Line     int    `json:"line"`
				Column   int    `json:"column"`
				Analyzer string `json:"analyzer"`
				Message  string `json:"message"`
			}{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message}); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "uplan-lint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
