package viz

import (
	"strings"
	"testing"

	"uplan/internal/core"
)

func samplePlan() *core.Plan {
	scan := core.NewNode(core.Producer, "Full Table Scan").
		AddProperty(core.Configuration, "name object", core.Str("t0")).
		AddProperty(core.Cardinality, "estimated rows", core.Num(100))
	agg := core.NewNode(core.Folder, "Hash Aggregate").
		AddProperty(core.Configuration, "group key", core.Str("c0"))
	agg.AddChild(scan)
	p := &core.Plan{Source: "postgresql", Root: agg}
	p.AddProperty(core.Status, "planning time", core.Num(0.2))
	return p
}

func TestASCII(t *testing.T) {
	out := ASCII(samplePlan())
	for _, want := range []string{"[postgresql]", "Folder→Hash Aggregate",
		"Producer→Full Table Scan", "group key", "planning time", "└─"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII missing %q:\n%s", want, out)
		}
	}
}

func TestDOT(t *testing.T) {
	out := DOT(samplePlan())
	for _, want := range []string{"digraph uplan", "Producer", "Hash Aggregate",
		"n1 -> n0", "fillcolor"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// Quotes in names must be escaped.
	p := &core.Plan{Root: core.NewNode(core.Executor, `odd "name"`)}
	if !strings.Contains(DOT(p), `odd \"name\"`) {
		t.Error("DOT must escape quotes")
	}
}

func TestHTML(t *testing.T) {
	out := HTML("Test & Title", samplePlan(), samplePlan())
	for _, want := range []string{"<!DOCTYPE html>", "Test &amp; Title",
		"Full Table Scan", "class=\"node\"", "planning time"} {
		if !strings.Contains(out, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
	if strings.Count(out, "class=\"plan\"") != 2 {
		t.Error("HTML should render both plans side by side")
	}
	// Script injection through plan content must be escaped.
	evil := &core.Plan{Root: core.NewNode(core.Executor, "<script>alert(1)</script>")}
	if strings.Contains(HTML("x", evil), "<script>alert") {
		t.Error("HTML must escape operator names")
	}
}

func TestEmptyPlan(t *testing.T) {
	p := &core.Plan{Source: "influxdb"}
	p.AddProperty(core.Cardinality, "estimated rows", core.Num(5))
	if out := ASCII(p); !strings.Contains(out, "estimated rows") {
		t.Errorf("property-only plan should render plan props:\n%s", out)
	}
	if out := DOT(p); !strings.Contains(out, "digraph") {
		t.Error("DOT of empty plan should still be a valid digraph")
	}
}
