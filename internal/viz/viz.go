// Package viz renders unified query plans visually — application A.2 of
// the paper. One renderer serves every DBMS with a converter, which is the
// paper's point: a PEV2-class tool needs only moderate changes to support
// all studied systems once plans are unified. Three backends are provided:
// an ASCII tree for terminals, Graphviz DOT, and a self-contained HTML
// page in the PEV2 visual idiom (operation boxes with category badges and
// property lists).
package viz

import (
	"fmt"
	"html"
	"strings"

	"uplan/internal/core"
)

// categoryColor maps operation categories to display colors.
var categoryColor = map[core.OperationCategory]string{
	core.Producer:   "#2e7d32",
	core.Combinator: "#1565c0",
	core.Join:       "#c62828",
	core.Folder:     "#6a1b9a",
	core.Projector:  "#00838f",
	core.Executor:   "#616161",
	core.Consumer:   "#ef6c00",
}

// ASCII renders the plan as an indented tree with category prefixes and
// selected properties, the terminal equivalent of Figure 3's node boxes.
func ASCII(p *core.Plan) string {
	var b strings.Builder
	if p.Source != "" {
		fmt.Fprintf(&b, "[%s]\n", p.Source)
	}
	var walk func(n *core.Node, prefix string, last bool, root bool)
	walk = func(n *core.Node, prefix string, last bool, root bool) {
		connector := "├─ "
		childPrefix := prefix + "│  "
		if last {
			connector = "└─ "
			childPrefix = prefix + "   "
		}
		if root {
			connector = ""
			childPrefix = ""
		}
		fmt.Fprintf(&b, "%s%s%s→%s", prefix, connector, n.Op.Category, n.Op.Name)
		if est, ok := findNum(n, core.Cardinality, "estimated rows"); ok {
			fmt.Fprintf(&b, "  (rows≈%g)", est)
		}
		b.WriteByte('\n')
		for _, pr := range n.Properties {
			if pr.Category != core.Configuration {
				continue
			}
			fmt.Fprintf(&b, "%s   %s = %s\n", childPrefix, pr.Name, pr.Value.String())
		}
		for i, c := range n.Children {
			walk(c, childPrefix, i == len(n.Children)-1, false)
		}
	}
	if p.Root != nil {
		walk(p.Root, "", true, true)
	}
	for _, pr := range p.Properties {
		fmt.Fprintf(&b, "%s: %s\n", pr.Name, pr.Value.String())
	}
	return b.String()
}

func findNum(n *core.Node, cat core.PropertyCategory, name string) (float64, bool) {
	for _, pr := range n.Properties {
		if pr.Category == cat && pr.Name == name && pr.Value.Kind == core.KindNumber {
			return pr.Value.Num, true
		}
	}
	return 0, false
}

// DOT renders the plan as a Graphviz digraph with category-colored nodes.
func DOT(p *core.Plan) string {
	var b strings.Builder
	b.WriteString("digraph uplan {\n  rankdir=BT;\n  node [shape=box, style=filled, fontname=\"Helvetica\"];\n")
	id := 0
	var walk func(n *core.Node) int
	walk = func(n *core.Node) int {
		my := id
		id++
		color := categoryColor[n.Op.Category]
		if color == "" {
			color = "#9e9e9e"
		}
		label := fmt.Sprintf("%s\\n%s", n.Op.Category, escapeDOT(n.Op.Name))
		if obj, ok := n.Property("name object"); ok {
			label += "\\n" + escapeDOT(obj.Value.Str)
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\", fillcolor=\"%s\", fontcolor=white];\n",
			my, label, color)
		for _, c := range n.Children {
			ci := walk(c)
			fmt.Fprintf(&b, "  n%d -> n%d;\n", ci, my)
		}
		return my
	}
	if p.Root != nil {
		walk(p.Root)
	}
	b.WriteString("}\n")
	return b.String()
}

func escapeDOT(s string) string {
	return strings.ReplaceAll(strings.ReplaceAll(s, `\`, `\\`), `"`, `\"`)
}

// HTML renders a self-contained page showing one or more plans side by
// side (Figure 3 shows PostgreSQL, MongoDB, and MySQL plans of TPC-H q1).
func HTML(title string, plans ...*core.Plan) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(title))
	b.WriteString(`<style>
body { font-family: Helvetica, Arial, sans-serif; background: #f5f5f5; }
.plans { display: flex; gap: 24px; align-items: flex-start; }
.plan { background: white; border-radius: 8px; padding: 12px; box-shadow: 0 1px 4px rgba(0,0,0,.2); }
.plan h2 { margin: 0 0 8px 0; font-size: 15px; }
.node { border: 1px solid #ddd; border-radius: 6px; margin: 6px 0 6px 18px; padding: 6px 10px; }
.cat { display: inline-block; color: white; border-radius: 4px; padding: 1px 6px; font-size: 11px; margin-right: 6px; }
.name { font-weight: bold; font-size: 13px; }
.prop { font-size: 11px; color: #555; margin-left: 4px; }
.planprops { font-size: 11px; color: #333; margin-top: 8px; border-top: 1px solid #eee; padding-top: 6px; }
</style></head><body>` + "\n")
	fmt.Fprintf(&b, "<h1>%s</h1>\n<div class=\"plans\">\n", html.EscapeString(title))
	for _, p := range plans {
		b.WriteString("<div class=\"plan\">\n")
		src := p.Source
		if src == "" {
			src = "unified plan"
		}
		fmt.Fprintf(&b, "<h2>%s</h2>\n", html.EscapeString(src))
		var walk func(n *core.Node)
		walk = func(n *core.Node) {
			color := categoryColor[n.Op.Category]
			if color == "" {
				color = "#9e9e9e"
			}
			fmt.Fprintf(&b, "<div class=\"node\"><span class=\"cat\" style=\"background:%s\">%s</span>",
				color, html.EscapeString(string(n.Op.Category)))
			fmt.Fprintf(&b, "<span class=\"name\">%s</span>", html.EscapeString(n.Op.Name))
			for _, pr := range n.Properties {
				if pr.Category == core.Configuration || pr.Category == core.Cardinality {
					fmt.Fprintf(&b, "<div class=\"prop\">%s: %s</div>",
						html.EscapeString(pr.Name), html.EscapeString(pr.Value.String()))
				}
			}
			for _, c := range n.Children {
				walk(c)
			}
			b.WriteString("</div>\n")
		}
		if p.Root != nil {
			walk(p.Root)
		}
		if len(p.Properties) > 0 {
			b.WriteString("<div class=\"planprops\">")
			for _, pr := range p.Properties {
				fmt.Fprintf(&b, "%s: %s<br>", html.EscapeString(pr.Name),
					html.EscapeString(pr.Value.String()))
			}
			b.WriteString("</div>\n")
		}
		b.WriteString("</div>\n")
	}
	b.WriteString("</div></body></html>\n")
	return b.String()
}
