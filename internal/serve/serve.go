// Package serve is the hardened plan service: an HTTP/JSON front end over
// the conversion pipeline and campaign store, built to stay up under
// overload rather than merely to be fast. The unified plan JSON is the
// wire payload (the paper's canonical serialization is already the right
// interchange shape); the robustness machinery is the point:
//
//   - Bounded admission: a fixed in-flight slot pool plus a bounded wait
//     queue. A full queue sheds with 429 + Retry-After instead of
//     accumulating goroutines; batch requests shed at half the queue bound
//     so interactive converts degrade last.
//   - Per-request deadlines: every admitted request runs under a timeout
//     threaded through pipeline.ForEachChunkedCtx, so a slow batch cannot
//     hold a worker slot past its budget.
//   - Panic isolation: a handler panic is recovered, counted, and answered
//     with a 500 — one poisoned request never takes the process down.
//   - Graceful drain: Drain stops accepting, lets in-flight work finish or
//     deadline-cancels it, syncs any attached campaign store, and leaves
//     health probes answering truthfully throughout (/readyz flips to 503
//     the moment draining starts; /healthz stays 200 while alive).
//   - Arena lifecycles: single conversions decode into pooled arenas that
//     are reset and reused per request; batch conversions run the
//     pipeline's owned-batch ReuseArenas mode. Plans never outlive their
//     arena without a Clone detach (the arenaescape lint enforces this).
//
// cmd/uplan-serve is the binary; serveclient is the matching retrying
// client; uplan-bench -experiment serve is the load generator.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"uplan/internal/codec"
	"uplan/internal/convert"
	"uplan/internal/core"
	"uplan/internal/pipeline"
	"uplan/internal/store"
)

// Options configure a Server. The zero value serves on DefaultAddr with
// production-shaped bounds.
type Options struct {
	// Addr is the listen address for ListenAndServe. Empty means
	// DefaultAddr.
	Addr string
	// Workers bounds the batch conversion pool per request. Non-positive
	// means GOMAXPROCS (ConvertBatch clamps further).
	Workers int
	// MaxInFlight is the admission slot count: how many requests may hold
	// conversion work concurrently. Non-positive means 2×GOMAXPROCS.
	MaxInFlight int
	// MaxQueue bounds how many requests may wait for a slot before the
	// server sheds with 429. Batch requests shed at MaxQueue/2. Zero
	// means DefaultMaxQueue; negative means no waiting (shed immediately
	// when all slots are busy).
	MaxQueue int
	// RequestTimeout is the deadline for single-plan requests (convert,
	// fingerprint, compare), queue wait included. Non-positive means
	// DefaultRequestTimeout.
	RequestTimeout time.Duration
	// BatchTimeout is the deadline for batch-convert requests, threaded
	// into the pipeline's context so unclaimed records are cut off at the
	// deadline. Non-positive means DefaultBatchTimeout.
	BatchTimeout time.Duration
	// ReadHeaderTimeout and ReadTimeout bound how long a connection may
	// take to deliver its request — the slow-loris defense. Non-positive
	// means DefaultReadTimeout.
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	// MaxBodyBytes caps a request body; larger bodies get 413.
	// Non-positive means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// MaxBatchRecords caps the records in one batch-convert request.
	// Non-positive means DefaultMaxBatchRecords.
	MaxBatchRecords int
	// CacheSize is the convert response cache capacity in entries
	// (fingerprint-keyed LRU; see responseCache). Zero means
	// DefaultCacheSize; negative disables the cache.
	CacheSize int
	// ReuseArenas selects the pipeline's owned-batch arena mode for batch
	// requests (single conversions always use pooled request arenas).
	ReuseArenas bool
	// Store, when non-nil, attaches a campaign log: /v1/campaign-status
	// reports it and Drain syncs it before returning. The caller owns the
	// store's lifecycle (the server never closes it).
	Store *store.Store
	// HandlerDelay, when positive, sleeps every admitted conversion
	// handler for the duration before it does any work — a fault-injection
	// aid for queue-full and drain testing (the CI smoke uses it to make
	// 429s deterministic). Never set it in production.
	HandlerDelay time.Duration
}

// Defaults for the zero Options value.
const (
	DefaultAddr            = "127.0.0.1:8091"
	DefaultMaxQueue        = 64
	DefaultRequestTimeout  = 5 * time.Second
	DefaultBatchTimeout    = 30 * time.Second
	DefaultReadTimeout     = 10 * time.Second
	DefaultMaxBodyBytes    = 8 << 20 // 8 MiB
	DefaultMaxBatchRecords = 4096
	DefaultCacheSize       = 1024
)

func (o Options) withDefaults() Options {
	if o.Addr == "" {
		o.Addr = DefaultAddr
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	switch {
	case o.MaxQueue == 0:
		o.MaxQueue = DefaultMaxQueue
	case o.MaxQueue < 0:
		o.MaxQueue = 0
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = DefaultRequestTimeout
	}
	if o.BatchTimeout <= 0 {
		o.BatchTimeout = DefaultBatchTimeout
	}
	if o.ReadHeaderTimeout <= 0 {
		o.ReadHeaderTimeout = DefaultReadTimeout
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = DefaultReadTimeout
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if o.MaxBatchRecords <= 0 {
		o.MaxBatchRecords = DefaultMaxBatchRecords
	}
	if o.CacheSize == 0 {
		o.CacheSize = DefaultCacheSize
	}
	return o
}

// Server is the plan service. Create with New; the zero value is not
// usable.
type Server struct {
	opts Options

	adm     *admission
	cache   *responseCache
	metrics *metrics
	arenas  sync.Pool // *core.PlanArena, reset between requests

	handler http.Handler
	http    *http.Server

	// baseCtx parents every request context; Drain cancels it when the
	// drain deadline expires, deadline-cancelling all in-flight work.
	baseCtx    context.Context
	cancelBase context.CancelFunc

	draining atomic.Bool
	drainMu  sync.Mutex // serializes Drain
}

// New builds a Server from opts. It does not listen; call ListenAndServe
// or Serve, or mount Handler on an existing server for tests.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		adm:     newAdmission(opts.MaxInFlight, opts.MaxQueue),
		cache:   newResponseCache(opts.CacheSize),
		metrics: newMetrics(),
	}
	s.arenas.New = func() any { return core.NewPlanArena() }
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/convert", s.handleConvert)
	mux.HandleFunc("POST /v1/batch-convert", s.handleBatch)
	mux.HandleFunc("POST /v1/fingerprint", s.handleFingerprint)
	mux.HandleFunc("POST /v1/compare", s.handleCompare)
	mux.HandleFunc("GET /v1/campaign-status", s.handleCampaignStatus)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.handler = s.isolate(mux)

	s.http = &http.Server{
		Addr:              opts.Addr,
		Handler:           s.handler,
		ReadHeaderTimeout: opts.ReadHeaderTimeout,
		ReadTimeout:       opts.ReadTimeout,
		BaseContext:       func(net.Listener) context.Context { return s.baseCtx },
	}
	return s
}

// Handler returns the service's full handler (panic isolation included),
// for mounting under httptest or an existing mux.
func (s *Server) Handler() http.Handler { return s.handler }

// Metrics snapshots the server's counters — the same data /metrics
// serves.
func (s *Server) Metrics() MetricsSnapshot { return s.snapshot() }

// ListenAndServe listens on Options.Addr and serves until Drain (returns
// nil then) or a listener error.
func (s *Server) ListenAndServe() error {
	l, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", s.opts.Addr, err)
	}
	return s.Serve(l)
}

// Serve accepts connections from l until Drain. The listener is closed by
// the underlying http.Server on shutdown.
func (s *Server) Serve(l net.Listener) error {
	err := s.http.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Addr formats the address Serve would be reached on; tests use it with a
// :0 listener.
func (s *Server) Addr() string { return s.opts.Addr }

// Drain shuts the server down gracefully: new connections are refused and
// /readyz flips to 503 immediately, in-flight requests run to completion
// or until ctx's deadline (then their contexts are cancelled and
// connections force-closed), and any attached campaign store is synced so
// everything journaled is durable before the process exits. Drain is
// idempotent and safe to call concurrently; it returns the first
// shutdown or store-sync failure.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	s.draining.Store(true)

	var errs []error
	// Shutdown stops accepting and waits for in-flight requests. When ctx
	// expires first, cancel the base context — every request context
	// derives from it, so batches stop at their next chunk boundary — and
	// force-close whatever connections remain.
	if err := s.http.Shutdown(ctx); err != nil {
		s.cancelBase()
		if cerr := s.http.Close(); cerr != nil {
			errs = append(errs, fmt.Errorf("serve: close: %w", cerr))
		}
		errs = append(errs, fmt.Errorf("serve: drain: %w", err))
	}
	s.cancelBase()

	// The durability barrier: a drain that answered "journaled" must not
	// lose it to a missing fsync. Failures surface to the caller — the
	// process should exit nonzero when its final sync failed.
	if s.opts.Store != nil {
		if err := s.opts.Store.Sync(); err != nil {
			errs = append(errs, fmt.Errorf("serve: store sync on drain: %w", err))
		}
	}
	return errors.Join(errs...)
}

// isolate wraps the mux with per-request panic isolation: a panicking
// handler is counted and answered with a 500 instead of unwinding into
// the connection goroutine.
func (s *Server) isolate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		iw := &isolatedWriter{ResponseWriter: w}
		defer func() {
			if v := recover(); v != nil {
				s.metrics.panics.Add(1)
				if !iw.wrote {
					s.writeError(iw, http.StatusInternalServerError,
						fmt.Sprintf("internal error: %v", v), 0)
				}
			}
		}()
		next.ServeHTTP(iw, r)
	})
}

// isolatedWriter tracks whether a response has started, so the panic
// handler knows if a 500 can still be written.
type isolatedWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *isolatedWriter) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *isolatedWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

// writeJSON marshals v and writes it with the given status. Write
// failures (client gone mid-response) are counted, never retried.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		// Marshaling our own response types cannot fail; treat it as the
		// internal error it would be.
		s.metrics.panics.Add(1)
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	s.writeBody(w, status, body)
}

// writeBody writes a pre-marshaled JSON body.
func (s *Server) writeBody(w http.ResponseWriter, status int, body []byte) {
	s.writeTyped(w, status, jsonContentType, body)
}

// writeTyped writes a pre-marshaled body under an explicit media type —
// the shared tail of the JSON and binary response paths.
func (s *Server) writeTyped(w http.ResponseWriter, status int, contentType string, body []byte) {
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	if _, err := w.Write(body); err != nil {
		s.metrics.writeErrors.Add(1)
	}
}

// writeError answers with an ErrorResponse; retryAfter > 0 additionally
// sets the Retry-After header (the 429 backpressure contract).
func (s *Server) writeError(w http.ResponseWriter, status int, msg string, retryAfter int) {
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	s.writeJSON(w, status, ErrorResponse{Error: msg, RetryAfterSeconds: retryAfter})
}

// admit runs the admission queue for one request and maps the failure
// modes to their responses. On success the caller must invoke the
// returned release.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter, batch bool) (func(), bool) {
	release, err := s.adm.acquire(ctx, batch)
	if err == nil {
		return release, true
	}
	if shed, ok := asShed(err); ok {
		if batch {
			s.metrics.shedBatch.Add(1)
		} else {
			s.metrics.shedSingle.Add(1)
		}
		s.writeError(w, http.StatusTooManyRequests, shed.Error(), shed.retryAfter)
		return nil, false
	}
	// The request's deadline expired while it waited in the queue: the
	// work never started, so the client may retry safely.
	s.metrics.queueWaitExpired.Add(1)
	s.writeError(w, http.StatusServiceUnavailable,
		"deadline expired waiting for admission", 1)
	return nil, false
}

// decode reads one bounded JSON request body.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		s.badBody(w, err)
		return false
	}
	return true
}

// readBinaryBody reads one bounded binary request body in full; the wire
// decoders need the complete message.
func (s *Server) readBinaryBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	data, err := io.ReadAll(r.Body)
	if err != nil {
		s.badBody(w, err)
		return nil, false
	}
	return data, true
}

// badBody answers a request whose body failed to read or decode: 413 when
// the bound cut it off, 400 otherwise.
func (s *Server) badBody(w http.ResponseWriter, err error) {
	s.metrics.badRequests.Add(1)
	status := http.StatusBadRequest
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		status = http.StatusRequestEntityTooLarge
	}
	s.writeError(w, status, "bad request body: "+err.Error(), 0)
}

// decodeConvert reads one convert request in its negotiated format:
// binary when the Content-Type says so, bounded JSON otherwise.
func (s *Server) decodeConvert(w http.ResponseWriter, r *http.Request, dst *ConvertRequest) bool {
	if !isBinaryContent(r) {
		return s.decode(w, r, dst)
	}
	data, ok := s.readBinaryBody(w, r)
	if !ok {
		return false
	}
	req, err := DecodeBinaryConvertRequest(data)
	if err != nil {
		s.badBody(w, err)
		return false
	}
	*dst = req
	return true
}

// decodeBatch is decodeConvert's batch-request counterpart.
func (s *Server) decodeBatch(w http.ResponseWriter, r *http.Request, dst *BatchRequest) bool {
	if !isBinaryContent(r) {
		return s.decode(w, r, dst)
	}
	data, ok := s.readBinaryBody(w, r)
	if !ok {
		return false
	}
	req, err := DecodeBinaryBatchRequest(data)
	if err != nil {
		s.badBody(w, err)
		return false
	}
	*dst = req
	return true
}

// delay is the HandlerDelay fault-injection hook, context-aware so a
// drain is never held up by it.
func (s *Server) delay(ctx context.Context) {
	if s.opts.HandlerDelay <= 0 {
		return
	}
	t := time.NewTimer(s.opts.HandlerDelay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// convertInPooledArena converts one record inside a pooled request arena
// and hands the in-arena plan to use before the arena is reset. The plan
// must not escape use (build the response inside it); anything retained
// must be detached with Plan.Clone first.
func (s *Server) convertInPooledArena(dialect, serialized string, use func(p *core.Plan) error) error {
	ar := s.arenas.Get().(*core.PlanArena)
	defer func() {
		ar.Reset()
		s.arenas.Put(ar)
	}()
	p, err := convert.ConvertInto(dialect, serialized, ar)
	if err != nil {
		return err
	}
	return use(p)
}

// buildConvertBody converts one request and marshals the full
// ConvertResponse body, for the convert handler and its cache fill.
func (s *Server) buildConvertBody(req ConvertRequest) ([]byte, error) {
	var resp ConvertResponse
	err := s.convertInPooledArena(req.Dialect, req.Serialized, func(p *core.Plan) error {
		planJSON, merr := p.MarshalJSON()
		if merr != nil {
			return fmt.Errorf("marshaling converted plan: %w", merr)
		}
		resp = ConvertResponse{
			Dialect:       req.Dialect,
			Plan:          planJSON,
			Fingerprint64: strconv.FormatUint(p.Fingerprint64(core.FingerprintOptions{}), 10),
			Fingerprint:   core.HexFingerprint(p.FingerprintBytes(core.FingerprintOptions{})),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return json.Marshal(resp)
}

// buildConvertBinary is buildConvertBody on the binary wire: the plan
// leaves as an internal/codec blob instead of canonical JSON, the
// fingerprints in their natural binary forms.
func (s *Server) buildConvertBinary(req ConvertRequest) ([]byte, error) {
	var body []byte
	err := s.convertInPooledArena(req.Dialect, req.Serialized, func(p *core.Plan) error {
		blob, merr := codec.Encode(p)
		if merr != nil {
			return fmt.Errorf("encoding converted plan: %w", merr)
		}
		body = AppendBinaryConvertResponse(nil, BinaryConvertResponse{
			Dialect:       req.Dialect,
			Fingerprint64: p.Fingerprint64(core.FingerprintOptions{}),
			Fingerprint:   p.FingerprintBytes(core.FingerprintOptions{}),
			PlanBlob:      blob,
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return body, nil
}

func (s *Server) handleConvert(w http.ResponseWriter, r *http.Request) {
	s.metrics.convert.Add(1)
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()

	var req ConvertRequest
	if !s.decodeConvert(w, r, &req) {
		return
	}
	binary := acceptsBinary(r)

	// Cache before admission: a hit costs one hash and one map probe, so
	// it must not consume (or wait for) a conversion slot. The key folds
	// in the negotiated response format — identical input bytes hit only
	// within their own format.
	key := cacheKey(req.Dialect, req.Serialized, binary)
	if body, ok := s.cache.Get(key); ok {
		w.Header().Set(CacheHeader, "hit")
		s.writeTyped(w, http.StatusOK, negotiatedType(binary), body)
		return
	}

	release, ok := s.admit(ctx, w, false)
	if !ok {
		return
	}
	defer release()
	s.delay(ctx)
	if err := ctx.Err(); err != nil {
		s.metrics.deadlineExceeded.Add(1)
		s.writeError(w, http.StatusServiceUnavailable, "request deadline expired", 1)
		return
	}

	var body []byte
	var err error
	if binary {
		body, err = s.buildConvertBinary(req)
	} else {
		body, err = s.buildConvertBody(req)
	}
	s.metrics.recordOne(req.Dialect, err)
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, err.Error(), 0)
		return
	}
	s.cache.Put(key, body)
	w.Header().Set(CacheHeader, "miss")
	s.writeTyped(w, http.StatusOK, negotiatedType(binary), body)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.metrics.batch.Add(1)
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.BatchTimeout)
	defer cancel()

	var req BatchRequest
	if !s.decodeBatch(w, r, &req) {
		return
	}
	binary := acceptsBinary(r)
	if len(req.Records) == 0 {
		s.metrics.badRequests.Add(1)
		s.writeError(w, http.StatusBadRequest, "batch has no records", 0)
		return
	}
	if len(req.Records) > s.opts.MaxBatchRecords {
		s.metrics.badRequests.Add(1)
		s.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d records exceeds the %d-record cap; split it",
				len(req.Records), s.opts.MaxBatchRecords), 0)
		return
	}

	release, ok := s.admit(ctx, w, true)
	if !ok {
		return
	}
	defer release()
	s.delay(ctx)

	records := make([]pipeline.Record, len(req.Records))
	for i, cr := range req.Records {
		records[i] = pipeline.Record{Dialect: cr.Dialect, Serialized: cr.Serialized}
	}
	results, stats := pipeline.ConvertBatch(records, pipeline.Options{
		Workers:     s.opts.Workers,
		ReuseArenas: s.opts.ReuseArenas,
		Context:     ctx,
	})
	s.metrics.recordBatch(stats)

	deadlineExceeded := false
	if err := ctx.Err(); err != nil {
		s.metrics.deadlineExceeded.Add(1)
		deadlineExceeded = true
	}

	if binary {
		resp := BinaryBatchResponse{
			Results:          make([]BinaryBatchItem, len(results)),
			Converted:        stats.Converted,
			DeadlineExceeded: deadlineExceeded,
			ElapsedSeconds:   stats.Elapsed.Seconds(),
			PlansPerSec:      stats.PlansPerSec(),
		}
		for i, res := range results {
			if res.Err != nil {
				resp.Results[i] = BinaryBatchItem{Error: res.Err.Error()}
				resp.Errors++
				continue
			}
			blob, err := codec.Encode(res.Plan)
			if err != nil {
				resp.Results[i] = BinaryBatchItem{Error: err.Error()}
				resp.Errors++
				continue
			}
			resp.Results[i] = BinaryBatchItem{PlanBlob: blob}
		}
		s.writeTyped(w, http.StatusOK, BinaryContentType, AppendBinaryBatchResponse(nil, resp))
		return
	}

	resp := BatchResponse{
		Results:          make([]BatchItem, len(results)),
		Converted:        stats.Converted,
		DeadlineExceeded: deadlineExceeded,
		ElapsedSeconds:   stats.Elapsed.Seconds(),
		PlansPerSec:      stats.PlansPerSec(),
	}
	// Errors counts per slot, not from stats: records the deadline cut off
	// before a worker claimed them carry ctx's error in their slot but are
	// not conversion errors, and the response must still add up.
	for i, res := range results {
		if res.Err != nil {
			resp.Results[i] = BatchItem{Error: res.Err.Error()}
			resp.Errors++
			continue
		}
		planJSON, err := res.Plan.MarshalJSON()
		if err != nil {
			resp.Results[i] = BatchItem{Error: err.Error()}
			resp.Errors++
			continue
		}
		resp.Results[i] = BatchItem{Plan: planJSON}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFingerprint(w http.ResponseWriter, r *http.Request) {
	s.metrics.fingerprint.Add(1)
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()

	var req ConvertRequest
	if !s.decode(w, r, &req) {
		return
	}
	release, ok := s.admit(ctx, w, false)
	if !ok {
		return
	}
	defer release()
	s.delay(ctx)

	var resp FingerprintResponse
	err := s.convertInPooledArena(req.Dialect, req.Serialized, func(p *core.Plan) error {
		resp = FingerprintResponse{
			Dialect:       req.Dialect,
			Fingerprint64: strconv.FormatUint(p.Fingerprint64(core.FingerprintOptions{}), 10),
			Fingerprint:   core.HexFingerprint(p.FingerprintBytes(core.FingerprintOptions{})),
		}
		return nil
	})
	s.metrics.recordOne(req.Dialect, err)
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, err.Error(), 0)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	s.metrics.compare.Add(1)
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()

	var req CompareRequest
	if !s.decode(w, r, &req) {
		return
	}
	release, ok := s.admit(ctx, w, false)
	if !ok {
		return
	}
	defer release()
	s.delay(ctx)

	// Convert A and detach it, so one pooled arena serves both plans
	// sequentially; B is compared in-arena and never escapes.
	var planA *core.Plan
	err := s.convertInPooledArena(req.A.Dialect, req.A.Serialized, func(p *core.Plan) error {
		planA = p.Clone()
		return nil
	})
	s.metrics.recordOne(req.A.Dialect, err)
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, "plan a: "+err.Error(), 0)
		return
	}
	var resp CompareResponse
	err = s.convertInPooledArena(req.B.Dialect, req.B.Serialized, func(p *core.Plan) error {
		diffs := core.Compare(planA, p)
		resp = CompareResponse{
			Equal:        len(diffs) == 0,
			Similarity:   core.Similarity(planA, p),
			EditDistance: core.TreeEditDistance(planA, p),
		}
		for _, d := range diffs {
			resp.Diffs = append(resp.Diffs, d.String())
		}
		return nil
	})
	s.metrics.recordOne(req.B.Dialect, err)
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, "plan b: "+err.Error(), 0)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// campaignStatus builds the status body from the attached store.
func (s *Server) campaignStatus() CampaignStatusResponse {
	st := s.opts.Store
	if st == nil {
		return CampaignStatusResponse{}
	}
	resp := CampaignStatusResponse{
		Attached: true,
		Dir:      st.Dir(),
		Plans:    st.Plans(),
		Findings: st.Findings(),
	}
	rec := st.Recovered()
	for _, key := range rec.Tasks() {
		p := rec.Progress[key]
		resp.Tasks = append(resp.Tasks, CampaignTaskStatus{
			Engine: key.Engine, Oracle: key.Oracle,
			Done: p.Done, Queries: p.Queries,
		})
	}
	return resp
}

func (s *Server) handleCampaignStatus(w http.ResponseWriter, r *http.Request) {
	s.metrics.campaignStatus.Add(1)
	s.writeJSON(w, http.StatusOK, s.campaignStatus())
}

// handleHealthz is the liveness probe: 200 as long as the process can
// answer at all, draining included — a draining server is alive.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	s.writeJSON(w, http.StatusOK, HealthResponse{
		Status:   status,
		InFlight: s.adm.inFlight(),
		Queued:   s.adm.queueDepth(),
	})
}

// handleReadyz is the readiness probe: 503 the moment draining starts
// (stop routing new work here), 200 otherwise. The body always carries
// the true admission state.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{
		Status:   "ok",
		InFlight: s.adm.inFlight(),
		Queued:   s.adm.queueDepth(),
	}
	if s.draining.Load() {
		resp.Status = "draining"
		s.writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) snapshot() MetricsSnapshot {
	m := s.metrics
	var snap MetricsSnapshot
	snap.UptimeSeconds = time.Since(m.start).Seconds()
	snap.Draining = s.draining.Load()
	snap.InFlight = s.adm.inFlight()
	snap.QueueDepth = s.adm.queueDepth()
	snap.Requests.Convert = m.convert.Load()
	snap.Requests.Batch = m.batch.Load()
	snap.Requests.Fingerprint = m.fingerprint.Load()
	snap.Requests.Compare = m.compare.Load()
	snap.Requests.CampaignStatus = m.campaignStatus.Load()
	snap.Shed.Single = m.shedSingle.Load()
	snap.Shed.Batch = m.shedBatch.Load()
	snap.Shed.QueueWaitExpired = m.queueWaitExpired.Load()
	snap.Panics = m.panics.Load()
	snap.WriteErrors = m.writeErrors.Load()
	snap.DeadlineExceeded = m.deadlineExceeded.Load()
	snap.BadRequests = m.badRequests.Load()
	snap.Cache.Capacity = s.cache.capacity
	snap.Cache.Size = s.cache.Len()
	snap.Cache.Hits, snap.Cache.Misses = s.cache.Stats()
	snap.Conversions = m.conversionReport()
	if s.opts.Store != nil {
		st := s.campaignStatus()
		snap.Store = &st
	}
	return snap
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.snapshot())
}
