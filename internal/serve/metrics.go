package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"uplan/internal/core"
	"uplan/internal/pipeline"
)

// metrics is the server's counter set, all monotonic and race-free. The
// /metrics endpoint snapshots it as JSON; there is no push or external
// dependency — scrape-shaped, like pipeline.Stats.
type metrics struct {
	start time.Time

	// Per-endpoint request counts (admitted or not).
	convert        atomic.Int64
	batch          atomic.Int64
	fingerprint    atomic.Int64
	compare        atomic.Int64
	campaignStatus atomic.Int64

	// Admission outcomes.
	shedSingle       atomic.Int64 // 429s on non-batch work
	shedBatch        atomic.Int64 // 429s on batch work (degrades first)
	queueWaitExpired atomic.Int64 // deadlines that expired while queued

	// Failure isolation.
	panics           atomic.Int64 // handler panics recovered
	writeErrors      atomic.Int64 // response writes the client never got
	deadlineExceeded atomic.Int64 // requests cut short by their deadline
	badRequests      atomic.Int64 // 4xx request decode/validation failures

	// statsMu guards the cumulative conversion aggregate (per-dialect
	// records/converted/errors merged across every convert and batch).
	statsMu sync.Mutex
	stats   pipeline.Stats
}

func newMetrics() *metrics {
	m := &metrics{start: time.Now()}
	m.stats.Dialects = map[string]*pipeline.DialectStats{}
	return m
}

// recordOne folds a single conversion outcome into the cumulative
// per-dialect aggregate.
func (m *metrics) recordOne(dialect string, err error) {
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	ds := m.stats.Dialects[dialect]
	if ds == nil {
		ds = &pipeline.DialectStats{Dialect: dialect}
		m.stats.Dialects[dialect] = ds
	}
	ds.Records++
	m.stats.Records++
	if err != nil {
		ds.Errors++
		m.stats.Errors++
		if ds.FirstError == nil {
			ds.FirstError = err
		}
		return
	}
	ds.Converted++
	m.stats.Converted++
}

// recordBatch folds one ConvertBatch run's aggregate in. Operation
// histograms ride along so /metrics exposes the same per-dialect shape
// uplan-bench reports.
func (m *metrics) recordBatch(st pipeline.Stats) {
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	for key, ds := range st.Dialects {
		tot := m.stats.Dialects[key]
		if tot == nil {
			tot = &pipeline.DialectStats{Dialect: key}
			m.stats.Dialects[key] = tot
		}
		tot.Records += ds.Records
		tot.Converted += ds.Converted
		tot.Errors += ds.Errors
		if tot.FirstError == nil {
			tot.FirstError = ds.FirstError
		}
		if len(ds.Operations) > 0 {
			if tot.Operations == nil {
				tot.Operations = core.CategoryHistogram{}
			}
			for cat, n := range ds.Operations {
				tot.Operations[cat] += n
			}
		}
	}
	m.stats.Records += st.Records
	m.stats.Converted += st.Converted
	m.stats.Errors += st.Errors
	m.stats.Elapsed += st.Elapsed
}

// conversionReport snapshots the cumulative conversion aggregate.
func (m *metrics) conversionReport() pipeline.Report {
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	return m.stats.Report()
}

// MetricsSnapshot is the /metrics JSON body: a point-in-time copy of
// every counter plus the cumulative conversion aggregate.
type MetricsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`

	InFlight   int `json:"in_flight"`
	QueueDepth int `json:"queue_depth"`

	Requests struct {
		Convert        int64 `json:"convert"`
		Batch          int64 `json:"batch_convert"`
		Fingerprint    int64 `json:"fingerprint"`
		Compare        int64 `json:"compare"`
		CampaignStatus int64 `json:"campaign_status"`
	} `json:"requests"`

	Shed struct {
		Single           int64 `json:"single"`
		Batch            int64 `json:"batch"`
		QueueWaitExpired int64 `json:"queue_wait_expired"`
	} `json:"shed"`

	Panics           int64 `json:"panics"`
	WriteErrors      int64 `json:"write_errors"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	BadRequests      int64 `json:"bad_requests"`

	Cache struct {
		Capacity int   `json:"capacity"`
		Size     int   `json:"size"`
		Hits     int64 `json:"hits"`
		Misses   int64 `json:"misses"`
	} `json:"cache"`

	Conversions pipeline.Report `json:"conversions"`

	Store *CampaignStatusResponse `json:"store,omitempty"`
}
