package serve

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// admission is the server's bounded admission queue. Work capacity is a
// fixed pool of in-flight slots; requests that find no free slot wait in
// a bounded queue, and requests that find the queue full are shed
// immediately with 429 — the server never accumulates unbounded
// goroutines behind a slow pool.
//
// Load shedding is class-aware: batch requests (large, elastic, retryable
// by construction) are refused once the queue is half full, so under
// overload the cheap interactive converts keep flowing while the bulk
// traffic backs off first. Single requests shed only when the queue is
// completely full.
type admission struct {
	// slots is the in-flight semaphore: one token per admitted request.
	slots chan struct{}
	// queued counts requests currently waiting for a slot.
	queued atomic.Int64
	// maxQueue is the single-request queue bound; batchQueue (maxQueue/2)
	// is the earlier bound batch requests shed at.
	maxQueue   int64
	batchQueue int64
}

// errShed is returned when a request is refused at admission; RetryAfter
// is the backpressure hint in seconds.
type errShed struct {
	retryAfter int
	batch      bool
}

func (e errShed) Error() string {
	class := "request"
	if e.batch {
		class = "batch request"
	}
	return fmt.Sprintf("%s shed: admission queue full, retry after %ds", class, e.retryAfter)
}

func newAdmission(maxInFlight, maxQueue int) *admission {
	a := &admission{
		slots:      make(chan struct{}, maxInFlight),
		maxQueue:   int64(maxQueue),
		batchQueue: int64(maxQueue) / 2,
	}
	for i := 0; i < maxInFlight; i++ {
		a.slots <- struct{}{}
	}
	return a
}

// acquire admits one request, blocking in the bounded queue until a slot
// frees or ctx is done. It returns a release function on success, errShed
// when the request's class is over its queue bound, and ctx.Err() when
// the caller's deadline expires while queued.
func (a *admission) acquire(ctx context.Context, batch bool) (func(), error) {
	// Fast path: a free slot means no queueing at all.
	select {
	case <-a.slots:
		return a.releaser(), nil
	default:
	}

	limit := a.maxQueue
	if batch {
		limit = a.batchQueue
	}
	if q := a.queued.Add(1); q > limit {
		a.queued.Add(-1)
		return nil, errShed{retryAfter: a.retryAfter(), batch: batch}
	}
	defer a.queued.Add(-1)
	select {
	case <-a.slots:
		return a.releaser(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// releaser returns the slot-return closure; idempotent so a handler may
// release early and defer the same function safely.
func (a *admission) releaser() func() {
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			a.slots <- struct{}{}
		}
	}
}

// retryAfter estimates how long a shed client should back off: one second
// per full queue's worth of waiters ahead of it, floored at one. Coarse
// on purpose — the hint only needs to spread the retry storm out.
func (a *admission) retryAfter() int {
	q := a.queued.Load()
	if a.maxQueue <= 0 || q <= a.maxQueue {
		return 1
	}
	return int(1 + q/a.maxQueue)
}

// inFlight is how many admitted requests currently hold a slot.
func (a *admission) inFlight() int { return cap(a.slots) - len(a.slots) }

// queueDepth is how many requests are currently waiting.
func (a *admission) queueDepth() int { return int(a.queued.Load()) }

// asShed extracts an errShed from an admission error.
func asShed(err error) (errShed, bool) {
	var s errShed
	ok := errors.As(err, &s)
	return s, ok
}
