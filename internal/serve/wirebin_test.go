package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"

	"uplan/internal/codec"
	"uplan/internal/core"
)

// TestWireBinaryRoundTrips pins encode→decode identity for every binary
// wire message type.
func TestWireBinaryRoundTrips(t *testing.T) {
	req := ConvertRequest{Dialect: "postgresql", Serialized: pgPlan}
	gotReq, err := DecodeBinaryConvertRequest(AppendBinaryConvertRequest(nil, req))
	if err != nil {
		t.Fatal(err)
	}
	if gotReq != req {
		t.Errorf("convert request round trip = %+v, want %+v", gotReq, req)
	}

	batch := BatchRequest{Records: []ConvertRequest{
		{Dialect: "postgresql", Serialized: pgPlan},
		{Dialect: "mysql", Serialized: ""},
		{Dialect: "", Serialized: "x"},
	}}
	gotBatch, err := DecodeBinaryBatchRequest(AppendBinaryBatchRequest(nil, batch))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotBatch.Records) != len(batch.Records) {
		t.Fatalf("batch request round trip lost records: %d != %d", len(gotBatch.Records), len(batch.Records))
	}
	for i := range batch.Records {
		if gotBatch.Records[i] != batch.Records[i] {
			t.Errorf("batch record %d = %+v, want %+v", i, gotBatch.Records[i], batch.Records[i])
		}
	}

	resp := BinaryConvertResponse{
		Dialect:       "postgresql",
		Fingerprint64: 0xDEADBEEFCAFEF00D,
		PlanBlob:      []byte{1, 2, 3, 4, 5},
	}
	for i := range resp.Fingerprint {
		resp.Fingerprint[i] = byte(i)
	}
	gotResp, err := DecodeBinaryConvertResponse(AppendBinaryConvertResponse(nil, resp))
	if err != nil {
		t.Fatal(err)
	}
	if gotResp.Dialect != resp.Dialect || gotResp.Fingerprint64 != resp.Fingerprint64 ||
		gotResp.Fingerprint != resp.Fingerprint || !bytes.Equal(gotResp.PlanBlob, resp.PlanBlob) {
		t.Errorf("convert response round trip = %+v, want %+v", gotResp, resp)
	}

	bresp := BinaryBatchResponse{
		Results: []BinaryBatchItem{
			{PlanBlob: []byte("blob-a")},
			{Error: "conversion failed"},
			{PlanBlob: nil}, // empty blob is a valid item
		},
		Converted:        2,
		Errors:           1,
		DeadlineExceeded: true,
		ElapsedSeconds:   1.5,
		PlansPerSec:      176.25,
	}
	gotB, err := DecodeBinaryBatchResponse(AppendBinaryBatchResponse(nil, bresp))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotB.Results) != 3 || !bytes.Equal(gotB.Results[0].PlanBlob, []byte("blob-a")) ||
		gotB.Results[1].Error != "conversion failed" || len(gotB.Results[2].PlanBlob) != 0 {
		t.Errorf("batch response items diverge: %+v", gotB.Results)
	}
	if gotB.Converted != 2 || gotB.Errors != 1 || !gotB.DeadlineExceeded ||
		gotB.ElapsedSeconds != 1.5 || gotB.PlansPerSec != 176.25 {
		t.Errorf("batch response trailer diverges: %+v", gotB)
	}
}

// TestWireBinaryRejectsCorruption: every truncation of every message type
// fails with ErrWire, as do trailing garbage and unknown item tags.
func TestWireBinaryRejectsCorruption(t *testing.T) {
	msgs := map[string][]byte{
		"convert-request": AppendBinaryConvertRequest(nil, ConvertRequest{Dialect: "postgresql", Serialized: pgPlan}),
		"batch-request": AppendBinaryBatchRequest(nil, BatchRequest{Records: []ConvertRequest{
			{Dialect: "postgresql", Serialized: pgPlan}}}),
		"convert-response": AppendBinaryConvertResponse(nil, BinaryConvertResponse{
			Dialect: "postgresql", Fingerprint64: 7, PlanBlob: []byte("blob")}),
		"batch-response": AppendBinaryBatchResponse(nil, BinaryBatchResponse{
			Results: []BinaryBatchItem{{PlanBlob: []byte("blob")}, {Error: "e"}}, Converted: 1, Errors: 1}),
	}
	decode := map[string]func([]byte) error{
		"convert-request":  func(b []byte) error { _, err := DecodeBinaryConvertRequest(b); return err },
		"batch-request":    func(b []byte) error { _, err := DecodeBinaryBatchRequest(b); return err },
		"convert-response": func(b []byte) error { _, err := DecodeBinaryConvertResponse(b); return err },
		"batch-response":   func(b []byte) error { _, err := DecodeBinaryBatchResponse(b); return err },
	}
	for name, msg := range msgs {
		dec := decode[name]
		if err := dec(msg); err != nil {
			t.Fatalf("%s: intact message rejected: %v", name, err)
		}
		for i := 0; i < len(msg); i++ {
			if err := dec(msg[:i]); !errors.Is(err, ErrWire) {
				t.Errorf("%s truncated at %d: err = %v, want ErrWire", name, i, err)
			}
		}
		if err := dec(append(append([]byte{}, msg...), 0)); !errors.Is(err, ErrWire) {
			t.Errorf("%s with trailing byte: err = %v, want ErrWire", name, err)
		}
	}

	// Unknown batch item tag.
	bad := []byte{1, 0x7F, 0}
	if _, err := DecodeBinaryBatchResponse(bad); !errors.Is(err, ErrWire) {
		t.Errorf("unknown item tag: err = %v, want ErrWire", err)
	}
	// A corrupt count must not drive a huge allocation.
	huge := appendUvarint(nil, 1<<40)
	if _, err := DecodeBinaryBatchRequest(huge); !errors.Is(err, ErrWire) {
		t.Errorf("huge batch count: err = %v, want ErrWire", err)
	}
}

func appendUvarint(dst []byte, x uint64) []byte {
	for x >= 0x80 {
		dst = append(dst, byte(x)|0x80)
		x >>= 7
	}
	return append(dst, byte(x))
}

// binaryPost posts body with the binary content type, asking for a binary
// response.
func binaryPost(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", BinaryContentType)
	req.Header.Set("Accept", BinaryContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestServeConvertBinary drives /v1/convert end to end on the binary
// wire: binary request in, binary response out, and the decoded blob must
// match the JSON path's plan and fingerprints exactly.
func TestServeConvertBinary(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := ConvertRequest{Dialect: "postgresql", Serialized: pgPlan}

	// Reference conversion through the JSON path.
	var ref ConvertResponse
	if resp := postJSON(t, ts.URL+"/v1/convert", req, &ref); resp.StatusCode != http.StatusOK {
		t.Fatalf("json convert status = %d", resp.StatusCode)
	}

	resp, data := binaryPost(t, ts.URL+"/v1/convert", AppendBinaryConvertRequest(nil, req))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary convert status = %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != BinaryContentType {
		t.Errorf("binary convert Content-Type = %q, want %q", ct, BinaryContentType)
	}
	bresp, err := DecodeBinaryConvertResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	p, err := codec.DecodeInto(bresp.PlanBlob, nil)
	if err != nil {
		t.Fatalf("decoding returned plan blob: %v", err)
	}
	refPlan, err := core.ParseJSON(ref.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if p.MarshalText() != refPlan.MarshalText() {
		t.Error("binary-wire plan diverges from the JSON-wire plan")
	}
	if want := core.HexFingerprint(bresp.Fingerprint); want != ref.Fingerprint {
		t.Errorf("binary fingerprint %s, JSON fingerprint %s", want, ref.Fingerprint)
	}

	// A malformed binary body is a 400 with a JSON error, like bad JSON.
	resp, data = binaryPost(t, ts.URL+"/v1/convert", []byte{0xFF})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed binary body status = %d, want 400: %s", resp.StatusCode, data)
	}
	if ct := mediaType(resp.Header.Get("Content-Type")); ct != "application/json" {
		t.Errorf("binary-request error Content-Type = %q, want JSON (errors stay on the JSON wire)", ct)
	}
}

// TestServeBatchBinary drives /v1/batch-convert on the binary wire with a
// mixed good/bad batch.
func TestServeBatchBinary(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := BatchRequest{Records: []ConvertRequest{
		{Dialect: "postgresql", Serialized: pgPlan},
		{Dialect: "no-such-db", Serialized: "x"},
		{Dialect: "postgresql", Serialized: pgPlanJoin},
	}}
	resp, data := binaryPost(t, ts.URL+"/v1/batch-convert", AppendBinaryBatchRequest(nil, req))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary batch status = %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != BinaryContentType {
		t.Errorf("binary batch Content-Type = %q, want %q", ct, BinaryContentType)
	}
	bresp, err := DecodeBinaryBatchResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(bresp.Results) != 3 || bresp.Converted != 2 || bresp.Errors != 1 {
		t.Fatalf("binary batch results = %d converted / %d errors over %d slots, want 2/1/3",
			bresp.Converted, bresp.Errors, len(bresp.Results))
	}
	for _, slot := range []int{0, 2} {
		p, err := codec.DecodeInto(bresp.Results[slot].PlanBlob, nil)
		if err != nil {
			t.Fatalf("slot %d blob: %v", slot, err)
		}
		if p.Source != "postgresql" {
			t.Errorf("slot %d Source = %q", slot, p.Source)
		}
	}
	if bresp.Results[1].Error == "" {
		t.Error("bad-dialect slot carries no error")
	}
}

// TestServeCacheKeysOnContentType is the cache regression guard: the same
// input bytes requested as JSON and as binary must be two cache entries.
// A binary response replayed to a JSON client would hand it an undecodable
// body with a "hit" header — exactly the bug the format-folded key
// prevents.
func TestServeCacheKeysOnContentType(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := ConvertRequest{Dialect: "postgresql", Serialized: pgPlan}

	// JSON first: miss.
	resp := postJSON(t, ts.URL+"/v1/convert", req, nil)
	if got := resp.Header.Get(CacheHeader); got != "miss" {
		t.Fatalf("json convert %s = %q, want miss", CacheHeader, got)
	}

	// Same input on the binary wire: must be a miss — the JSON body in
	// the cache is not this request's answer.
	bresp, data := binaryPost(t, ts.URL+"/v1/convert", AppendBinaryConvertRequest(nil, req))
	if got := bresp.Header.Get(CacheHeader); got != "miss" {
		t.Fatalf("binary convert %s = %q, want miss (cache replayed across formats)", CacheHeader, got)
	}
	if _, err := DecodeBinaryConvertResponse(data); err != nil {
		t.Fatalf("binary response does not decode: %v", err)
	}

	// Each format now hits within itself, with its own content type.
	resp = postJSON(t, ts.URL+"/v1/convert", req, nil)
	if got := resp.Header.Get(CacheHeader); got != "hit" {
		t.Errorf("repeat json convert %s = %q, want hit", CacheHeader, got)
	}
	if ct := mediaType(resp.Header.Get("Content-Type")); ct != "application/json" {
		t.Errorf("json hit Content-Type = %q", ct)
	}
	bresp, data = binaryPost(t, ts.URL+"/v1/convert", AppendBinaryConvertRequest(nil, req))
	if got := bresp.Header.Get(CacheHeader); got != "hit" {
		t.Errorf("repeat binary convert %s = %q, want hit", CacheHeader, got)
	}
	if ct := bresp.Header.Get("Content-Type"); ct != BinaryContentType {
		t.Errorf("binary hit Content-Type = %q", ct)
	}
	if _, err := DecodeBinaryConvertResponse(data); err != nil {
		t.Fatalf("cached binary response does not decode: %v", err)
	}
}

// TestServeAcceptNegotiation pins the negotiation rules: JSON stays the
// default under absent, wildcard, and unrelated Accept headers; only an
// explicit binary entry (parameters and case ignored) switches formats.
func TestServeAcceptNegotiation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body, err := json.Marshal(ConvertRequest{Dialect: "postgresql", Serialized: pgPlan})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		accept string
		binary bool
	}{
		{"", false},
		{"*/*", false},
		{"application/json", false},
		{"text/html, application/xhtml+xml", false},
		{BinaryContentType, true},
		{strings.ToUpper(BinaryContentType), true},
		{"application/json, " + BinaryContentType + ";q=0.9", true},
	}
	for _, tc := range cases {
		req, err := http.NewRequest("POST", ts.URL+"/v1/convert", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if tc.accept != "" {
			req.Header.Set("Accept", tc.accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("Accept %q: status %d", tc.accept, resp.StatusCode)
		}
		want := "application/json"
		if tc.binary {
			want = BinaryContentType
		}
		if got := resp.Header.Get("Content-Type"); got != want {
			t.Errorf("Accept %q: Content-Type = %q, want %q", tc.accept, got, want)
		}
	}
}
