package serve

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// responseCache is the bounded fingerprint-keyed LRU over marshaled
// convert responses — the ROADMAP's deferred store-cache follow-on landed
// at service scope. Keys are FNV-1a hashes of (dialect, serialized
// input): a repeat convert of byte-identical input costs one hash and one
// map probe instead of a parse, and the cached body already carries the
// plan's Fingerprint64/SHA-256 fingerprints, so fingerprint-shaped
// lookups are free too. (The key must hash the input, not the resulting
// plan's Fingerprint64 — the plan fingerprint only exists after the very
// conversion the cache is there to skip.)
//
// Capacity is a hard entry cap with LRU eviction; a full cache stays
// full-sized forever, it never grows. Safe for concurrent use.
type responseCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[uint64]*list.Element
	order    *list.List // front = most recent
	hits     atomic.Int64
	misses   atomic.Int64
}

// cacheEntry is one cached response body keyed by its input hash.
type cacheEntry struct {
	key  uint64
	body []byte
}

// newResponseCache returns a cache bounded to capacity entries; a
// non-positive capacity disables caching (every Get misses, Put drops).
func newResponseCache(capacity int) *responseCache {
	c := &responseCache{capacity: capacity}
	if capacity > 0 {
		c.entries = make(map[uint64]*list.Element, capacity)
		c.order = list.New()
	}
	return c
}

// cacheKey hashes one request's identity. FNV-1a over
// dialect NUL serialized NUL format, matching the store's finding-key
// construction. The negotiated response format is part of the identity:
// the cache stores marshaled bodies, and a binary body must never be
// replayed to a JSON client (or vice versa) just because the input bytes
// matched.
func cacheKey(dialect, serialized string, binary bool) uint64 {
	h := fnv.New64a()
	h.Write([]byte(dialect))
	h.Write([]byte{0})
	h.Write([]byte(serialized))
	format := byte(0)
	if binary {
		format = 1
	}
	h.Write([]byte{0, format})
	return h.Sum64()
}

// Get returns the cached response body for the key, marking it most
// recently used. The returned slice is shared — callers must treat it as
// read-only.
func (c *responseCache) Get(key uint64) ([]byte, bool) {
	if c.capacity <= 0 {
		c.misses.Add(1)
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).body, true
}

// Put stores one response body, evicting the least recently used entry
// when the cache is at capacity. Storing an existing key refreshes its
// recency and replaces the body.
func (c *responseCache) Put(key uint64, body []byte) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).body = body
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
}

// Len is the current entry count.
func (c *responseCache) Len() int {
	if c.capacity <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats snapshots the hit/miss counters for /metrics.
func (c *responseCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
