package serve

// The binary wire format of the plan service — the compact alternative to
// the JSON API, negotiated per request: a request body is binary iff its
// Content-Type is BinaryContentType, and a response body is binary iff
// the request's Accept header lists it. JSON remains the default on both
// sides, and error responses are always JSON (ErrorResponse), so retry
// and backpressure handling is format-independent.
//
// Messages are length-prefixed with uvarints and carry plans as
// internal/codec blobs instead of canonical JSON:
//
//	convert request   := len(dialect) dialect len(serialized) serialized
//	batch request     := count, then count convert requests
//	convert response  := len(dialect) dialect fp64(8, LE) fingerprint(32)
//	                     len(blob) blob
//	batch response    := count, then count items, then converted errors
//	                     deadline(1) elapsed(8, LE float64) pps(8, LE float64)
//	item              := 0x00 len(blob) blob | 0x01 len(error) error
//
// Every length is bounds-checked against the remaining input, so a
// corrupted prefix fails with ErrWire instead of an absurd allocation.
// Decoded byte slices alias the input buffer; string fields are copies.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
)

// BinaryContentType is the media type of every binary wire message. Send
// it as Content-Type to submit a binary request body and list it in
// Accept to receive a binary response body.
const BinaryContentType = "application/x-uplan-binary"

// jsonContentType is the default wire format's media type.
const jsonContentType = "application/json"

// ErrWire wraps every binary wire decode failure.
var ErrWire = errors.New("serve: malformed binary wire message")

// wireMaxItems bounds decoded batch counts so a corrupt count byte cannot
// drive a huge allocation; real batches are bounded much lower by
// Options.MaxBatchRecords.
const wireMaxItems = 1 << 20

func wireErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrWire, fmt.Sprintf(format, args...))
}

// readWireUvarint decodes the uvarint at data[off:].
func readWireUvarint(data []byte, off int) (uint64, int, error) {
	v, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return 0, 0, wireErr("truncated varint at offset %d", off)
	}
	return v, off + n, nil
}

// readWireBytes decodes one length-prefixed field, returning a slice that
// aliases data.
func readWireBytes(data []byte, off int) ([]byte, int, error) {
	n, off, err := readWireUvarint(data, off)
	if err != nil {
		return nil, 0, err
	}
	if n > uint64(len(data)-off) {
		return nil, 0, wireErr("field of %d bytes exceeds %d remaining", n, len(data)-off)
	}
	return data[off : off+int(n)], off + int(n), nil
}

func appendWireBytes(dst []byte, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendWireString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBinaryConvertRequest appends req's binary encoding to dst.
func AppendBinaryConvertRequest(dst []byte, req ConvertRequest) []byte {
	dst = appendWireString(dst, req.Dialect)
	return appendWireString(dst, req.Serialized)
}

// DecodeBinaryConvertRequest decodes one binary convert request,
// requiring the message to end exactly at the last field.
func DecodeBinaryConvertRequest(data []byte) (ConvertRequest, error) {
	req, off, err := decodeConvertRequestAt(data, 0)
	if err != nil {
		return ConvertRequest{}, err
	}
	if off != len(data) {
		return ConvertRequest{}, wireErr("%d trailing bytes after convert request", len(data)-off)
	}
	return req, nil
}

func decodeConvertRequestAt(data []byte, off int) (ConvertRequest, int, error) {
	dialect, off, err := readWireBytes(data, off)
	if err != nil {
		return ConvertRequest{}, 0, err
	}
	serialized, off, err := readWireBytes(data, off)
	if err != nil {
		return ConvertRequest{}, 0, err
	}
	return ConvertRequest{Dialect: string(dialect), Serialized: string(serialized)}, off, nil
}

// AppendBinaryBatchRequest appends req's binary encoding to dst.
func AppendBinaryBatchRequest(dst []byte, req BatchRequest) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(req.Records)))
	for _, r := range req.Records {
		dst = AppendBinaryConvertRequest(dst, r)
	}
	return dst
}

// DecodeBinaryBatchRequest decodes one binary batch request.
func DecodeBinaryBatchRequest(data []byte) (BatchRequest, error) {
	count, off, err := readWireUvarint(data, 0)
	if err != nil {
		return BatchRequest{}, err
	}
	if count > wireMaxItems {
		return BatchRequest{}, wireErr("batch of %d records exceeds the wire cap", count)
	}
	req := BatchRequest{Records: make([]ConvertRequest, 0, count)}
	for i := uint64(0); i < count; i++ {
		var rec ConvertRequest
		rec, off, err = decodeConvertRequestAt(data, off)
		if err != nil {
			return BatchRequest{}, err
		}
		req.Records = append(req.Records, rec)
	}
	if off != len(data) {
		return BatchRequest{}, wireErr("%d trailing bytes after batch request", len(data)-off)
	}
	return req, nil
}

// BinaryConvertResponse is one successful conversion on the binary wire:
// the structural fingerprints in their natural binary forms plus the plan
// as an internal/codec blob instead of canonical JSON.
type BinaryConvertResponse struct {
	Dialect string
	// Fingerprint64 is the FNV-1a structural sketch (the JSON API's
	// decimal-string field, undecorated).
	Fingerprint64 uint64
	// Fingerprint is the raw SHA-256 structural fingerprint.
	Fingerprint [32]byte
	// PlanBlob is the converted plan encoded by internal/codec; decode
	// with codec.DecodeInto.
	PlanBlob []byte
}

// AppendBinaryConvertResponse appends resp's binary encoding to dst.
func AppendBinaryConvertResponse(dst []byte, resp BinaryConvertResponse) []byte {
	dst = appendWireString(dst, resp.Dialect)
	dst = binary.LittleEndian.AppendUint64(dst, resp.Fingerprint64)
	dst = append(dst, resp.Fingerprint[:]...)
	return appendWireBytes(dst, resp.PlanBlob)
}

// DecodeBinaryConvertResponse decodes one binary convert response.
// PlanBlob aliases data.
func DecodeBinaryConvertResponse(data []byte) (BinaryConvertResponse, error) {
	var resp BinaryConvertResponse
	dialect, off, err := readWireBytes(data, 0)
	if err != nil {
		return BinaryConvertResponse{}, err
	}
	resp.Dialect = string(dialect)
	if len(data)-off < 8+32 {
		return BinaryConvertResponse{}, wireErr("truncated fingerprints")
	}
	resp.Fingerprint64 = binary.LittleEndian.Uint64(data[off:])
	off += 8
	off += copy(resp.Fingerprint[:], data[off:off+32])
	resp.PlanBlob, off, err = readWireBytes(data, off)
	if err != nil {
		return BinaryConvertResponse{}, err
	}
	if off != len(data) {
		return BinaryConvertResponse{}, wireErr("%d trailing bytes after convert response", len(data)-off)
	}
	return resp, nil
}

// BinaryBatchItem is one record's outcome on the binary wire. Exactly one
// of PlanBlob and Error is meaningful: a failed record carries its error
// string, a converted one its codec blob.
type BinaryBatchItem struct {
	PlanBlob []byte
	Error    string
}

// BinaryBatchResponse mirrors BatchResponse on the binary wire, with
// plans as codec blobs.
type BinaryBatchResponse struct {
	Results          []BinaryBatchItem
	Converted        int
	Errors           int
	DeadlineExceeded bool
	ElapsedSeconds   float64
	PlansPerSec      float64
}

// Item tags on the binary batch wire.
const (
	wireItemPlan  = 0x00
	wireItemError = 0x01
)

// AppendBinaryBatchResponse appends resp's binary encoding to dst.
func AppendBinaryBatchResponse(dst []byte, resp BinaryBatchResponse) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(resp.Results)))
	for _, it := range resp.Results {
		if it.Error != "" {
			dst = append(dst, wireItemError)
			dst = appendWireString(dst, it.Error)
			continue
		}
		dst = append(dst, wireItemPlan)
		dst = appendWireBytes(dst, it.PlanBlob)
	}
	dst = binary.AppendUvarint(dst, uint64(resp.Converted))
	dst = binary.AppendUvarint(dst, uint64(resp.Errors))
	if resp.DeadlineExceeded {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(resp.ElapsedSeconds))
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(resp.PlansPerSec))
}

// DecodeBinaryBatchResponse decodes one binary batch response. Item
// PlanBlob slices alias data.
func DecodeBinaryBatchResponse(data []byte) (BinaryBatchResponse, error) {
	var resp BinaryBatchResponse
	count, off, err := readWireUvarint(data, 0)
	if err != nil {
		return BinaryBatchResponse{}, err
	}
	if count > wireMaxItems {
		return BinaryBatchResponse{}, wireErr("batch of %d results exceeds the wire cap", count)
	}
	resp.Results = make([]BinaryBatchItem, 0, count)
	for i := uint64(0); i < count; i++ {
		if off >= len(data) {
			return BinaryBatchResponse{}, wireErr("truncated batch item %d", i)
		}
		tag := data[off]
		off++
		var field []byte
		field, off, err = readWireBytes(data, off)
		if err != nil {
			return BinaryBatchResponse{}, err
		}
		switch tag {
		case wireItemPlan:
			resp.Results = append(resp.Results, BinaryBatchItem{PlanBlob: field})
		case wireItemError:
			resp.Results = append(resp.Results, BinaryBatchItem{Error: string(field)})
		default:
			return BinaryBatchResponse{}, wireErr("unknown batch item tag 0x%02x", tag)
		}
	}
	converted, off, err := readWireUvarint(data, off)
	if err != nil {
		return BinaryBatchResponse{}, err
	}
	errs, off, err := readWireUvarint(data, off)
	if err != nil {
		return BinaryBatchResponse{}, err
	}
	if converted > wireMaxItems || errs > wireMaxItems {
		return BinaryBatchResponse{}, wireErr("implausible batch counters")
	}
	resp.Converted, resp.Errors = int(converted), int(errs)
	if len(data)-off < 1+8+8 {
		return BinaryBatchResponse{}, wireErr("truncated batch trailer")
	}
	switch data[off] {
	case 0:
	case 1:
		resp.DeadlineExceeded = true
	default:
		return BinaryBatchResponse{}, wireErr("bad deadline flag 0x%02x", data[off])
	}
	off++
	resp.ElapsedSeconds = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
	off += 8
	resp.PlansPerSec = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
	off += 8
	if off != len(data) {
		return BinaryBatchResponse{}, wireErr("%d trailing bytes after batch response", len(data)-off)
	}
	return resp, nil
}

// mediaType extracts the bare media type from a Content-Type or Accept
// element, dropping parameters and normalizing case.
func mediaType(v string) string {
	if i := strings.IndexByte(v, ';'); i >= 0 {
		v = v[:i]
	}
	return strings.ToLower(strings.TrimSpace(v))
}

// isBinaryContent reports whether the request body is on the binary wire.
func isBinaryContent(r *http.Request) bool {
	return mediaType(r.Header.Get("Content-Type")) == BinaryContentType
}

// acceptsBinary reports whether the client asked for a binary response
// body. Only an explicit BinaryContentType entry counts — wildcards keep
// the JSON default, so existing clients never see a format change.
func acceptsBinary(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		if mediaType(part) == BinaryContentType {
			return true
		}
	}
	return false
}

// negotiatedType maps the Accept decision to the response media type.
func negotiatedType(binary bool) string {
	if binary {
		return BinaryContentType
	}
	return jsonContentType
}
