package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"uplan/internal/store"
)

// pgPlan is a minimal valid PostgreSQL text plan for request bodies.
const pgPlan = "Seq Scan on t1  (cost=0.00..431.00 rows=20100 width=4)"

// pgPlanJoin is a structurally different plan for compare tests.
const pgPlanJoin = "Hash Join  (cost=10.00..20.00 rows=100 width=8)\n" +
	"  Hash Cond: (t0.c0 = t1.c0)\n" +
	"  ->  Seq Scan on t0  (cost=0.00..5.00 rows=100 width=4)\n" +
	"  ->  Hash  (cost=5.00..5.00 rows=100 width=4)\n" +
	"        ->  Seq Scan on t1  (cost=0.00..5.00 rows=100 width=4)"

// newTestServer mounts a Server's handler under httptest; good for every
// test that does not exercise the listener or drain machinery.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// startServer runs a Server on a real loopback listener so Drain and the
// connection-level faults work end to end. The returned channel yields
// Serve's result.
func startServer(t *testing.T, opts Options) (*Server, string, chan error) {
	t.Helper()
	s := New(opts)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- s.Serve(l) }()
	return s, "http://" + l.Addr().String(), errCh
}

// postJSON posts v and decodes the response body into out (unless nil),
// returning the response for status/header checks.
func postJSON(t *testing.T, url string, v, out any) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode/100 == 2 {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decoding %s response %q: %v", url, data, err)
		}
	}
	return resp
}

func TestServeConvertAndCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	req := ConvertRequest{Dialect: "postgresql", Serialized: pgPlan}

	var first ConvertResponse
	resp := postJSON(t, ts.URL+"/v1/convert", req, &first)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("convert status = %d", resp.StatusCode)
	}
	if resp.Header.Get(CacheHeader) != "miss" {
		t.Errorf("first convert %s = %q, want miss", CacheHeader, resp.Header.Get(CacheHeader))
	}
	if len(first.Plan) == 0 || first.Fingerprint64 == "" || first.Fingerprint == "" {
		t.Fatalf("incomplete convert response: %+v", first)
	}

	var second ConvertResponse
	resp = postJSON(t, ts.URL+"/v1/convert", req, &second)
	if resp.Header.Get(CacheHeader) != "hit" {
		t.Errorf("repeat convert %s = %q, want hit", CacheHeader, resp.Header.Get(CacheHeader))
	}
	if second.Fingerprint != first.Fingerprint || !bytes.Equal(second.Plan, first.Plan) {
		t.Error("cached response differs from the fresh one")
	}
	snap := s.Metrics()
	if snap.Cache.Hits != 1 || snap.Cache.Misses != 1 {
		t.Errorf("cache counters = %d hits / %d misses, want 1/1", snap.Cache.Hits, snap.Cache.Misses)
	}
	if snap.Conversions.Records != 1 {
		t.Errorf("conversion records = %d, want 1 (the hit must not reconvert)", snap.Conversions.Records)
	}
}

func TestServeConvertErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxBodyBytes: 1 << 10, MaxBatchRecords: 4})

	// Unknown dialect: 422, conversion-level failure.
	resp := postJSON(t, ts.URL+"/v1/convert", ConvertRequest{Dialect: "no-such-db", Serialized: "x"}, nil)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unknown dialect status = %d, want 422", resp.StatusCode)
	}

	// Malformed JSON: 400.
	r2, err := http.Post(ts.URL+"/v1/convert", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status = %d, want 400", r2.StatusCode)
	}

	// Oversized body: 413.
	big := ConvertRequest{Dialect: "postgresql", Serialized: strings.Repeat("x", 2<<10)}
	resp = postJSON(t, ts.URL+"/v1/convert", big, nil)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status = %d, want 413", resp.StatusCode)
	}

	// Batch over the record cap: 413.
	over := BatchRequest{Records: make([]ConvertRequest, 5)}
	for i := range over.Records {
		over.Records[i] = ConvertRequest{Dialect: "postgresql", Serialized: "s"}
	}
	resp = postJSON(t, ts.URL+"/v1/batch-convert", over, nil)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch status = %d, want 413", resp.StatusCode)
	}

	// Empty batch: 400.
	resp = postJSON(t, ts.URL+"/v1/batch-convert", BatchRequest{}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch status = %d, want 400", resp.StatusCode)
	}

	// Wrong method: the mux's method patterns answer 405.
	r3, err := http.Get(ts.URL + "/v1/convert")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/convert status = %d, want 405", r3.StatusCode)
	}
}

func TestServeBatchConvertMixedRecords(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	req := BatchRequest{Records: []ConvertRequest{
		{Dialect: "postgresql", Serialized: pgPlan},
		{Dialect: "no-such-db", Serialized: "x"},
		{Dialect: "postgresql", Serialized: pgPlanJoin},
	}}
	var resp BatchResponse
	hr := postJSON(t, ts.URL+"/v1/batch-convert", req, &resp)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", hr.StatusCode)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	if resp.Converted != 2 || resp.Errors != 1 {
		t.Errorf("converted/errors = %d/%d, want 2/1", resp.Converted, resp.Errors)
	}
	for i, item := range resp.Results {
		hasPlan, hasErr := len(item.Plan) > 0, item.Error != ""
		if hasPlan == hasErr {
			t.Errorf("result %d: exactly one of plan/error must be set (plan=%v err=%v)", i, hasPlan, hasErr)
		}
	}
	if resp.Results[1].Error == "" {
		t.Error("the bad record's slot lost its error")
	}
	if resp.DeadlineExceeded {
		t.Error("deadline flag set on an undeadlined batch")
	}
	if snap := s.Metrics(); snap.Conversions.Records != 3 {
		t.Errorf("metrics absorbed %d batch records, want 3", snap.Conversions.Records)
	}
}

func TestServeFingerprintMatchesConvert(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var conv ConvertResponse
	postJSON(t, ts.URL+"/v1/convert", ConvertRequest{Dialect: "postgresql", Serialized: pgPlan}, &conv)
	var fp FingerprintResponse
	hr := postJSON(t, ts.URL+"/v1/fingerprint", ConvertRequest{Dialect: "postgresql", Serialized: pgPlan}, &fp)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("fingerprint status = %d", hr.StatusCode)
	}
	if fp.Fingerprint64 != conv.Fingerprint64 || fp.Fingerprint != conv.Fingerprint {
		t.Errorf("fingerprint endpoint disagrees with convert: %+v vs %+v", fp, conv)
	}
}

func TestServeCompare(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	same := ConvertRequest{Dialect: "postgresql", Serialized: pgPlan}
	var eq CompareResponse
	hr := postJSON(t, ts.URL+"/v1/compare", CompareRequest{A: same, B: same}, &eq)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("compare status = %d", hr.StatusCode)
	}
	if !eq.Equal || eq.Similarity != 1 || eq.EditDistance != 0 {
		t.Errorf("identical plans compare as %+v", eq)
	}
	var ne CompareResponse
	postJSON(t, ts.URL+"/v1/compare", CompareRequest{
		A: same,
		B: ConvertRequest{Dialect: "postgresql", Serialized: pgPlanJoin},
	}, &ne)
	if ne.Equal || len(ne.Diffs) == 0 || ne.EditDistance == 0 {
		t.Errorf("different plans compare as %+v", ne)
	}
}

func TestServeCampaignStatusStore(t *testing.T) {
	log, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if _, err := log.AppendPlan([32]byte{1}); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{Store: log})

	resp, err := http.Get(ts.URL + "/v1/campaign-status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status CampaignStatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if !status.Attached || status.Dir != log.Dir() || status.Plans != 1 {
		t.Errorf("campaign status = %+v, want attached with 1 plan at %s", status, log.Dir())
	}
}

func TestServeCampaignStatusDetached(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/campaign-status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status CampaignStatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Attached {
		t.Error("storeless server reports an attached campaign")
	}
}

func TestServeHealthAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var h HealthResponse
		err = json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || h.Status != "ok" {
			t.Errorf("%s = %d %q, want 200 ok", path, resp.StatusCode, h.Status)
		}
	}
	postJSON(t, ts.URL+"/v1/convert", ConvertRequest{Dialect: "postgresql", Serialized: pgPlan}, nil)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Requests.Convert != 1 || snap.Conversions.Converted != 1 {
		t.Errorf("metrics after one convert: %+v", snap.Requests)
	}
	if snap.Draining {
		t.Error("fresh server reports draining")
	}
}

func TestServeConvertPanicIsolation(t *testing.T) {
	s := New(Options{})
	bomb := s.isolate(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	}))
	rec := httptest.NewRecorder()
	bomb.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("panicking handler answered %d, want 500", rec.Code)
	}
	if s.Metrics().Panics != 1 {
		t.Errorf("panics counter = %d, want 1", s.Metrics().Panics)
	}
	// A panic after the response started cannot be answered; it must
	// still be contained and counted.
	late := s.isolate(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		panic("too late")
	}))
	rec = httptest.NewRecorder()
	late.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("late panic rewrote the status to %d", rec.Code)
	}
	if s.Metrics().Panics != 2 {
		t.Errorf("panics counter = %d, want 2", s.Metrics().Panics)
	}
}

func TestServeDrainCleanExitBatch(t *testing.T) {
	s, url, errCh := startServer(t, Options{})
	// Real work through the real listener first.
	var resp BatchResponse
	postJSON(t, url+"/v1/batch-convert", BatchRequest{Records: []ConvertRequest{
		{Dialect: "postgresql", Serialized: pgPlan},
	}}, &resp)
	if resp.Converted != 1 {
		t.Fatalf("batch converted %d, want 1", resp.Converted)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain with no in-flight work failed: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("Serve returned %v after drain, want nil", err)
	}
	// The listener is gone: new connections must fail, not hang.
	c := &http.Client{Timeout: time.Second}
	if _, err := c.Get(url + "/healthz"); err == nil {
		t.Error("drained server still accepts connections")
	}
}
