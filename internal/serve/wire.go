package serve

import "encoding/json"

// The wire types of the plan service's JSON API. The serveclient
// subpackage shares them, so the request/response shapes are defined
// exactly once.

// ConvertRequest asks for one native plan's unified conversion.
type ConvertRequest struct {
	// Dialect is the engine key ("postgresql", …); case-insensitive.
	Dialect string `json:"dialect"`
	// Serialized is the native EXPLAIN output to convert.
	Serialized string `json:"serialized"`
}

// ConvertResponse is one successful conversion: the canonical plan JSON
// plus its structural fingerprints. Responses served from the response
// cache are byte-identical to fresh ones; the CacheHeader response
// header says which path a response took.
type ConvertResponse struct {
	Dialect string `json:"dialect"`
	// Plan is the unified plan in its canonical JSON serialization.
	Plan json.RawMessage `json:"plan"`
	// Fingerprint64 is the allocation-free FNV-1a structural sketch,
	// rendered as a decimal string (JSON numbers lose uint64 precision).
	Fingerprint64 string `json:"fingerprint64"`
	// Fingerprint is the collision-resistant SHA-256 fingerprint in the
	// traditional 32-character hex form.
	Fingerprint string `json:"fingerprint"`
}

// CacheHeader is the response header that reports whether a convert
// response was served from the response cache ("hit") or freshly
// converted ("miss"). A header, not a body field, so a cache hit serves
// the stored bytes untouched.
const CacheHeader = "X-Uplan-Cache"

// BatchRequest asks for a corpus-at-once conversion through the worker
// pool.
type BatchRequest struct {
	Records []ConvertRequest `json:"records"`
}

// BatchItem is one record's outcome inside a BatchResponse. Exactly one
// of Plan and Error is set.
type BatchItem struct {
	Plan  json.RawMessage `json:"plan,omitempty"`
	Error string          `json:"error,omitempty"`
}

// BatchResponse pairs per-record outcomes with the run's aggregate
// statistics, indexed like the request's records.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
	// Converted and Errors partition the results: every slot either
	// carries a plan or an error (conversion failure or deadline cutoff).
	Converted int `json:"converted"`
	Errors    int `json:"errors"`
	// DeadlineExceeded reports that the request's deadline expired before
	// every record was claimed; unconverted records carry the context
	// error in their Error field.
	DeadlineExceeded bool    `json:"deadline_exceeded,omitempty"`
	ElapsedSeconds   float64 `json:"elapsed_seconds"`
	PlansPerSec      float64 `json:"plans_per_sec"`
}

// FingerprintResponse is a conversion reduced to its fingerprints.
type FingerprintResponse struct {
	Dialect       string `json:"dialect"`
	Fingerprint64 string `json:"fingerprint64"`
	Fingerprint   string `json:"fingerprint"`
}

// CompareRequest asks for a structural comparison of two plans, possibly
// from different engines.
type CompareRequest struct {
	A ConvertRequest `json:"a"`
	B ConvertRequest `json:"b"`
}

// CompareResponse reports the structural differences between the two
// converted plans (Configuration properties only; Cardinality, Cost, and
// Status are expected to differ across engines).
type CompareResponse struct {
	Equal bool `json:"equal"`
	// Diffs renders each difference as core.Diff.String does.
	Diffs []string `json:"diffs,omitempty"`
	// Similarity is the tree-similarity score in [0, 1].
	Similarity float64 `json:"similarity"`
	// EditDistance is the tree edit distance between the two plans.
	EditDistance int `json:"edit_distance"`
}

// CampaignStatusResponse reports the attached campaign store's durable
// state. Attached is false when the server runs without a store; every
// other field is zero then.
type CampaignStatusResponse struct {
	Attached bool `json:"attached"`
	Dir      string `json:"dir,omitempty"`
	// Plans and Findings count the distinct records the log currently
	// holds (recovered plus appended since).
	Plans    int `json:"plans,omitempty"`
	Findings int `json:"findings,omitempty"`
	// Tasks lists the per-task checkpoints recovered when the store was
	// opened, in deterministic order.
	Tasks []CampaignTaskStatus `json:"tasks,omitempty"`
}

// CampaignTaskStatus is one (engine, oracle) task's recovered checkpoint.
type CampaignTaskStatus struct {
	Engine  string `json:"engine"`
	Oracle  string `json:"oracle"`
	Done    bool   `json:"done"`
	Queries int    `json:"queries"`
}

// ErrorResponse is the JSON body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// RetryAfterSeconds mirrors the Retry-After header on 429 responses,
	// so JSON-only clients see the backpressure hint too.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// HealthResponse is the /healthz and /readyz body.
type HealthResponse struct {
	Status string `json:"status"` // "ok", "draining"
	// InFlight and Queued snapshot the admission state at probe time.
	InFlight int `json:"in_flight"`
	Queued   int `json:"queued"`
}
