package serveclient

// Binary wire support: the client-side half of the service's negotiated
// binary format. The binary calls send BinaryContentType request bodies,
// ask for binary responses via Accept, and decode the returned
// internal/codec blobs into plans — into a caller-supplied arena when
// one is provided, so a polling loop can reuse its allocations. Errors
// stay on the JSON wire (the server always answers non-2xx as JSON), so
// the retry/backoff discipline is identical to the JSON calls.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"uplan/internal/codec"
	"uplan/internal/core"
	"uplan/internal/serve"
)

// BinaryConvertResult is one conversion received on the binary wire,
// with the plan decoded from its codec blob.
type BinaryConvertResult struct {
	Dialect string
	// Fingerprint64 and Fingerprint are the structural fingerprints in
	// their natural binary forms (the JSON API strings, undecorated).
	Fingerprint64 uint64
	Fingerprint   [32]byte
	// Plan is the decoded unified plan. When ConvertBinary was given an
	// arena the plan's nodes live in it and are invalidated by its Reset.
	Plan *core.Plan
}

// ConvertBinary converts one native plan over the binary wire. ar may be
// nil (the plan then owns its allocations); a non-nil arena is the
// caller's reuse contract — the returned plan is valid only until the
// arena's next Reset.
func (c *Client) ConvertBinary(ctx context.Context, dialect, serialized string, ar *core.PlanArena) (*BinaryConvertResult, error) {
	body := serve.AppendBinaryConvertRequest(nil, serve.ConvertRequest{Dialect: dialect, Serialized: serialized})
	raw, err := c.callBinary(ctx, "/v1/convert", body)
	if err != nil {
		return nil, err
	}
	resp, err := serve.DecodeBinaryConvertResponse(raw)
	if err != nil {
		return nil, fmt.Errorf("serveclient: decoding binary convert response: %w", err)
	}
	p, err := codec.DecodeInto(resp.PlanBlob, ar)
	if err != nil {
		return nil, fmt.Errorf("serveclient: decoding plan blob: %w", err)
	}
	return &BinaryConvertResult{
		Dialect:       resp.Dialect,
		Fingerprint64: resp.Fingerprint64,
		Fingerprint:   resp.Fingerprint,
		Plan:          p,
	}, nil
}

// BinaryBatchItem is one record's outcome from BatchConvertBinary.
// Exactly one of Plan and Error is set.
type BinaryBatchItem struct {
	Plan  *core.Plan
	Error string
}

// BinaryBatchResult is a batch conversion received on the binary wire,
// indexed like the request's records.
type BinaryBatchResult struct {
	Results          []BinaryBatchItem
	Converted        int
	Errors           int
	DeadlineExceeded bool
	ElapsedSeconds   float64
	PlansPerSec      float64
}

// BatchConvertBinary converts a corpus over the binary wire. All decoded
// plans share ar when it is non-nil — they are collectively invalidated
// by its Reset; a nil arena leaves each plan independently owned.
func (c *Client) BatchConvertBinary(ctx context.Context, records []serve.ConvertRequest, ar *core.PlanArena) (*BinaryBatchResult, error) {
	body := serve.AppendBinaryBatchRequest(nil, serve.BatchRequest{Records: records})
	raw, err := c.callBinary(ctx, "/v1/batch-convert", body)
	if err != nil {
		return nil, err
	}
	resp, err := serve.DecodeBinaryBatchResponse(raw)
	if err != nil {
		return nil, fmt.Errorf("serveclient: decoding binary batch response: %w", err)
	}
	out := &BinaryBatchResult{
		Results:          make([]BinaryBatchItem, len(resp.Results)),
		Converted:        resp.Converted,
		Errors:           resp.Errors,
		DeadlineExceeded: resp.DeadlineExceeded,
		ElapsedSeconds:   resp.ElapsedSeconds,
		PlansPerSec:      resp.PlansPerSec,
	}
	for i, it := range resp.Results {
		if it.Error != "" {
			out.Results[i] = BinaryBatchItem{Error: it.Error}
			continue
		}
		p, err := codec.DecodeInto(it.PlanBlob, ar)
		if err != nil {
			return nil, fmt.Errorf("serveclient: decoding batch plan blob %d: %w", i, err)
		}
		out.Results[i] = BinaryBatchItem{Plan: p}
	}
	return out, nil
}

// callBinary runs one binary-wire POST with the same
// retry-backoff-jitter loop as call, returning the raw response body.
func (c *Client) callBinary(ctx context.Context, path string, body []byte) ([]byte, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		raw, err := c.attemptBinary(ctx, path, body)
		if err == nil {
			return raw, nil
		}
		lastErr = err
		var apiErr *APIError
		retryable := !errors.As(lastErr, &apiErr) || apiErr.Retryable()
		if !retryable || attempt >= c.opts.MaxRetries {
			return nil, lastErr
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		var hint time.Duration
		if apiErr != nil {
			hint = apiErr.RetryAfter
		}
		if err := sleepBackoff(ctx, c.opts.Backoff, c.opts.MaxBackoff, attempt, hint); err != nil {
			return nil, errors.Join(err, lastErr)
		}
	}
}

// attemptBinary performs a single binary-wire round trip, reading the
// whole 2xx body (the wire decoders need the complete message).
func (c *Client) attemptBinary(ctx context.Context, path string, body []byte) (raw []byte, err error) {
	req, err := http.NewRequestWithContext(ctx, "POST", c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("serveclient: %w", err)
	}
	req.Header.Set("Content-Type", serve.BinaryContentType)
	req.Header.Set("Accept", serve.BinaryContentType)
	hr, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("serveclient: POST %s: %w", path, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, hr.Body)
		if cerr := hr.Body.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if hr.StatusCode/100 != 2 {
		return nil, decodeAPIError(hr)
	}
	raw, err = io.ReadAll(hr.Body)
	if err != nil {
		return nil, fmt.Errorf("serveclient: reading %s response: %w", path, err)
	}
	return raw, nil
}
