package serveclient

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"uplan/internal/core"
	"uplan/internal/serve"
)

const pgPlan = "Seq Scan on t1  (cost=0.00..431.00 rows=20100 width=4)"

// realServer mounts a real serve.Server handler — the binary round-trip
// tests exercise the actual negotiation path, not a scripted stub.
func realServer(t *testing.T, opts serve.Options) (*serve.Server, *Client) {
	t.Helper()
	s := serve.New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, New(ts.URL, Options{Backoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond})
}

// TestClientConvertBinaryRoundTrip: the binary call against a real server
// must return the same plan and fingerprints as the JSON call.
func TestClientConvertBinaryRoundTrip(t *testing.T) {
	_, c := realServer(t, serve.Options{})
	ctx := context.Background()

	ref, err := c.Convert(ctx, "postgresql", pgPlan)
	if err != nil {
		t.Fatalf("json convert: %v", err)
	}
	refPlan, err := core.ParseJSON(ref.Plan)
	if err != nil {
		t.Fatal(err)
	}

	ar := core.NewPlanArena()
	got, err := c.ConvertBinary(ctx, "postgresql", pgPlan, ar)
	if err != nil {
		t.Fatalf("binary convert: %v", err)
	}
	if got.Plan.MarshalText() != refPlan.MarshalText() {
		t.Error("binary-wire plan diverges from the JSON-wire plan")
	}
	if got.Dialect != "postgresql" {
		t.Errorf("Dialect = %q", got.Dialect)
	}
	if want := strconv.FormatUint(got.Fingerprint64, 10); want != ref.Fingerprint64 {
		t.Errorf("Fingerprint64 = %s, JSON said %s", want, ref.Fingerprint64)
	}
	if want := core.HexFingerprint(got.Fingerprint); want != ref.Fingerprint {
		t.Errorf("Fingerprint = %s, JSON said %s", want, ref.Fingerprint)
	}

	// Nil-arena calls stand alone.
	solo, err := c.ConvertBinary(ctx, "postgresql", pgPlan, nil)
	if err != nil {
		t.Fatalf("nil-arena binary convert: %v", err)
	}
	ar.Reset()
	if solo.Plan.MarshalText() != refPlan.MarshalText() {
		t.Error("nil-arena plan diverges after the shared arena reset")
	}
}

// TestClientBatchConvertBinaryRoundTrip: a mixed batch over the binary
// wire decodes per-slot plans and errors like the JSON batch call.
func TestClientBatchConvertBinaryRoundTrip(t *testing.T) {
	_, c := realServer(t, serve.Options{})
	records := []serve.ConvertRequest{
		{Dialect: "postgresql", Serialized: pgPlan},
		{Dialect: "no-such-db", Serialized: "x"},
		{Dialect: "postgresql", Serialized: pgPlan},
	}
	got, err := c.BatchConvertBinary(context.Background(), records, core.NewPlanArena())
	if err != nil {
		t.Fatalf("binary batch: %v", err)
	}
	if len(got.Results) != 3 || got.Converted != 2 || got.Errors != 1 {
		t.Fatalf("batch = %d converted / %d errors over %d slots, want 2/1/3",
			got.Converted, got.Errors, len(got.Results))
	}
	for _, slot := range []int{0, 2} {
		if got.Results[slot].Plan == nil || got.Results[slot].Error != "" {
			t.Errorf("slot %d: %+v, want a plan", slot, got.Results[slot])
		}
	}
	if got.Results[1].Plan != nil || got.Results[1].Error == "" {
		t.Errorf("slot 1: %+v, want an error", got.Results[1])
	}
	if got.Results[0].Plan.MarshalText() != got.Results[2].Plan.MarshalText() {
		t.Error("identical records decoded to different plans")
	}
}

// TestClientBinaryRetriesShed: the binary call path shares the JSON
// call's retry discipline — the server's JSON 429 body is understood even
// though the request asked for a binary response.
func TestClientBinaryRetriesShed(t *testing.T) {
	var attempts atomic.Int64
	real := serve.New(serve.Options{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"shed","retry_after_seconds":1}`))
			return
		}
		real.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	c := New(ts.URL, Options{Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	got, err := c.ConvertBinary(context.Background(), "postgresql", pgPlan, nil)
	if err != nil {
		t.Fatalf("binary convert after shed: %v", err)
	}
	if got.Plan == nil {
		t.Fatal("no plan after retry")
	}
	if attempts.Load() != 2 {
		t.Errorf("made %d attempts, want 2 (429 then 200)", attempts.Load())
	}

	// Non-retryable conversion failure surfaces as a 422 APIError.
	_, err = c.ConvertBinary(context.Background(), "no-such-db", "x", nil)
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.Status != http.StatusUnprocessableEntity {
		t.Fatalf("err = %v, want a 422 APIError", err)
	}
}
