package serveclient

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"uplan/internal/serve"
)

// scripted returns a test server answering from a status script, with
// the final entry repeating; 200s get a minimal ConvertResponse body.
func scripted(t *testing.T, attempts *atomic.Int64, script ...int) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := attempts.Add(1) - 1
		status := script[min(int(i), len(script)-1)]
		if status == http.StatusOK {
			json.NewEncoder(w).Encode(serve.ConvertResponse{Dialect: "postgresql", Fingerprint64: "1"})
			return
		}
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "scripted", RetryAfterSeconds: 0})
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestClientConvertRetriesShedThenSucceeds(t *testing.T) {
	var attempts atomic.Int64
	ts := scripted(t, &attempts, http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusOK)
	c := New(ts.URL, Options{Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	resp, err := c.Convert(context.Background(), "postgresql", "plan")
	if err != nil {
		t.Fatalf("convert after retryable failures: %v", err)
	}
	if resp.Fingerprint64 != "1" {
		t.Errorf("unexpected response %+v", resp)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("made %d attempts, want 3 (429, 503, 200)", got)
	}
}

func TestClientConvertDoesNotRetryConversionFailure(t *testing.T) {
	var attempts atomic.Int64
	ts := scripted(t, &attempts, http.StatusUnprocessableEntity)
	c := New(ts.URL, Options{Backoff: time.Millisecond})
	_, err := c.Convert(context.Background(), "postgresql", "garbage")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnprocessableEntity {
		t.Fatalf("err = %v, want a 422 APIError", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("made %d attempts for a non-retryable 422, want 1", got)
	}
}

func TestClientConvertRetryExhaustion(t *testing.T) {
	var attempts atomic.Int64
	ts := scripted(t, &attempts, http.StatusTooManyRequests)
	c := New(ts.URL, Options{MaxRetries: 2, Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	_, err := c.Convert(context.Background(), "postgresql", "plan")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want the final 429", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("made %d attempts with MaxRetries 2, want 3", got)
	}
}

func TestClientConvertContextBoundsBackoff(t *testing.T) {
	var attempts atomic.Int64
	ts := scripted(t, &attempts, http.StatusTooManyRequests)
	// A long backoff against a short caller deadline: the sleep must be
	// cut off by ctx, not ridden out.
	c := New(ts.URL, Options{Backoff: 10 * time.Second, MaxBackoff: 10 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Convert(ctx, "postgresql", "plan")
	if err == nil {
		t.Fatal("convert succeeded against a permanent 429")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want the caller's deadline", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("call took %v; the backoff ignored the context", took)
	}
}

func TestClientConvertHonorsRetryAfterHeader(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "full", RetryAfterSeconds: 1})
			return
		}
		json.NewEncoder(w).Encode(serve.ConvertResponse{Dialect: "postgresql", Fingerprint64: "1"})
	}))
	defer ts.Close()
	// MaxBackoff clamps the server's 1s hint so the test stays fast; the
	// hint path is still the one exercised (jittered into [25ms, 50ms)).
	c := New(ts.URL, Options{Backoff: time.Millisecond, MaxBackoff: 50 * time.Millisecond})
	start := time.Now()
	if _, err := c.Convert(context.Background(), "postgresql", "plan"); err != nil {
		t.Fatalf("convert: %v", err)
	}
	// The 1ms exponential base alone would retry near-instantly; waiting
	// ≥ 20ms shows the clamped server hint drove the sleep.
	if took := time.Since(start); took < 20*time.Millisecond {
		t.Errorf("retried after %v; the Retry-After hint was ignored", took)
	}
}
