// Package serveclient is the retrying client for the uplan plan service
// (internal/serve). It speaks the service's JSON wire types and bakes in
// the retry discipline the server's backpressure contract expects:
// shed responses (429) and transient unavailability (503) are retried
// with exponential backoff plus jitter, honoring the server's
// Retry-After hint; other 4xx/5xx statuses and conversion failures are
// returned immediately — retrying a 422 re-parses the same broken plan.
//
// All request bodies are buffered byte slices, so every retry replays an
// identical request; the context bounds the whole call including every
// backoff sleep.
package serveclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"

	"uplan/internal/serve"
)

// Options tune a Client. The zero value retries 3 times with a 100ms
// initial backoff.
type Options struct {
	// HTTPClient is the transport; nil means a client with Timeout equal
	// to RequestTimeout.
	HTTPClient *http.Client
	// MaxRetries is how many times a retryable failure is retried (so a
	// call makes at most MaxRetries+1 attempts). Negative disables
	// retries; zero means DefaultMaxRetries.
	MaxRetries int
	// Backoff is the first retry's base delay, doubled per attempt and
	// capped at MaxBackoff; the actual sleep is jittered uniformly in
	// [Backoff/2, Backoff). A server Retry-After hint overrides the
	// exponential base (jitter still applies). Zero means DefaultBackoff.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// RequestTimeout bounds one attempt when HTTPClient is nil. Zero
	// means DefaultRequestTimeout.
	RequestTimeout time.Duration
}

// Defaults for the zero Options value.
const (
	DefaultMaxRetries     = 3
	DefaultBackoff        = 100 * time.Millisecond
	DefaultMaxBackoff     = 5 * time.Second
	DefaultRequestTimeout = 30 * time.Second
)

// Client calls one plan service instance. Safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
	opts Options
}

// New returns a client for the service rooted at baseURL (e.g.
// "http://127.0.0.1:8091", no trailing slash required).
func New(baseURL string, opts Options) *Client {
	if opts.MaxRetries == 0 {
		opts.MaxRetries = DefaultMaxRetries
	}
	if opts.MaxRetries < 0 {
		opts.MaxRetries = 0
	}
	if opts.Backoff <= 0 {
		opts.Backoff = DefaultBackoff
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = DefaultMaxBackoff
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = DefaultRequestTimeout
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: opts.RequestTimeout}
	}
	return &Client{base: trimSlash(baseURL), hc: hc, opts: opts}
}

func trimSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}

// APIError is a non-2xx service response.
type APIError struct {
	Status     int
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serve: %d %s: %s", e.Status, http.StatusText(e.Status), e.Message)
}

// Retryable reports whether the response is worth retrying: shed (429)
// and unavailable (503) are transient by the server's own contract.
func (e *APIError) Retryable() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// Convert converts one native plan.
func (c *Client) Convert(ctx context.Context, dialect, serialized string) (*serve.ConvertResponse, error) {
	var resp serve.ConvertResponse
	err := c.call(ctx, "POST", "/v1/convert",
		serve.ConvertRequest{Dialect: dialect, Serialized: serialized}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// BatchConvert converts a corpus through the service's worker pool.
func (c *Client) BatchConvert(ctx context.Context, records []serve.ConvertRequest) (*serve.BatchResponse, error) {
	var resp serve.BatchResponse
	err := c.call(ctx, "POST", "/v1/batch-convert", serve.BatchRequest{Records: records}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Fingerprint converts one native plan and returns only its structural
// fingerprints.
func (c *Client) Fingerprint(ctx context.Context, dialect, serialized string) (*serve.FingerprintResponse, error) {
	var resp serve.FingerprintResponse
	err := c.call(ctx, "POST", "/v1/fingerprint",
		serve.ConvertRequest{Dialect: dialect, Serialized: serialized}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Compare converts two native plans and returns their structural diff.
func (c *Client) Compare(ctx context.Context, a, b serve.ConvertRequest) (*serve.CompareResponse, error) {
	var resp serve.CompareResponse
	err := c.call(ctx, "POST", "/v1/compare", serve.CompareRequest{A: a, B: b}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// CampaignStatus reports the attached campaign store's state.
func (c *Client) CampaignStatus(ctx context.Context) (*serve.CampaignStatusResponse, error) {
	var resp serve.CampaignStatusResponse
	if err := c.call(ctx, "GET", "/v1/campaign-status", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Metrics snapshots the service's counters.
func (c *Client) Metrics(ctx context.Context) (*serve.MetricsSnapshot, error) {
	var resp serve.MetricsSnapshot
	if err := c.call(ctx, "GET", "/metrics", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Healthy probes /healthz (liveness) without retrying.
func (c *Client) Healthy(ctx context.Context) (*serve.HealthResponse, error) {
	var resp serve.HealthResponse
	if err := c.once(ctx, "GET", "/healthz", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Ready probes /readyz (readiness) without retrying: a draining server's
// 503 is the answer, not a transient to paper over.
func (c *Client) Ready(ctx context.Context) (*serve.HealthResponse, error) {
	var resp serve.HealthResponse
	if err := c.once(ctx, "GET", "/readyz", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// call runs one API call with the retry-backoff-jitter loop.
func (c *Client) call(ctx context.Context, method, path string, req, resp any) error {
	body, err := marshalBody(req)
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		lastErr = c.attempt(ctx, method, path, body, resp)
		if lastErr == nil {
			return nil
		}
		var apiErr *APIError
		retryable := !errors.As(lastErr, &apiErr) || apiErr.Retryable()
		if !retryable || attempt >= c.opts.MaxRetries {
			return lastErr
		}
		// Context errors are final — the caller's deadline, not the
		// server, ended the call.
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var hint time.Duration
		if apiErr != nil {
			hint = apiErr.RetryAfter
		}
		if err := sleepBackoff(ctx, c.opts.Backoff, c.opts.MaxBackoff, attempt, hint); err != nil {
			return errors.Join(err, lastErr)
		}
	}
}

// once runs one API call with no retries (health probes).
func (c *Client) once(ctx context.Context, method, path string, req, resp any) error {
	body, err := marshalBody(req)
	if err != nil {
		return err
	}
	return c.attempt(ctx, method, path, body, resp)
}

func marshalBody(req any) ([]byte, error) {
	if req == nil {
		return nil, nil
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("serveclient: encoding request: %w", err)
	}
	return body, nil
}

// attempt performs a single HTTP round trip.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("serveclient: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hr, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("serveclient: %s %s: %w", method, path, err)
	}
	defer func() {
		// Drain so the transport can reuse the connection; a failed drain
		// only costs that reuse.
		_, _ = io.Copy(io.Discard, hr.Body)
		if cerr := hr.Body.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if hr.StatusCode/100 != 2 {
		return decodeAPIError(hr)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(hr.Body).Decode(out); err != nil {
		return fmt.Errorf("serveclient: decoding %s response: %w", path, err)
	}
	return nil
}

// decodeAPIError turns a non-2xx response into an *APIError, reading the
// ErrorResponse body and Retry-After header.
func decodeAPIError(hr *http.Response) error {
	apiErr := &APIError{Status: hr.StatusCode}
	var er serve.ErrorResponse
	if err := json.NewDecoder(io.LimitReader(hr.Body, 1<<16)).Decode(&er); err == nil && er.Error != "" {
		apiErr.Message = er.Error
		if er.RetryAfterSeconds > 0 {
			apiErr.RetryAfter = time.Duration(er.RetryAfterSeconds) * time.Second
		}
	} else {
		apiErr.Message = "(no error body)"
	}
	if ra := hr.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return apiErr
}

// sleepBackoff waits out one retry delay: the server's hint when present,
// otherwise base<<attempt capped at max — jittered uniformly into
// [d/2, d) either way, so a shed storm of clients does not retry in
// lockstep.
func sleepBackoff(ctx context.Context, base, max time.Duration, attempt int, hint time.Duration) error {
	d := base << uint(attempt)
	if d > max || d <= 0 {
		d = max
	}
	if hint > 0 {
		d = hint
		if d > max {
			d = max
		}
	}
	d = d/2 + rand.N(d/2+1)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
