package serve

// The fault suite: overload storms, slow-loris connections, mid-request
// kills, drains with work in flight, and sick-storage syncs. The
// invariants under every fault: requests always terminate (no deadlock),
// goroutines always settle (no leak), and the health probes keep telling
// the truth.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"uplan/internal/store"
	"uplan/internal/store/faultio"
)

// stormOptions shape a server for deterministic overload: one slot, a
// two-deep queue, no cache (every request must contend), and a handler
// delay long enough that the storm piles up behind the first request.
func stormOptions() Options {
	return Options{
		MaxInFlight:    1,
		MaxQueue:       2,
		CacheSize:      -1,
		HandlerDelay:   100 * time.Millisecond,
		RequestTimeout: 10 * time.Second,
	}
}

func TestServeFaultQueueFullStormConvert(t *testing.T) {
	s, ts := newTestServer(t, stormOptions())
	client := ts.Client()

	const storm = 16
	statuses := make([]int, storm)
	retryAfter := make([]string, storm)
	var wg sync.WaitGroup
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct bodies so a response cache could never absorb the
			// storm even if it were enabled.
			body, _ := json.Marshal(ConvertRequest{
				Dialect:    "postgresql",
				Serialized: fmt.Sprintf("Seq Scan on t%d  (cost=0.00..1.00 rows=%d width=4)", i, i+1),
			})
			resp, err := client.Post(ts.URL+"/v1/convert", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("request %d died instead of being answered: %v", i, err)
				return
			}
			resp.Body.Close()
			statuses[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	ok, shed := 0, 0
	for i, code := range statuses {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if retryAfter[i] == "" {
				t.Errorf("request %d: 429 without a Retry-After hint", i)
			}
		default:
			t.Errorf("request %d: status %d, want 200 or 429", i, code)
		}
	}
	// 1 slot + 2 queue seats means at most 3 requests ever in the
	// building; a 16-wide storm must shed and must also serve.
	if ok == 0 {
		t.Error("storm starved every request")
	}
	if shed == 0 {
		t.Error("16-wide storm against a 3-capacity server shed nothing")
	}
	snap := s.Metrics()
	if snap.Shed.Single != int64(shed) {
		t.Errorf("shed counter = %d, observed %d 429s", snap.Shed.Single, shed)
	}
	if snap.InFlight != 0 || snap.QueueDepth != 0 {
		t.Errorf("admission state %d in flight / %d queued after the storm, want 0/0",
			snap.InFlight, snap.QueueDepth)
	}
}

// TestServeFaultBatchShedsBeforeSingle pins the load-shedding order at
// the admission layer, where it is deterministic: with the queue at the
// batch bound but under the single bound, a batch is refused while a
// single still queues.
func TestServeFaultBatchShedsBeforeSingle(t *testing.T) {
	a := newAdmission(1, 4) // batchQueue = 2

	// Occupy the only slot.
	release, err := a.acquire(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}

	// Park two single requests in the queue.
	var parked sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 2; i++ {
		parked.Add(1)
		go func() {
			defer parked.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go func() { <-stop; cancel() }()
			if rel, err := a.acquire(ctx, false); err == nil {
				rel()
			}
		}()
	}
	for a.queueDepth() < 2 {
		time.Sleep(time.Millisecond)
	}

	// Queue depth 2 == batch bound: the batch sheds...
	if _, err := a.acquire(context.Background(), true); err == nil {
		t.Fatal("batch admitted with the queue at the batch bound")
	} else if shed, ok := asShed(err); !ok || !shed.batch {
		t.Fatalf("batch refusal = %v, want a batch errShed", err)
	}
	// ...while a single still queues (its deadline expiring proves it
	// waited rather than shed).
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := a.acquire(ctx, false); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("single at depth 2 = %v, want a queued deadline expiry", err)
	}

	close(stop)
	release()
	parked.Wait()
}

func TestServeFaultSlowLoris(t *testing.T) {
	s, url, errCh := startServer(t, Options{
		ReadHeaderTimeout: 150 * time.Millisecond,
		ReadTimeout:       150 * time.Millisecond,
	})

	// A connection that sends half a request line and then stalls.
	conn, err := net.Dial("tcp", url[len("http://"):])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("POST /v1/convert HT")); err != nil {
		t.Fatal(err)
	}
	// The server must reap the connection at the read deadline instead of
	// holding it open: the read unblocks well before the test's own
	// deadline, either with a close (EOF/reset) or with the 408 the net/http
	// server writes on a header timeout — and then the connection closes.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 4096)
	for {
		_, err := conn.Read(buf)
		if err == nil {
			continue // the 408 body; keep reading to the close
		}
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			t.Fatal("server still holding the slow-loris connection after 5s")
		}
		break // closed — reaped
	}

	// The service stayed healthy throughout.
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("healthz after loris: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz after loris = %d", resp.StatusCode)
	}

	drainServer(t, s, url, errCh)
}

func TestServeFaultMidRequestConnectionKill(t *testing.T) {
	s, url, errCh := startServer(t, Options{
		CacheSize:    -1,
		HandlerDelay: 300 * time.Millisecond,
	})

	// The client gives up mid-handler; the connection dies under the
	// in-flight request.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	body, _ := json.Marshal(ConvertRequest{Dialect: "postgresql", Serialized: pgPlan})
	req, _ := http.NewRequestWithContext(ctx, "POST", url+"/v1/convert", bytes.NewReader(body))
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("the aborted request somehow succeeded in 50ms against a 300ms handler")
	}

	// The kill must not wedge the slot: the next request gets through.
	req2, _ := http.NewRequest("POST", url+"/v1/convert", bytes.NewReader(body))
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Do(req2)
	if err != nil {
		t.Fatalf("convert after connection kill: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("convert after connection kill = %d", resp.StatusCode)
	}

	drainServer(t, s, url, errCh)
}

func TestServeFaultDrainWithInFlightBatch(t *testing.T) {
	s, url, errCh := startServer(t, Options{
		MaxInFlight:  1,
		CacheSize:    -1,
		HandlerDelay: 10 * time.Second, // far past the drain deadline: only cancellation ends it
		BatchTimeout: 30 * time.Second,
	})

	// Park a batch in flight.
	batchDone := make(chan error, 1)
	go func() {
		body, _ := json.Marshal(BatchRequest{Records: []ConvertRequest{
			{Dialect: "postgresql", Serialized: pgPlan},
		}})
		c := &http.Client{Timeout: 20 * time.Second}
		resp, err := c.Post(url+"/v1/batch-convert", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
		batchDone <- err
	}()
	waitFor(t, "batch in flight", func() bool { return s.Metrics().InFlight >= 1 })

	// Drain with a deadline far shorter than the handler's stall. The
	// base-context cancellation must cut the in-flight batch loose, so the
	// whole drain ends in ~deadline time, not in HandlerDelay time.
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	drainErr := s.Drain(ctx)
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("drain took %v against a 200ms deadline", took)
	}
	if drainErr == nil {
		t.Error("drain with a stalled in-flight batch reported success, want the deadline failure")
	}

	// Probes stayed truthful mid-drain: alive, not ready. The listener is
	// gone, so ask the handler directly.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("healthz during drain = %d, want 200 (draining is alive)", rec.Code)
	}
	var h HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil || h.Status != "draining" {
		t.Errorf("healthz body during drain = %s (err %v), want status draining", rec.Body.Bytes(), err)
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain = %d, want 503", rec.Code)
	}

	// The batch client got an answer or a closed connection — never a
	// hang.
	select {
	case <-batchDone:
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight batch still hanging after drain")
	}
	if err := <-errCh; err != nil {
		t.Errorf("Serve returned %v after drain", err)
	}
}

// TestServeFaultDrainStoreSyncError: a store whose fsync fails during
// the drain's durability barrier must surface the failure — the process
// exits nonzero instead of claiming the journal is safe.
func TestServeFaultDrainStoreSyncError(t *testing.T) {
	faults := faultio.NewFaults()
	log, err := store.Open(t.TempDir(), store.Options{
		Open: func(path string) (store.WriteSyncer, error) {
			ws, err := store.OpenFile(path)
			if err != nil {
				return nil, err
			}
			return faultio.Wrap(ws, faults), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if _, err := log.AppendPlan([32]byte{42}); err != nil {
		t.Fatal(err)
	}

	s, _, errCh := startServer(t, Options{Store: log})
	// The storage falls sick only now, so the drain's sync is the first
	// call to hit it.
	faults.SyncErr = fmt.Errorf("drain sync: %w", faultio.ErrInjected)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	drainErr := s.Drain(ctx)
	if !errors.Is(drainErr, faultio.ErrInjected) {
		t.Fatalf("drain over a failing fsync = %v, want the injected sync error", drainErr)
	}
	if err := <-errCh; err != nil {
		t.Errorf("Serve returned %v", err)
	}
}

// TestServeFaultGoroutineSettle runs a storm plus a drain and then
// requires the goroutine count to settle back — the admission queue,
// handler pool, and drain path leak nothing.
func TestServeFaultGoroutineSettle(t *testing.T) {
	start := runtime.NumGoroutine()

	s, url, errCh := startServer(t, stormOptions())
	transport := &http.Transport{}
	client := &http.Client{Transport: transport, Timeout: 10 * time.Second}
	var wg sync.WaitGroup
	var answered atomic.Int64
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(ConvertRequest{
				Dialect:    "postgresql",
				Serialized: fmt.Sprintf("Seq Scan on settle%d  (cost=0.00..1.00 rows=1 width=4)", i),
			})
			resp, err := client.Post(url+"/v1/convert", "application/json", bytes.NewReader(body))
			if err == nil {
				resp.Body.Close()
				answered.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if answered.Load() == 0 {
		t.Fatal("storm got no answers at all")
	}
	drainServer(t, s, url, errCh)
	transport.CloseIdleConnections()
	http.DefaultClient.CloseIdleConnections()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= start+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: started at %d, still %d", start, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(20 * time.Millisecond)
	}
}

// waitFor polls cond until it holds or the test deadline budget runs
// out.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// drainServer drains s cleanly and asserts the Serve goroutine exits.
func drainServer(t *testing.T, s *Server, url string, errCh chan error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Errorf("drain %s: %v", url, err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Errorf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not exit after drain")
	}
}
