package bench

import (
	"testing"

	"uplan/internal/dbms"
	"uplan/internal/pipeline"
)

func TestCorpusCoversAllNineDialects(t *testing.T) {
	recs, err := Corpus(42)
	if err != nil {
		t.Fatal(err)
	}
	perDialect := map[string]int{}
	for _, r := range recs {
		perDialect[r.Dialect]++
		if r.Serialized == "" {
			t.Fatalf("%s: empty serialized plan", r.Dialect)
		}
	}
	for _, name := range dbms.Names() {
		if perDialect[name] < 22 {
			t.Errorf("%s: %d records, want ≥ 22", name, perDialect[name])
		}
	}
	if len(perDialect) != len(dbms.Infos) {
		t.Errorf("corpus covers %d dialects, want %d", len(perDialect), len(dbms.Infos))
	}

	// Every record must convert cleanly through the pipeline.
	results, stats := pipeline.ConvertBatch(recs, pipeline.Options{Workers: 4})
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s: %v\ninput:\n%.200s", r.Record.Dialect, r.Err, r.Record.Serialized)
		}
	}
	if stats.Errors != 0 || stats.Converted != len(recs) {
		t.Errorf("stats = %d converted, %d errors over %d records",
			stats.Converted, stats.Errors, len(recs))
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a, err := Corpus(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Corpus(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs between identically-seeded corpora", i)
		}
	}
}
