package bench

import (
	"testing"

	"uplan/internal/core"
	"uplan/internal/dbms"
)

func TestTPCHLoadsAndQueriesPlanEverywhere(t *testing.T) {
	queries := TPCHQueries()
	if len(queries) != 22 {
		t.Fatalf("TPC-H has %d queries, want 22", len(queries))
	}
	for _, name := range TableVIEngines {
		e := dbms.MustNew(name)
		if err := LoadTPCH(e, 42, DefaultSizes()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rep, err := CollectPlans(e, queries)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rep.Failed) > 0 {
			for _, q := range rep.Failed {
				out, err := e.Explain(queries[q], e.DefaultFormat())
				t.Logf("%s q%d explain err=%v out=%.200s", name, q+1, err, out)
			}
			t.Fatalf("%s: failed queries %v", name, rep.Failed)
		}
		if len(rep.Plans) != 22 {
			t.Fatalf("%s: %d plans", name, len(rep.Plans))
		}
	}
}

func TestTableVIShape(t *testing.T) {
	reports, err := RunTableVI(42)
	if err != nil {
		t.Fatal(err)
	}
	avg := map[string]core.CategoryHistogram{}
	for _, r := range reports {
		avg[r.Engine] = r.Average()
	}
	sum := func(e string) float64 { return avg[e].Sum() }

	// Paper Table VI shape: MongoDB has exactly 1 Producer + 1 Projector;
	// relational engines are an order of magnitude larger;
	// TiDB > PostgreSQL > MySQL; Neo4j in between.
	if avg["mongodb"][core.Producer] != 1 {
		t.Errorf("mongodb producers = %v, want 1.00", avg["mongodb"][core.Producer])
	}
	if s := sum("mongodb"); s < 1.5 || s > 2.5 {
		t.Errorf("mongodb total = %.2f, want ≈2.00", s)
	}
	if !(sum("tidb") > sum("postgresql") && sum("postgresql") > sum("mysql")) {
		t.Errorf("ordering broken: tidb=%.2f postgresql=%.2f mysql=%.2f",
			sum("tidb"), sum("postgresql"), sum("mysql"))
	}
	if sum("mysql") < 5 {
		t.Errorf("mysql total = %.2f, too small", sum("mysql"))
	}
	if sum("neo4j") >= sum("mysql")+3 || sum("neo4j") <= sum("mongodb") {
		t.Errorf("neo4j total = %.2f out of expected band (mongodb %.2f, mysql %.2f)",
			sum("neo4j"), sum("mongodb"), sum("mysql"))
	}
	// MySQL and PostgreSQL expose no Projector operations (Table II/VI).
	if avg["mysql"][core.Projector] != 0 || avg["postgresql"][core.Projector] != 0 {
		t.Errorf("projector ops: mysql=%v postgresql=%v",
			avg["mysql"][core.Projector], avg["postgresql"][core.Projector])
	}
	// TiDB plans include projections.
	if avg["tidb"][core.Projector] < 0.5 {
		t.Errorf("tidb projector = %v, want ≥0.5", avg["tidb"][core.Projector])
	}
	// Render the table (smoke).
	if out := FormatCategoryTable(reports); len(out) < 100 {
		t.Error("table rendering too small")
	}
}

func TestFigure4Variance(t *testing.T) {
	reports, err := RunTableVI(42)
	if err != nil {
		t.Fatal(err)
	}
	vs := ProducerVariance(reports)
	if len(vs) != 22 {
		t.Fatalf("variance series length %d", len(vs))
	}
	high := HighVarianceQueries(vs, 5)
	if len(high) < 3 {
		t.Errorf("expected several high-variance queries (paper: six >5), got %v", high)
	}
	// q11 must be among the significant-variance queries (Listing 4).
	foundQ11 := false
	for _, q := range HighVarianceQueries(vs, 1) {
		if q == 11 {
			foundQ11 = true
		}
	}
	if !foundQ11 {
		t.Errorf("q11 should show significant producer variance: %v", vs[10])
	}
	if out := FormatVarianceSeries(vs); len(out) < 100 {
		t.Error("variance rendering too small")
	}
}

func TestQ11Analysis(t *testing.T) {
	a, err := RunQ11(42)
	if err != nil {
		t.Fatal(err)
	}
	// Listing 4 shape: PostgreSQL reads each of the three tables twice,
	// TiDB avoids the redundant scans.
	if a.PGScans < a.TiDBScans+2 {
		t.Errorf("PostgreSQL should need more table reads: pg=%d tidb=%d",
			a.PGScans, a.TiDBScans)
	}
	if a.PGScans != 6 {
		t.Logf("note: pg producer count = %d (paper: 6)", a.PGScans)
	}
	// Timing shares depend on the substrate: in-memory scans are cheap
	// relative to joins, so the measured share is well below the paper's
	// disk-bound 27% (see EXPERIMENTS.md). The structural fact — a
	// positive, attributable redundant-scan cost — must hold.
	frac := a.SavingsFraction()
	if a.RedundantMS <= 0 || frac <= 0 || frac >= 0.95 {
		t.Errorf("redundant-scan share = %.3f (redundant %.3fms), want positive", frac, a.RedundantMS)
	}
	t.Logf("pg scans=%d tidb scans=%d redundant=%.3fms total=%.3fms fraction=%.1f%%",
		a.PGScans, a.TiDBScans, a.RedundantMS, a.TotalMS, frac*100)
}

func TestTableVIIShape(t *testing.T) {
	reports, err := RunTableVII(42)
	if err != nil {
		t.Fatal(err)
	}
	mongo, neo := reports[0].Average(), reports[1].Average()
	// YCSB point reads: a single producer, no projection (SELECT *).
	if mongo[core.Producer] < 0.9 || mongo[core.Projector] != 0 {
		t.Errorf("mongodb YCSB histogram: %v", mongo)
	}
	if s := mongo.Sum(); s > 2.2 {
		t.Errorf("mongodb YCSB total = %.2f, want ≈1", s)
	}
	// WDBench: traversal-heavy, no Combinator/Folder (paper Table VII).
	if neo[core.Join] < 1 {
		t.Errorf("neo4j WDBench joins = %v, want ≥1", neo[core.Join])
	}
	if neo[core.Combinator] != 0 || neo[core.Folder] != 0 {
		t.Errorf("neo4j WDBench should expose no Combinator/Folder ops: %v", neo)
	}
}

func TestDataDeterminism(t *testing.T) {
	a := TPCHData(42, DefaultSizes())
	b := TPCHData(42, DefaultSizes())
	if len(a) != len(b) {
		t.Fatal("nondeterministic statement count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic data at %d", i)
		}
	}
	c := TPCHData(43, DefaultSizes())
	same := true
	for i := range a {
		if i < len(c) && a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should produce different data")
	}
}
