// Package bench implements the paper's benchmarking workloads and the
// cross-DBMS plan-comparison metrics of application A.3: a scaled-down
// deterministic TPC-H (schema, data generator, all 22 queries adapted to
// the engines' SQL subset), a YCSB-style workload for MongoDB, a
// WDBench-style graph-pattern workload for Neo4j, and the operation
// statistics behind Tables VI/VII, Figure 4, and the q11 analysis of
// Listing 4.
package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"uplan/internal/dbms"
)

// TPCHSchema is the simplified TPC-H DDL (8 tables; dates are TEXT in
// ISO-8601 so lexicographic comparison matches date order).
var TPCHSchema = []string{
	`CREATE TABLE region (r_regionkey INT PRIMARY KEY, r_name TEXT)`,
	`CREATE TABLE nation (n_nationkey INT PRIMARY KEY, n_name TEXT, n_regionkey INT)`,
	`CREATE TABLE supplier (s_suppkey INT PRIMARY KEY, s_name TEXT, s_nationkey INT, s_acctbal FLOAT, s_comment TEXT)`,
	`CREATE TABLE customer (c_custkey INT PRIMARY KEY, c_name TEXT, c_nationkey INT, c_acctbal FLOAT, c_mktsegment TEXT, c_phone TEXT)`,
	`CREATE TABLE part (p_partkey INT PRIMARY KEY, p_name TEXT, p_mfgr TEXT, p_brand TEXT, p_type TEXT, p_size INT, p_container TEXT, p_retailprice FLOAT)`,
	`CREATE TABLE partsupp (ps_partkey INT, ps_suppkey INT, ps_availqty INT, ps_supplycost FLOAT)`,
	`CREATE TABLE orders (o_orderkey INT PRIMARY KEY, o_custkey INT, o_orderstatus TEXT, o_totalprice FLOAT, o_orderdate TEXT, o_orderpriority TEXT, o_shippriority INT)`,
	`CREATE TABLE lineitem (l_orderkey INT, l_partkey INT, l_suppkey INT, l_linenumber INT, l_quantity FLOAT, l_extendedprice FLOAT, l_discount FLOAT, l_tax FLOAT, l_returnflag TEXT, l_linestatus TEXT, l_shipdate TEXT, l_commitdate TEXT, l_receiptdate TEXT, l_shipinstruct TEXT, l_shipmode TEXT)`,
}

// TPCHIndexes are the indexes a tuned deployment carries (primary keys are
// implicit); they let engines exhibit index-based plans (TiDB's q11 idiom).
var TPCHIndexes = []string{
	`CREATE INDEX idx_ps_suppkey ON partsupp (ps_suppkey, ps_supplycost, ps_availqty)`,
	`CREATE INDEX idx_ps_partkey ON partsupp (ps_partkey)`,
	`CREATE INDEX idx_l_orderkey ON lineitem (l_orderkey)`,
	`CREATE INDEX idx_o_custkey ON orders (o_custkey)`,
	`CREATE INDEX idx_s_suppkey ON supplier (s_suppkey, s_nationkey)`,
}

// TPCHSizes is the scaled-down population (deterministic; roughly SF 1/4000
// in row-count proportions).
type TPCHSizes struct {
	Region, Nation, Supplier, Customer, Part, PartSupp, Orders, LineItem int
}

// DefaultSizes returns the population used by the benchmark harness.
func DefaultSizes() TPCHSizes {
	return TPCHSizes{
		Region: 5, Nation: 25, Supplier: 12, Customer: 30,
		Part: 25, PartSupp: 60, Orders: 60, LineItem: 180,
	}
}

var (
	regionNames  = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	segments     = []string{"BUILDING", "AUTOMOBILE", "MACHINERY", "HOUSEHOLD", "FURNITURE"}
	priorities   = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipmodes    = []string{"MAIL", "SHIP", "AIR", "TRUCK", "RAIL", "FOB", "REG AIR"}
	types        = []string{"ECONOMY BRASS", "STANDARD COPPER", "PROMO STEEL", "SMALL TIN", "LARGE NICKEL"}
	containers   = []string{"SM CASE", "LG BOX", "MED BAG", "JUMBO PACK", "WRAP JAR"}
	returnFlags  = []string{"R", "A", "N"}
	lineStatuses = []string{"O", "F"}
)

func dateStr(r *rand.Rand) string {
	return fmt.Sprintf("19%02d-%02d-%02d", 92+r.Intn(7), 1+r.Intn(12), 1+r.Intn(28))
}

// TPCHData generates deterministic INSERT statements for the population.
func TPCHData(seed int64, sz TPCHSizes) []string {
	r := rand.New(rand.NewSource(seed))
	var stmts []string
	add := func(table string, rows []string) {
		if len(rows) > 0 {
			stmts = append(stmts, "INSERT INTO "+table+" VALUES "+strings.Join(rows, ", "))
		}
	}
	var rows []string
	for i := 0; i < sz.Region; i++ {
		rows = append(rows, fmt.Sprintf("(%d, '%s')", i, regionNames[i%len(regionNames)]))
	}
	add("region", rows)
	rows = nil
	for i := 0; i < sz.Nation; i++ {
		rows = append(rows, fmt.Sprintf("(%d, 'NATION%02d', %d)", i, i, i%sz.Region))
	}
	add("nation", rows)
	rows = nil
	for i := 0; i < sz.Supplier; i++ {
		rows = append(rows, fmt.Sprintf("(%d, 'Supplier%03d', %d, %.2f, 'comment %d Customer Complaints')",
			i, i, r.Intn(sz.Nation), r.Float64()*10000-1000, i))
	}
	add("supplier", rows)
	rows = nil
	for i := 0; i < sz.Customer; i++ {
		rows = append(rows, fmt.Sprintf("(%d, 'Customer%04d', %d, %.2f, '%s', '%02d-555-%04d')",
			i, i, r.Intn(sz.Nation), r.Float64()*9000, segments[r.Intn(len(segments))], 10+r.Intn(25), r.Intn(10000)))
	}
	add("customer", rows)
	rows = nil
	for i := 0; i < sz.Part; i++ {
		rows = append(rows, fmt.Sprintf("(%d, 'part %s name %d', 'MFGR%d', 'Brand%d%d', '%s', %d, '%s', %.2f)",
			i, []string{"green", "blue", "red", "ivory"}[r.Intn(4)], i,
			1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5), types[r.Intn(len(types))],
			1+r.Intn(50), containers[r.Intn(len(containers))], 900+r.Float64()*200))
	}
	add("part", rows)
	rows = nil
	for i := 0; i < sz.PartSupp; i++ {
		rows = append(rows, fmt.Sprintf("(%d, %d, %d, %.2f)",
			i%sz.Part, (i*7)%sz.Supplier, r.Intn(10000), r.Float64()*1000))
	}
	add("partsupp", rows)
	rows = nil
	for i := 0; i < sz.Orders; i++ {
		rows = append(rows, fmt.Sprintf("(%d, %d, '%s', %.2f, '%s', '%s', %d)",
			i, r.Intn(sz.Customer), []string{"O", "F", "P"}[r.Intn(3)],
			1000+r.Float64()*100000, dateStr(r), priorities[r.Intn(len(priorities))], r.Intn(2)))
	}
	add("orders", rows)
	rows = nil
	for i := 0; i < sz.LineItem; i++ {
		rows = append(rows, fmt.Sprintf("(%d, %d, %d, %d, %.1f, %.2f, %.2f, %.2f, '%s', '%s', '%s', '%s', '%s', 'DELIVER IN PERSON', '%s')",
			r.Intn(sz.Orders), r.Intn(sz.Part), r.Intn(sz.Supplier), 1+i%7,
			1+float64(r.Intn(50)), 900+r.Float64()*1000, r.Float64()*0.1, r.Float64()*0.08,
			returnFlags[r.Intn(len(returnFlags))], lineStatuses[r.Intn(len(lineStatuses))],
			dateStr(r), dateStr(r), dateStr(r), shipmodes[r.Intn(len(shipmodes))]))
	}
	add("lineitem", rows)
	return stmts
}

// LoadTPCH creates the schema, data, and indexes on an engine and runs
// ANALYZE.
func LoadTPCH(e *dbms.Engine, seed int64, sz TPCHSizes) error {
	var stmts []string
	stmts = append(stmts, TPCHSchema...)
	stmts = append(stmts, TPCHData(seed, sz)...)
	stmts = append(stmts, TPCHIndexes...)
	for _, s := range stmts {
		if _, err := e.Execute(s); err != nil {
			return fmt.Errorf("bench: load tpch on %s: %q: %w", e.Info.Name, head(s), err)
		}
	}
	return e.Analyze()
}

func head(s string) string {
	if len(s) > 60 {
		return s[:60] + "…"
	}
	return s
}

// TPCHQueries returns the 22 TPC-H queries adapted to the engines' SQL
// subset (per the paper's own practice of rewriting queries for engines
// that cannot run them natively). The adaptations preserve each query's
// plan-relevant shape: table references, join count, grouping, ordering,
// and subquery structure. Index 0 holds q1.
func TPCHQueries() []string {
	return []string{
		// q1: single-table aggregation over lineitem.
		`SELECT l_returnflag, l_linestatus, SUM(l_quantity), SUM(l_extendedprice),
		 SUM(l_extendedprice * (1 - l_discount)), AVG(l_quantity), AVG(l_extendedprice),
		 AVG(l_discount), COUNT(*)
		 FROM lineitem WHERE l_shipdate <= '1998-09-02'
		 GROUP BY l_returnflag, l_linestatus
		 ORDER BY l_returnflag, l_linestatus`,
		// q2: 5-way join plus a 4-table scalar subquery (minimum cost supplier).
		`SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr
		 FROM part, supplier, partsupp, nation, region
		 WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey AND p_size = 15
		 AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey AND r_name = 'EUROPE'
		 AND ps_supplycost = (SELECT MIN(ps_supplycost) FROM partsupp, supplier, nation, region
		   WHERE s_suppkey = ps_suppkey AND s_nationkey = n_nationkey
		   AND n_regionkey = r_regionkey AND r_name = 'EUROPE')
		 ORDER BY s_acctbal DESC, n_name, s_name, p_partkey LIMIT 100`,
		// q3: shipping priority, 3-way join.
		`SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)), o_orderdate, o_shippriority
		 FROM customer, orders, lineitem
		 WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey AND l_orderkey = o_orderkey
		 AND o_orderdate < '1995-03-15' AND l_shipdate > '1995-03-15'
		 GROUP BY l_orderkey, o_orderdate, o_shippriority
		 ORDER BY o_orderdate LIMIT 10`,
		// q4: order priority with correlated EXISTS.
		`SELECT o_orderpriority, COUNT(*) FROM orders
		 WHERE o_orderdate >= '1993-07-01' AND o_orderdate < '1993-10-01'
		 AND EXISTS (SELECT 1 FROM lineitem WHERE l_orderkey = o_orderkey AND l_commitdate < l_receiptdate)
		 GROUP BY o_orderpriority ORDER BY o_orderpriority`,
		// q5: local supplier volume, 6-way join.
		`SELECT n_name, SUM(l_extendedprice * (1 - l_discount))
		 FROM customer, orders, lineitem, supplier, nation, region
		 WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND l_suppkey = s_suppkey
		 AND c_nationkey = s_nationkey AND s_nationkey = n_nationkey
		 AND n_regionkey = r_regionkey AND r_name = 'ASIA'
		 AND o_orderdate >= '1994-01-01' AND o_orderdate < '1995-01-01'
		 GROUP BY n_name ORDER BY SUM(l_extendedprice * (1 - l_discount)) DESC`,
		// q6: forecasting revenue change, single table.
		`SELECT SUM(l_extendedprice * l_discount) FROM lineitem
		 WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01'
		 AND l_discount BETWEEN 0.01 AND 0.07 AND l_quantity < 24`,
		// q7: volume shipping; nation aliased twice.
		`SELECT n1.n_name, n2.n_name, SUM(l_extendedprice * (1 - l_discount))
		 FROM supplier, lineitem, orders, customer, nation n1, nation n2
		 WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey AND c_custkey = o_custkey
		 AND s_nationkey = n1.n_nationkey AND c_nationkey = n2.n_nationkey
		 AND l_shipdate BETWEEN '1995-01-01' AND '1996-12-31'
		 GROUP BY n1.n_name, n2.n_name ORDER BY n1.n_name, n2.n_name`,
		// q8: national market share, 8-way join with CASE.
		`SELECT o_orderdate, SUM(CASE WHEN n2.n_name = 'NATION07' THEN l_extendedprice * (1 - l_discount) ELSE 0 END),
		 SUM(l_extendedprice * (1 - l_discount))
		 FROM part, supplier, lineitem, orders, customer, nation n1, nation n2, region
		 WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey AND l_orderkey = o_orderkey
		 AND o_custkey = c_custkey AND c_nationkey = n1.n_nationkey
		 AND n1.n_regionkey = r_regionkey AND r_name = 'AMERICA'
		 AND s_nationkey = n2.n_nationkey AND o_orderdate BETWEEN '1995-01-01' AND '1996-12-31'
		 GROUP BY o_orderdate ORDER BY o_orderdate`,
		// q9: product type profit, 6-way join.
		`SELECT n_name, SUM(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity)
		 FROM part, supplier, lineitem, partsupp, orders, nation
		 WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey AND ps_partkey = l_partkey
		 AND p_partkey = l_partkey AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey
		 AND p_name LIKE '%green%'
		 GROUP BY n_name ORDER BY n_name`,
		// q10: returned item reporting.
		`SELECT c_custkey, c_name, SUM(l_extendedprice * (1 - l_discount)), c_acctbal, n_name
		 FROM customer, orders, lineitem, nation
		 WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
		 AND o_orderdate >= '1993-10-01' AND o_orderdate < '1994-01-01'
		 AND l_returnflag = 'R' AND c_nationkey = n_nationkey
		 GROUP BY c_custkey, c_name, c_acctbal, n_name
		 ORDER BY SUM(l_extendedprice * (1 - l_discount)) DESC LIMIT 20`,
		// q11: important stock identification — the paper's Listing 4 query:
		// three tables referenced twice (FROM and HAVING subquery).
		`SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) FROM partsupp, supplier, nation
		 WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey AND n_name = 'NATION07'
		 GROUP BY ps_partkey
		 HAVING SUM(ps_supplycost * ps_availqty) > (
		   SELECT SUM(ps_supplycost * ps_availqty) * 0.0001 FROM partsupp, supplier, nation
		   WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey AND n_name = 'NATION07')
		 ORDER BY SUM(ps_supplycost * ps_availqty) DESC`,
		// q12: shipping modes and order priority with CASE sums.
		`SELECT l_shipmode,
		 SUM(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH' THEN 1 ELSE 0 END),
		 SUM(CASE WHEN o_orderpriority <> '1-URGENT' AND o_orderpriority <> '2-HIGH' THEN 1 ELSE 0 END)
		 FROM orders, lineitem
		 WHERE o_orderkey = l_orderkey AND l_shipmode IN ('MAIL', 'SHIP')
		 AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate
		 AND l_receiptdate >= '1994-01-01' AND l_receiptdate < '1995-01-01'
		 GROUP BY l_shipmode ORDER BY l_shipmode`,
		// q13: customer distribution via LEFT JOIN.
		`SELECT c_custkey, COUNT(o_orderkey) FROM customer
		 LEFT JOIN orders ON c_custkey = o_custkey
		 GROUP BY c_custkey ORDER BY COUNT(o_orderkey) DESC, c_custkey LIMIT 50`,
		// q14: promotion effect with CASE ratio.
		`SELECT 100.00 * SUM(CASE WHEN p_type LIKE 'PROMO%' THEN l_extendedprice * (1 - l_discount) ELSE 0 END)
		 / SUM(l_extendedprice * (1 - l_discount))
		 FROM lineitem, part
		 WHERE l_partkey = p_partkey AND l_shipdate >= '1995-09-01' AND l_shipdate < '1995-10-01'`,
		// q15: top supplier over a derived revenue table.
		`SELECT s_suppkey, s_name, rev.total FROM supplier
		 INNER JOIN (SELECT l_suppkey AS sk, SUM(l_extendedprice * (1 - l_discount)) AS total
		   FROM lineitem WHERE l_shipdate >= '1996-01-01' AND l_shipdate < '1996-04-01'
		   GROUP BY l_suppkey) AS rev ON s_suppkey = rev.sk
		 ORDER BY rev.total DESC LIMIT 5`,
		// q16: parts/supplier relationship with NOT IN subquery.
		`SELECT p_brand, p_type, p_size, COUNT(DISTINCT ps_suppkey)
		 FROM partsupp, part
		 WHERE p_partkey = ps_partkey AND p_brand <> 'Brand45' AND p_size IN (1, 4, 7, 15, 23)
		 AND ps_suppkey NOT IN (SELECT s_suppkey FROM supplier WHERE s_comment LIKE '%Customer%Complaints%')
		 GROUP BY p_brand, p_type, p_size
		 ORDER BY COUNT(DISTINCT ps_suppkey) DESC, p_brand, p_type, p_size`,
		// q17: small-quantity-order revenue with correlated scalar subquery.
		`SELECT SUM(l_extendedprice) / 7.0 FROM lineitem, part
		 WHERE p_partkey = l_partkey AND p_brand = 'Brand23' AND p_container = 'MED BAG'
		 AND l_quantity < (SELECT 0.2 * AVG(l_quantity) FROM lineitem l2 WHERE l2.l_partkey = p_partkey)`,
		// q18: large volume customer with IN + grouped HAVING subquery.
		`SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, SUM(l_quantity)
		 FROM customer, orders, lineitem
		 WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem GROUP BY l_orderkey HAVING SUM(l_quantity) > 100)
		 AND c_custkey = o_custkey AND o_orderkey = l_orderkey
		 GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
		 ORDER BY o_totalprice DESC, o_orderdate LIMIT 100`,
		// q19: discounted revenue with OR-of-AND predicate groups.
		`SELECT SUM(l_extendedprice * (1 - l_discount)) FROM lineitem, part
		 WHERE p_partkey = l_partkey AND (
		 (p_brand = 'Brand12' AND l_quantity BETWEEN 1 AND 11 AND p_size BETWEEN 1 AND 5)
		 OR (p_brand = 'Brand23' AND l_quantity BETWEEN 10 AND 20 AND p_size BETWEEN 1 AND 10)
		 OR (p_brand = 'Brand34' AND l_quantity BETWEEN 20 AND 30 AND p_size BETWEEN 1 AND 15))`,
		// q20: potential part promotion with nested IN subqueries.
		`SELECT s_name FROM supplier, nation
		 WHERE s_suppkey IN (SELECT ps_suppkey FROM partsupp
		   WHERE ps_partkey IN (SELECT p_partkey FROM part WHERE p_name LIKE 'part green%')
		   AND ps_availqty > (SELECT 0.5 * SUM(l_quantity) FROM lineitem WHERE l_shipdate >= '1994-01-01'))
		 AND s_nationkey = n_nationkey AND n_name = 'NATION03'
		 ORDER BY s_name`,
		// q21: suppliers who kept orders waiting; correlated EXISTS pair.
		`SELECT s_name, COUNT(*) FROM supplier, lineitem, orders, nation
		 WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey AND o_orderstatus = 'F'
		 AND l_receiptdate > l_commitdate
		 AND EXISTS (SELECT 1 FROM lineitem l2 WHERE l2.l_orderkey = l_orderkey AND l2.l_suppkey <> l_suppkey)
		 AND s_nationkey = n_nationkey AND n_name = 'NATION01'
		 GROUP BY s_name ORDER BY COUNT(*) DESC, s_name LIMIT 100`,
		// q22: global sales opportunity; NOT EXISTS plus scalar average.
		`SELECT SUBSTR(c_phone, 1, 2), COUNT(*), SUM(c_acctbal) FROM customer
		 WHERE SUBSTR(c_phone, 1, 2) IN ('13', '31', '23', '29', '30', '18', '17')
		 AND c_acctbal > (SELECT AVG(c_acctbal) FROM customer c2 WHERE c2.c_acctbal > 0.00)
		 AND NOT EXISTS (SELECT 1 FROM orders WHERE o_custkey = c_custkey)
		 GROUP BY SUBSTR(c_phone, 1, 2) ORDER BY SUBSTR(c_phone, 1, 2)`,
	}
}
