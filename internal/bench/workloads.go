package bench

import (
	"fmt"
	"math/rand"

	"uplan/internal/dbms"
)

// YCSB-style workload (paper Table VII, MongoDB row): point reads,
// updates, inserts, and short scans over a single usertable — the NoSQL
// serving workload shape.

// YCSBSchema is the usertable DDL.
var YCSBSchema = []string{
	`CREATE TABLE usertable (ycsb_key INT PRIMARY KEY, field0 TEXT, field1 TEXT,
	 field2 TEXT, field3 TEXT, field4 TEXT)`,
}

// LoadYCSB creates and populates the usertable.
func LoadYCSB(e *dbms.Engine, seed int64, records int) error {
	for _, s := range YCSBSchema {
		if _, err := e.Execute(s); err != nil {
			return err
		}
	}
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < records; i++ {
		stmt := fmt.Sprintf(
			"INSERT INTO usertable VALUES (%d, 'v%d', 'v%d', 'v%d', 'v%d', 'v%d')",
			i, r.Intn(100), r.Intn(100), r.Intn(100), r.Intn(100), r.Intn(100))
		if _, err := e.Execute(stmt); err != nil {
			return err
		}
	}
	return e.Analyze()
}

// YCSBQueries generates the read-side operations of YCSB core workloads
// (the statements whose plans Table VII measures): point reads (workloads
// B/C), and short ordered scans (workload E). Reads dominate per the
// standard mixes.
func YCSBQueries(seed int64, n int) []string {
	r := rand.New(rand.NewSource(seed))
	var out []string
	for i := 0; i < n; i++ {
		key := r.Intn(100)
		switch r.Intn(10) {
		case 0, 1:
			out = append(out, fmt.Sprintf(
				"SELECT * FROM usertable WHERE ycsb_key >= %d ORDER BY ycsb_key LIMIT %d",
				key, 5+r.Intn(20)))
		default:
			out = append(out, fmt.Sprintf(
				"SELECT * FROM usertable WHERE ycsb_key = %d", key))
		}
	}
	return out
}

// WDBench-style workload (paper Table VII, Neo4j row): basic graph
// patterns over a Wikidata-like edge set, encoded relationally (nodes and
// edges tables) per the paper's mapping of the graph model.

// WDBenchSchema models nodes and typed edges.
var WDBenchSchema = []string{
	`CREATE TABLE nodes (id INT PRIMARY KEY, label TEXT)`,
	`CREATE TABLE edges (src INT, dst INT, etype TEXT)`,
}

// LoadWDBench populates a random graph.
func LoadWDBench(e *dbms.Engine, seed int64, nodes, edges int) error {
	for _, s := range WDBenchSchema {
		if _, err := e.Execute(s); err != nil {
			return err
		}
	}
	r := rand.New(rand.NewSource(seed))
	labels := []string{"human", "city", "film", "gene", "taxon"}
	for i := 0; i < nodes; i++ {
		stmt := fmt.Sprintf("INSERT INTO nodes VALUES (%d, '%s')",
			i, labels[r.Intn(len(labels))])
		if _, err := e.Execute(stmt); err != nil {
			return err
		}
	}
	etypes := []string{"instanceOf", "locatedIn", "castMember", "partOf"}
	for i := 0; i < edges; i++ {
		stmt := fmt.Sprintf("INSERT INTO edges VALUES (%d, %d, '%s')",
			r.Intn(nodes), r.Intn(nodes), etypes[r.Intn(len(etypes))])
		if _, err := e.Execute(stmt); err != nil {
			return err
		}
	}
	return e.Analyze()
}

// WDBenchQueries generates basic graph patterns: single edge lookups,
// one-hop expansions, and two-hop paths (the BGP shapes dominating
// WDBench). Expressed over the relational encoding, they plan as the
// relationship traversals Table VII counts.
func WDBenchQueries(seed int64, n int) []string {
	r := rand.New(rand.NewSource(seed))
	etypes := []string{"instanceOf", "locatedIn", "castMember", "partOf"}
	var out []string
	for i := 0; i < n; i++ {
		et := etypes[r.Intn(len(etypes))]
		switch r.Intn(4) {
		case 0:
			// Single edge pattern: (?s) --type--> (?o)
			out = append(out, fmt.Sprintf(
				"SELECT src, dst FROM edges WHERE etype = '%s'", et))
		case 1:
			// Node by id expansion: (v) --> (?o)
			out = append(out, fmt.Sprintf(
				"SELECT e.dst FROM edges e INNER JOIN nodes n ON e.src = n.id WHERE n.id = %d",
				r.Intn(50)))
		case 2:
			// Two-hop path: (?a) --> (?b) --> (?c)
			out = append(out, fmt.Sprintf(
				"SELECT e1.src, e2.dst FROM edges e1 INNER JOIN edges e2 ON e1.dst = e2.src WHERE e1.etype = '%s'",
				et))
		default:
			// Labelled endpoint pattern.
			out = append(out, fmt.Sprintf(
				"SELECT n.id FROM nodes n INNER JOIN edges e ON n.id = e.src WHERE n.label = '%s' AND e.etype = '%s'",
				[]string{"human", "city", "film"}[r.Intn(3)], et))
		}
	}
	return out
}

// RunTableVII collects Table VII: YCSB plans on MongoDB and WDBench plans
// on Neo4j.
func RunTableVII(seed int64) ([]*EngineReport, error) {
	mongo, err := dbms.New("mongodb")
	if err != nil {
		return nil, err
	}
	if err := LoadYCSB(mongo, seed, 100); err != nil {
		return nil, err
	}
	mrep, err := CollectPlans(mongo, YCSBQueries(seed, 40))
	if err != nil {
		return nil, err
	}

	neo, err := dbms.New("neo4j")
	if err != nil {
		return nil, err
	}
	if err := LoadWDBench(neo, seed, 120, 300); err != nil {
		return nil, err
	}
	nrep, err := CollectPlans(neo, WDBenchQueries(seed, 40))
	if err != nil {
		return nil, err
	}
	return []*EngineReport{mrep, nrep}, nil
}
