package bench

import (
	"fmt"
	"sort"
	"strings"

	"uplan/internal/convert"
	"uplan/internal/core"
	"uplan/internal/dbms"
	"uplan/internal/explain"
)

// TableVIEngines are the five JSON-capable DBMSs used for applications
// A.2/A.3 (Section V).
var TableVIEngines = []string{"mongodb", "mysql", "neo4j", "postgresql", "tidb"}

// EngineReport holds the unified plans of one engine over a workload.
type EngineReport struct {
	Engine string
	Plans  []*core.Plan
	// Failed lists query indexes whose plan could not be obtained.
	Failed []int
}

// Average returns the engine's Table VI row.
func (r *EngineReport) Average() core.CategoryHistogram {
	return core.AverageHistogram(r.Plans)
}

// CollectPlans explains every query on the engine and converts the
// serialized plans to the unified representation.
func CollectPlans(e *dbms.Engine, queries []string) (*EngineReport, error) {
	// The shared cached converter: collecting plans for n engines must not
	// rebuild the full naming registry n times.
	conv, err := convert.Cached(e.Info.Name)
	if err != nil {
		return nil, err
	}
	rep := &EngineReport{Engine: e.Info.Name}
	for i, q := range queries {
		serialized, err := e.Explain(q, e.DefaultFormat())
		if err != nil {
			rep.Failed = append(rep.Failed, i)
			continue
		}
		plan, err := conv.Convert(serialized)
		if err != nil {
			rep.Failed = append(rep.Failed, i)
			continue
		}
		rep.Plans = append(rep.Plans, plan)
	}
	return rep, nil
}

// RunTableVI loads TPC-H into the five engines and returns their reports
// in TableVIEngines order.
func RunTableVI(seed int64) ([]*EngineReport, error) {
	queries := TPCHQueries()
	var out []*EngineReport
	for _, name := range TableVIEngines {
		e, err := dbms.New(name)
		if err != nil {
			return nil, err
		}
		if err := LoadTPCH(e, seed, DefaultSizes()); err != nil {
			return nil, err
		}
		rep, err := CollectPlans(e, queries)
		if err != nil {
			return nil, err
		}
		if len(rep.Failed) > 0 {
			return nil, fmt.Errorf("bench: %s failed on queries %v", name, rep.Failed)
		}
		out = append(out, rep)
	}
	return out, nil
}

// FormatCategoryTable renders reports as the paper's Table VI/VII layout.
func FormatCategoryTable(reports []*EngineReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %6s %6s %6s %7s %6s %6s %7s\n",
		"DBMS", "Prod.", "Comb.", "Join", "Folder", "Proj.", "Exec.", "Sum")
	for _, r := range reports {
		h := r.Average()
		info, _ := dbms.InfoFor(r.Engine)
		fmt.Fprintf(&b, "%-12s %6.2f %6.2f %6.2f %7.2f %6.2f %6.2f %7.2f\n",
			info.Display,
			h[core.Producer], h[core.Combinator], h[core.Join],
			h[core.Folder], h[core.Projector], h[core.Executor],
			h[core.Producer]+h[core.Combinator]+h[core.Join]+
				h[core.Folder]+h[core.Projector]+h[core.Executor])
	}
	return b.String()
}

// ProducerVariance computes Figure 4: for each query, the variance of the
// Producer-operation count across the engines' plans. All reports must
// cover the same query list.
func ProducerVariance(reports []*EngineReport) []float64 {
	if len(reports) == 0 {
		return nil
	}
	n := len(reports[0].Plans)
	out := make([]float64, n)
	for q := 0; q < n; q++ {
		var counts []float64
		for _, r := range reports {
			if q < len(r.Plans) {
				counts = append(counts, float64(r.Plans[q].CountOperations(core.Producer)))
			}
		}
		out[q] = core.Variance(counts)
	}
	return out
}

// FormatVarianceSeries renders Figure 4 as a query → variance series with
// a crude bar sparkline.
func FormatVarianceSeries(vs []float64) string {
	var b strings.Builder
	b.WriteString("query  variance\n")
	for i, v := range vs {
		bar := strings.Repeat("#", int(v))
		if len(bar) > 40 {
			bar = bar[:40] + "+"
		}
		fmt.Fprintf(&b, "q%-4d  %7.2f %s\n", i+1, v, bar)
	}
	return b.String()
}

// HighVarianceQueries returns 1-based query numbers with variance above
// the threshold, sorted descending by variance (the paper flags six
// queries above 5).
func HighVarianceQueries(vs []float64, threshold float64) []int {
	type qv struct {
		q int
		v float64
	}
	var list []qv
	for i, v := range vs {
		if v > threshold {
			list = append(list, qv{i + 1, v})
		}
	}
	sort.Slice(list, func(i, j int) bool { return list[i].v > list[j].v })
	out := make([]int, len(list))
	for i, e := range list {
		out[i] = e.q
	}
	return out
}

// Q11Analysis reproduces the Listing 4 / Section V-A.3 experiment: the
// unified q11 plans of PostgreSQL and TiDB, their Producer-operation
// counts, and the fraction of PostgreSQL's execution time spent in the
// three redundant table scans.
type Q11Analysis struct {
	PostgresPlan *core.Plan
	TiDBPlan     *core.Plan
	PGScans      int
	TiDBScans    int
	// TotalMS is PostgreSQL's measured execution time for q11;
	// RedundantMS the time of the scans the TiDB strategy avoids.
	TotalMS     float64
	RedundantMS float64
}

// SavingsFraction is RedundantMS / TotalMS (the paper reports 27%).
func (a *Q11Analysis) SavingsFraction() float64 {
	if a.TotalMS == 0 {
		return 0
	}
	return a.RedundantMS / a.TotalMS
}

// RunQ11 loads TPC-H on PostgreSQL and TiDB and performs the comparison.
// The population is enlarged relative to the Table VI runs so per-operator
// timings are measurable (the paper uses 10 GB for this experiment).
func RunQ11(seed int64) (*Q11Analysis, error) {
	q11 := TPCHQueries()[10]
	sz := DefaultSizes()
	sz.PartSupp = 4000
	sz.Supplier = 400
	pg, err := dbms.New("postgresql")
	if err != nil {
		return nil, err
	}
	if err := LoadTPCH(pg, seed, sz); err != nil {
		return nil, err
	}
	ti, err := dbms.New("tidb")
	if err != nil {
		return nil, err
	}
	if err := LoadTPCH(ti, seed, sz); err != nil {
		return nil, err
	}

	// EXPLAIN ANALYZE on PostgreSQL for per-operator actual times.
	pgOut, err := pg.ExplainAnalyze(q11, explain.FormatText)
	if err != nil {
		return nil, fmt.Errorf("bench: q11 analyze: %w", err)
	}
	pgPlan, err := convert.Convert("postgresql", pgOut)
	if err != nil {
		return nil, err
	}
	tiOut, err := ti.Explain(q11, explain.FormatTable)
	if err != nil {
		return nil, err
	}
	tiPlan, err := convert.Convert("tidb", tiOut)
	if err != nil {
		return nil, err
	}

	a := &Q11Analysis{PostgresPlan: pgPlan, TiDBPlan: tiPlan}
	a.PGScans = countFullScans(pgPlan)
	a.TiDBScans = countFullScans(tiPlan)

	// Total execution time and per-scan actual times.
	if pr, ok := pgPlan.Property("execution time"); ok && pr.Value.Kind == core.KindNumber {
		a.TotalMS = pr.Value.Num
	}
	// The redundant scans are the Producer operations of the HAVING
	// subquery subtree — the second set of Full Table Scans. Identify them
	// as the later half of full-scan occurrences in pre-order.
	var scanTimes []float64
	pgPlan.Walk(func(n *core.Node, _ int) {
		if n.Op.Category == core.Producer && strings.Contains(n.Op.Name, "Full Table") {
			if t, ok := n.Property("actual time"); ok && t.Value.Kind == core.KindNumber {
				scanTimes = append(scanTimes, t.Value.Num)
			} else {
				scanTimes = append(scanTimes, 0)
			}
		}
	})
	if len(scanTimes) >= 2 {
		for _, t := range scanTimes[len(scanTimes)/2:] {
			a.RedundantMS += t
		}
	}
	if a.TotalMS == 0 {
		for _, t := range scanTimes {
			a.TotalMS += t
		}
		a.TotalMS *= 2 // conservative fallback when no plan-level timing
	}
	return a, nil
}

// countFullScans counts full-table-scan operations: the reads the Listing
// 4 analysis compares (index-only reads avoid the repeated table scans).
func countFullScans(p *core.Plan) int {
	count := 0
	p.Walk(func(n *core.Node, _ int) {
		if n.Op.Category == core.Producer && n.Op.Name == "Full Table Scan" {
			count++
		}
	})
	return count
}
