package bench

import (
	"fmt"

	"uplan/internal/dbms"
	"uplan/internal/explain"
)

// TextSample is one dialect's representative text-format plan, used by the
// root BenchmarkConvertText and uplan-bench's text experiment — a single
// definition so the two trajectories measure identical inputs.
type TextSample struct {
	// Name is the reporting label ("mysql-table", "tidb", …).
	Name string
	// Dialect is the converter key the sample parses under.
	Dialect string
	// Raw is the serialized plan.
	Raw string
}

// mysqlTableSample is a classic tabular EXPLAIN; the simulated engine only
// emits TREE/JSON, so the table format is pinned here.
const mysqlTableSample = `+----+-------------+-------+------+---------------+--------+---------+-------+------+-------------+
| id | select_type | table | type | possible_keys | key    | key_len | ref   | rows | Extra       |
+----+-------------+-------+------+---------------+--------+---------+-------+------+-------------+
|  1 | SIMPLE      | t0    | ALL  | NULL          | NULL   | NULL    | NULL  | 1000 | Using where |
|  1 | SIMPLE      | t1    | ref  | idx_c0        | idx_c0 | 5       | t0.c0 |   10 | NULL        |
+----+-------------+-------+------+---------------+--------+---------+-------+------+-------------+`

// TextSamples builds one text-format plan per dialect whose converter has
// a text/table path: the SQL-shaped engines explain a mid-size TPC-H
// query over the seeded benchmark data, Neo4j explains a WDBench pattern,
// and the MySQL tabular format comes from the pinned sample above.
func TextSamples(seed int64) ([]TextSample, error) {
	samples := []TextSample{{Name: "mysql-table", Dialect: "mysql", Raw: mysqlTableSample}}
	q := TPCHQueries()[4]
	for _, s := range []struct {
		name, engine string
		format       explain.Format
	}{
		{"postgresql", "postgresql", explain.FormatText},
		{"mysql-tree", "mysql", explain.FormatText},
		{"tidb", "tidb", explain.FormatTable},
		{"sqlite", "sqlite", explain.FormatText},
		{"sparksql", "sparksql", explain.FormatText},
		{"sqlserver", "sqlserver", explain.FormatText},
		{"influxdb", "influxdb", explain.FormatText},
	} {
		e, err := dbms.New(s.engine)
		if err != nil {
			return nil, err
		}
		if err := LoadTPCH(e, seed, DefaultSizes()); err != nil {
			return nil, fmt.Errorf("bench: text sample %s: %w", s.name, err)
		}
		raw, err := e.Explain(q, s.format)
		if err != nil {
			return nil, fmt.Errorf("bench: text sample %s: %w", s.name, err)
		}
		samples = append(samples, TextSample{Name: s.name, Dialect: s.engine, Raw: raw})
	}
	neo, err := dbms.New("neo4j")
	if err != nil {
		return nil, err
	}
	if err := LoadWDBench(neo, seed, 120, 300); err != nil {
		return nil, err
	}
	raw, err := neo.Explain(WDBenchQueries(seed, 3)[2], explain.FormatText)
	if err != nil {
		return nil, fmt.Errorf("bench: text sample neo4j: %w", err)
	}
	samples = append(samples, TextSample{Name: "neo4j", Dialect: "neo4j", Raw: raw})
	return samples, nil
}
