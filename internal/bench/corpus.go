package bench

import (
	"fmt"

	"uplan/internal/dbms"
	"uplan/internal/pipeline"
	"uplan/internal/sqlancer"
)

// This file builds serialized-plan corpora for the batch-conversion
// pipeline benchmarks: streams of (dialect, serialized) records mirroring
// what a plan-ingestion service would receive from a fleet of engines.

// tpchCorpusEngines are the engines that plan the full 22-query TPC-H set
// (every studied DBMS except the document and graph stores, which get the
// model-appropriate workloads below).
var tpchCorpusEngines = []string{
	"influxdb", "mysql", "postgresql", "sqlserver", "sqlite", "sparksql", "tidb",
}

// TPCHCorpus explains all 22 TPC-H queries on each SQL-shaped engine in
// its default format, plus the YCSB workload on MongoDB and the WDBench
// workload on Neo4j, yielding a mixed corpus that covers all nine
// dialects.
func TPCHCorpus(seed int64) ([]pipeline.Record, error) {
	var recs []pipeline.Record
	queries := TPCHQueries()
	for _, name := range tpchCorpusEngines {
		e, err := dbms.New(name)
		if err != nil {
			return nil, err
		}
		if err := LoadTPCH(e, seed, DefaultSizes()); err != nil {
			return nil, fmt.Errorf("bench: corpus %s: %w", name, err)
		}
		for i, q := range queries {
			out, err := e.Explain(q, e.DefaultFormat())
			if err != nil {
				return nil, fmt.Errorf("bench: corpus %s q%d: %w", name, i+1, err)
			}
			recs = append(recs, pipeline.Record{Dialect: name, Serialized: out})
		}
	}

	mongo := dbms.MustNew("mongodb")
	if err := LoadYCSB(mongo, seed, 100); err != nil {
		return nil, err
	}
	for i, q := range YCSBQueries(seed, 22) {
		out, err := mongo.Explain(q, mongo.DefaultFormat())
		if err != nil {
			return nil, fmt.Errorf("bench: corpus mongodb q%d: %w", i+1, err)
		}
		recs = append(recs, pipeline.Record{Dialect: "mongodb", Serialized: out})
	}

	neo := dbms.MustNew("neo4j")
	if err := LoadWDBench(neo, seed, 120, 300); err != nil {
		return nil, err
	}
	for i, q := range WDBenchQueries(seed, 22) {
		out, err := neo.Explain(q, neo.DefaultFormat())
		if err != nil {
			return nil, fmt.Errorf("bench: corpus neo4j q%d: %w", i+1, err)
		}
		recs = append(recs, pipeline.Record{Dialect: "neo4j", Serialized: out})
	}
	return recs, nil
}

// bugCampaignEngines are the Table V target systems.
var bugCampaignEngines = []string{"mysql", "postgresql", "tidb"}

// BugCampaignCorpus explains n SQLancer-generated random queries on each
// Table V target engine — the plan stream a QPG/CERT campaign feeds
// through conversion on every test iteration.
func BugCampaignCorpus(seed int64, n int) ([]pipeline.Record, error) {
	var recs []pipeline.Record
	for _, name := range bugCampaignEngines {
		g := sqlancer.New(seed)
		e, err := dbms.New(name)
		if err != nil {
			return nil, err
		}
		for _, s := range g.SchemaSQL(3, 30) {
			if _, err := e.Execute(s); err != nil {
				return nil, fmt.Errorf("bench: campaign corpus %s: %w", name, err)
			}
		}
		if err := e.Analyze(); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			out, err := e.Explain(g.Query(), e.DefaultFormat())
			if err != nil {
				return nil, fmt.Errorf("bench: campaign corpus %s q%d: %w", name, i+1, err)
			}
			recs = append(recs, pipeline.Record{Dialect: name, Serialized: out})
		}
	}
	return recs, nil
}

// Corpus is the full mixed benchmark corpus: TPC-H (plus YCSB/WDBench)
// across all nine dialects interleaved with the bug-campaign stream, so
// consecutive records rarely share a dialect — the worst case for
// converter reuse.
func Corpus(seed int64) ([]pipeline.Record, error) {
	tpch, err := TPCHCorpus(seed)
	if err != nil {
		return nil, err
	}
	campaign, err := BugCampaignCorpus(seed, 22)
	if err != nil {
		return nil, err
	}
	var recs []pipeline.Record
	for len(tpch) > 0 || len(campaign) > 0 {
		if len(tpch) > 0 {
			recs = append(recs, tpch[0])
			tpch = tpch[1:]
		}
		if len(campaign) > 0 {
			recs = append(recs, campaign[0])
			campaign = campaign[1:]
		}
	}
	return recs, nil
}
