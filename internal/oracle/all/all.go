// Package all links the built-in oracle implementations into the
// process by importing their packages for registration side effects —
// the driver-registration idiom. The campaign orchestrator (and any
// binary that runs campaigns) imports this package; nothing here is
// referenced by name, which is what keeps the orchestrator free of
// per-oracle knowledge.
package all

import (
	_ "uplan/internal/bounds" // cardinality-bounds oracle
	_ "uplan/internal/cert"   // estimate-monotonicity oracle
	_ "uplan/internal/qpg"    // plan-guided generation + differential oracle
	_ "uplan/internal/tlp"    // ternary logic partitioning oracle
)
