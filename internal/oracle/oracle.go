// Package oracle defines the pluggable testing-oracle layer of the
// campaign orchestrator. The paper's core claim is that a unified plan
// representation lets multiple plan-based testing approaches share one
// substrate; this package is that claim turned into an interface: an
// oracle is anything that can run a seeded task against one engine and
// report findings and counters, and the orchestrator fans registered
// oracles out across engines without knowing any of them by name.
//
// QPG, CERT, TLP, and the cardinality-bounds oracle register themselves
// here (see internal/oracle/all for the aggregator import); adding a new
// technique is a leaf-package addition — implement Oracle, call Register
// from an init, and the campaign layer, the facade, and uplan-bench pick
// it up without edits.
package oracle

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"uplan/internal/convert"
	"uplan/internal/core"
	"uplan/internal/dbms"
	"uplan/internal/sqlancer"
)

// Kind classifies oracle findings.
type Kind string

// Finding kinds shared across the built-in oracles. An oracle may define
// further kinds (the bounds oracle's "bound-violation"); the campaign
// layer treats kinds as opaque labels.
const (
	KindLogic    Kind = "logic"      // wrong results (TLP or differential)
	KindCrash    Kind = "crash"      // execution error on generated input
	KindPlan     Kind = "plan-parse" // converter failed on the engine's plan
	KindEstimate Kind = "estimate"   // estimate monotonicity broken or unreadable
)

// Finding is one oracle discovery, scoped to the task that produced it.
// The orchestrator adds the (engine, oracle) identity when it records the
// finding, so implementations only describe what they found.
type Finding struct {
	Kind   Kind
	Query  string
	Detail string
}

// Counters is a task's generic statistics contribution. The fixed fields
// mirror the campaign's per-engine aggregates; Extra carries
// oracle-owned counters (keyed by a short stable name) that flow into
// the per-oracle stats and the durable checkpoint without the campaign
// layer knowing them.
type Counters struct {
	// Queries counts generated queries actually processed — less than the
	// budget when the task stopped early.
	Queries int
	// PlanQueries counts queries whose unified plan was observed.
	PlanQueries int
	// NewPlans counts plan structures the task had not seen before.
	NewPlans int
	// DistinctPlans is the task-local distinct plan structure count.
	DistinctPlans int
	// Mutations counts database mutations applied on coverage stalls.
	Mutations int
	// Checks counts oracle comparisons performed (CERT pairs, bounds
	// comparisons).
	Checks int
	// Skipped counts skip-worthy probes (unplannable pairs, predicates
	// naming absent columns, shapes without a provable bound).
	Skipped int
	// Extra holds oracle-owned counters; nil until AddExtra is called.
	Extra map[string]int
}

// AddExtra bumps an oracle-owned counter.
func (c *Counters) AddExtra(name string, n int) {
	if c.Extra == nil {
		c.Extra = map[string]int{}
	}
	c.Extra[name] += n
}

// TaskReport is what an oracle's Run returns: the task's counter
// contribution. Findings are not part of the report — they are emitted
// incrementally through TaskContext.Emit so the orchestrator journals
// them as they occur (a killed task keeps its partial findings durable).
type TaskReport struct {
	Counters
}

// TaskContext carries everything one (engine, oracle) task needs:
// the engine under test, the task's derived seed and budgets, the
// arena-backed plan decoder, and the orchestrator's hooks — the per-task
// dedup space (Report), the shared cross-engine plan set (ObservePlan),
// and the per-query cancellation/checkpoint tick. The three hooks double
// as the store journal: Report journals findings, ObservePlan journals
// fresh plan keys, and Tick writes periodic durable checkpoints.
type TaskContext struct {
	// Engine is the task's target engine instance, owned by the task.
	Engine *dbms.Engine
	// Seed is the task's derived generator seed (see DeriveSeed).
	Seed int64
	// Queries is the generated-query budget.
	Queries int
	// StallThreshold is QPG's mutation trigger.
	StallThreshold int
	// Tables and Rows size the task's generated schema.
	Tables int
	Rows   int
	// MaxFindings stops the task after it has contributed that many new
	// findings; 0 means no cap.
	MaxFindings int
	// Decoder is the task's arena-backed plan decoder for the engine's
	// dialect. May be nil for a standalone context; oracles that decode
	// plans should treat that as a hard setup error.
	Decoder *Decoder
	// Report records one finding in the orchestrator's per-task
	// deduplicating space and journals it, returning whether it was new.
	// Nil for standalone use (Emit then treats every finding as new).
	Report func(f Finding) bool
	// ObservePlan feeds the shared cross-engine plan set, returning
	// whether the plan's structure was globally new. The plan may be
	// arena-backed and about to be reset — implementations must not
	// retain it past the call.
	ObservePlan func(p *core.Plan) bool
	// Tick is consulted once per query with the queries-run count;
	// returning false stops the task at that boundary (cooperative
	// cancellation). It also drives periodic durable checkpoints.
	Tick func(queries int) bool
}

// Emit reports a finding through the Report hook. With no hook attached
// every finding counts as new.
func (tc *TaskContext) Emit(f Finding) bool {
	if tc.Report == nil {
		return true
	}
	return tc.Report(f)
}

// Observe feeds a plan to the ObservePlan hook, if attached.
func (tc *TaskContext) Observe(p *core.Plan) bool {
	if tc.ObservePlan == nil {
		return false
	}
	return tc.ObservePlan(p)
}

// Alive reports whether the task should keep running; consulted once per
// query. With no Tick hook the task never stops early.
func (tc *TaskContext) Alive(queries int) bool {
	if tc.Tick == nil {
		return true
	}
	return tc.Tick(queries)
}

// Oracle is one DBMS-agnostic testing technique. Implementations are
// stateless values: all per-task state lives inside Run, so one
// registered Oracle serves any number of concurrent tasks.
type Oracle interface {
	// Name returns the oracle's stable registry key ("qpg", "cert", …) —
	// the identity used in seeds, finding dedup keys, config stamps, and
	// checkpoint records. Renaming an oracle invalidates stored runs.
	Name() string
	// Run executes one full task against tc.Engine: apply a schema,
	// generate queries from tc.Seed, emit findings through tc, and return
	// the counter report. The error is for hard failures (setup, engine
	// construction) only; per-query failures are findings or skips.
	Run(tc *TaskContext) (TaskReport, error)
}

// registry holds the registered oracles with an explicit canonical rank:
// init order across sibling packages is unspecified in Go, so ordering
// must come from the registration call, not its timing.
var (
	regMu    sync.RWMutex
	registry = map[string]Oracle{}
	ranks    = map[string]int{}
)

// Register installs an oracle under its Name with the given canonical
// rank (lower ranks sort first in Names). Meant to be called from init;
// a duplicate name is a wiring error and panics.
func Register(o Oracle, rank int) {
	regMu.Lock()
	defer regMu.Unlock()
	name := o.Name()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("oracle: duplicate registration of %q", name))
	}
	registry[name] = o
	ranks[name] = rank
}

// Lookup returns the registered oracle for name.
func Lookup(name string) (Oracle, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	o, ok := registry[name]
	return o, ok
}

// Names lists the registered oracles in canonical order: ascending rank,
// ties broken by name.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Slice(out, func(i, j int) bool {
		if ranks[out[i]] != ranks[out[j]] {
			return ranks[out[i]] < ranks[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// DeriveSeed mixes the top-level campaign seed with the task identity so
// every (engine, oracle) task gets an independent, reproducible
// generator stream regardless of which worker runs it or when.
func DeriveSeed(seed int64, engine, oracle string) int64 {
	h := fnv.New64a()
	h.Write([]byte(engine))
	h.Write([]byte{0})
	h.Write([]byte(oracle))
	return seed ^ int64(h.Sum64())
}

// ApplySchema loads the generator's random schema into the engine and
// refreshes its statistics — the shared setup step of every
// generator-driven oracle task.
func ApplySchema(e *dbms.Engine, gen *sqlancer.Generator, tables, rows int) error {
	for _, stmt := range gen.SchemaSQL(tables, rows) {
		if _, err := e.Execute(stmt); err != nil {
			return fmt.Errorf("schema %q: %w", stmt, err)
		}
	}
	return e.Analyze()
}

// Decoder converts serialized native plans into unified plans through a
// reused task-owned arena — the allocation-lean observation path QPG and
// CERT each built by hand before the oracle layer existed. When the
// dialect's converter does not support arenas it falls back to one-shot
// conversion.
type Decoder struct {
	conv  convert.Converter
	aconv convert.ArenaConverter
	arena *core.PlanArena
}

// NewDecoder builds a decoder for the dialect using the shared cached
// converter (one registry per process, never a per-task rebuild).
func NewDecoder(dialect string) (*Decoder, error) {
	conv, err := convert.Cached(dialect)
	if err != nil {
		return nil, err
	}
	d := &Decoder{conv: conv}
	if ac, ok := conv.(convert.ArenaConverter); ok {
		d.aconv = ac
		d.arena = core.NewPlanArena()
	}
	return d, nil
}

// Converter exposes the decoder's underlying converter — the shared
// per-dialect instance. Regression tests compare it across decoders to
// prove the registry is not being rebuilt per task.
func (d *Decoder) Converter() convert.Converter { return d.conv }

// Decode converts one serialized plan. The returned plan lives in the
// decoder's reused arena (when the dialect supports arenas) and is valid
// only until the next Decode — Clone it to keep it.
func (d *Decoder) Decode(serialized string) (*core.Plan, error) {
	if d.aconv != nil {
		d.arena.Reset()
		return d.aconv.ConvertIn(serialized, d.arena)
	}
	return d.conv.Convert(serialized)
}
