package oracle_test

import (
	"testing"

	"uplan/internal/core"
	"uplan/internal/oracle"
	_ "uplan/internal/oracle/all"
)

// TestRegistryCanonicalOrder pins the registered set and its order:
// explicit ranks, not init timing, decide it — init order across sibling
// packages is unspecified in Go.
func TestRegistryCanonicalOrder(t *testing.T) {
	got := oracle.Names()
	want := []string{"qpg", "cert", "tlp", "bounds"}
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestLookup(t *testing.T) {
	for _, name := range oracle.Names() {
		o, ok := oracle.Lookup(name)
		if !ok {
			t.Fatalf("registered oracle %q not found", name)
		}
		if o.Name() != name {
			t.Errorf("oracle registered as %q names itself %q", name, o.Name())
		}
	}
	if _, ok := oracle.Lookup("nope"); ok {
		t.Error("unknown oracle resolved")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration must panic")
		}
	}()
	existing, _ := oracle.Lookup("qpg")
	oracle.Register(existing, 99)
}

// TestDeriveSeedIdentity pins the derivation: stable across calls, and
// distinct per task identity so no two tasks share a generator stream.
func TestDeriveSeedIdentity(t *testing.T) {
	seen := map[int64]string{}
	for _, engine := range []string{"postgresql", "sqlite"} {
		for _, name := range oracle.Names() {
			s := oracle.DeriveSeed(42, engine, name)
			if s != oracle.DeriveSeed(42, engine, name) {
				t.Fatalf("%s/%s: derivation not stable", engine, name)
			}
			if prev, dup := seen[s]; dup {
				t.Fatalf("%s/%s collides with %s", engine, name, prev)
			}
			seen[s] = engine + "/" + name
		}
	}
	// The identity is delimited, not concatenated: ("ab","c") != ("a","bc").
	if oracle.DeriveSeed(1, "ab", "c") == oracle.DeriveSeed(1, "a", "bc") {
		t.Error("engine/oracle boundary not delimited in the seed derivation")
	}
}

// TestTaskContextNilHooks pins standalone use: with no orchestrator hooks
// attached, every finding is new, plans are never globally new, and the
// task never stops early.
func TestTaskContextNilHooks(t *testing.T) {
	tc := &oracle.TaskContext{}
	if !tc.Emit(oracle.Finding{Kind: oracle.KindLogic}) {
		t.Error("Emit without a Report hook must count as new")
	}
	if tc.Observe(&core.Plan{}) {
		t.Error("Observe without a hook must report not-new")
	}
	if !tc.Alive(5) {
		t.Error("Alive without a Tick hook must keep running")
	}
}

func TestCountersAddExtra(t *testing.T) {
	var c oracle.Counters
	c.AddExtra("unbounded", 2)
	c.AddExtra("unbounded", 3)
	c.AddExtra("no-estimate", 1)
	if c.Extra["unbounded"] != 5 || c.Extra["no-estimate"] != 1 {
		t.Errorf("Extra = %v", c.Extra)
	}
}
