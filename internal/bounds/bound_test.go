package bounds

import (
	"testing"

	"uplan/internal/catalog"
	"uplan/internal/sql"
)

// boundSchema builds a catalog with a keyed table t0 (4 rows, c0 PRIMARY
// KEY), a keyless table t1 (3 rows), a ghost table registered with no
// columns or indexes (5 rows of stats), and a table t2 without collected
// statistics.
func boundSchema(t *testing.T) *catalog.Schema {
	t.Helper()
	s := catalog.NewSchema()
	add := func(tab *catalog.Table) {
		t.Helper()
		if err := s.AddTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	add(&catalog.Table{Name: "t0", Columns: []catalog.Column{
		{Name: "c0", Type: catalog.TInt, PrimaryKey: true},
		{Name: "c1", Type: catalog.TInt},
	}})
	add(&catalog.Table{Name: "t1", Columns: []catalog.Column{
		{Name: "c0", Type: catalog.TInt},
		{Name: "c1", Type: catalog.TInt},
	}})
	add(&catalog.Table{Name: "ghost"})
	add(&catalog.Table{Name: "t2", Columns: []catalog.Column{
		{Name: "c0", Type: catalog.TInt},
	}})
	s.SetStats("t0", &catalog.TableStats{RowCount: 4})
	s.SetStats("t1", &catalog.TableStats{RowCount: 3})
	s.SetStats("ghost", &catalog.TableStats{RowCount: 5})
	return s
}

func TestBoundRules(t *testing.T) {
	schema := boundSchema(t)
	cases := []struct {
		query string
		want  float64
	}{
		// Selection, projection, grouping, ordering, and LIMIT never raise
		// the FROM bound — and deliberately never lower it either (the
		// engine's surfaced estimate may belong to any root-chain node).
		{"SELECT * FROM t0", 4},
		{"SELECT c1 FROM t0 WHERE c1 > 0", 4},
		{"SELECT DISTINCT c1 FROM t0", 4},
		{"SELECT c1 FROM t0 GROUP BY c1 ORDER BY c1 LIMIT 2", 4},
		// FROM-less SELECT produces one row.
		{"SELECT 1", 1},
		// Join bounds: product in general, reduced to the non-key side when
		// the equi-condition hits a key, through aliases too.
		{"SELECT * FROM t0 JOIN t1 ON t0.c1 = t1.c1", 12},
		{"SELECT * FROM t0 JOIN t1 ON t0.c0 = t1.c0", 3},
		{"SELECT * FROM t0 AS a JOIN t1 AS b ON a.c0 = b.c1", 3},
		{"SELECT * FROM t0 JOIN ghost ON t0.c0 = ghost.c0", 5},
		// LEFT JOIN adds the unmatched left rows, unless the right side is
		// keyed — then every left row appears exactly once.
		{"SELECT * FROM t0 LEFT JOIN t1 ON t0.c1 = t1.c1", 16},
		{"SELECT * FROM t1 LEFT JOIN t0 ON t1.c0 = t0.c0", 3},
		// Set operations: sum, min, left.
		{"SELECT c0 FROM t0 UNION SELECT c0 FROM t1", 7},
		{"SELECT c0 FROM t0 UNION ALL SELECT c0 FROM t1", 7},
		{"SELECT c0 FROM t0 INTERSECT SELECT c0 FROM t1", 3},
		{"SELECT c0 FROM t0 EXCEPT SELECT c0 FROM t1", 4},
	}
	for _, tc := range cases {
		stmt, err := sql.ParseSelect(tc.query)
		if err != nil {
			t.Errorf("%s: %v", tc.query, err)
			continue
		}
		got, ok := Bound(stmt, schema)
		if !ok {
			t.Errorf("%s: no bound, want %v", tc.query, tc.want)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: bound %v, want %v", tc.query, got, tc.want)
		}
	}
}

func TestBoundUnprovable(t *testing.T) {
	schema := boundSchema(t)
	for _, query := range []string{
		// Unknown table, and a known table without collected statistics:
		// the true size is unknown, so nothing is provable.
		"SELECT * FROM nope",
		"SELECT * FROM t2",
		"SELECT * FROM t0 JOIN t2 ON t0.c0 = t2.c0",
		"SELECT c0 FROM t0 UNION SELECT c0 FROM t2",
	} {
		stmt, err := sql.ParseSelect(query)
		if err != nil {
			t.Errorf("%s: %v", query, err)
			continue
		}
		if b, ok := Bound(stmt, schema); ok {
			t.Errorf("%s: got bound %v, want unprovable", query, b)
		}
	}
	if b, ok := Bound(nil, schema); ok {
		t.Errorf("nil select: got bound %v", b)
	}
	stmt, err := sql.ParseSelect("SELECT * FROM t0")
	if err != nil {
		t.Fatal(err)
	}
	if b, ok := Bound(stmt, nil); ok {
		t.Errorf("nil schema: got bound %v", b)
	}
}

// TestBoundKeyReductionSoundness pins the cases where the key reduction
// must NOT fire: a key column equated through a derived table (no
// constraints survive projection in general), and a key that sits inside
// a wider join tree (it keys its table, not the tree's row combinations).
func TestBoundKeyReductionSoundness(t *testing.T) {
	schema := boundSchema(t)
	cases := []struct {
		query string
		want  float64
	}{
		{"SELECT * FROM (SELECT * FROM t0) AS s JOIN t1 ON s.c0 = t1.c0", 12},
		// t0's key is inside the (t0 JOIN t1) subtree: joining ghost on it
		// must use the product bound 12*5, not collapse to ghost's 5.
		{"SELECT * FROM t0 JOIN t1 ON t0.c1 = t1.c1 JOIN ghost ON t0.c0 = ghost.c0", 60},
	}
	for _, tc := range cases {
		stmt, err := sql.ParseSelect(tc.query)
		if err != nil {
			t.Errorf("%s: %v", tc.query, err)
			continue
		}
		got, ok := Bound(stmt, schema)
		if !ok {
			t.Errorf("%s: no bound", tc.query)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: bound %v, want %v", tc.query, got, tc.want)
		}
	}
}
