package bounds

import (
	"errors"

	"uplan/internal/cert"
	"uplan/internal/oracle"
	"uplan/internal/sqlancer"
)

// OracleName is the bounds oracle's registry key.
const OracleName = "bounds"

// KindBoundViolation classifies bounds findings: the engine's estimate
// exceeds the provable SPJU output-size bound.
const KindBoundViolation oracle.Kind = "bound-violation"

func init() { oracle.Register(TaskOracle{}, 3) }

// TaskOracle is the bounds oracle as an oracle.Oracle: generate random
// queries, derive each one's static SPJU bound from the catalog, and
// flag estimates above it. Queries without a provable bound, queries the
// engine cannot plan, and plans exposing no estimate are skipped — the
// no-estimate signal is CERT's finding, not this oracle's.
type TaskOracle struct{}

// Name implements oracle.Oracle.
func (TaskOracle) Name() string { return OracleName }

// Run implements oracle.Oracle.
func (TaskOracle) Run(tc *oracle.TaskContext) (oracle.TaskReport, error) {
	var rep oracle.TaskReport
	gen := sqlancer.New(tc.Seed)
	if err := oracle.ApplySchema(tc.Engine, gen, tc.Tables, tc.Rows); err != nil {
		return rep, err
	}
	checker, err := New(tc.Engine)
	if err != nil {
		return rep, err
	}
	checker.SetDecoder(tc.Decoder)
	found := 0
	for i := 0; i < tc.Queries; i++ {
		if tc.MaxFindings > 0 && found >= tc.MaxFindings {
			break
		}
		if !tc.Alive(rep.Queries) {
			break
		}
		rep.Queries++
		query := gen.Query()
		v, err := checker.Check(query)
		switch {
		case errors.Is(err, ErrNoBound):
			rep.Skipped++
			rep.AddExtra("unbounded", 1)
			continue
		case errors.Is(err, cert.ErrUnplannable):
			rep.Skipped++
			continue
		case errors.Is(err, cert.ErrNoEstimate):
			// CERT already reports the no-estimate signal once per engine;
			// re-reporting it under a second oracle would double-count the
			// same defect. Unlike CERT the task keeps running: partial
			// exposure means other query shapes may still surface one.
			rep.Skipped++
			rep.AddExtra("no-estimate", 1)
			continue
		case err != nil:
			if tc.Emit(oracle.Finding{Kind: oracle.KindPlan, Query: query, Detail: err.Error()}) {
				found++
			}
			continue
		case v != nil:
			if tc.Emit(oracle.Finding{Kind: KindBoundViolation, Query: query, Detail: v.String()}) {
				found++
			}
		}
	}
	rep.Checks = checker.Checked
	return rep, nil
}
