package bounds

import (
	"errors"
	"fmt"

	"uplan/internal/cert"
	"uplan/internal/dbms"
	"uplan/internal/oracle"
	"uplan/internal/sql"
)

// ErrNoBound marks queries without a provable bound: shapes outside the
// SPJU fragment the parser or Bound understands, tables missing from
// the catalog, or tables without collected statistics. These are
// skip-worthy, like cert.ErrUnplannable — the oracle only reasons about
// queries it can bound.
var ErrNoBound = errors.New("bounds: no provable output-size bound")

// Slack is the absolute allowance on top of the relative cert.Tolerance.
// Planners floor estimates at one row (the minRows clamp), so an honest
// engine can report 1 where the provable bound is 0; an absolute unit of
// slack keeps that from flagging.
const Slack = 1.0

// Violation is one bounds finding: the engine's estimate exceeds the
// provable output-size bound.
type Violation struct {
	Engine string
	Query  string
	Bound  float64
	Est    float64
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] est(%q)=%.1f exceeds the provable SPJU bound %.1f",
		v.Engine, v.Query, v.Est, v.Bound)
}

// Checker runs the bounds oracle against one engine: parse the query,
// derive the static bound from the engine's own catalog, read the
// engine's surfaced estimate through CERT's ErrNoEstimate-aware plan
// conversion, and compare.
type Checker struct {
	Engine *dbms.Engine
	est    *cert.Checker
	// Checked counts performed bound/estimate comparisons.
	Checked int
	// Skipped counts queries without a provable bound or a readable
	// estimate.
	Skipped int
}

// New creates a bounds checker for the engine.
func New(e *dbms.Engine) (*Checker, error) {
	est, err := cert.New(e)
	if err != nil {
		return nil, err
	}
	return &Checker{Engine: e, est: est}, nil
}

// SetDecoder replaces the underlying estimate reader's plan decoder; the
// orchestrator uses it to share the task-owned decoder it already built.
func (c *Checker) SetDecoder(dec *oracle.Decoder) { c.est.SetDecoder(dec) }

// Check compares the engine's estimate for the query against the
// provable bound. It returns a Violation when the estimate exceeds the
// bound beyond tolerance; an error matching ErrNoBound when the query
// cannot be bounded, cert.ErrUnplannable when the engine cannot plan
// it, and cert.ErrNoEstimate when the plan exposes no estimate.
func (c *Checker) Check(query string) (*Violation, error) {
	stmt, err := sql.ParseSelect(query)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoBound, err)
	}
	bound, ok := Bound(stmt, c.Engine.DB.Schema)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoBound, query)
	}
	est, err := c.est.Estimate(query)
	if err != nil {
		return nil, err
	}
	c.Checked++
	if est > bound*cert.Tolerance+Slack {
		return &Violation{Engine: c.Engine.Info.Name, Query: query, Bound: bound, Est: est}, nil
	}
	return nil, nil
}
