package bounds

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"uplan/internal/cert"
	"uplan/internal/dbms"
	"uplan/internal/oracle"
)

func seeded(t *testing.T, name string) *dbms.Engine {
	t.Helper()
	e := dbms.MustNew(name)
	for _, s := range []string{
		"CREATE TABLE t0 (c0 INT PRIMARY KEY, c1 INT, c2 TEXT)",
		"INSERT INTO t0 VALUES (1, 10, 'a'), (2, 20, 'b'), (3, 30, 'c'), (4, 40, 'd')",
	} {
		if _, err := e.Execute(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Analyze(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestCheckHonestEstimatePasses(t *testing.T) {
	c, err := New(seeded(t, "postgresql"))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		"SELECT * FROM t0",
		"SELECT * FROM t0 WHERE c1 > 15",
		"SELECT 1",
	} {
		v, err := c.Check(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if v != nil {
			t.Errorf("honest engine flagged: %v", v)
		}
	}
	if c.Checked == 0 {
		t.Error("no comparisons counted")
	}
}

func TestCheckInflatedEstimateFlagged(t *testing.T) {
	e := seeded(t, "tidb")
	e.Opts.Quirks.PredicateInflatesEstimate = 900
	c, err := New(e)
	if err != nil {
		t.Fatal(err)
	}
	// The quirk inflates equality-predicate selectivity past 1, so the
	// estimate escapes the provable σ(R) ≤ |R| bound.
	v, err := c.Check("SELECT * FROM t0 WHERE c1 = 20")
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("inflated estimate not flagged")
	}
	if v.Bound != 4 || v.Est <= v.Bound*cert.Tolerance+Slack {
		t.Errorf("violation fields: %+v", v)
	}
	if !strings.Contains(v.String(), "provable SPJU bound") {
		t.Errorf("violation must render: %q", v.String())
	}
}

func TestCheckSentinels(t *testing.T) {
	c, err := New(seeded(t, "postgresql"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Check("SELECT * FROM nope"); !errors.Is(err, ErrNoBound) {
		t.Errorf("unboundable query: %v", err)
	}
	if _, err := c.Check("NOT SQL AT ALL"); !errors.Is(err, ErrNoBound) {
		t.Errorf("unparsable query: %v", err)
	}
	// sqlite's plan format exposes no cardinality estimates; the CERT
	// sentinel must pass through so the oracle can classify the skip.
	sq, err := New(seeded(t, "sqlite"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sq.Check("SELECT * FROM t0"); !errors.Is(err, cert.ErrNoEstimate) {
		t.Errorf("no-estimate engine: %v", err)
	}
}

// runTask runs the bounds oracle once as the orchestrator would, with a
// recording Report hook, and returns the findings and the report.
func runTask(t *testing.T, engine string, inject func(e *dbms.Engine)) ([]oracle.Finding, oracle.TaskReport) {
	t.Helper()
	e := dbms.MustNew(engine)
	if inject != nil {
		inject(e)
	}
	dec, err := oracle.NewDecoder(e.Info.Name)
	if err != nil {
		t.Fatal(err)
	}
	var findings []oracle.Finding
	tc := &oracle.TaskContext{
		Engine:  e,
		Seed:    oracle.DeriveSeed(3, engine, OracleName),
		Queries: 40,
		Tables:  2,
		Rows:    12,
		Decoder: dec,
		Report:  func(f oracle.Finding) bool { findings = append(findings, f); return true },
	}
	rep, err := TaskOracle{}.Run(tc)
	if err != nil {
		t.Fatalf("%s: %v", engine, err)
	}
	return findings, rep
}

// TestOracleHonestEnginesClean is the false-positive guard: on every
// studied engine with its honest estimator, the generated corpus must
// produce zero bound violations — the bound provably dominates every
// estimate the planner's cost model can emit for the generator's shapes.
func TestOracleHonestEnginesClean(t *testing.T) {
	for _, engine := range dbms.Names() {
		findings, rep := runTask(t, engine, nil)
		for _, f := range findings {
			if f.Kind == KindBoundViolation {
				t.Errorf("%s: honest engine flagged: %+v", engine, f)
			}
		}
		if rep.Queries == 0 {
			t.Errorf("%s: task processed no queries", engine)
		}
	}
}

// TestOracleSeededViolationDeterministic plants an estimator defect and
// pins both halves of the oracle contract: the defect is found, and two
// identically seeded runs report byte-identical findings.
func TestOracleSeededViolationDeterministic(t *testing.T) {
	inflate := func(e *dbms.Engine) { e.Opts.Quirks.PredicateInflatesEstimate = 900 }
	first, rep := runTask(t, "tidb", inflate)
	violations := 0
	for _, f := range first {
		if f.Kind == KindBoundViolation {
			violations++
		}
	}
	if violations == 0 {
		t.Fatalf("inflated estimator produced no bound violations (findings: %+v)", first)
	}
	if rep.Checks == 0 {
		t.Error("no comparisons counted")
	}
	second, _ := runTask(t, "tidb", inflate)
	if !reflect.DeepEqual(first, second) {
		t.Errorf("identically seeded runs diverged:\n%+v\n%+v", first, second)
	}
}

// TestOracleNoEstimateKeepsRunning pins the budget contract the campaign
// stats rely on: unlike CERT, a no-estimate engine does not end the task
// — every generated query is still processed and counted.
func TestOracleNoEstimateKeepsRunning(t *testing.T) {
	_, rep := runTask(t, "sqlite", nil)
	if rep.Queries != 40 {
		t.Errorf("task stopped early: %d of 40 queries", rep.Queries)
	}
	if rep.Extra["no-estimate"] == 0 {
		t.Errorf("no-estimate skips not counted: %+v", rep.Extra)
	}
}
