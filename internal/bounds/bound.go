// Package bounds implements the cardinality-bounds oracle: static
// output-size upper bounds for select-project-join-union queries,
// derived from true table sizes and the catalog's key constraints in the
// spirit of intermediate relation size bounds for SPJU plans (Chen &
// Schneider; see PAPERS.md). An engine whose cardinality estimate
// exceeds the provable bound has an estimation defect no workload can
// excuse — a principled complement to CERT's monotonicity check, and one
// that still works on engines with only partial estimate exposure.
//
// The derivation rules are the classic SPJU inequalities:
//
//   - select:  σ(R) ≤ |R|
//   - project: π(R) ≤ |R| (bag semantics; with a retained key, also
//     under set semantics)
//   - join:    R ⋈ S ≤ |R|·|S|, and ≤ the non-key side when the join
//     equates a key of the other side
//   - union:   R ∪ S ≤ |R| + |S| (intersect ≤ min, except ≤ left)
//
// Because every non-join, non-union operator only shrinks its input,
// the rules compose into one number: the bound of the FROM/set-op
// algebra. Bound deliberately returns that plan-wide bound (no LIMIT
// tightening): the engine's surfaced estimate may belong to any node on
// the plan's root chain (core.Plan.RootCardinality walks below
// single-child operators on partial-exposure engines), and the FROM
// bound is the one number that provably caps every such node.
package bounds

import (
	"strings"

	"uplan/internal/catalog"
	"uplan/internal/sql"
)

// Bound computes a provable output-size upper bound for the query over
// the schema's tables, statistics, and key constraints. The second
// result is false when no bound is provable: a table without collected
// statistics (its true size is unknown), a table missing from the
// catalog, or a FROM-less shape outside the SPJU fragment.
//
// The row counts come from catalog statistics, so the bound is only as
// true as the last ANALYZE; the bounds oracle runs against a freshly
// analyzed, unmutated schema where they are exact.
func Bound(sel *sql.Select, schema *catalog.Schema) (float64, bool) {
	if sel == nil || schema == nil {
		return 0, false
	}
	if sel.Compound != nil {
		l, lok := Bound(sel.Compound.Left, schema)
		r, rok := Bound(sel.Compound.Right, schema)
		if !lok || !rok {
			return 0, false
		}
		switch sel.Compound.Op {
		case sql.UnionOp, sql.UnionAllOp:
			return l + r, true
		case sql.IntersectOp:
			return min(l, r), true
		case sql.ExceptOp:
			return l, true
		}
		return 0, false
	}
	if sel.Core == nil {
		return 0, false
	}
	if sel.Core.From == nil {
		// FROM-less SELECT produces exactly one row; scalar aggregation
		// over any input produces one too, so 1 stays sound above it.
		return 1, true
	}
	return boundFrom(sel.Core.From, schema)
}

// boundFrom bounds a FROM-clause tree.
func boundFrom(ref sql.TableRef, schema *catalog.Schema) (float64, bool) {
	switch r := ref.(type) {
	case *sql.BaseTable:
		if schema.Table(r.Name) == nil || !schema.HasStats(r.Name) {
			return 0, false
		}
		return float64(schema.Stats(r.Name).RowCount), true
	case *sql.SubqueryRef:
		return Bound(r.Sub, schema)
	case *sql.JoinRef:
		return boundJoin(r, schema)
	}
	return 0, false
}

// boundJoin bounds a join: the product of the side bounds, reduced to
// the non-key side when an equi-condition equates a key column of a
// side that is a single base relation (each row of the other side then
// matches at most one of its rows). A LEFT join additionally emits
// unmatched left rows, unless the right side is keyed — then every left
// row appears exactly once, matched or padded.
func boundJoin(j *sql.JoinRef, schema *catalog.Schema) (float64, bool) {
	lb, lok := boundFrom(j.Left, schema)
	rb, rok := boundFrom(j.Right, schema)
	if !lok || !rok {
		return 0, false
	}
	inner := lb * rb
	rightKeyed := false
	if j.On != nil {
		lrels := relations(j.Left, schema, nil)
		rrels := relations(j.Right, schema, nil)
		for _, e := range conjuncts(j.On, nil) {
			b, ok := e.(*sql.Binary)
			if !ok || b.Op != sql.OpEq {
				continue
			}
			lc, lcok := b.L.(*sql.ColumnRef)
			rc, rcok := b.R.(*sql.ColumnRef)
			if !lcok || !rcok {
				continue
			}
			for _, pair := range [2][2]*sql.ColumnRef{{lc, rc}, {rc, lc}} {
				onLeft, onRight := pair[0], pair[1]
				lrel := ownerOf(onLeft, lrels)
				rrel := ownerOf(onRight, rrels)
				if lrel == nil || rrel == nil {
					continue
				}
				// The reduction is only sound when the keyed side is that
				// single relation: a key of one table inside a wider join
				// tree does not key the tree's row combinations.
				if len(lrels) == 1 && lrel.table.UniqueOn(onLeft.Name) {
					inner = min(inner, rb)
				}
				if len(rrels) == 1 && rrel.table.UniqueOn(onRight.Name) {
					inner = min(inner, lb)
					rightKeyed = true
				}
			}
		}
	}
	switch j.Type {
	case sql.JoinLeft:
		if rightKeyed {
			return lb, true
		}
		return inner + lb, true
	default: // inner, cross
		return inner, true
	}
}

// rel is one relation visible in a FROM subtree: its visible name
// (alias, or the table name) and its catalog definition (nil for
// derived tables, which expose no key constraints).
type rel struct {
	name  string
	table *catalog.Table
}

// relations collects the visible relations of a FROM subtree, resolving
// base tables against the catalog so aliased tables still expose keys.
func relations(ref sql.TableRef, schema *catalog.Schema, out []rel) []rel {
	switch r := ref.(type) {
	case *sql.BaseTable:
		name := r.Name
		if r.Alias != "" {
			name = r.Alias
		}
		return append(out, rel{name: name, table: schema.Table(r.Name)})
	case *sql.SubqueryRef:
		return append(out, rel{name: r.Alias, table: nil})
	case *sql.JoinRef:
		return relations(r.Right, schema, relations(r.Left, schema, out))
	}
	return out
}

// ownerOf resolves a column reference to the one relation that owns it,
// or nil when it is qualified with an unknown name, names a derived
// table (no key constraints), or is unqualified and ambiguous.
func ownerOf(cr *sql.ColumnRef, rels []rel) *rel {
	var found *rel
	for i := range rels {
		r := &rels[i]
		if cr.Table != "" {
			if strings.EqualFold(r.name, cr.Table) {
				if r.table == nil {
					return nil
				}
				return r
			}
			continue
		}
		if r.table != nil && r.table.ColumnIndex(cr.Name) >= 0 {
			if found != nil {
				return nil // ambiguous
			}
			found = r
		}
	}
	return found
}

// conjuncts splits an AND tree into its conjuncts.
func conjuncts(e sql.Expr, out []sql.Expr) []sql.Expr {
	if b, ok := e.(*sql.Binary); ok && b.Op == sql.OpAnd {
		return conjuncts(b.R, conjuncts(b.L, out))
	}
	return append(out, e)
}
