package datum

import (
	"testing"
	"testing/quick"
)

func TestCompareNumericCrossKind(t *testing.T) {
	c, ok := Compare(Int(3), Float(3.0))
	if !ok || c != 0 {
		t.Errorf("3 vs 3.0: %d %v", c, ok)
	}
	c, ok = Compare(Int(2), Float(2.5))
	if !ok || c >= 0 {
		t.Errorf("2 vs 2.5: %d %v", c, ok)
	}
}

func TestCompareNulls(t *testing.T) {
	if _, ok := Compare(Null(), Int(1)); ok {
		t.Error("NULL comparison must not be defined")
	}
	if _, ok := Equal(Int(1), Null()); ok {
		t.Error("NULL equality must not be defined")
	}
}

func TestCompareStringsAndBools(t *testing.T) {
	if c, _ := Compare(Str("a"), Str("b")); c >= 0 {
		t.Error("string compare broken")
	}
	if c, _ := Compare(Bool(false), Bool(true)); c >= 0 {
		t.Error("false < true expected")
	}
	if c, _ := Compare(Bool(true), Bool(true)); c != 0 {
		t.Error("true == true expected")
	}
}

func TestIdentical(t *testing.T) {
	if !Identical(Null(), Null()) {
		t.Error("NULL identical to NULL")
	}
	if Identical(Null(), Int(0)) {
		t.Error("NULL not identical to 0")
	}
	if !Identical(Int(1), Float(1)) {
		t.Error("1 identical to 1.0")
	}
}

func TestSortCompareNullsFirst(t *testing.T) {
	if SortCompare(Null(), Int(-100)) >= 0 {
		t.Error("NULL must sort before values")
	}
	if SortCompare(Int(-100), Null()) <= 0 {
		t.Error("values must sort after NULL")
	}
	if SortCompare(Null(), Null()) != 0 {
		t.Error("NULL ties with NULL")
	}
}

func TestKeySemantics(t *testing.T) {
	if Int(1).Key() != Float(1).Key() {
		t.Error("1 and 1.0 must share keys")
	}
	if Int(0).Key() == Null().Key() {
		t.Error("0 and NULL must differ")
	}
	if Str("1").Key() == Int(1).Key() {
		t.Error("'1' and 1 must differ")
	}
	if Bool(true).Key() == Bool(false).Key() {
		t.Error("booleans must differ")
	}
}

func TestRowKeyInjectiveOnLengths(t *testing.T) {
	a := RowKey([]D{Str("ab"), Str("c")})
	b := RowKey([]D{Str("a"), Str("bc")})
	if a == b {
		t.Error("row keys must not collide across boundaries")
	}
}

func TestKeyConsistentWithIdentical(t *testing.T) {
	vals := []D{Null(), Int(0), Int(1), Float(1), Float(1.5), Str(""), Str("a"),
		Bool(true), Bool(false), Int(-7)}
	for _, a := range vals {
		for _, b := range vals {
			if Identical(a, b) != (a.Key() == b.Key()) {
				t.Errorf("Key/Identical disagree for %v vs %v", a, b)
			}
		}
	}
}

func TestCompareRows(t *testing.T) {
	a := []D{Int(1), Str("a")}
	b := []D{Int(1), Str("b")}
	if CompareRows(a, b) >= 0 {
		t.Error("row compare broken")
	}
	if CompareRows(a, a) != 0 {
		t.Error("row self-compare should be 0")
	}
	if CompareRows([]D{Int(1)}, a) >= 0 {
		t.Error("shorter row should sort first")
	}
}

func TestTruthTable(t *testing.T) {
	cases := []struct {
		a, b Truth
		and  Truth
		or   Truth
	}{
		{True, True, True, True},
		{True, False, False, True},
		{True, Unknown, Unknown, True},
		{False, False, False, False},
		{False, Unknown, False, Unknown},
		{Unknown, Unknown, Unknown, Unknown},
	}
	for _, c := range cases {
		if c.a.And(c.b) != c.and || c.b.And(c.a) != c.and {
			t.Errorf("%v AND %v", c.a, c.b)
		}
		if c.a.Or(c.b) != c.or || c.b.Or(c.a) != c.or {
			t.Errorf("%v OR %v", c.a, c.b)
		}
	}
	if True.Not() != False || False.Not() != True || Unknown.Not() != Unknown {
		t.Error("NOT broken")
	}
}

func TestTruthOf(t *testing.T) {
	if TruthOf(Null()) != Unknown || TruthOf(Bool(true)) != True ||
		TruthOf(Int(0)) != False || TruthOf(Float(2)) != True {
		t.Error("TruthOf broken")
	}
	if Unknown.D().K != KNull || True.D().B != true {
		t.Error("Truth.D broken")
	}
}

func TestStringRendering(t *testing.T) {
	cases := map[string]D{
		"NULL":    Null(),
		"42":      Int(42),
		"1.5":     Float(1.5),
		"2.0":     Float(2),
		"'it''s'": Str("it's"),
		"TRUE":    Bool(true),
	}
	for want, d := range cases {
		if got := d.String(); got != want {
			t.Errorf("%v String = %q, want %q", d, got, want)
		}
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	f := func(a, b int64) bool {
		c1, _ := Compare(Int(a), Int(b))
		c2, _ := Compare(Int(b), Int(a))
		return sign(c1) == -sign(c2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}
