// Package datum provides the SQL value model shared by the storage engine,
// executor, and planner: typed scalars with SQL comparison semantics
// (numeric cross-type comparison, three-valued logic via explicit null
// signalling) and key encoding for hashing and ordered indexes.
package datum

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the value types of the engine's SQL subset.
type Kind uint8

// The supported value kinds.
const (
	KNull Kind = iota
	KInt
	KFloat
	KString
	KBool
)

func (k Kind) String() string {
	switch k {
	case KNull:
		return "NULL"
	case KInt:
		return "INT"
	case KFloat:
		return "FLOAT"
	case KString:
		return "TEXT"
	case KBool:
		return "BOOL"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// D is a single SQL value. The zero value is SQL NULL.
type D struct {
	K Kind
	I int64
	F float64
	S string
	B bool
}

// Null returns the SQL NULL value.
func Null() D { return D{} }

// Int returns an integer value.
func Int(i int64) D { return D{K: KInt, I: i} }

// Float returns a float value.
func Float(f float64) D { return D{K: KFloat, F: f} }

// String returns a text value.
func Str(s string) D { return D{K: KString, S: s} }

// Bool returns a boolean value.
func Bool(b bool) D { return D{K: KBool, B: b} }

// IsNull reports whether d is SQL NULL.
func (d D) IsNull() bool { return d.K == KNull }

// String renders the value as a SQL literal.
func (d D) String() string {
	switch d.K {
	case KNull:
		return "NULL"
	case KInt:
		return strconv.FormatInt(d.I, 10)
	case KFloat:
		if d.F == math.Trunc(d.F) && math.Abs(d.F) < 1e15 {
			return strconv.FormatFloat(d.F, 'f', 1, 64)
		}
		return strconv.FormatFloat(d.F, 'g', -1, 64)
	case KString:
		return "'" + strings.ReplaceAll(d.S, "'", "''") + "'"
	case KBool:
		if d.B {
			return "TRUE"
		}
		return "FALSE"
	}
	return "?"
}

// AsFloat coerces numeric values (and booleans) to float64; the boolean
// result reports whether the coercion applies.
func (d D) AsFloat() (float64, bool) {
	switch d.K {
	case KInt:
		return float64(d.I), true
	case KFloat:
		return d.F, true
	case KBool:
		if d.B {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// IsNumeric reports whether the value is an INT or FLOAT.
func (d D) IsNumeric() bool { return d.K == KInt || d.K == KFloat }

// Compare orders two non-null values with SQL semantics: numeric kinds
// compare by value across INT/FLOAT; otherwise values of different kinds
// order by kind (BOOL < numeric < TEXT, a deterministic engine-internal
// rule). The second result is false when either side is NULL, in which case
// the caller must apply three-valued logic.
func Compare(a, b D) (int, bool) {
	if a.IsNull() || b.IsNull() {
		return 0, false
	}
	af, aNum := a.AsFloat()
	bf, bNum := b.AsFloat()
	if aNum && bNum && a.K != KBool && b.K != KBool {
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		}
		return 0, true
	}
	if a.K != b.K {
		// Deterministic cross-kind ordering for sort stability.
		return int(a.K) - int(b.K), true
	}
	switch a.K {
	case KString:
		return strings.Compare(a.S, b.S), true
	case KBool:
		switch {
		case a.B == b.B:
			return 0, true
		case b.B:
			return -1, true
		}
		return 1, true
	}
	return 0, true
}

// Equal reports SQL equality of two values; the second result is false when
// either side is NULL.
func Equal(a, b D) (bool, bool) {
	c, ok := Compare(a, b)
	return c == 0, ok
}

// Identical reports whether two values are indistinguishable, treating NULL
// as identical to NULL (used by DISTINCT, GROUP BY, and set operations,
// which consider NULLs equal).
func Identical(a, b D) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() && b.IsNull()
	}
	eq, _ := Equal(a, b)
	return eq
}

// SortCompare orders values for ORDER BY: NULLs sort first, then Compare.
func SortCompare(a, b D) int {
	switch {
	case a.IsNull() && b.IsNull():
		return 0
	case a.IsNull():
		return -1
	case b.IsNull():
		return 1
	}
	c, _ := Compare(a, b)
	return c
}

// Key encodes the value into a string usable as a grouping/hash key, with
// Identical semantics: Identical values share keys, including NULLs, and
// numerically equal INT/FLOAT values collide.
func (d D) Key() string {
	switch d.K {
	case KNull:
		return "\x00"
	case KInt:
		return "n" + strconv.FormatFloat(float64(d.I), 'g', -1, 64)
	case KFloat:
		return "n" + strconv.FormatFloat(d.F, 'g', -1, 64)
	case KString:
		return "s" + d.S
	case KBool:
		if d.B {
			return "b1"
		}
		return "b0"
	}
	return "?"
}

// RowKey encodes a slice of values into a composite key.
func RowKey(row []D) string {
	var b strings.Builder
	for _, d := range row {
		k := d.Key()
		b.WriteString(strconv.Itoa(len(k)))
		b.WriteByte(':')
		b.WriteString(k)
	}
	return b.String()
}

// CompareRows orders two equal-length rows lexicographically with
// SortCompare per column.
func CompareRows(a, b []D) int {
	for i := range a {
		if i >= len(b) {
			return 1
		}
		if c := SortCompare(a[i], b[i]); c != 0 {
			return c
		}
	}
	if len(a) < len(b) {
		return -1
	}
	return 0
}

// Truth is a three-valued logic truth value.
type Truth uint8

// The three truth values of SQL.
const (
	False Truth = iota
	True
	Unknown
)

// TruthOf converts a value to its SQL truth value: NULL is Unknown,
// booleans map directly, and non-zero numerics are True.
func TruthOf(d D) Truth {
	switch d.K {
	case KNull:
		return Unknown
	case KBool:
		if d.B {
			return True
		}
		return False
	case KInt:
		if d.I != 0 {
			return True
		}
		return False
	case KFloat:
		if d.F != 0 {
			return True
		}
		return False
	}
	return False
}

// D converts a truth value back to a datum (Unknown becomes NULL).
func (t Truth) D() D {
	switch t {
	case True:
		return Bool(true)
	case False:
		return Bool(false)
	}
	return Null()
}

// And implements 3VL conjunction.
func (t Truth) And(o Truth) Truth {
	if t == False || o == False {
		return False
	}
	if t == Unknown || o == Unknown {
		return Unknown
	}
	return True
}

// Or implements 3VL disjunction.
func (t Truth) Or(o Truth) Truth {
	if t == True || o == True {
		return True
	}
	if t == Unknown || o == Unknown {
		return Unknown
	}
	return False
}

// Not implements 3VL negation.
func (t Truth) Not() Truth {
	switch t {
	case True:
		return False
	case False:
		return True
	}
	return Unknown
}
