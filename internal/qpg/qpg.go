// Package qpg implements Query Plan Guidance (Ba & Rigger, ICSE 2023) in a
// DBMS-agnostic way on top of the unified query plan representation —
// application A.1 of the paper. QPG generates random queries, observes
// their *unified* plans, and mutates the database whenever no structurally
// new plan has been seen for a while, steering generation toward
// unexplored optimizer behaviour. Because plans are unified, one
// implementation covers every engine with a converter — the paper's
// headline engineering win.
package qpg

import (
	"errors"
	"fmt"

	"uplan/internal/core"
	"uplan/internal/dbms"
	"uplan/internal/exec"
	"uplan/internal/oracle"
	"uplan/internal/sqlancer"
	"uplan/internal/tlp"
)

// BugKind classifies campaign findings.
type BugKind string

// Finding kinds.
const (
	KindLogic BugKind = "logic"      // wrong results (TLP or differential)
	KindCrash BugKind = "crash"      // execution error on generated input
	KindPlan  BugKind = "plan-parse" // converter failed on the engine's plan
)

// Finding is one campaign discovery.
type Finding struct {
	Engine string
	Kind   BugKind
	Query  string
	Detail string
}

func (f Finding) String() string {
	return fmt.Sprintf("[%s/%s] %s — %s", f.Engine, f.Kind, f.Query, f.Detail)
}

// Options tune a campaign.
type Options struct {
	// Queries is the number of generated queries (the time budget).
	Queries int
	// StallThreshold is how many queries without a new plan fingerprint
	// trigger a database mutation (the paper's "specific number of randomly
	// generated queries").
	StallThreshold int
	// Seed drives the generator.
	Seed int64
	// MaxFindings stops the campaign early.
	MaxFindings int
}

// DefaultOptions returns the defaults used by the Table V reproduction.
func DefaultOptions() Options {
	return Options{Queries: 400, StallThreshold: 8, Seed: 1, MaxFindings: 10}
}

// Campaign runs QPG against one engine, with a pristine reference engine
// of the same dialect used for differential checking.
type Campaign struct {
	Engine    *dbms.Engine
	Reference *dbms.Engine
	Gen       *sqlancer.Generator
	Plans     *core.FingerprintSet
	Findings  []Finding
	// NewPlans counts distinct plan fingerprints observed.
	NewPlans int
	// QueriesRun counts generated queries actually processed by Run —
	// less than the budget when MaxFindings stops the campaign early.
	QueriesRun int
	// PlansObserved counts queries whose unified plan was successfully
	// obtained and fingerprinted (the NewPlans denominator).
	PlansObserved int
	// Mutations counts applied database mutations.
	Mutations int
	// Observer, when set, receives every successfully converted plan
	// before the campaign fingerprints it. The campaign orchestrator uses
	// it to feed a cross-engine plan store. Plans built on the campaign's
	// reused arena are only valid for the duration of the call — an
	// observer that needs to keep one must Clone it.
	Observer func(*core.Plan)
	// Tick, when set, is consulted before each query with the number of
	// queries run so far; returning false stops the campaign early. The
	// orchestrator uses it for cooperative cancellation, so a long task
	// yields mid-run instead of only between tasks.
	Tick func(queriesRun int) bool

	// dec implements the allocation-lean observation loop: when the
	// dialect's converter supports arenas, every plan is decoded into one
	// campaign-owned arena that is reset before the next query, so a
	// warmed-up campaign observes plans with no slab allocations. The
	// orchestrator shares its per-task decoder via SetDecoder.
	dec *oracle.Decoder
}

// New creates a campaign for the given engine dialect. The reference
// engine is created fresh with no injected defects.
func New(target *dbms.Engine, opts Options) (*Campaign, error) {
	ref, err := dbms.New(target.Info.Name)
	if err != nil {
		return nil, err
	}
	// The campaign converts one plan per generated query; the shared
	// cached converter (streaming JSON decoder, lock-free registry
	// snapshot) behind the decoder keeps that loop allocation-lean.
	dec, err := oracle.NewDecoder(target.Info.Name)
	if err != nil {
		return nil, err
	}
	c := &Campaign{
		Engine:    target,
		Reference: ref,
		Gen:       sqlancer.New(opts.Seed),
		// Structural fingerprints: operations plus configuration property
		// names, but not values — predicate constants and identifiers are
		// exactly the unstable information QPG must ignore, and excluding
		// them lets coverage plateau so the mutation feedback loop engages.
		// The set dedups on binary SHA-256 keys; Observe on an
		// already-seen plan (the common case once coverage plateaus) does
		// not allocate.
		Plans: core.NewFingerprintSet(core.FingerprintOptions{
			IncludeConfiguration: true,
		}),
		dec: dec,
	}
	return c, nil
}

// SetDecoder replaces the campaign's plan decoder. The orchestrator uses
// it to share the task-owned decoder it already built for the engine's
// dialect instead of carrying two arenas per task.
func (c *Campaign) SetDecoder(dec *oracle.Decoder) {
	if dec != nil {
		c.dec = dec
	}
}

// Setup creates the random schema on both engines.
func (c *Campaign) Setup(tables, rows int) error {
	for _, stmt := range c.Gen.SchemaSQL(tables, rows) {
		if err := c.applyBoth(stmt); err != nil {
			return err
		}
	}
	if err := c.Engine.Analyze(); err != nil {
		return err
	}
	return c.Reference.Analyze()
}

// applyBoth runs a mutating statement on target and reference.
func (c *Campaign) applyBoth(stmt string) error {
	if _, err := c.Engine.Execute(stmt); err != nil {
		return fmt.Errorf("qpg: target %q: %w", stmt, err)
	}
	if _, err := c.Reference.Execute(stmt); err != nil {
		return fmt.Errorf("qpg: reference %q: %w", stmt, err)
	}
	return nil
}

// Run executes the campaign loop.
func (c *Campaign) Run(opts Options) []Finding {
	stall := 0
	for i := 0; i < opts.Queries; i++ {
		if opts.MaxFindings > 0 && len(c.Findings) >= opts.MaxFindings {
			break
		}
		if c.Tick != nil && !c.Tick(c.QueriesRun) {
			break
		}
		query := c.Gen.Query()
		c.QueriesRun++
		// 1. Plan guidance: observe the unified plan of the query.
		fresh, ok := c.observePlan(query)
		if ok {
			c.PlansObserved++
		}
		if ok && fresh {
			c.NewPlans++
			stall = 0
		} else {
			stall++
		}
		// 2. Oracles.
		c.checkDifferential(query)
		table, pred := c.Gen.PartitionableQuery()
		c.checkTLP(table, pred)
		// 3. Mutate the database when plan coverage stalls.
		if stall >= opts.StallThreshold {
			stall = 0
			c.mutate()
		}
	}
	return c.Findings
}

// observePlan converts the engine's serialized plan to the unified
// representation and records its fingerprint. The second result is false
// when the plan could not be obtained.
func (c *Campaign) observePlan(query string) (fresh, ok bool) {
	serialized, err := c.Engine.Explain(query, c.Engine.DefaultFormat())
	if err != nil {
		c.report(KindCrash, query, "EXPLAIN failed: "+err.Error())
		return false, false
	}
	// Arena-backed decode path: the plan lives in the campaign's reused
	// arena until the next observation resets it; the fingerprint set and
	// the observer only read it.
	plan, err := c.dec.Decode(serialized)
	if err != nil {
		c.report(KindPlan, query, err.Error())
		return false, false
	}
	if c.Observer != nil {
		c.Observer(plan)
	}
	return c.Plans.Observe(plan), true
}

func (c *Campaign) checkDifferential(query string) {
	got, err1 := c.Engine.Execute(query)
	want, err2 := c.Reference.Execute(query)
	switch {
	case err1 != nil && err2 == nil:
		c.report(KindCrash, query, err1.Error())
	case err1 == nil && err2 != nil:
		// The reference rejects a query the target accepts: just as
		// asymmetric as the inverse case, and exactly the class of signal
		// the differential oracle exists to surface.
		c.report(KindCrash, query, "reference failed where target succeeded: "+err2.Error())
	case err1 == nil && err2 == nil:
		if diff := tlp.CompareResults(got, want); diff != "" {
			c.report(KindLogic, query, "differs from reference: "+diff)
		}
	}
}

func (c *Campaign) checkTLP(table, pred string) {
	v, err := tlp.Check(c.Engine, table, pred)
	if err != nil {
		// The generator guesses predicates against its own schema model, so
		// a column the table lacks is expected noise, not a defect. Match
		// the executor's sentinel instead of its message text: messages
		// change, and unrelated errors may contain the same words.
		if !errors.Is(err, exec.ErrUnresolvedColumn) {
			c.report(KindCrash, "TLP "+table+" / "+pred, err.Error())
		}
		return
	}
	if v != nil {
		c.report(KindLogic, v.Base+" WHERE "+pred, v.Detail)
	}
}

// mutate applies one database mutation to both engines; QPG's coverage
// feedback loop. Occasionally an update-swap statement is used, which also
// serves as a differential probe for update-path bugs.
func (c *Campaign) mutate() {
	c.Mutations++
	stmt := c.Gen.Mutation()
	if c.Mutations%2 == 0 {
		stmt = c.Gen.UpdateWithSwap()
	}
	if err := c.applyBoth(stmt); err != nil {
		// Expected for e.g. unique violations; both engines stay in sync
		// only if both fail — verify by probing a cheap query.
		return
	}
	// Statistics refresh feeds the planner's estimates (the CERT-relevant
	// state): a failure here is oracle signal, not noise. An asymmetric
	// failure is exactly the class the differential oracle reports; a
	// symmetric one means neither engine has comparable post-mutation
	// state, so the divergence probe below would compare stale data.
	errT := c.Engine.Analyze()
	errR := c.Reference.Analyze()
	switch {
	case errT != nil && errR == nil:
		c.report(KindCrash, stmt, "ANALYZE after mutation failed on target: "+errT.Error())
		return
	case errT == nil && errR != nil:
		c.report(KindCrash, stmt, "reference ANALYZE failed where target succeeded: "+errR.Error())
		return
	case errT != nil && errR != nil:
		return
	}
	// After a mutation, update-path defects surface as data divergence.
	for _, t := range c.Gen.Tables {
		q := "SELECT * FROM " + t.Name
		got, err1 := c.Engine.Execute(q)
		want, err2 := c.Reference.Execute(q)
		if err1 == nil && err2 == nil {
			if diff := tlp.CompareResults(got, want); diff != "" {
				c.report(KindLogic, stmt, "state divergence after mutation: "+diff)
			}
		}
	}
}

func (c *Campaign) report(kind BugKind, query, detail string) {
	// Deduplicate by kind+detail class to keep findings unique.
	for _, f := range c.Findings {
		if f.Kind == kind && f.Detail == detail {
			return
		}
	}
	c.Findings = append(c.Findings, Finding{
		Engine: c.Engine.Info.Name,
		Kind:   kind,
		Query:  query,
		Detail: detail,
	})
}
