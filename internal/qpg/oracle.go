package qpg

import (
	"uplan/internal/core"
	"uplan/internal/oracle"
)

// OracleName is QPG's registry key.
const OracleName = "qpg"

func init() { oracle.Register(TaskOracle{}, 0) }

// TaskOracle is QPG's oracle.Oracle implementation: a full plan-guided
// campaign (plan guidance, differential and TLP oracles, mutation
// feedback) run as one orchestrator task, streaming every observed
// unified plan into the shared cross-engine set.
type TaskOracle struct{}

// Name implements oracle.Oracle.
func (TaskOracle) Name() string { return OracleName }

// Run implements oracle.Oracle.
func (TaskOracle) Run(tc *oracle.TaskContext) (oracle.TaskReport, error) {
	var rep oracle.TaskReport
	qopts := Options{
		Queries:        tc.Queries,
		StallThreshold: tc.StallThreshold,
		Seed:           tc.Seed,
		MaxFindings:    tc.MaxFindings,
	}
	c, err := New(tc.Engine, qopts)
	if err != nil {
		return rep, err
	}
	c.SetDecoder(tc.Decoder)
	if tc.ObservePlan != nil {
		// The campaign's hot loop decodes plans into a reused arena; the
		// observer must only fingerprint, never retain.
		c.Observer = func(p *core.Plan) { tc.Observe(p) }
	}
	c.Tick = tc.Tick
	if err := c.Setup(tc.Tables, tc.Rows); err != nil {
		return rep, err
	}
	for _, f := range c.Run(qopts) {
		tc.Emit(oracle.Finding{Kind: oracle.Kind(f.Kind), Query: f.Query, Detail: f.Detail})
	}
	rep.Queries = c.QueriesRun
	rep.PlanQueries = c.PlansObserved
	rep.NewPlans = c.NewPlans
	rep.DistinctPlans = c.Plans.Size()
	rep.Mutations = c.Mutations
	return rep, nil
}
