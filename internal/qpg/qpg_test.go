package qpg

import (
	"strings"
	"testing"

	"uplan/internal/catalog"
	uplancore "uplan/internal/core"
	"uplan/internal/dbms"
)

func TestCampaignPlanGuidance(t *testing.T) {
	e := dbms.MustNew("postgresql")
	opts := DefaultOptions()
	opts.Queries = 120
	opts.Seed = 4
	c, err := New(e, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Setup(2, 10); err != nil {
		t.Fatal(err)
	}
	findings := c.Run(opts)
	if len(findings) != 0 {
		t.Errorf("pristine engine produced findings: %v", findings)
	}
	if c.Plans.Size() < 5 {
		t.Errorf("plan coverage too low: %d distinct plans", c.Plans.Size())
	}
	if c.Mutations == 0 {
		t.Error("coverage stall never triggered a mutation — the QPG feedback loop is dead")
	}
}

func TestCampaignFindsInjectedDefect(t *testing.T) {
	e := dbms.MustNew("mysql")
	e.Quirks.LeftJoinAsInner = true
	opts := DefaultOptions()
	opts.Queries = 200
	opts.Seed = 2
	opts.MaxFindings = 1
	c, err := New(e, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Setup(2, 12); err != nil {
		t.Fatal(err)
	}
	findings := c.Run(opts)
	if len(findings) == 0 {
		t.Fatal("LEFT JOIN defect not found")
	}
	if findings[0].Kind != KindLogic {
		t.Errorf("finding kind = %v", findings[0].Kind)
	}
	if findings[0].String() == "" {
		t.Error("finding must render")
	}
}

func TestFindingsDeduplicated(t *testing.T) {
	e := dbms.MustNew("tidb")
	e.Quirks.DistinctDropsNulls = true
	opts := DefaultOptions()
	opts.Queries = 250
	opts.Seed = 6
	opts.MaxFindings = 50
	c, err := New(e, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Setup(2, 12); err != nil {
		t.Fatal(err)
	}
	findings := c.Run(opts)
	seen := map[string]bool{}
	for _, f := range findings {
		key := string(f.Kind) + "|" + f.Detail
		if seen[key] {
			t.Fatalf("duplicate finding: %v", f)
		}
		seen[key] = true
	}
}

// TestDifferentialReportsReferenceError is the regression test for the
// asymmetric differential oracle: the reference engine failing where the
// target succeeds used to be silently dropped.
func TestDifferentialReportsReferenceError(t *testing.T) {
	e := dbms.MustNew("postgresql")
	opts := DefaultOptions()
	c, err := New(e, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Setup(1, 4); err != nil {
		t.Fatal(err)
	}
	// Desynchronize the engines: a table only the target knows makes the
	// reference reject a query the target accepts.
	if _, err := c.Engine.Execute("CREATE TABLE only_target (c0 INT)"); err != nil {
		t.Fatal(err)
	}
	c.checkDifferential("SELECT * FROM only_target")
	if len(c.Findings) != 1 {
		t.Fatalf("reference-only error must be reported, findings = %v", c.Findings)
	}
	f := c.Findings[0]
	if f.Kind != KindCrash {
		t.Errorf("kind = %v, want %v", f.Kind, KindCrash)
	}
	if !strings.Contains(f.Detail, "reference failed where target succeeded") {
		t.Errorf("detail = %q", f.Detail)
	}

	// The inverse asymmetry (target fails, reference succeeds) must still
	// be reported, and symmetric failures must not be.
	c.Findings = nil
	if _, err := c.Reference.Execute("CREATE TABLE only_ref (c0 INT)"); err != nil {
		t.Fatal(err)
	}
	c.checkDifferential("SELECT * FROM only_ref")
	if len(c.Findings) != 1 || c.Findings[0].Kind != KindCrash {
		t.Fatalf("target-only error must be reported, findings = %v", c.Findings)
	}
	c.Findings = nil
	c.checkDifferential("SELECT * FROM neither_has_this")
	if len(c.Findings) != 0 {
		t.Errorf("symmetric failure is not a finding: %v", c.Findings)
	}
}

// TestTLPFilterUsesSentinel is the regression test for the brittle
// string-match error filter: unresolved-column noise is skipped via
// errors.Is on exec.ErrUnresolvedColumn, while every other execution
// failure — including ones that merely mention columns — is reported.
func TestTLPFilterUsesSentinel(t *testing.T) {
	e := dbms.MustNew("sqlite")
	c, err := New(e, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Setup(1, 4); err != nil {
		t.Fatal(err)
	}
	table := c.Gen.Tables[0].Name

	c.checkTLP(table, "no_such_column = 1")
	if len(c.Findings) != 0 {
		t.Fatalf("unresolved-column noise must be skipped: %v", c.Findings)
	}

	c.checkTLP(table, "c0 = = 1") // malformed predicate: a genuine failure
	if len(c.Findings) != 1 {
		t.Fatalf("non-sentinel error must be reported, findings = %v", c.Findings)
	}
	if c.Findings[0].Kind != KindCrash {
		t.Errorf("kind = %v, want %v", c.Findings[0].Kind, KindCrash)
	}
}

// TestObserverSeesPlans pins the campaign-orchestrator hook: every
// successfully converted plan flows through Observer before being
// fingerprinted, on the arena-backed decode path.
func TestObserverSeesPlans(t *testing.T) {
	e := dbms.MustNew("postgresql")
	opts := DefaultOptions()
	opts.Queries = 25
	c, err := New(e, opts)
	if err != nil {
		t.Fatal(err)
	}
	observed := 0
	c.Observer = func(p *uplancore.Plan) {
		if p == nil || p.Root == nil {
			t.Error("observer received an invalid plan")
		}
		observed++
	}
	if err := c.Setup(2, 8); err != nil {
		t.Fatal(err)
	}
	c.Run(opts)
	if observed == 0 {
		t.Error("observer never called")
	}
	if observed < c.NewPlans {
		t.Errorf("observed %d plans < %d new fingerprints", observed, c.NewPlans)
	}
}

// TestMutateReportsAnalyzeFailure is the regression test for the dropped
// Engine.Analyze/Reference.Analyze errors in mutate(): a statistics
// refresh that fails on one engine but not the other is exactly the
// asymmetric, CERT-relevant signal the campaign must report instead of
// silently comparing stale estimates.
func TestMutateReportsAnalyzeFailure(t *testing.T) {
	for _, side := range []string{"target", "reference"} {
		c, err := New(dbms.MustNew("sqlite"), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Setup(2, 8); err != nil {
			t.Fatal(err)
		}
		// A catalog entry with no backing storage table makes AnalyzeAll
		// fail on exactly one engine.
		victim := c.Engine
		if side == "reference" {
			victim = c.Reference
		}
		if err := victim.DB.Schema.AddTable(&catalog.Table{Name: "ghost"}); err != nil {
			t.Fatal(err)
		}
		// Mutations may legitimately fail (unique violations) before the
		// ANALYZE step; a few attempts make the path deterministic.
		for i := 0; i < 8 && len(c.Findings) == 0; i++ {
			c.mutate()
		}
		found := false
		for _, f := range c.Findings {
			if f.Kind == KindCrash && strings.Contains(f.Detail, "ANALYZE") {
				found = true
			}
		}
		if !found {
			t.Errorf("%s-side ANALYZE failure after mutation was not reported; findings: %v", side, c.Findings)
		}
	}
}
