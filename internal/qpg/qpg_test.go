package qpg

import (
	"testing"

	"uplan/internal/dbms"
)

func TestCampaignPlanGuidance(t *testing.T) {
	e := dbms.MustNew("postgresql")
	opts := DefaultOptions()
	opts.Queries = 120
	opts.Seed = 4
	c, err := New(e, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Setup(2, 10); err != nil {
		t.Fatal(err)
	}
	findings := c.Run(opts)
	if len(findings) != 0 {
		t.Errorf("pristine engine produced findings: %v", findings)
	}
	if c.Plans.Size() < 5 {
		t.Errorf("plan coverage too low: %d distinct plans", c.Plans.Size())
	}
	if c.Mutations == 0 {
		t.Error("coverage stall never triggered a mutation — the QPG feedback loop is dead")
	}
}

func TestCampaignFindsInjectedDefect(t *testing.T) {
	e := dbms.MustNew("mysql")
	e.Quirks.LeftJoinAsInner = true
	opts := DefaultOptions()
	opts.Queries = 200
	opts.Seed = 2
	opts.MaxFindings = 1
	c, err := New(e, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Setup(2, 12); err != nil {
		t.Fatal(err)
	}
	findings := c.Run(opts)
	if len(findings) == 0 {
		t.Fatal("LEFT JOIN defect not found")
	}
	if findings[0].Kind != KindLogic {
		t.Errorf("finding kind = %v", findings[0].Kind)
	}
	if findings[0].String() == "" {
		t.Error("finding must render")
	}
}

func TestFindingsDeduplicated(t *testing.T) {
	e := dbms.MustNew("tidb")
	e.Quirks.DistinctDropsNulls = true
	opts := DefaultOptions()
	opts.Queries = 250
	opts.Seed = 6
	opts.MaxFindings = 50
	c, err := New(e, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Setup(2, 12); err != nil {
		t.Fatal(err)
	}
	findings := c.Run(opts)
	seen := map[string]bool{}
	for _, f := range findings {
		key := string(f.Kind) + "|" + f.Detail
		if seen[key] {
			t.Fatalf("duplicate finding: %v", f)
		}
		seen[key] = true
	}
}
