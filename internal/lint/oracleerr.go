package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// OracleErrDeny is the deny-list of APIs whose error results carry
// testing-oracle signal and therefore must never be discarded. Entries are
// "pkgpath.Func" or "pkgpath.Type.Method" (receiver pointerness erased;
// interface methods use the interface name). The uplan-lint command can
// extend it with -oracleerr.deny.
var OracleErrDeny = []string{
	// Engine surface: every call either mutates engine state or produces
	// the result/plan an oracle compares.
	"uplan/internal/dbms.Engine.Execute",
	"uplan/internal/dbms.Engine.Explain",
	"uplan/internal/dbms.Engine.ExplainAnalyze",
	"uplan/internal/dbms.Engine.Analyze",
	// Oracles. Oracle.Run is the interface-level entry every registered
	// technique is dispatched through: its error is the task's hard
	// failure, and a caller that discards it reports a silently-empty task
	// as a clean one.
	"uplan/internal/oracle.Oracle.Run",
	"uplan/internal/oracle.ApplySchema",
	"uplan/internal/oracle.Decoder.Decode",
	"uplan/internal/cert.Checker.CheckPair",
	"uplan/internal/cert.Checker.Run",
	"uplan/internal/cert.Checker.Estimate",
	"uplan/internal/bounds.Checker.Check",
	"uplan/internal/tlp.Check",
	"uplan/internal/qpg.Campaign.Setup",
	// Execution and conversion: a dropped error here silently turns a
	// finding into a non-finding.
	"uplan/internal/exec.Executor.Run",
	"uplan/internal/convert.Converter.Convert",
	"uplan/internal/convert.ArenaConverter.ConvertIn",
	"uplan/internal/convert.ConvertInto",
	// Store durability surface: a dropped error here silently un-journals
	// a finding — the crash that follows loses data the caller believed
	// durable. The campaign captures these sticky and joins them into
	// Run's error; ad-hoc callers must do no less.
	"uplan/internal/store.Store.AppendPlan",
	"uplan/internal/store.Store.AppendFinding",
	"uplan/internal/store.Store.AppendMeta",
	"uplan/internal/store.Store.Checkpoint",
	"uplan/internal/store.Store.Sync",
	"uplan/internal/store.Store.Close",
	// Binary codec surface: a dropped Encode/DecodeInto error hands a
	// half-built or silently-wrong plan downstream (the differential
	// oracle then compares garbage), a dropped Flush truncates the packed
	// corpus, and a dropped Close leaks the mmap or hides an unmap
	// failure.
	"uplan/internal/codec.Encode",
	"uplan/internal/codec.DecodeInto",
	"uplan/internal/codec.CorpusWriter.Flush",
	"uplan/internal/codec.CorpusReader.Close",
	// Service response-writing and shutdown surface: a dropped write error
	// means a client silently got half a response (the serve metrics count
	// these instead of ignoring them), and a dropped Shutdown/Close error
	// turns an abandoned drain into a fake-clean exit.
	"net/http.ResponseWriter.Write",
	"net/http.Server.Shutdown",
	"net/http.Server.Close",
	"net.Listener.Close",
}

// OracleErrWorkerAPIs lists worker-pool entry points: inside function
// literals passed to these, *any* discarded error is flagged (not just
// deny-listed callees), because a worker closure has no caller to hand
// the error to — signal dropped there is dropped for good.
var OracleErrWorkerAPIs = []string{
	"uplan/internal/pipeline.ForEachChunked",
	"uplan/internal/pipeline.ForEachChunkedCtx",
}

// oracleErrSentinels maps known error-message fragments to the errors.Is
// sentinel that should be matched instead. Used to sharpen the
// message-text-matching diagnostic.
var oracleErrSentinels = map[string]string{
	"unresolved column":        "exec.ErrUnresolvedColumn",
	"not plannable":            "cert.ErrUnplannable",
	"no cardinality estimate":  "cert.ErrNoEstimate",
	"exposes no estimate":      "cert.ErrNoEstimate",
	"no provable output-size":  "bounds.ErrNoBound",
}

// OracleErr generalizes the dropped-oracle-signal bug class: discarded
// error results on the oracle/exec/engine deny-list, error matching by
// message text where an errors.Is sentinel exists, and errors swallowed
// inside worker-pool closures.
var OracleErr = &Analyzer{
	Name: "oracleerr",
	Doc: "flags discarded errors on oracle/exec/engine APIs, message-text " +
		"error matching, and errors swallowed in worker closures",
	Run: runOracleErr,
}

func runOracleErr(pass *Pass) error {
	deny := map[string]bool{}
	for _, d := range OracleErrDeny {
		deny[d] = true
	}
	workerAPIs := map[string]bool{}
	for _, w := range OracleErrWorkerAPIs {
		workerAPIs[w] = true
	}

	// workerRanges holds the source ranges of function literals passed to
	// worker-pool APIs; discards inside them are held to the strict rule.
	var workerRanges []posRange
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !workerAPIs[funcFullName(calleeFunc(pass.Info, call))] {
				return true
			}
			for _, arg := range call.Args {
				if fl, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					workerRanges = append(workerRanges, posRange{fl.Pos(), fl.End()})
				}
			}
			return true
		})
	}
	inWorker := func(n ast.Node) bool {
		for _, r := range workerRanges {
			if r.start <= n.Pos() && n.Pos() < r.end {
				return true
			}
		}
		return false
	}

	denied := func(call *ast.CallExpr) (string, bool) {
		name := funcFullName(calleeFunc(pass.Info, call))
		return name, deny[name]
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				// Bare call statement: every result, error included, is
				// discarded.
				call, ok := ast.Unparen(st.X).(*ast.CallExpr)
				if !ok || len(errorResultIndexes(pass.Info, call)) == 0 {
					return true
				}
				if name, bad := denied(call); bad {
					pass.Reportf(st.Pos(), "error result of %s discarded (bare call); oracle signal is dropped", short(name))
				} else if inWorker(st) {
					pass.Reportf(st.Pos(), "error result of %s discarded inside a worker closure; record it in the task result or finding store", short(funcFullName(calleeFunc(pass.Info, call))))
				}
			case *ast.AssignStmt:
				checkAssignDiscard(pass, st, denied, inWorker)
			case *ast.CallExpr:
				checkTextMatch(pass, st)
			case *ast.BinaryExpr:
				checkErrorStringCompare(pass, st)
			}
			return true
		})
	}
	return nil
}

// checkAssignDiscard flags assignments that discard a deny-listed call's
// error result through the blank identifier: `_ = e.Analyze()` and
// `v, _ := e.Execute(q)` alike.
func checkAssignDiscard(pass *Pass, st *ast.AssignStmt, denied func(*ast.CallExpr) (string, bool), inWorker func(ast.Node) bool) {
	if len(st.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	errIdxs := errorResultIndexes(pass.Info, call)
	if len(errIdxs) == 0 {
		return
	}
	name, bad := denied(call)
	strict := !bad && inWorker(st)
	if !bad && !strict {
		return
	}
	for _, idx := range errIdxs {
		var lhs ast.Expr
		switch {
		case len(st.Lhs) == 1 && idx == 0:
			lhs = st.Lhs[0]
		case idx < len(st.Lhs):
			lhs = st.Lhs[idx]
		default:
			continue
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		if strict {
			name = funcFullName(calleeFunc(pass.Info, call))
			pass.Reportf(st.Pos(), "error result of %s discarded inside a worker closure; record it in the task result or finding store", short(name))
		} else {
			pass.Reportf(st.Pos(), "error result of %s assigned to _; oracle signal is dropped", short(name))
		}
	}
}

// checkTextMatch flags strings.Contains/HasPrefix/HasSuffix over
// err.Error(): message text is unstable and may match unrelated errors —
// the brittle filter class. When the literal matches a known sentinel's
// message the diagnostic names the errors.Is sentinel to use.
func checkTextMatch(pass *Pass, call *ast.CallExpr) {
	name := funcFullName(calleeFunc(pass.Info, call))
	switch name {
	case "strings.Contains", "strings.HasPrefix", "strings.HasSuffix":
	default:
		return
	}
	if len(call.Args) != 2 {
		return
	}
	for _, arg := range call.Args {
		if !isErrErrorCall(pass.Info, arg) {
			continue
		}
		msg := "match errors with errors.Is (or errors.As) instead of " + short(name) + " over err.Error(): message text is unstable and matches unrelated errors"
		if s := sentinelHint(pass, call); s != "" {
			msg += "; an errors.Is sentinel exists: " + s
		}
		pass.Reportf(call.Pos(), "%s", msg)
		return
	}
}

// checkErrorStringCompare flags `err.Error() == "..."` comparisons.
func checkErrorStringCompare(pass *Pass, be *ast.BinaryExpr) {
	if be.Op.String() != "==" && be.Op.String() != "!=" {
		return
	}
	if !isErrErrorCall(pass.Info, be.X) && !isErrErrorCall(pass.Info, be.Y) {
		return
	}
	pass.Reportf(be.Pos(), "comparing err.Error() text; match errors with errors.Is (or errors.As) instead")
}

// isErrErrorCall reports whether e is a call to the Error method of an
// error value.
func isErrErrorCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	tv, ok := info.Types[sel.X]
	return ok && isErrorType(tv.Type)
}

// sentinelHint scans the call's string literals for fragments of known
// sentinel messages.
func sentinelHint(pass *Pass, call *ast.CallExpr) string {
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.BasicLit)
		if !ok {
			continue
		}
		for frag, sentinel := range oracleErrSentinels {
			if strings.Contains(lit.Value, frag) {
				return sentinel
			}
		}
	}
	return ""
}

// short trims the module prefix off a deny-list name for readable
// diagnostics: "uplan/internal/dbms.Engine.Analyze" -> "dbms.Engine.Analyze".
func short(name string) string {
	if i := strings.LastIndex(name, "/"); i >= 0 {
		return name[i+1:]
	}
	return name
}
