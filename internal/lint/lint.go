// Package lint is uplan's custom static-analysis suite: three analyzers
// that mechanically enforce the contracts this codebase otherwise guards
// only by convention and code review.
//
//   - arenaescape: arena-backed plans and nodes must not escape a
//     core.PlanArena lifecycle (Reset / pool-put / long-lived worker
//     arena) without a Plan.Clone detach. This is the ownership rule
//     documented on core.PlanArena; violating it is a use-after-Reset.
//   - oracleerr: testing-oracle signal must not be dropped. Discarded
//     error results on the oracle/exec/engine API deny-list, message-text
//     error matching where an errors.Is sentinel exists, and errors
//     swallowed inside worker-pool closures are all findings — the exact
//     bug class a prior sweep fixed four instances of.
//   - hotalloc: functions or packages marked //uplan:hotpath must stay
//     free of known-allocating idioms the perf work eliminated: per-call
//     convert.For registry rebuilds, strings.Split(s, "\n") line
//     iteration, and fmt.Sprintf inside loops.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic, analysistest-style golden packages under
// testdata/) but is built purely on the standard library: packages are
// loaded from source and typechecked against compiler export data
// resolved through `go list -export`, so the tool needs no dependencies
// beyond the Go toolchain itself.
//
// # Silencing a finding
//
// A finding can be suppressed with a directive comment on the flagged
// line, or on the line directly above it:
//
//	//lint:allow <analyzer> <reason>
//
// The reason string is mandatory: an allow directive without one is
// itself reported. Suppressions are per-analyzer; there is no blanket
// "allow everything" form.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one analysis pass: a name, documentation, and the
// function that inspects a package and reports diagnostics.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -analyzers selection,
	// and //lint:allow directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run inspects pass.Pkg and reports findings through pass.Report.
	Run func(pass *Pass) error
}

// A Pass is the interface between the driver and one analyzer run over
// one package: the parsed and typechecked package plus the Report sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// hot records the //uplan:hotpath scope for this package; populated
	// by the driver before Run.
	hot hotScope

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzers returns the full suite in canonical order.
func Analyzers() []*Analyzer {
	return []*Analyzer{ArenaEscape, OracleErr, HotAlloc}
}

// Select resolves a comma-separated analyzer-name list ("" means all).
func Select(names string) ([]*Analyzer, error) {
	all := Analyzers()
	if names == "" {
		return all, nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q (have %s)", n, strings.Join(analyzerNames(all), ", "))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: empty analyzer selection %q", names)
	}
	return out, nil
}

func analyzerNames(as []*Analyzer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}

// Run applies the analyzers to every package and returns the surviving
// diagnostics in (file, line, column, analyzer) order. //lint:allow
// directives are honored here: a suppressed finding is dropped, and an
// allow directive missing its reason becomes a finding of its own.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		dirs := collectDirectives(pkg.Fset, pkg.Files)
		hot := collectHotScope(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				hot:      hot,
				report: func(d Diagnostic) {
					if dirs.allows(d.Analyzer, d.Pos) {
						return
					}
					diags = append(diags, d)
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		diags = append(diags, dirs.malformed...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// ---------------------------------------------------------- //lint:allow

var allowRe = regexp.MustCompile(`^//lint:allow\s+(\S+)\s*(.*)$`)

// directives indexes a package's //lint:allow comments by file and line.
type directives struct {
	// byLine maps file -> line -> analyzer names allowed on that line.
	byLine map[string]map[int][]string
	// malformed holds diagnostics for allow directives without a reason.
	malformed []Diagnostic
}

func collectDirectives(fset *token.FileSet, files []*ast.File) *directives {
	ds := &directives{byLine: map[string]map[int][]string{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				if strings.TrimSpace(m[2]) == "" {
					ds.malformed = append(ds.malformed, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  fmt.Sprintf("//lint:allow %s requires a reason string", m[1]),
					})
					continue
				}
				lines := ds.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					ds.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], m[1])
			}
		}
	}
	return ds
}

// allows reports whether a directive on the diagnostic's line, or on the
// line directly above it, names the analyzer.
func (ds *directives) allows(analyzer string, pos token.Position) bool {
	lines := ds.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// ------------------------------------------------------- //uplan:hotpath

// hotScope records which code the //uplan:hotpath directive covers: the
// whole package (directive in any file's package doc) or individual
// functions (directive in the function's doc comment).
type hotScope struct {
	pkg bool
	// funcs holds the body source ranges of hot functions.
	funcs []posRange
}

type posRange struct{ start, end token.Pos }

func hasHotDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == "//uplan:hotpath" {
			return true
		}
	}
	return false
}

func collectHotScope(fset *token.FileSet, files []*ast.File) hotScope {
	var hs hotScope
	for _, f := range files {
		if hasHotDirective(f.Doc) {
			hs.pkg = true
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hasHotDirective(fd.Doc) {
				continue
			}
			hs.funcs = append(hs.funcs, posRange{fd.Pos(), fd.End()})
		}
	}
	return hs
}

// InHotPath reports whether pos falls inside a //uplan:hotpath scope:
// anywhere in a marked package, or inside a marked function.
func (p *Pass) InHotPath(pos token.Pos) bool {
	if p.hot.pkg {
		return true
	}
	for _, r := range p.hot.funcs {
		if r.start <= pos && pos < r.end {
			return true
		}
	}
	return false
}
