// Package linttest is the analysistest analogue for uplan's lint
// framework: it loads a golden package from testdata, runs one analyzer
// over it, and checks the reported diagnostics against want comments in
// the source.
//
// A want comment holds one or more quoted or backquoted regular
// expressions and binds to the source line it sits on:
//
//	_ = e.Analyze() // want `assigned to _`
//
// Use a block form (/* want `...` */) when the line already carries a
// line comment — e.g. when the expectation targets a //lint:allow
// directive itself. Every diagnostic must match an unclaimed expectation
// on its line, and every expectation must be claimed by a diagnostic;
// files without want comments double as the false-positive corpus.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"uplan/internal/lint"
)

// Run loads testdata/src/<name> (relative to the calling test's working
// directory), typechecks it against the module's export data, applies the
// analyzer, and reports every mismatch between diagnostics and want
// comments as a test error.
func Run(t *testing.T, a *lint.Analyzer, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	moduleDir, err := findModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := lint.LoadDir(moduleDir, dir, "uplan/internal/lint/testdata/src/"+name)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	expects, err := collectWants(pkg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if !claim(expects, d.Pos.Filename, d.Pos.Line, d.Message) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: no diagnostic matched %q", filepath.Base(e.file), e.line, e.re)
		}
	}
}

// expectation is one want regex bound to a source line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantTokenRe matches one backquoted or double-quoted regex token inside
// a want comment.
var wantTokenRe = regexp.MustCompile("`[^`]*`|\"(?:\\\\.|[^\"\\\\])*\"")

func collectWants(pkg *lint.Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if strings.HasPrefix(text, "//") {
					text = text[2:]
				} else {
					text = strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
				}
				rest, ok := strings.CutPrefix(strings.TrimSpace(text), "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				toks := wantTokenRe.FindAllString(rest, -1)
				if len(toks) == 0 {
					return nil, fmt.Errorf("%s:%d: want comment with no quoted regex: %q", pos.Filename, pos.Line, c.Text)
				}
				for _, tok := range toks {
					pat, err := strconv.Unquote(tok)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want token %s: %v", pos.Filename, pos.Line, tok, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regex %q: %v", pos.Filename, pos.Line, pat, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out, nil
}

// claim marks the first unclaimed expectation on (file, line) whose regex
// matches msg, reporting whether one was found.
func claim(expects []*expectation, file string, line int, msg string) bool {
	for _, e := range expects {
		if e.matched || e.file != file || e.line != line {
			continue
		}
		if e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// findModuleRoot walks up from the working directory to the go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("linttest: no go.mod above the working directory")
		}
		dir = parent
	}
}
