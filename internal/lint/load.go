package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, parsed, and typechecked package ready for
// analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir for the given patterns
// and returns the decoded package stream. -export makes the toolchain
// write compiler export data for every listed package into the build
// cache, which is what lets the typechecker resolve imports without any
// third-party loader.
func goList(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,CgoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportMap indexes every listed package's export-data file by import
// path, for the gc importer's lookup function.
func exportMap(pkgs []listedPkg) map[string]string {
	m := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			m[p.ImportPath] = p.Export
		}
	}
	return m
}

// newImporter returns a types.Importer resolving through the export map.
func newImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for import %q (run `go build ./...` first?)", path)
		}
		return os.Open(f)
	})
}

// typecheck parses and typechecks one package directory from source.
func typecheck(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	files := make([]*ast.File, 0, len(goFiles))
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: importPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// Load lists the patterns relative to dir (the module root; "" means the
// current directory), typechecks every matching non-standard package from
// source, and returns them ready for analysis. Standard-library and
// dependency-only packages are consumed as export data, never analyzed.
// Test files are not loaded; the suite lints shipping code.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
	}
	exports := exportMap(listed)
	fset := token.NewFileSet()
	imp := newImporter(fset, exports)
	var out []*Package
	for _, p := range listed {
		if p.Standard || p.DepOnly {
			continue
		}
		if len(p.CgoFiles) > 0 {
			// Cgo files need the full build pipeline to typecheck; this
			// module has none, so skipping is a gate, not a loss.
			continue
		}
		pkg, err := typecheck(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("lint: typechecking %s: %w", p.ImportPath, err)
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// ------------------------------------------------- testdata package loading

var (
	testExportsOnce sync.Once
	testExports     map[string]string
	testExportsErr  error
)

// moduleExports builds (once per process) the export map for every module
// package and its dependencies, rooted at moduleDir. LoadDir uses it to
// resolve testdata imports of real uplan packages and the standard
// library.
func moduleExports(moduleDir string) (map[string]string, error) {
	testExportsOnce.Do(func() {
		listed, err := goList(moduleDir, []string{"./..."})
		if err != nil {
			testExportsErr = err
			return
		}
		testExports = exportMap(listed)
	})
	return testExports, testExportsErr
}

// LoadDir parses and typechecks a single directory of Go files that is
// not part of the module build — the analysistest-style golden packages
// under testdata/ — resolving its imports against the module's export
// data. importPath is the synthetic path the package is checked under.
func LoadDir(moduleDir, dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(goFiles)
	exports, err := moduleExports(moduleDir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newImporter(fset, exports)
	pkg, err := typecheck(fset, imp, importPath, dir, goFiles)
	if err != nil {
		return nil, fmt.Errorf("lint: typechecking %s: %w", dir, err)
	}
	return pkg, nil
}
