// Package hotalloc exercises the hotalloc analyzer: the allocating
// idioms are flagged only inside //uplan:hotpath scopes.
package hotalloc

import (
	"fmt"
	"strings"

	"uplan/internal/convert"
	"uplan/internal/core"
)

// hotConvert rebuilds its converter on every call.
//
//uplan:hotpath
func hotConvert(reg *core.Registry, raw string) (*core.Plan, error) {
	c, err := convert.For("postgresql", reg) // want `convert\.For rebuilds the converter per call`
	if err != nil {
		return nil, err
	}
	return c.Convert(raw)
}

// hotLines allocates a string-header slice per call just to count lines.
//
//uplan:hotpath
func hotLines(s string) int {
	lines := strings.Split(s, "\n") // want `strings\.Split over`
	return len(lines)
}

// hotSprintf formats inside the per-row loop.
//
//uplan:hotpath
func hotSprintf(keys []string) string {
	var out string
	for _, k := range keys {
		out += fmt.Sprintf("%s;", k) // want `fmt\.Sprintf inside a loop`
	}
	return out
}

// hotSprintfOnce formats once per call, outside any loop: allowed.
//
//uplan:hotpath
func hotSprintfOnce(k string) string {
	return fmt.Sprintf("label:%s", k)
}

// hotErrf builds an error inside a hot loop: error construction is the
// cold path even here, so fmt.Errorf is exempt.
//
//uplan:hotpath
func hotErrf(keys []string) error {
	for i, k := range keys {
		if k == "" {
			return fmt.Errorf("empty key at %d", i)
		}
	}
	return nil
}
