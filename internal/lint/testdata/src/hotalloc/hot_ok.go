package hotalloc

import (
	"fmt"
	"strings"

	"uplan/internal/convert"
	"uplan/internal/core"
)

// This file is the false-positive corpus: the same idioms off the hot
// path must produce zero diagnostics.

func coldSplit(s string) []string {
	return strings.Split(s, "\n")
}

func coldConvert(reg *core.Registry, raw string) (*core.Plan, error) {
	c, err := convert.For("postgresql", reg)
	if err != nil {
		return nil, err
	}
	return c.Convert(raw)
}

func coldSprintf(keys []string) string {
	var out string
	for _, k := range keys {
		out += fmt.Sprintf("%s;", k)
	}
	return out
}

// hotSplitOnComma splits on a delimiter other than newline: only the
// line-iteration idiom is flagged.
//
//uplan:hotpath
func hotSplitOnComma(s string) []string {
	return strings.Split(s, ",")
}
