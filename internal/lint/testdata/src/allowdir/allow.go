// Package allowdir exercises //lint:allow directive handling: same-line
// and line-above suppression, analyzer matching, and the mandatory
// reason string.
package allowdir

import "uplan/internal/dbms"

// sameLine is suppressed by a directive on the flagged line.
func sameLine(e *dbms.Engine) {
	_ = e.Analyze() //lint:allow oracleerr engine torn down next statement in the harness
}

// lineAbove is suppressed by a directive on the line directly above.
func lineAbove(e *dbms.Engine) {
	//lint:allow oracleerr timing loop; the same path is validated before measuring
	_ = e.Analyze()
}

// wrongAnalyzer names a different analyzer, so the finding survives.
func wrongAnalyzer(e *dbms.Engine) {
	//lint:allow hotalloc directive for another analyzer does not suppress this
	_ = e.Analyze() // want `error result of dbms\.Engine\.Analyze assigned to _`
}

// missingReason omits the mandatory reason: the directive is itself a
// finding and suppresses nothing.
func missingReason(e *dbms.Engine) {
	/* want `requires a reason string` */ //lint:allow oracleerr
	_ = e.Analyze() // want `error result of dbms\.Engine\.Analyze assigned to _`
}
