// Package arenaescape exercises the arenaescape analyzer: every want
// comment marks a PlanArena ownership-contract violation.
package arenaescape

import (
	"sync"

	"uplan/internal/convert"
	"uplan/internal/core"
	"uplan/internal/pipeline"
)

// result mirrors the pipeline record shape: the caller-visible slot a
// worker writes its plan into.
type result struct {
	Plan *core.Plan
	Err  error
}

// retResetLocal returns a plan that still aliases a local arena this
// function Resets: the classic use-after-Reset.
func retResetLocal(ac convert.ArenaConverter, raw string) *core.Plan {
	ar := core.NewPlanArena()
	p, err := ac.ConvertIn(raw, ar)
	if err != nil {
		return nil
	}
	ar.Reset()
	return p // want `arena-backed value p returned`
}

var arenaPool = sync.Pool{New: func() any { return core.NewPlanArena() }}

// retPooled puts the arena back in the pool while the plan still aliases
// its slabs: the next Get/Reset corrupts the returned plan.
func retPooled(ac convert.ArenaConverter, raw string) *core.Plan {
	ar := arenaPool.Get().(*core.PlanArena)
	p, _ := ac.ConvertIn(raw, ar)
	arenaPool.Put(ar)
	return p // want `arena-backed value p returned`
}

// nakedReturn leaks the same way through a named result.
func nakedReturn(ac convert.ArenaConverter, raw string) (p *core.Plan, err error) {
	ar := core.NewPlanArena()
	p, err = ac.ConvertIn(raw, ar)
	ar.Reset()
	return // want `arena-backed value p returned`
}

// worker reuses one arena across conversions, so everything built in it
// is invalidated by the next Reset.
type worker struct {
	arena *core.PlanArena
	conv  convert.ArenaConverter
}

// storeUndetached writes a still-aliased plan into the caller's result
// slice: the next record's Reset rewrites it in place.
func (w *worker) storeUndetached(raw string, out []result, i int) {
	w.arena.Reset()
	p, err := w.conv.ConvertIn(raw, w.arena)
	out[i].Plan = p // want `arena-backed value stored in out\[i\]\.Plan`
	out[i].Err = err
}

// sendUndetached hands an aliased plan to another goroutine while the
// worker keeps mutating the arena.
func sendUndetached(w *worker, raw string, ch chan *core.Plan) {
	p, _ := w.conv.ConvertIn(raw, w.arena)
	ch <- p // want `arena-backed value p sent on a channel`
}

// nodeCache keeps a node built in an arena that is Reset before the
// function returns.
type nodeCache struct {
	root *core.Node
}

func (c *nodeCache) keepNode() {
	ar := core.NewPlanArena()
	n := ar.NewNodeIn(core.Join, "HashJoin")
	c.root = n // want `arena-backed value stored in c\.root`
	ar.Reset()
}

// convertChunk is the ReuseArenas worker shape: the per-worker arena is
// Reset between records, so plans escaping into out must be detached
// first — these are not.
func convertChunk(ac convert.ArenaConverter, raws []string, out []result) {
	pipeline.ForEachChunked(len(raws), 4, 8,
		func() *core.PlanArena { return core.NewPlanArena() },
		func(ar *core.PlanArena, lo, hi int) {
			for i := lo; i < hi; i++ {
				ar.Reset()
				p, err := ac.ConvertIn(raws[i], ar)
				out[i] = result{Plan: p, Err: err} // want `arena-backed value stored in out\[\.\.\.\]`
			}
		},
		func(ar *core.PlanArena) {})
}
