package arenaescape

import (
	"uplan/internal/convert"
	"uplan/internal/core"
	"uplan/internal/pipeline"
)

// This file is the false-positive corpus: every function below follows
// the documented arena patterns and must produce zero diagnostics.

// cloneDetach is the canonical lifecycle: Clone detaches the plan before
// the arena is Reset, so returning it is safe.
func cloneDetach(ac convert.ArenaConverter, raw string) *core.Plan {
	ar := core.NewPlanArena()
	p, err := ac.ConvertIn(raw, ar)
	if err != nil {
		return nil
	}
	p = p.Clone()
	ar.Reset()
	return p
}

// paramArena is the converter contract: build into the caller-supplied
// arena and return the aliased plan — the caller owns the lifecycle.
func paramArena(ac convert.ArenaConverter, raw string, ar *core.PlanArena) (*core.Plan, error) {
	p, err := ac.ConvertIn(raw, ar)
	return p, err
}

// oneShot never Resets or pools its arena: the plan and arena die
// together under GC, which is the documented one-shot mode.
func oneShot(ac convert.ArenaConverter, raw string) *core.Plan {
	ar := core.NewPlanArena()
	p, _ := ac.ConvertIn(raw, ar)
	return p
}

// errClears covers the worker error branch: the reference is either
// nilled out or Clone-detached on every path before it escapes.
func errClears(ac convert.ArenaConverter, raw string, out []*core.Plan, i int) {
	ar := core.NewPlanArena()
	defer ar.Reset()
	p, err := ac.ConvertIn(raw, ar)
	if err != nil {
		p = nil
	} else {
		p = p.Clone()
	}
	out[i] = p
}

// convertChunkDetached is the corrected ReuseArenas worker: every plan is
// detached before it reaches the shared result slice.
func convertChunkDetached(ac convert.ArenaConverter, raws []string, out []result) {
	pipeline.ForEachChunked(len(raws), 4, 8,
		func() *core.PlanArena { return core.NewPlanArena() },
		func(ar *core.PlanArena, lo, hi int) {
			for i := lo; i < hi; i++ {
				ar.Reset()
				p, err := ac.ConvertIn(raws[i], ar)
				if p != nil {
					p = p.Clone()
				}
				out[i] = result{Plan: p, Err: err}
			}
		},
		func(ar *core.PlanArena) {})
}

// buildChildren grows a child list inside the caller's arena — the
// AppendChildIn producer under the converter contract.
func buildChildren(ar *core.PlanArena, parent *core.Node, n int) []*core.Node {
	var children []*core.Node
	for i := 0; i < n; i++ {
		children = ar.AppendChildIn(children, ar.NewNodeIn(core.Join, "NestedLoop"))
	}
	return children
}
