// Package hotallocpkg is hot in its entirety: the package doc carries
// the //uplan:hotpath directive, putting every function in scope.
//
//uplan:hotpath
package hotallocpkg

import "strings"

func lines(s string) []string {
	return strings.Split(s, "\n") // want `strings\.Split over`
}

func fields(s string) []string {
	return strings.Split(s, "|")
}
