// The codec-surface cases: a dropped Encode/DecodeInto error hands
// garbage to the differential oracle, a dropped Flush truncates the
// packed corpus, a dropped Close leaks the mmap. The handled variants at
// the bottom are the false-positive corpus, including CorpusWriter.Add —
// deliberately off the deny-list because its errors are sticky and
// resurface at Flush.

package oracleerr

import (
	"uplan/internal/codec"
	"uplan/internal/core"
)

// dropEncodeErr keeps the blob but loses the error that said it is not a
// complete encoding.
func dropEncodeErr(p *core.Plan) []byte {
	blob, _ := codec.Encode(p) // want `error result of codec\.Encode assigned to _`
	return blob
}

// dropDecodeErr hands a possibly half-built plan to the caller as if the
// decode succeeded.
func dropDecodeErr(data []byte, ar *core.PlanArena) *core.Plan {
	p, _ := codec.DecodeInto(data, ar) // want `error result of codec\.DecodeInto assigned to _`
	return p
}

// bareFlush truncates the packed corpus silently: nothing before the
// final Flush is durable.
func bareFlush(w *codec.CorpusWriter) {
	w.Flush() // want `error result of codec\.CorpusWriter\.Flush discarded \(bare call\)`
}

// blankReaderClose drops the unmap failure that distinguishes a released
// mapping from a leaked one.
func blankReaderClose(r *codec.CorpusReader) {
	_ = r.Close() // want `error result of codec\.CorpusReader\.Close assigned to _`
}

// bareReaderClose drops the same signal without even a blank assignment.
func bareReaderClose(r *codec.CorpusReader) {
	r.Close() // want `error result of codec\.CorpusReader\.Close discarded \(bare call\)`
}

// handledEncode is the correct shape: the error travels to the caller
// with the blob.
func handledEncode(p *core.Plan) ([]byte, error) {
	return codec.Encode(p)
}

// handledDecode observes the error before trusting the plan.
func handledDecode(data []byte, ar *core.PlanArena) *core.Plan {
	p, err := codec.DecodeInto(data, ar)
	if err != nil {
		return nil
	}
	return p
}

// deferredClose keeps the close error via the named return — handled,
// not dropped.
func deferredClose(r *codec.CorpusReader, ar *core.PlanArena) (err error) {
	defer func() {
		if cerr := r.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	_, err = r.Next(ar)
	return err
}

// stickyAddIsClean: CorpusWriter.Add is off the deny-list — its errors
// are sticky and resurface at Flush, which IS listed, so a bare Add in a
// loop body is the supported usage, not a dropped signal.
func stickyAddIsClean(w *codec.CorpusWriter, plans []*core.Plan) error {
	for _, p := range plans {
		w.Add(p)
	}
	return w.Flush()
}
