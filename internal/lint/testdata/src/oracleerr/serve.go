// The serve-surface cases: response-writing and shutdown APIs whose
// dropped errors fake out clients (half a response looks delivered) or
// supervisors (an abandoned drain looks clean). The handled variants at
// the bottom are the false-positive corpus for the same calls.

package oracleerr

import (
	"context"
	"net"
	"net/http"
)

// bareResponseWrite loses the only evidence the client never got the
// body.
func bareResponseWrite(w http.ResponseWriter, body []byte) {
	w.Write(body) // want `error result of http\.ResponseWriter\.Write discarded \(bare call\)`
}

// blankResponseWrite drops the same signal through the blank
// identifier, keeping only the byte count.
func blankResponseWrite(w http.ResponseWriter, body []byte) int {
	n, _ := w.Write(body) // want `error result of http\.ResponseWriter\.Write assigned to _`
	return n
}

// fakeCleanDrain reports a clean shutdown whatever actually happened.
func fakeCleanDrain(ctx context.Context, s *http.Server) {
	s.Shutdown(ctx) // want `error result of http\.Server\.Shutdown discarded \(bare call\)`
	_ = s.Close()   // want `error result of http\.Server\.Close assigned to _`
}

// leakListener drops the close error that distinguishes a released port
// from a leaked one.
func leakListener(l net.Listener) {
	l.Close() // want `error result of net\.Listener\.Close discarded \(bare call\)`
}

// countedResponseWrite is the handled shape serve's writeBody uses: the
// write error is observed (counted), not dropped.
func countedResponseWrite(w http.ResponseWriter, body []byte, writeErrors *int) {
	if _, err := w.Write(body); err != nil {
		*writeErrors++
	}
}

// collectedDrain joins every shutdown error for the caller — nothing to
// flag.
func collectedDrain(ctx context.Context, s *http.Server, l net.Listener) error {
	if err := s.Shutdown(ctx); err != nil {
		if cerr := s.Close(); cerr != nil {
			return cerr
		}
		return err
	}
	return l.Close()
}

// connCloseIsNotListenerClose: net.Conn.Close is deliberately off the
// deny-list (per-connection hygiene, not drain truthfulness), so this
// discard is clean.
func connCloseIsNotListenerClose(c net.Conn) {
	c.Close()
}
