package oracleerr

import (
	"errors"
	"strings"

	"uplan/internal/bounds"
	"uplan/internal/dbms"
	"uplan/internal/oracle"
	"uplan/internal/pipeline"
	"uplan/internal/store"
)

// This file is the false-positive corpus: handled errors, sentinel
// matching, and recorded worker errors must produce zero diagnostics.

var errGhost = errors.New("ghost table")

// handledAnalyze propagates the signal.
func handledAnalyze(e *dbms.Engine) error {
	if err := e.Analyze(); err != nil {
		return err
	}
	return nil
}

// sentinelMatch is the approved alternative to message matching.
func sentinelMatch(err error) bool {
	return errors.Is(err, errGhost)
}

// containsOverPlainString searches ordinary text, not err.Error().
func containsOverPlainString(s string) bool {
	return strings.Contains(s, "unresolved column")
}

// dropLocal discards a non-deny-listed error outside any worker closure:
// the caller's judgment call, not an oracle drop.
func dropLocal() {
	_ = localErr()
}

func localErr() error { return nil }

// campaignWorkersRecord routes every worker error into the result slice
// the drain step inspects.
func campaignWorkersRecord(e *dbms.Engine, qs []string, errs []error) {
	pipeline.ForEachChunked(len(qs), 2, 4,
		func() int { return 0 },
		func(s, lo, hi int) {
			for i := lo; i < hi; i++ {
				errs[i] = runOne(e, qs[i])
			}
		},
		func(s int) {})
}

// dispatchHandled runs an oracle the way the orchestrator does: the
// report and the hard failure both flow into the task delta.
func dispatchHandled(o oracle.Oracle, tc *oracle.TaskContext) (oracle.TaskReport, error) {
	rep, err := o.Run(tc)
	return rep, err
}

// boundsSentinelMatch classifies bounds skips the approved way.
func boundsSentinelMatch(c *bounds.Checker, q string) (bool, error) {
	v, err := c.Check(q)
	if errors.Is(err, bounds.ErrNoBound) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return v != nil, nil
}

// journalHandled captures the store's durability errors sticky, the way
// the campaign store does.
func journalHandled(s *store.Store, f store.Finding, sticky *error) {
	if _, err := s.AppendFinding(f); err != nil && *sticky == nil {
		*sticky = err
	}
	if err := s.Close(); err != nil && *sticky == nil {
		*sticky = err
	}
}
