// Package oracleerr exercises the oracleerr analyzer: dropped oracle
// signal, message-text error matching, and worker-closure discards. The
// first two functions are the exact bug shapes a prior sweep fixed in
// the campaign oracles.
package oracleerr

import (
	"strings"

	"uplan/internal/bounds"
	"uplan/internal/dbms"
	"uplan/internal/oracle"
	"uplan/internal/pipeline"
	"uplan/internal/sqlancer"
	"uplan/internal/store"
)

// dropAnalyze is the post-mutation ANALYZE drop: a failed statistics
// refresh is itself a finding, silently discarded here.
func dropAnalyze(e *dbms.Engine) {
	_ = e.Analyze() // want `error result of dbms\.Engine\.Analyze assigned to _`
}

// bareAnalyze drops the same signal without even a blank assignment.
func bareAnalyze(e *dbms.Engine) {
	e.Analyze() // want `error result of dbms\.Engine\.Analyze discarded \(bare call\)`
}

// dropExecuteErr keeps the rows but discards the error that would have
// distinguished a crash finding from an empty result.
func dropExecuteErr(e *dbms.Engine, q string) int {
	res, _ := e.Execute(q) // want `error result of dbms\.Engine\.Execute assigned to _`
	if res == nil {
		return 0
	}
	return len(res.Rows)
}

// campaignWorkers swallows a non-deny-listed error inside a worker
// closure, where no caller can ever observe it.
func campaignWorkers(e *dbms.Engine, qs []string) {
	pipeline.ForEachChunked(len(qs), 2, 4,
		func() int { return 0 },
		func(s, lo, hi int) {
			for i := lo; i < hi; i++ {
				_ = runOne(e, qs[i]) // want `error result of oracleerr\.runOne discarded inside a worker closure`
			}
		},
		func(s int) {})
}

func runOne(e *dbms.Engine, q string) error {
	_, err := e.Execute(q)
	return err
}

// brittleFilter matches an error by message fragment where an errors.Is
// sentinel exists.
func brittleFilter(err error) bool {
	return strings.Contains(err.Error(), "unresolved column") // want `an errors\.Is sentinel exists: exec\.ErrUnresolvedColumn`
}

// prefixFilter is the same brittle class without a known sentinel.
func prefixFilter(err error) bool {
	return strings.HasPrefix(err.Error(), "exec:") // want `match errors with errors\.Is`
}

// compareText string-compares the rendered error.
func compareText(err error) bool {
	return err.Error() == "ghost table" // want `comparing err\.Error\(\) text`
}

// dropOracleRun dispatches a registered oracle but drops the hard-failure
// error: a task that never set up its schema reports as a clean zero.
func dropOracleRun(o oracle.Oracle, tc *oracle.TaskContext) oracle.TaskReport {
	rep, _ := o.Run(tc) // want `error result of oracle\.Oracle\.Run assigned to _`
	return rep
}

// dropSchemaAndDecode discards the shared setup and decode errors every
// generator-driven oracle depends on.
func dropSchemaAndDecode(e *dbms.Engine, gen *sqlancer.Generator, d *oracle.Decoder, s string) {
	oracle.ApplySchema(e, gen, 2, 12) // want `error result of oracle\.ApplySchema discarded \(bare call\)`
	_, _ = d.Decode(s)                // want `error result of oracle\.Decoder\.Decode assigned to _`
}

// dropBoundsCheck keeps the violation but discards the error that
// distinguishes an unbounded skip from a plan-conversion finding.
func dropBoundsCheck(c *bounds.Checker, q string) *bounds.Violation {
	v, _ := c.Check(q) // want `error result of bounds\.Checker\.Check assigned to _`
	return v
}

// brittleBoundFilter matches the bounds skip sentinel by message text.
func brittleBoundFilter(err error) bool {
	return strings.Contains(err.Error(), "no provable output-size bound") // want `an errors\.Is sentinel exists: bounds\.ErrNoBound`
}

// dropDurability discards the store's durability errors: the finding
// looks journaled but may not survive the next crash.
func dropDurability(s *store.Store, f store.Finding) {
	_, _ = s.AppendFinding(f) // want `error result of store\.Store\.AppendFinding assigned to _`
	_ = s.Checkpoint(store.TaskProgress{Engine: "postgresql", Oracle: "qpg", Done: true}) // want `error result of store\.Store\.Checkpoint assigned to _`
	s.Close() // want `error result of store\.Store\.Close discarded \(bare call\)`
}
