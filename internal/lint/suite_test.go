package lint_test

import (
	"strings"
	"testing"

	"uplan/internal/lint"
	"uplan/internal/lint/linttest"
)

func TestArenaEscape(t *testing.T) { linttest.Run(t, lint.ArenaEscape, "arenaescape") }

func TestOracleErr(t *testing.T) { linttest.Run(t, lint.OracleErr, "oracleerr") }

func TestHotAlloc(t *testing.T) { linttest.Run(t, lint.HotAlloc, "hotalloc") }

// TestHotAllocPackageScope checks the package-doc form of the directive.
func TestHotAllocPackageScope(t *testing.T) { linttest.Run(t, lint.HotAlloc, "hotallocpkg") }

// TestAllowDirectives checks //lint:allow suppression and the mandatory
// reason string.
func TestAllowDirectives(t *testing.T) { linttest.Run(t, lint.OracleErr, "allowdir") }

func TestSelect(t *testing.T) {
	all, err := lint.Select("")
	if err != nil || len(all) != 3 {
		t.Fatalf("Select(\"\") = %d analyzers, err %v; want the full suite of 3", len(all), err)
	}
	two, err := lint.Select("hotalloc, oracleerr")
	if err != nil || len(two) != 2 {
		t.Fatalf("Select(\"hotalloc, oracleerr\") = %d analyzers, err %v; want 2", len(two), err)
	}
	if two[0].Name != "hotalloc" || two[1].Name != "oracleerr" {
		t.Fatalf("Select kept wrong analyzers: %s, %s", two[0].Name, two[1].Name)
	}
	if _, err := lint.Select("nosuch"); err == nil || !strings.Contains(err.Error(), "unknown analyzer") {
		t.Fatalf("Select(\"nosuch\") err = %v; want unknown-analyzer error", err)
	}
}
