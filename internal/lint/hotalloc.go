package lint

import (
	"go/ast"
	"strconv"
)

// HotAlloc guards the perf work: inside //uplan:hotpath scopes (a marked
// function, or every function of a package whose package doc carries the
// directive) it flags the known-allocating idioms the optimization passes
// eliminated, so they cannot silently creep back in:
//
//   - convert.For: builds a converter against a freshly resolved registry
//     view per call; hot paths must use convert.Cached or a worker-local
//     converter cache.
//   - strings.Split(s, "\n"): allocates a string-header slice per call
//     (one header per line); hot paths iterate lines with an index-based
//     cursor (see convert's line iterator).
//   - fmt.Sprintf inside a loop: one (or more) allocation per iteration
//     for formatting machinery; hoist or build with strconv/append.
//     (fmt.Errorf is deliberately exempt: error construction sits on the
//     cold path even inside hot loops.)
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "flags known-allocating idioms (convert.For, strings.Split line " +
		"iteration, fmt.Sprintf in loops) inside //uplan:hotpath scopes",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		// Loop-body ranges, for the Sprintf-in-loop check.
		var loops []posRange
		ast.Inspect(f, func(n ast.Node) bool {
			switch l := n.(type) {
			case *ast.ForStmt:
				loops = append(loops, posRange{l.Body.Pos(), l.Body.End()})
			case *ast.RangeStmt:
				loops = append(loops, posRange{l.Body.Pos(), l.Body.End()})
			}
			return true
		})
		inLoop := func(n ast.Node) bool {
			for _, r := range loops {
				if r.start <= n.Pos() && n.Pos() < r.end {
					return true
				}
			}
			return false
		}

		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !pass.InHotPath(call.Pos()) {
				return true
			}
			switch funcFullName(calleeFunc(pass.Info, call)) {
			case "uplan/internal/convert.For":
				pass.Reportf(call.Pos(), "convert.For rebuilds the converter per call on a hot path; use convert.Cached or a worker-local converter cache")
			case "strings.Split", "strings.SplitAfter":
				if len(call.Args) == 2 && isStringLit(call.Args[1], "\n") {
					pass.Reportf(call.Pos(), "strings.Split over \"\\n\" allocates one string header per line on a hot path; iterate lines with an index cursor instead")
				}
			case "fmt.Sprintf":
				if inLoop(call) {
					pass.Reportf(call.Pos(), "fmt.Sprintf inside a loop on a hot path allocates per iteration; hoist it or build with strconv/append")
				}
			}
			return true
		})
	}
	return nil
}

// isStringLit reports whether e is the string literal with value want.
func isStringLit(e ast.Expr, want string) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok {
		return false
	}
	v, err := strconv.Unquote(lit.Value)
	return err == nil && v == want
}
