package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// ArenaEscape enforces the core.PlanArena ownership contract: a plan or
// node built inside an arena aliases the arena's slabs and is invalidated
// by the next Reset (or by the arena's return to a pool), so any such
// value that outlives the arena's lifecycle — returned from a function
// that Resets/pools the arena, stored into a long-lived field, sent on a
// channel, or built in a long-lived (field/captured) arena and handed
// out — must first be detached with Plan.Clone.
//
// Values are produced by ConvertIn (the convert.ArenaConverter method),
// convert.ConvertInto, and the arena's own NewNodeIn/AppendChildIn.
// Building in a caller-supplied arena parameter and returning the result
// is the converters' documented contract and is never flagged; neither is
// a one-shot local arena that is never Reset or pooled.
var ArenaEscape = &Analyzer{
	Name: "arenaescape",
	Doc: "flags arena-backed plan values escaping a PlanArena lifecycle " +
		"(Reset, pool-put, or long-lived worker arena) without a Plan.Clone detach",
	Run: runArenaEscape,
}

func runArenaEscape(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			newEscapeCheck(pass, fd).run()
		}
	}
	return nil
}

// arenaClass says how long the arena producing a value lives relative to
// the function under analysis.
type arenaClass int

const (
	arenaLocal    arenaClass = iota // declared in this function
	arenaParam                      // caller-owned: returning aliased values is the contract
	arenaLongLive                   // struct field, captured, or package-level: outlives the call
)

// taint tracks one location currently holding an undetached arena value.
type taint struct {
	arenaKey  string     // identity of the producing arena
	arenaName string     // source rendering, for diagnostics
	class     arenaClass // lifetime class of that arena
	pos       token.Pos  // where the value was produced or stored
	outside   bool       // location is a long-lived (non-local) l-value
	desc      string     // source rendering of the location
}

type escapeCheck struct {
	pass *Pass
	fn   *ast.FuncDecl

	// params holds every parameter/receiver object of the function and of
	// any function literal nested in it.
	params map[types.Object]bool
	// results holds the named result objects, for naked-return checks.
	results []types.Object
	// bounded marks arenas whose lifecycle visibly ends in this function:
	// a Reset() call or a pool Put.
	bounded map[string]bool
	// taints maps location keys to their live taint.
	taints map[string]*taint
}

func newEscapeCheck(pass *Pass, fn *ast.FuncDecl) *escapeCheck {
	return &escapeCheck{
		pass:    pass,
		fn:      fn,
		params:  map[types.Object]bool{},
		bounded: map[string]bool{},
		taints:  map[string]*taint{},
	}
}

func (ec *escapeCheck) run() {
	ec.collectFrame()
	ec.collectLifecycle()
	ec.walk()
	// Whatever is still tainted at function end and lives in a long-lived
	// location has escaped the lifecycle for good.
	for _, t := range ec.taints {
		if t.outside && ec.escapes(t) {
			ec.report(t.pos, "arena-backed value stored in %s", t)
		}
	}
}

// escapes reports whether an undetached value of taint t outlives its
// arena: the arena is Reset or pooled somewhere in this function, or the
// arena itself is long-lived (worker/campaign field, captured variable).
func (ec *escapeCheck) escapes(t *taint) bool {
	return t.class == arenaLongLive || ec.bounded[t.arenaKey]
}

func (ec *escapeCheck) report(pos token.Pos, format string, t *taint) {
	how := "it is reused through arena " + t.arenaName
	if ec.bounded[t.arenaKey] {
		how = "arena " + t.arenaName + " is Reset or pooled in this function"
	}
	ec.pass.Reportf(pos, format+" without Plan.Clone detach; "+how, t.desc)
}

// collectFrame gathers parameter/receiver and named-result objects.
func (ec *escapeCheck) collectFrame() {
	addFields := func(fl *ast.FieldList, dst *[]types.Object) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := ec.pass.Info.Defs[name]; obj != nil {
					if dst != nil {
						*dst = append(*dst, obj)
					} else {
						ec.params[obj] = true
					}
				}
			}
		}
	}
	addFields(ec.fn.Recv, nil)
	addFields(ec.fn.Type.Params, nil)
	addFields(ec.fn.Type.Results, &ec.results)
	ast.Inspect(ec.fn.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			addFields(fl.Type.Params, nil)
		}
		return true
	})
}

// collectLifecycle finds Reset calls and pool Puts, marking their arenas
// as lifecycle-bounded regardless of where in the function they appear
// (workers Reset before converting; pooled paths Reset after).
func (ec *escapeCheck) collectLifecycle() {
	ast.Inspect(ec.fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Reset":
			if ec.typeOf(sel.X) != nil && isPlanArenaPtr(ec.typeOf(sel.X)) {
				key, _, _ := ec.arenaOf(sel.X)
				ec.bounded[key] = true
			}
		case "Put":
			for _, arg := range call.Args {
				if t := ec.typeOf(arg); t != nil && isPlanArenaPtr(t) {
					key, _, _ := ec.arenaOf(arg)
					ec.bounded[key] = true
				}
			}
		}
		return true
	})
}

func (ec *escapeCheck) typeOf(e ast.Expr) types.Type {
	if tv, ok := ec.pass.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// arenaOf classifies the arena-valued expression: a stable identity key,
// its source rendering, and its lifetime class.
func (ec *escapeCheck) arenaOf(e ast.Expr) (key, name string, class arenaClass) {
	e = ast.Unparen(e)
	name = types.ExprString(e)
	switch x := e.(type) {
	case *ast.Ident:
		obj := ec.pass.Info.ObjectOf(x)
		if obj == nil {
			return "a:" + name, name, arenaLocal
		}
		key = fmt.Sprintf("o:%p", obj)
		switch {
		case ec.params[obj]:
			return key, name, arenaParam
		case !ec.inFunc(obj.Pos()):
			return key, name, arenaLongLive // captured or package-level
		default:
			return key, name, arenaLocal
		}
	case *ast.SelectorExpr:
		// c.arena, w.arena: a struct field — long-lived by construction
		// (per-worker / per-campaign reuse is the only reason to hold an
		// arena in a field).
		return "a:" + ec.pathKey(x), name, arenaLongLive
	default:
		return "a:" + name, name, arenaLocal
	}
}

// inFunc reports whether pos falls within the function under analysis.
func (ec *escapeCheck) inFunc(pos token.Pos) bool {
	return ec.fn.Pos() <= pos && pos < ec.fn.End()
}

// pathKey renders an l-value chain (res.Plan, w.convs[k].conv) into a key
// that is stable for the same object path.
func (ec *escapeCheck) pathKey(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := ec.pass.Info.ObjectOf(x); obj != nil {
			return fmt.Sprintf("o:%p", obj)
		}
		return x.Name
	case *ast.SelectorExpr:
		return ec.pathKey(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return ec.pathKey(x.X) + "[]"
	default:
		return types.ExprString(e)
	}
}

// lvalue describes an assignment target.
type lvalue struct {
	key     string
	desc    string
	outside bool // long-lived: field of param/receiver/captured/global, or global
	ok      bool
}

func (ec *escapeCheck) lvalueOf(e ast.Expr) lvalue {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return lvalue{}
		}
		obj := ec.pass.Info.ObjectOf(x)
		if obj == nil {
			return lvalue{}
		}
		return lvalue{
			key:     fmt.Sprintf("o:%p", obj),
			desc:    x.Name,
			outside: !ec.inFunc(obj.Pos()),
			ok:      true,
		}
	case *ast.SelectorExpr:
		root := selRoot(x)
		if root == nil {
			return lvalue{}
		}
		if obj := ec.pass.Info.ObjectOf(root); obj != nil {
			if _, isPkg := obj.(*types.PkgName); isPkg {
				return lvalue{key: ec.pathKey(x), desc: types.ExprString(x), outside: true, ok: true}
			}
			outside := ec.params[obj] || !ec.inFunc(obj.Pos())
			return lvalue{key: ec.pathKey(x), desc: types.ExprString(x), outside: outside, ok: true}
		}
		return lvalue{}
	case *ast.IndexExpr:
		lv := ec.lvalueOf(x.X)
		if !lv.ok {
			return lvalue{}
		}
		// Rebinding a parameter ident is local, but storing through a
		// parameter slice/map (out[i] = p) is caller-visible.
		outside := lv.outside
		if root := selRoot(x.X); root != nil {
			if obj := ec.pass.Info.ObjectOf(root); obj != nil && ec.params[obj] {
				outside = true
			}
		}
		return lvalue{key: lv.key + "[]", desc: lv.desc + "[...]", outside: outside, ok: true}
	default:
		return lvalue{}
	}
}

// selRoot returns the identifier at the base of a selector/index chain.
func selRoot(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// producerArena returns the arena expression when call builds an
// arena-aliasing value: ConvertIn (method or interface), ConvertInto, or
// the arena's own NewNodeIn/AppendChildIn. A nil or absent arena argument
// means heap mode and produces nothing.
func (ec *escapeCheck) producerArena(call *ast.CallExpr) (ast.Expr, bool) {
	f := calleeFunc(ec.pass.Info, call)
	if f == nil {
		return nil, false
	}
	switch f.Name() {
	case "NewNodeIn", "AppendChildIn":
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return nil, false
		}
		if t := ec.typeOf(sel.X); t != nil && isPlanArenaPtr(t) {
			return sel.X, true
		}
	case "ConvertIn":
		for _, arg := range call.Args {
			if t := ec.typeOf(arg); t != nil && isPlanArenaPtr(t) {
				return arg, true
			}
		}
	case "ConvertInto":
		if funcFullName(f) != "uplan/internal/convert.ConvertInto" {
			return nil, false
		}
		for _, arg := range call.Args {
			if t := ec.typeOf(arg); t != nil && isPlanArenaPtr(t) {
				return arg, true
			}
		}
	}
	return nil, false
}

// isCloneCall reports whether e is a call to a method named Clone — the
// detach operation.
func isCloneCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Clone"
}

// taintedIn returns a taint referenced by an identifier inside e
// (composite literals, plain idents, unary &) — the value-propagation
// forms; call arguments do not propagate (passing a plan to a reader is
// legal).
func (ec *escapeCheck) taintedIn(e ast.Expr) *taint {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := ec.pass.Info.ObjectOf(x); obj != nil {
			return ec.taints[fmt.Sprintf("o:%p", obj)]
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return ec.taintedIn(x.X)
		}
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if t := ec.taintedIn(elt); t != nil {
				return t
			}
		}
	case *ast.CallExpr:
		// append(dst, x...) propagates: the arena nodes are now reachable
		// from dst.
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" {
			for _, arg := range x.Args {
				if t := ec.taintedIn(arg); t != nil {
					return t
				}
			}
		}
	}
	return nil
}

// walk runs the ordered taint pass: ast.Inspect visits statements in
// source order, which stands in for control-flow order well enough for
// the lifecycle patterns this codebase uses (taint, maybe clone, then
// escape).
func (ec *escapeCheck) walk() {
	ast.Inspect(ec.fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			ec.assign(st)
		case *ast.ReturnStmt:
			ec.returns(st)
		case *ast.SendStmt:
			if t := ec.taintedIn(st.Value); t != nil && ec.escapes(t) {
				tc := *t
				tc.desc = types.ExprString(st.Value)
				ec.report(st.Value.Pos(), "arena-backed value %s sent on a channel", &tc)
			}
		}
		return true
	})
}

func (ec *escapeCheck) assign(st *ast.AssignStmt) {
	// Producer form: lhs0[, err] := producer(...).
	if len(st.Rhs) == 1 {
		if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
			if arenaExpr, ok := ec.producerArena(call); ok {
				key, name, class := ec.arenaOf(arenaExpr)
				lv := ec.lvalueOf(st.Lhs[0])
				if lv.ok {
					ec.taints[lv.key] = &taint{
						arenaKey:  key,
						arenaName: name,
						class:     class,
						pos:       st.Pos(),
						outside:   lv.outside,
						desc:      lv.desc,
					}
				}
				return
			}
		}
	}
	// General form: pair up lhs/rhs when they align, otherwise treat each
	// lhs against the single rhs.
	for i, lhs := range st.Lhs {
		var rhs ast.Expr
		switch {
		case len(st.Rhs) == len(st.Lhs):
			rhs = st.Rhs[i]
		case len(st.Rhs) == 1:
			rhs = st.Rhs[0]
		default:
			continue
		}
		lv := ec.lvalueOf(lhs)
		if !lv.ok {
			continue
		}
		switch {
		case isCloneCall(rhs):
			// p = p.Clone(): the canonical detach.
			delete(ec.taints, lv.key)
		default:
			if t := ec.taintedIn(rhs); t != nil {
				nt := *t
				nt.pos = st.Pos()
				nt.outside = lv.outside
				nt.desc = lv.desc
				ec.taints[lv.key] = &nt
			} else {
				// Reassigned to an unrelated (or nil) value.
				delete(ec.taints, lv.key)
			}
		}
	}
}

func (ec *escapeCheck) returns(st *ast.ReturnStmt) {
	if len(st.Results) == 0 {
		// Naked return: named results escape.
		for _, obj := range ec.results {
			if t := ec.taints[fmt.Sprintf("o:%p", obj)]; t != nil && ec.escapes(t) {
				tc := *t
				tc.desc = obj.Name()
				ec.report(st.Pos(), "arena-backed value %s returned", &tc)
			}
		}
		return
	}
	for _, res := range st.Results {
		if t := ec.taintedIn(res); t != nil && ec.escapes(t) {
			tc := *t
			tc.desc = types.ExprString(res)
			ec.report(res.Pos(), "arena-backed value %s returned", &tc)
		}
	}
}
