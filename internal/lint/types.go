package lint

import (
	"go/ast"
	"go/types"
)

// corePkgPath is the package whose PlanArena lifecycle arenaescape
// enforces.
const corePkgPath = "uplan/internal/core"

// calleeFunc resolves a call expression to its static callee, when there
// is one (method values, interface methods, and generic functions all
// resolve; calls through function-typed variables do not).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// funcFullName renders a callee as the deny-list / match key format:
// "pkgpath.Func" for package functions, "pkgpath.Type.Method" for methods
// (the receiver's pointerness is erased; interface methods use the
// interface type's name).
func funcFullName(f *types.Func) string {
	if f == nil {
		return ""
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return f.Name()
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok && n.Obj() != nil {
			name := n.Obj().Name() + "." + f.Name()
			if n.Obj().Pkg() != nil {
				return n.Obj().Pkg().Path() + "." + name
			}
			return name // universe types: error.Error
		}
		return f.Name()
	}
	if f.Pkg() != nil {
		return f.Pkg().Path() + "." + f.Name()
	}
	return f.Name()
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// errorResultIndexes returns the positions of error-typed results in the
// call's result tuple (empty when the call returns no error).
func errorResultIndexes(info *types.Info, call *ast.CallExpr) []int {
	tv, ok := info.Types[call]
	if !ok {
		return nil
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		var out []int
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				out = append(out, i)
			}
		}
		return out
	default:
		if isErrorType(t) {
			return []int{0}
		}
	}
	return nil
}

// isPlanArenaPtr reports whether t is *core.PlanArena.
func isPlanArenaPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == corePkgPath && n.Obj().Name() == "PlanArena"
}

// exprObj resolves a simple identifier expression to its object.
func exprObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.ObjectOf(id)
}
