// Package catalog maintains schema metadata and table statistics for the
// simulated engines: table and index definitions plus the statistics
// (row counts, distinct values, min/max, equi-depth histograms) that feed
// the planner's cardinality estimation.
package catalog

import (
	"fmt"
	"sort"
	"strings"

	"uplan/internal/datum"
)

// ColType enumerates column types.
type ColType uint8

// Column types of the engine's SQL subset.
const (
	TInt ColType = iota
	TFloat
	TText
	TBool
)

func (t ColType) String() string {
	switch t {
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TText:
		return "TEXT"
	case TBool:
		return "BOOL"
	}
	return "?"
}

// ParseColType converts a normalized SQL type name to a ColType.
func ParseColType(s string) (ColType, error) {
	switch strings.ToUpper(s) {
	case "INT", "INTEGER":
		return TInt, nil
	case "FLOAT", "REAL", "DECIMAL":
		return TFloat, nil
	case "TEXT", "VARCHAR", "DATE":
		return TText, nil
	case "BOOL", "BOOLEAN":
		return TBool, nil
	}
	return 0, fmt.Errorf("catalog: unknown column type %q", s)
}

// Column describes one table column.
type Column struct {
	Name       string
	Type       ColType
	NotNull    bool
	PrimaryKey bool
}

// Index describes a secondary (or primary) index.
type Index struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
	Primary bool
}

// Table describes one stored table.
type Table struct {
	Name    string
	Columns []Column
	Indexes []*Index
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Column returns the named column definition, or nil.
func (t *Table) Column(name string) *Column {
	if i := t.ColumnIndex(name); i >= 0 {
		return &t.Columns[i]
	}
	return nil
}

// IndexOn returns the first index whose leading column is the named column,
// or nil.
func (t *Table) IndexOn(column string) *Index {
	for _, ix := range t.Indexes {
		if len(ix.Columns) > 0 && strings.EqualFold(ix.Columns[0], column) {
			return ix
		}
	}
	return nil
}

// UniqueOn reports whether the named column is, by itself, a key of the
// table: declared PRIMARY KEY, or covered by a single-column unique (or
// primary) index. A multi-column unique index keys only the column
// combination, so it does not qualify. Nil-safe: a nil table, or a
// ghost table registered with no columns and no indexes, has no keys.
func (t *Table) UniqueOn(column string) bool {
	if t == nil {
		return false
	}
	if c := t.Column(column); c != nil && c.PrimaryKey {
		return true
	}
	for _, ix := range t.Indexes {
		if ix != nil && (ix.Unique || ix.Primary) &&
			len(ix.Columns) == 1 && strings.EqualFold(ix.Columns[0], column) {
			return true
		}
	}
	return false
}

// PrimaryKeyColumns returns the declared PRIMARY KEY column names in
// definition order. Nil-safe; empty for keyless and ghost tables.
func (t *Table) PrimaryKeyColumns() []string {
	if t == nil {
		return nil
	}
	var out []string
	for _, c := range t.Columns {
		if c.PrimaryKey {
			out = append(out, c.Name)
		}
	}
	return out
}

// UniqueColumns returns every column that alone keys the table (see
// UniqueOn), in column definition order, without duplicates. Nil-safe.
func (t *Table) UniqueColumns() []string {
	if t == nil {
		return nil
	}
	var out []string
	for _, c := range t.Columns {
		if t.UniqueOn(c.Name) {
			out = append(out, c.Name)
		}
	}
	return out
}

// Schema is a collection of tables with their statistics.
type Schema struct {
	tables map[string]*Table
	order  []string
	stats  map[string]*TableStats
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{
		tables: map[string]*Table{},
		stats:  map[string]*TableStats{},
	}
}

// AddTable registers a table definition. It fails if the name is taken.
func (s *Schema) AddTable(t *Table) error {
	key := strings.ToLower(t.Name)
	if _, ok := s.tables[key]; ok {
		return fmt.Errorf("catalog: table %q already exists", t.Name)
	}
	s.tables[key] = t
	s.order = append(s.order, key)
	return nil
}

// DropTable removes a table and its statistics.
func (s *Schema) DropTable(name string) {
	key := strings.ToLower(name)
	delete(s.tables, key)
	delete(s.stats, key)
	for i, k := range s.order {
		if k == key {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// Table returns the named table, or nil.
func (s *Schema) Table(name string) *Table {
	return s.tables[strings.ToLower(name)]
}

// Tables returns all tables in creation order.
func (s *Schema) Tables() []*Table {
	out := make([]*Table, 0, len(s.order))
	for _, k := range s.order {
		out = append(out, s.tables[k])
	}
	return out
}

// SetStats installs statistics for a table.
func (s *Schema) SetStats(table string, st *TableStats) {
	s.stats[strings.ToLower(table)] = st
}

// Stats returns the statistics for a table; when none have been collected
// it returns a default estimate (the planner's "no ANALYZE yet" path).
func (s *Schema) Stats(table string) *TableStats {
	if st, ok := s.stats[strings.ToLower(table)]; ok {
		return st
	}
	return &TableStats{RowCount: defaultRowEstimate, Columns: map[string]*ColumnStats{}}
}

// HasStats reports whether real statistics exist for the table.
func (s *Schema) HasStats(table string) bool {
	_, ok := s.stats[strings.ToLower(table)]
	return ok
}

// defaultRowEstimate is the planner's assumption for un-analyzed tables,
// mirroring real engines' behaviour of assuming a small constant.
const defaultRowEstimate = 1000

// TableStats carries per-table statistics.
type TableStats struct {
	RowCount int
	Columns  map[string]*ColumnStats
}

// ColumnStats carries per-column statistics.
type ColumnStats struct {
	Distinct  int
	NullCount int
	Min, Max  datum.D
	Histogram *Histogram
}

// Column returns statistics for a column, or nil.
func (ts *TableStats) Column(name string) *ColumnStats {
	if ts == nil || ts.Columns == nil {
		return nil
	}
	return ts.Columns[strings.ToLower(name)]
}

// Histogram is an equi-depth histogram over a column's non-null values.
type Histogram struct {
	// Bounds are bucket upper bounds (inclusive), sorted ascending; each
	// bucket holds roughly Total/len(Bounds) values.
	Bounds []datum.D
	Total  int
}

// BuildHistogram constructs an equi-depth histogram with at most buckets
// buckets from a sample of values (nulls excluded by the caller).
func BuildHistogram(values []datum.D, buckets int) *Histogram {
	if len(values) == 0 || buckets <= 0 {
		return &Histogram{}
	}
	sorted := append([]datum.D(nil), values...)
	sort.Slice(sorted, func(i, j int) bool {
		return datum.SortCompare(sorted[i], sorted[j]) < 0
	})
	if buckets > len(sorted) {
		buckets = len(sorted)
	}
	h := &Histogram{Total: len(sorted)}
	for b := 1; b <= buckets; b++ {
		idx := b*len(sorted)/buckets - 1
		h.Bounds = append(h.Bounds, sorted[idx])
	}
	return h
}

// SelectivityLT estimates the fraction of values strictly less than v.
func (h *Histogram) SelectivityLT(v datum.D) float64 {
	if h == nil || len(h.Bounds) == 0 {
		return defaultIneqSelectivity
	}
	n := sort.Search(len(h.Bounds), func(i int) bool {
		return datum.SortCompare(h.Bounds[i], v) >= 0
	})
	return float64(n) / float64(len(h.Bounds))
}

// SelectivityEQ estimates the fraction of values equal to v given the
// distinct count.
func (cs *ColumnStats) SelectivityEQ() float64 {
	if cs == nil || cs.Distinct <= 0 {
		return defaultEqSelectivity
	}
	return 1.0 / float64(cs.Distinct)
}

// Default selectivities used when statistics are missing; the constants
// follow the classic System R conventions.
const (
	defaultEqSelectivity   = 0.005
	defaultIneqSelectivity = 1.0 / 3.0
)

// DefaultEqSelectivity exposes the equality fallback for the planner.
func DefaultEqSelectivity() float64 { return defaultEqSelectivity }

// DefaultIneqSelectivity exposes the inequality fallback for the planner.
func DefaultIneqSelectivity() float64 { return defaultIneqSelectivity }
