package catalog

import (
	"testing"

	"uplan/internal/datum"
)

func TestParseColType(t *testing.T) {
	cases := map[string]ColType{
		"INT": TInt, "integer": TInt, "FLOAT": TFloat, "real": TFloat,
		"TEXT": TText, "VARCHAR": TText, "BOOL": TBool, "DECIMAL": TFloat,
	}
	for in, want := range cases {
		got, err := ParseColType(in)
		if err != nil || got != want {
			t.Errorf("ParseColType(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseColType("BLOB"); err == nil {
		t.Error("unknown type must fail")
	}
	if TInt.String() != "INT" || TText.String() != "TEXT" {
		t.Error("String() broken")
	}
}

func TestTableLookups(t *testing.T) {
	tbl := &Table{Name: "t", Columns: []Column{
		{Name: "C0", Type: TInt}, {Name: "c1", Type: TText},
	}}
	if tbl.ColumnIndex("c0") != 0 || tbl.ColumnIndex("C1") != 1 {
		t.Error("case-insensitive column lookup broken")
	}
	if tbl.ColumnIndex("missing") != -1 || tbl.Column("missing") != nil {
		t.Error("missing column handling broken")
	}
	tbl.Indexes = append(tbl.Indexes, &Index{Name: "i", Columns: []string{"c1"}})
	if tbl.IndexOn("C1") == nil || tbl.IndexOn("c0") != nil {
		t.Error("IndexOn broken")
	}
}

func TestSchemaLifecycle(t *testing.T) {
	s := NewSchema()
	if err := s.AddTable(&Table{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTable(&Table{Name: "A"}); err == nil {
		t.Error("duplicate table (case-insensitive) must fail")
	}
	if err := s.AddTable(&Table{Name: "b"}); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Tables()); got != 2 {
		t.Fatalf("Tables() = %d", got)
	}
	if s.Table("A") == nil {
		t.Error("case-insensitive lookup broken")
	}
	s.DropTable("a")
	if s.Table("a") != nil || len(s.Tables()) != 1 {
		t.Error("DropTable broken")
	}
}

func TestStatsDefaults(t *testing.T) {
	s := NewSchema()
	_ = s.AddTable(&Table{Name: "t"})
	st := s.Stats("t")
	if st.RowCount != 1000 {
		t.Errorf("default row estimate = %d", st.RowCount)
	}
	if s.HasStats("t") {
		t.Error("no stats were installed")
	}
	s.SetStats("t", &TableStats{RowCount: 5})
	if !s.HasStats("t") || s.Stats("t").RowCount != 5 {
		t.Error("SetStats broken")
	}
}

func TestHistogram(t *testing.T) {
	var vals []datum.D
	for i := 1; i <= 100; i++ {
		vals = append(vals, datum.Int(int64(i)))
	}
	h := BuildHistogram(vals, 10)
	if len(h.Bounds) != 10 || h.Total != 100 {
		t.Fatalf("histogram shape: %d bounds, total %d", len(h.Bounds), h.Total)
	}
	// P(v < 51) should be ≈ 0.5.
	sel := h.SelectivityLT(datum.Int(51))
	if sel < 0.4 || sel > 0.6 {
		t.Errorf("SelectivityLT(51) = %v", sel)
	}
	if got := h.SelectivityLT(datum.Int(1000)); got != 1 {
		t.Errorf("beyond max selectivity = %v", got)
	}
	if got := h.SelectivityLT(datum.Int(-5)); got != 0 {
		t.Errorf("below min selectivity = %v", got)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := BuildHistogram(nil, 10)
	if got := h.SelectivityLT(datum.Int(1)); got != DefaultIneqSelectivity() {
		t.Errorf("empty histogram should fall back: %v", got)
	}
	var nilH *Histogram
	if got := nilH.SelectivityLT(datum.Int(1)); got != DefaultIneqSelectivity() {
		t.Errorf("nil histogram should fall back: %v", got)
	}
	one := BuildHistogram([]datum.D{datum.Int(7)}, 10)
	if len(one.Bounds) != 1 {
		t.Errorf("single-value histogram: %+v", one)
	}
}

func TestColumnStatsSelectivity(t *testing.T) {
	cs := &ColumnStats{Distinct: 50}
	if got := cs.SelectivityEQ(); got != 0.02 {
		t.Errorf("SelectivityEQ = %v", got)
	}
	var nilCS *ColumnStats
	if got := nilCS.SelectivityEQ(); got != DefaultEqSelectivity() {
		t.Errorf("nil stats fallback = %v", got)
	}
	var ts *TableStats
	if ts.Column("x") != nil {
		t.Error("nil TableStats.Column should be nil")
	}
}

func TestKeyConstraintAccessors(t *testing.T) {
	tbl := &Table{Name: "t", Columns: []Column{
		{Name: "C0", Type: TInt, PrimaryKey: true},
		{Name: "c1", Type: TInt},
		{Name: "c2", Type: TText},
		{Name: "c3", Type: TInt},
	}, Indexes: []*Index{
		{Name: "u1", Columns: []string{"c1"}, Unique: true},
		// A multi-column unique index keys only the combination, so
		// neither column alone qualifies.
		{Name: "u23", Columns: []string{"c2", "c3"}, Unique: true},
		{Name: "plain", Columns: []string{"c3"}},
	}}
	if !tbl.UniqueOn("c0") || !tbl.UniqueOn("C0") {
		t.Error("declared primary key not recognized (case-insensitively)")
	}
	if !tbl.UniqueOn("C1") {
		t.Error("single-column unique index not recognized")
	}
	if tbl.UniqueOn("c2") || tbl.UniqueOn("c3") {
		t.Error("multi-column unique or non-unique index must not key a column")
	}
	if tbl.UniqueOn("missing") {
		t.Error("unknown column reported as key")
	}
	if got := tbl.PrimaryKeyColumns(); len(got) != 1 || got[0] != "C0" {
		t.Errorf("PrimaryKeyColumns = %v", got)
	}
	if got := tbl.UniqueColumns(); len(got) != 2 || got[0] != "C0" || got[1] != "c1" {
		t.Errorf("UniqueColumns = %v (want definition order, no duplicates)", got)
	}
	// A primary index covering an already-PrimaryKey column must not
	// duplicate it in UniqueColumns.
	tbl.Indexes = append(tbl.Indexes, &Index{Name: "pk", Columns: []string{"c0"}, Primary: true})
	if got := tbl.UniqueColumns(); len(got) != 2 {
		t.Errorf("UniqueColumns duplicated a doubly-keyed column: %v", got)
	}
}

// TestKeyConstraintAccessorsGhostTable pins the nil-safety contract the
// bounds oracle relies on: ghost tables (registered with no columns and
// no indexes, a shape the QPG mutator produces) and nil tables expose no
// keys and never panic.
func TestKeyConstraintAccessorsGhostTable(t *testing.T) {
	ghost := &Table{Name: "ghost"}
	if ghost.UniqueOn("c0") || ghost.PrimaryKeyColumns() != nil || ghost.UniqueColumns() != nil {
		t.Error("ghost table must expose no keys")
	}
	withNilIndex := &Table{Name: "t", Indexes: []*Index{nil}}
	if withNilIndex.UniqueOn("c0") {
		t.Error("nil index entry must be skipped")
	}
	var nilTable *Table
	if nilTable.UniqueOn("c0") || nilTable.PrimaryKeyColumns() != nil || nilTable.UniqueColumns() != nil {
		t.Error("nil table must expose no keys")
	}
}
