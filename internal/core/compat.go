package core

// Forward/backward compatibility helpers (Section IV-B of the paper).
//
// Forward compatibility: an application built against an older grammar can
// consume plans produced with a newer grammar that added categories,
// operations, or properties. The application either ignores the additions
// or handles them generically.
//
// Backward compatibility: an application built against a newer grammar can
// consume plans produced with an older grammar, because the newer keyword
// set is a superset.

// KnownSet captures the vocabulary an application was built against: which
// categories, operations, and properties it understands. Downgrade projects
// a plan onto a KnownSet.
type KnownSet struct {
	OperationCategories map[OperationCategory]bool
	PropertyCategories  map[PropertyCategory]bool
	// Operations/Properties nil means "all names in a known category are
	// understood"; non-nil restricts to the listed names.
	Operations map[string]bool
	Properties map[string]bool
}

// CurrentKnownSet returns a KnownSet covering the seven operation and four
// property categories with unrestricted names.
func CurrentKnownSet() KnownSet {
	ks := KnownSet{
		OperationCategories: map[OperationCategory]bool{},
		PropertyCategories:  map[PropertyCategory]bool{},
	}
	for _, c := range OperationCategories {
		ks.OperationCategories[c] = true
	}
	for _, c := range PropertyCategories {
		ks.PropertyCategories[c] = true
	}
	return ks
}

// GenericOperationName is the placeholder name Downgrade substitutes for an
// operation the application does not understand; a visualization tool would
// render it as a generic shape (Section IV-B).
const GenericOperationName = "Unknown Operation"

// Downgrade returns a copy of the plan in which content outside the known
// set is handled generically rather than dropped silently:
//
//   - operations with an unknown category become Executor-category
//     operations named GenericOperationName, with the original rendering
//     preserved in a Configuration property "original operation";
//   - operations in a known category but with an unknown name keep their
//     category and are renamed to GenericOperationName (original kept the
//     same way);
//   - properties with unknown categories or names are dropped, matching
//     "parse the revised representation by ignoring the newly added
//     categories, operations, and properties".
//
// The result always validates against the current grammar.
func Downgrade(p *Plan, ks KnownSet) *Plan {
	out := p.Clone()
	mapProps := func(props []Property) []Property {
		var kept []Property
		for _, pr := range props {
			if !ks.PropertyCategories[pr.Category] {
				continue
			}
			if ks.Properties != nil && !ks.Properties[pr.Name] {
				continue
			}
			kept = append(kept, pr)
		}
		return kept
	}
	out.Properties = mapProps(out.Properties)
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		known := ks.OperationCategories[n.Op.Category]
		nameKnown := ks.Operations == nil || ks.Operations[n.Op.Name]
		if !known || !nameKnown {
			orig := n.Op.String()
			if !known {
				n.Op.Category = Executor
			}
			n.Op.Name = GenericOperationName
			n.Properties = append(n.Properties, Property{
				Category: Configuration,
				Name:     "original operation",
				Value:    Str(orig),
			})
		}
		n.Properties = mapProps(n.Properties)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(out.Root)
	return out
}
