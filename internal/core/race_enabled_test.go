//go:build race

package core

// raceEnabled reports whether the race detector is compiled in; allocation
// guards skip under it because instrumentation can add bookkeeping allocs.
const raceEnabled = true
