package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Cross-DBMS plan comparison (application A.3 of the paper). The primitives
// here power Table VI/VII (operation-category histograms), Figure 4
// (variance of Producer counts across DBMSs), and the Section VI suggestion
// of tree-similarity metrics.

// CategoryHistogram is an operation count per category for one plan or an
// average over many plans.
type CategoryHistogram map[OperationCategory]float64

// Histogram returns the plan's operation counts per category as floats
// (keys exist for all seven categories).
func (p *Plan) Histogram() CategoryHistogram {
	h := CategoryHistogram{}
	for _, c := range OperationCategories {
		h[c] = 0
	}
	p.Walk(func(n *Node, _ int) { h[n.Op.Category]++ })
	return h
}

// Sum returns the total operation count in the histogram.
func (h CategoryHistogram) Sum() float64 {
	var s float64
	for _, v := range h {
		s += v
	}
	return s
}

// AverageHistogram averages histograms of multiple plans (Table VI rows).
func AverageHistogram(plans []*Plan) CategoryHistogram {
	avg := CategoryHistogram{}
	for _, c := range OperationCategories {
		avg[c] = 0
	}
	if len(plans) == 0 {
		return avg
	}
	for _, p := range plans {
		for c, v := range p.Histogram() {
			avg[c] += v
		}
	}
	for c := range avg {
		avg[c] /= float64(len(plans))
	}
	return avg
}

// Variance computes the population variance of a series, used by Figure 4
// to find queries with large cross-DBMS differences in Producer counts.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var v float64
	for _, x := range xs {
		d := x - mean
		v += d * d
	}
	return v / float64(len(xs))
}

// CountOperations returns how many operations in the plan are in the given
// category (convenience for Figure 4).
func (p *Plan) CountOperations(cat OperationCategory) int {
	c := 0
	p.Walk(func(n *Node, _ int) {
		if n.Op.Category == cat {
			c++
		}
	})
	return c
}

// OperationNames returns the multiset of operation names in pre-order.
func (p *Plan) OperationNames() []string {
	var out []string
	p.Walk(func(n *Node, _ int) { out = append(out, n.Op.Name) })
	return out
}

// Diff describes one difference between two plans.
type Diff struct {
	Path string // slash-separated child indexes from the root, "" = root
	Kind string // "operation", "property", "children", "presence"
	A, B string // rendered values on each side
}

func (d Diff) String() string {
	path := d.Path
	if path == "" {
		path = "/"
	}
	return fmt.Sprintf("%s %s: %q vs %q", path, d.Kind, d.A, d.B)
}

// Compare returns the structural differences between two plans. Property
// comparison considers Configuration properties only — Cardinality, Cost,
// and Status are expected to differ across engines and runs.
func Compare(a, b *Plan) []Diff {
	var diffs []Diff
	var cmp func(x, y *Node, path string)
	cmp = func(x, y *Node, path string) {
		switch {
		case x == nil && y == nil:
			return
		case x == nil || y == nil:
			diffs = append(diffs, Diff{Path: path, Kind: "presence",
				A: nodeDesc(x), B: nodeDesc(y)})
			return
		}
		if x.Op != y.Op {
			diffs = append(diffs, Diff{Path: path, Kind: "operation",
				A: x.Op.String(), B: y.Op.String()})
		}
		xc := configNames(x.Properties)
		yc := configNames(y.Properties)
		if !strSliceEqual(xc, yc) {
			diffs = append(diffs, Diff{Path: path, Kind: "property",
				A: strings.Join(xc, ","), B: strings.Join(yc, ",")})
		}
		n := len(x.Children)
		if len(y.Children) > n {
			n = len(y.Children)
		}
		if len(x.Children) != len(y.Children) {
			diffs = append(diffs, Diff{Path: path, Kind: "children",
				A: fmt.Sprint(len(x.Children)), B: fmt.Sprint(len(y.Children))})
		}
		for i := 0; i < n; i++ {
			var xi, yi *Node
			if i < len(x.Children) {
				xi = x.Children[i]
			}
			if i < len(y.Children) {
				yi = y.Children[i]
			}
			cmp(xi, yi, fmt.Sprintf("%s/%d", path, i))
		}
	}
	cmp(a.Root, b.Root, "")
	return diffs
}

func nodeDesc(n *Node) string {
	if n == nil {
		return "<absent>"
	}
	return n.Op.String()
}

func configNames(props []Property) []string {
	var out []string
	for _, p := range props {
		if p.Category == Configuration {
			out = append(out, p.Name)
		}
	}
	sort.Strings(out)
	return out
}

func strSliceEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TreeEditDistance computes a simple ordered-tree edit distance between two
// plans, where node substitution cost is 0 for identical operations and 1
// otherwise, and insertion/deletion cost 1 per node. This is the
// tree-similarity metric Section VI suggests for comparing optimizers.
func TreeEditDistance(a, b *Plan) int {
	return editDist(a.Root, b.Root)
}

func editDist(a, b *Node) int {
	switch {
	case a == nil && b == nil:
		return 0
	case a == nil:
		return subtreeSize(b)
	case b == nil:
		return subtreeSize(a)
	}
	sub := 0
	if a.Op != b.Op {
		sub = 1
	}
	// Align children with a small dynamic program over the two child lists.
	na, nb := len(a.Children), len(b.Children)
	dp := make([][]int, na+1)
	for i := range dp {
		dp[i] = make([]int, nb+1)
	}
	for i := 1; i <= na; i++ {
		dp[i][0] = dp[i-1][0] + subtreeSize(a.Children[i-1])
	}
	for j := 1; j <= nb; j++ {
		dp[0][j] = dp[0][j-1] + subtreeSize(b.Children[j-1])
	}
	for i := 1; i <= na; i++ {
		for j := 1; j <= nb; j++ {
			del := dp[i-1][j] + subtreeSize(a.Children[i-1])
			ins := dp[i][j-1] + subtreeSize(b.Children[j-1])
			rep := dp[i-1][j-1] + editDist(a.Children[i-1], b.Children[j-1])
			dp[i][j] = minInt(del, minInt(ins, rep))
		}
	}
	best := sub + dp[na][nb]
	// Root insertion/deletion moves: delete the root of one tree and match
	// the other tree against one of its children (paying for the remaining
	// siblings). This lets "wrap a plan in an extra operator" cost 1.
	for _, c := range a.Children {
		cand := 1 + editDist(c, b) + subtreeSize(a) - 1 - subtreeSize(c)
		best = minInt(best, cand)
	}
	for _, c := range b.Children {
		cand := 1 + editDist(a, c) + subtreeSize(b) - 1 - subtreeSize(c)
		best = minInt(best, cand)
	}
	return best
}

func subtreeSize(n *Node) int {
	if n == nil {
		return 0
	}
	s := 1
	for _, c := range n.Children {
		s += subtreeSize(c)
	}
	return s
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Similarity returns a normalized [0,1] similarity between two plans based
// on TreeEditDistance: 1 means identical operation trees.
func Similarity(a, b *Plan) float64 {
	sa, sb := subtreeSize(a.Root), subtreeSize(b.Root)
	if sa+sb == 0 {
		return 1
	}
	d := float64(TreeEditDistance(a, b))
	return math.Max(0, 1-d/float64(sa+sb))
}

// RootCardinality returns the estimated-rows property of the root
// operation, or of the plan itself when no tree exists. It is CERT's input:
// the optimizer's final cardinality estimate. The boolean reports whether
// an estimate was found.
func (p *Plan) RootCardinality() (float64, bool) {
	read := func(props []Property) (float64, bool) {
		for _, pr := range props {
			if pr.Category == Cardinality && pr.Value.Kind == KindNumber &&
				strings.Contains(strings.ToLower(pr.Name), "rows") {
				return pr.Value.Num, true
			}
		}
		return 0, false
	}
	if p.Root != nil {
		// Skip over pure transport operators (Executor category) whose
		// cardinality merely mirrors their child, preferring the topmost
		// estimate that exists.
		n := p.Root
		for n != nil {
			if v, ok := read(n.Properties); ok {
				return v, true
			}
			if len(n.Children) == 1 {
				n = n.Children[0]
				continue
			}
			break
		}
	}
	return read(p.Properties)
}
