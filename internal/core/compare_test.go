package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogram(t *testing.T) {
	p := samplePlan()
	h := p.Histogram()
	if h[Producer] != 1 || h[Combinator] != 1 || h[Folder] != 1 || h[Join] != 0 {
		t.Errorf("histogram = %v", h)
	}
	if h.Sum() != 3 {
		t.Errorf("Sum = %v, want 3", h.Sum())
	}
	if len(h) != len(OperationCategories) {
		t.Errorf("histogram must contain all categories, got %d keys", len(h))
	}
}

func TestAverageHistogram(t *testing.T) {
	p1 := &Plan{Root: NewNode(Producer, "Full Table Scan")}
	p2 := &Plan{Root: NewNode(Producer, "Full Table Scan").
		AddChild(NewNode(Producer, "Index Scan"))}
	avg := AverageHistogram([]*Plan{p1, p2})
	if avg[Producer] != 1.5 {
		t.Errorf("avg Producer = %v, want 1.5", avg[Producer])
	}
	empty := AverageHistogram(nil)
	if empty.Sum() != 0 {
		t.Error("empty average should be all zeros")
	}
}

func TestVariance(t *testing.T) {
	if v := Variance([]float64{10, 12, 9, 1, 2}); math.Abs(v-19.76) > 0.01 {
		t.Errorf("Variance = %v, want ≈19.76", v)
	}
	if Variance(nil) != 0 || Variance([]float64{5}) != 0 {
		t.Error("degenerate variance should be 0")
	}
}

func TestCompareIdentical(t *testing.T) {
	a, b := samplePlan(), samplePlan()
	if diffs := Compare(a, b); len(diffs) != 0 {
		t.Errorf("identical plans should have no diffs: %v", diffs)
	}
}

func TestCompareFindsDifferences(t *testing.T) {
	a := samplePlan()
	b := samplePlan()
	b.Root.Op = Operation{Category: Folder, Name: "Sort Aggregate"}
	b.Root.Children[0].Children[0].Children = append(
		b.Root.Children[0].Children[0].Children, NewNode(Executor, "Collect"))
	diffs := Compare(a, b)
	var kinds []string
	for _, d := range diffs {
		kinds = append(kinds, d.Kind)
		if d.String() == "" {
			t.Error("diff should render")
		}
	}
	hasOp, hasChildren := false, false
	for _, k := range kinds {
		if k == "operation" {
			hasOp = true
		}
		if k == "children" {
			hasChildren = true
		}
	}
	if !hasOp || !hasChildren {
		t.Errorf("expected operation and children diffs, got %v", kinds)
	}
}

func TestCompareIgnoresUnstableProperties(t *testing.T) {
	a := samplePlan()
	b := samplePlan()
	// Change only Cardinality/Cost/Status values: no diffs expected.
	b.Root.Properties[1].Value = Num(99999)
	if diffs := Compare(a, b); len(diffs) != 0 {
		t.Errorf("cost/cardinality changes should not diff: %v", diffs)
	}
	// Changing a Configuration property name does diff.
	c := samplePlan()
	c.Root.Properties[0] = Property{Category: Configuration, Name: "other key", Value: Str("x")}
	if diffs := Compare(a, c); len(diffs) == 0 {
		t.Error("configuration change should diff")
	}
}

func TestTreeEditDistance(t *testing.T) {
	a := &Plan{Root: NewNode(Producer, "Full Table Scan")}
	b := &Plan{Root: NewNode(Producer, "Full Table Scan")}
	if d := TreeEditDistance(a, b); d != 0 {
		t.Errorf("identical distance = %d", d)
	}
	c := &Plan{Root: NewNode(Producer, "Index Scan")}
	if d := TreeEditDistance(a, c); d != 1 {
		t.Errorf("rename distance = %d, want 1", d)
	}
	d2 := &Plan{Root: NewNode(Combinator, "Sort").AddChild(NewNode(Producer, "Full Table Scan"))}
	if d := TreeEditDistance(a, d2); d != 1 {
		t.Errorf("insert distance = %d, want 1", d)
	}
	empty := &Plan{}
	if d := TreeEditDistance(a, empty); d != 1 {
		t.Errorf("delete-all distance = %d, want 1", d)
	}
}

func TestSimilarityBounds(t *testing.T) {
	f := func(s1, s2 int64) bool {
		r1 := rand.New(rand.NewSource(s1))
		r2 := rand.New(rand.NewSource(s2))
		a := randomPlan(r1, 3)
		b := randomPlan(r2, 3)
		sim := Similarity(a, b)
		return sim >= 0 && sim <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	p := samplePlan()
	if s := Similarity(p, p); s != 1 {
		t.Errorf("self similarity = %v", s)
	}
	if s := Similarity(&Plan{}, &Plan{}); s != 1 {
		t.Errorf("empty-plan similarity = %v", s)
	}
}

func TestEditDistanceTriangleish(t *testing.T) {
	// Property: distance is symmetric and zero iff operation trees equal.
	f := func(s1, s2 int64) bool {
		a := randomPlan(rand.New(rand.NewSource(s1)), 2)
		b := randomPlan(rand.New(rand.NewSource(s2)), 2)
		return TreeEditDistance(a, b) == TreeEditDistance(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRootCardinality(t *testing.T) {
	p := samplePlan()
	v, ok := p.RootCardinality()
	if !ok || v != 200 {
		t.Errorf("RootCardinality = %v %v, want 200", v, ok)
	}
	// Transport operator without estimates defers to its child.
	wrapped := &Plan{Root: NewNode(Executor, "Collect").AddChild(
		NewNode(Producer, "Full Table Scan").
			AddProperty(Cardinality, "estimated rows", Num(42)))}
	v, ok = wrapped.RootCardinality()
	if !ok || v != 42 {
		t.Errorf("wrapped RootCardinality = %v %v, want 42", v, ok)
	}
	// Property-only plan.
	flat := &Plan{}
	flat.AddProperty(Cardinality, "estimated rows", Num(7))
	v, ok = flat.RootCardinality()
	if !ok || v != 7 {
		t.Errorf("flat RootCardinality = %v %v", v, ok)
	}
	none := &Plan{Root: NewNode(Producer, "Scan")}
	if _, ok := none.RootCardinality(); ok {
		t.Error("plan without estimates should report none")
	}
}

func TestCountOperationsAndNames(t *testing.T) {
	p := samplePlan()
	if c := p.CountOperations(Producer); c != 1 {
		t.Errorf("CountOperations(Producer) = %d", c)
	}
	names := p.OperationNames()
	if len(names) != 3 || names[2] != "Full Table Scan" {
		t.Errorf("OperationNames = %v", names)
	}
}
