package core

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestJSONRoundTrip(t *testing.T) {
	p := samplePlan()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(got) {
		t.Fatalf("round trip mismatch:\nin:  %s\nout: %s",
			p.MarshalText(), got.MarshalText())
	}
	if got.Source != "postgresql" {
		t.Errorf("Source lost: %q", got.Source)
	}
}

func TestJSONShape(t *testing.T) {
	p := &Plan{Root: NewNode(Producer, "Full Table Scan").
		AddProperty(Cardinality, "estimated rows", Num(10))}
	data, err := p.MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{
		`"operation"`, `"category": "Producer"`, `"name": "Full Table Scan"`,
		`"estimated rows"`, `"value": 10`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %q:\n%s", want, s)
		}
	}
}

func TestJSONPropertyOnlyPlan(t *testing.T) {
	p := &Plan{Source: "influxdb"}
	p.AddProperty(Cardinality, "TotalSeries", Num(5))
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"tree"`) {
		t.Errorf("empty tree should be omitted: %s", data)
	}
	got, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Root != nil || len(got.Properties) != 1 {
		t.Errorf("bad round trip: %+v", got)
	}
}

func TestJSONValueKinds(t *testing.T) {
	p := &Plan{}
	p.AddProperty(Configuration, "s", Str("x"))
	p.AddProperty(Cardinality, "n", Num(1.5))
	p.AddProperty(Status, "b", BoolVal(true))
	p.AddProperty(Status, "z", Null())
	data, _ := json.Marshal(p)
	got, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Properties[0].Value.Equal(Str("x")) ||
		!got.Properties[1].Value.Equal(Num(1.5)) ||
		!got.Properties[2].Value.Equal(BoolVal(true)) ||
		!got.Properties[3].Value.Equal(Null()) {
		t.Errorf("value kinds lost: %+v", got.Properties)
	}
}

func TestJSONIgnoresUnknownFields(t *testing.T) {
	// Forward compatibility: a newer producer may add fields.
	in := `{
	  "source": "x",
	  "futureField": {"a": 1},
	  "tree": {
	    "operation": {"category": "Producer", "name": "Scan", "futureAttr": 7},
	    "children": []
	  }
	}`
	p, err := ParseJSON([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if p.Root == nil || p.Root.Op.Name != "Scan" {
		t.Errorf("parse with unknown fields failed: %+v", p)
	}
}

func TestJSONCompositeValueTolerated(t *testing.T) {
	in := `{"properties":[{"category":"Configuration","name":"keys","value":["a","b"]}]}`
	p, err := ParseJSON([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if p.Properties[0].Value.Kind != KindString ||
		!strings.Contains(p.Properties[0].Value.Str, `"a"`) {
		t.Errorf("composite value should flatten to JSON text: %+v", p.Properties[0])
	}
}

func TestJSONInvalid(t *testing.T) {
	if _, err := ParseJSON([]byte(`{`)); err == nil {
		t.Error("invalid JSON must error")
	}
}

func TestQuickJSONRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPlan(r, 3)
		data, err := json.Marshal(p)
		if err != nil {
			return false
		}
		got, err := ParseJSON(data)
		if err != nil {
			return false
		}
		return p.Equal(got)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTextAndJSONAgree(t *testing.T) {
	// The two structured serializations must describe identical plans.
	p := samplePlan()
	data, _ := json.Marshal(p)
	viaJSON, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	viaText, err := ParseText(p.MarshalIndentedText())
	if err != nil {
		t.Fatal(err)
	}
	if !viaJSON.Equal(viaText) {
		t.Error("JSON and indented text round trips disagree")
	}
}
