package core

import (
	"fmt"
	"sync"
	"testing"
)

// TestDefaultRegistryConcurrentConstruction builds registries from many
// goroutines at once (meaningful under -race): construction must not
// share mutable state across instances.
func TestDefaultRegistryConcurrentConstruction(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := DefaultRegistry()
			if op := r.ResolveOperation("tidb", "TableFullScan"); op.Name != "Full Table Scan" {
				t.Errorf("resolve = %v", op)
			}
		}()
	}
	wg.Wait()
}

// TestRegistryConcurrentReadersAndWriters exercises one shared registry
// with concurrent resolvers and extenders, the access pattern of a
// conversion pipeline running while a client registers new keywords (the
// paper's "LLM Join" extensibility scenario, live).
func TestRegistryConcurrentReadersAndWriters(t *testing.T) {
	r := DefaultRegistry()
	var wg sync.WaitGroup

	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.ResolveOperation("postgresql", "Seq Scan")
				r.ResolveProperty("tidb", "estRows")
				r.Operations()
				r.Version()
			}
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("Custom Op %d-%d", g, i)
				r.AddOperation(name, Join, "concurrently added")
				if err := r.AliasOperation("postgresql", name+" native", name); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if op := r.ResolveOperation("postgresql", "Custom Op 0-0 native"); op.Name != "Custom Op 0-0" {
		t.Errorf("concurrently added alias lost: %v", op)
	}
}

// TestRegistrySnapshotConsistency drives Add/Alias/Remove cycles against
// concurrent resolvers and asserts every observed resolution is one of the
// two valid snapshot states — the keyword fully present or fully absent.
// A torn read (alias resolving to a half-registered operation, an empty
// name, or a stale category) fails the test; under -race it additionally
// proves the lock-free read path is data-race-free against writers.
func TestRegistrySnapshotConsistency(t *testing.T) {
	r := DefaultRegistry()
	const (
		unified = "Quantum Join"
		native  = "QJoin"
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writer: cycle the keyword through registered → aliased → removed.
	// stop closes on every exit path so a writer failure can't leave the
	// readers spinning until the test binary times out.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 300; i++ {
			r.AddOperation(unified, Join, "cycled")
			if err := r.AliasOperation("postgresql", native, unified); err != nil {
				t.Error(err)
				return
			}
			r.RemoveOperation(unified)
		}
	}()

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastVersion := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				op := r.ResolveOperation("postgresql", native)
				absent := op.Category == Executor && op.Name == native
				present := op.Category == Join && op.Name == unified
				if !absent && !present {
					t.Errorf("torn resolution: %+v", op)
					return
				}
				// The baseline vocabulary must survive every snapshot swap.
				if base := r.ResolveOperation("postgresql", "Seq Scan"); base.Name != "Full Table Scan" {
					t.Errorf("baseline alias lost mid-cycle: %+v", base)
					return
				}
				if v := r.Version(); v < lastVersion {
					t.Errorf("version went backwards: %d after %d", v, lastVersion)
					return
				} else {
					lastVersion = v
				}
			}
		}()
	}
	wg.Wait()

	// After the final Remove the keyword must resolve generically again.
	if op := r.ResolveOperation("postgresql", native); op.Category != Executor {
		t.Errorf("expected generic fallback after removal, got %+v", op)
	}
}
