package core

import (
	"fmt"
	"sync"
	"testing"
)

// TestDefaultRegistryConcurrentConstruction builds registries from many
// goroutines at once (meaningful under -race): construction must not
// share mutable state across instances.
func TestDefaultRegistryConcurrentConstruction(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := DefaultRegistry()
			if op := r.ResolveOperation("tidb", "TableFullScan"); op.Name != "Full Table Scan" {
				t.Errorf("resolve = %v", op)
			}
		}()
	}
	wg.Wait()
}

// TestRegistryConcurrentReadersAndWriters exercises one shared registry
// with concurrent resolvers and extenders, the access pattern of a
// conversion pipeline running while a client registers new keywords (the
// paper's "LLM Join" extensibility scenario, live).
func TestRegistryConcurrentReadersAndWriters(t *testing.T) {
	r := DefaultRegistry()
	var wg sync.WaitGroup

	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.ResolveOperation("postgresql", "Seq Scan")
				r.ResolveProperty("tidb", "estRows")
				r.Operations()
				r.Version()
			}
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("Custom Op %d-%d", g, i)
				r.AddOperation(name, Join, "concurrently added")
				if err := r.AliasOperation("postgresql", name+" native", name); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if op := r.ResolveOperation("postgresql", "Custom Op 0-0 native"); op.Name != "Custom Op 0-0" {
		t.Errorf("concurrently added alias lost: %v", op)
	}
}
