package core

import (
	"sync"
	"testing"
)

func TestDefaultRegistryResolvesPaperExamples(t *testing.T) {
	r := DefaultRegistry()
	// The paper's canonical example: Seq Scan (PostgreSQL), Table Scan
	// (SQL Server), TableFullScan (TiDB) all map to Full Table Scan.
	cases := []struct{ dialect, native string }{
		{"postgresql", "Seq Scan"},
		{"sqlserver", "Table Scan"},
		{"tidb", "TableFullScan"},
		{"mysql", "Table scan"},
		{"sqlite", "SCAN"},
	}
	for _, c := range cases {
		op := r.ResolveOperation(c.dialect, c.native)
		if op.Name != "Full Table Scan" || op.Category != Producer {
			t.Errorf("%s/%s resolved to %v, want Producer->Full Table Scan",
				c.dialect, c.native, op)
		}
	}
}

func TestRegistryCaseInsensitiveAliases(t *testing.T) {
	r := DefaultRegistry()
	op := r.ResolveOperation("tidb", "tablefullscan")
	if op.Name != "Full Table Scan" {
		t.Errorf("case-insensitive resolution failed: %v", op)
	}
}

func TestRegistryFallbackUnknownOperation(t *testing.T) {
	r := DefaultRegistry()
	op := r.ResolveOperation("postgresql", "Quantum Scan")
	if op.Category != Executor || op.Name != "Quantum Scan" {
		t.Errorf("unknown op fallback = %v, want Executor->Quantum Scan", op)
	}
}

func TestRegistryResolveProperty(t *testing.T) {
	r := DefaultRegistry()
	name, cat := r.ResolveProperty("postgresql", "Sort Key")
	if name != "sort key" || cat != Configuration {
		t.Errorf("Sort Key resolved to %q/%q", name, cat)
	}
	name, cat = r.ResolveProperty("tidb", "estRows")
	if name != "estimated rows" || cat != Cardinality {
		t.Errorf("estRows resolved to %q/%q", name, cat)
	}
	// Unknown property: falls back to Configuration with native name.
	name, cat = r.ResolveProperty("mysql", "mystery_prop")
	if name != "mystery_prop" || cat != Configuration {
		t.Errorf("unknown property fallback = %q/%q", name, cat)
	}
}

func TestRegistryLLMJoinExtensibility(t *testing.T) {
	// Section IV-B walkthrough: PostgreSQL adds an LLM-based join operation.
	r := DefaultRegistry()
	v0 := r.Version()
	r.AddOperation("LLM Join", Join, "join via a large language model")
	if r.Version() <= v0 {
		t.Error("version must advance on AddOperation")
	}
	if err := r.AliasOperation("postgresql", "LLM Join", "LLM Join"); err != nil {
		t.Fatal(err)
	}
	op := r.ResolveOperation("postgresql", "LLM Join")
	if op.Category != Join || op.Name != "LLM Join" {
		t.Errorf("LLM Join resolution = %v", op)
	}
	// Deprecation: removing the keyword reverts to generic handling.
	if !r.RemoveOperation("LLM Join") {
		t.Fatal("RemoveOperation should report true")
	}
	op = r.ResolveOperation("postgresql", "LLM Join")
	if op.Category != Executor {
		t.Errorf("removed op should fall back to Executor, got %v", op)
	}
	if r.RemoveOperation("LLM Join") {
		t.Error("second removal should report false")
	}
}

func TestRegistryAliasRequiresTarget(t *testing.T) {
	r := NewRegistry()
	if err := r.AliasOperation("x", "A", "Missing"); err == nil {
		t.Error("alias to unregistered operation must fail")
	}
	if err := r.AliasProperty("x", "A", "Missing"); err == nil {
		t.Error("alias to unregistered property must fail")
	}
}

func TestRegistryEnumerations(t *testing.T) {
	r := DefaultRegistry()
	ops := r.Operations()
	if len(ops) < 50 {
		t.Errorf("expected a rich default vocabulary, got %d operations", len(ops))
	}
	for i := 1; i < len(ops); i++ {
		if ops[i-1].Name >= ops[i].Name {
			t.Fatal("Operations() must be sorted")
		}
	}
	props := r.Properties()
	if len(props) < 20 {
		t.Errorf("expected default property vocabulary, got %d", len(props))
	}
	counts := r.OperationCountByCategory()
	if counts[Producer] == 0 || counts[Join] == 0 || counts[Consumer] == 0 {
		t.Errorf("category counts incomplete: %v", counts)
	}
}

func TestRegistryLookup(t *testing.T) {
	r := DefaultRegistry()
	def, ok := r.Operation("Hash Join")
	if !ok || def.Category != Join || def.Doc == "" {
		t.Errorf("Hash Join lookup: %+v %v", def, ok)
	}
	pdef, ok := r.Property("filter")
	if !ok || pdef.Category != Configuration {
		t.Errorf("filter lookup: %+v %v", pdef, ok)
	}
	if _, ok := r.Operation("No Such"); ok {
		t.Error("missing op reported present")
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := DefaultRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.ResolveOperation("postgresql", "Seq Scan")
				if i%2 == 0 {
					r.AddOperation("Temp Op", Executor, "")
				}
			}
		}(i)
	}
	wg.Wait()
}
