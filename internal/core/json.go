package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
)

// This file implements the structured JSON format of the unified query plan
// representation. The schema mirrors the EBNF directly:
//
//	{
//	  "source": "postgresql",
//	  "tree": {
//	    "operation": {"category": "Producer", "name": "Full Table Scan"},
//	    "properties": [
//	      {"category": "Cardinality", "name": "rows", "value": 1050}
//	    ],
//	    "children": [ ... ]
//	  },
//	  "properties": [
//	    {"category": "Status", "name": "planning_time", "value": 0.124}
//	  ]
//	}
//
// Unknown JSON fields are ignored on decode (forward compatibility);
// the "tree" field is optional (InfluxDB-style property-only plans).

type jsonPlan struct {
	Source     string         `json:"source,omitempty"`
	Tree       *jsonNode      `json:"tree,omitempty"`
	Properties []jsonProperty `json:"properties,omitempty"`
}

type jsonNode struct {
	Operation  jsonOperation  `json:"operation"`
	Properties []jsonProperty `json:"properties,omitempty"`
	Children   []*jsonNode    `json:"children,omitempty"`
}

type jsonOperation struct {
	Category string `json:"category"`
	Name     string `json:"name"`
}

type jsonProperty struct {
	Category string          `json:"category"`
	Name     string          `json:"name"`
	Value    json.RawMessage `json:"value"`
}

// MarshalJSON implements json.Marshaler for Plan.
func (p *Plan) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.toJSON())
}

// MarshalJSONIndent renders the plan as indented JSON.
func (p *Plan) MarshalJSONIndent() ([]byte, error) {
	return json.MarshalIndent(p.toJSON(), "", "  ")
}

func (p *Plan) toJSON() jsonPlan {
	jp := jsonPlan{Source: p.Source, Properties: propsToJSON(p.Properties)}
	var conv func(n *Node) *jsonNode
	conv = func(n *Node) *jsonNode {
		if n == nil {
			return nil
		}
		jn := &jsonNode{
			Operation:  jsonOperation{Category: string(n.Op.Category), Name: n.Op.Name},
			Properties: propsToJSON(n.Properties),
		}
		for _, c := range n.Children {
			jn.Children = append(jn.Children, conv(c))
		}
		return jn
	}
	jp.Tree = conv(p.Root)
	return jp
}

func propsToJSON(props []Property) []jsonProperty {
	if len(props) == 0 {
		return nil
	}
	out := make([]jsonProperty, 0, len(props))
	for _, pr := range props {
		out = append(out, jsonProperty{
			Category: string(pr.Category),
			Name:     pr.Name,
			Value:    valueToRaw(pr.Value),
		})
	}
	return out
}

// valueToRaw encodes a scalar Value as raw JSON without boxing it through
// an interface and the reflective encoder. Strings still go through
// json.Marshal for correct escaping; non-finite numbers degrade to empty
// raw (decoded as null), matching the old swallowed-error behavior.
func valueToRaw(v Value) json.RawMessage {
	switch v.Kind {
	case KindString:
		raw, _ := json.Marshal(v.Str)
		return raw
	case KindNumber:
		if math.IsNaN(v.Num) || math.IsInf(v.Num, 0) {
			return nil
		}
		// Mirror encoding/json's float encoding byte-for-byte: 'f' form in
		// the human range, 'e' with a compacted exponent outside it.
		abs := math.Abs(v.Num)
		format := byte('f')
		if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
			format = 'e'
		}
		b := strconv.AppendFloat(nil, v.Num, format, -1, 64)
		if format == 'e' {
			if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
				b[n-2] = b[n-1]
				b = b[:n-1]
			}
		}
		return b
	case KindBool:
		if v.Bool {
			return json.RawMessage("true")
		}
		return json.RawMessage("false")
	default:
		return json.RawMessage("null")
	}
}

// UnmarshalJSON implements json.Unmarshaler for Plan.
func (p *Plan) UnmarshalJSON(data []byte) error {
	var jp jsonPlan
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	if err := dec.Decode(&jp); err != nil {
		return fmt.Errorf("core: invalid unified plan JSON: %w", err)
	}
	props, err := propsFromJSON(jp.Properties)
	if err != nil {
		return err
	}
	p.Source = jp.Source
	p.Properties = props
	var conv func(jn *jsonNode) (*Node, error)
	conv = func(jn *jsonNode) (*Node, error) {
		if jn == nil {
			return nil, nil
		}
		props, err := propsFromJSON(jn.Properties)
		if err != nil {
			return nil, err
		}
		n := &Node{
			Op: Operation{
				Category: OperationCategory(jn.Operation.Category),
				Name:     jn.Operation.Name,
			},
			Properties: props,
		}
		for _, jc := range jn.Children {
			c, err := conv(jc)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, c)
		}
		return n, nil
	}
	root, err := conv(jp.Tree)
	if err != nil {
		return err
	}
	p.Root = root
	return nil
}

func propsFromJSON(jprops []jsonProperty) ([]Property, error) {
	var out []Property
	for _, jp := range jprops {
		v, err := valueFromRaw(jp.Value)
		if err != nil {
			return nil, fmt.Errorf("core: property %q: %w", jp.Name, err)
		}
		out = append(out, Property{
			Category: PropertyCategory(jp.Category),
			Name:     jp.Name,
			Value:    v,
		})
	}
	return out, nil
}

func valueFromRaw(raw json.RawMessage) (Value, error) {
	if len(raw) == 0 {
		return Null(), nil
	}
	var any interface{}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	if err := dec.Decode(&any); err != nil {
		return Value{}, err
	}
	switch t := any.(type) {
	case nil:
		return Null(), nil
	case string:
		return Str(t), nil
	case bool:
		return BoolVal(t), nil
	case json.Number:
		f, err := t.Float64()
		if err != nil {
			return Value{}, err
		}
		return Num(f), nil
	default:
		// Composite values (arrays/objects) are flattened to their JSON
		// text; the grammar only supports scalars, but tolerating composites
		// keeps converters for exotic plans lossless.
		return Str(string(raw)), nil
	}
}

// ParseJSON parses a unified plan from its JSON serialization.
func ParseJSON(data []byte) (*Plan, error) {
	p := &Plan{}
	if err := p.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return p, nil
}
