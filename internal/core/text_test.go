package core

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestMarshalTextRoundTrip(t *testing.T) {
	p := samplePlan()
	s := p.MarshalText()
	got, err := ParseText(s)
	if err != nil {
		t.Fatalf("ParseText(%q): %v", s, err)
	}
	if !p.Equal(got) {
		t.Fatalf("round trip mismatch:\n in: %s\nout: %s", s, got.MarshalText())
	}
}

func TestMarshalTextShape(t *testing.T) {
	p := &Plan{Root: NewNode(Producer, "Full Table Scan")}
	s := p.MarshalText()
	if s != "Operation: Producer->Full_Table_Scan" {
		t.Errorf("single node text = %q", s)
	}
	p.Root.AddChild(NewNode(Executor, "Collect"))
	s = p.MarshalText()
	if !strings.Contains(s, "--children--> {Operation: Executor->Collect}") {
		t.Errorf("children encoding wrong: %q", s)
	}
}

func TestIndentedRoundTrip(t *testing.T) {
	p := samplePlan()
	s := p.MarshalIndentedText()
	got, err := ParseText(s)
	if err != nil {
		t.Fatalf("ParseText indented: %v\n%s", err, s)
	}
	if !p.Equal(got) {
		t.Fatalf("indented round trip mismatch:\nin:\n%s\nout:\n%s",
			s, got.MarshalIndentedText())
	}
}

func TestIndentedListing4Style(t *testing.T) {
	// The indented form from the paper's Listing 4 (excerpt), with
	// properties below operations.
	in := strings.Join([]string{
		"Combinator->Sort",
		"  Folder->Aggregate",
		"    Join->Hash Join",
		"      Producer->Full Table Scan",
		"        Configuration->name object: \"partsupp\"",
		"      Executor->Hash Row",
		"        Producer->Full Table Scan",
		"          Configuration->name object: \"supplier\"",
	}, "\n")
	p, err := ParseText(in)
	if err != nil {
		t.Fatal(err)
	}
	if p.Root.Op.Name != "Sort" || p.Root.Op.Category != Combinator {
		t.Fatalf("root = %v", p.Root.Op)
	}
	if p.NodeCount() != 6 {
		t.Fatalf("NodeCount = %d, want 6", p.NodeCount())
	}
	join := p.Root.Children[0].Children[0]
	if join.Op.Name != "Hash Join" || len(join.Children) != 2 {
		t.Fatalf("join node wrong: %v children=%d", join.Op, len(join.Children))
	}
	scan := join.Children[0]
	if pr, ok := scan.Property("name object"); !ok || pr.Value.Str != "partsupp" {
		t.Fatalf("scan property missing: %v", scan.Properties)
	}
}

func TestParsePlanPropertiesOnly(t *testing.T) {
	// InfluxDB-style plan: no tree, only plan properties.
	in := `Cardinality->TotalSeries: 5, Status->PlanningTime: 0.3`
	p, err := ParseText(in)
	if err != nil {
		t.Fatal(err)
	}
	if p.Root != nil {
		t.Fatal("expected no tree")
	}
	if len(p.Properties) != 2 {
		t.Fatalf("got %d properties", len(p.Properties))
	}
	if p.Properties[0].Name != "TotalSeries" || p.Properties[0].Value.Num != 5 {
		t.Errorf("property parse wrong: %+v", p.Properties[0])
	}
}

func TestParseMultiWordIdentifiers(t *testing.T) {
	in := `Operation: Producer->Full Table Scan Configuration->name object: "t0"`
	p, err := ParseText(in)
	if err != nil {
		t.Fatal(err)
	}
	if p.Root.Op.Name != "Full Table Scan" {
		t.Errorf("multi-word op name = %q", p.Root.Op.Name)
	}
	if pr, ok := p.Root.Property("name object"); !ok || pr.Value.Str != "t0" {
		t.Errorf("multi-word property name parse failed: %v", p.Root.Properties)
	}
}

func TestParseValueKinds(t *testing.T) {
	in := `Configuration->a: "s", Cardinality->b: -42, Cost->c: 1.5, Status->d: true, Status->e: false, Status->f: null`
	p, err := ParseText(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []Value{Str("s"), Num(-42), Num(1.5), BoolVal(true), BoolVal(false), Null()}
	if len(p.Properties) != len(want) {
		t.Fatalf("got %d properties, want %d: %+v", len(p.Properties), len(want), p.Properties)
	}
	for i, w := range want {
		if !p.Properties[i].Value.Equal(w) {
			t.Errorf("property %d = %+v, want %+v", i, p.Properties[i].Value, w)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`Operation: Producer`,                                  // missing ->name
		`Operation: Producer->Scan --children--> {`,            // unclosed children
		`Operation: Producer->Scan --children--> {Operation: `, // truncated child
		`Configuration->x`,                                     // property without value
	}
	for _, in := range bad {
		if _, err := ParseText(in); err == nil {
			t.Errorf("ParseText(%q) should fail", in)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	p, err := ParseText("   \n ")
	if err != nil {
		t.Fatal(err)
	}
	if p.Root != nil || len(p.Properties) != 0 {
		t.Error("blank input should produce empty plan")
	}
}

// randomPlan generates a random but valid plan for property-based testing.
func randomPlan(r *rand.Rand, maxDepth int) *Plan {
	names := []string{"Full Table Scan", "Sort", "Hash Join", "Aggregate",
		"Project", "Collect", "Insert", "Index Scan", "TopN9"}
	cats := OperationCategories
	pcats := PropertyCategories
	var gen func(depth int) *Node
	gen = func(depth int) *Node {
		n := NewNode(cats[r.Intn(len(cats))], names[r.Intn(len(names))])
		for i := r.Intn(3); i > 0; i-- {
			var v Value
			switch r.Intn(4) {
			case 0:
				v = Str("val" + string(rune('a'+r.Intn(26))))
			case 1:
				v = Num(float64(r.Intn(1000)))
			case 2:
				v = BoolVal(r.Intn(2) == 0)
			default:
				v = Null()
			}
			n.AddProperty(pcats[r.Intn(len(pcats))], "prop"+string(rune('a'+r.Intn(26))), v)
		}
		if depth < maxDepth {
			for i := r.Intn(3); i > 0; i-- {
				n.AddChild(gen(depth + 1))
			}
		}
		return n
	}
	p := &Plan{Root: gen(0)}
	if r.Intn(2) == 0 {
		p.AddProperty(Status, "planning time", Num(float64(r.Intn(100))/10))
	}
	return p
}

func TestQuickTextRoundTrip(t *testing.T) {
	// Property: MarshalText followed by ParseText preserves structure for
	// any plan whose names canonicalize losslessly (we compare via a
	// canonicalized clone).
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPlan(r, 3)
		// Canonical expectation: names that round trip through
		// CanonicalName+DisplayName.
		exp := p.Clone()
		exp.Walk(func(n *Node, _ int) {
			n.Op.Name = DisplayName(CanonicalName(n.Op.Name))
			for i := range n.Properties {
				n.Properties[i].Name = DisplayName(CanonicalName(n.Properties[i].Name))
			}
		})
		for i := range exp.Properties {
			exp.Properties[i].Name = DisplayName(CanonicalName(exp.Properties[i].Name))
		}
		got, err := ParseText(p.MarshalText())
		if err != nil {
			t.Logf("parse error for seed %d: %v", seed, err)
			return false
		}
		if !exp.Equal(got) {
			t.Logf("seed %d:\nwant %s\ngot  %s", seed, exp.MarshalText(), got.MarshalText())
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickIndentedRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPlan(r, 3)
		// Indented form preserves spaces in names; only string values with
		// no special characters are used by randomPlan, so exact equality
		// should hold.
		got, err := ParseText(p.MarshalIndentedText())
		if err != nil {
			t.Logf("seed %d parse error: %v", seed, err)
			return false
		}
		if !p.Equal(got) {
			t.Logf("seed %d mismatch:\nwant\n%s\ngot\n%s", seed,
				p.MarshalIndentedText(), got.MarshalIndentedText())
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestNormalizeUnstable(t *testing.T) {
	cases := map[string]string{
		"TableFullScan_17": "TableFullScan_?",
		"cost=12.5..99.1":  "cost=?.?..?.?",
		"c0 < 100":         "c0 < ?",
		"a   b":            "a b",
		"":                 "",
	}
	for in, want := range cases {
		if got := NormalizeUnstable(in); got != want {
			t.Errorf("NormalizeUnstable(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseIndentedPropertyOwnership(t *testing.T) {
	in := "Folder->Aggregate\n" +
		"  Configuration->group key: \"c0\"\n" +
		"  Producer->Full Table Scan\n" +
		"    Configuration->filter: \"c0 < 5\"\n" +
		"Status->planning time: 1.5\n"
	p, err := ParseText(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Root.Property("group key"); !ok {
		t.Error("group key should belong to Aggregate")
	}
	if _, ok := p.Root.Children[0].Property("filter"); !ok {
		t.Error("filter should belong to the scan")
	}
	if _, ok := p.Property("planning time"); !ok {
		t.Error("planning time should be plan-associated")
	}
}

func TestParseTextDetectsForm(t *testing.T) {
	ebnf := samplePlan().MarshalText()
	ind := samplePlan().MarshalIndentedText()
	p1, err1 := ParseText(ebnf)
	p2, err2 := ParseText(ind)
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v %v", err1, err2)
	}
	if !reflect.DeepEqual(p1.Histogram(), p2.Histogram()) {
		t.Error("both forms should describe the same plan")
	}
}
