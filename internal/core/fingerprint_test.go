package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFingerprintIgnoresUnstableInfo(t *testing.T) {
	a := samplePlan()
	b := samplePlan()
	// Perturb costs, cardinalities, and status.
	b.Root.Properties[1].Value = Num(123456)
	b.Properties[0].Value = Num(9.99)
	for _, opts := range []FingerprintOptions{
		{},
		{IncludeConfiguration: true},
		{IncludeConfiguration: true, IncludeConfigurationValues: true},
	} {
		if a.Fingerprint(opts) != b.Fingerprint(opts) {
			t.Errorf("fingerprints must ignore unstable info (opts=%+v)", opts)
		}
	}
}

func TestFingerprintSeesStructure(t *testing.T) {
	a := samplePlan()
	b := samplePlan()
	b.Root.AddChild(NewNode(Executor, "Collect"))
	if a.Fingerprint(FingerprintOptions{}) == b.Fingerprint(FingerprintOptions{}) {
		t.Error("added node must change the fingerprint")
	}
	c := samplePlan()
	c.Root.Op.Name = "Sort Aggregate"
	if a.Fingerprint(FingerprintOptions{}) == c.Fingerprint(FingerprintOptions{}) {
		t.Error("renamed operation must change the fingerprint")
	}
}

func TestFingerprintConfigurationGranularity(t *testing.T) {
	base := samplePlan()
	noFilter := samplePlan()
	// Remove the scan's filter Configuration property.
	scan := noFilter.Root.Children[0].Children[0]
	var kept []Property
	for _, pr := range scan.Properties {
		if pr.Name != "filter" {
			kept = append(kept, pr)
		}
	}
	scan.Properties = kept

	plain := FingerprintOptions{}
	withCfg := FingerprintOptions{IncludeConfiguration: true}
	if base.Fingerprint(plain) != noFilter.Fingerprint(plain) {
		t.Error("ops-only fingerprint should not see configuration")
	}
	if base.Fingerprint(withCfg) == noFilter.Fingerprint(withCfg) {
		t.Error("configuration fingerprint must see the filter property")
	}
}

func TestFingerprintNormalizesConstants(t *testing.T) {
	mk := func(pred string) *Plan {
		return &Plan{Root: NewNode(Producer, "Full Table Scan").
			AddProperty(Configuration, "filter", Str(pred))}
	}
	opts := FingerprintOptions{IncludeConfiguration: true, IncludeConfigurationValues: true}
	if mk("c0 < 100").Fingerprint(opts) != mk("c0 < 999").Fingerprint(opts) {
		t.Error("predicates differing only in constants must collide")
	}
	if mk("c0 < 100").Fingerprint(opts) == mk("c1 < 100").Fingerprint(opts) {
		t.Error("different columns must not collide")
	}
}

func TestFingerprintPlanProperties(t *testing.T) {
	a := &Plan{Root: NewNode(Producer, "Scan")}
	b := a.Clone()
	b.AddProperty(Configuration, "optimizer mode", Str("aggressive"))
	opts := FingerprintOptions{IncludePlanProperties: true}
	if a.Fingerprint(opts) == b.Fingerprint(opts) {
		t.Error("plan-level configuration should affect fingerprint when enabled")
	}
	if a.Fingerprint(FingerprintOptions{}) != b.Fingerprint(FingerprintOptions{}) {
		t.Error("plan-level configuration ignored by default")
	}
}

func TestFingerprintSet(t *testing.T) {
	s := NewFingerprintSet(FingerprintOptions{})
	p1 := samplePlan()
	if !s.Observe(p1) {
		t.Error("first observation must be new")
	}
	if s.Observe(p1.Clone()) {
		t.Error("second observation must not be new")
	}
	p2 := samplePlan()
	p2.Root.AddChild(NewNode(Executor, "Collect"))
	if !s.Observe(p2) {
		t.Error("structurally different plan must be new")
	}
	if s.Size() != 2 {
		t.Errorf("Size = %d, want 2", s.Size())
	}
	if s.Count(p1) != 2 {
		t.Errorf("Count = %d, want 2", s.Count(p1))
	}
}

func TestFingerprintDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		p := randomPlan(rand.New(rand.NewSource(seed)), 3)
		opts := FingerprintOptions{IncludeConfiguration: true, IncludeConfigurationValues: true}
		return p.Fingerprint(opts) == p.Clone().Fingerprint(opts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestFingerprintPropertyOrderIndependence(t *testing.T) {
	a := &Plan{Root: NewNode(Producer, "Scan").
		AddProperty(Configuration, "a", Str("1")).
		AddProperty(Configuration, "b", Str("2"))}
	b := &Plan{Root: NewNode(Producer, "Scan").
		AddProperty(Configuration, "b", Str("2")).
		AddProperty(Configuration, "a", Str("1"))}
	opts := FingerprintOptions{IncludeConfiguration: true, IncludeConfigurationValues: true}
	if a.Fingerprint(opts) != b.Fingerprint(opts) {
		t.Error("property order must not affect fingerprints")
	}
}
