package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFingerprintIgnoresUnstableInfo(t *testing.T) {
	a := samplePlan()
	b := samplePlan()
	// Perturb costs, cardinalities, and status.
	b.Root.Properties[1].Value = Num(123456)
	b.Properties[0].Value = Num(9.99)
	for _, opts := range []FingerprintOptions{
		{},
		{IncludeConfiguration: true},
		{IncludeConfiguration: true, IncludeConfigurationValues: true},
	} {
		if a.Fingerprint(opts) != b.Fingerprint(opts) {
			t.Errorf("fingerprints must ignore unstable info (opts=%+v)", opts)
		}
	}
}

func TestFingerprintSeesStructure(t *testing.T) {
	a := samplePlan()
	b := samplePlan()
	b.Root.AddChild(NewNode(Executor, "Collect"))
	if a.Fingerprint(FingerprintOptions{}) == b.Fingerprint(FingerprintOptions{}) {
		t.Error("added node must change the fingerprint")
	}
	c := samplePlan()
	c.Root.Op.Name = "Sort Aggregate"
	if a.Fingerprint(FingerprintOptions{}) == c.Fingerprint(FingerprintOptions{}) {
		t.Error("renamed operation must change the fingerprint")
	}
}

func TestFingerprintConfigurationGranularity(t *testing.T) {
	base := samplePlan()
	noFilter := samplePlan()
	// Remove the scan's filter Configuration property.
	scan := noFilter.Root.Children[0].Children[0]
	var kept []Property
	for _, pr := range scan.Properties {
		if pr.Name != "filter" {
			kept = append(kept, pr)
		}
	}
	scan.Properties = kept

	plain := FingerprintOptions{}
	withCfg := FingerprintOptions{IncludeConfiguration: true}
	if base.Fingerprint(plain) != noFilter.Fingerprint(plain) {
		t.Error("ops-only fingerprint should not see configuration")
	}
	if base.Fingerprint(withCfg) == noFilter.Fingerprint(withCfg) {
		t.Error("configuration fingerprint must see the filter property")
	}
}

func TestFingerprintNormalizesConstants(t *testing.T) {
	mk := func(pred string) *Plan {
		return &Plan{Root: NewNode(Producer, "Full Table Scan").
			AddProperty(Configuration, "filter", Str(pred))}
	}
	opts := FingerprintOptions{IncludeConfiguration: true, IncludeConfigurationValues: true}
	if mk("c0 < 100").Fingerprint(opts) != mk("c0 < 999").Fingerprint(opts) {
		t.Error("predicates differing only in constants must collide")
	}
	if mk("c0 < 100").Fingerprint(opts) == mk("c1 < 100").Fingerprint(opts) {
		t.Error("different columns must not collide")
	}
}

func TestFingerprintPlanProperties(t *testing.T) {
	a := &Plan{Root: NewNode(Producer, "Scan")}
	b := a.Clone()
	b.AddProperty(Configuration, "optimizer mode", Str("aggressive"))
	opts := FingerprintOptions{IncludePlanProperties: true}
	if a.Fingerprint(opts) == b.Fingerprint(opts) {
		t.Error("plan-level configuration should affect fingerprint when enabled")
	}
	if a.Fingerprint(FingerprintOptions{}) != b.Fingerprint(FingerprintOptions{}) {
		t.Error("plan-level configuration ignored by default")
	}
}

func TestFingerprintSet(t *testing.T) {
	s := NewFingerprintSet(FingerprintOptions{})
	p1 := samplePlan()
	if !s.Observe(p1) {
		t.Error("first observation must be new")
	}
	if s.Observe(p1.Clone()) {
		t.Error("second observation must not be new")
	}
	p2 := samplePlan()
	p2.Root.AddChild(NewNode(Executor, "Collect"))
	if !s.Observe(p2) {
		t.Error("structurally different plan must be new")
	}
	if s.Size() != 2 {
		t.Errorf("Size = %d, want 2", s.Size())
	}
	if s.Count(p1) != 2 {
		t.Errorf("Count = %d, want 2", s.Count(p1))
	}
}

func TestFingerprintDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		p := randomPlan(rand.New(rand.NewSource(seed)), 3)
		opts := FingerprintOptions{IncludeConfiguration: true, IncludeConfigurationValues: true}
		return p.Fingerprint(opts) == p.Clone().Fingerprint(opts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestFingerprintBinaryForms checks that the three fingerprint forms —
// hex string, [32]byte digest, and 64-bit fast hash — agree on identity
// and all react to structural changes.
func TestFingerprintBinaryForms(t *testing.T) {
	allOpts := []FingerprintOptions{
		{},
		{IncludeConfiguration: true},
		{IncludeConfiguration: true, IncludeConfigurationValues: true},
		{IncludePlanProperties: true},
	}
	a := samplePlan()
	for _, opts := range allOpts {
		if got, want := a.Fingerprint(opts), HexFingerprint(a.FingerprintBytes(opts)); got != want {
			t.Errorf("hex form diverged from bytes form (opts=%+v): %s vs %s", opts, got, want)
		}
		clone := a.Clone()
		if a.FingerprintBytes(opts) != clone.FingerprintBytes(opts) {
			t.Errorf("FingerprintBytes not deterministic across clones (opts=%+v)", opts)
		}
		if a.Fingerprint64(opts) != clone.Fingerprint64(opts) {
			t.Errorf("Fingerprint64 not deterministic across clones (opts=%+v)", opts)
		}
	}
	b := samplePlan()
	b.Root.AddChild(NewNode(Executor, "Collect"))
	if a.FingerprintBytes(FingerprintOptions{}) == b.FingerprintBytes(FingerprintOptions{}) {
		t.Error("added node must change FingerprintBytes")
	}
	if a.Fingerprint64(FingerprintOptions{}) == b.Fingerprint64(FingerprintOptions{}) {
		t.Error("added node must change Fingerprint64")
	}
}

// TestFingerprintZeroAllocs guards the QPG hot loop: the fast 64-bit
// fingerprint and the FingerprintSet hit path must not touch the heap.
// (Options including configuration values may allocate while rendering
// values and are not guarded.)
func TestFingerprintZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	p := samplePlan()
	opts := FingerprintOptions{IncludeConfiguration: true}
	s := NewFingerprintSet(opts)
	s.Observe(p) // the set now contains p; further observations are hits
	// Warm the pooled walk state so scratch buffers are grown.
	p.Fingerprint64(opts)
	p.FingerprintBytes(opts)
	cases := []struct {
		name string
		fn   func()
	}{
		{"Fingerprint64", func() { p.Fingerprint64(opts) }},
		{"FingerprintBytes", func() { p.FingerprintBytes(opts) }},
		{"Observe hit", func() { s.Observe(p) }},
		{"Count", func() { s.Count(p) }},
	}
	for _, c := range cases {
		if avg := testing.AllocsPerRun(200, c.fn); avg != 0 {
			t.Errorf("%s: %v allocs/op, want 0", c.name, avg)
		}
	}
}

func TestFingerprintPropertyOrderIndependence(t *testing.T) {
	a := &Plan{Root: NewNode(Producer, "Scan").
		AddProperty(Configuration, "a", Str("1")).
		AddProperty(Configuration, "b", Str("2"))}
	b := &Plan{Root: NewNode(Producer, "Scan").
		AddProperty(Configuration, "b", Str("2")).
		AddProperty(Configuration, "a", Str("1"))}
	opts := FingerprintOptions{IncludeConfiguration: true, IncludeConfigurationValues: true}
	if a.Fingerprint(opts) != b.Fingerprint(opts) {
		t.Error("property order must not affect fingerprints")
	}
}
