package core

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"unicode"
)

// This file implements the text format of the unified query plan
// representation. Two renderings are provided:
//
//   - The strict EBNF form of the paper's Listing 2, a single-line grammar:
//
//     plan       ::= ( tree )? properties
//     tree       ::= node ( '--children-->' '{' tree (',' tree)* '}' )?
//     node       ::= operation properties
//     operation  ::= 'Operation' ':' category '->' identifier
//     property   ::= category '->' identifier ':' value
//
//   - An indented human-readable form matching the paper's Listing 4, where
//     each operation appears on its own line as "Category->Name" with
//     two-space indentation per tree level and properties on subsequent
//     indented lines.
//
// ParseText accepts both renderings.

// textBufPool recycles the scratch buffers behind MarshalText and
// MarshalIndentedText so repeated serialization (fingerprint loops, batch
// pipelines) reuses grown capacity instead of re-growing per call. The
// returned string is always a fresh copy; pooled buffers never escape.
var textBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// appendValue writes v in text-format syntax directly into b, using the
// buffer's spare capacity instead of building intermediate strings the way
// Value.String does.
func appendValue(b *bytes.Buffer, v Value) {
	switch v.Kind {
	case KindString:
		b.Write(strconv.AppendQuote(b.AvailableBuffer(), v.Str))
	case KindNumber:
		b.Write(appendNumber(b.AvailableBuffer(), v.Num))
	case KindBool:
		if v.Bool {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	default:
		b.WriteString("null")
	}
}

// MarshalText renders the plan in the strict single-line EBNF format.
// Operation and property identifiers are canonicalized (spaces become
// underscores) so the output conforms to the grammar's keyword rule.
func (p *Plan) MarshalText() string {
	b := textBufPool.Get().(*bytes.Buffer)
	b.Reset()
	defer textBufPool.Put(b)
	if p.Root != nil {
		writeTreeEBNF(b, p.Root)
		if len(p.Properties) > 0 {
			// The grammar "plan ::= (tree)? properties" is ambiguous when
			// the root operation has trailing properties; the explicit
			// marker resolves which properties are plan-associated.
			b.WriteString(" Plan: ")
		}
	}
	writePropsEBNF(b, p.Properties)
	return b.String()
}

func writeTreeEBNF(b *bytes.Buffer, n *Node) {
	b.WriteString("Operation: ")
	b.WriteString(string(n.Op.Category))
	b.WriteString("->")
	b.WriteString(CanonicalName(n.Op.Name))
	if len(n.Properties) > 0 {
		b.WriteByte(' ')
		writePropsEBNF(b, n.Properties)
	}
	if len(n.Children) > 0 {
		b.WriteString(" --children--> {")
		for i, c := range n.Children {
			if i > 0 {
				b.WriteString(", ")
			}
			writeTreeEBNF(b, c)
		}
		b.WriteString("}")
	}
}

func writePropsEBNF(b *bytes.Buffer, props []Property) {
	for i, pr := range props {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(string(pr.Category))
		b.WriteString("->")
		b.WriteString(CanonicalName(pr.Name))
		b.WriteString(": ")
		appendValue(b, pr.Value)
	}
}

// indentBlanks backs writeIndent; deep plans write it in slices.
const indentBlanks = "                                                                "

// writeIndent writes 2*depth spaces without allocating.
func writeIndent(b *bytes.Buffer, depth int) {
	for n := 2 * depth; n > 0; {
		k := min(n, len(indentBlanks))
		b.WriteString(indentBlanks[:k])
		n -= k
	}
}

// MarshalIndentedText renders the plan in the indented, human-readable text
// form used by the paper's Listing 4: one operation per line with two-space
// indentation per level, each property on its own line below its operation,
// and plan-associated properties at the end.
func (p *Plan) MarshalIndentedText() string {
	b := textBufPool.Get().(*bytes.Buffer)
	b.Reset()
	defer textBufPool.Put(b)
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		writeIndent(b, depth)
		b.WriteString(string(n.Op.Category))
		b.WriteString("->")
		b.WriteString(n.Op.Name)
		b.WriteByte('\n')
		for _, pr := range n.Properties {
			writeIndent(b, depth+1)
			b.WriteString(string(pr.Category))
			b.WriteString("->")
			b.WriteString(pr.Name)
			b.WriteString(": ")
			appendValue(b, pr.Value)
			b.WriteByte('\n')
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	if p.Root != nil {
		walk(p.Root, 0)
	}
	for _, pr := range p.Properties {
		b.WriteString(string(pr.Category))
		b.WriteString("->")
		b.WriteString(pr.Name)
		b.WriteString(": ")
		appendValue(b, pr.Value)
		b.WriteByte('\n')
	}
	return b.String()
}

// ParseText parses either text rendering back into a Plan. It auto-detects
// the form: input containing the token "Operation:" is parsed as the strict
// EBNF form; otherwise as the indented form.
func ParseText(s string) (*Plan, error) {
	trimmed := strings.TrimSpace(s)
	if trimmed == "" {
		return &Plan{}, nil
	}
	if strings.Contains(trimmed, "Operation:") {
		return parseEBNF(trimmed)
	}
	// A single line without "Operation:" may still be a strict-form plan
	// property list ("Cardinality->x: 1, Status->y: 2").
	if !strings.Contains(trimmed, "\n") {
		if p, err := parseEBNF(trimmed); err == nil {
			return p, nil
		}
	}
	return parseIndented(s)
}

// ---------------------------------------------------------------- strict EBNF

type textLexer struct {
	in  string
	pos int
}

func (l *textLexer) skipSpace() {
	for l.pos < len(l.in) && (l.in[l.pos] == ' ' || l.in[l.pos] == '\t' || l.in[l.pos] == '\n' || l.in[l.pos] == '\r') {
		l.pos++
	}
}

func (l *textLexer) eof() bool {
	l.skipSpace()
	return l.pos >= len(l.in)
}

func (l *textLexer) peekByte() byte {
	l.skipSpace()
	if l.pos >= len(l.in) {
		return 0
	}
	return l.in[l.pos]
}

func (l *textLexer) consume(tok string) bool {
	l.skipSpace()
	if strings.HasPrefix(l.in[l.pos:], tok) {
		l.pos += len(tok)
		return true
	}
	return false
}

func (l *textLexer) expect(tok string) error {
	if !l.consume(tok) {
		ctx := l.in[l.pos:]
		if len(ctx) > 25 {
			ctx = ctx[:25] + "…"
		}
		return fmt.Errorf("core: expected %q at offset %d (near %q)", tok, l.pos, ctx)
	}
	return nil
}

// identifier reads a keyword: letters, digits, underscores. It tolerates
// embedded single spaces between words (paper usage, e.g. "Full Table")
// when the next word is not a structural token.
func (l *textLexer) identifier() (string, error) {
	l.skipSpace()
	start := l.pos
	readWord := func() bool {
		n := 0
		for l.pos < len(l.in) {
			c := l.in[l.pos]
			if c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) {
				l.pos++
				n++
				continue
			}
			break
		}
		return n > 0
	}
	if !readWord() {
		return "", fmt.Errorf("core: expected identifier at offset %d", l.pos)
	}
	// Greedily absorb following space-separated words that are plainly part
	// of a multi-word name (not followed by "->" or ":" which would make
	// them the start of the next property/operation, and not structural).
	for {
		save := l.pos
		if l.pos >= len(l.in) || l.in[l.pos] != ' ' {
			break
		}
		l.pos++
		wordStart := l.pos
		if !readWord() {
			l.pos = save
			break
		}
		rest := l.in[l.pos:]
		word := l.in[wordStart:l.pos]
		// Stop absorbing when the word begins the next construct: a
		// category ("word->"), a node ("Operation:"), the plan-property
		// marker ("Plan:"), or the children arrow.
		if strings.HasPrefix(rest, "->") ||
			word == "Operation" || word == "Plan" ||
			strings.HasPrefix(word, "--children") {
			l.pos = save
			break
		}
	}
	return l.in[start:l.pos], nil
}

func (l *textLexer) value() (Value, error) {
	l.skipSpace()
	if l.pos >= len(l.in) {
		return Value{}, fmt.Errorf("core: expected value at end of input")
	}
	switch c := l.in[l.pos]; {
	case c == '"':
		rest := l.in[l.pos:]
		// Find the closing quote honoring backslash escapes.
		end := 1
		for end < len(rest) {
			if rest[end] == '\\' {
				end += 2
				continue
			}
			if rest[end] == '"' {
				break
			}
			end++
		}
		if end >= len(rest) {
			return Value{}, fmt.Errorf("core: unterminated string at offset %d", l.pos)
		}
		raw := rest[:end+1]
		s, err := strconv.Unquote(raw)
		if err != nil {
			return Value{}, fmt.Errorf("core: bad string literal %s: %v", raw, err)
		}
		l.pos += len(raw)
		return Str(s), nil
	case c == '-' || c >= '0' && c <= '9':
		start := l.pos
		l.pos++
		for l.pos < len(l.in) {
			c := l.in[l.pos]
			if c >= '0' && c <= '9' || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-' {
				l.pos++
				continue
			}
			break
		}
		f, err := strconv.ParseFloat(l.in[start:l.pos], 64)
		if err != nil {
			return Value{}, fmt.Errorf("core: bad number %q: %v", l.in[start:l.pos], err)
		}
		return Num(f), nil
	default:
		if l.consume("true") {
			return BoolVal(true), nil
		}
		if l.consume("false") {
			return BoolVal(false), nil
		}
		if l.consume("null") {
			return Null(), nil
		}
	}
	return Value{}, fmt.Errorf("core: unrecognized value at offset %d", l.pos)
}

func parseEBNF(s string) (*Plan, error) {
	l := &textLexer{in: s}
	p := &Plan{}
	if strings.HasPrefix(strings.TrimSpace(s), "Operation:") {
		root, err := parseTreeEBNF(l)
		if err != nil {
			return nil, err
		}
		p.Root = root
	}
	// Remaining input is the plan-associated property list, optionally
	// introduced by the "Plan:" marker.
	l.consume("Plan")
	l.consume(":")
	for !l.eof() {
		l.consume(",")
		if l.eof() {
			break
		}
		pr, err := parsePropertyEBNF(l)
		if err != nil {
			return nil, err
		}
		p.Properties = append(p.Properties, pr)
	}
	return p, nil
}

func parseTreeEBNF(l *textLexer) (*Node, error) {
	if err := l.expect("Operation"); err != nil {
		return nil, err
	}
	if err := l.expect(":"); err != nil {
		return nil, err
	}
	cat, err := l.identifier()
	if err != nil {
		return nil, err
	}
	if err := l.expect("->"); err != nil {
		return nil, err
	}
	name, err := l.identifier()
	if err != nil {
		return nil, err
	}
	n := &Node{Op: Operation{Category: OperationCategory(cat), Name: DisplayName(name)}}
	// Operation-associated properties: comma-separated "cat->name: value"
	// entries until we hit '--children-->', '}', ',', a following
	// "Operation:" (sibling), or end of input.
	for {
		l.skipSpace()
		if l.eof() {
			break
		}
		rest := l.in[l.pos:]
		if strings.HasPrefix(rest, "--children-->") || strings.HasPrefix(rest, "}") ||
			strings.HasPrefix(rest, "Plan:") {
			break
		}
		save := l.pos
		l.consume(",")
		l.skipSpace()
		rest = l.in[l.pos:]
		if strings.HasPrefix(rest, "Operation:") || strings.HasPrefix(rest, "}") ||
			strings.HasPrefix(rest, "Plan:") || rest == "" {
			l.pos = save
			break
		}
		pr, err := parsePropertyEBNF(l)
		if err != nil {
			l.pos = save
			break
		}
		n.Properties = append(n.Properties, pr)
	}
	if l.consume("--children-->") {
		if err := l.expect("{"); err != nil {
			return nil, err
		}
		for {
			child, err := parseTreeEBNF(l)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, child)
			if l.consume(",") {
				continue
			}
			break
		}
		if err := l.expect("}"); err != nil {
			return nil, err
		}
	}
	return n, nil
}

func parsePropertyEBNF(l *textLexer) (Property, error) {
	cat, err := l.identifier()
	if err != nil {
		return Property{}, err
	}
	if err := l.expect("->"); err != nil {
		return Property{}, err
	}
	name, err := l.identifier()
	if err != nil {
		return Property{}, err
	}
	if err := l.expect(":"); err != nil {
		return Property{}, err
	}
	v, err := l.value()
	if err != nil {
		return Property{}, err
	}
	return Property{Category: PropertyCategory(cat), Name: DisplayName(name), Value: v}, nil
}

// ------------------------------------------------------------- indented form

// parseIndented parses the indented rendering produced by
// MarshalIndentedText. Operation lines have the form
// "<indent>Category->Name"; property lines are indented one extra level and
// contain ": "; plan properties appear at indent 0 after the tree with a
// known property category prefix.
func parseIndented(s string) (*Plan, error) {
	p := &Plan{}
	type frame struct {
		node  *Node
		depth int
	}
	var stack []frame
	lines := strings.Split(s, "\n")
	for lineNo, raw := range lines {
		if strings.TrimSpace(raw) == "" {
			continue
		}
		depth := 0
		for depth*2+1 < len(raw) && raw[depth*2] == ' ' && raw[depth*2+1] == ' ' {
			depth++
		}
		line := strings.TrimSpace(raw)
		arrow := strings.Index(line, "->")
		if arrow < 0 {
			return nil, fmt.Errorf("core: line %d: expected 'Category->Name': %q", lineNo+1, line)
		}
		cat := line[:arrow]
		rest := line[arrow+2:]
		if isPropertyCategory(cat) {
			colon := strings.Index(rest, ": ")
			if colon < 0 {
				return nil, fmt.Errorf("core: line %d: property without value: %q", lineNo+1, line)
			}
			v, err := parseValueLiteral(strings.TrimSpace(rest[colon+2:]))
			if err != nil {
				return nil, fmt.Errorf("core: line %d: %v", lineNo+1, err)
			}
			pr := Property{Category: PropertyCategory(cat), Name: rest[:colon], Value: v}
			// A property line at visual depth d belongs to the operation at
			// depth d-1; depth 0 properties are plan-associated.
			var owner *Node
			if depth > 0 {
				for i := len(stack) - 1; i >= 0; i-- {
					if stack[i].depth == depth-1 {
						owner = stack[i].node
						break
					}
					if stack[i].depth < depth-1 {
						break
					}
				}
			}
			if owner == nil {
				p.Properties = append(p.Properties, pr)
				continue
			}
			owner.Properties = append(owner.Properties, pr)
			continue
		}
		// Operation line.
		n := &Node{Op: Operation{Category: OperationCategory(cat), Name: rest}}
		for len(stack) > 0 && stack[len(stack)-1].depth >= depth {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			if p.Root != nil {
				return nil, fmt.Errorf("core: line %d: multiple roots", lineNo+1)
			}
			p.Root = n
		} else {
			parent := stack[len(stack)-1].node
			parent.Children = append(parent.Children, n)
		}
		stack = append(stack, frame{node: n, depth: depth})
	}
	return p, nil
}

func isPropertyCategory(s string) bool {
	return PropertyCategory(s).Valid()
}

func parseValueLiteral(s string) (Value, error) {
	switch {
	case s == "null":
		return Null(), nil
	case s == "true":
		return BoolVal(true), nil
	case s == "false":
		return BoolVal(false), nil
	case strings.HasPrefix(s, `"`):
		u, err := strconv.Unquote(s)
		if err != nil {
			return Value{}, fmt.Errorf("bad string %s: %v", s, err)
		}
		return Str(u), nil
	default:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			// Be forgiving: unquoted free text is a string.
			return Str(s), nil
		}
		return Num(f), nil
	}
}
