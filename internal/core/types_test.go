package core

import (
	"testing"
	"testing/quick"
)

func samplePlan() *Plan {
	scan := NewNode(Producer, "Full Table Scan").
		AddProperty(Configuration, "name object", Str("t0")).
		AddProperty(Cardinality, "estimated rows", Num(1000)).
		AddProperty(Cost, "total cost", Num(35.5)).
		AddProperty(Configuration, "filter", Str("c0 < 100"))
	sort := NewNode(Combinator, "Sort").
		AddProperty(Configuration, "sort key", Str("c0"))
	sort.AddChild(scan)
	agg := NewNode(Folder, "Hash Aggregate").
		AddProperty(Configuration, "group key", Str("c0")).
		AddProperty(Cardinality, "estimated rows", Num(200))
	agg.AddChild(sort)
	p := &Plan{Source: "postgresql", Root: agg}
	p.AddProperty(Status, "planning time", Num(0.124))
	return p
}

func TestCategoryValidity(t *testing.T) {
	for _, c := range OperationCategories {
		if !c.Valid() {
			t.Errorf("category %q should be valid", c)
		}
	}
	if OperationCategory("Nonsense").Valid() {
		t.Error("Nonsense should not be a valid operation category")
	}
	for _, c := range PropertyCategories {
		if !c.Valid() {
			t.Errorf("property category %q should be valid", c)
		}
	}
	if PropertyCategory("Weird").Valid() {
		t.Error("Weird should not be a valid property category")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "null"},
		{Str("abc"), `"abc"`},
		{Str(`quote"inside`), `"quote\"inside"`},
		{Num(42), "42"},
		{Num(-3), "-3"},
		{Num(0.124), "0.124"},
		{BoolVal(true), "true"},
		{BoolVal(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("Value %#v String = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueEqual(t *testing.T) {
	if !Num(1).Equal(Num(1)) || Num(1).Equal(Num(2)) {
		t.Error("numeric equality broken")
	}
	if Str("1").Equal(Num(1)) {
		t.Error("cross-kind values must differ")
	}
	if !Null().Equal(Null()) {
		t.Error("null must equal null")
	}
}

func TestWalkAndCounts(t *testing.T) {
	p := samplePlan()
	if got := p.NodeCount(); got != 3 {
		t.Fatalf("NodeCount = %d, want 3", got)
	}
	if got := p.Depth(); got != 3 {
		t.Fatalf("Depth = %d, want 3", got)
	}
	counts := p.CountByCategory()
	if counts[Producer] != 1 || counts[Combinator] != 1 || counts[Folder] != 1 {
		t.Errorf("CountByCategory = %v", counts)
	}
	if counts[Join] != 0 {
		t.Errorf("Join count should be 0, got %d", counts[Join])
	}
	var order []string
	p.Walk(func(n *Node, d int) { order = append(order, n.Op.Name) })
	want := []string{"Hash Aggregate", "Sort", "Full Table Scan"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("walk order %v, want %v", order, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	p := samplePlan()
	q := p.Clone()
	if !p.Equal(q) {
		t.Fatal("clone not equal to original")
	}
	q.Root.Op.Name = "Changed"
	q.Root.Children[0].Properties[0].Value = Str("other")
	if p.Root.Op.Name == "Changed" {
		t.Error("clone shares root node")
	}
	if p.Root.Children[0].Properties[0].Value.Str == "other" {
		t.Error("clone shares property storage")
	}
	if p.Equal(q) {
		t.Error("mutated clone should differ")
	}
}

func TestEqualIgnoresSource(t *testing.T) {
	p := samplePlan()
	q := p.Clone()
	q.Source = "another"
	if !p.Equal(q) {
		t.Error("Equal must ignore Source")
	}
}

func TestValidate(t *testing.T) {
	p := samplePlan()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	bad := samplePlan()
	bad.Root.Op.Category = "Gizmo"
	if err := bad.Validate(); err == nil {
		t.Error("unknown category must be rejected by default")
	}
	if err := bad.Validate(AllowUnknownCategories()); err != nil {
		t.Errorf("AllowUnknownCategories should accept: %v", err)
	}
	empty := samplePlan()
	empty.Root.Children[0].Op.Name = ""
	if err := empty.Validate(); err == nil {
		t.Error("empty operation name must be rejected")
	}
	shared := samplePlan()
	shared.Root.Children = append(shared.Root.Children, shared.Root.Children[0])
	if err := shared.Validate(); err == nil {
		t.Error("aliased node must be rejected")
	}
}

func TestPropertyLookup(t *testing.T) {
	p := samplePlan()
	if pr, ok := p.Property("planning time"); !ok || pr.Value.Num != 0.124 {
		t.Errorf("plan property lookup failed: %v %v", pr, ok)
	}
	scan := p.Root.Children[0].Children[0]
	if pr, ok := scan.Property("filter"); !ok || pr.Value.Str != "c0 < 100" {
		t.Errorf("node property lookup failed: %v %v", pr, ok)
	}
	if _, ok := scan.Property("missing"); ok {
		t.Error("missing property reported present")
	}
	cfg := scan.PropertiesIn(Configuration)
	if len(cfg) != 2 {
		t.Errorf("PropertiesIn(Configuration) = %d entries, want 2", len(cfg))
	}
}

func TestCanonicalName(t *testing.T) {
	cases := map[string]string{
		"Full Table Scan": "Full_Table_Scan",
		"TopN":            "TopN",
		"a-b.c":           "a_b_c",
		"2phase":          "n2phase",
	}
	for in, want := range cases {
		if got := CanonicalName(in); got != want {
			t.Errorf("CanonicalName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := DisplayName("Full_Table_Scan"); got != "Full Table Scan" {
		t.Errorf("DisplayName = %q", got)
	}
}

func TestCanonicalNameAlwaysKeyword(t *testing.T) {
	// Property: for any input, CanonicalName output matches the grammar's
	// keyword rule: empty, or letter followed by letters/digits/underscores.
	isKeyword := func(s string) bool {
		for i, r := range s {
			ok := r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
				r >= '0' && r <= '9'
			if !ok {
				return false
			}
			if i == 0 && (r >= '0' && r <= '9') {
				return false
			}
		}
		return true
	}
	f := func(s string) bool { return isKeyword(CanonicalName(s)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatNumber(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		42:     "42",
		-17:    "-17",
		1.5:    "1.5",
		0.124:  "0.124",
		1e20:   "1e+20",
		1000.0: "1000",
	}
	for in, want := range cases {
		if got := FormatNumber(in); got != want {
			t.Errorf("FormatNumber(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestSortProperties(t *testing.T) {
	props := []Property{
		{Category: Status, Name: "z"},
		{Category: Cardinality, Name: "b"},
		{Category: Configuration, Name: "a"},
		{Category: Cardinality, Name: "a"},
	}
	SortProperties(props)
	want := []string{"a", "b", "a", "z"} // Cardinality a,b then Config a then Status z
	for i, p := range props {
		if p.Name != want[i] {
			t.Fatalf("sorted order %v", props)
		}
	}
	if props[0].Category != Cardinality || props[3].Category != Status {
		t.Fatalf("category order wrong: %v", props)
	}
}

func TestEmptyPlanBehaviour(t *testing.T) {
	p := &Plan{}
	if p.NodeCount() != 0 || p.Depth() != 0 {
		t.Error("empty plan should have no nodes")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("empty plan should validate: %v", err)
	}
	// InfluxDB-style: properties only.
	p.AddProperty(Cardinality, "TotalSeries", Num(5))
	if err := p.Validate(); err != nil {
		t.Errorf("property-only plan should validate: %v", err)
	}
}

// TestPropertyCategoryIndex mirrors TestCategoryIndex for the four
// property categories the binary codec encodes by index.
func TestPropertyCategoryIndex(t *testing.T) {
	for i, c := range PropertyCategories {
		if got := PropertyCategoryIndex(c); got != i {
			t.Errorf("PropertyCategoryIndex(%s) = %d, want %d", c, got, i)
		}
	}
	if got := PropertyCategoryIndex("Provenance"); got != -1 {
		t.Errorf("PropertyCategoryIndex(unknown) = %d, want -1", got)
	}
}
