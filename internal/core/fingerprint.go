package core

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
)

// Fingerprinting gives QPG (Query Plan Guidance) its core primitive:
// deciding whether a query plan is structurally new. Per Section V-A.1,
// this requires ignoring unstable information — random identifiers,
// estimated costs and cardinalities, and runtime status — while keeping the
// operation tree and, optionally, configuration shape.

// FingerprintOptions controls which plan details participate in the
// fingerprint. The zero value is the strictest useful setting: operations
// only.
type FingerprintOptions struct {
	// IncludeConfiguration folds Configuration property names (not values)
	// into the fingerprint, so e.g. a scan with a filter differs from one
	// without.
	IncludeConfiguration bool
	// IncludeConfigurationValues additionally folds normalized Configuration
	// values in. Numeric literals inside values are canonicalized to '?' so
	// that predicates differing only in constants collide, mirroring the
	// paper's removal of unstable identifiers.
	IncludeConfigurationValues bool
	// IncludePlanProperties folds plan-associated Configuration property
	// names in.
	IncludePlanProperties bool
}

// Fingerprint returns a stable hex digest of the plan under the given
// options. Two plans share a fingerprint iff they are structurally
// equivalent at the chosen granularity.
func (p *Plan) Fingerprint(opts FingerprintOptions) string {
	var b strings.Builder
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		b.WriteByte('(')
		b.WriteString(string(n.Op.Category))
		b.WriteByte('|')
		b.WriteString(n.Op.Name)
		if opts.IncludeConfiguration || opts.IncludeConfigurationValues {
			props := append([]Property(nil), n.Properties...)
			SortProperties(props)
			for _, pr := range props {
				if pr.Category != Configuration {
					continue
				}
				b.WriteByte(';')
				b.WriteString(pr.Name)
				if opts.IncludeConfigurationValues {
					b.WriteByte('=')
					b.WriteString(NormalizeUnstable(pr.Value.String()))
				}
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
		b.WriteByte(')')
	}
	walk(p.Root)
	if opts.IncludePlanProperties {
		props := append([]Property(nil), p.Properties...)
		SortProperties(props)
		for _, pr := range props {
			if pr.Category != Configuration {
				continue
			}
			b.WriteByte('~')
			b.WriteString(pr.Name)
		}
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:16])
}

// NormalizeUnstable canonicalizes unstable tokens inside a property value:
// standalone runs of digits become '?' (random identifiers, literal
// constants, cost numbers) and whitespace is collapsed. Digits directly
// following a letter are kept, so column names like "c0" survive while
// operator suffixes like "TableFullScan_17" normalize. The original QPG
// implementation for TiDB had a bug in exactly this step (Section V-A.1);
// centralizing it here is the paper's argument for the unified
// representation.
func NormalizeUnstable(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	inDigits := false
	lastSpace := false
	prevLetter := false
	for _, r := range s {
		isLetter := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z'
		switch {
		case r >= '0' && r <= '9':
			if prevLetter {
				// Digits glued to a letter are part of an identifier.
				b.WriteRune(r)
			} else if !inDigits {
				b.WriteByte('?')
				inDigits = true
			}
			lastSpace = false
		case r == ' ' || r == '\t' || r == '\n':
			inDigits = false
			prevLetter = false
			if !lastSpace {
				b.WriteByte(' ')
				lastSpace = true
			}
		default:
			inDigits = false
			prevLetter = isLetter
			lastSpace = false
			b.WriteRune(r)
		}
	}
	return strings.TrimSpace(b.String())
}

// FingerprintSet tracks observed plan fingerprints; it is QPG's coverage
// map. The zero value is not usable; construct with NewFingerprintSet.
type FingerprintSet struct {
	opts FingerprintOptions
	seen map[string]int
}

// NewFingerprintSet returns an empty set using the given options.
func NewFingerprintSet(opts FingerprintOptions) *FingerprintSet {
	return &FingerprintSet{opts: opts, seen: map[string]int{}}
}

// Observe records the plan's fingerprint and reports whether it was new.
func (s *FingerprintSet) Observe(p *Plan) bool {
	fp := p.Fingerprint(s.opts)
	s.seen[fp]++
	return s.seen[fp] == 1
}

// Size returns the number of distinct fingerprints observed.
func (s *FingerprintSet) Size() int { return len(s.seen) }

// Count returns how many times the plan's fingerprint has been observed.
func (s *FingerprintSet) Count(p *Plan) int { return s.seen[p.Fingerprint(s.opts)] }
