package core

import (
	"crypto/sha256"
	"encoding/hex"
	"hash"
	"strings"
	"sync"
	"unicode/utf8"
)

// Fingerprinting gives QPG (Query Plan Guidance) its core primitive:
// deciding whether a query plan is structurally new. Per Section V-A.1,
// this requires ignoring unstable information — random identifiers,
// estimated costs and cardinalities, and runtime status — while keeping the
// operation tree and, optionally, configuration shape.
//
// The engine is binary and incremental: the tree walk feeds the digest
// directly (no string accumulation), fingerprints are [32]byte SHA-256
// values (FingerprintBytes) or 64-bit FNV-1a values (Fingerprint64, the
// allocation-free fast path), and the hex form exists only as a
// formatting helper. Walk state — the digest, a small write buffer, and
// the property-sorting scratch — is pooled, so fingerprinting a plan on
// the QPG hot loop does not touch the heap (guarded by
// TestFingerprintZeroAllocs; value-including options may still allocate
// when property values need string rendering).

// FingerprintOptions controls which plan details participate in the
// fingerprint. The zero value is the strictest useful setting: operations
// only.
type FingerprintOptions struct {
	// IncludeConfiguration folds Configuration property names (not values)
	// into the fingerprint, so e.g. a scan with a filter differs from one
	// without.
	IncludeConfiguration bool
	// IncludeConfigurationValues additionally folds normalized Configuration
	// values in. Numeric literals inside values are canonicalized to '?' so
	// that predicates differing only in constants collide, mirroring the
	// paper's removal of unstable identifiers.
	IncludeConfigurationValues bool
	// IncludePlanProperties folds plan-associated Configuration property
	// names in.
	IncludePlanProperties bool
}

// fpState carries one fingerprint walk's reusable state. sum64 doubles as
// the FNV-1a accumulator when h is unset for the walk (fast64 mode).
type fpState struct {
	h      hash.Hash  // SHA-256 digest, created once per pooled state
	buf    []byte     // pending bytes between digest writes
	out    []byte     // Sum destination, cap 32, allocated once
	props  []Property // property-sorting scratch
	sum64  uint64
	fast64 bool
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
	// fpFlushLen bounds the pending buffer; past it the bytes stream into
	// the digest. Most plans fit in one flush.
	fpFlushLen = 1024
)

var fpPool = sync.Pool{New: func() any {
	return &fpState{
		h:   sha256.New(),
		buf: make([]byte, 0, fpFlushLen+64),
		out: make([]byte, 0, sha256.Size),
	}
}}

func (w *fpState) flush() {
	if len(w.buf) > 0 {
		w.h.Write(w.buf)
		w.buf = w.buf[:0]
	}
}

func (w *fpState) writeByte(c byte) {
	if w.fast64 {
		w.sum64 = (w.sum64 ^ uint64(c)) * fnvPrime64
		return
	}
	w.buf = append(w.buf, c)
	if len(w.buf) >= fpFlushLen {
		w.flush()
	}
}

func (w *fpState) writeString(s string) {
	if w.fast64 {
		h := w.sum64
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * fnvPrime64
		}
		w.sum64 = h
		return
	}
	w.buf = append(w.buf, s...)
	if len(w.buf) >= fpFlushLen {
		w.flush()
	}
}

// writeSortedConfigProps streams the node-or-plan properties of the
// Configuration category, ordered like SortProperties, into the state.
// lead is the byte prefixed to each property; values are appended only
// when withValues is set.
//uplan:hotpath
func (w *fpState) writeSortedConfigProps(props []Property, lead byte, withValues bool) {
	if len(props) == 0 {
		return
	}
	// Sort a scratch copy with an in-place insertion sort: properties per
	// node are few, and sort.SliceStable's reflection would allocate.
	sorted := append(w.props[:0], props...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && propLess(sorted[j], sorted[j-1]); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	w.props = sorted // keep any grown capacity for the next node
	for _, pr := range sorted {
		if pr.Category != Configuration {
			continue
		}
		w.writeByte(lead)
		w.writeString(pr.Name)
		if withValues {
			w.writeByte('=')
			w.writeNormalizedValue(pr.Value)
		}
	}
}

// propLess orders properties by category rank and name like
// SortProperties, then breaks ties on the value, so the fingerprint is
// fully independent of property insertion order — even when a node
// carries two same-named configuration properties with different values
// (MySQL title parsing plus the JSON key can produce exactly that).
func propLess(a, b Property) bool {
	ra, aok := propCategoryRank[a.Category]
	rb, bok := propCategoryRank[b.Category]
	if !aok {
		ra = len(propCategoryRank)
	}
	if !bok {
		rb = len(propCategoryRank)
	}
	if ra != rb {
		return ra < rb
	}
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	return valueLess(a.Value, b.Value)
}

// valueLess is an arbitrary but deterministic total order on values.
func valueLess(a, b Value) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	switch a.Kind {
	case KindString:
		return a.Str < b.Str
	case KindNumber:
		return a.Num < b.Num
	case KindBool:
		return !a.Bool && b.Bool
	}
	return false
}

// writeNormalizedValue streams a property value with unstable tokens
// canonicalized (see NormalizeUnstable) and the value kind preserved:
// strings are quoted, so Str("5") and Num(5) stay distinct.
//uplan:hotpath
func (w *fpState) writeNormalizedValue(v Value) {
	switch v.Kind {
	case KindString:
		w.writeByte('"')
		w.writeNormalized(v.Str)
		w.writeByte('"')
	case KindNumber:
		var tmp [32]byte
		w.writeNormalized(string(appendNumber(tmp[:0], v.Num)))
	case KindBool:
		if v.Bool {
			w.writeString("true")
		} else {
			w.writeString("false")
		}
	default:
		w.writeString("null")
	}
}

// writeNormalized streams NormalizeUnstable(s) without building the
// intermediate string: standalone digit runs become '?', whitespace
// collapses, and leading/trailing spaces drop.
//uplan:hotpath
func (w *fpState) writeNormalized(s string) {
	inDigits := false
	prevLetter := false
	pendingSpace := false
	wrote := false
	for _, r := range s {
		isLetter := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z'
		switch {
		case r >= '0' && r <= '9':
			if pendingSpace && wrote {
				w.writeByte(' ')
			}
			pendingSpace = false
			if prevLetter {
				// Digits glued to a letter are part of an identifier.
				w.writeByte(byte(r))
				wrote = true
			} else if !inDigits {
				w.writeByte('?')
				wrote = true
				inDigits = true
			}
		case r == ' ' || r == '\t' || r == '\n':
			inDigits = false
			prevLetter = false
			pendingSpace = true
		default:
			if pendingSpace && wrote {
				w.writeByte(' ')
			}
			pendingSpace = false
			inDigits = false
			prevLetter = isLetter
			if r < 0x80 {
				w.writeByte(byte(r))
			} else {
				var tmp [4]byte
				n := utf8.EncodeRune(tmp[:], r)
				for i := 0; i < n; i++ {
					w.writeByte(tmp[i])
				}
			}
			wrote = true
		}
	}
}

// walkPlan streams the plan's fingerprint token sequence into the state.
// Recursion goes through methods, not a self-referencing closure, so a
// walk performs no hidden allocations.
//uplan:hotpath
func (w *fpState) walkPlan(p *Plan, opts FingerprintOptions) {
	w.walkNode(p.Root, opts)
	if opts.IncludePlanProperties {
		w.writeSortedConfigProps(p.Properties, '~', false)
	}
}

//uplan:hotpath
func (w *fpState) walkNode(n *Node, opts FingerprintOptions) {
	if n == nil {
		return
	}
	w.writeByte('(')
	w.writeString(string(n.Op.Category))
	w.writeByte('|')
	w.writeString(n.Op.Name)
	if opts.IncludeConfiguration || opts.IncludeConfigurationValues {
		w.writeSortedConfigProps(n.Properties, ';', opts.IncludeConfigurationValues)
	}
	for _, c := range n.Children {
		w.walkNode(c, opts)
	}
	w.writeByte(')')
}

// FingerprintBytes returns the plan's structural fingerprint under the
// given options as the full 32-byte SHA-256 digest. Two plans share a
// fingerprint iff they are structurally equivalent at the chosen
// granularity.
//uplan:hotpath
func (p *Plan) FingerprintBytes(opts FingerprintOptions) [32]byte {
	w := fpPool.Get().(*fpState)
	w.fast64 = false
	w.h.Reset()
	w.buf = w.buf[:0]
	w.walkPlan(p, opts)
	w.flush()
	var out [32]byte
	copy(out[:], w.h.Sum(w.out[:0]))
	fpPool.Put(w)
	return out
}

// Fingerprint64 returns a fast 64-bit FNV-1a fingerprint of the same
// token stream FingerprintBytes hashes. It allocates nothing and is meant
// for in-process sketches and pre-filters; use FingerprintBytes where
// collision resistance matters (FingerprintSet does).
//uplan:hotpath
func (p *Plan) Fingerprint64(opts FingerprintOptions) uint64 {
	w := fpPool.Get().(*fpState)
	w.fast64 = true
	w.sum64 = fnvOffset64
	w.walkPlan(p, opts)
	sum := w.sum64
	fpPool.Put(w)
	return sum
}

// Fingerprint returns the fingerprint as a compact hex string — a
// formatting helper over FingerprintBytes for logs and reports.
func (p *Plan) Fingerprint(opts FingerprintOptions) string {
	fp := p.FingerprintBytes(opts)
	return HexFingerprint(fp)
}

// HexFingerprint renders a binary fingerprint in the traditional 32-char
// hex form (the digest's first 16 bytes).
func HexFingerprint(fp [32]byte) string {
	return hex.EncodeToString(fp[:16])
}

// NormalizeUnstable canonicalizes unstable tokens inside a property value:
// standalone runs of digits become '?' (random identifiers, literal
// constants, cost numbers) and whitespace is collapsed. Digits directly
// following a letter are kept, so column names like "c0" survive while
// operator suffixes like "TableFullScan_17" normalize. The original QPG
// implementation for TiDB had a bug in exactly this step (Section V-A.1);
// centralizing it here is the paper's argument for the unified
// representation.
func NormalizeUnstable(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	inDigits := false
	lastSpace := false
	prevLetter := false
	for _, r := range s {
		isLetter := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z'
		switch {
		case r >= '0' && r <= '9':
			if prevLetter {
				// Digits glued to a letter are part of an identifier.
				b.WriteRune(r)
			} else if !inDigits {
				b.WriteByte('?')
				inDigits = true
			}
			lastSpace = false
		case r == ' ' || r == '\t' || r == '\n':
			inDigits = false
			prevLetter = false
			if !lastSpace {
				b.WriteByte(' ')
				lastSpace = true
			}
		default:
			inDigits = false
			prevLetter = isLetter
			lastSpace = false
			b.WriteRune(r)
		}
	}
	return strings.TrimSpace(b.String())
}

// FingerprintSet tracks observed plan fingerprints; it is QPG's coverage
// map. Keys are binary [32]byte digests — the hex rendering exists only
// for display (HexFingerprint). The zero value is not usable; construct
// with NewFingerprintSet.
type FingerprintSet struct {
	opts FingerprintOptions
	seen map[[32]byte]int
}

// NewFingerprintSet returns an empty set using the given options.
func NewFingerprintSet(opts FingerprintOptions) *FingerprintSet {
	return &FingerprintSet{opts: opts, seen: map[[32]byte]int{}}
}

// Observe records the plan's fingerprint and reports whether it was new.
// The hit path — a fingerprint already in the set — is allocation-free.
//uplan:hotpath
func (s *FingerprintSet) Observe(p *Plan) bool {
	return s.ObserveKey(p.FingerprintBytes(s.opts))
}

// ObserveKey records a raw fingerprint key and reports whether it was
// new. It is the recovery/seeding entry point: a persistent plan store
// replays logged keys through it without re-walking (or even having) the
// plans they came from.
func (s *FingerprintSet) ObserveKey(fp [32]byte) bool {
	s.seen[fp]++
	return s.seen[fp] == 1
}

// Key returns the fingerprint key Observe would record for the plan —
// the [32]byte digest under the set's options.
func (s *FingerprintSet) Key(p *Plan) [32]byte { return p.FingerprintBytes(s.opts) }

// Size returns the number of distinct fingerprints observed.
func (s *FingerprintSet) Size() int { return len(s.seen) }

// Count returns how many times the plan's fingerprint has been observed.
// It is allocation-free.
func (s *FingerprintSet) Count(p *Plan) int { return s.seen[p.FingerprintBytes(s.opts)] }
