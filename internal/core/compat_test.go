package core

import "testing"

func TestDowngradeUnknownCategory(t *testing.T) {
	// A "newer" producer invents an eighth category.
	p := &Plan{Root: &Node{Op: Operation{Category: "Predictor", Name: "ML Choose"}}}
	p.Root.AddChild(NewNode(Producer, "Full Table Scan"))
	out := Downgrade(p, CurrentKnownSet())
	if err := out.Validate(); err != nil {
		t.Fatalf("downgraded plan must validate: %v", err)
	}
	if out.Root.Op.Category != Executor || out.Root.Op.Name != GenericOperationName {
		t.Errorf("unknown category should become generic Executor: %v", out.Root.Op)
	}
	if pr, ok := out.Root.Property("original operation"); !ok ||
		pr.Value.Str != "Predictor->ML Choose" {
		t.Errorf("original operation must be preserved: %v", out.Root.Properties)
	}
	// Known child untouched.
	if out.Root.Children[0].Op.Name != "Full Table Scan" {
		t.Errorf("known child altered: %v", out.Root.Children[0].Op)
	}
}

func TestDowngradeUnknownOperationName(t *testing.T) {
	ks := CurrentKnownSet()
	ks.Operations = map[string]bool{"Full Table Scan": true}
	p := &Plan{Root: NewNode(Join, "LLM Join").
		AddChild(NewNode(Producer, "Full Table Scan"))}
	out := Downgrade(p, ks)
	if out.Root.Op.Category != Join {
		t.Error("known category must be preserved for unknown names")
	}
	if out.Root.Op.Name != GenericOperationName {
		t.Errorf("unknown name should become generic: %q", out.Root.Op.Name)
	}
	if out.Root.Children[0].Op.Name != "Full Table Scan" {
		t.Error("known operation renamed")
	}
}

func TestDowngradeDropsUnknownProperties(t *testing.T) {
	p := &Plan{Root: NewNode(Producer, "Full Table Scan")}
	p.Root.Properties = append(p.Root.Properties,
		Property{Category: "Telemetry", Name: "gpu time", Value: Num(3)},
		Property{Category: Configuration, Name: "filter", Value: Str("x")},
	)
	p.Properties = append(p.Properties,
		Property{Category: "Telemetry", Name: "cluster", Value: Str("c1")})
	out := Downgrade(p, CurrentKnownSet())
	if len(out.Root.Properties) != 1 || out.Root.Properties[0].Name != "filter" {
		t.Errorf("unknown property category must be dropped: %v", out.Root.Properties)
	}
	if len(out.Properties) != 0 {
		t.Errorf("unknown plan property must be dropped: %v", out.Properties)
	}
}

func TestDowngradeRestrictedPropertyNames(t *testing.T) {
	ks := CurrentKnownSet()
	ks.Properties = map[string]bool{"filter": true}
	p := &Plan{Root: NewNode(Producer, "Full Table Scan").
		AddProperty(Configuration, "filter", Str("a")).
		AddProperty(Configuration, "exotic knob", Str("b"))}
	out := Downgrade(p, ks)
	if len(out.Root.Properties) != 1 || out.Root.Properties[0].Name != "filter" {
		t.Errorf("restricted property set not honored: %v", out.Root.Properties)
	}
}

func TestDowngradeLeavesOriginalUntouched(t *testing.T) {
	p := &Plan{Root: &Node{Op: Operation{Category: "Future", Name: "X"}}}
	_ = Downgrade(p, CurrentKnownSet())
	if p.Root.Op.Category != "Future" {
		t.Error("Downgrade must not mutate its input")
	}
}

func TestBackwardCompatibility(t *testing.T) {
	// A plan produced by an "older" grammar (fewer keywords) is a subset of
	// the current one and passes through Downgrade unchanged.
	p := samplePlan()
	out := Downgrade(p, CurrentKnownSet())
	if !p.Equal(out) {
		t.Error("old-grammar plan should survive Downgrade unchanged")
	}
}
