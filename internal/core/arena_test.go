package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// buildArenaPlan constructs a small fixed plan through the arena builder
// API; size scales the property count so growth paths are exercised.
func buildArenaPlan(a *PlanArena, size int) *Plan {
	plan := &Plan{Source: "test"}
	a.AddPlanPropertyIn(plan, Status, "planning time", Num(1.5))
	root := a.NewNodeIn(Join, "Hash Join")
	for i := 0; i < size; i++ {
		a.AddPropertyIn(root, Configuration, "key", Str("k"))
	}
	left := a.NewNodeIn(Producer, "Full Table Scan")
	a.AddPropertyIn(left, Cardinality, "estimated rows", Num(100))
	right := a.NewNodeIn(Producer, "Index Scan")
	a.AddPropertyIn(right, Configuration, "name object", Str("t1"))
	a.AddChildIn(root, left)
	a.AddChildIn(root, right)
	plan.Root = root
	return plan
}

func TestArenaBuilderMatchesHeapBuilder(t *testing.T) {
	for _, size := range []int{0, 1, 3, 17, 64} {
		arena := NewPlanArena()
		got := buildArenaPlan(arena, size)
		want := buildArenaPlan(nil, size) // nil arena: plain heap construction
		if !got.Equal(want) {
			t.Fatalf("size %d: arena-built plan differs from heap-built plan:\n%s\nvs\n%s",
				size, got.MarshalIndentedText(), want.MarshalIndentedText())
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("size %d: arena-built plan invalid: %v", size, err)
		}
	}
}

// TestArenaInterleavedPropertyGrowth forces the relocation path: two nodes
// alternate property appends, so neither block can stay at the slab
// frontier for long.
func TestArenaInterleavedPropertyGrowth(t *testing.T) {
	arena := NewPlanArena()
	a := arena.NewNodeIn(Producer, "A")
	b := arena.NewNodeIn(Producer, "B")
	for i := 0; i < 40; i++ {
		arena.AddPropertyIn(a, Configuration, "pa", Num(float64(i)))
		arena.AddPropertyIn(b, Configuration, "pb", Num(float64(-i)))
	}
	if len(a.Properties) != 40 || len(b.Properties) != 40 {
		t.Fatalf("property counts: a=%d b=%d, want 40/40", len(a.Properties), len(b.Properties))
	}
	for i := 0; i < 40; i++ {
		if a.Properties[i].Value.Num != float64(i) {
			t.Fatalf("a.Properties[%d] = %v, want %d (relocation corrupted the block)", i, a.Properties[i].Value, i)
		}
		if b.Properties[i].Value.Num != float64(-i) {
			t.Fatalf("b.Properties[%d] = %v, want %d", i, b.Properties[i].Value, -i)
		}
	}
}

// TestArenaUseAfterReset is the detach regression test: a plan cloned out
// of an arena must be completely unaffected by a Reset and by subsequent
// plans overwriting the recycled slabs.
func TestArenaUseAfterReset(t *testing.T) {
	arena := NewPlanArena()
	original := buildArenaPlan(arena, 5)
	pristine := buildArenaPlan(nil, 5)
	detached := original.Clone()

	arena.Reset()
	// Overwrite the recycled slabs with a different, bigger plan.
	clobber := &Plan{Source: "clobber"}
	clobber.Root = arena.NewNodeIn(Executor, "Gather")
	for i := 0; i < 50; i++ {
		child := arena.NewNodeIn(Producer, "Seq Scan")
		arena.AddPropertyIn(child, Cost, "total cost", Num(9999))
		arena.AddChildIn(clobber.Root, child)
	}

	if !detached.Equal(pristine) {
		t.Fatalf("detached clone changed after arena reset:\n%s\nwant\n%s",
			detached.MarshalIndentedText(), pristine.MarshalIndentedText())
	}
	if g, w := detached.MarshalText(), pristine.MarshalText(); g != w {
		t.Fatalf("detached clone text diverged after reset:\n%s\nwant\n%s", g, w)
	}
}

// TestArenaSteadyStateAllocs guards the core arena promise: once the slabs
// have grown to fit the workload, building the same plan again after Reset
// performs zero allocations.
func TestArenaSteadyStateAllocs(t *testing.T) {
	arena := NewPlanArena()
	buildArenaPlan(arena, 20) // warm the slabs
	arena.Reset()
	allocs := testing.AllocsPerRun(50, func() {
		p := buildArenaPlan(arena, 20)
		_ = p.Root
		arena.Reset()
	})
	// One heap allocation remains: the *Plan header itself, which always
	// escapes to the caller.
	if allocs > 1 {
		t.Fatalf("steady-state arena build allocates %.1f times per plan, want <= 1", allocs)
	}
}

func TestArenaIntern(t *testing.T) {
	arena := NewPlanArena()
	big := strings.Repeat("x", 100)
	if got := arena.Intern(big); got != big {
		t.Fatalf("long string changed by Intern")
	}
	s1 := arena.Intern(string([]byte("hello")))
	s2 := arena.Intern(string([]byte("hello")))
	if s1 != s2 {
		t.Fatalf("interned strings differ")
	}
	// The canonical copy must survive Reset (documented contract).
	arena.Reset()
	if s3 := arena.Intern("hello"); s3 != s1 {
		t.Fatalf("intern table lost entries across Reset")
	}
	var nilArena *PlanArena
	if got := nilArena.Intern("abc"); got != "abc" {
		t.Fatalf("nil arena Intern changed its input")
	}
	// Steady-state interning of known strings is allocation-free.
	allocs := testing.AllocsPerRun(50, func() { arena.Intern("hello") })
	if allocs != 0 {
		t.Fatalf("interning a known string allocates %.1f times, want 0", allocs)
	}
}

// TestCloneCompactIsolation verifies the compact layout cannot alias: an
// append on one cloned node's property list must not clobber a sibling's
// properties (full slice expressions), and mutating the original must not
// show through the clone.
func TestCloneCompactIsolation(t *testing.T) {
	arena := NewPlanArena()
	p := buildArenaPlan(arena, 3)
	c := p.Clone()

	left, right := c.Root.Children[0], c.Root.Children[1]
	rightBefore := fmt.Sprintf("%v", right.Properties)
	left.AddProperty(Status, "appended", Str("new"))
	if got := fmt.Sprintf("%v", right.Properties); got != rightBefore {
		t.Fatalf("appending to one cloned node clobbered its sibling: %s -> %s", rightBefore, got)
	}

	p.Root.Op.Name = "Mutated"
	p.Root.Properties[0].Value = Str("mutated")
	if c.Root.Op.Name == "Mutated" || c.Root.Properties[0].Value.Str == "mutated" {
		t.Fatalf("clone shares storage with its original")
	}
}

// TestCloneAllocationCount pins the compact layout: however many nodes the
// plan has, Clone performs a constant number of allocations (plan header +
// one backing array per kind).
func TestCloneAllocationCount(t *testing.T) {
	arena := NewPlanArena()
	plan := &Plan{Source: "big"}
	plan.Root = arena.NewNodeIn(Executor, "Gather")
	arena.AddPlanPropertyIn(plan, Status, "planning time", Num(1))
	for i := 0; i < 100; i++ {
		n := arena.NewNodeIn(Producer, "Seq Scan")
		arena.AddPropertyIn(n, Cardinality, "estimated rows", Num(float64(i)))
		arena.AddPropertyIn(n, Cost, "total cost", Num(float64(i)))
		arena.AddChildIn(plan.Root, n)
	}
	allocs := testing.AllocsPerRun(20, func() { plan.Clone() })
	// Plan header + nodes array + properties array + children array, with
	// a little slack for the runtime.
	if allocs > 6 {
		t.Fatalf("Clone of a 101-node plan allocates %.1f times, want <= 6", allocs)
	}
}

// TestArenaInternBytes pins the []byte-keyed intern path the binary codec
// decodes through: a table hit returns the canonical string with zero
// allocations, a miss copies (never aliasing the input buffer), and the
// same caps as Intern apply.
func TestArenaInternBytes(t *testing.T) {
	arena := NewPlanArena()
	buf := []byte("hash join")
	s1 := arena.InternBytes(buf)
	buf[0] = 'X' // mutate the input buffer; the interned string must not move
	if s1 != "hash join" {
		t.Fatalf("InternBytes aliases its input: %q", s1)
	}
	s2 := arena.InternBytes([]byte("hash join"))
	if s2 != s1 {
		t.Fatalf("second InternBytes returned a different string")
	}
	if s3 := arena.Intern("hash join"); s3 != s1 {
		t.Fatalf("Intern and InternBytes disagree on the canonical copy")
	}

	key := []byte("hash join")
	allocs := testing.AllocsPerRun(50, func() { arena.InternBytes(key) })
	if allocs != 0 {
		t.Fatalf("InternBytes hit allocates %.1f times, want 0", allocs)
	}

	long := bytes.Repeat([]byte("x"), arenaMaxIntern+1)
	if got := arena.InternBytes(long); got != string(long) {
		t.Fatalf("long InternBytes changed its input")
	}
	var nilArena *PlanArena
	if got := nilArena.InternBytes([]byte("abc")); got != "abc" {
		t.Fatalf("nil arena InternBytes = %q", got)
	}

	// The table survives Reset, so a warm arena decodes the same strings
	// allocation-free across plans.
	arena.Reset()
	if got := arena.InternBytes([]byte("hash join")); got != s1 {
		t.Fatalf("intern table lost across Reset")
	}
}
