package core

import "testing"

// The resolver is the conversion hot path: one ResolveOperation per plan
// node plus one ResolveProperty per property. These microbenchmarks pin
// its cost, and the alloc guards below pin its allocation behavior, so
// the lock-free snapshot design cannot silently regress.

func BenchmarkResolveOperation(b *testing.B) {
	r := DefaultRegistry()
	b.Run("alias-hit", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.ResolveOperation("tidb", "TableFullScan")
		}
	})
	b.Run("alias-hit-folded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.ResolveOperation("postgresql", "Seq Scan")
		}
	})
	b.Run("unified-hit", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.ResolveOperation("unknown-dialect", "Hash Join")
		}
	})
	b.Run("miss", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.ResolveOperation("postgresql", "Quantum Scan")
		}
	})
}

func BenchmarkResolveProperty(b *testing.B) {
	r := DefaultRegistry()
	b.Run("alias-hit", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.ResolveProperty("tidb", "estRows")
		}
	})
	b.Run("miss", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.ResolveProperty("mysql", "mystery_prop")
		}
	})
}

func BenchmarkDefaultRegistry(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DefaultRegistry()
	}
}

// TestResolveZeroAllocs is the allocation guard of the snapshot design:
// alias and unified-name hits must not touch the heap, whatever the case
// of the native name.
func TestResolveZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	r := DefaultRegistry()
	cases := []struct {
		name string
		fn   func()
	}{
		{"op alias hit", func() { r.ResolveOperation("tidb", "TableFullScan") }},
		{"op alias hit lower", func() { r.ResolveOperation("tidb", "tablefullscan") }},
		{"op alias hit spaced", func() { r.ResolveOperation("postgresql", "Seq Scan") }},
		{"op unified hit", func() { r.ResolveOperation("unknown-dialect", "Hash Join") }},
		{"op miss", func() { r.ResolveOperation("postgresql", "Quantum Scan") }},
		{"prop alias hit", func() { r.ResolveProperty("tidb", "estRows") }},
		{"prop unified hit", func() { r.ResolveProperty("unknown-dialect", "total cost") }},
	}
	for _, c := range cases {
		if avg := testing.AllocsPerRun(200, c.fn); avg != 0 {
			t.Errorf("%s: %v allocs/op, want 0", c.name, avg)
		}
	}
}

// TestCanonicalNameZeroAllocs guards the serialization fast path: names
// already in keyword form must be returned without copying.
func TestCanonicalNameZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	if avg := testing.AllocsPerRun(200, func() {
		CanonicalName("Full_Table_Scan")
	}); avg != 0 {
		t.Errorf("CanonicalName on canonical input: %v allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		DisplayName("Full Table Scan")
	}); avg != 0 {
		t.Errorf("DisplayName without underscores: %v allocs/op, want 0", avg)
	}
	// The slow path still rewrites.
	if got := CanonicalName("Full Table Scan"); got != "Full_Table_Scan" {
		t.Errorf("CanonicalName slow path = %q", got)
	}
	if got := CanonicalName("1st Pass"); got != "n1st_Pass" {
		t.Errorf("CanonicalName digit-first = %q", got)
	}
}
