package core

import "strings"

// PlanArena is a slab allocator for plan construction. Converters and other
// plan builders that produce many short-lived trees allocate every Node,
// Property, and child-pointer slot from a handful of large slabs instead of
// one heap object per element, and optionally intern repeated strings, so
// the batch hot path performs a near-constant number of allocations per
// plan regardless of tree size.
//
// The zero value is ready to use. An arena is NOT safe for concurrent use;
// give each goroutine its own (see pipeline.Options.ReuseArenas).
//
// # Ownership and lifecycle
//
// A plan built through an arena aliases the arena's slabs: its nodes, its
// property lists, and its child-pointer lists all live in arena memory.
// Three lifecycles are supported:
//
//   - One-shot: build a plan in a fresh arena and never Reset it. The
//     slabs are garbage-collected with the plan; the arena is purely an
//     allocation-batching device.
//   - Reuse: build a plan, consume it, then Reset and build the next one.
//     Reset recycles the slabs, so a warmed-up arena builds subsequent
//     plans with zero slab allocations. The previously built plan must
//     not be used after Reset — its memory is reused.
//   - Detach: when a plan must outlive the arena (results escaping a
//     worker loop), call Plan.Clone before Reset. Clone copies the tree
//     into independent, compactly laid-out heap storage (see Plan.Clone);
//     the clone is unaffected by any later Reset. Reuse-plus-detach is
//     what the convert package's plain Convert does internally (pooled
//     arenas) and what pipeline workers do in ReuseArenas mode.
//
// Strings are never copied into the arena: names and values keep pointing
// at whatever backing they had (typically substrings of the converter
// input, or registry-interned vocabulary). Intern deduplicates repeated
// dynamic strings across plans; interned strings survive Reset by design.
type PlanArena struct {
	nodeSlab []Node
	nodeUsed int

	propSlab []Property
	propUsed int

	childSlab []*Node
	childUsed int

	intern map[string]string
}

// Initial slab capacities (elements, not bytes). Chosen so a typical
// EXPLAIN plan (≈10–20 operations, ≈3–6 properties each) fits in the first
// slab of each kind; slabs double when exhausted.
const (
	arenaNodeCap0  = 8
	arenaPropCap0  = 32
	arenaChildCap0 = 8

	// arenaPropHint is the property capacity reserved when a node (or
	// plan) receives its first arena property; blocks at the slab frontier
	// grow in place, so a small hint wastes little and covers most nodes.
	arenaPropHint = 4

	// arenaChildHint is the child capacity reserved on first AddChildIn.
	arenaChildHint = 2

	// arenaMaxIntern bounds the length of strings Intern will table;
	// longer strings (big predicate texts, operator info dumps) are almost
	// always unique, so tabling them would only grow the map.
	arenaMaxIntern = 64

	// arenaMaxInternEntries caps the intern table. The table survives
	// Reset by design, so without a cap a long-lived (pooled or
	// per-worker) arena fed high-cardinality values would grow it without
	// bound; past the cap, new strings simply pass through uninterned.
	arenaMaxInternEntries = 4096
)

// NewPlanArena returns an empty arena. Slabs are allocated lazily on first
// use; the zero value works identically.
func NewPlanArena() *PlanArena { return &PlanArena{} }

// Reset recycles the arena for the next plan: all slab space is reclaimed
// (and zeroed, so recycled slots hold no stale pointers) while the slabs
// themselves — and the intern table — are retained. Every plan previously
// built in this arena becomes invalid unless it was detached with
// Plan.Clone first.
func (a *PlanArena) Reset() {
	if a == nil {
		return
	}
	clear(a.nodeSlab[:a.nodeUsed])
	clear(a.propSlab[:a.propUsed])
	clear(a.childSlab[:a.childUsed])
	a.nodeUsed, a.propUsed, a.childUsed = 0, 0, 0
}

// NewNodeIn allocates a node for the given operation from the arena. A nil
// arena falls back to a plain heap allocation, so builders can thread an
// optional arena without branching at every construction site.
func (a *PlanArena) NewNodeIn(cat OperationCategory, name string) *Node {
	if a == nil {
		return &Node{Op: Operation{Category: cat, Name: name}}
	}
	if a.nodeUsed == len(a.nodeSlab) {
		size := 2 * len(a.nodeSlab)
		if size == 0 {
			size = arenaNodeCap0
		}
		// The outgrown slab is abandoned to the plan that references it;
		// the arena only ever recycles its current slab.
		a.nodeSlab = make([]Node, size)
		a.nodeUsed = 0
	}
	n := &a.nodeSlab[a.nodeUsed]
	a.nodeUsed++
	n.Op = Operation{Category: cat, Name: name}
	return n
}

// AddPropertyIn appends a property to the node, growing its property list
// inside the arena. A nil arena appends on the heap like Node.AddProperty.
func (a *PlanArena) AddPropertyIn(n *Node, cat PropertyCategory, name string, v Value) {
	p := Property{Category: cat, Name: name, Value: v}
	if a == nil {
		n.Properties = append(n.Properties, p)
		return
	}
	n.Properties = a.appendProp(n.Properties, p)
}

// AddPlanPropertyIn appends a plan-associated property, growing the plan's
// property list inside the arena. A nil arena appends on the heap.
func (a *PlanArena) AddPlanPropertyIn(pl *Plan, cat PropertyCategory, name string, v Value) {
	p := Property{Category: cat, Name: name, Value: v}
	if a == nil {
		pl.Properties = append(pl.Properties, p)
		return
	}
	pl.Properties = a.appendProp(pl.Properties, p)
}

// AddChildIn appends child to parent.Children, growing the child list
// inside the arena. A nil arena appends on the heap like Node.AddChild.
func (a *PlanArena) AddChildIn(parent, child *Node) {
	if a == nil {
		parent.Children = append(parent.Children, child)
		return
	}
	parent.Children = a.appendChild(parent.Children, child)
}

// AppendChildIn appends c to a free-standing child list (one not yet
// attached to a node), growing it inside the arena. A nil arena appends on
// the heap.
func (a *PlanArena) AppendChildIn(children []*Node, c *Node) []*Node {
	if a == nil {
		return append(children, c)
	}
	return a.appendChild(children, c)
}

// Intern returns a canonical copy of s, deduplicating repeated dynamic
// strings (operation names, property keys, common values) across every
// plan built in the arena. The canonical copy is independent of s's
// backing array, so interning a substring of a large input does not pin
// the input. The table survives Reset; long strings pass through untabled.
// A nil arena returns s unchanged.
func (a *PlanArena) Intern(s string) string {
	if a == nil || len(s) > arenaMaxIntern {
		return s
	}
	if c, ok := a.intern[s]; ok {
		return c
	}
	if len(a.intern) >= arenaMaxInternEntries {
		return s
	}
	if a.intern == nil {
		a.intern = make(map[string]string, 64)
	}
	c := strings.Clone(s)
	a.intern[c] = c
	return c
}

// InternBytes is Intern for a []byte key: it returns the canonical string
// for b, copying b into a new string only when the table has no entry yet.
// A table hit costs zero allocations (the map lookup converts b without
// copying), which is what makes repeated binary-codec decodes into a warm
// arena allocation-free for their string tables. The same length and entry
// caps as Intern apply; a nil arena always copies.
func (a *PlanArena) InternBytes(b []byte) string {
	if a == nil || len(b) > arenaMaxIntern {
		return string(b)
	}
	if c, ok := a.intern[string(b)]; ok { // no alloc: compiler-recognized map key conversion
		return c
	}
	if len(a.intern) >= arenaMaxInternEntries {
		return string(b)
	}
	if a.intern == nil {
		a.intern = make(map[string]string, 64)
	}
	c := string(b)
	a.intern[c] = c
	return c
}

// appendProp appends p to props using arena storage. Blocks sitting at the
// slab frontier — the common case, since builders typically finish one
// node's properties before starting the next — grow in place; displaced
// blocks relocate to a fresh, larger reservation (the old space is
// abandoned until Reset, the usual arena space-for-speed trade).
func (a *PlanArena) appendProp(props []Property, p Property) []Property {
	if len(props) < cap(props) {
		return append(props, p) // room inside this block's reservation
	}
	if cap(props) == 0 {
		return append(a.grabProps(arenaPropHint), p)
	}
	if start := a.propUsed - cap(props); start >= 0 && &props[0:1][0] == &a.propSlab[start] {
		// props is the frontier block: extend its reservation in place.
		grow := cap(props)
		if a.propUsed+grow <= len(a.propSlab) {
			a.propUsed += grow
			return append(a.propSlab[start:start+len(props):a.propUsed], p)
		}
	}
	nb := a.grabProps(2 * cap(props))[:len(props)]
	copy(nb, props)
	return append(nb, p)
}

// grabProps reserves an n-capacity, zero-length property block.
func (a *PlanArena) grabProps(n int) []Property {
	if a.propUsed+n > len(a.propSlab) {
		size := 2 * len(a.propSlab)
		if size < arenaPropCap0 {
			size = arenaPropCap0
		}
		for size < n {
			size *= 2
		}
		a.propSlab = make([]Property, size)
		a.propUsed = 0
	}
	s := a.propSlab[a.propUsed : a.propUsed : a.propUsed+n]
	a.propUsed += n
	return s
}

// appendChild appends c to children using arena storage; same frontier
// growth scheme as appendProp.
func (a *PlanArena) appendChild(children []*Node, c *Node) []*Node {
	if len(children) < cap(children) {
		return append(children, c)
	}
	if cap(children) == 0 {
		return append(a.grabChildren(arenaChildHint), c)
	}
	if start := a.childUsed - cap(children); start >= 0 && &children[0:1][0] == &a.childSlab[start] {
		grow := cap(children)
		if a.childUsed+grow <= len(a.childSlab) {
			a.childUsed += grow
			return append(a.childSlab[start:start+len(children):a.childUsed], c)
		}
	}
	nb := a.grabChildren(2 * cap(children))[:len(children)]
	copy(nb, children)
	return append(nb, c)
}

// grabChildren reserves an n-capacity, zero-length child-pointer block.
func (a *PlanArena) grabChildren(n int) []*Node {
	if a.childUsed+n > len(a.childSlab) {
		size := 2 * len(a.childSlab)
		if size < arenaChildCap0 {
			size = arenaChildCap0
		}
		for size < n {
			size *= 2
		}
		a.childSlab = make([]*Node, size)
		a.childUsed = 0
	}
	s := a.childSlab[a.childUsed : a.childUsed : a.childUsed+n]
	a.childUsed += n
	return s
}
