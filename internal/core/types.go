// Package core implements the unified query plan representation proposed in
// "Towards a Unified Query Plan Representation" (Ba & Rigger, ICDE 2025).
//
// A query plan is a tree of operations. Each operation belongs to one of
// seven categories grounded in relational algebra (Section III-C of the
// paper), and carries zero or more properties from four categories
// (Section III-D). A plan as a whole may also carry plan-associated
// properties, which is how operation-less representations such as
// InfluxDB's are expressed.
//
// The representation is serializable to the EBNF text format of the paper's
// Listing 2 (see text.go) and to JSON (see json.go), and is designed to be
// complete (all information of a plan), general (all nine studied DBMSs),
// and extensible (unknown operations, properties, and categories survive a
// round trip; see compat.go and registry.go).
package core

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// OperationCategory classifies an operation by its relational-algebra role.
// The seven categories are those identified by the paper's case study.
type OperationCategory string

// The operation categories of the unified query plan representation.
const (
	// Producer operations retrieve data from storage or return constants;
	// they realize selection (σ) and are typically leaf nodes.
	Producer OperationCategory = "Producer"
	// Combinator operations change the permutation or combination of tuples
	// without changing attributes (sort, union, …); they realize ∪, ∩, −.
	Combinator OperationCategory = "Combinator"
	// Join operations generate new tuples by recombining attributes; they
	// realize ⨝ and ×.
	Join OperationCategory = "Join"
	// Folder operations derive new tuples from sets of tuples (grouping,
	// aggregation); they realize γ.
	Folder OperationCategory = "Folder"
	// Projector operations remove attributes from all tuples; they realize Π.
	Projector OperationCategory = "Projector"
	// Executor operations change neither tuples nor attributes; they are
	// DBMS-specific internal steps (gather, exchange, materialize, …).
	Executor OperationCategory = "Executor"
	// Consumer operations have no output; they correspond to non-query
	// statements such as UPDATE or DDL.
	Consumer OperationCategory = "Consumer"
)

// OperationCategories lists all operation categories in the canonical order
// used by the paper's tables.
var OperationCategories = []OperationCategory{
	Producer, Combinator, Join, Folder, Projector, Executor, Consumer,
}

// Valid reports whether c is one of the seven operation categories.
func (c OperationCategory) Valid() bool {
	switch c {
	case Producer, Combinator, Join, Folder, Projector, Executor, Consumer:
		return true
	}
	return false
}

// CategoryIndex returns c's position in OperationCategories, or -1 for a
// category outside the canonical seven. It lets hot paths count
// operations in a fixed array (one comparison) instead of a map (a hash
// per operation).
func CategoryIndex(c OperationCategory) int {
	switch c {
	case Producer:
		return 0
	case Combinator:
		return 1
	case Join:
		return 2
	case Folder:
		return 3
	case Projector:
		return 4
	case Executor:
		return 5
	case Consumer:
		return 6
	}
	return -1
}

// PropertyCategory classifies a property of an operation or plan.
type PropertyCategory string

// PropertyCategoryIndex returns c's position in PropertyCategories, or -1
// for a category outside the canonical four. The binary codec uses it to
// encode property categories as a single index instead of a string.
func PropertyCategoryIndex(c PropertyCategory) int {
	switch c {
	case Cardinality:
		return 0
	case Cost:
		return 1
	case Configuration:
		return 2
	case Status:
		return 3
	}
	return -1
}

// The property categories of the unified query plan representation.
const (
	// Cardinality properties are numeric estimates of data sizes
	// (estimated rows, width, …).
	Cardinality PropertyCategory = "Cardinality"
	// Cost properties are numeric estimates of resource consumption.
	Cost PropertyCategory = "Cost"
	// Configuration properties parameterize operations (filter predicates,
	// sort keys, index conditions, …).
	Configuration PropertyCategory = "Configuration"
	// Status properties report runtime status (workers, task placement,
	// actual times, …).
	Status PropertyCategory = "Status"
)

// PropertyCategories lists all property categories in the canonical order
// used by the paper's tables.
var PropertyCategories = []PropertyCategory{
	Cardinality, Cost, Configuration, Status,
}

// Valid reports whether c is one of the four property categories.
func (c PropertyCategory) Valid() bool {
	switch c {
	case Cardinality, Cost, Configuration, Status:
		return true
	}
	return false
}

// ValueKind discriminates the dynamic type of a Value.
type ValueKind uint8

// The kinds of property values permitted by the grammar
// (value ::= string | number | boolean | 'null').
const (
	KindNull ValueKind = iota
	KindString
	KindNumber
	KindBool
)

// Value is a property value: a string, a number, a boolean, or null.
// The zero Value is null.
type Value struct {
	Kind ValueKind
	Str  string
	Num  float64
	Bool bool
}

// Null returns the null Value.
func Null() Value { return Value{} }

// String constructs a string Value.
func Str(s string) Value { return Value{Kind: KindString, Str: s} }

// Num constructs a numeric Value.
func Num(f float64) Value { return Value{Kind: KindNumber, Num: f} }

// Bool constructs a boolean Value.
func BoolVal(b bool) Value { return Value{Kind: KindBool, Bool: b} }

// IsNull reports whether v is null.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// String renders the value in the text-format syntax: strings are quoted,
// numbers print without a trailing ".0" when integral, booleans are
// true/false, and null is the literal null.
func (v Value) String() string {
	switch v.Kind {
	case KindString:
		return strconv.Quote(v.Str)
	case KindNumber:
		return FormatNumber(v.Num)
	case KindBool:
		if v.Bool {
			return "true"
		}
		return "false"
	default:
		return "null"
	}
}

// FormatNumber renders f compactly: integral values print without a decimal
// point, others with the shortest representation that round-trips.
func FormatNumber(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// appendNumber appends FormatNumber's rendering of f to dst.
func appendNumber(dst []byte, f float64) []byte {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.AppendInt(dst, int64(f), 10)
	}
	return strconv.AppendFloat(dst, f, 'g', -1, 64)
}

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindString:
		return v.Str == o.Str
	case KindNumber:
		return v.Num == o.Num
	case KindBool:
		return v.Bool == o.Bool
	}
	return true
}

// Operation identifies a concrete execution step: a category plus a unified
// name (e.g. Producer → "Full Table Scan").
type Operation struct {
	Category OperationCategory
	Name     string
}

// String renders the operation in text-format syntax, e.g.
// "Producer->Full Table Scan".
func (o Operation) String() string {
	return string(o.Category) + "->" + o.Name
}

// Property is a categorized key/value pair attached to an operation or to a
// plan as a whole.
type Property struct {
	Category PropertyCategory
	Name     string
	Value    Value
}

// String renders the property in text-format syntax, e.g.
// "Cardinality->rows: 1050".
func (p Property) String() string {
	return string(p.Category) + "->" + p.Name + ": " + p.Value.String()
}

// Node is one operation in the plan tree together with its
// operation-associated properties and children.
type Node struct {
	Op         Operation
	Properties []Property
	Children   []*Node
}

// Plan is a unified query plan: an optional operation tree plus
// plan-associated properties. A nil Root with non-empty Properties models
// representations such as InfluxDB's that expose only a property list.
type Plan struct {
	// Source names the DBMS dialect the plan was converted from
	// (informational; empty for hand-built plans).
	Source string
	// Root is the root of the operation tree; nil when the representation
	// has no operations.
	Root *Node
	// Properties are the plan-associated properties (e.g. planning time).
	Properties []Property
}

// NewNode constructs a node for the given operation.
func NewNode(cat OperationCategory, name string, props ...Property) *Node {
	return &Node{Op: Operation{Category: cat, Name: name}, Properties: props}
}

// AddChild appends child nodes and returns n for chaining.
func (n *Node) AddChild(children ...*Node) *Node {
	n.Children = append(n.Children, children...)
	return n
}

// AddProperty appends a property and returns n for chaining.
func (n *Node) AddProperty(cat PropertyCategory, name string, v Value) *Node {
	n.Properties = append(n.Properties, Property{Category: cat, Name: name, Value: v})
	return n
}

// Property returns the first property with the given name and true, or a
// zero Property and false.
func (n *Node) Property(name string) (Property, bool) {
	for _, p := range n.Properties {
		if p.Name == name {
			return p, true
		}
	}
	return Property{}, false
}

// PropertiesIn returns the node's properties belonging to the category.
func (n *Node) PropertiesIn(cat PropertyCategory) []Property {
	var out []Property
	for _, p := range n.Properties {
		if p.Category == cat {
			out = append(out, p)
		}
	}
	return out
}

// Property returns the first plan-associated property with the given name.
func (p *Plan) Property(name string) (Property, bool) {
	for _, pr := range p.Properties {
		if pr.Name == name {
			return pr, true
		}
	}
	return Property{}, false
}

// AddProperty appends a plan-associated property and returns p for chaining.
func (p *Plan) AddProperty(cat PropertyCategory, name string, v Value) *Plan {
	p.Properties = append(p.Properties, Property{Category: cat, Name: name, Value: v})
	return p
}

// Walk calls fn for every node in pre-order. It is a no-op on plans without
// a tree. Walk never calls fn with a nil node.
func (p *Plan) Walk(fn func(n *Node, depth int)) {
	var walk func(n *Node, d int)
	walk = func(n *Node, d int) {
		if n == nil {
			return
		}
		fn(n, d)
		for _, c := range n.Children {
			walk(c, d+1)
		}
	}
	walk(p.Root, 0)
}

// Nodes returns all nodes in pre-order.
func (p *Plan) Nodes() []*Node {
	var out []*Node
	p.Walk(func(n *Node, _ int) { out = append(out, n) })
	return out
}

// NodeCount returns the number of operations in the plan tree.
func (p *Plan) NodeCount() int {
	c := 0
	p.Walk(func(*Node, int) { c++ })
	return c
}

// Depth returns the height of the plan tree (0 for an empty tree, 1 for a
// single node).
func (p *Plan) Depth() int {
	max := 0
	p.Walk(func(_ *Node, d int) {
		if d+1 > max {
			max = d + 1
		}
	})
	return max
}

// CountByCategory returns, for each operation category, the number of
// operations of that category in the plan. Categories with zero operations
// are present in the map with value 0.
func (p *Plan) CountByCategory() map[OperationCategory]int {
	m := make(map[OperationCategory]int, len(OperationCategories))
	for _, c := range OperationCategories {
		m[c] = 0
	}
	p.Walk(func(n *Node, _ int) { m[n.Op.Category]++ })
	return m
}

// Clone returns a deep copy of the plan in independent heap storage.
//
// The copy is laid out compactly: one backing array holds every node, one
// holds every property list, and one holds every child-pointer list, so a
// clone costs a constant number of allocations however large the tree is.
// Each node's Properties and Children are full (three-index) sub-slices of
// those arrays — appending to one after the clone reallocates instead of
// clobbering a neighbor.
//
// Clone is also the detach operation of the arena memory model: a plan
// built in a PlanArena aliases the arena's slabs, and Clone moves it into
// storage the arena does not own, making the clone safe to use after the
// arena is Reset. Strings (names, values) are immutable and shared with
// the original rather than copied.
func (p *Plan) Clone() *Plan {
	if p == nil {
		return nil
	}
	nNodes, nProps, nChildren := 0, len(p.Properties), 0
	p.Walk(func(n *Node, _ int) {
		nNodes++
		nProps += len(n.Properties)
		nChildren += len(n.Children)
	})
	out := &Plan{Source: p.Source}
	// Exact capacities: the appends below never reallocate, so interior
	// pointers into nodes/children stay valid while the tree is filled.
	nodes := make([]Node, 0, nNodes)
	props := make([]Property, 0, nProps)
	children := make([]*Node, 0, nChildren)
	if len(p.Properties) > 0 {
		start := len(props)
		props = append(props, p.Properties...)
		out.Properties = props[start:len(props):len(props)]
	}
	var cp func(n *Node) *Node
	cp = func(n *Node) *Node {
		if n == nil {
			return nil
		}
		nodes = append(nodes, Node{Op: n.Op})
		nn := &nodes[len(nodes)-1]
		if len(n.Properties) > 0 {
			start := len(props)
			props = append(props, n.Properties...)
			nn.Properties = props[start:len(props):len(props)]
		}
		if len(n.Children) > 0 {
			start := len(children)
			children = append(children, n.Children...)
			cs := children[start:len(children):len(children)]
			for i, c := range n.Children {
				cs[i] = cp(c)
			}
			nn.Children = cs
		}
		return nn
	}
	out.Root = cp(p.Root)
	return out
}

// Equal reports structural equality of two plans: same tree shape,
// operations, and properties (order-sensitive), ignoring Source.
func (p *Plan) Equal(o *Plan) bool {
	if p == nil || o == nil {
		return p == o
	}
	if !propsEqual(p.Properties, o.Properties) {
		return false
	}
	var eq func(a, b *Node) bool
	eq = func(a, b *Node) bool {
		if a == nil || b == nil {
			return a == b
		}
		if a.Op != b.Op || !propsEqual(a.Properties, b.Properties) ||
			len(a.Children) != len(b.Children) {
			return false
		}
		for i := range a.Children {
			if !eq(a.Children[i], b.Children[i]) {
				return false
			}
		}
		return true
	}
	return eq(p.Root, o.Root)
}

func propsEqual(a, b []Property) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Category != b[i].Category || a[i].Name != b[i].Name ||
			!a[i].Value.Equal(b[i].Value) {
			return false
		}
	}
	return true
}

// Validate checks the plan against the unified grammar: categories must be
// known (unless opts.AllowUnknownCategories), names must be non-empty, and
// the tree must be acyclic (guaranteed by construction but checked
// defensively against aliasing).
func (p *Plan) Validate(opts ...ValidateOption) error {
	var cfg validateConfig
	for _, o := range opts {
		o(&cfg)
	}
	for _, pr := range p.Properties {
		if err := validateProperty(pr, cfg); err != nil {
			return fmt.Errorf("plan property: %w", err)
		}
	}
	seen := map[*Node]bool{}
	var check func(n *Node) error
	check = func(n *Node) error {
		if n == nil {
			return nil
		}
		if seen[n] {
			return fmt.Errorf("core: node %q appears more than once in the tree", n.Op)
		}
		seen[n] = true
		if n.Op.Name == "" {
			return fmt.Errorf("core: operation with empty name")
		}
		if !n.Op.Category.Valid() && !cfg.allowUnknownCategories {
			return fmt.Errorf("core: unknown operation category %q", n.Op.Category)
		}
		for _, pr := range n.Properties {
			if err := validateProperty(pr, cfg); err != nil {
				return fmt.Errorf("operation %q: %w", n.Op, err)
			}
		}
		for _, c := range n.Children {
			if err := check(c); err != nil {
				return err
			}
		}
		return nil
	}
	return check(p.Root)
}

func validateProperty(pr Property, cfg validateConfig) error {
	if pr.Name == "" {
		return fmt.Errorf("core: property with empty name")
	}
	if !pr.Category.Valid() && !cfg.allowUnknownCategories {
		return fmt.Errorf("core: unknown property category %q", pr.Category)
	}
	return nil
}

type validateConfig struct {
	allowUnknownCategories bool
}

// ValidateOption configures Validate.
type ValidateOption func(*validateConfig)

// AllowUnknownCategories makes Validate accept categories outside the seven
// operation and four property categories. This implements the forward
// compatibility contract of Section IV-B: plans produced by a newer grammar
// with additional categories still validate.
func AllowUnknownCategories() ValidateOption {
	return func(c *validateConfig) { c.allowUnknownCategories = true }
}

// CanonicalName converts a unified name with spaces ("Full Table Scan") to
// the strict keyword form of the grammar ("Full_Table_Scan"): letters,
// digits and underscores only, starting with a letter. Names already in
// canonical form are returned unmodified without allocating, which makes
// serializing plans built from registry-interned names allocation-free.
func CanonicalName(name string) string {
	if isCanonicalName(name) {
		return name
	}
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('n') // keywords must start with a letter
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// isCanonicalName reports whether CanonicalName would return name
// unchanged: ASCII letters, digits, and underscores only, not starting
// with a digit. A multi-byte rune always needs rewriting (it collapses to
// one underscore), so the byte scan is exact.
func isCanonicalName(name string) bool {
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// DisplayName reverses CanonicalName's underscore substitution for
// presentation ("Full_Table_Scan" → "Full Table Scan"). Names without
// underscores are returned unmodified without allocating (ReplaceAll
// passes the input through when nothing matches; guarded by
// TestCanonicalNameZeroAllocs).
func DisplayName(name string) string {
	return strings.ReplaceAll(name, "_", " ")
}

// propCategoryRank orders the four property categories canonically; built
// once so SortProperties does not rebuild it per call.
var propCategoryRank = func() map[PropertyCategory]int {
	rank := make(map[PropertyCategory]int, len(PropertyCategories))
	for i, c := range PropertyCategories {
		rank[c] = i
	}
	return rank
}()

// SortProperties orders properties by category (canonical order) then name;
// used by canonical serializations and fingerprints. Unknown categories
// sort after the four canonical ones.
func SortProperties(props []Property) {
	sort.SliceStable(props, func(i, j int) bool {
		ri, iok := propCategoryRank[props[i].Category]
		rj, jok := propCategoryRank[props[j].Category]
		if !iok {
			ri = len(propCategoryRank)
		}
		if !jok {
			rj = len(propCategoryRank)
		}
		if ri != rj {
			return ri < rj
		}
		return props[i].Name < props[j].Name
	})
}
