package core

import (
	"fmt"
	"maps"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"unicode/utf8"
)

// Registry implements the unified naming convention of Section IV-A: it maps
// DBMS-specific operation and property names to unified names and
// categories, and records which names a given grammar version knows. The
// registry is runtime-extensible — adding a keyword for a new operation
// (the paper's "LLM Join" example) is a single AddOperation call and keeps
// both forward and backward compatibility for applications.
//
// A Registry is safe for concurrent use. Writers serialize on a mutex and
// publish an immutable resolution snapshot through an atomic pointer;
// ResolveOperation and ResolveProperty — the conversion hot path — read
// only that snapshot, so they are lock-free and allocation-free on every
// alias and unified-name hit.
type Registry struct {
	mu      sync.Mutex
	version int
	// shared marks base maps borrowed from the DefaultRegistry template;
	// the first mutation copies them (copy-on-write), so cloning the large
	// default vocabulary costs a few pointer copies, not hundreds of
	// inserts.
	shared     bool
	operations map[string]OperationDef // unified name → definition
	properties map[string]PropertyDef  // unified name → definition
	// aliases index DBMS-specific names: dialect → lower(native name) →
	// unified name.
	opAliases   map[string]map[string]string
	propAliases map[string]map[string]string

	// snap is the immutable resolution index rebuilt by writers. Readers
	// load it once per resolution and never touch the base maps.
	snap atomic.Pointer[snapshot]
}

// snapshot is the immutable, pre-case-folded resolution index. Per-dialect
// maps merge the dialect's aliases over the unified vocabulary (aliases
// win), so one map probe answers what previously took an alias lookup plus
// an O(vocabulary) EqualFold scan. All keys are lower-case; values are
// interned once at build time.
type snapshot struct {
	version int
	// opIndex: dialect → folded name → operation (aliases ∪ unified names).
	opIndex map[string]map[string]Operation
	// opGlobal: folded unified name → operation, for dialects without
	// registered aliases.
	opGlobal map[string]Operation

	propIndex  map[string]map[string]propEntry
	propGlobal map[string]propEntry
}

// propEntry is an interned resolved property: unified name plus category.
type propEntry struct {
	name string
	cat  PropertyCategory
}

// OperationDef describes a unified operation keyword.
type OperationDef struct {
	Name     string
	Category OperationCategory
	// Doc is a one-line description used by visualization tools.
	Doc string
	// SinceVersion is the registry version that introduced the keyword.
	SinceVersion int
}

// PropertyDef describes a unified property keyword.
type PropertyDef struct {
	Name         string
	Category     PropertyCategory
	Doc          string
	SinceVersion int
}

// NewRegistry returns an empty registry at version 1.
func NewRegistry() *Registry {
	r := &Registry{
		version:     1,
		operations:  map[string]OperationDef{},
		properties:  map[string]PropertyDef{},
		opAliases:   map[string]map[string]string{},
		propAliases: map[string]map[string]string{},
	}
	r.snap.Store(r.buildSnapshot())
	return r
}

// Version returns the current grammar version. The version increments every
// time a keyword is added or removed, modeling the forward/backward
// compatibility discussion of Section IV-B.
func (r *Registry) Version() int {
	return r.snap.Load().version
}

// ensureOwned copies base maps borrowed from the DefaultRegistry template
// before the first mutation. Callers must hold r.mu.
func (r *Registry) ensureOwned() {
	if !r.shared {
		return
	}
	r.shared = false
	r.operations = maps.Clone(r.operations)
	r.properties = maps.Clone(r.properties)
	opAliases := make(map[string]map[string]string, len(r.opAliases))
	for d, m := range r.opAliases {
		opAliases[d] = maps.Clone(m)
	}
	r.opAliases = opAliases
	propAliases := make(map[string]map[string]string, len(r.propAliases))
	for d, m := range r.propAliases {
		propAliases[d] = maps.Clone(m)
	}
	r.propAliases = propAliases
}

// publish rebuilds and atomically installs the resolution snapshot.
// Callers must hold r.mu. Readers keep using the prior snapshot until the
// store; they observe either the old or the new index, never a torn one.
func (r *Registry) publish() {
	r.snap.Store(r.buildSnapshot())
}

func (r *Registry) buildSnapshot() *snapshot {
	s := &snapshot{
		version:    r.version,
		opGlobal:   make(map[string]Operation, len(r.operations)),
		propGlobal: make(map[string]propEntry, len(r.properties)),
		opIndex:    make(map[string]map[string]Operation, len(r.opAliases)),
		propIndex:  make(map[string]map[string]propEntry, len(r.propAliases)),
	}
	for name, def := range r.operations {
		s.opGlobal[strings.ToLower(name)] = Operation{Category: def.Category, Name: def.Name}
	}
	for dialect, aliases := range r.opAliases {
		m := make(map[string]Operation, len(s.opGlobal)+len(aliases))
		maps.Copy(m, s.opGlobal)
		for native, unified := range aliases {
			if def, ok := r.operations[unified]; ok {
				m[native] = Operation{Category: def.Category, Name: def.Name}
			}
		}
		s.opIndex[dialect] = m
	}
	for name, def := range r.properties {
		s.propGlobal[strings.ToLower(name)] = propEntry{name: def.Name, cat: def.Category}
	}
	for dialect, aliases := range r.propAliases {
		m := make(map[string]propEntry, len(s.propGlobal)+len(aliases))
		maps.Copy(m, s.propGlobal)
		for native, unified := range aliases {
			if def, ok := r.properties[unified]; ok {
				m[native] = propEntry{name: def.Name, cat: def.Category}
			}
		}
		s.propIndex[dialect] = m
	}
	return s
}

// AddOperation registers a unified operation keyword. Re-registering an
// existing name updates its category and documentation.
func (r *Registry) AddOperation(name string, cat OperationCategory, doc string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ensureOwned()
	r.addOperationLocked(name, cat, doc)
	r.publish()
}

func (r *Registry) addOperationLocked(name string, cat OperationCategory, doc string) {
	r.version++
	def, ok := r.operations[name]
	if !ok {
		def = OperationDef{Name: name, SinceVersion: r.version}
	}
	def.Category = cat
	def.Doc = doc
	r.operations[name] = def
}

// RemoveOperation deletes a unified operation keyword and all its aliases.
// It reports whether the keyword existed.
func (r *Registry) RemoveOperation(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.operations[name]; !ok {
		return false
	}
	r.ensureOwned()
	r.version++
	delete(r.operations, name)
	for _, m := range r.opAliases {
		for alias, unified := range m {
			if unified == name {
				delete(m, alias)
			}
		}
	}
	r.publish()
	return true
}

// AddProperty registers a unified property keyword.
func (r *Registry) AddProperty(name string, cat PropertyCategory, doc string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ensureOwned()
	r.addPropertyLocked(name, cat, doc)
	r.publish()
}

func (r *Registry) addPropertyLocked(name string, cat PropertyCategory, doc string) {
	r.version++
	def, ok := r.properties[name]
	if !ok {
		def = PropertyDef{Name: name, SinceVersion: r.version}
	}
	def.Category = cat
	def.Doc = doc
	r.properties[name] = def
}

// AliasOperation maps a DBMS-specific operation name to a unified keyword.
// The unified keyword must already be registered. Matching is
// case-insensitive on the native name.
func (r *Registry) AliasOperation(dialect, nativeName, unifiedName string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Validate before ensureOwned so a failed alias doesn't un-share a
	// copy-on-write clone that never mutated.
	if err := r.checkOpAliasTarget(dialect, nativeName, unifiedName); err != nil {
		return err
	}
	r.ensureOwned()
	r.setOpAliasLocked(dialect, nativeName, unifiedName)
	r.publish()
	return nil
}

func (r *Registry) checkOpAliasTarget(dialect, nativeName, unifiedName string) error {
	if _, ok := r.operations[unifiedName]; !ok {
		return fmt.Errorf("core: alias %q/%q targets unregistered operation %q",
			dialect, nativeName, unifiedName)
	}
	return nil
}

func (r *Registry) setOpAliasLocked(dialect, nativeName, unifiedName string) {
	m := r.opAliases[dialect]
	if m == nil {
		m = map[string]string{}
		r.opAliases[dialect] = m
	}
	m[strings.ToLower(nativeName)] = unifiedName
}

// AliasProperty maps a DBMS-specific property name to a unified keyword.
func (r *Registry) AliasProperty(dialect, nativeName, unifiedName string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.checkPropAliasTarget(dialect, nativeName, unifiedName); err != nil {
		return err
	}
	r.ensureOwned()
	r.setPropAliasLocked(dialect, nativeName, unifiedName)
	r.publish()
	return nil
}

func (r *Registry) checkPropAliasTarget(dialect, nativeName, unifiedName string) error {
	if _, ok := r.properties[unifiedName]; !ok {
		return fmt.Errorf("core: alias %q/%q targets unregistered property %q",
			dialect, nativeName, unifiedName)
	}
	return nil
}

func (r *Registry) setPropAliasLocked(dialect, nativeName, unifiedName string) {
	m := r.propAliases[dialect]
	if m == nil {
		m = map[string]string{}
		r.propAliases[dialect] = m
	}
	m[strings.ToLower(nativeName)] = unifiedName
}

// foldedLookup probes a lower-case-keyed map with a possibly mixed-case
// key: first verbatim (hit when the key is already folded), then folded
// through a stack buffer so ASCII keys never touch the heap — the map
// probe m[string(buf)] compiles without a conversion allocation.
func foldedLookup[V any](m map[string]V, key string) (V, bool) {
	if v, ok := m[key]; ok {
		return v, true
	}
	var buf [128]byte
	if len(key) <= len(buf) {
		ascii, changed := true, false
		for i := 0; i < len(key); i++ {
			c := key[i]
			if c >= utf8.RuneSelf {
				ascii = false
				break
			}
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
				changed = true
			}
			buf[i] = c
		}
		if ascii {
			if !changed {
				var zero V
				return zero, false // verbatim probe above already missed
			}
			v, ok := m[string(buf[:len(key)])]
			return v, ok
		}
	}
	v, ok := m[strings.ToLower(key)]
	return v, ok
}

// ResolveOperation maps a DBMS-specific operation name to its unified
// operation. Resolution order: dialect-specific alias, then exact unified
// name, then the generic fallback — an Executor-category operation carrying
// the native name. The fallback implements the extensibility contract:
// converters never fail on an unknown operation; visualization tools render
// such operations generically.
//
// The read path is lock-free: it probes the current snapshot's merged
// per-dialect index (aliases shadow unified names, preserving the
// historical precedence) and allocates nothing on a hit.
//uplan:hotpath
func (r *Registry) ResolveOperation(dialect, nativeName string) Operation {
	s := r.snap.Load()
	name := strings.TrimSpace(nativeName)
	if m, ok := s.opIndex[dialect]; ok {
		if op, ok := foldedLookup(m, name); ok {
			return op
		}
	} else if op, ok := foldedLookup(s.opGlobal, name); ok {
		return op
	}
	return Operation{Category: Executor, Name: name}
}

// ResolveProperty maps a DBMS-specific property name to its unified
// property name and category. Unknown properties fall back to the
// Configuration category with the native name, for the same reason as
// ResolveOperation's fallback. Like ResolveOperation, the read path is a
// lock-free, allocation-free snapshot probe.
//uplan:hotpath
func (r *Registry) ResolveProperty(dialect, nativeName string) (string, PropertyCategory) {
	s := r.snap.Load()
	name := strings.TrimSpace(nativeName)
	if m, ok := s.propIndex[dialect]; ok {
		if e, ok := foldedLookup(m, name); ok {
			return e.name, e.cat
		}
	} else if e, ok := foldedLookup(s.propGlobal, name); ok {
		return e.name, e.cat
	}
	return name, Configuration
}

// Operation returns the definition of a unified operation keyword.
func (r *Registry) Operation(name string) (OperationDef, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	def, ok := r.operations[name]
	return def, ok
}

// Property returns the definition of a unified property keyword.
func (r *Registry) Property(name string) (PropertyDef, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	def, ok := r.properties[name]
	return def, ok
}

// Operations returns all unified operation definitions sorted by name.
func (r *Registry) Operations() []OperationDef {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]OperationDef, 0, len(r.operations))
	for _, def := range r.operations {
		out = append(out, def)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Properties returns all unified property definitions sorted by name.
func (r *Registry) Properties() []PropertyDef {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]PropertyDef, 0, len(r.properties))
	for _, def := range r.properties {
		out = append(out, def)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// OperationCountByCategory returns how many unified operations exist per
// category (the basis for reproducing paper Table II's unified vocabulary).
func (r *Registry) OperationCountByCategory() map[OperationCategory]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := map[OperationCategory]int{}
	for _, def := range r.operations {
		m[def.Category]++
	}
	return m
}

// defaultTemplate is the fully-built default vocabulary, constructed once
// per process. DefaultRegistry hands out copy-on-write clones of it, so a
// "fresh" default registry costs a handful of pointer copies instead of
// replaying ~600 keyword and alias insertions; clones share the template's
// immutable snapshot until their first mutation.
var defaultTemplate = sync.OnceValue(buildDefaultTemplate)

// DefaultRegistry returns a registry pre-populated with the unified keyword
// set derived from the paper's study: common operation names across the nine
// DBMSs plus their dialect aliases (e.g. PostgreSQL "Seq Scan", SQL Server
// "Table Scan", TiDB "TableFullScan" → "Full Table Scan"). Each call
// returns an independent registry; mutating one never affects another.
func DefaultRegistry() *Registry {
	t := defaultTemplate()
	r := &Registry{
		version:     t.version,
		shared:      true,
		operations:  t.operations,
		properties:  t.properties,
		opAliases:   t.opAliases,
		propAliases: t.propAliases,
	}
	r.snap.Store(t.snap.Load())
	return r
}

func buildDefaultTemplate() *Registry {
	r := NewRegistry()
	r.mu.Lock()
	defer r.mu.Unlock()

	type op struct {
		name string
		cat  OperationCategory
		doc  string
	}
	ops := []op{
		// Producer
		{"Full Table Scan", Producer, "scan an entire table"},
		{"Index Scan", Producer, "scan rows via an index, fetching table rows"},
		{"Index Only Scan", Producer, "read all needed columns from an index"},
		{"Index Range Scan", Producer, "scan a contiguous index range"},
		{"Index Lookup", Producer, "point lookup via a unique index"},
		{"Bitmap Heap Scan", Producer, "fetch rows identified by a bitmap"},
		{"Bitmap Index Scan", Producer, "build a row bitmap from an index"},
		{"Id Scan", Producer, "fetch rows by row identifier"},
		{"Constant Scan", Producer, "produce constant rows without storage access"},
		{"Values Scan", Producer, "produce rows from a VALUES list"},
		{"Function Scan", Producer, "produce rows from a set-returning function"},
		{"Subquery Scan", Producer, "read the result of a subquery"},
		{"CTE Scan", Producer, "read the result of a common table expression"},
		{"Node By Label Scan", Producer, "scan graph nodes with a label"},
		{"Relationship Scan", Producer, "scan graph relationships"},
		{"Collection Scan", Producer, "scan an entire document collection"},
		{"Sample Scan", Producer, "scan a sample of a table"},
		// Combinator
		{"Sort", Combinator, "order tuples by one or more keys"},
		{"Top N", Combinator, "retain the first N tuples of an ordering"},
		{"Union", Combinator, "combine inputs, removing duplicates"},
		{"Union All", Combinator, "concatenate inputs"},
		{"Intersect", Combinator, "tuples present in all inputs"},
		{"Except", Combinator, "tuples of the first input absent from the rest"},
		{"Append", Combinator, "concatenate child outputs"},
		{"Merge Append", Combinator, "merge ordered child outputs"},
		{"Distinct", Combinator, "remove duplicate tuples"},
		{"Limit", Combinator, "pass through at most N tuples"},
		{"Offset", Combinator, "skip the first N tuples"},
		// Join
		{"Nested Loop Join", Join, "join by iterating inner input per outer tuple"},
		{"Hash Join", Join, "join via a hash table on the join key"},
		{"Merge Join", Join, "join two inputs ordered on the join key"},
		{"Index Nested Loop Join", Join, "nested loop using an inner index"},
		{"Index Hash Join", Join, "hash join reading the inner side via index"},
		{"Cartesian Product", Join, "all combinations of input tuples"},
		{"Semi Join", Join, "filter outer tuples having inner matches"},
		{"Anti Join", Join, "filter outer tuples lacking inner matches"},
		{"Expand", Join, "traverse graph relationships from nodes"},
		{"Optional Expand", Join, "expand with optional (outer) semantics"},
		// Folder
		{"Aggregate", Folder, "compute aggregate functions over groups"},
		{"Hash Aggregate", Folder, "aggregate via a hash table of groups"},
		{"Sort Aggregate", Folder, "aggregate over sorted input"},
		{"Stream Aggregate", Folder, "aggregate a pre-ordered stream"},
		{"Group", Folder, "form groups of equal keys"},
		{"Window", Folder, "compute window functions"},
		// Projector
		{"Project", Projector, "compute/remove output columns"},
		{"Produce Results", Projector, "emit final result columns"},
		// Executor
		{"Collect", Executor, "gather rows from remote executors"},
		{"Collect Order", Executor, "gather rows preserving order"},
		{"Gather", Executor, "collect rows from parallel workers"},
		{"Gather Merge", Executor, "collect preserving sort order"},
		{"Exchange", Executor, "redistribute rows across workers/nodes"},
		{"Exchange Sender", Executor, "send rows to other nodes"},
		{"Exchange Receiver", Executor, "receive rows from other nodes"},
		{"Shuffle", Executor, "repartition rows by key"},
		{"Broadcast", Executor, "replicate rows to all nodes"},
		{"Materialize", Executor, "buffer child output for rescans"},
		{"Memoize", Executor, "cache child output by parameter"},
		{"Hash Row", Executor, "build a hash table from input rows"},
		{"Filter", Executor, "drop tuples failing a predicate"},
		{"Fetch", Executor, "fetch full documents for matched keys"},
		{"Whole Stage Codegen", Executor, "fused code-generated pipeline"},
		{"Adaptive Plan", Executor, "runtime-adaptive plan fragment"},
		{"Compute Scalar", Executor, "compute scalar expressions"},
		{"Spool", Executor, "buffer rows for reuse"},
		{"Apply", Executor, "execute a parameterized subplan per row"},
		// Consumer
		{"Insert", Consumer, "insert tuples into a table"},
		{"Update", Consumer, "update stored tuples"},
		{"Delete", Consumer, "delete stored tuples"},
		{"Create Table", Consumer, "create a table"},
		{"Create Index", Consumer, "create an index"},
		{"Set Variable", Consumer, "set a system variable"},
	}
	for _, o := range ops {
		r.addOperationLocked(o.name, o.cat, o.doc)
	}

	type prop struct {
		name string
		cat  PropertyCategory
		doc  string
	}
	props := []prop{
		{"estimated rows", Cardinality, "estimated number of rows returned"},
		{"estimated width", Cardinality, "estimated average row width in bytes"},
		{"actual rows", Cardinality, "observed number of rows returned"},
		{"startup cost", Cost, "estimated cost before the first row"},
		{"total cost", Cost, "estimated cost to return all rows"},
		{"read cost", Cost, "estimated cost of reads"},
		{"eval cost", Cost, "estimated cost of expression evaluation"},
		{"filter", Configuration, "predicate excluding tuples"},
		{"index condition", Configuration, "predicate evaluated via an index"},
		{"access object", Configuration, "table/index/collection accessed"},
		{"name object", Configuration, "name of the accessed object"},
		{"sort key", Configuration, "ordering keys"},
		{"group key", Configuration, "grouping keys"},
		{"join condition", Configuration, "equality/condition joining inputs"},
		{"join type", Configuration, "inner/left/semi/anti"},
		{"output", Configuration, "output column list"},
		{"direction", Configuration, "scan direction"},
		{"recheck condition", Configuration, "condition rechecked on heap rows"},
		{"files", Cardinality, "number of storage files read"},
		{"blocks", Cardinality, "number of storage blocks read"},
		{"block size", Cardinality, "bytes of storage blocks read"},
		{"cached values", Cardinality, "values served from cache"},
		{"shards", Status, "number of shards involved"},
		{"planning time", Status, "time to produce the plan"},
		{"execution time", Status, "time to execute the plan"},
		{"actual time", Status, "observed operator time"},
		{"workers planned", Status, "parallel workers planned"},
		{"workers launched", Status, "parallel workers launched"},
		{"task type", Status, "node/task placement of the operation"},
		{"memory", Status, "memory consumed"},
		{"disk", Status, "disk consumed"},
		{"database accesses", Status, "storage accesses performed"},
	}
	for _, pdef := range props {
		r.addPropertyLocked(pdef.name, pdef.cat, pdef.doc)
	}

	// Dialect aliases for operations. Dialect keys are the lowercase engine
	// names used throughout this repository.
	aliases := []struct{ dialect, native, unified string }{
		// PostgreSQL
		{"postgresql", "Seq Scan", "Full Table Scan"},
		{"postgresql", "Parallel Seq Scan", "Full Table Scan"},
		{"postgresql", "Index Scan", "Index Scan"},
		{"postgresql", "Index Only Scan", "Index Only Scan"},
		{"postgresql", "Bitmap Heap Scan", "Bitmap Heap Scan"},
		{"postgresql", "Bitmap Index Scan", "Bitmap Index Scan"},
		{"postgresql", "Values Scan", "Values Scan"},
		{"postgresql", "Function Scan", "Function Scan"},
		{"postgresql", "Subquery Scan", "Subquery Scan"},
		{"postgresql", "CTE Scan", "CTE Scan"},
		{"postgresql", "Result", "Constant Scan"},
		{"postgresql", "Sort", "Sort"},
		{"postgresql", "Incremental Sort", "Sort"},
		{"postgresql", "Append", "Append"},
		{"postgresql", "Merge Append", "Merge Append"},
		{"postgresql", "Unique", "Distinct"},
		{"postgresql", "Limit", "Limit"},
		{"postgresql", "Nested Loop", "Nested Loop Join"},
		{"postgresql", "Hash Join", "Hash Join"},
		{"postgresql", "Merge Join", "Merge Join"},
		{"postgresql", "Aggregate", "Aggregate"},
		{"postgresql", "HashAggregate", "Hash Aggregate"},
		{"postgresql", "GroupAggregate", "Sort Aggregate"},
		{"postgresql", "Group", "Group"},
		{"postgresql", "WindowAgg", "Window"},
		{"postgresql", "Gather", "Gather"},
		{"postgresql", "Gather Merge", "Gather Merge"},
		{"postgresql", "Materialize", "Materialize"},
		{"postgresql", "Memoize", "Memoize"},
		{"postgresql", "Hash", "Hash Row"},
		{"postgresql", "SetOp", "Except"},
		{"postgresql", "Insert", "Insert"},
		{"postgresql", "Update", "Update"},
		{"postgresql", "Delete", "Delete"},
		// MySQL
		{"mysql", "Table scan", "Full Table Scan"},
		{"mysql", "ALL", "Full Table Scan"},
		{"mysql", "Index lookup", "Index Scan"},
		{"mysql", "Index scan", "Index Scan"},
		{"mysql", "Index range scan", "Index Range Scan"},
		{"mysql", "Covering index scan", "Index Only Scan"},
		{"mysql", "Covering index lookup", "Index Only Scan"},
		{"mysql", "Single-row index lookup", "Index Lookup"},
		{"mysql", "Rows fetched before execution", "Constant Scan"},
		{"mysql", "Filter", "Filter"},
		{"mysql", "Sort", "Sort"},
		{"mysql", "Limit", "Limit"},
		{"mysql", "Nested loop inner join", "Nested Loop Join"},
		{"mysql", "Nested loop left join", "Nested Loop Join"},
		{"mysql", "Inner hash join", "Hash Join"},
		{"mysql", "Left hash join", "Hash Join"},
		{"mysql", "Aggregate", "Aggregate"},
		{"mysql", "Group aggregate", "Sort Aggregate"},
		{"mysql", "Aggregate using temporary table", "Hash Aggregate"},
		{"mysql", "Temporary table", "Materialize"},
		{"mysql", "Union materialize", "Union"},
		{"mysql", "Union all", "Union All"},
		{"mysql", "Deduplicate", "Distinct"},
		{"mysql", "Insert", "Insert"},
		{"mysql", "Update", "Update"},
		{"mysql", "Delete", "Delete"},
		// TiDB
		{"tidb", "TableFullScan", "Full Table Scan"},
		{"tidb", "TableRangeScan", "Index Range Scan"},
		{"tidb", "TableRowIDScan", "Id Scan"},
		{"tidb", "IndexFullScan", "Index Only Scan"},
		{"tidb", "IndexRangeScan", "Index Range Scan"},
		{"tidb", "PointGet", "Index Lookup"},
		{"tidb", "TableDual", "Constant Scan"},
		{"tidb", "Selection", "Filter"},
		{"tidb", "Projection", "Project"},
		{"tidb", "Sort", "Sort"},
		{"tidb", "TopN", "Top N"},
		{"tidb", "Limit", "Limit"},
		{"tidb", "HashJoin", "Hash Join"},
		{"tidb", "IndexJoin", "Index Nested Loop Join"},
		{"tidb", "IndexHashJoin", "Index Hash Join"},
		{"tidb", "MergeJoin", "Merge Join"},
		{"tidb", "HashAgg", "Hash Aggregate"},
		{"tidb", "StreamAgg", "Stream Aggregate"},
		{"tidb", "TableReader", "Collect"},
		{"tidb", "IndexReader", "Collect"},
		{"tidb", "IndexLookUp", "Collect Order"},
		{"tidb", "ExchangeSender", "Exchange Sender"},
		{"tidb", "ExchangeReceiver", "Exchange Receiver"},
		{"tidb", "Shuffle", "Shuffle"},
		{"tidb", "Union", "Union All"},
		{"tidb", "HashDistinct", "Distinct"},
		{"tidb", "Insert", "Insert"},
		{"tidb", "Update", "Update"},
		{"tidb", "Delete", "Delete"},
		// SQLite
		{"sqlite", "SCAN", "Full Table Scan"},
		{"sqlite", "SEARCH", "Index Scan"},
		{"sqlite", "COMPOUND QUERY", "Append"},
		{"sqlite", "UNION", "Union"},
		{"sqlite", "UNION ALL", "Union All"},
		{"sqlite", "INTERSECT", "Intersect"},
		{"sqlite", "EXCEPT", "Except"},
		{"sqlite", "MERGE", "Merge Append"},
		{"sqlite", "MATERIALIZE", "Materialize"},
		// CO-ROUTINE and LEFT-MOST SUBQUERY intentionally resolve via the
		// generic Executor fallback, matching their Table II classification.
		// SQL Server
		{"sqlserver", "Table Scan", "Full Table Scan"},
		{"sqlserver", "Clustered Index Scan", "Full Table Scan"},
		{"sqlserver", "Clustered Index Seek", "Index Scan"},
		{"sqlserver", "Index Seek", "Index Scan"},
		{"sqlserver", "Index Scan", "Index Only Scan"},
		{"sqlserver", "Key Lookup", "Id Scan"},
		{"sqlserver", "Constant Scan", "Constant Scan"},
		{"sqlserver", "Sort", "Sort"},
		{"sqlserver", "Top", "Limit"},
		{"sqlserver", "Concatenation", "Append"},
		{"sqlserver", "Nested Loops", "Nested Loop Join"},
		{"sqlserver", "Hash Match", "Hash Join"},
		{"sqlserver", "Merge Join", "Merge Join"},
		{"sqlserver", "Stream Aggregate", "Stream Aggregate"},
		{"sqlserver", "Hash Match Aggregate", "Hash Aggregate"},
		{"sqlserver", "Compute Scalar", "Compute Scalar"},
		{"sqlserver", "Filter", "Filter"},
		{"sqlserver", "Parallelism", "Exchange"},
		{"sqlserver", "Table Spool", "Spool"},
		{"sqlserver", "Table Insert", "Insert"},
		{"sqlserver", "Table Update", "Update"},
		{"sqlserver", "Table Delete", "Delete"},
		// MongoDB
		{"mongodb", "COLLSCAN", "Collection Scan"},
		{"mongodb", "IXSCAN", "Index Scan"},
		{"mongodb", "FETCH", "Fetch"},
		{"mongodb", "SORT", "Sort"},
		{"mongodb", "LIMIT", "Limit"},
		{"mongodb", "SKIP", "Offset"},
		{"mongodb", "GROUP", "Hash Aggregate"},
		{"mongodb", "PROJECTION_DEFAULT", "Project"},
		{"mongodb", "PROJECTION_SIMPLE", "Project"},
		{"mongodb", "PROJECTION_COVERED", "Project"},
		{"mongodb", "SORT_MERGE", "Merge Append"},
		{"mongodb", "OR", "Union"},
		{"mongodb", "IDHACK", "Index Lookup"},
		{"mongodb", "COUNT", "Aggregate"},
		{"mongodb", "UPDATE", "Update"},
		{"mongodb", "DELETE", "Delete"},
		// Neo4j
		{"neo4j", "AllNodesScan", "Full Table Scan"},
		{"neo4j", "NodeByLabelScan", "Node By Label Scan"},
		{"neo4j", "NodeIndexSeek", "Index Scan"},
		{"neo4j", "NodeIndexScan", "Index Only Scan"},
		{"neo4j", "UndirectedRelationshipIndexContainsScan", "Relationship Scan"},
		{"neo4j", "DirectedRelationshipTypeScan", "Relationship Scan"},
		{"neo4j", "Expand(All)", "Expand"},
		{"neo4j", "Expand(Into)", "Expand"},
		{"neo4j", "OptionalExpand(All)", "Optional Expand"},
		{"neo4j", "VarLengthExpand(All)", "Expand"},
		{"neo4j", "NodeHashJoin", "Hash Join"},
		{"neo4j", "ValueHashJoin", "Hash Join"},
		{"neo4j", "CartesianProduct", "Cartesian Product"},
		{"neo4j", "Filter", "Filter"},
		{"neo4j", "Projection", "Project"},
		{"neo4j", "EagerAggregation", "Hash Aggregate"},
		{"neo4j", "OrderedAggregation", "Sort Aggregate"},
		{"neo4j", "Sort", "Sort"},
		{"neo4j", "Top", "Top N"},
		{"neo4j", "Limit", "Limit"},
		{"neo4j", "Skip", "Offset"},
		{"neo4j", "Distinct", "Distinct"},
		{"neo4j", "Union", "Union"},
		{"neo4j", "ProduceResults", "Produce Results"},
		{"neo4j", "Apply", "Apply"},
		// SparkSQL
		{"sparksql", "Scan", "Full Table Scan"},
		{"sparksql", "FileScan", "Full Table Scan"},
		{"sparksql", "Filter", "Filter"},
		{"sparksql", "Project", "Project"},
		{"sparksql", "Sort", "Sort"},
		{"sparksql", "TakeOrderedAndProject", "Top N"},
		{"sparksql", "GlobalLimit", "Limit"},
		{"sparksql", "LocalLimit", "Limit"},
		{"sparksql", "BroadcastHashJoin", "Hash Join"},
		{"sparksql", "ShuffledHashJoin", "Hash Join"},
		{"sparksql", "SortMergeJoin", "Merge Join"},
		{"sparksql", "BroadcastNestedLoopJoin", "Nested Loop Join"},
		{"sparksql", "CartesianProduct", "Cartesian Product"},
		{"sparksql", "HashAggregate", "Hash Aggregate"},
		{"sparksql", "SortAggregate", "Sort Aggregate"},
		{"sparksql", "ObjectHashAggregate", "Hash Aggregate"},
		{"sparksql", "Exchange", "Exchange"},
		{"sparksql", "BroadcastExchange", "Broadcast"},
		{"sparksql", "AQEShuffleRead", "Exchange Receiver"},
		{"sparksql", "WholeStageCodegen", "Whole Stage Codegen"},
		{"sparksql", "AdaptiveSparkPlan", "Adaptive Plan"},
		{"sparksql", "Union", "Union All"},
		{"sparksql", "HashAggregateDistinct", "Distinct"},
		{"sparksql", "SetCatalogAndNamespace", "Set Variable"},
	}
	for _, a := range aliases {
		if err := r.checkOpAliasTarget(a.dialect, a.native, a.unified); err != nil {
			panic(err) // static table; any failure is a programming error
		}
		r.setOpAliasLocked(a.dialect, a.native, a.unified)
	}

	propAliases := []struct{ dialect, native, unified string }{
		{"postgresql", "rows", "estimated rows"},
		{"postgresql", "width", "estimated width"},
		{"postgresql", "actual rows", "actual rows"},
		{"postgresql", "startup cost", "startup cost"},
		{"postgresql", "total cost", "total cost"},
		{"postgresql", "Filter", "filter"},
		{"postgresql", "Index Cond", "index condition"},
		{"postgresql", "Recheck Cond", "recheck condition"},
		{"postgresql", "Sort Key", "sort key"},
		{"postgresql", "Group Key", "group key"},
		{"postgresql", "Hash Cond", "join condition"},
		{"postgresql", "Merge Cond", "join condition"},
		{"postgresql", "Join Filter", "join condition"},
		{"postgresql", "Relation Name", "name object"},
		{"postgresql", "Index Name", "access object"},
		{"postgresql", "Output", "output"},
		{"postgresql", "Workers Planned", "workers planned"},
		{"postgresql", "Workers Launched", "workers launched"},
		{"postgresql", "Planning Time", "planning time"},
		{"postgresql", "Execution Time", "execution time"},
		{"postgresql", "Actual Time", "actual time"},
		{"mysql", "rows", "estimated rows"},
		{"mysql", "cost", "total cost"},
		{"mysql", "read_cost", "read cost"},
		{"mysql", "eval_cost", "eval cost"},
		{"mysql", "filtered", "filter"},
		{"mysql", "attached_condition", "filter"},
		{"mysql", "key", "access object"},
		{"mysql", "table_name", "name object"},
		{"mysql", "used_columns", "output"},
		{"mysql", "group_by", "group key"},
		{"tidb", "estRows", "estimated rows"},
		{"tidb", "actRows", "actual rows"},
		{"tidb", "cost", "total cost"},
		{"tidb", "task", "task type"},
		{"tidb", "access object", "access object"},
		{"tidb", "operator info", "filter"},
		{"sqlite", "USING INDEX", "access object"},
		{"sqlite", "USING COVERING INDEX", "index condition"},
		{"mongodb", "nReturned", "actual rows"},
		{"mongodb", "docsExamined", "database accesses"},
		{"mongodb", "indexName", "access object"},
		{"mongodb", "direction", "direction"},
		{"mongodb", "filter", "filter"},
		{"mongodb", "namespace", "name object"},
		{"neo4j", "Rows", "actual rows"},
		{"neo4j", "EstimatedRows", "estimated rows"},
		{"neo4j", "DbHits", "database accesses"},
		{"neo4j", "Memory", "memory"},
		{"neo4j", "Details", "filter"},
		{"sqlserver", "EstimateRows", "estimated rows"},
		{"sqlserver", "EstimatedTotalSubtreeCost", "total cost"},
		{"sqlserver", "EstimateIO", "read cost"},
		{"sqlserver", "EstimateCPU", "eval cost"},
		{"sqlserver", "Predicate", "filter"},
		{"sqlserver", "Object", "name object"},
		{"sparksql", "sizeInBytes", "estimated width"},
		{"sparksql", "rowCount", "estimated rows"},
		{"sparksql", "condition", "filter"},
		{"sparksql", "keys", "group key"},
		{"sparksql", "functions", "output"},
		{"influxdb", "TotalSeries", "estimated rows"},
		{"influxdb", "PlanningTime", "planning time"},
		{"influxdb", "ExecutionTime", "execution time"},
		{"influxdb", "NUMBER OF SERIES", "estimated rows"},
		{"influxdb", "NUMBER OF FILES", "files"},
		{"influxdb", "NUMBER OF BLOCKS", "blocks"},
		{"influxdb", "SIZE OF BLOCKS", "block size"},
		{"influxdb", "CACHED VALUES", "cached values"},
		{"influxdb", "NUMBER OF SHARDS", "shards"},
		{"influxdb", "EXPRESSION", "output"},
	}
	for _, a := range propAliases {
		if err := r.checkPropAliasTarget(a.dialect, a.native, a.unified); err != nil {
			panic(err)
		}
		r.setPropAliasLocked(a.dialect, a.native, a.unified)
	}
	r.publish()
	return r
}
