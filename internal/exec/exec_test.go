package exec

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"uplan/internal/datum"
	"uplan/internal/planner"
	"uplan/internal/sql"
	"uplan/internal/storage"
)

// harness runs statements through parse → plan → execute.
type harness struct {
	t  *testing.T
	db *storage.DB
	ex *Executor
	pl *planner.Planner
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	db := storage.NewDB()
	return &harness{
		t:  t,
		db: db,
		ex: New(db),
		pl: planner.New(db.Schema, planner.Options{}),
	}
}

func (h *harness) exec(q string) *Result {
	h.t.Helper()
	res, err := h.tryExec(q)
	if err != nil {
		h.t.Fatalf("exec(%q): %v", q, err)
	}
	return res
}

func (h *harness) tryExec(q string) (*Result, error) {
	stmt, err := sql.Parse(q)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	plan, err := h.pl.Plan(stmt)
	if err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	return h.ex.Run(plan)
}

func (h *harness) mustRows(q string, want [][]datum.D) {
	h.t.Helper()
	res := h.exec(q)
	if len(res.Rows) != len(want) {
		h.t.Fatalf("%q: got %d rows, want %d\nrows: %v", q, len(res.Rows), len(want), res.Rows)
	}
	for i := range want {
		if datum.CompareRows(res.Rows[i], want[i]) != 0 {
			h.t.Fatalf("%q row %d = %v, want %v", q, i, res.Rows[i], want[i])
		}
	}
}

func seedBasic(h *harness) {
	h.exec("CREATE TABLE t0 (c0 INT PRIMARY KEY, c1 INT, c2 TEXT)")
	h.exec("INSERT INTO t0 (c0, c1, c2) VALUES (1, 10, 'a'), (2, 20, 'b'), (3, 30, 'a'), (4, NULL, 'c'), (5, 50, NULL)")
}

func TestSelectWhere(t *testing.T) {
	h := newHarness(t)
	seedBasic(h)
	h.mustRows("SELECT c0 FROM t0 WHERE c1 > 15 ORDER BY c0",
		[][]datum.D{{datum.Int(2)}, {datum.Int(3)}, {datum.Int(5)}})
	// NULL never satisfies a comparison.
	h.mustRows("SELECT c0 FROM t0 WHERE c1 < 1000 ORDER BY c0",
		[][]datum.D{{datum.Int(1)}, {datum.Int(2)}, {datum.Int(3)}, {datum.Int(5)}})
	h.mustRows("SELECT c0 FROM t0 WHERE c1 IS NULL", [][]datum.D{{datum.Int(4)}})
	h.mustRows("SELECT c0 FROM t0 WHERE NOT (c1 > 15) ORDER BY c0",
		[][]datum.D{{datum.Int(1)}})
}

func TestProjectionAndExpressions(t *testing.T) {
	h := newHarness(t)
	seedBasic(h)
	h.mustRows("SELECT c0 + c1 FROM t0 WHERE c0 = 2", [][]datum.D{{datum.Int(22)}})
	h.mustRows("SELECT c0 * 2.5 FROM t0 WHERE c0 = 2", [][]datum.D{{datum.Float(5)}})
	h.mustRows("SELECT c1 / 0 FROM t0 WHERE c0 = 1", [][]datum.D{{datum.Null()}})
	h.mustRows("SELECT CASE WHEN c1 > 15 THEN 'hi' ELSE 'lo' END FROM t0 WHERE c0 IN (1, 2) ORDER BY c0",
		[][]datum.D{{datum.Str("lo")}, {datum.Str("hi")}})
	h.mustRows("SELECT COALESCE(c1, -1) FROM t0 WHERE c0 = 4", [][]datum.D{{datum.Int(-1)}})
	h.mustRows("SELECT GREATEST(c0, c1), LEAST(c0, c1) FROM t0 WHERE c0 = 1",
		[][]datum.D{{datum.Int(10), datum.Int(1)}})
	h.mustRows("SELECT ABS(-3), LENGTH('abc'), UPPER('ab'), LOWER('AB')",
		[][]datum.D{{datum.Int(3), datum.Int(3), datum.Str("AB"), datum.Str("ab")}})
}

func TestJoins(t *testing.T) {
	h := newHarness(t)
	seedBasic(h)
	h.exec("CREATE TABLE t1 (c0 INT, name TEXT)")
	h.exec("INSERT INTO t1 VALUES (1, 'one'), (2, 'two'), (7, 'seven')")
	h.mustRows("SELECT t0.c0, t1.name FROM t0 INNER JOIN t1 ON t0.c0 = t1.c0 ORDER BY t0.c0",
		[][]datum.D{{datum.Int(1), datum.Str("one")}, {datum.Int(2), datum.Str("two")}})
	// LEFT JOIN keeps unmatched rows.
	res := h.exec("SELECT t0.c0, t1.name FROM t0 LEFT JOIN t1 ON t0.c0 = t1.c0 ORDER BY t0.c0")
	if len(res.Rows) != 5 {
		t.Fatalf("left join rows = %d, want 5", len(res.Rows))
	}
	if !res.Rows[2][1].IsNull() {
		t.Errorf("unmatched left row should carry NULL: %v", res.Rows[2])
	}
	// Cross join.
	res = h.exec("SELECT t0.c0 FROM t0, t1")
	if len(res.Rows) != 15 {
		t.Fatalf("cross join rows = %d, want 15", len(res.Rows))
	}
	// Comma join with WHERE equality becomes a join predicate.
	h.mustRows("SELECT t1.name FROM t0, t1 WHERE t0.c0 = t1.c0 AND t0.c1 = 20",
		[][]datum.D{{datum.Str("two")}})
}

func TestJoinAlgorithmsAgree(t *testing.T) {
	// All three join algorithms must produce identical results.
	for _, pref := range []planner.JoinPreference{
		planner.JoinPreferHash, planner.JoinPreferNL, planner.JoinPreferMerge,
	} {
		h := newHarness(t)
		h.pl = planner.New(h.db.Schema, planner.Options{Join: pref})
		seedBasic(h)
		h.exec("CREATE TABLE t1 (c0 INT, v FLOAT)")
		h.exec("INSERT INTO t1 VALUES (1, 1.5), (1, 2.5), (3, 3.5), (NULL, 9.9)")
		res := h.exec("SELECT t0.c0, t1.v FROM t0 INNER JOIN t1 ON t0.c0 = t1.c0 ORDER BY t0.c0, t1.v")
		if len(res.Rows) != 3 {
			t.Fatalf("pref %v: rows = %d, want 3: %v", pref, len(res.Rows), res.Rows)
		}
		if res.Rows[0][1].F != 1.5 || res.Rows[1][1].F != 2.5 || res.Rows[2][1].F != 3.5 {
			t.Errorf("pref %v: wrong rows %v", pref, res.Rows)
		}
	}
}

func TestAggregates(t *testing.T) {
	h := newHarness(t)
	seedBasic(h)
	h.mustRows("SELECT COUNT(*) FROM t0", [][]datum.D{{datum.Int(5)}})
	h.mustRows("SELECT COUNT(c1) FROM t0", [][]datum.D{{datum.Int(4)}})
	h.mustRows("SELECT SUM(c1) FROM t0", [][]datum.D{{datum.Int(110)}})
	h.mustRows("SELECT AVG(c1) FROM t0", [][]datum.D{{datum.Float(27.5)}})
	h.mustRows("SELECT MIN(c1), MAX(c1) FROM t0",
		[][]datum.D{{datum.Int(10), datum.Int(50)}})
	h.mustRows("SELECT COUNT(DISTINCT c2) FROM t0", [][]datum.D{{datum.Int(3)}})
	// Empty input global aggregate.
	h.mustRows("SELECT COUNT(*), SUM(c1) FROM t0 WHERE c0 > 100",
		[][]datum.D{{datum.Int(0), datum.Null()}})
}

func TestGroupByHaving(t *testing.T) {
	h := newHarness(t)
	seedBasic(h)
	h.mustRows("SELECT c2, COUNT(*) FROM t0 GROUP BY c2 HAVING COUNT(*) > 1 ORDER BY c2",
		[][]datum.D{{datum.Str("a"), datum.Int(2)}})
	// NULL forms its own group.
	res := h.exec("SELECT c2, COUNT(*) FROM t0 GROUP BY c2 ORDER BY c2")
	if len(res.Rows) != 4 {
		t.Fatalf("groups = %d, want 4 (incl. NULL group): %v", len(res.Rows), res.Rows)
	}
	if !res.Rows[0][0].IsNull() {
		t.Errorf("NULL group should sort first: %v", res.Rows)
	}
	// Aggregates in ORDER BY.
	h.mustRows("SELECT c2 FROM t0 WHERE c2 IS NOT NULL GROUP BY c2 ORDER BY COUNT(*) DESC, c2 LIMIT 1",
		[][]datum.D{{datum.Str("a")}})
}

func TestSortAggMatchesHashAgg(t *testing.T) {
	h := newHarness(t)
	h.pl = planner.New(h.db.Schema, planner.Options{Agg: planner.AggPreferSort})
	seedBasic(h)
	res := h.exec("SELECT c2, SUM(c1) FROM t0 GROUP BY c2 ORDER BY c2")
	if len(res.Rows) != 4 {
		t.Fatalf("sort agg groups = %d: %v", len(res.Rows), res.Rows)
	}
}

func TestDistinctLimitOffset(t *testing.T) {
	h := newHarness(t)
	seedBasic(h)
	h.mustRows("SELECT DISTINCT c2 FROM t0 WHERE c2 IS NOT NULL ORDER BY c2",
		[][]datum.D{{datum.Str("a")}, {datum.Str("b")}, {datum.Str("c")}})
	h.mustRows("SELECT c0 FROM t0 ORDER BY c0 LIMIT 2",
		[][]datum.D{{datum.Int(1)}, {datum.Int(2)}})
	h.mustRows("SELECT c0 FROM t0 ORDER BY c0 LIMIT 2 OFFSET 3",
		[][]datum.D{{datum.Int(4)}, {datum.Int(5)}})
	h.mustRows("SELECT c0 FROM t0 ORDER BY c0 DESC LIMIT 1",
		[][]datum.D{{datum.Int(5)}})
}

func TestSetOperations(t *testing.T) {
	h := newHarness(t)
	h.exec("CREATE TABLE a (x INT)")
	h.exec("CREATE TABLE b (x INT)")
	h.exec("INSERT INTO a VALUES (1), (2), (2), (3)")
	h.exec("INSERT INTO b VALUES (2), (3), (4)")
	h.mustRows("SELECT x FROM a UNION SELECT x FROM b ORDER BY x",
		[][]datum.D{{datum.Int(1)}, {datum.Int(2)}, {datum.Int(3)}, {datum.Int(4)}})
	res := h.exec("SELECT x FROM a UNION ALL SELECT x FROM b")
	if len(res.Rows) != 7 {
		t.Fatalf("union all rows = %d", len(res.Rows))
	}
	h.mustRows("SELECT x FROM a INTERSECT SELECT x FROM b ORDER BY x",
		[][]datum.D{{datum.Int(2)}, {datum.Int(3)}})
	h.mustRows("SELECT x FROM a EXCEPT SELECT x FROM b ORDER BY x",
		[][]datum.D{{datum.Int(1)}})
}

func TestSubqueries(t *testing.T) {
	h := newHarness(t)
	seedBasic(h)
	h.exec("CREATE TABLE t1 (c0 INT)")
	h.exec("INSERT INTO t1 VALUES (1), (3)")
	h.mustRows("SELECT c0 FROM t0 WHERE c0 IN (SELECT c0 FROM t1) ORDER BY c0",
		[][]datum.D{{datum.Int(1)}, {datum.Int(3)}})
	h.mustRows("SELECT c0 FROM t0 WHERE c0 NOT IN (SELECT c0 FROM t1) ORDER BY c0",
		[][]datum.D{{datum.Int(2)}, {datum.Int(4)}, {datum.Int(5)}})
	h.mustRows("SELECT c0 FROM t0 WHERE EXISTS (SELECT 1 FROM t1 WHERE t1.c0 = t0.c0) ORDER BY c0",
		[][]datum.D{{datum.Int(1)}, {datum.Int(3)}})
	h.mustRows("SELECT c0 FROM t0 WHERE c1 = (SELECT MAX(c1) FROM t0)",
		[][]datum.D{{datum.Int(5)}})
	// Derived table.
	h.mustRows("SELECT d.s FROM (SELECT SUM(c1) AS s FROM t0) AS d",
		[][]datum.D{{datum.Int(110)}})
}

func TestCorrelatedScalarSubquery(t *testing.T) {
	h := newHarness(t)
	h.exec("CREATE TABLE dept (id INT, budget INT)")
	h.exec("CREATE TABLE emp (dept_id INT, sal INT)")
	h.exec("INSERT INTO dept VALUES (1, 100), (2, 30)")
	h.exec("INSERT INTO emp VALUES (1, 40), (1, 50), (2, 10)")
	h.mustRows("SELECT id FROM dept WHERE budget > (SELECT SUM(sal) FROM emp WHERE emp.dept_id = dept.id) ORDER BY id",
		[][]datum.D{{datum.Int(1)}, {datum.Int(2)}})
	h.mustRows("SELECT id FROM dept WHERE budget < (SELECT SUM(sal) FROM emp WHERE emp.dept_id = dept.id)",
		[][]datum.D{})
}

func TestIndexScanCorrectness(t *testing.T) {
	h := newHarness(t)
	seedBasic(h)
	h.exec("CREATE INDEX i1 ON t0 (c1)")
	h.db.AnalyzeAll()
	h.pl = planner.New(h.db.Schema, planner.Options{PreferIndexProbes: true})
	// Equality via index.
	h.mustRows("SELECT c0 FROM t0 WHERE c1 = 20", [][]datum.D{{datum.Int(2)}})
	// Range via index.
	h.mustRows("SELECT c0 FROM t0 WHERE c1 >= 20 AND c1 <= 30 ORDER BY c0",
		[][]datum.D{{datum.Int(2)}, {datum.Int(3)}})
	// Between via index.
	h.mustRows("SELECT c0 FROM t0 WHERE c1 BETWEEN 20 AND 30 ORDER BY c0",
		[][]datum.D{{datum.Int(2)}, {datum.Int(3)}})
	// Float probe against int column must not match (Listing 3 semantics).
	h.mustRows("SELECT c0 FROM t0 WHERE c1 IN (GREATEST(0.1, 0.2))", [][]datum.D{})
}

func TestListing3BugReproduction(t *testing.T) {
	// The paper's Listing 3: same query, wrong answer once an index exists
	// and the truncation quirk is active.
	h := newHarness(t)
	h.exec("CREATE TABLE t0 (c0 INT, c1 INT)")
	h.exec("INSERT INTO t0 (c1, c0) VALUES (0, 1)")
	q := "SELECT * FROM t0 WHERE t0.c1 IN (GREATEST(0.1, 0.2))"
	h.mustRows(q, [][]datum.D{}) // correct: empty

	h.exec("CREATE INDEX i0 ON t0 (c1)")
	h.db.AnalyzeAll()
	h.pl = planner.New(h.db.Schema, planner.Options{PreferIndexProbes: true})
	h.mustRows(q, [][]datum.D{}) // still correct without the quirk

	h.ex.Quirks.IndexProbeTruncatesFloats = true
	res := h.exec(q)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 || res.Rows[0][1].I != 0 {
		t.Fatalf("quirk should reproduce the bug row {1|0}, got %v", res.Rows)
	}
}

func TestDML(t *testing.T) {
	h := newHarness(t)
	seedBasic(h)
	h.exec("UPDATE t0 SET c1 = c1 + 1 WHERE c0 <= 2")
	h.mustRows("SELECT c1 FROM t0 WHERE c0 <= 2 ORDER BY c0",
		[][]datum.D{{datum.Int(11)}, {datum.Int(21)}})
	h.exec("DELETE FROM t0 WHERE c0 = 3")
	h.mustRows("SELECT COUNT(*) FROM t0", [][]datum.D{{datum.Int(4)}})
	// INSERT with column reordering and NULL defaults.
	h.exec("CREATE TABLE t2 (a INT, b TEXT, c FLOAT)")
	h.exec("INSERT INTO t2 (c, a) VALUES (1.5, 7)")
	h.mustRows("SELECT a, b, c FROM t2",
		[][]datum.D{{datum.Int(7), datum.Null(), datum.Float(1.5)}})
}

func TestLikeAndBetween(t *testing.T) {
	h := newHarness(t)
	h.exec("CREATE TABLE s (v TEXT)")
	h.exec("INSERT INTO s VALUES ('apple'), ('banana'), ('grape'), (NULL)")
	h.mustRows("SELECT v FROM s WHERE v LIKE 'a%'", [][]datum.D{{datum.Str("apple")}})
	h.mustRows("SELECT v FROM s WHERE v LIKE '%ap%' ORDER BY v",
		[][]datum.D{{datum.Str("apple")}, {datum.Str("grape")}})
	h.mustRows("SELECT v FROM s WHERE v LIKE 'gr_pe'", [][]datum.D{{datum.Str("grape")}})
	h.mustRows("SELECT v FROM s WHERE v NOT LIKE '%a%'", [][]datum.D{})
}

func TestExplainAnalyzeStats(t *testing.T) {
	h := newHarness(t)
	seedBasic(h)
	stmt := sql.MustParse("SELECT c2, COUNT(*) FROM t0 WHERE c0 > 1 GROUP BY c2")
	plan, err := h.pl.Plan(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.ex.Run(plan); err != nil {
		t.Fatal(err)
	}
	var scanOp *planner.PhysOp
	plan.Walk(func(op *planner.PhysOp, _ int) {
		if op.Kind == planner.OpSeqScan || op.Kind == planner.OpIndexScan {
			scanOp = op
		}
	})
	if scanOp == nil {
		t.Fatal("no scan in plan")
	}
	st := h.ex.Stats[scanOp]
	if st == nil || st.ActualRows != 4 {
		t.Fatalf("scan stats = %+v, want 4 actual rows", st)
	}
}

func TestErrorPaths(t *testing.T) {
	h := newHarness(t)
	seedBasic(h)
	cases := []string{
		"SELECT nosuch FROM t0",
		"SELECT * FROM missing",
		"SELECT c0 FROM t0 WHERE c0 = (SELECT c0 FROM t0)", // >1 row scalar
		"INSERT INTO t0 (zz) VALUES (1)",
		"UPDATE t0 SET zz = 1",
		"SELECT SUM(c0, c1) FROM t0",
		"SELECT c0 FROM t0 UNION SELECT c0, c1 FROM t0", // arity mismatch
	}
	for _, q := range cases {
		if _, err := h.tryExec(q); err == nil {
			t.Errorf("%q should fail", q)
		}
	}
}

func TestCompoundWithNulls(t *testing.T) {
	h := newHarness(t)
	h.exec("CREATE TABLE n (x INT)")
	h.exec("INSERT INTO n VALUES (NULL), (NULL), (1)")
	// UNION treats NULLs as equal (single NULL survives).
	res := h.exec("SELECT x FROM n UNION SELECT x FROM n")
	if len(res.Rows) != 2 {
		t.Fatalf("union with nulls = %d rows, want 2: %v", len(res.Rows), res.Rows)
	}
	h.mustRows("SELECT DISTINCT x FROM n ORDER BY x",
		[][]datum.D{{datum.Null()}, {datum.Int(1)}})
}

func TestQuirkLeftJoinAsInner(t *testing.T) {
	h := newHarness(t)
	seedBasic(h)
	h.exec("CREATE TABLE t1 (c0 INT)")
	h.exec("INSERT INTO t1 VALUES (1)")
	q := "SELECT t0.c0 FROM t0 LEFT JOIN t1 ON t0.c0 = t1.c0"
	if got := len(h.exec(q).Rows); got != 5 {
		t.Fatalf("correct left join = %d rows", got)
	}
	h.ex.Quirks.LeftJoinAsInner = true
	if got := len(h.exec(q).Rows); got != 1 {
		t.Fatalf("quirked left join = %d rows, want 1", got)
	}
}

func TestQuirkLimitOffsetOrder(t *testing.T) {
	h := newHarness(t)
	seedBasic(h)
	q := "SELECT c0 FROM t0 ORDER BY c0 LIMIT 2 OFFSET 1"
	h.mustRows(q, [][]datum.D{{datum.Int(2)}, {datum.Int(3)}})
	h.ex.Quirks.LimitAppliesOffsetAfter = true
	h.mustRows(q, [][]datum.D{{datum.Int(2)}})
}

// TestUnresolvedColumnSentinel pins the exported sentinel: an unresolved
// column reference must be matchable with errors.Is through however many
// layers wrap it, because the TLP/QPG campaigns use the sentinel (not
// message text) to separate generator noise from genuine crashes.
func TestUnresolvedColumnSentinel(t *testing.T) {
	h := newHarness(t)
	h.exec("CREATE TABLE t (c0 INT)")
	h.exec("INSERT INTO t VALUES (1)")
	_, err := h.tryExec("SELECT * FROM t WHERE nope = 1")
	if err == nil {
		t.Fatal("unknown column must error")
	}
	if !errors.Is(err, ErrUnresolvedColumn) {
		t.Errorf("error %q must match ErrUnresolvedColumn via errors.Is", err)
	}
	if !strings.Contains(err.Error(), "unresolved column nope") {
		t.Errorf("message regressed: %q", err)
	}
	if _, err := h.tryExec("SELECT c0 FROM t"); err != nil {
		t.Errorf("resolved column must not error: %v", err)
	}
}

// TestRoundBadArgumentsError is the regression test for the silently
// dropped AsFloat results in ROUND: a non-numeric value or digits
// argument must surface an execution error instead of silently rounding
// the zero value (bad digits used to round to 0 digits).
func TestRoundBadArgumentsError(t *testing.T) {
	h := newHarness(t)
	h.mustRows("SELECT ROUND(1.2345, 2)", [][]datum.D{{datum.Float(1.23)}})
	h.mustRows("SELECT ROUND(2.5)", [][]datum.D{{datum.Float(3)}})
	for _, q := range []string{
		"SELECT ROUND('abc')",
		"SELECT ROUND(1.234, 'xy')",
	} {
		if _, err := h.tryExec(q); err == nil || !strings.Contains(err.Error(), "ROUND") {
			t.Errorf("%q: want a ROUND argument error, got %v", q, err)
		}
	}
}

// TestIndexCondLeadingColumnInvariant pins the check that replaced the
// `_ = col` placeholder: an index-condition conjunct naming any column
// other than the index's leading column must fail loudly instead of
// probing the index with a value for the wrong column.
func TestIndexCondLeadingColumnInvariant(t *testing.T) {
	h := newHarness(t)
	seedBasic(h)
	h.exec("CREATE INDEX i1 ON t0 (c1)")
	tbl := h.db.Table("t0")

	mkOp := func(cond sql.Expr) *planner.PhysOp {
		op := planner.NewOp(planner.OpIndexScan)
		op.Table = "t0"
		op.Index = "i1"
		op.IndexCond = cond
		return op
	}
	// Control: a leading-column probe resolves row IDs.
	ids, err := h.ex.indexRowIDs(mkOp(&sql.Binary{
		Op: sql.OpEq,
		L:  &sql.ColumnRef{Name: "c1"},
		R:  &sql.Literal{Val: datum.Int(20)},
	}), tbl, nil)
	if err != nil || len(ids) != 1 {
		t.Fatalf("leading-column probe: ids=%v err=%v", ids, err)
	}
	// A condition on a non-index column must error, for every arm.
	conds := []sql.Expr{
		&sql.Binary{Op: sql.OpEq, L: &sql.ColumnRef{Name: "c0"}, R: &sql.Literal{Val: datum.Int(1)}},
		&sql.InList{X: &sql.ColumnRef{Name: "c0"}, List: []sql.Expr{&sql.Literal{Val: datum.Int(1)}}},
		&sql.Between{X: &sql.ColumnRef{Name: "c0"}, Lo: &sql.Literal{Val: datum.Int(1)}, Hi: &sql.Literal{Val: datum.Int(2)}},
	}
	for _, cond := range conds {
		if _, err := h.ex.indexRowIDs(mkOp(cond), tbl, nil); err == nil {
			t.Errorf("index condition %s on non-leading column should fail", cond.SQL())
		}
	}
}
