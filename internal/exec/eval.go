// Package exec implements the volcano-style (materialized) executor the
// simulated engines share: expression evaluation with SQL three-valued
// logic, the physical operators produced by the planner, correlated
// subquery execution, and per-operator runtime statistics that power
// EXPLAIN ANALYZE and the paper's q11 timing experiment.
package exec

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"uplan/internal/datum"
	"uplan/internal/planner"
	"uplan/internal/sql"
)

// ErrUnresolvedColumn reports a column reference that no scope could bind.
// Callers that generate queries against a guessed schema (the TLP oracle,
// fuzzing campaigns) match it with errors.Is to separate "the generator
// named a column this table lacks" from genuine execution failures.
var ErrUnresolvedColumn = errors.New("unresolved column")

// scope is one level of column bindings; parent links implement correlated
// subquery resolution.
type scope struct {
	schema  []planner.OutCol
	row     []datum.D
	parent  *scope
	touched *bool // set when resolution escapes to the parent scope
}

func (s *scope) lookup(table, name string) (datum.D, bool) {
	var crossed []*bool
	for sc := s; sc != nil; sc = sc.parent {
		if sc != s && sc.touched != nil {
			// We are about to search a subquery boundary scope (or beyond):
			// a hit from here on means the subquery is correlated.
			crossed = append(crossed, sc.touched)
		}
		if i := planner.FindColumn(sc.schema, table, name); i >= 0 {
			for _, m := range crossed {
				*m = true
			}
			return sc.row[i], true
		}
	}
	return datum.Null(), false
}

func (s *scope) lookupExpr(e sql.Expr) (datum.D, bool) {
	var crossed []*bool
	for sc := s; sc != nil; sc = sc.parent {
		if sc != s && sc.touched != nil {
			crossed = append(crossed, sc.touched)
		}
		if i := planner.FindExprColumn(sc.schema, e); i >= 0 {
			for _, m := range crossed {
				*m = true
			}
			return sc.row[i], true
		}
	}
	return datum.Null(), false
}

// eval evaluates an expression in a scope.
func (ex *Executor) eval(e sql.Expr, sc *scope) (datum.D, error) {
	switch t := e.(type) {
	case *sql.Literal:
		return t.Val, nil
	case *sql.ColumnRef:
		if v, ok := sc.lookup(t.Table, t.Name); ok {
			return v, nil
		}
		return datum.Null(), fmt.Errorf("exec: %w %s", ErrUnresolvedColumn, t.SQL())
	case *sql.Binary:
		return ex.evalBinary(t, sc)
	case *sql.Unary:
		x, err := ex.eval(t.X, sc)
		if err != nil {
			return datum.Null(), err
		}
		if t.Op == "NOT" {
			tr := datum.TruthOf(x)
			if ex.Quirks.NotIgnoresNull && tr == datum.Unknown {
				return datum.Bool(true), nil // injected defect
			}
			return tr.Not().D(), nil
		}
		// Arithmetic negation.
		switch x.K {
		case datum.KNull:
			return datum.Null(), nil
		case datum.KInt:
			return datum.Int(-x.I), nil
		case datum.KFloat:
			return datum.Float(-x.F), nil
		}
		return datum.Null(), fmt.Errorf("exec: cannot negate %v", x.K)
	case *sql.IsNull:
		x, err := ex.eval(t.X, sc)
		if err != nil {
			return datum.Null(), err
		}
		if t.Neg {
			return datum.Bool(!x.IsNull()), nil
		}
		return datum.Bool(x.IsNull()), nil
	case *sql.InList:
		return ex.evalInList(t, sc)
	case *sql.InSubquery:
		return ex.evalInSubquery(t, sc)
	case *sql.Exists:
		rows, err := ex.runSubquery(t.Sub, sc)
		if err != nil {
			return datum.Null(), err
		}
		has := len(rows) > 0
		if t.Neg {
			has = !has
		}
		return datum.Bool(has), nil
	case *sql.Between:
		x, err := ex.eval(t.X, sc)
		if err != nil {
			return datum.Null(), err
		}
		lo, err := ex.eval(t.Lo, sc)
		if err != nil {
			return datum.Null(), err
		}
		hi, err := ex.eval(t.Hi, sc)
		if err != nil {
			return datum.Null(), err
		}
		geLo := compareTruth(x, lo, sql.OpGe)
		leHi := compareTruth(x, hi, sql.OpLe)
		res := geLo.And(leHi)
		if t.Neg {
			res = res.Not()
		}
		return res.D(), nil
	case *sql.Like:
		x, err := ex.eval(t.X, sc)
		if err != nil {
			return datum.Null(), err
		}
		pat, err := ex.eval(t.Pattern, sc)
		if err != nil {
			return datum.Null(), err
		}
		if x.IsNull() || pat.IsNull() {
			return datum.Null(), nil
		}
		m := likeMatch(toStr(x), toStr(pat))
		if t.Neg {
			m = !m
		}
		return datum.Bool(m), nil
	case *sql.Case:
		return ex.evalCase(t, sc)
	case *sql.FuncCall:
		if t.IsAggregate() {
			// Aggregate references outside the aggregation operator resolve
			// to the agg output column (HAVING/ORDER BY path).
			if v, ok := sc.lookupExpr(t); ok {
				return v, nil
			}
			return datum.Null(), fmt.Errorf("exec: aggregate %s outside aggregation context", t.SQL())
		}
		return ex.evalScalarFunc(t, sc)
	case *sql.ScalarSubquery:
		rows, err := ex.runSubquery(t.Sub, sc)
		if err != nil {
			return datum.Null(), err
		}
		if len(rows) == 0 {
			return datum.Null(), nil
		}
		if len(rows) > 1 {
			return datum.Null(), fmt.Errorf("exec: scalar subquery returned %d rows", len(rows))
		}
		if len(rows[0]) != 1 {
			return datum.Null(), fmt.Errorf("exec: scalar subquery returned %d columns", len(rows[0]))
		}
		return rows[0][0], nil
	case *sql.Star:
		return datum.Null(), fmt.Errorf("exec: * is not a scalar expression")
	}
	return datum.Null(), fmt.Errorf("exec: unsupported expression %T", e)
}

func (ex *Executor) evalBinary(b *sql.Binary, sc *scope) (datum.D, error) {
	switch b.Op {
	case sql.OpAnd, sql.OpOr:
		l, err := ex.eval(b.L, sc)
		if err != nil {
			return datum.Null(), err
		}
		r, err := ex.eval(b.R, sc)
		if err != nil {
			return datum.Null(), err
		}
		lt, rt := datum.TruthOf(l), datum.TruthOf(r)
		if b.Op == sql.OpAnd {
			return lt.And(rt).D(), nil
		}
		return lt.Or(rt).D(), nil
	}
	l, err := ex.eval(b.L, sc)
	if err != nil {
		return datum.Null(), err
	}
	r, err := ex.eval(b.R, sc)
	if err != nil {
		return datum.Null(), err
	}
	switch b.Op {
	case sql.OpEq, sql.OpNe, sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
		return compareTruth(l, r, b.Op).D(), nil
	case sql.OpAdd, sql.OpSub, sql.OpMul, sql.OpDiv, sql.OpMod:
		return arith(l, r, b.Op)
	case sql.OpCat:
		if l.IsNull() || r.IsNull() {
			return datum.Null(), nil
		}
		return datum.Str(toStr(l) + toStr(r)), nil
	}
	return datum.Null(), fmt.Errorf("exec: unsupported operator %q", b.Op)
}

func compareTruth(l, r datum.D, op sql.BinaryOp) datum.Truth {
	c, ok := datum.Compare(l, r)
	if !ok {
		return datum.Unknown
	}
	var res bool
	switch op {
	case sql.OpEq:
		res = c == 0
	case sql.OpNe:
		res = c != 0
	case sql.OpLt:
		res = c < 0
	case sql.OpLe:
		res = c <= 0
	case sql.OpGt:
		res = c > 0
	case sql.OpGe:
		res = c >= 0
	}
	if res {
		return datum.True
	}
	return datum.False
}

func arith(l, r datum.D, op sql.BinaryOp) (datum.D, error) {
	if l.IsNull() || r.IsNull() {
		return datum.Null(), nil
	}
	if l.K == datum.KInt && r.K == datum.KInt {
		switch op {
		case sql.OpAdd:
			return datum.Int(l.I + r.I), nil
		case sql.OpSub:
			return datum.Int(l.I - r.I), nil
		case sql.OpMul:
			return datum.Int(l.I * r.I), nil
		case sql.OpDiv:
			if r.I == 0 {
				return datum.Null(), nil
			}
			return datum.Int(l.I / r.I), nil
		case sql.OpMod:
			if r.I == 0 {
				return datum.Null(), nil
			}
			return datum.Int(l.I % r.I), nil
		}
	}
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok {
		return datum.Null(), fmt.Errorf("exec: non-numeric operands for %q", op)
	}
	switch op {
	case sql.OpAdd:
		return datum.Float(lf + rf), nil
	case sql.OpSub:
		return datum.Float(lf - rf), nil
	case sql.OpMul:
		return datum.Float(lf * rf), nil
	case sql.OpDiv:
		if rf == 0 {
			return datum.Null(), nil
		}
		return datum.Float(lf / rf), nil
	case sql.OpMod:
		if rf == 0 {
			return datum.Null(), nil
		}
		return datum.Float(math.Mod(lf, rf)), nil
	}
	return datum.Null(), fmt.Errorf("exec: unsupported arithmetic %q", op)
}

func (ex *Executor) evalInList(t *sql.InList, sc *scope) (datum.D, error) {
	x, err := ex.eval(t.X, sc)
	if err != nil {
		return datum.Null(), err
	}
	res := datum.False
	for _, item := range t.List {
		v, err := ex.eval(item, sc)
		if err != nil {
			return datum.Null(), err
		}
		res = res.Or(compareTruth(x, v, sql.OpEq))
	}
	if t.Neg {
		res = res.Not()
	}
	return res.D(), nil
}

func (ex *Executor) evalInSubquery(t *sql.InSubquery, sc *scope) (datum.D, error) {
	x, err := ex.eval(t.X, sc)
	if err != nil {
		return datum.Null(), err
	}
	rows, err := ex.runSubquery(t.Sub, sc)
	if err != nil {
		return datum.Null(), err
	}
	res := datum.False
	for _, row := range rows {
		if len(row) != 1 {
			return datum.Null(), fmt.Errorf("exec: IN subquery must return one column")
		}
		res = res.Or(compareTruth(x, row[0], sql.OpEq))
	}
	if t.Neg {
		res = res.Not()
	}
	return res.D(), nil
}

func (ex *Executor) evalCase(c *sql.Case, sc *scope) (datum.D, error) {
	for _, w := range c.Whens {
		var match datum.Truth
		if c.Operand != nil {
			op, err := ex.eval(c.Operand, sc)
			if err != nil {
				return datum.Null(), err
			}
			v, err := ex.eval(w.Cond, sc)
			if err != nil {
				return datum.Null(), err
			}
			match = compareTruth(op, v, sql.OpEq)
		} else {
			v, err := ex.eval(w.Cond, sc)
			if err != nil {
				return datum.Null(), err
			}
			match = datum.TruthOf(v)
		}
		if match == datum.True {
			return ex.eval(w.Then, sc)
		}
	}
	if c.Else != nil {
		return ex.eval(c.Else, sc)
	}
	return datum.Null(), nil
}

func (ex *Executor) evalScalarFunc(f *sql.FuncCall, sc *scope) (datum.D, error) {
	args := make([]datum.D, len(f.Args))
	for i, a := range f.Args {
		v, err := ex.eval(a, sc)
		if err != nil {
			return datum.Null(), err
		}
		args[i] = v
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("exec: %s expects %d arguments, got %d", f.Name, n, len(args))
		}
		return nil
	}
	switch f.Name {
	case "ABS":
		if err := need(1); err != nil {
			return datum.Null(), err
		}
		switch args[0].K {
		case datum.KNull:
			return datum.Null(), nil
		case datum.KInt:
			if args[0].I < 0 {
				return datum.Int(-args[0].I), nil
			}
			return args[0], nil
		case datum.KFloat:
			return datum.Float(math.Abs(args[0].F)), nil
		}
		return datum.Null(), fmt.Errorf("exec: ABS of non-numeric")
	case "LENGTH":
		if err := need(1); err != nil {
			return datum.Null(), err
		}
		if args[0].IsNull() {
			return datum.Null(), nil
		}
		return datum.Int(int64(len(toStr(args[0])))), nil
	case "UPPER":
		if err := need(1); err != nil {
			return datum.Null(), err
		}
		if args[0].IsNull() {
			return datum.Null(), nil
		}
		return datum.Str(strings.ToUpper(toStr(args[0]))), nil
	case "LOWER":
		if err := need(1); err != nil {
			return datum.Null(), err
		}
		if args[0].IsNull() {
			return datum.Null(), nil
		}
		return datum.Str(strings.ToLower(toStr(args[0]))), nil
	case "SUBSTR", "SUBSTRING":
		if len(args) < 2 || len(args) > 3 {
			return datum.Null(), fmt.Errorf("exec: SUBSTR expects 2 or 3 arguments")
		}
		if args[0].IsNull() || args[1].IsNull() {
			return datum.Null(), nil
		}
		s := toStr(args[0])
		start := int(args[1].I) - 1
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			start = len(s)
		}
		end := len(s)
		if len(args) == 3 && !args[2].IsNull() {
			end = start + int(args[2].I)
			if end > len(s) {
				end = len(s)
			}
			if end < start {
				end = start
			}
		}
		return datum.Str(s[start:end]), nil
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return datum.Null(), nil
	case "NULLIF":
		if err := need(2); err != nil {
			return datum.Null(), err
		}
		if eq, ok := datum.Equal(args[0], args[1]); ok && eq {
			return datum.Null(), nil
		}
		return args[0], nil
	case "GREATEST":
		return extremum(args, 1), nil
	case "LEAST":
		return extremum(args, -1), nil
	case "ROUND":
		if len(args) == 0 || args[0].IsNull() {
			return datum.Null(), nil
		}
		v, ok := args[0].AsFloat()
		if !ok {
			return datum.Null(), fmt.Errorf("exec: ROUND argument %s is not numeric", args[0])
		}
		digits := 0.0
		if len(args) == 2 && !args[1].IsNull() {
			// Silently treating a bad digits argument as 0 rounds to the
			// wrong precision and hides the defect from the oracles.
			if digits, ok = args[1].AsFloat(); !ok {
				return datum.Null(), fmt.Errorf("exec: ROUND digits argument %s is not numeric", args[1])
			}
		}
		scale := math.Pow(10, digits)
		return datum.Float(math.Round(v*scale) / scale), nil
	}
	return datum.Null(), fmt.Errorf("exec: unknown function %s", f.Name)
}

// extremum returns the max (dir=1) or min (dir=-1) of the arguments; NULL
// if any argument is NULL (standard GREATEST/LEAST semantics).
func extremum(args []datum.D, dir int) datum.D {
	if len(args) == 0 {
		return datum.Null()
	}
	best := args[0]
	if best.IsNull() {
		return datum.Null()
	}
	for _, a := range args[1:] {
		if a.IsNull() {
			return datum.Null()
		}
		if c, ok := datum.Compare(a, best); ok && c*dir > 0 {
			best = a
		}
	}
	return best
}

func toStr(d datum.D) string {
	if d.K == datum.KString {
		return d.S
	}
	s := d.String()
	return strings.Trim(s, "'")
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single char).
func likeMatch(s, pattern string) bool {
	// Dynamic programming over pattern/string positions.
	m, n := len(pattern), len(s)
	dp := make([][]bool, m+1)
	for i := range dp {
		dp[i] = make([]bool, n+1)
	}
	dp[0][0] = true
	for i := 1; i <= m; i++ {
		if pattern[i-1] == '%' {
			dp[i][0] = dp[i-1][0]
		}
		for j := 1; j <= n; j++ {
			switch pattern[i-1] {
			case '%':
				dp[i][j] = dp[i-1][j] || dp[i][j-1]
			case '_':
				dp[i][j] = dp[i-1][j-1]
			default:
				dp[i][j] = dp[i-1][j-1] && pattern[i-1] == s[j-1]
			}
		}
	}
	return dp[m][n]
}

// EvalTruth evaluates a predicate to a 3VL truth value.
func (ex *Executor) EvalTruth(e sql.Expr, sc *scope) (datum.Truth, error) {
	if e == nil {
		return datum.True, nil
	}
	v, err := ex.eval(e, sc)
	if err != nil {
		return datum.False, err
	}
	return datum.TruthOf(v), nil
}
