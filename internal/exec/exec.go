package exec

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"uplan/internal/catalog"
	"uplan/internal/datum"
	"uplan/internal/planner"
	"uplan/internal/sql"
	"uplan/internal/storage"
)

// Quirks are injectable executor defects; each models a distinct class of
// optimizer/executor bug from the paper's Table V campaign (internal/bugs
// maps concrete bug IDs onto these switches). All false means a correct
// engine.
type Quirks struct {
	// NotIgnoresNull makes NOT over a NULL condition return TRUE.
	NotIgnoresNull bool
	// IndexProbeTruncatesFloats truncates float probe keys to integers
	// during index lookups without a recheck — the paper's Listing 3 bug.
	IndexProbeTruncatesFloats bool
	// IndexRangeSkipsBoundary excludes the inclusive lower boundary row of
	// index range scans.
	IndexRangeSkipsBoundary bool
	// HashJoinMissesCrossKind misses matches whose keys are numerically
	// equal but of different kinds (1 vs 1.0).
	HashJoinMissesCrossKind bool
	// LeftJoinAsInner drops unmatched outer rows from LEFT JOIN.
	LeftJoinAsInner bool
	// DistinctDropsNulls removes all-NULL rows entirely under DISTINCT.
	DistinctDropsNulls bool
	// ExceptKeepsDuplicates skips the dedup step of EXCEPT.
	ExceptKeepsDuplicates bool
	// LimitAppliesOffsetAfter applies OFFSET after LIMIT.
	LimitAppliesOffsetAfter bool
	// AggDropsNullGroups omits the NULL group from GROUP BY results.
	AggDropsNullGroups bool
	// UpdateUsesUpdatedRow evaluates later SET expressions against the
	// already-updated row (Halloween-style anomaly).
	UpdateUsesUpdatedRow bool
	// MergeJoinDropsLastGroup drops the final key group of a merge join.
	MergeJoinDropsLastGroup bool
}

// OpStats is the runtime record of one operator (EXPLAIN ANALYZE data).
type OpStats struct {
	ActualRows int
	Duration   time.Duration
	Loops      int
}

// Result is the materialized output of a statement.
type Result struct {
	Columns []string
	Rows    [][]datum.D
}

// Executor runs physical plans against a storage database.
type Executor struct {
	DB     *storage.DB
	Quirks Quirks
	// Stats collects per-operator runtime statistics of the last Run.
	Stats map[*planner.PhysOp]*OpStats

	subplans map[*sql.Select]*planner.PhysOp
	subCache map[*sql.Select][][]datum.D
}

// New returns an executor over the database.
func New(db *storage.DB) *Executor {
	return &Executor{DB: db}
}

// Run executes a plan and returns its result.
func (ex *Executor) Run(plan *planner.PhysOp) (*Result, error) {
	ex.Stats = map[*planner.PhysOp]*OpStats{}
	ex.subplans = map[*sql.Select]*planner.PhysOp{}
	ex.subCache = map[*sql.Select][][]datum.D{}
	plan.Walk(func(op *planner.PhysOp, _ int) {
		for _, sp := range op.Subplans {
			ex.subplans[sp.Sel] = sp.Plan
		}
	})
	rows, err := ex.run(plan, nil)
	if err != nil {
		return nil, err
	}
	return &Result{Columns: plan.ColumnNames(), Rows: rows}, nil
}

func (ex *Executor) record(op *planner.PhysOp, rows int, d time.Duration) {
	st := ex.Stats[op]
	if st == nil {
		st = &OpStats{}
		ex.Stats[op] = st
	}
	st.ActualRows += rows
	st.Duration += d
	st.Loops++
}

func (ex *Executor) run(op *planner.PhysOp, outer *scope) ([][]datum.D, error) {
	start := time.Now()
	rows, err := ex.runInner(op, outer)
	if err != nil {
		return nil, err
	}
	// Subtract child time so Duration is (approximately) self time.
	d := time.Since(start)
	for _, c := range op.Children {
		if st := ex.Stats[c]; st != nil && st.Duration < d {
			d -= st.Duration
		}
	}
	ex.record(op, len(rows), d)
	return rows, nil
}

func (ex *Executor) runInner(op *planner.PhysOp, outer *scope) ([][]datum.D, error) {
	switch op.Kind {
	case planner.OpValues:
		return [][]datum.D{{}}, nil
	case planner.OpSeqScan:
		return ex.runSeqScan(op, outer)
	case planner.OpIndexScan, planner.OpIndexOnlyScan:
		return ex.runIndexScan(op, outer)
	case planner.OpFilter:
		return ex.runFilter(op, outer)
	case planner.OpProject:
		return ex.runProject(op, outer)
	case planner.OpNLJoin:
		return ex.runNLJoin(op, outer)
	case planner.OpHashJoin:
		return ex.runHashJoin(op, outer)
	case planner.OpMergeJoin:
		return ex.runMergeJoin(op, outer)
	case planner.OpHashAgg, planner.OpSortAgg:
		return ex.runAggregate(op, outer)
	case planner.OpSort, planner.OpTopN:
		return ex.runSort(op, outer)
	case planner.OpLimit:
		return ex.runLimit(op, outer)
	case planner.OpDistinct:
		return ex.runDistinct(op, outer)
	case planner.OpUnionAll, planner.OpUnion, planner.OpIntersect, planner.OpExcept:
		return ex.runSetOp(op, outer)
	case planner.OpInsert:
		return ex.runInsert(op)
	case planner.OpUpdate:
		return ex.runUpdate(op, outer)
	case planner.OpDelete:
		return ex.runDelete(op, outer)
	case planner.OpCreateTable:
		return ex.runCreateTable(op)
	case planner.OpCreateIndex:
		return ex.runCreateIndex(op)
	}
	return nil, fmt.Errorf("exec: unsupported operator %s", op.Kind)
}

func (ex *Executor) runSeqScan(op *planner.PhysOp, outer *scope) ([][]datum.D, error) {
	tbl := ex.DB.Table(op.Table)
	if tbl == nil {
		return nil, fmt.Errorf("exec: no such table %q", op.Table)
	}
	var out [][]datum.D
	var scanErr error
	tbl.Scan(func(_ int, row storage.Row) bool {
		sc := &scope{schema: op.Schema, row: row, parent: outer}
		tr, err := ex.EvalTruth(op.Filter, sc)
		if err != nil {
			scanErr = err
			return false
		}
		if tr == datum.True {
			out = append(out, append([]datum.D(nil), row...))
		}
		return true
	})
	return out, scanErr
}

func (ex *Executor) runIndexScan(op *planner.PhysOp, outer *scope) ([][]datum.D, error) {
	tbl := ex.DB.Table(op.Table)
	if tbl == nil {
		return nil, fmt.Errorf("exec: no such table %q", op.Table)
	}
	ids, err := ex.indexRowIDs(op, tbl, outer)
	if err != nil {
		return nil, err
	}
	var out [][]datum.D
	for _, id := range ids {
		row, ok := tbl.Get(id)
		if !ok {
			continue
		}
		sc := &scope{schema: op.Schema, row: row, parent: outer}
		tr, err := ex.EvalTruth(op.Filter, sc)
		if err != nil {
			return nil, err
		}
		if tr == datum.True {
			out = append(out, append([]datum.D(nil), row...))
		}
	}
	return out, nil
}

// indexRowIDs evaluates the index condition into storage probes. With no
// index condition the whole index is scanned in key order.
func (ex *Executor) indexRowIDs(op *planner.PhysOp, tbl *storage.Table, outer *scope) ([]int, error) {
	ix := tbl.Index(op.Index)
	if ix == nil {
		return nil, fmt.Errorf("exec: no such index %q on %q", op.Index, op.Table)
	}
	if op.IndexCond == nil {
		var ids []int
		ix.ScanOrdered(func(_ []datum.D, rowID int) bool {
			ids = append(ids, rowID)
			return true
		})
		return ids, nil
	}
	constScope := &scope{parent: outer}
	probe := func(v datum.D) datum.D {
		if ex.Quirks.IndexProbeTruncatesFloats && v.K == datum.KFloat {
			return datum.Int(int64(v.F)) // injected defect: no recheck follows
		}
		return v
	}
	var ids []int
	seen := map[int]bool{}
	addID := func(id int) {
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	var lo, hi *datum.D
	loInc, hiInc := true, true
	haveRange := false
	for _, c := range planner.SplitConjuncts(op.IndexCond) {
		switch t := c.(type) {
		case *sql.Binary:
			col, valExpr, opKind, ok := normalizeComparison(t)
			if !ok {
				return nil, fmt.Errorf("exec: unsupported index condition %s", c.SQL())
			}
			// The probe key below is built for the index's leading column;
			// a conjunct targeting any other column would silently probe
			// with the wrong value. The planner only emits leading-column
			// conditions, so a mismatch here is a plan-corruption bug.
			if !strings.EqualFold(col, ix.Def.Columns[0]) {
				return nil, fmt.Errorf("exec: index condition on %q does not match leading column %q of index %q",
					col, ix.Def.Columns[0], op.Index)
			}
			v, err := ex.eval(valExpr, constScope)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				continue // NULL comparisons match nothing
			}
			v = probe(v)
			switch opKind {
			case sql.OpEq:
				for _, id := range ix.LookupEqual([]datum.D{v}) {
					addID(id)
				}
				return ids, nil
			case sql.OpGt:
				lo, loInc, haveRange = &v, false, true
			case sql.OpGe:
				lo, loInc, haveRange = &v, true, true
			case sql.OpLt:
				hi, hiInc, haveRange = &v, false, true
			case sql.OpLe:
				hi, hiInc, haveRange = &v, true, true
			}
		case *sql.InList:
			// Same leading-column invariant as the comparison arm above.
			if ref, ok := t.X.(*sql.ColumnRef); !ok || !strings.EqualFold(ref.Name, ix.Def.Columns[0]) {
				return nil, fmt.Errorf("exec: unsupported index condition %s", c.SQL())
			}
			for _, item := range t.List {
				v, err := ex.eval(item, constScope)
				if err != nil {
					return nil, err
				}
				if v.IsNull() {
					continue
				}
				v = probe(v)
				for _, id := range ix.LookupEqual([]datum.D{v}) {
					addID(id)
				}
			}
			return ids, nil
		case *sql.Between:
			if ref, ok := t.X.(*sql.ColumnRef); !ok || !strings.EqualFold(ref.Name, ix.Def.Columns[0]) {
				return nil, fmt.Errorf("exec: unsupported index condition %s", c.SQL())
			}
			loV, err := ex.eval(t.Lo, constScope)
			if err != nil {
				return nil, err
			}
			hiV, err := ex.eval(t.Hi, constScope)
			if err != nil {
				return nil, err
			}
			if loV.IsNull() || hiV.IsNull() {
				continue
			}
			loV, hiV = probe(loV), probe(hiV)
			lo, hi, loInc, hiInc, haveRange = &loV, &hiV, true, true, true
		default:
			return nil, fmt.Errorf("exec: unsupported index condition %s", c.SQL())
		}
	}
	if haveRange {
		rangeIDs := ix.Range(lo, hi, loInc, hiInc)
		if ex.Quirks.IndexRangeSkipsBoundary && len(rangeIDs) > 0 && lo != nil && loInc {
			rangeIDs = rangeIDs[1:] // injected defect
		}
		for _, id := range rangeIDs {
			addID(id)
		}
	}
	return ids, nil
}

// normalizeComparison rewrites "const op col" as "col op' const" and
// returns the column, the constant expression, and the operator.
func normalizeComparison(b *sql.Binary) (string, sql.Expr, sql.BinaryOp, bool) {
	if ref, ok := b.L.(*sql.ColumnRef); ok {
		switch b.Op {
		case sql.OpEq, sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
			return ref.Name, b.R, b.Op, true
		}
	}
	if ref, ok := b.R.(*sql.ColumnRef); ok {
		var flip sql.BinaryOp
		switch b.Op {
		case sql.OpEq:
			flip = sql.OpEq
		case sql.OpLt:
			flip = sql.OpGt
		case sql.OpLe:
			flip = sql.OpGe
		case sql.OpGt:
			flip = sql.OpLt
		case sql.OpGe:
			flip = sql.OpLe
		default:
			return "", nil, "", false
		}
		return ref.Name, b.L, flip, true
	}
	return "", nil, "", false
}

func (ex *Executor) runFilter(op *planner.PhysOp, outer *scope) ([][]datum.D, error) {
	in, err := ex.run(op.Children[0], outer)
	if err != nil {
		return nil, err
	}
	var out [][]datum.D
	for _, row := range in {
		sc := &scope{schema: op.Schema, row: row, parent: outer}
		tr, err := ex.EvalTruth(op.Filter, sc)
		if err != nil {
			return nil, err
		}
		if tr == datum.True {
			out = append(out, row)
		}
	}
	return out, nil
}

func (ex *Executor) runProject(op *planner.PhysOp, outer *scope) ([][]datum.D, error) {
	in, err := ex.run(op.Children[0], outer)
	if err != nil {
		return nil, err
	}
	child := op.Children[0]
	out := make([][]datum.D, 0, len(in))
	for _, row := range in {
		sc := &scope{schema: child.Schema, row: row, parent: outer}
		proj := make([]datum.D, len(op.Projections))
		for i, e := range op.Projections {
			v, err := ex.eval(e, sc)
			if err != nil {
				return nil, err
			}
			proj[i] = v
		}
		out = append(out, proj)
	}
	return out, nil
}

func (ex *Executor) runNLJoin(op *planner.PhysOp, outer *scope) ([][]datum.D, error) {
	left, err := ex.run(op.Children[0], outer)
	if err != nil {
		return nil, err
	}
	right, err := ex.run(op.Children[1], outer)
	if err != nil {
		return nil, err
	}
	rightWidth := len(op.Children[1].Schema)
	var out [][]datum.D
	leftJoin := op.JoinType == sql.JoinLeft && !ex.Quirks.LeftJoinAsInner
	for _, l := range left {
		matched := false
		for _, r := range right {
			combined := append(append([]datum.D(nil), l...), r...)
			sc := &scope{schema: op.Schema, row: combined, parent: outer}
			tr, err := ex.EvalTruth(op.JoinCond, sc)
			if err != nil {
				return nil, err
			}
			if tr == datum.True {
				matched = true
				out = append(out, combined)
			}
		}
		if leftJoin && !matched {
			out = append(out, padNulls(l, rightWidth))
		}
	}
	return out, nil
}

func padNulls(l []datum.D, n int) []datum.D {
	row := append([]datum.D(nil), l...)
	for i := 0; i < n; i++ {
		row = append(row, datum.Null())
	}
	return row
}

func (ex *Executor) joinKey(exprs []sql.Expr, schema []planner.OutCol, row []datum.D, outer *scope) (string, bool, error) {
	sc := &scope{schema: schema, row: row, parent: outer}
	var b strings.Builder
	for _, e := range exprs {
		v, err := ex.eval(e, sc)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", false, nil // NULL keys never join
		}
		k := v.Key()
		if ex.Quirks.HashJoinMissesCrossKind {
			// Injected defect: key on the raw kind, so 1 and 1.0 no longer
			// collide.
			k = fmt.Sprintf("%d|%s", v.K, k)
		}
		fmt.Fprintf(&b, "%d:%s", len(k), k)
	}
	return b.String(), true, nil
}

func (ex *Executor) runHashJoin(op *planner.PhysOp, outer *scope) ([][]datum.D, error) {
	left, err := ex.run(op.Children[0], outer)
	if err != nil {
		return nil, err
	}
	right, err := ex.run(op.Children[1], outer)
	if err != nil {
		return nil, err
	}
	lschema := op.Children[0].Schema
	rschema := op.Children[1].Schema
	table := map[string][][]datum.D{}
	for _, r := range right {
		key, ok, err := ex.joinKey(op.HashKeysR, rschema, r, outer)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		table[key] = append(table[key], r)
	}
	var out [][]datum.D
	leftJoin := op.JoinType == sql.JoinLeft && !ex.Quirks.LeftJoinAsInner
	for _, l := range left {
		matched := false
		key, ok, err := ex.joinKey(op.HashKeysL, lschema, l, outer)
		if err != nil {
			return nil, err
		}
		if ok {
			for _, r := range table[key] {
				combined := append(append([]datum.D(nil), l...), r...)
				sc := &scope{schema: op.Schema, row: combined, parent: outer}
				tr, err := ex.EvalTruth(op.JoinCond, sc)
				if err != nil {
					return nil, err
				}
				if tr == datum.True {
					matched = true
					out = append(out, combined)
				}
			}
		}
		if leftJoin && !matched {
			out = append(out, padNulls(l, len(rschema)))
		}
	}
	return out, nil
}

func (ex *Executor) runMergeJoin(op *planner.PhysOp, outer *scope) ([][]datum.D, error) {
	left, err := ex.run(op.Children[0], outer)
	if err != nil {
		return nil, err
	}
	right, err := ex.run(op.Children[1], outer)
	if err != nil {
		return nil, err
	}
	lschema := op.Children[0].Schema
	rschema := op.Children[1].Schema
	lk, err := ex.sortByKeys(left, lschema, op.HashKeysL, outer)
	if err != nil {
		return nil, err
	}
	rk, err := ex.sortByKeys(right, rschema, op.HashKeysR, outer)
	if err != nil {
		return nil, err
	}
	var out [][]datum.D
	matchedLeft := make([]bool, len(lk.rows))
	i, j := 0, 0
	var groups [][2][2]int // [leftStart,leftEnd], [rightStart,rightEnd]
	for i < len(lk.rows) && j < len(rk.rows) {
		if lk.null[i] {
			i++
			continue
		}
		if rk.null[j] {
			j++
			continue
		}
		c := datum.CompareRows(lk.keys[i], rk.keys[j])
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			iEnd := i + 1
			for iEnd < len(lk.rows) && !lk.null[iEnd] && datum.CompareRows(lk.keys[iEnd], lk.keys[i]) == 0 {
				iEnd++
			}
			jEnd := j + 1
			for jEnd < len(rk.rows) && !rk.null[jEnd] && datum.CompareRows(rk.keys[jEnd], rk.keys[j]) == 0 {
				jEnd++
			}
			groups = append(groups, [2][2]int{{i, iEnd}, {j, jEnd}})
			i, j = iEnd, jEnd
		}
	}
	if ex.Quirks.MergeJoinDropsLastGroup && len(groups) > 0 {
		groups = groups[:len(groups)-1] // injected defect
	}
	for _, g := range groups {
		for li := g[0][0]; li < g[0][1]; li++ {
			for rj := g[1][0]; rj < g[1][1]; rj++ {
				combined := append(append([]datum.D(nil), lk.rows[li]...), rk.rows[rj]...)
				sc := &scope{schema: op.Schema, row: combined, parent: outer}
				tr, err := ex.EvalTruth(op.JoinCond, sc)
				if err != nil {
					return nil, err
				}
				if tr == datum.True {
					matchedLeft[li] = true
					out = append(out, combined)
				}
			}
		}
	}
	if op.JoinType == sql.JoinLeft && !ex.Quirks.LeftJoinAsInner {
		for li, row := range lk.rows {
			if !matchedLeft[li] {
				out = append(out, padNulls(row, len(rschema)))
			}
		}
	}
	return out, nil
}

type keyedRows struct {
	rows [][]datum.D
	keys [][]datum.D
	null []bool
}

func (ex *Executor) sortByKeys(rows [][]datum.D, schema []planner.OutCol, keys []sql.Expr, outer *scope) (*keyedRows, error) {
	kr := &keyedRows{rows: rows, keys: make([][]datum.D, len(rows)), null: make([]bool, len(rows))}
	for i, row := range rows {
		sc := &scope{schema: schema, row: row, parent: outer}
		ks := make([]datum.D, len(keys))
		for j, e := range keys {
			v, err := ex.eval(e, sc)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				kr.null[i] = true
			}
			ks[j] = v
		}
		kr.keys[i] = ks
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return datum.CompareRows(kr.keys[idx[a]], kr.keys[idx[b]]) < 0
	})
	sorted := &keyedRows{
		rows: make([][]datum.D, len(rows)),
		keys: make([][]datum.D, len(rows)),
		null: make([]bool, len(rows)),
	}
	for i, ix := range idx {
		sorted.rows[i] = kr.rows[ix]
		sorted.keys[i] = kr.keys[ix]
		sorted.null[i] = kr.null[ix]
	}
	return sorted, nil
}

// aggState accumulates one aggregate function for one group.
type aggState struct {
	count    int64
	sumF     float64
	sumI     int64
	anyFloat bool
	min, max datum.D
	distinct map[string]bool
	seenAny  bool
}

func (ex *Executor) runAggregate(op *planner.PhysOp, outer *scope) ([][]datum.D, error) {
	in, err := ex.run(op.Children[0], outer)
	if err != nil {
		return nil, err
	}
	child := op.Children[0]
	type group struct {
		keyVals []datum.D
		states  []*aggState
	}
	groups := map[string]*group{}
	var order []string
	for _, row := range in {
		sc := &scope{schema: child.Schema, row: row, parent: outer}
		keyVals := make([]datum.D, len(op.GroupBy))
		nullKey := false
		for i, g := range op.GroupBy {
			v, err := ex.eval(g, sc)
			if err != nil {
				return nil, err
			}
			keyVals[i] = v
			if v.IsNull() {
				nullKey = true
			}
		}
		if ex.Quirks.AggDropsNullGroups && nullKey {
			continue // injected defect
		}
		key := datum.RowKey(keyVals)
		grp := groups[key]
		if grp == nil {
			grp = &group{keyVals: keyVals, states: make([]*aggState, len(op.Aggs))}
			for i := range grp.states {
				grp.states[i] = &aggState{min: datum.Null(), max: datum.Null()}
			}
			groups[key] = grp
			order = append(order, key)
		}
		for i, agg := range op.Aggs {
			if err := ex.accumulate(grp.states[i], agg, sc); err != nil {
				return nil, err
			}
		}
	}
	// Global aggregate over empty input still yields one row.
	if len(op.GroupBy) == 0 && len(groups) == 0 {
		grp := &group{states: make([]*aggState, len(op.Aggs))}
		for i := range grp.states {
			grp.states[i] = &aggState{min: datum.Null(), max: datum.Null()}
		}
		groups[""] = grp
		order = append(order, "")
	}
	var out [][]datum.D
	for _, key := range order {
		grp := groups[key]
		row := append([]datum.D(nil), grp.keyVals...)
		for i, agg := range op.Aggs {
			row = append(row, finishAgg(grp.states[i], agg))
		}
		out = append(out, row)
	}
	if op.Kind == planner.OpSortAgg {
		sort.SliceStable(out, func(a, b int) bool {
			return datum.CompareRows(out[a][:len(op.GroupBy)], out[b][:len(op.GroupBy)]) < 0
		})
	}
	return out, nil
}

func (ex *Executor) accumulate(st *aggState, agg *sql.FuncCall, sc *scope) error {
	if agg.Star {
		st.count++
		st.seenAny = true
		return nil
	}
	if len(agg.Args) != 1 {
		return fmt.Errorf("exec: aggregate %s expects one argument", agg.Name)
	}
	v, err := ex.eval(agg.Args[0], sc)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	if agg.Distinct {
		if st.distinct == nil {
			st.distinct = map[string]bool{}
		}
		if st.distinct[v.Key()] {
			return nil
		}
		st.distinct[v.Key()] = true
	}
	st.seenAny = true
	st.count++
	switch agg.Name {
	case "SUM", "AVG":
		if v.K == datum.KFloat {
			st.anyFloat = true
			st.sumF += v.F
		} else if v.K == datum.KInt {
			st.sumI += v.I
			st.sumF += float64(v.I)
		} else if f, ok := v.AsFloat(); ok {
			st.anyFloat = true
			st.sumF += f
		}
	case "MIN":
		if st.min.IsNull() || datum.SortCompare(v, st.min) < 0 {
			st.min = v
		}
	case "MAX":
		if st.max.IsNull() || datum.SortCompare(v, st.max) > 0 {
			st.max = v
		}
	}
	return nil
}

func finishAgg(st *aggState, agg *sql.FuncCall) datum.D {
	switch agg.Name {
	case "COUNT":
		return datum.Int(st.count)
	case "SUM":
		if !st.seenAny {
			return datum.Null()
		}
		if st.anyFloat {
			return datum.Float(st.sumF)
		}
		return datum.Int(st.sumI)
	case "AVG":
		if !st.seenAny || st.count == 0 {
			return datum.Null()
		}
		return datum.Float(st.sumF / float64(st.count))
	case "MIN":
		return st.min
	case "MAX":
		return st.max
	}
	return datum.Null()
}

func (ex *Executor) runSort(op *planner.PhysOp, outer *scope) ([][]datum.D, error) {
	in, err := ex.run(op.Children[0], outer)
	if err != nil {
		return nil, err
	}
	type keyed struct {
		row  []datum.D
		keys []datum.D
	}
	// Sort keys are evaluated against the child's full schema, which may
	// include hidden trailing columns appended for exactly this purpose.
	evalSchema := op.Children[0].Schema
	ks := make([]keyed, len(in))
	for i, row := range in {
		sc := &scope{schema: evalSchema, row: row, parent: outer}
		keys := make([]datum.D, len(op.SortKeys))
		for j, k := range op.SortKeys {
			v, err := ex.eval(k.Expr, sc)
			if err != nil {
				return nil, err
			}
			keys[j] = v
		}
		ks[i] = keyed{row: row, keys: keys}
	}
	sort.SliceStable(ks, func(a, b int) bool {
		for j, k := range op.SortKeys {
			c := datum.SortCompare(ks[a].keys[j], ks[b].keys[j])
			if k.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	out := make([][]datum.D, len(ks))
	visible := len(op.Schema)
	for i, k := range ks {
		row := k.row
		if op.HiddenTrailing > 0 && len(row) > visible {
			row = row[:visible]
		}
		out[i] = row
	}
	if op.Kind == planner.OpTopN {
		out = applyLimit(out, op.Limit, op.Offset, ex.Quirks.LimitAppliesOffsetAfter)
	}
	return out, nil
}

func applyLimit(rows [][]datum.D, limit, offset int64, offsetAfter bool) [][]datum.D {
	if offsetAfter {
		// Injected defect: limit first, then offset.
		if limit >= 0 && int64(len(rows)) > limit {
			rows = rows[:limit]
		}
		if offset > 0 {
			if offset > int64(len(rows)) {
				return nil
			}
			rows = rows[offset:]
		}
		return rows
	}
	if offset > 0 {
		if offset > int64(len(rows)) {
			return nil
		}
		rows = rows[offset:]
	}
	if limit >= 0 && int64(len(rows)) > limit {
		rows = rows[:limit]
	}
	return rows
}

func (ex *Executor) runLimit(op *planner.PhysOp, outer *scope) ([][]datum.D, error) {
	in, err := ex.run(op.Children[0], outer)
	if err != nil {
		return nil, err
	}
	return applyLimit(in, op.Limit, op.Offset, ex.Quirks.LimitAppliesOffsetAfter), nil
}

func (ex *Executor) runDistinct(op *planner.PhysOp, outer *scope) ([][]datum.D, error) {
	in, err := ex.run(op.Children[0], outer)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out [][]datum.D
	for _, row := range in {
		if ex.Quirks.DistinctDropsNulls {
			allNull := true
			for _, v := range row {
				if !v.IsNull() {
					allNull = false
					break
				}
			}
			if allNull {
				continue // injected defect
			}
		}
		key := datum.RowKey(row)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, row)
	}
	return out, nil
}

func (ex *Executor) runSetOp(op *planner.PhysOp, outer *scope) ([][]datum.D, error) {
	left, err := ex.run(op.Children[0], outer)
	if err != nil {
		return nil, err
	}
	right, err := ex.run(op.Children[1], outer)
	if err != nil {
		return nil, err
	}
	switch op.Kind {
	case planner.OpUnionAll:
		return append(left, right...), nil
	case planner.OpUnion:
		seen := map[string]bool{}
		var out [][]datum.D
		for _, row := range append(left, right...) {
			key := datum.RowKey(row)
			if !seen[key] {
				seen[key] = true
				out = append(out, row)
			}
		}
		return out, nil
	case planner.OpIntersect:
		rightKeys := map[string]bool{}
		for _, row := range right {
			rightKeys[datum.RowKey(row)] = true
		}
		seen := map[string]bool{}
		var out [][]datum.D
		for _, row := range left {
			key := datum.RowKey(row)
			if rightKeys[key] && !seen[key] {
				seen[key] = true
				out = append(out, row)
			}
		}
		return out, nil
	case planner.OpExcept:
		rightKeys := map[string]bool{}
		for _, row := range right {
			rightKeys[datum.RowKey(row)] = true
		}
		seen := map[string]bool{}
		var out [][]datum.D
		for _, row := range left {
			key := datum.RowKey(row)
			if rightKeys[key] {
				continue
			}
			if !ex.Quirks.ExceptKeepsDuplicates {
				if seen[key] {
					continue
				}
				seen[key] = true
			}
			out = append(out, row)
		}
		return out, nil
	}
	return nil, fmt.Errorf("exec: unknown set operation %s", op.Kind)
}

func (ex *Executor) runSubquery(sub *sql.Select, sc *scope) ([][]datum.D, error) {
	if cached, ok := ex.subCache[sub]; ok {
		return cached, nil
	}
	plan, ok := ex.subplans[sub]
	if !ok {
		return nil, fmt.Errorf("exec: no plan for subquery %q", sub.SQL())
	}
	touched := false
	probe := &scope{touched: &touched}
	if sc != nil {
		probe.schema = sc.schema
		probe.row = sc.row
		probe.parent = sc.parent
	}
	rows, err := ex.run(plan, probe)
	if err != nil {
		return nil, err
	}
	if !touched {
		// Uncorrelated subquery: safe to cache for the rest of the run.
		ex.subCache[sub] = rows
	}
	return rows, nil
}

// --------------------------------------------------------------------- DML

func (ex *Executor) runInsert(op *planner.PhysOp) ([][]datum.D, error) {
	ins := op.Stmt.(*sql.Insert)
	tbl := ex.DB.Table(ins.Table)
	if tbl == nil {
		return nil, fmt.Errorf("exec: no such table %q", ins.Table)
	}
	def := tbl.Def
	colIdx := make([]int, 0, len(ins.Columns))
	if len(ins.Columns) == 0 {
		for i := range def.Columns {
			colIdx = append(colIdx, i)
		}
	} else {
		for _, c := range ins.Columns {
			i := def.ColumnIndex(c)
			if i < 0 {
				return nil, fmt.Errorf("exec: no column %q in %q", c, ins.Table)
			}
			colIdx = append(colIdx, i)
		}
	}
	sc := &scope{}
	n := 0
	for _, exprRow := range ins.Rows {
		if len(exprRow) != len(colIdx) {
			return nil, fmt.Errorf("exec: INSERT row has %d values, want %d", len(exprRow), len(colIdx))
		}
		row := make(storage.Row, len(def.Columns))
		for i := range row {
			row[i] = datum.Null()
		}
		for i, e := range exprRow {
			v, err := ex.eval(e, sc)
			if err != nil {
				return nil, err
			}
			row[colIdx[i]] = coerceToColumn(v, def.Columns[colIdx[i]].Type)
		}
		if _, err := tbl.Insert(row); err != nil {
			return nil, err
		}
		n++
	}
	return [][]datum.D{{datum.Int(int64(n))}}, nil
}

// coerceToColumn applies lightweight implicit casts on insert (int→float,
// numeric→text) as the studied engines do.
func coerceToColumn(v datum.D, t catalog.ColType) datum.D {
	if v.IsNull() {
		return v
	}
	switch t {
	case catalog.TFloat:
		if v.K == datum.KInt {
			return datum.Float(float64(v.I))
		}
	case catalog.TInt:
		if v.K == datum.KFloat && v.F == float64(int64(v.F)) {
			return datum.Int(int64(v.F))
		}
	case catalog.TText:
		if v.K != datum.KString {
			return datum.Str(strings.Trim(v.String(), "'"))
		}
	}
	return v
}

func (ex *Executor) runUpdate(op *planner.PhysOp, outer *scope) ([][]datum.D, error) {
	upd := op.Stmt.(*sql.Update)
	tbl := ex.DB.Table(upd.Table)
	if tbl == nil {
		return nil, fmt.Errorf("exec: no such table %q", upd.Table)
	}
	schema := op.Children[0].Schema
	// Collect matching row IDs first (avoid Halloween problem), unless the
	// injected defect is active.
	var ids []int
	var scanErr error
	tbl.Scan(func(id int, row storage.Row) bool {
		sc := &scope{schema: schema, row: row, parent: outer}
		tr, err := ex.EvalTruth(upd.Where, sc)
		if err != nil {
			scanErr = err
			return false
		}
		if tr == datum.True {
			ids = append(ids, id)
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	n := 0
	for _, id := range ids {
		row, ok := tbl.Get(id)
		if !ok {
			continue
		}
		newRow := append(storage.Row(nil), row...)
		for _, set := range upd.Sets {
			ci := tbl.Def.ColumnIndex(set.Column)
			if ci < 0 {
				return nil, fmt.Errorf("exec: no column %q in %q", set.Column, upd.Table)
			}
			base := row
			if ex.Quirks.UpdateUsesUpdatedRow {
				base = newRow // injected defect: later SETs see earlier SETs
			}
			sc := &scope{schema: schema, row: base, parent: outer}
			v, err := ex.eval(set.Value, sc)
			if err != nil {
				return nil, err
			}
			newRow[ci] = coerceToColumn(v, tbl.Def.Columns[ci].Type)
		}
		if err := tbl.Update(id, newRow); err != nil {
			return nil, err
		}
		n++
	}
	return [][]datum.D{{datum.Int(int64(n))}}, nil
}

func (ex *Executor) runDelete(op *planner.PhysOp, outer *scope) ([][]datum.D, error) {
	del := op.Stmt.(*sql.Delete)
	tbl := ex.DB.Table(del.Table)
	if tbl == nil {
		return nil, fmt.Errorf("exec: no such table %q", del.Table)
	}
	schema := op.Children[0].Schema
	var ids []int
	var scanErr error
	tbl.Scan(func(id int, row storage.Row) bool {
		sc := &scope{schema: schema, row: row, parent: outer}
		tr, err := ex.EvalTruth(del.Where, sc)
		if err != nil {
			scanErr = err
			return false
		}
		if tr == datum.True {
			ids = append(ids, id)
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	for _, id := range ids {
		tbl.Delete(id)
	}
	return [][]datum.D{{datum.Int(int64(len(ids)))}}, nil
}

func (ex *Executor) runCreateTable(op *planner.PhysOp) ([][]datum.D, error) {
	ct := op.Stmt.(*sql.CreateTable)
	def := &catalog.Table{Name: ct.Name}
	for _, c := range ct.Columns {
		typ, err := catalog.ParseColType(c.Type)
		if err != nil {
			return nil, err
		}
		def.Columns = append(def.Columns, catalog.Column{
			Name: c.Name, Type: typ, NotNull: c.NotNull, PrimaryKey: c.PrimaryKey,
		})
	}
	if _, err := ex.DB.CreateTable(def); err != nil {
		return nil, err
	}
	return [][]datum.D{{datum.Int(0)}}, nil
}

func (ex *Executor) runCreateIndex(op *planner.PhysOp) ([][]datum.D, error) {
	ci := op.Stmt.(*sql.CreateIndex)
	def := &catalog.Index{
		Name: ci.Name, Table: ci.Table, Unique: ci.Unique,
		Columns: append([]string(nil), ci.Columns...),
	}
	if _, err := ex.DB.CreateIndex(def); err != nil {
		return nil, err
	}
	return [][]datum.D{{datum.Int(0)}}, nil
}
