// Package storage implements the in-memory row store backing the simulated
// engines: heap tables with ordered secondary indexes, plus ANALYZE-style
// statistics collection feeding the catalog.
package storage

import (
	"fmt"
	"sort"
	"strings"

	"uplan/internal/catalog"
	"uplan/internal/datum"
)

// Row is one stored tuple. Rows are addressed by stable integer row IDs;
// deleted rows leave tombstones so row IDs never shift.
type Row []datum.D

// Table is one heap table with its secondary indexes.
type Table struct {
	Def     *catalog.Table
	rows    []Row
	deleted []bool
	live    int
	indexes map[string]*Index
}

// Index is an ordered secondary index: keys sorted ascending, each carrying
// the row IDs holding that key.
type Index struct {
	Def     *catalog.Index
	colIdx  []int // column ordinals in the table
	entries []indexEntry
}

type indexEntry struct {
	key   []datum.D
	rowID int
}

// DB is a named collection of tables sharing a schema catalog.
type DB struct {
	Schema *catalog.Schema
	tables map[string]*Table
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{Schema: catalog.NewSchema(), tables: map[string]*Table{}}
}

// CreateTable creates a table from its definition.
func (db *DB) CreateTable(def *catalog.Table) (*Table, error) {
	if err := db.Schema.AddTable(def); err != nil {
		return nil, err
	}
	t := &Table{Def: def, indexes: map[string]*Index{}}
	db.tables[strings.ToLower(def.Name)] = t
	// A PRIMARY KEY column gets an implicit unique index, as in the studied
	// engines.
	for _, c := range def.Columns {
		if c.PrimaryKey {
			ix := &catalog.Index{
				Name:    def.Name + "_pkey",
				Table:   def.Name,
				Columns: []string{c.Name},
				Unique:  true,
				Primary: true,
			}
			if _, err := db.createIndexOn(t, ix); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// DropTable removes a table.
func (db *DB) DropTable(name string) {
	db.Schema.DropTable(name)
	delete(db.tables, strings.ToLower(name))
}

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table {
	return db.tables[strings.ToLower(name)]
}

// CreateIndex creates a secondary index on an existing table and backfills
// it from current rows.
func (db *DB) CreateIndex(def *catalog.Index) (*Index, error) {
	t := db.Table(def.Table)
	if t == nil {
		return nil, fmt.Errorf("storage: no such table %q", def.Table)
	}
	return db.createIndexOn(t, def)
}

func (db *DB) createIndexOn(t *Table, def *catalog.Index) (*Index, error) {
	key := strings.ToLower(def.Name)
	if _, ok := t.indexes[key]; ok {
		return nil, fmt.Errorf("storage: index %q already exists", def.Name)
	}
	var cols []int
	for _, c := range def.Columns {
		i := t.Def.ColumnIndex(c)
		if i < 0 {
			return nil, fmt.Errorf("storage: index %q references unknown column %q", def.Name, c)
		}
		cols = append(cols, i)
	}
	ix := &Index{Def: def, colIdx: cols}
	for rowID, row := range t.rows {
		if t.deleted[rowID] {
			continue
		}
		if err := ix.insert(row, rowID); err != nil {
			return nil, err
		}
	}
	t.indexes[key] = ix
	t.Def.Indexes = append(t.Def.Indexes, def)
	return ix, nil
}

// Insert appends a row; the row length must match the table's column count.
// Unique index violations are rejected.
func (t *Table) Insert(row Row) (int, error) {
	if len(row) != len(t.Def.Columns) {
		return 0, fmt.Errorf("storage: table %q expects %d values, got %d",
			t.Def.Name, len(t.Def.Columns), len(row))
	}
	for i, c := range t.Def.Columns {
		if c.NotNull && row[i].IsNull() {
			return 0, fmt.Errorf("storage: NULL in NOT NULL column %q.%q",
				t.Def.Name, c.Name)
		}
	}
	rowID := len(t.rows)
	for _, ix := range t.indexes {
		if ix.Def.Unique {
			key := ix.keyFor(row)
			if !keyHasNull(key) && len(ix.lookupEqual(key)) > 0 {
				return 0, fmt.Errorf("storage: unique violation on index %q", ix.Def.Name)
			}
		}
	}
	t.rows = append(t.rows, append(Row(nil), row...))
	t.deleted = append(t.deleted, false)
	t.live++
	for _, ix := range t.indexes {
		if err := ix.insert(t.rows[rowID], rowID); err != nil {
			return 0, err
		}
	}
	return rowID, nil
}

// Delete tombstones a row by ID.
func (t *Table) Delete(rowID int) {
	if rowID < 0 || rowID >= len(t.rows) || t.deleted[rowID] {
		return
	}
	t.deleted[rowID] = true
	t.live--
	for _, ix := range t.indexes {
		ix.remove(t.rows[rowID], rowID)
	}
}

// Update replaces the row stored at rowID.
func (t *Table) Update(rowID int, row Row) error {
	if rowID < 0 || rowID >= len(t.rows) || t.deleted[rowID] {
		return fmt.Errorf("storage: no live row %d", rowID)
	}
	if len(row) != len(t.Def.Columns) {
		return fmt.Errorf("storage: row width mismatch")
	}
	for _, ix := range t.indexes {
		ix.remove(t.rows[rowID], rowID)
	}
	t.rows[rowID] = append(Row(nil), row...)
	for _, ix := range t.indexes {
		if err := ix.insert(t.rows[rowID], rowID); err != nil {
			return err
		}
	}
	return nil
}

// RowCount returns the number of live rows.
func (t *Table) RowCount() int { return t.live }

// Scan calls fn for every live row in row-ID order; fn returning false
// stops the scan.
func (t *Table) Scan(fn func(rowID int, row Row) bool) {
	for id, row := range t.rows {
		if t.deleted[id] {
			continue
		}
		if !fn(id, row) {
			return
		}
	}
}

// Get returns the live row with the given ID.
func (t *Table) Get(rowID int) (Row, bool) {
	if rowID < 0 || rowID >= len(t.rows) || t.deleted[rowID] {
		return nil, false
	}
	return t.rows[rowID], true
}

// Index returns the named index, or nil.
func (t *Table) Index(name string) *Index {
	return t.indexes[strings.ToLower(name)]
}

// Indexes returns all indexes on the table.
func (t *Table) Indexes() []*Index {
	out := make([]*Index, 0, len(t.indexes))
	for _, ix := range t.indexes {
		out = append(out, ix)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Def.Name < out[j].Def.Name })
	return out
}

func (ix *Index) keyFor(row Row) []datum.D {
	key := make([]datum.D, len(ix.colIdx))
	for i, c := range ix.colIdx {
		key[i] = row[c]
	}
	return key
}

func keyHasNull(key []datum.D) bool {
	for _, d := range key {
		if d.IsNull() {
			return true
		}
	}
	return false
}

func (ix *Index) insert(row Row, rowID int) error {
	key := ix.keyFor(row)
	pos := sort.Search(len(ix.entries), func(i int) bool {
		c := datum.CompareRows(ix.entries[i].key, key)
		if c != 0 {
			return c > 0
		}
		return ix.entries[i].rowID >= rowID
	})
	ix.entries = append(ix.entries, indexEntry{})
	copy(ix.entries[pos+1:], ix.entries[pos:])
	ix.entries[pos] = indexEntry{key: key, rowID: rowID}
	return nil
}

func (ix *Index) remove(row Row, rowID int) {
	key := ix.keyFor(row)
	pos := sort.Search(len(ix.entries), func(i int) bool {
		c := datum.CompareRows(ix.entries[i].key, key)
		if c != 0 {
			return c > 0
		}
		return ix.entries[i].rowID >= rowID
	})
	if pos < len(ix.entries) && ix.entries[pos].rowID == rowID &&
		datum.CompareRows(ix.entries[pos].key, key) == 0 {
		ix.entries = append(ix.entries[:pos], ix.entries[pos+1:]...)
	}
}

func (ix *Index) lookupEqual(key []datum.D) []int {
	var ids []int
	start := sort.Search(len(ix.entries), func(i int) bool {
		return datum.CompareRows(ix.entries[i].key, key) >= 0
	})
	for i := start; i < len(ix.entries); i++ {
		if datum.CompareRows(ix.entries[i].key, key) != 0 {
			break
		}
		ids = append(ids, ix.entries[i].rowID)
	}
	return ids
}

// LookupEqual returns the row IDs whose full index key equals key.
func (ix *Index) LookupEqual(key []datum.D) []int { return ix.lookupEqual(key) }

// Range returns row IDs whose leading index column lies in [lo, hi]; nil
// bounds are open. Inclusive flags control boundary inclusion. Entries with
// NULL leading keys are skipped (SQL comparisons with NULL are unknown).
func (ix *Index) Range(lo, hi *datum.D, loInc, hiInc bool) []int {
	var ids []int
	for _, e := range ix.entries {
		k := e.key[0]
		if k.IsNull() {
			continue
		}
		if lo != nil {
			c, _ := datum.Compare(k, *lo)
			if c < 0 || c == 0 && !loInc {
				continue
			}
		}
		if hi != nil {
			c, _ := datum.Compare(k, *hi)
			if c > 0 || c == 0 && !hiInc {
				continue
			}
		}
		ids = append(ids, e.rowID)
	}
	return ids
}

// Len returns the number of index entries.
func (ix *Index) Len() int { return len(ix.entries) }

// ScanOrdered calls fn for all entries in key order.
func (ix *Index) ScanOrdered(fn func(key []datum.D, rowID int) bool) {
	for _, e := range ix.entries {
		if !fn(e.key, e.rowID) {
			return
		}
	}
}

// Analyze computes table statistics and installs them into the schema,
// mirroring the engines' ANALYZE command.
func (db *DB) Analyze(table string) error {
	t := db.Table(table)
	if t == nil {
		return fmt.Errorf("storage: no such table %q", table)
	}
	stats := &catalog.TableStats{
		RowCount: t.live,
		Columns:  map[string]*catalog.ColumnStats{},
	}
	for ci, col := range t.Def.Columns {
		cs := &catalog.ColumnStats{Min: datum.Null(), Max: datum.Null()}
		distinct := map[string]bool{}
		var values []datum.D
		t.Scan(func(_ int, row Row) bool {
			v := row[ci]
			if v.IsNull() {
				cs.NullCount++
				return true
			}
			distinct[v.Key()] = true
			values = append(values, v)
			if cs.Min.IsNull() || datum.SortCompare(v, cs.Min) < 0 {
				cs.Min = v
			}
			if cs.Max.IsNull() || datum.SortCompare(v, cs.Max) > 0 {
				cs.Max = v
			}
			return true
		})
		cs.Distinct = len(distinct)
		cs.Histogram = catalog.BuildHistogram(values, 32)
		stats.Columns[strings.ToLower(col.Name)] = cs
	}
	db.Schema.SetStats(table, stats)
	return nil
}

// AnalyzeAll runs Analyze on every table.
func (db *DB) AnalyzeAll() error {
	for _, t := range db.Schema.Tables() {
		if err := db.Analyze(t.Name); err != nil {
			return err
		}
	}
	return nil
}

// Clone produces a deep copy of the database (used by differential testing
// to run the same workload on independent engine instances).
func (db *DB) Clone() *DB {
	out := NewDB()
	for _, def := range db.Schema.Tables() {
		defCopy := &catalog.Table{Name: def.Name}
		defCopy.Columns = append([]catalog.Column(nil), def.Columns...)
		t, err := out.CreateTable(defCopy)
		if err != nil {
			panic(err) // fresh DB cannot conflict
		}
		src := db.Table(def.Name)
		src.Scan(func(_ int, row Row) bool {
			if _, err := t.Insert(row); err != nil {
				panic(err)
			}
			return true
		})
		for _, ixDef := range def.Indexes {
			if ixDef.Primary {
				continue // recreated by CreateTable
			}
			copyDef := &catalog.Index{
				Name: ixDef.Name, Table: ixDef.Table, Unique: ixDef.Unique,
				Columns: append([]string(nil), ixDef.Columns...),
			}
			if _, err := out.CreateIndex(copyDef); err != nil {
				panic(err)
			}
		}
	}
	return out
}
