package storage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"uplan/internal/catalog"
	"uplan/internal/datum"
)

func newTestDB(t *testing.T) (*DB, *Table) {
	t.Helper()
	db := NewDB()
	tbl, err := db.CreateTable(&catalog.Table{
		Name: "t0",
		Columns: []catalog.Column{
			{Name: "c0", Type: catalog.TInt, PrimaryKey: true, NotNull: true},
			{Name: "c1", Type: catalog.TText},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, tbl
}

func TestInsertScanDelete(t *testing.T) {
	_, tbl := newTestDB(t)
	for i := 0; i < 10; i++ {
		if _, err := tbl.Insert(Row{datum.Int(int64(i)), datum.Str("v")}); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.RowCount() != 10 {
		t.Fatalf("RowCount = %d", tbl.RowCount())
	}
	tbl.Delete(3)
	tbl.Delete(3) // double delete is a no-op
	if tbl.RowCount() != 9 {
		t.Fatalf("after delete RowCount = %d", tbl.RowCount())
	}
	var seen []int64
	tbl.Scan(func(id int, row Row) bool {
		seen = append(seen, row[0].I)
		return true
	})
	if len(seen) != 9 {
		t.Fatalf("scan saw %d rows", len(seen))
	}
	for _, v := range seen {
		if v == 3 {
			t.Error("deleted row visible in scan")
		}
	}
	if _, ok := tbl.Get(3); ok {
		t.Error("deleted row retrievable")
	}
	if row, ok := tbl.Get(4); !ok || row[0].I != 4 {
		t.Error("Get broken")
	}
}

func TestInsertValidations(t *testing.T) {
	_, tbl := newTestDB(t)
	if _, err := tbl.Insert(Row{datum.Int(1)}); err == nil {
		t.Error("width mismatch must fail")
	}
	if _, err := tbl.Insert(Row{datum.Null(), datum.Str("x")}); err == nil {
		t.Error("NULL in NOT NULL column must fail")
	}
	if _, err := tbl.Insert(Row{datum.Int(1), datum.Null()}); err != nil {
		t.Errorf("nullable column should accept NULL: %v", err)
	}
	if _, err := tbl.Insert(Row{datum.Int(1), datum.Str("dup")}); err == nil {
		t.Error("primary key violation must fail")
	}
}

func TestPrimaryIndexAutoCreated(t *testing.T) {
	_, tbl := newTestDB(t)
	ix := tbl.Index("t0_pkey")
	if ix == nil || !ix.Def.Unique || !ix.Def.Primary {
		t.Fatalf("pkey index: %+v", ix)
	}
	if len(tbl.Indexes()) != 1 {
		t.Errorf("Indexes() = %d", len(tbl.Indexes()))
	}
}

func TestSecondaryIndexBackfillAndMaintenance(t *testing.T) {
	db, tbl := newTestDB(t)
	for i := 0; i < 5; i++ {
		if _, err := tbl.Insert(Row{datum.Int(int64(i)), datum.Str(string(rune('e' - i)))}); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := db.CreateIndex(&catalog.Index{Name: "i0", Table: "t0", Columns: []string{"c1"}})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 5 {
		t.Fatalf("backfill: %d entries", ix.Len())
	}
	// Ordered scan must be sorted by key.
	var keys []string
	ix.ScanOrdered(func(key []datum.D, _ int) bool {
		keys = append(keys, key[0].S)
		return true
	})
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			t.Fatalf("index not ordered: %v", keys)
		}
	}
	// Maintenance on insert/delete/update.
	id, _ := tbl.Insert(Row{datum.Int(100), datum.Str("zz")})
	if got := ix.LookupEqual([]datum.D{datum.Str("zz")}); len(got) != 1 || got[0] != id {
		t.Errorf("lookup after insert: %v", got)
	}
	if err := tbl.Update(id, Row{datum.Int(100), datum.Str("aa")}); err != nil {
		t.Fatal(err)
	}
	if got := ix.LookupEqual([]datum.D{datum.Str("zz")}); len(got) != 0 {
		t.Errorf("stale index entry after update: %v", got)
	}
	if got := ix.LookupEqual([]datum.D{datum.Str("aa")}); len(got) != 1 {
		t.Errorf("missing index entry after update: %v", got)
	}
	tbl.Delete(id)
	if got := ix.LookupEqual([]datum.D{datum.Str("aa")}); len(got) != 0 {
		t.Errorf("stale index entry after delete: %v", got)
	}
}

func TestIndexRange(t *testing.T) {
	db, tbl := newTestDB(t)
	for i := 1; i <= 10; i++ {
		if _, err := tbl.Insert(Row{datum.Int(int64(i)), datum.Null()}); err != nil {
			t.Fatal(err)
		}
	}
	ix := tbl.Index("t0_pkey")
	lo, hi := datum.Int(3), datum.Int(7)
	ids := ix.Range(&lo, &hi, true, true)
	if len(ids) != 5 {
		t.Fatalf("range [3,7]: %d ids", len(ids))
	}
	ids = ix.Range(&lo, &hi, false, false)
	if len(ids) != 3 {
		t.Fatalf("range (3,7): %d ids", len(ids))
	}
	ids = ix.Range(&lo, nil, true, true)
	if len(ids) != 8 {
		t.Fatalf("range [3,∞): %d ids", len(ids))
	}
	ids = ix.Range(nil, nil, true, true)
	if len(ids) != 10 {
		t.Fatalf("full range: %d ids", len(ids))
	}
	_ = db
}

func TestIndexSkipsNullKeys(t *testing.T) {
	db := NewDB()
	tbl, err := db.CreateTable(&catalog.Table{
		Name:    "n",
		Columns: []catalog.Column{{Name: "a", Type: catalog.TInt}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := db.CreateIndex(&catalog.Index{Name: "ia", Table: "n", Columns: []string{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = tbl.Insert(Row{datum.Null()})
	_, _ = tbl.Insert(Row{datum.Int(1)})
	lo := datum.Int(0)
	if ids := ix.Range(&lo, nil, true, true); len(ids) != 1 {
		t.Errorf("NULL keys must not match ranges: %v", ids)
	}
	// Unique index must allow multiple NULLs (SQL semantics).
	db2 := NewDB()
	tbl2, _ := db2.CreateTable(&catalog.Table{
		Name:    "u",
		Columns: []catalog.Column{{Name: "a", Type: catalog.TInt}},
	})
	_, _ = db2.CreateIndex(&catalog.Index{Name: "ua", Table: "u", Columns: []string{"a"}, Unique: true})
	if _, err := tbl2.Insert(Row{datum.Null()}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl2.Insert(Row{datum.Null()}); err != nil {
		t.Errorf("duplicate NULLs must be allowed in unique index: %v", err)
	}
	if _, err := tbl2.Insert(Row{datum.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl2.Insert(Row{datum.Int(1)}); err == nil {
		t.Error("duplicate non-NULL must be rejected")
	}
}

func TestAnalyze(t *testing.T) {
	db, tbl := newTestDB(t)
	for i := 0; i < 100; i++ {
		_, _ = tbl.Insert(Row{datum.Int(int64(i)), datum.Str(string(rune('a' + i%4)))})
	}
	if err := db.Analyze("t0"); err != nil {
		t.Fatal(err)
	}
	st := db.Schema.Stats("t0")
	if st.RowCount != 100 {
		t.Errorf("RowCount = %d", st.RowCount)
	}
	c0 := st.Column("c0")
	if c0.Distinct != 100 || c0.Min.I != 0 || c0.Max.I != 99 {
		t.Errorf("c0 stats: %+v", c0)
	}
	c1 := st.Column("c1")
	if c1.Distinct != 4 {
		t.Errorf("c1 distinct = %d", c1.Distinct)
	}
	if err := db.Analyze("missing"); err == nil {
		t.Error("analyze of missing table must fail")
	}
	if err := db.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
}

func TestClone(t *testing.T) {
	db, tbl := newTestDB(t)
	for i := 0; i < 20; i++ {
		_, _ = tbl.Insert(Row{datum.Int(int64(i)), datum.Str("x")})
	}
	if _, err := db.CreateIndex(&catalog.Index{Name: "i1", Table: "t0", Columns: []string{"c1"}}); err != nil {
		t.Fatal(err)
	}
	cp := db.Clone()
	ct := cp.Table("t0")
	if ct.RowCount() != 20 {
		t.Fatalf("clone rows = %d", ct.RowCount())
	}
	if ct.Index("i1") == nil || ct.Index("t0_pkey") == nil {
		t.Error("clone lost indexes")
	}
	// Mutating the clone leaves the original untouched.
	_, _ = ct.Insert(Row{datum.Int(1000), datum.Str("new")})
	if tbl.RowCount() != 20 {
		t.Error("clone shares storage with original")
	}
}

func TestIndexOrderInvariant(t *testing.T) {
	// Property: after any sequence of inserts, index entries are sorted.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := NewDB()
		tbl, _ := db.CreateTable(&catalog.Table{
			Name:    "p",
			Columns: []catalog.Column{{Name: "a", Type: catalog.TInt}},
		})
		ix, _ := db.CreateIndex(&catalog.Index{Name: "pa", Table: "p", Columns: []string{"a"}})
		for i := 0; i < 60; i++ {
			_, _ = tbl.Insert(Row{datum.Int(int64(r.Intn(20)))})
		}
		for i := 0; i < 10; i++ {
			tbl.Delete(r.Intn(60))
		}
		ok := true
		var prev []datum.D
		ix.ScanOrdered(func(key []datum.D, _ int) bool {
			if prev != nil && datum.CompareRows(prev, key) > 0 {
				ok = false
				return false
			}
			prev = append([]datum.D(nil), key...)
			return true
		})
		return ok && ix.Len() == tbl.RowCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCreateErrors(t *testing.T) {
	db, _ := newTestDB(t)
	if _, err := db.CreateTable(&catalog.Table{Name: "t0"}); err == nil {
		t.Error("duplicate table must fail")
	}
	if _, err := db.CreateIndex(&catalog.Index{Name: "x", Table: "zz", Columns: []string{"a"}}); err == nil {
		t.Error("index on missing table must fail")
	}
	if _, err := db.CreateIndex(&catalog.Index{Name: "x", Table: "t0", Columns: []string{"zz"}}); err == nil {
		t.Error("index on missing column must fail")
	}
	if _, err := db.CreateIndex(&catalog.Index{Name: "t0_pkey", Table: "t0", Columns: []string{"c0"}}); err == nil {
		t.Error("duplicate index name must fail")
	}
	db.DropTable("t0")
	if db.Table("t0") != nil {
		t.Error("DropTable broken")
	}
}
