// Package shutdown is the two-stage signal protocol shared by
// uplan-serve and the uplan-bench campaign runner.
//
// The first SIGINT/SIGTERM cancels the returned context: the process
// stops taking new work, finishes or deadline-cancels what is in
// flight, checkpoints its store, and exits 0. A second signal during
// that window means the operator has lost patience — usually because a
// checkpoint fsync is hung on sick storage — and the process exits
// immediately with ForcedExitCode, a distinct nonzero status so
// supervisors can tell "drained clean" (0) from "drain was abandoned"
// (3) from "crashed" (anything else).
//
// The signal source and the exit function are injectable so the forced
// path is testable in-process; Install wires the production
// os/signal + os.Exit pair.
package shutdown

import (
	"context"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// ForcedExitCode is the status a second signal forces. Distinct from 0
// (clean drain) and 1/2 (ordinary failures) on purpose.
const ForcedExitCode = 3

// Notifier owns one graceful-then-forced shutdown sequence.
type Notifier struct {
	sigs    <-chan os.Signal
	exit    func(int)
	warn    func(string)
	cancel  context.CancelFunc
	release func() // detaches the OS signal handler, nil for injected channels
	quit    chan struct{}
	done    chan struct{}
	stopped sync.Once
}

// Install arms the production handler: SIGINT/SIGTERM cancel the
// returned context, a second one exits the process with ForcedExitCode.
// warn (may be nil) is called with a human-readable line when each
// signal lands. Stop the notifier to release the signal handler.
func Install(parent context.Context, warn func(string)) (context.Context, *Notifier) {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	ctx, n := New(parent, ch, os.Exit, warn)
	n.release = func() { signal.Stop(ch) }
	return ctx, n
}

// New is Install with the signal channel and exit function injected —
// tests feed synthetic signals and capture the exit code instead of
// dying.
func New(parent context.Context, sigs <-chan os.Signal, exit func(int), warn func(string)) (context.Context, *Notifier) {
	if warn == nil {
		warn = func(string) {}
	}
	ctx, cancel := context.WithCancel(parent)
	n := &Notifier{
		sigs:   sigs,
		exit:   exit,
		warn:   warn,
		cancel: cancel,
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go n.watch()
	return ctx, n
}

func (n *Notifier) watch() {
	defer close(n.done)
	select {
	case sig, ok := <-n.sigs:
		if !ok {
			return
		}
		n.warn("received " + sig.String() + ": draining (send again to force exit)")
		n.cancel()
	case <-n.quit:
		return
	}
	// Drain window: the process is shutting down gracefully; one more
	// signal abandons the drain and forces out.
	select {
	case sig, ok := <-n.sigs:
		if !ok {
			return
		}
		n.warn("received " + sig.String() + " during drain: forcing exit")
		n.exit(ForcedExitCode)
	case <-n.quit:
	}
}

// Stop cancels the context, detaches the signal handler, and waits for
// the watcher to finish; after Stop a pending second signal can no
// longer force an exit. Idempotent — defer it from main and also call
// it on the clean path if you like.
func (n *Notifier) Stop() {
	n.stopped.Do(func() {
		n.cancel()
		if n.release != nil {
			n.release()
		}
		close(n.quit)
	})
	<-n.done
}
