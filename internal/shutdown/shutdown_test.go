package shutdown

import (
	"context"
	"os"
	"syscall"
	"testing"
	"time"

	"uplan/internal/store"
	"uplan/internal/store/faultio"
)

func TestShutdownFirstSignalDrains(t *testing.T) {
	sigs := make(chan os.Signal, 2)
	exited := make(chan int, 1)
	ctx, n := New(context.Background(), sigs, func(code int) { exited <- code }, nil)
	defer n.Stop()

	select {
	case <-ctx.Done():
		t.Fatal("context done before any signal")
	default:
	}
	sigs <- syscall.SIGTERM
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("first signal did not cancel the context")
	}
	select {
	case code := <-exited:
		t.Fatalf("first signal forced exit %d; only the second may", code)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestShutdownForcedExitWithBlockedStoreSync is the regression test for
// the abandoned-drain path: the graceful checkpoint is hung on a store
// whose fsync never returns (a blocking faultio syncer), and the second
// signal must still force an immediate exit with the distinct code — the
// operator can always get out.
func TestShutdownForcedExitWithBlockedStoreSync(t *testing.T) {
	faults := faultio.NewFaults()
	faults.SyncBlock = make(chan struct{})
	log, err := store.Open(t.TempDir(), store.Options{
		Open: func(path string) (store.WriteSyncer, error) {
			ws, err := store.OpenFile(path)
			if err != nil {
				return nil, err
			}
			return faultio.Wrap(ws, faults), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.AppendPlan([32]byte{9}); err != nil {
		t.Fatal(err)
	}

	sigs := make(chan os.Signal, 2)
	exited := make(chan int, 1)
	ctx, n := New(context.Background(), sigs, func(code int) { exited <- code }, nil)
	defer n.Stop()

	// The drain: first signal cancels ctx, the checkpoint sync hangs
	// forever on the sick storage.
	syncDone := make(chan error, 1)
	go func() {
		<-ctx.Done()
		syncDone <- log.Sync()
	}()
	sigs <- syscall.SIGINT
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("first signal did not start the drain")
	}
	select {
	case err := <-syncDone:
		t.Fatalf("blocked sync returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
		// hung, as injected — the drain cannot finish on its own
	}

	// Second signal: forced exit with the distinct code, sync still hung.
	sigs <- syscall.SIGINT
	select {
	case code := <-exited:
		if code != ForcedExitCode {
			t.Fatalf("forced exit code = %d, want %d", code, ForcedExitCode)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second signal during a hung drain did not force exit")
	}

	// Unblock the storage so the test itself can clean up.
	close(faults.SyncBlock)
	if err := <-syncDone; err != nil {
		t.Errorf("unblocked sync: %v", err)
	}
	if err := log.Close(); err != nil {
		t.Errorf("store close: %v", err)
	}
}

func TestShutdownStopStandsDown(t *testing.T) {
	sigs := make(chan os.Signal, 2)
	exited := make(chan int, 1)
	ctx, n := New(context.Background(), sigs, func(code int) { exited <- code }, nil)
	n.Stop()
	n.Stop() // idempotent
	select {
	case <-ctx.Done():
	default:
		t.Error("Stop did not cancel the context")
	}
	// A signal landing after Stop must not force an exit.
	sigs <- syscall.SIGTERM
	select {
	case code := <-exited:
		t.Fatalf("signal after Stop forced exit %d", code)
	case <-time.After(50 * time.Millisecond):
	}
}
