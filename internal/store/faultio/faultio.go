// Package faultio is the store's fault-injection harness: a WriteSyncer
// wrapper that fails, shortens, or corrupts writes at a chosen byte
// offset, plus an on-disk bit-flip helper. The robustness suite uses it
// to prove the store's crash contracts — torn tails truncate on reopen,
// write errors surface and stick, bit rot is rejected by CRC — instead
// of assuming them.
//
// The wrapper is deliberately interface-structural (it defines its own
// WriteSyncer identical to store.WriteSyncer) so it depends on nothing
// and can wrap any append sink.
package faultio

import (
	"errors"
	"io"
	"os"
)

// ErrInjected is the error every injected write/sync failure returns
// (wrapped), so tests can errors.Is for it.
var ErrInjected = errors.New("faultio: injected fault")

// WriteSyncer mirrors store.WriteSyncer structurally.
type WriteSyncer interface {
	io.Writer
	Sync() error
	Close() error
}

// Faults configures the injected behaviour. The zero value injects
// nothing. Offsets are in bytes of the wrapped writer's output stream,
// counted from the first wrapped Write.
type Faults struct {
	// FailAt, when >= 0, makes the Write covering that offset fail: bytes
	// before the offset are written (a torn frame), the rest are dropped,
	// and the call returns ErrInjected. Use -1 to disable.
	FailAt int64
	// ShortAt, when >= 0, makes the Write covering that offset silently
	// short: bytes before the offset are written and the call returns
	// (n < len(p), nil) — an io.Writer contract violation real broken
	// writers commit, which the store must defend against.
	ShortAt int64
	// FlipBit, when >= 0, flips bit (FlipBit % 8) of the output byte at
	// offset FlipBit/8 as it passes through — silent in-flight
	// corruption the CRC must catch on recovery.
	FlipBit int64
	// SyncErr, when non-nil, is returned by every Sync call.
	SyncErr error
	// SyncBlock, when non-nil, makes every Sync call block until the
	// channel is closed — a hung fsync on sick storage, the scenario the
	// forced-exit shutdown path exists for. Combine with SyncErr to
	// choose what the unblocked Sync then returns.
	SyncBlock chan struct{}
}

// NewFaults returns a Faults with every injection disabled; set the
// fields you need.
func NewFaults() *Faults {
	return &Faults{FailAt: -1, ShortAt: -1, FlipBit: -1}
}

// Writer wraps an inner WriteSyncer with injected faults. Not safe for
// concurrent use (the store serializes appends already).
type Writer struct {
	inner WriteSyncer
	f     *Faults
	off   int64
}

// Wrap returns a faulty writer over inner, driven by f. Several writers
// may share one Faults value only if they never write concurrently.
func Wrap(inner WriteSyncer, f *Faults) *Writer {
	return &Writer{inner: inner, f: f}
}

// Write applies the configured faults to one write.
func (w *Writer) Write(p []byte) (int, error) {
	end := w.off + int64(len(p))

	// Bit flip: corrupt in a copy, then carry on as if nothing happened.
	if w.f.FlipBit >= 0 {
		if byteOff := w.f.FlipBit / 8; byteOff >= w.off && byteOff < end {
			c := append([]byte(nil), p...)
			c[byteOff-w.off] ^= 1 << (w.f.FlipBit % 8)
			p = c
		}
	}

	// Torn write: persist the prefix, error out.
	if w.f.FailAt >= 0 && w.f.FailAt < end {
		keep := int(w.f.FailAt - w.off)
		if keep < 0 {
			keep = 0
		}
		n, err := w.inner.Write(p[:keep])
		w.off += int64(n)
		if err != nil {
			return n, err
		}
		return n, ErrInjected
	}

	// Contract-violating short write: persist the prefix, report success.
	if w.f.ShortAt >= 0 && w.f.ShortAt < end {
		keep := int(w.f.ShortAt - w.off)
		if keep < 0 {
			keep = 0
		}
		w.f.ShortAt = -1 // one-shot, or the retry-free caller loops forever
		n, err := w.inner.Write(p[:keep])
		w.off += int64(n)
		return n, err
	}

	n, err := w.inner.Write(p)
	w.off += int64(n)
	return n, err
}

// Sync blocks on the injected channel if one is set, then returns the
// injected sync error, or defers to the inner sink.
func (w *Writer) Sync() error {
	if w.f.SyncBlock != nil {
		<-w.f.SyncBlock
	}
	if w.f.SyncErr != nil {
		return w.f.SyncErr
	}
	return w.inner.Sync()
}

// Close closes the inner sink (faults do not apply).
func (w *Writer) Close() error { return w.inner.Close() }

// FlipBitOnDisk flips one bit of the file at path: bit (bit % 8) of byte
// bit/8. It is the at-rest corruption injector for recovery tests.
func FlipBitOnDisk(path string, bit int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], bit/8); err != nil {
		return err
	}
	b[0] ^= 1 << (bit % 8)
	_, err = f.WriteAt(b[:], bit/8)
	return err
}
