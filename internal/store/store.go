package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// WriteSyncer is the small write abstraction the store appends through:
// an append-mode byte sink with explicit durability and shutdown. The
// default implementation is an *os.File opened with O_APPEND; the
// faultio subpackage wraps one with injectable failures so the
// robustness tests can prove — not assume — recovery behaviour.
type WriteSyncer interface {
	io.Writer
	// Sync forces everything written so far to stable storage.
	Sync() error
	// Close releases the sink. The store syncs before closing.
	Close() error
}

// Opener produces the WriteSyncer for one shard file path.
type Opener func(path string) (WriteSyncer, error)

// OpenFile is the default Opener: an O_APPEND|O_CREATE OS file.
func OpenFile(path string) (WriteSyncer, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
}

// Options configure Open.
type Options struct {
	// Shards is how many shard files new appends spread across; records
	// route by fingerprint, so one hot key cannot serialize a fleet on a
	// single file. Non-positive means DefaultShards. Recovery always reads
	// every shard file present regardless of this value, so reopening a
	// directory with a different shard count loses nothing (duplicate
	// fingerprints that land in different shards dedup during the scan).
	Shards int
	// Open produces each shard's WriteSyncer; nil means OpenFile. Tests
	// inject faulty writers here.
	Open Opener
}

// DefaultShards is the shard-file count when Options.Shards is unset.
const DefaultShards = 4

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = DefaultShards
	}
	if o.Open == nil {
		o.Open = OpenFile
	}
	return o
}

// TaskKey ordering for deterministic Recovered snapshots.
func taskKeyLess(a, b TaskKey) bool {
	if a.Engine != b.Engine {
		return a.Engine < b.Engine
	}
	return a.Oracle < b.Oracle
}

// Recovered is the state Open rebuilt from the log: everything a
// campaign needs to resume. Plans and Findings are deduplicated;
// Progress holds the latest checkpoint per task.
type Recovered struct {
	// Meta is the first meta record's payload (nil if none) — the
	// campaign configuration stamp resume validates against.
	Meta []byte
	// Plans are the distinct plan fingerprint keys, in log order.
	Plans [][32]byte
	// PlanBlobs are the distinct full plan payloads (binary-codec blobs,
	// opaque to the store), in log order. Decoded with codec.DecodeInto.
	PlanBlobs []PlanBlob
	// Findings are the distinct findings, in log order.
	Findings []Finding
	// Progress maps each task to its most recent checkpoint.
	Progress map[TaskKey]TaskProgress
	// DroppedBytes counts torn/corrupt tail bytes truncated across all
	// shards; Truncated counts how many shards lost a tail.
	DroppedBytes int64
	Truncated    int
}

// Tasks returns the recovered task keys in deterministic order.
func (r *Recovered) Tasks() []TaskKey {
	keys := make([]TaskKey, 0, len(r.Progress))
	for k := range r.Progress {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return taskKeyLess(keys[i], keys[j]) })
	return keys
}

// Empty reports whether recovery found nothing at all — the fresh-
// directory case a non-resuming campaign requires.
func (r *Recovered) Empty() bool {
	return r.Meta == nil && len(r.Plans) == 0 && len(r.PlanBlobs) == 0 &&
		len(r.Findings) == 0 && len(r.Progress) == 0
}

// PlanBlob is one journaled full plan: its collision-resistant
// fingerprint (the dedup key) and its binary-codec serialization. The
// store treats Data as opaque bytes — the codec dependency points from
// callers to internal/codec, never through the store.
type PlanBlob struct {
	Fingerprint [32]byte
	Data        []byte
}

// shard is one open shard file.
type shard struct {
	path  string
	ws    WriteSyncer // nil until the first append touches the shard
	dirty bool        // bytes written since the last Sync
}

// Store is the crash-safe plan-and-finding log. All methods are safe for
// concurrent use; appends from campaign workers serialize on one mutex
// (disk frames are tiny next to the oracle work producing them).
//
// Durability model: Append* buffers nothing — every record is one write
// to the shard's WriteSyncer — but only Sync/Checkpoint/Close force
// bytes to stable storage. Checkpoint orders durability: it syncs every
// dirty shard BEFORE appending the checkpoint record and syncing its own
// shard, so a recovered Done checkpoint proves every record its task
// appended is on disk too. A write failure is sticky: the shard's tail
// is in an unknown state, so every subsequent append fails with the
// original error until the store is reopened (recovery then truncates
// the torn tail).
type Store struct {
	mu        sync.Mutex
	dir       string
	opts      Options
	shards    []*shard
	planIdx   map[[32]byte]struct{}
	blobIdx   map[[32]byte]struct{}
	findIdx   map[uint64]struct{}
	meta      []byte
	recovered Recovered
	buf       []byte // frame scratch, reused across appends
	failed    error  // sticky first write/sync failure
	closed    bool
}

// Open opens (creating if needed) the log directory, replays every shard
// file — verifying checksums and truncating torn tails — and returns a
// store ready for appends, with the recovered state snapshotted.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:     dir,
		opts:    opts,
		planIdx: map[[32]byte]struct{}{},
		blobIdx: map[[32]byte]struct{}{},
		findIdx: map[uint64]struct{}{},
	}
	s.recovered.Progress = map[TaskKey]TaskProgress{}

	// Recover every shard file present — not just the ones the current
	// shard count would route to — so shard-count changes and partially
	// created directories lose nothing.
	paths, err := filepath.Glob(filepath.Join(dir, "shard-*.log"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := s.recoverShard(p); err != nil {
			return nil, err
		}
	}

	s.shards = make([]*shard, opts.Shards)
	for i := range s.shards {
		s.shards[i] = &shard{path: filepath.Join(dir, fmt.Sprintf("shard-%03d.log", i))}
	}
	return s, nil
}

// recoverShard replays one shard file into the store's indexes and
// truncates any torn or corrupt tail in place.
func (s *Store) recoverShard(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("store: recover %s: %w", filepath.Base(path), err)
	}
	valid, err := scanFrames(data, s.replay)
	if err != nil {
		return fmt.Errorf("store: recover %s: %w", filepath.Base(path), err)
	}
	if valid < len(data) {
		// Torn tail (crash mid-write) or bit rot: the intact prefix is the
		// log. Truncate so appends continue at a frame boundary.
		if err := os.Truncate(path, int64(valid)); err != nil {
			return fmt.Errorf("store: truncate %s: %w", filepath.Base(path), err)
		}
		s.recovered.DroppedBytes += int64(len(data) - valid)
		s.recovered.Truncated++
	}
	return nil
}

// replay folds one intact frame into the recovered state. A CRC-valid
// frame whose payload does not decode fails Open loudly: the checksum
// proves the bytes are what the writer wrote, so a bad payload is a
// writer bug — silently truncating there would hide it. Unknown record
// types are skipped, so a newer writer's log still recovers under an
// older reader.
func (s *Store) replay(typ byte, payload []byte) error {
	switch typ {
	case recMeta:
		if s.meta == nil {
			s.meta = append([]byte(nil), payload...)
			s.recovered.Meta = s.meta
		}
	case recPlan:
		if len(payload) != 32 {
			return errBadPayload
		}
		var fp [32]byte
		copy(fp[:], payload)
		if _, dup := s.planIdx[fp]; !dup {
			s.planIdx[fp] = struct{}{}
			s.recovered.Plans = append(s.recovered.Plans, fp)
		}
	case recPlanBlob:
		if len(payload) < 32 {
			return errBadPayload
		}
		var fp [32]byte
		copy(fp[:], payload)
		if _, dup := s.blobIdx[fp]; !dup {
			s.blobIdx[fp] = struct{}{}
			s.recovered.PlanBlobs = append(s.recovered.PlanBlobs, PlanBlob{
				Fingerprint: fp,
				Data:        append([]byte(nil), payload[32:]...),
			})
		}
	case recFinding:
		f, err := decodeFindingPayload(payload)
		if err != nil {
			return err
		}
		if _, dup := s.findIdx[f.key()]; !dup {
			s.findIdx[f.key()] = struct{}{}
			s.recovered.Findings = append(s.recovered.Findings, f)
		}
	case recProgress:
		p, err := decodeProgressPayload(payload)
		if err != nil {
			return err
		}
		s.recovered.Progress[p.Key()] = p
	}
	return nil
}

// Recovered returns the state Open rebuilt. The snapshot is owned by the
// store and must not be mutated.
func (s *Store) Recovered() *Recovered { return &s.recovered }

// Dir returns the log directory the store was opened on.
func (s *Store) Dir() string { return s.dir }

// Meta returns the recovered (or appended) meta payload, nil if none.
func (s *Store) Meta() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.meta
}

// append encodes one frame and writes it to the shard in a single Write.
// Callers hold s.mu.
func (s *Store) append(sh *shard, typ byte, payload []byte) error {
	if s.closed {
		return errors.New("store: closed")
	}
	if s.failed != nil {
		return s.failed
	}
	if sh.ws == nil {
		ws, err := s.opts.Open(sh.path)
		if err != nil {
			return s.fail(fmt.Errorf("store: open %s: %w", filepath.Base(sh.path), err))
		}
		sh.ws = ws
	}
	s.buf = appendFrame(s.buf[:0], typ, payload)
	n, err := sh.ws.Write(s.buf)
	if err == nil && n != len(s.buf) {
		// Defend against writers that violate io.Writer's short-write
		// contract (faultio deliberately does): a silent short write would
		// leave a torn frame that the NEXT append buries mid-log.
		err = io.ErrShortWrite
	}
	sh.dirty = true
	if err != nil {
		// The shard tail is now unknown — a retry would append after a
		// partial frame and corrupt everything that follows. Fail sticky;
		// recovery truncates the torn tail on reopen.
		return s.fail(fmt.Errorf("store: append %s: %w", filepath.Base(sh.path), err))
	}
	return nil
}

// fail records the first hard failure and returns it.
func (s *Store) fail(err error) error {
	if s.failed == nil {
		s.failed = err
	}
	return s.failed
}

// planShard routes a fingerprint to its shard.
func (s *Store) planShard(fp [32]byte) *shard {
	return s.shards[int(fp[0])%len(s.shards)]
}

// AppendPlan records a plan fingerprint key, writing a frame only when
// the key is new to the log, and reports whether it was. The error is
// oracle-grade signal: a dropped disk failure here silently shrinks the
// corpus a resumed fleet dedups against.
func (s *Store) AppendPlan(fp [32]byte) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.planIdx[fp]; dup {
		return false, nil
	}
	if err := s.append(s.planShard(fp), recPlan, fp[:]); err != nil {
		return false, err
	}
	s.planIdx[fp] = struct{}{}
	return true, nil
}

// AppendPlanBlob records a full plan payload — by convention a binary-
// codec blob, though the store treats it as opaque bytes — keyed and
// deduplicated by its fingerprint, and reports whether the payload was
// new to the log. The frame is the fingerprint followed by the blob;
// recovery surfaces both through Recovered.PlanBlobs. Blob records are a
// separate space from AppendPlan's fingerprint-only records: a campaign
// may journal every fingerprint but only the plans worth replaying.
func (s *Store) AppendPlanBlob(fp [32]byte, blob []byte) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.blobIdx[fp]; dup {
		return false, nil
	}
	payload := make([]byte, 0, 32+len(blob))
	payload = append(payload, fp[:]...)
	payload = append(payload, blob...)
	if err := s.append(s.planShard(fp), recPlanBlob, payload); err != nil {
		return false, err
	}
	s.blobIdx[fp] = struct{}{}
	return true, nil
}

// PlanBlobs returns how many distinct plan payloads the log holds.
func (s *Store) PlanBlobs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blobIdx)
}

// AppendFinding records a finding, writing a frame only when its full
// identity is new to the log, and reports whether it was.
func (s *Store) AppendFinding(f Finding) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := f.key()
	if _, dup := s.findIdx[key]; dup {
		return false, nil
	}
	payload := appendFindingPayload(nil, f)
	if err := s.append(s.shards[int(key%uint64(len(s.shards)))], recFinding, payload); err != nil {
		return false, err
	}
	s.findIdx[key] = struct{}{}
	return true, nil
}

// AppendMeta stamps the log with an opaque configuration payload.
// Exactly one meta record is meaningful (recovery keeps the first);
// appending over an existing different meta is an error — a resumed
// campaign must run with the configuration the log was built under.
func (s *Store) AppendMeta(meta []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.meta != nil {
		if string(s.meta) == string(meta) {
			return nil
		}
		return fmt.Errorf("store: meta already set to %q", s.meta)
	}
	if err := s.append(s.shards[0], recMeta, meta); err != nil {
		return err
	}
	s.meta = append([]byte(nil), meta...)
	return nil
}

// Checkpoint appends a task-progress record and makes everything before
// it durable: all dirty shards are synced first, then the checkpoint
// frame lands in shard 0 and that shard is synced. A Done checkpoint
// recovered later therefore guarantees every plan and finding its task
// appended is recovered too — the ordering the resume determinism
// contract stands on.
func (s *Store) Checkpoint(p TaskProgress) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.syncLocked(); err != nil {
		return err
	}
	payload := appendProgressPayload(nil, p)
	if err := s.append(s.shards[0], recProgress, payload); err != nil {
		return err
	}
	return s.syncLocked()
}

// Sync forces every dirty shard to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if s.failed != nil {
		return s.failed
	}
	for _, sh := range s.shards {
		if sh.ws == nil || !sh.dirty {
			continue
		}
		if err := sh.ws.Sync(); err != nil {
			return s.fail(fmt.Errorf("store: sync %s: %w", filepath.Base(sh.path), err))
		}
		sh.dirty = false
	}
	return nil
}

// Close syncs and closes every shard. The store is unusable afterwards;
// reopen the directory to resume. Close after a sticky write failure
// still closes the file handles but reports the original failure.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	errs := []error{s.failed}
	if s.failed == nil {
		errs = append(errs, s.syncLocked())
	}
	for _, sh := range s.shards {
		if sh.ws == nil {
			continue
		}
		if err := sh.ws.Close(); err != nil {
			errs = append(errs, fmt.Errorf("store: close %s: %w", filepath.Base(sh.path), err))
		}
		sh.ws = nil
	}
	return errors.Join(errs...)
}

// Plans returns how many distinct plan fingerprints the log holds.
func (s *Store) Plans() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.planIdx)
}

// Findings returns how many distinct findings the log holds.
func (s *Store) Findings() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.findIdx)
}
