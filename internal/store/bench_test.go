package store

import (
	"fmt"
	"strconv"
	"testing"
)

// BenchmarkStoreAppend measures the append hot path: one framed,
// CRC-summed finding record per op, written through the default OS file
// (no fsync — durability is priced at checkpoints, not per record).
func BenchmarkStoreAppend(b *testing.B) {
	s, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	f := Finding{Engine: "postgresql", Oracle: "qpg", Kind: "logic", Query: "SELECT 1", Detail: ""}
	var scratch [24]byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Unique detail so every op takes the write path, not the dedup
		// fast path.
		f.Detail = string(strconv.AppendInt(scratch[:0], int64(i), 10))
		if _, err := s.AppendFinding(f); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := s.Sync(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStoreAppendPlan measures the fingerprint append path,
// including its dedup index hit/miss mix (every op is a miss).
func BenchmarkStoreAppendPlan(b *testing.B) {
	s, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var fp [32]byte
		fp[0], fp[1], fp[2], fp[3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
		if _, err := s.AppendPlan(fp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreOpen measures recovery: replaying a 4-shard log of mixed
// records (checksum verification, payload decode, index rebuild).
func BenchmarkStoreOpen(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	const records = 5000
	for i := 0; i < records; i++ {
		var fp [32]byte
		fp[0], fp[1], fp[2] = byte(i), byte(i>>8), byte(i>>16)
		if _, err := s.AppendPlan(fp); err != nil {
			b.Fatal(err)
		}
		if i%4 == 0 {
			if _, err := s.AppendFinding(Finding{
				Engine: "mysql", Oracle: "tlp", Kind: "logic",
				Query: "SELECT 1", Detail: fmt.Sprintf("case %d", i),
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := Open(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if r.Plans() != records {
			b.Fatalf("recovered %d plans", r.Plans())
		}
		if err := r.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
