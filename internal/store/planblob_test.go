package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"uplan/internal/codec"
	"uplan/internal/core"
)

// testBlobPlan fabricates a distinct small plan from an index. The
// distinguishing property is a Configuration value, because the
// structural fingerprint deliberately ignores cardinality estimates.
func testBlobPlan(i int) *core.Plan {
	n := core.NewNode(core.Producer, "Seq Scan")
	n.AddProperty(core.Configuration, "table", core.Str(fmt.Sprintf("t%d", i)))
	n.AddProperty(core.Cardinality, "rows", core.Num(float64(i)))
	return &core.Plan{Source: "postgresql", Root: n}
}

// TestPlanBlobRoundTrip pins the full-plan journal: binary-codec blobs
// appended under their fingerprints are deduplicated, recovered in log
// order by the next Open, and decode back to the plans that produced
// them. The store itself never touches the codec — the payload round
// trip proves opacity is preserved.
func TestPlanBlobRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})

	const n = 10
	var wantBlobs [][]byte
	opts := core.FingerprintOptions{IncludeConfiguration: true, IncludeConfigurationValues: true}
	for i := 0; i < n; i++ {
		p := testBlobPlan(i)
		blob, err := codec.Encode(p)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := s.AppendPlanBlob(p.FingerprintBytes(opts), blob)
		if err != nil {
			t.Fatal(err)
		}
		if !fresh {
			t.Fatalf("blob %d reported duplicate on first append", i)
		}
		wantBlobs = append(wantBlobs, blob)

		// Same fingerprint again: deduplicated, no error.
		fresh, err = s.AppendPlanBlob(p.FingerprintBytes(opts), blob)
		if err != nil {
			t.Fatal(err)
		}
		if fresh {
			t.Fatalf("blob %d reported fresh on duplicate append", i)
		}
	}
	if got := s.PlanBlobs(); got != n {
		t.Fatalf("PlanBlobs = %d, want %d", got, n)
	}
	// Blob records are independent of fingerprint-only records.
	if got := s.Plans(); got != 0 {
		t.Fatalf("Plans = %d, want 0 (blob appends must not leak into the fingerprint index)", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, dir, Options{})
	defer re.Close()
	rec := re.Recovered()
	if rec.Empty() {
		t.Fatal("recovery with blobs reports Empty")
	}
	if len(rec.PlanBlobs) != n {
		t.Fatalf("recovered %d blobs, want %d", len(rec.PlanBlobs), n)
	}
	seen := map[[32]byte]bool{}
	for _, pb := range rec.PlanBlobs {
		if seen[pb.Fingerprint] {
			t.Fatal("recovered a duplicate blob fingerprint")
		}
		seen[pb.Fingerprint] = true
		p, err := codec.DecodeInto(pb.Data, nil)
		if err != nil {
			t.Fatalf("recovered blob does not decode: %v", err)
		}
		if pb.Fingerprint != p.FingerprintBytes(opts) {
			t.Fatal("recovered blob's fingerprint does not match its plan")
		}
	}
	// Log order is preserved within a shard; globally every appended blob
	// must be present byte-identically.
	for i, want := range wantBlobs {
		found := false
		for _, pb := range rec.PlanBlobs {
			if bytes.Equal(pb.Data, want) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("blob %d missing after recovery", i)
		}
	}
	// A reopened store still dedups against recovered blobs.
	p0 := testBlobPlan(0)
	fresh, err := re.AppendPlanBlob(p0.FingerprintBytes(opts), wantBlobs[0])
	if err != nil {
		t.Fatal(err)
	}
	if fresh {
		t.Fatal("recovered blob re-appended as fresh")
	}
}

// TestPlanBlobShortPayload: a CRC-valid blob frame shorter than a
// fingerprint is a writer bug and must fail Open loudly, like every other
// undecodable-but-checksummed payload.
func TestPlanBlobShortPayload(t *testing.T) {
	dir := t.TempDir()
	frame := appendFrame(nil, recPlanBlob, []byte("too short"))
	if err := os.WriteFile(filepath.Join(dir, "shard-000.log"), frame, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a blob frame with a truncated fingerprint")
	}
}

// TestPlanBlobEmptyPayloadBlob: a fingerprint with a zero-length blob is
// valid (the frame is self-delimiting); it recovers with empty Data.
func TestPlanBlobEmptyBlob(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	fp := testPlanKey(7)
	if _, err := s.AppendPlanBlob(fp, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, dir, Options{})
	defer re.Close()
	rec := re.Recovered()
	if len(rec.PlanBlobs) != 1 || rec.PlanBlobs[0].Fingerprint != fp || len(rec.PlanBlobs[0].Data) != 0 {
		t.Fatalf("empty blob recovery: %+v", rec.PlanBlobs)
	}
}
