// Package store is UPlan's crash-safe persistence layer: an append-only,
// CRC-framed on-disk log of plan fingerprints, campaign findings, and
// checkpoint records, with WAL-style recovery. It is the durability
// substrate the ROADMAP's fleet/service items sit on: fuzzing campaigns
// stream their discoveries through it, survive a crash at any byte, and
// resume from the recovered state with a byte-identical outcome.
//
// On disk, a log is a directory of shard files (shard-NNN.log), each a
// sequence of frames:
//
//	frame := magic(1) type(1) payload-length(uvarint) payload crc32c(4, LE)
//
// The CRC (Castagnoli) covers everything after the magic byte — type,
// length, and payload — so a bit flip anywhere in a frame is detected,
// never silently decoded. Open replays every shard: it verifies each
// frame's checksum, stops at the first torn or corrupt frame, truncates
// that tail off the file, and rebuilds the fingerprint index, finding
// set, and per-task progress map in one pass. The recovered prefix is
// exactly the sequence of intact frames — the truncate-anywhere property
// TestRecoverTruncateAnywhere pins.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

const (
	// frameMagic leads every frame. A recovery scan that does not find it
	// at a frame boundary declares the tail torn.
	frameMagic = 0xF7
	// maxPayload bounds a frame's payload so a corrupted length field
	// cannot make recovery attempt an absurd read.
	maxPayload = 1 << 24
	// frameOverhead is the fixed cost of a frame beyond payload and the
	// length varint: magic, type, CRC.
	frameOverhead = 1 + 1 + 4
)

// Record types. Unknown types are CRC-verified and skipped during
// recovery (forward compatibility), never misparsed.
const (
	recMeta     byte = 0x01 // opaque campaign configuration blob
	recPlan     byte = 0x02 // 32-byte plan fingerprint key
	recFinding  byte = 0x03 // one campaign finding (5 length-prefixed strings)
	recProgress byte = 0x04 // per-task checkpoint (identity + counters)
	recPlanBlob byte = 0x05 // 32-byte fingerprint + binary plan payload (internal/codec blob)
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// uvarintLen is the length of x's minimal uvarint encoding.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// Frame-scan errors. errShortFrame means the buffer ends mid-frame (a
// torn tail — the expected crash shape); errCorruptFrame means the bytes
// at the boundary cannot be a frame (bad magic, oversized length, CRC
// mismatch — bit rot or a misaligned write).
var (
	errShortFrame   = errors.New("store: truncated frame")
	errCorruptFrame = errors.New("store: corrupt frame")
)

// appendFrame appends one encoded frame to dst and returns the extended
// slice. The payload is copied; dst's backing array is the only
// allocation site, so callers reusing a scratch buffer append for free.
func appendFrame(dst []byte, typ byte, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, frameMagic, typ)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	crc := crc32.Checksum(dst[start+1:], castagnoli)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// parseFrame decodes the frame at the start of b, returning its type,
// payload (aliasing b), and total encoded size. errShortFrame reports a
// frame cut off by the end of the buffer; errCorruptFrame reports bytes
// that cannot be a frame at all.
func parseFrame(b []byte) (typ byte, payload []byte, size int, err error) {
	if len(b) == 0 {
		return 0, nil, 0, errShortFrame
	}
	if b[0] != frameMagic {
		return 0, nil, 0, fmt.Errorf("%w: bad magic 0x%02x", errCorruptFrame, b[0])
	}
	if len(b) < 2 {
		return 0, nil, 0, errShortFrame
	}
	typ = b[1]
	n, vn := binary.Uvarint(b[2:])
	if vn == 0 {
		return 0, nil, 0, errShortFrame
	}
	if vn < 0 || n > maxPayload {
		return 0, nil, 0, fmt.Errorf("%w: implausible payload length", errCorruptFrame)
	}
	if vn != uvarintLen(n) {
		// Only canonical (minimal) varints are ever written; a padded one
		// is corruption, and rejecting it keeps parse→re-encode an exact
		// byte-level inverse (FuzzRecordFrame relies on that).
		return 0, nil, 0, fmt.Errorf("%w: non-canonical length encoding", errCorruptFrame)
	}
	head := 2 + vn
	size = head + int(n) + 4
	if len(b) < size {
		return 0, nil, 0, errShortFrame
	}
	payload = b[head : head+int(n)]
	want := binary.LittleEndian.Uint32(b[head+int(n):])
	if crc32.Checksum(b[1:head+int(n)], castagnoli) != want {
		return 0, nil, 0, fmt.Errorf("%w: CRC mismatch", errCorruptFrame)
	}
	return typ, payload, size, nil
}

// scanFrames walks the frames of one shard's bytes, invoking fn for each
// intact frame, and returns the length of the valid prefix. Scanning
// stops — without error — at the first torn or corrupt frame: everything
// after it is the tail recovery truncates. An fn error aborts the scan
// and surfaces: a CRC-valid frame whose payload does not decode is a
// writer bug, not media corruption, and silently truncating there would
// hide it.
func scanFrames(b []byte, fn func(typ byte, payload []byte) error) (valid int, scanErr error) {
	off := 0
	for off < len(b) {
		typ, payload, size, err := parseFrame(b[off:])
		if err != nil {
			return off, nil
		}
		if err := fn(typ, payload); err != nil {
			return off, err
		}
		off += size
	}
	return off, nil
}
