package store

import (
	"bytes"
	"testing"
)

// fuzzSeedLog builds a small valid multi-record log for the seed corpus.
func fuzzSeedLog() []byte {
	var b []byte
	b = appendFrame(b, recMeta, []byte("seed config"))
	fp := testFuzzKey(1)
	b = appendFrame(b, recPlan, fp[:])
	b = appendFrame(b, recFinding, appendFindingPayload(nil, Finding{
		Engine: "postgresql", Oracle: "qpg", Kind: "logic",
		Query: "SELECT 1", Detail: "differs from reference",
	}))
	b = appendFrame(b, recProgress, appendProgressPayload(nil, TaskProgress{
		Engine: "postgresql", Oracle: "qpg", Done: true, Queries: 100,
	}))
	b = appendFrame(b, 0x66, []byte("unknown type"))
	return b
}

func testFuzzKey(i int) [32]byte {
	var fp [32]byte
	for j := range fp {
		fp[j] = byte(i * (j + 1))
	}
	return fp
}

// FuzzRecordFrame feeds arbitrary bytes to the recovery scanner — the
// exact code path Open trusts after a crash. Invariants: no panic, the
// valid prefix never exceeds the input, frames decode only from intact
// bytes, and scanning is idempotent (re-scanning the valid prefix
// recovers the same records and consumes every byte of it).
func FuzzRecordFrame(f *testing.F) {
	seed := fuzzSeedLog()
	f.Add(seed)
	// Truncations at interesting offsets.
	for _, cut := range []int{0, 1, 2, 3, 7, len(seed) / 2, len(seed) - 1} {
		if cut >= 0 && cut <= len(seed) {
			f.Add(seed[:cut])
		}
	}
	// Bit flips in the header, payload, and CRC regions.
	for _, bit := range []int{0, 9, 20, 100, len(seed)*8 - 1} {
		c := append([]byte(nil), seed...)
		c[bit/8] ^= 1 << (bit % 8)
		f.Add(c)
	}
	f.Add([]byte{frameMagic})
	f.Add([]byte{frameMagic, recPlan, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	type rec struct {
		typ     byte
		payload []byte
	}
	scan := func(data []byte) ([]rec, int, error) {
		var recs []rec
		valid, err := scanFrames(data, func(typ byte, payload []byte) error {
			// Decode exactly like recovery does; a decode error from a
			// CRC-valid frame surfaces (Open would fail loudly).
			switch typ {
			case recFinding:
				if _, err := decodeFindingPayload(payload); err != nil {
					return err
				}
			case recProgress:
				if _, err := decodeProgressPayload(payload); err != nil {
					return err
				}
			case recPlan:
				if len(payload) != 32 {
					return errBadPayload
				}
			}
			recs = append(recs, rec{typ, append([]byte(nil), payload...)})
			return nil
		})
		return recs, valid, err
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, err := scan(data)
		if valid > len(data) {
			t.Fatalf("valid prefix %d exceeds input %d", valid, len(data))
		}
		if err != nil {
			// A CRC-valid frame with an undecodable payload: recovery
			// refuses it. Nothing more to check.
			return
		}
		// Idempotence: the valid prefix is a fully valid log.
		recs2, valid2, err2 := scan(data[:valid])
		if err2 != nil || valid2 != valid {
			t.Fatalf("re-scan of valid prefix: valid %d->%d err=%v", valid, valid2, err2)
		}
		if len(recs) != len(recs2) {
			t.Fatalf("re-scan recovered %d records, first pass %d", len(recs2), len(recs))
		}
		for i := range recs {
			if recs[i].typ != recs2[i].typ || !bytes.Equal(recs[i].payload, recs2[i].payload) {
				t.Fatalf("record %d differs across scans", i)
			}
		}
		// Round-trip: re-encoding the recovered records reproduces the
		// valid prefix byte for byte.
		var re []byte
		for _, r := range recs {
			re = appendFrame(re, r.typ, r.payload)
		}
		if !bytes.Equal(re, data[:valid]) {
			t.Fatalf("re-encoded log differs from valid prefix")
		}
	})
}
