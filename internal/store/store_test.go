package store

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// testFinding fabricates a distinct finding from an index.
func testFinding(i int) Finding {
	return Finding{
		Engine: fmt.Sprintf("engine%d", i%3),
		Oracle: "qpg",
		Kind:   "logic",
		Query:  fmt.Sprintf("SELECT %d", i),
		Detail: fmt.Sprintf("detail %d", i),
	}
}

// testPlanKey fabricates a distinct fingerprint key from an index.
func testPlanKey(i int) [32]byte {
	var fp [32]byte
	fp[0] = byte(i)
	fp[1] = byte(i >> 8)
	fp[31] = 0xA5
	return fp
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

// TestRoundTrip pins the basic contract: everything appended before a
// clean Close is recovered by the next Open, deduplicated, with the
// latest checkpoint per task.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if !s.Recovered().Empty() {
		t.Fatal("fresh directory must recover empty")
	}
	if err := s.AppendMeta([]byte("config v1")); err != nil {
		t.Fatal(err)
	}
	var wantPlans [][32]byte
	var wantFindings []Finding
	for i := 0; i < 40; i++ {
		fp := testPlanKey(i)
		fresh, err := s.AppendPlan(fp)
		if err != nil {
			t.Fatal(err)
		}
		if !fresh {
			t.Fatalf("plan %d reported duplicate on first append", i)
		}
		wantPlans = append(wantPlans, fp)
		f := testFinding(i)
		fresh, err = s.AppendFinding(f)
		if err != nil {
			t.Fatal(err)
		}
		if !fresh {
			t.Fatalf("finding %d reported duplicate on first append", i)
		}
		wantFindings = append(wantFindings, f)
	}
	// Duplicates must not re-log.
	if fresh, err := s.AppendPlan(testPlanKey(7)); err != nil || fresh {
		t.Fatalf("duplicate plan: fresh=%v err=%v", fresh, err)
	}
	if fresh, err := s.AppendFinding(testFinding(7)); err != nil || fresh {
		t.Fatalf("duplicate finding: fresh=%v err=%v", fresh, err)
	}
	cp := TaskProgress{Engine: "postgresql", Oracle: "qpg", Queries: 10}
	if err := s.Checkpoint(cp); err != nil {
		t.Fatal(err)
	}
	cp.Done, cp.Queries, cp.Mutations = true, 30, 4
	if err := s.Checkpoint(cp); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close must be a no-op: %v", err)
	}

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	rec := r.Recovered()
	if string(rec.Meta) != "config v1" {
		t.Errorf("meta = %q", rec.Meta)
	}
	if rec.DroppedBytes != 0 || rec.Truncated != 0 {
		t.Errorf("clean close must not drop bytes: %+v", rec)
	}
	if len(rec.Plans) != len(wantPlans) {
		t.Fatalf("recovered %d plans, want %d", len(rec.Plans), len(wantPlans))
	}
	got := map[[32]byte]bool{}
	for _, fp := range rec.Plans {
		got[fp] = true
	}
	for _, fp := range wantPlans {
		if !got[fp] {
			t.Fatalf("plan %x lost", fp[:4])
		}
	}
	if len(rec.Findings) != len(wantFindings) {
		t.Fatalf("recovered %d findings, want %d", len(rec.Findings), len(wantFindings))
	}
	gotF := map[uint64]bool{}
	for _, f := range rec.Findings {
		gotF[f.key()] = true
	}
	for _, f := range wantFindings {
		if !gotF[f.key()] {
			t.Fatalf("finding %+v lost", f)
		}
	}
	p, ok := rec.Progress[TaskKey{Engine: "postgresql", Oracle: "qpg"}]
	if !ok || !p.Done || p.Queries != 30 || p.Mutations != 4 {
		t.Errorf("latest checkpoint not recovered: %+v (ok=%v)", p, ok)
	}
	if len(rec.Tasks()) != 1 {
		t.Errorf("Tasks() = %v", rec.Tasks())
	}
	// Appending after recovery continues to dedup against the log.
	if fresh, err := r.AppendPlan(testPlanKey(3)); err != nil || fresh {
		t.Errorf("recovered plan index lost key 3: fresh=%v err=%v", fresh, err)
	}
	if fresh, err := r.AppendFinding(testFinding(3)); err != nil || fresh {
		t.Errorf("recovered finding index lost finding 3: fresh=%v err=%v", fresh, err)
	}
}

// buildSingleShardLog writes a known record sequence through a
// single-shard store and returns the shard file path plus the expected
// per-record recovery states: after k intact records, expect[k] counts.
type logState struct {
	plans, findings, progress int
}

func buildSingleShardLog(t *testing.T, dir string) (path string, states []logState, boundaries []int) {
	t.Helper()
	s := mustOpen(t, dir, Options{Shards: 1})
	appendOne := func(i int) {
		switch i % 3 {
		case 0:
			if _, err := s.AppendPlan(testPlanKey(i)); err != nil {
				t.Fatal(err)
			}
		case 1:
			if _, err := s.AppendFinding(testFinding(i)); err != nil {
				t.Fatal(err)
			}
		default:
			if err := s.Checkpoint(TaskProgress{Engine: fmt.Sprintf("e%d", i), Oracle: "tlp", Queries: i}); err != nil {
				t.Fatal(err)
			}
		}
	}
	const records = 12
	var st logState
	states = append(states, st)
	for i := 0; i < records; i++ {
		appendOne(i)
		switch i % 3 {
		case 0:
			st.plans++
		case 1:
			st.findings++
		default:
			st.progress++
		}
		states = append(states, st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path = filepath.Join(dir, "shard-000.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct frame boundaries with the parser itself.
	off := 0
	boundaries = append(boundaries, 0)
	for off < len(data) {
		_, _, size, err := parseFrame(data[off:])
		if err != nil {
			t.Fatalf("valid log failed to parse at %d: %v", off, err)
		}
		off += size
		boundaries = append(boundaries, off)
	}
	if len(boundaries) != records+1 {
		t.Fatalf("log has %d frames, want %d", len(boundaries)-1, records)
	}
	return path, states, boundaries
}

// TestRecoverTruncateAnywhere is the tentpole property: for EVERY byte
// offset of a multi-record log, Open succeeds and recovers exactly the
// record prefix that is fully intact, truncating the rest.
func TestRecoverTruncateAnywhere(t *testing.T) {
	srcDir := t.TempDir()
	path, states, boundaries := buildSingleShardLog(t, srcDir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	workDir := t.TempDir()
	workPath := filepath.Join(workDir, "shard-000.log")
	for cut := 0; cut <= len(data); cut++ {
		// Intact records = frames that end at or before the cut.
		intact := 0
		for intact+1 < len(boundaries) && boundaries[intact+1] <= cut {
			intact++
		}
		want := states[intact]
		if err := os.WriteFile(workPath, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(workDir, Options{Shards: 1})
		if err != nil {
			t.Fatalf("cut %d: Open failed: %v", cut, err)
		}
		rec := s.Recovered()
		if len(rec.Plans) != want.plans || len(rec.Findings) != want.findings || len(rec.Progress) != want.progress {
			t.Fatalf("cut %d: recovered {%d %d %d}, want %+v",
				cut, len(rec.Plans), len(rec.Findings), len(rec.Progress), want)
		}
		wantDrop := int64(cut - boundaries[intact])
		if rec.DroppedBytes != wantDrop {
			t.Fatalf("cut %d: dropped %d bytes, want %d", cut, rec.DroppedBytes, wantDrop)
		}
		// The file must be truncated back to the last frame boundary so
		// appends continue cleanly.
		fi, err := os.Stat(workPath)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if fi.Size() != int64(boundaries[intact]) {
			t.Fatalf("cut %d: file size %d, want %d", cut, fi.Size(), boundaries[intact])
		}
		if err := s.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
	}
}

// TestRecoverBitFlipAnywhere flips every bit of a valid log, one at a
// time, and asserts recovery never decodes the corrupt frame: the
// recovered state is exactly the prefix of records before the flipped
// frame.
func TestRecoverBitFlipAnywhere(t *testing.T) {
	srcDir := t.TempDir()
	path, states, boundaries := buildSingleShardLog(t, srcDir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	workDir := t.TempDir()
	workPath := filepath.Join(workDir, "shard-000.log")
	for bit := int64(0); bit < int64(len(data))*8; bit++ {
		corrupted := append([]byte(nil), data...)
		corrupted[bit/8] ^= 1 << (bit % 8)
		if err := os.WriteFile(workPath, corrupted, 0o644); err != nil {
			t.Fatal(err)
		}
		// The flipped frame is the one whose byte range covers bit/8.
		frame := 0
		for frame+1 < len(boundaries) && boundaries[frame+1] <= int(bit/8) {
			frame++
		}
		want := states[frame]
		s, err := Open(workDir, Options{Shards: 1})
		if err != nil {
			t.Fatalf("bit %d: Open failed: %v", bit, err)
		}
		rec := s.Recovered()
		if len(rec.Plans) != want.plans || len(rec.Findings) != want.findings || len(rec.Progress) != want.progress {
			t.Fatalf("bit %d (frame %d): recovered {%d %d %d}, want %+v",
				bit, frame, len(rec.Plans), len(rec.Findings), len(rec.Progress), want)
		}
		if rec.Truncated != 1 {
			t.Fatalf("bit %d: Truncated = %d, want 1", bit, rec.Truncated)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("bit %d: close: %v", bit, err)
		}
	}
}

// TestRecoverEdgeCases covers the odd directory states recovery must
// shrug at.
func TestRecoverEdgeCases(t *testing.T) {
	t.Run("missing-directory", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "a", "b", "store")
		s := mustOpen(t, dir, Options{})
		if _, err := s.AppendPlan(testPlanKey(1)); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if got := mustOpen(t, dir, Options{}); got.Plans() != 1 {
			t.Errorf("plans = %d, want 1", got.Plans())
		}
	})
	t.Run("zero-length-log", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "shard-000.log"), nil, 0o644); err != nil {
			t.Fatal(err)
		}
		s := mustOpen(t, dir, Options{})
		defer s.Close()
		if !s.Recovered().Empty() {
			t.Errorf("zero-length log must recover empty: %+v", s.Recovered())
		}
	})
	t.Run("checkpoint-only-log", func(t *testing.T) {
		dir := t.TempDir()
		s := mustOpen(t, dir, Options{})
		for i := 0; i < 5; i++ {
			if err := s.Checkpoint(TaskProgress{Engine: "mysql", Oracle: "cert", Queries: i * 10, Done: i == 4}); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		r := mustOpen(t, dir, Options{})
		defer r.Close()
		rec := r.Recovered()
		if len(rec.Plans) != 0 || len(rec.Findings) != 0 {
			t.Errorf("checkpoint-only log recovered data records: %+v", rec)
		}
		p := rec.Progress[TaskKey{Engine: "mysql", Oracle: "cert"}]
		if !p.Done || p.Queries != 40 {
			t.Errorf("latest checkpoint wins: %+v", p)
		}
	})
	t.Run("duplicate-fingerprints-across-shards", func(t *testing.T) {
		// A shard-count change can land the same fingerprint in two shard
		// files; recovery must dedup across shards, not per file.
		dir := t.TempDir()
		fp := testPlanKey(9)
		f := testFinding(9)
		for _, name := range []string{"shard-000.log", "shard-001.log"} {
			var b []byte
			b = appendFrame(b, recPlan, fp[:])
			b = appendFrame(b, recFinding, appendFindingPayload(nil, f))
			if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		s := mustOpen(t, dir, Options{Shards: 8})
		defer s.Close()
		rec := s.Recovered()
		if len(rec.Plans) != 1 || len(rec.Findings) != 1 {
			t.Errorf("cross-shard dedup failed: %d plans, %d findings", len(rec.Plans), len(rec.Findings))
		}
		// And the rebuilt index still dedups new appends.
		if fresh, err := s.AppendPlan(fp); err != nil || fresh {
			t.Errorf("AppendPlan after cross-shard recovery: fresh=%v err=%v", fresh, err)
		}
	})
	t.Run("unknown-record-type-skipped", func(t *testing.T) {
		dir := t.TempDir()
		var b []byte
		fp := testPlanKey(1)
		b = appendFrame(b, recPlan, fp[:])
		b = appendFrame(b, 0x7F, []byte("future record type"))
		fp2 := testPlanKey(2)
		b = appendFrame(b, recPlan, fp2[:])
		if err := os.WriteFile(filepath.Join(dir, "shard-000.log"), b, 0o644); err != nil {
			t.Fatal(err)
		}
		s := mustOpen(t, dir, Options{})
		defer s.Close()
		if len(s.Recovered().Plans) != 2 {
			t.Errorf("records after an unknown type lost: %+v", s.Recovered())
		}
	})
	t.Run("valid-crc-bad-payload-fails-loudly", func(t *testing.T) {
		dir := t.TempDir()
		b := appendFrame(nil, recFinding, []byte{0xFF, 0xFF}) // CRC-valid, undecodable
		if err := os.WriteFile(filepath.Join(dir, "shard-000.log"), b, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{}); err == nil {
			t.Error("a CRC-valid frame with a malformed payload is a writer bug and must fail Open")
		}
	})
}

// TestMetaConflict: one log, one configuration.
func TestMetaConflict(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.AppendMeta([]byte("cfg-a")); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendMeta([]byte("cfg-a")); err != nil {
		t.Fatalf("idempotent re-stamp must succeed: %v", err)
	}
	if err := s.AppendMeta([]byte("cfg-b")); err == nil {
		t.Fatal("conflicting meta must be rejected")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if string(r.Meta()) != "cfg-a" {
		t.Errorf("recovered meta = %q", r.Meta())
	}
}

// TestStoreConcurrentAppend hammers one store from many goroutines — the
// -race test for the append path — then verifies a clean reopen round-
// trips exactly the deduplicated set.
func TestStoreConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	const goroutines = 8
	const perG = 150
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := s.AppendPlan(testPlanKey(i % 60)); err != nil {
					errs[g] = err
					return
				}
				if _, err := s.AppendFinding(testFinding(i % 40)); err != nil {
					errs[g] = err
					return
				}
				if i%50 == 0 {
					if err := s.Checkpoint(TaskProgress{Engine: fmt.Sprintf("g%d", g), Oracle: "qpg", Queries: i}); err != nil {
						errs[g] = err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	if s.Plans() != 60 || s.Findings() != 40 {
		t.Fatalf("store holds %d plans / %d findings, want 60 / 40", s.Plans(), s.Findings())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	rec := r.Recovered()
	if len(rec.Plans) != 60 || len(rec.Findings) != 40 || len(rec.Progress) != goroutines {
		t.Errorf("recovered {%d %d %d}, want {60 40 %d}", len(rec.Plans), len(rec.Findings), len(rec.Progress), goroutines)
	}
	if rec.DroppedBytes != 0 {
		t.Errorf("clean close dropped %d bytes", rec.DroppedBytes)
	}
}

// TestFrameRoundTrip pins the codec at the byte level.
func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {0}, []byte("hello"), make([]byte, 1000)}
	var b []byte
	for i, p := range payloads {
		b = appendFrame(b, byte(i+1), p)
	}
	off := 0
	for i, p := range payloads {
		typ, payload, size, err := parseFrame(b[off:])
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != byte(i+1) || !reflect.DeepEqual(append([]byte{}, payload...), append([]byte{}, p...)) {
			t.Fatalf("frame %d round-trip mismatch", i)
		}
		off += size
	}
	if off != len(b) {
		t.Fatalf("trailing bytes: %d != %d", off, len(b))
	}
}

// TestProgressPayloadRoundTrip covers the checkpoint codec including
// zero values and the done flag.
func TestProgressPayloadRoundTrip(t *testing.T) {
	cases := []TaskProgress{
		{},
		{Engine: "postgresql", Oracle: "qpg", Done: true, Queries: 1 << 30, Statements: 7, PlanQueries: 3, NewPlans: 2, DistinctPlans: 9, Mutations: 1, Checks: 0, Skipped: 5},
		{Engine: "", Oracle: "tlp", Queries: 0},
		{Engine: "sqlite", Oracle: "bounds", Done: true, Queries: 25, Skipped: 11, Extra: map[string]int{"unbounded": 7, "no-estimate": 4}},
	}
	for i, p := range cases {
		got, err := decodeProgressPayload(appendProgressPayload(nil, p))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("case %d: %+v != %+v", i, got, p)
		}
	}
	// Records written before the extra-counter tail existed decode with a
	// nil Extra map; the tail is strictly optional.
	legacy := appendProgressPayload(nil, TaskProgress{Engine: "mysql", Oracle: "cert", Done: true, Queries: 3})
	if got, err := decodeProgressPayload(legacy); err != nil || got.Extra != nil {
		t.Fatalf("legacy payload: %+v, %v", got, err)
	}
	if _, err := decodeProgressPayload([]byte{0, 0, 2}); err == nil {
		t.Error("bad done flag must be rejected")
	}
}
