package store

import (
	"encoding/binary"
	"errors"
	"hash/fnv"
	"sort"
)

// Finding is one persisted campaign discovery. The store keeps its own
// flat string form of the campaign's finding type so the dependency
// points the right way: campaign imports store, never the reverse.
type Finding struct {
	Engine string
	Oracle string
	Kind   string
	Query  string
	Detail string
}

// key hashes the finding's full identity for the store's dedup index.
func (f Finding) key() uint64 {
	h := fnv.New64a()
	for _, part := range [...]string{f.Engine, f.Oracle, f.Kind, f.Query, f.Detail} {
		h.Write([]byte(part))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// TaskKey identifies one campaign (engine, oracle) task.
type TaskKey struct {
	Engine string
	Oracle string
}

// TaskProgress is one checkpoint record: a task's identity, whether it
// has run to completion, and its counter snapshot. For a Done task the
// counters are the task's final statistics, which is what lets a resumed
// campaign report the exact stats of an uninterrupted run without
// re-running the task.
type TaskProgress struct {
	Engine string
	Oracle string
	Done   bool
	// Counter snapshot, mirroring campaign.EngineStats' per-task share.
	Queries       int
	Statements    int
	PlanQueries   int
	NewPlans      int
	DistinctPlans int
	Mutations     int
	Checks        int
	Skipped       int
	// Extra carries oracle-owned named counters (the bounds oracle's
	// "unbounded", for instance). Encoded as an optional sorted tail after
	// the fixed counters: records written without it decode with a nil
	// map, so old logs stay readable.
	Extra map[string]int
}

// Key returns the progress record's task identity.
func (p TaskProgress) Key() TaskKey { return TaskKey{Engine: p.Engine, Oracle: p.Oracle} }

var errBadPayload = errors.New("store: malformed record payload")

// appendString appends a uvarint-length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// readString consumes a uvarint-length-prefixed string.
func readString(b []byte) (string, []byte, error) {
	n, vn := binary.Uvarint(b)
	if vn <= 0 || n > uint64(len(b)-vn) {
		return "", nil, errBadPayload
	}
	return string(b[vn : vn+int(n)]), b[vn+int(n):], nil
}

// readUvarint consumes one uvarint counter.
func readUvarint(b []byte) (int, []byte, error) {
	n, vn := binary.Uvarint(b)
	if vn <= 0 || n > 1<<62 {
		return 0, nil, errBadPayload
	}
	return int(n), b[vn:], nil
}

// appendFindingPayload encodes a finding as five length-prefixed strings.
func appendFindingPayload(dst []byte, f Finding) []byte {
	dst = appendString(dst, f.Engine)
	dst = appendString(dst, f.Oracle)
	dst = appendString(dst, f.Kind)
	dst = appendString(dst, f.Query)
	return appendString(dst, f.Detail)
}

// decodeFindingPayload is appendFindingPayload's inverse. Trailing bytes
// are an encoding-layer fault and rejected.
func decodeFindingPayload(b []byte) (Finding, error) {
	var f Finding
	var err error
	for _, dst := range [...]*string{&f.Engine, &f.Oracle, &f.Kind, &f.Query, &f.Detail} {
		if *dst, b, err = readString(b); err != nil {
			return Finding{}, err
		}
	}
	if len(b) != 0 {
		return Finding{}, errBadPayload
	}
	return f, nil
}

// appendProgressPayload encodes a checkpoint record: identity, done
// flag, then the eight counters as uvarints.
func appendProgressPayload(dst []byte, p TaskProgress) []byte {
	dst = appendString(dst, p.Engine)
	dst = appendString(dst, p.Oracle)
	if p.Done {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	for _, n := range [...]int{
		p.Queries, p.Statements, p.PlanQueries, p.NewPlans,
		p.DistinctPlans, p.Mutations, p.Checks, p.Skipped,
	} {
		if n < 0 {
			n = 0
		}
		dst = binary.AppendUvarint(dst, uint64(n))
	}
	// Optional extra-counter tail: entry count, then sorted (name, value)
	// pairs. Omitted entirely when empty so records without extras keep
	// their original byte form; sorted so encoding is deterministic.
	if len(p.Extra) > 0 {
		keys := make([]string, 0, len(p.Extra))
		for k := range p.Extra {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		dst = binary.AppendUvarint(dst, uint64(len(keys)))
		for _, k := range keys {
			dst = appendString(dst, k)
			n := p.Extra[k]
			if n < 0 {
				n = 0
			}
			dst = binary.AppendUvarint(dst, uint64(n))
		}
	}
	return dst
}

// decodeProgressPayload is appendProgressPayload's inverse.
func decodeProgressPayload(b []byte) (TaskProgress, error) {
	var p TaskProgress
	var err error
	if p.Engine, b, err = readString(b); err != nil {
		return TaskProgress{}, err
	}
	if p.Oracle, b, err = readString(b); err != nil {
		return TaskProgress{}, err
	}
	if len(b) == 0 || b[0] > 1 {
		return TaskProgress{}, errBadPayload
	}
	p.Done = b[0] == 1
	b = b[1:]
	for _, dst := range [...]*int{
		&p.Queries, &p.Statements, &p.PlanQueries, &p.NewPlans,
		&p.DistinctPlans, &p.Mutations, &p.Checks, &p.Skipped,
	} {
		if *dst, b, err = readUvarint(b); err != nil {
			return TaskProgress{}, err
		}
	}
	if len(b) > 0 {
		var count int
		if count, b, err = readUvarint(b); err != nil {
			return TaskProgress{}, err
		}
		if count > 0 {
			p.Extra = make(map[string]int, count)
			for i := 0; i < count; i++ {
				var k string
				var n int
				if k, b, err = readString(b); err != nil {
					return TaskProgress{}, err
				}
				if n, b, err = readUvarint(b); err != nil {
					return TaskProgress{}, err
				}
				p.Extra[k] = n
			}
		}
	}
	if len(b) != 0 {
		return TaskProgress{}, errBadPayload
	}
	return p, nil
}
