package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"uplan/internal/store/faultio"
)

// faultyOpener returns an Opener that wraps the default OS file in a
// faultio.Writer driven by one shared Faults value. With a single shard
// the byte offsets are deterministic.
func faultyOpener(f *faultio.Faults) Opener {
	return func(path string) (WriteSyncer, error) {
		ws, err := OpenFile(path)
		if err != nil {
			return nil, err
		}
		return faultio.Wrap(ws, f), nil
	}
}

// TestAppendFailureSticksAndSurfaces: a torn write surfaces its error,
// every subsequent append fails with the same error (the tail is
// unknown), and reopening recovers exactly the records that fully made
// it to disk before the fault.
func TestAppendFailureSticksAndSurfaces(t *testing.T) {
	dir := t.TempDir()
	faults := faultio.NewFaults()
	s := mustOpen(t, dir, Options{Shards: 1, Open: faultyOpener(faults)})

	// Let a few records through, then fail mid-frame.
	good := 0
	for i := 0; i < 3; i++ {
		if _, err := s.AppendFinding(testFinding(i)); err != nil {
			t.Fatal(err)
		}
		good++
	}
	fi, err := os.Stat(filepath.Join(dir, "shard-000.log"))
	if err != nil {
		t.Fatal(err)
	}
	faults.FailAt = fi.Size() + 5 // tear the next frame a few bytes in

	_, err = s.AppendFinding(testFinding(3))
	if !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("torn write error = %v, want ErrInjected", err)
	}
	// Sticky: later appends must refuse, reporting the original fault.
	if _, err2 := s.AppendFinding(testFinding(4)); !errors.Is(err2, faultio.ErrInjected) {
		t.Fatalf("append after fault = %v, want sticky ErrInjected", err2)
	}
	if _, err2 := s.AppendPlan(testPlanKey(1)); !errors.Is(err2, faultio.ErrInjected) {
		t.Fatalf("plan append after fault = %v, want sticky ErrInjected", err2)
	}
	if err2 := s.Checkpoint(TaskProgress{Engine: "e", Oracle: "qpg"}); !errors.Is(err2, faultio.ErrInjected) {
		t.Fatalf("checkpoint after fault = %v, want sticky ErrInjected", err2)
	}
	// Close still closes, still reports the fault.
	if err2 := s.Close(); !errors.Is(err2, faultio.ErrInjected) {
		t.Fatalf("close after fault = %v, want ErrInjected", err2)
	}

	// The torn tail truncates on reopen; the intact prefix survives.
	r := mustOpen(t, dir, Options{Shards: 1})
	defer r.Close()
	rec := r.Recovered()
	if len(rec.Findings) != good {
		t.Fatalf("recovered %d findings, want %d", len(rec.Findings), good)
	}
	if rec.Truncated != 1 || rec.DroppedBytes != 5 {
		t.Errorf("truncation report = %d shards / %d bytes, want 1 / 5", rec.Truncated, rec.DroppedBytes)
	}
}

// TestShortWriteDefended: a writer that violates the io.Writer contract
// (n < len(p) with a nil error) must still be caught — the store turns
// it into io.ErrShortWrite and sticks.
func TestShortWriteDefended(t *testing.T) {
	dir := t.TempDir()
	faults := faultio.NewFaults()
	s := mustOpen(t, dir, Options{Shards: 1, Open: faultyOpener(faults)})
	if _, err := s.AppendFinding(testFinding(0)); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(filepath.Join(dir, "shard-000.log"))
	if err != nil {
		t.Fatal(err)
	}
	faults.ShortAt = fi.Size() + 8 // shorten the next frame mid-payload
	if _, err := s.AppendFinding(testFinding(1)); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short write surfaced as %v, want io.ErrShortWrite", err)
	}
	if _, err := s.AppendFinding(testFinding(9)); err == nil {
		t.Fatal("store must stick after a short write")
	}
	_ = s.Close() // reports the sticky fault; the handle still closes
	r := mustOpen(t, dir, Options{Shards: 1})
	defer r.Close()
	if got := len(r.Recovered().Findings); got != 1 {
		t.Errorf("recovered %d findings, want exactly the pre-fault record", got)
	}
}

// TestSyncFailureSurfaces: a failing fsync is oracle-grade signal, not
// noise — Sync and Checkpoint must both report it.
func TestSyncFailureSurfaces(t *testing.T) {
	dir := t.TempDir()
	faults := faultio.NewFaults()
	faults.SyncErr = fmt.Errorf("%w: EIO on fsync", faultio.ErrInjected)
	s := mustOpen(t, dir, Options{Shards: 1, Open: faultyOpener(faults)})
	if _, err := s.AppendFinding(testFinding(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("Sync = %v, want injected EIO", err)
	}
	if err := s.Checkpoint(TaskProgress{Engine: "e", Oracle: "qpg"}); !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("Checkpoint = %v, want injected EIO", err)
	}
}

// TestInFlightBitFlipRejected: corruption injected between the store and
// the disk is caught by the CRC on recovery — the flipped record and
// everything after it truncate away, and nothing garbled is decoded.
func TestInFlightBitFlipRejected(t *testing.T) {
	dir := t.TempDir()
	faults := faultio.NewFaults()
	// Flip a bit inside the second frame's payload region. The first
	// frame's size is discovered after writing it.
	s := mustOpen(t, dir, Options{Shards: 1, Open: faultyOpener(faults)})
	if _, err := s.AppendFinding(testFinding(0)); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(filepath.Join(dir, "shard-000.log"))
	if err != nil {
		t.Fatal(err)
	}
	faults.FlipBit = (fi.Size() + 6) * 8 // a payload byte of the next frame
	if _, err := s.AppendFinding(testFinding(1)); err != nil {
		t.Fatal(err) // the flip is silent — that is the point
	}
	if _, err := s.AppendFinding(testFinding(2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, Options{Shards: 1})
	defer r.Close()
	rec := r.Recovered()
	if len(rec.Findings) != 1 {
		t.Fatalf("recovered %d findings, want 1 (pre-corruption prefix)", len(rec.Findings))
	}
	if rec.Findings[0] != testFinding(0) {
		t.Errorf("recovered finding garbled: %+v", rec.Findings[0])
	}
	if rec.Truncated != 1 {
		t.Errorf("Truncated = %d, want 1", rec.Truncated)
	}
}

// TestAtRestBitFlipRejected uses the on-disk flipper on a cleanly closed
// log: same contract, corruption at rest.
func TestAtRestBitFlipRejected(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Shards: 1})
	for i := 0; i < 4; i++ {
		if _, err := s.AppendPlan(testPlanKey(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "shard-000.log")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the third frame. Frames are equal-sized here (same
	// record type and payload length), so boundaries divide evenly.
	frame := fi.Size() / 4
	if err := faultio.FlipBitOnDisk(path, (2*frame+3)*8); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, Options{Shards: 1})
	defer r.Close()
	if got := len(r.Recovered().Plans); got != 2 {
		t.Errorf("recovered %d plans, want 2", got)
	}
}
