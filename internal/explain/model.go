// Package explain models DBMS-native query plans and serializes them into
// each engine's documented wire formats (paper Table III): PostgreSQL
// text/JSON/XML/YAML, MySQL TREE/JSON/TABLE, TiDB table/JSON, SQLite
// EXPLAIN QUERY PLAN text, MongoDB explain JSON, Neo4j plan table,
// SparkSQL physical-plan text, SQL Server showplan XML, and InfluxDB's
// property list. The serialized output is what UPlan's converters
// (internal/convert) parse — exactly the interface the paper's UPlan
// library consumes from real systems.
package explain

import (
	"fmt"
	"strconv"
	"strings"
)

// Prop is one native property: a key and a scalar value.
type Prop struct {
	Key string
	Val any // string, float64, int, int64 or bool
}

// Node is one operator of a native plan.
type Node struct {
	// Name is the dialect operator name, e.g. "Seq Scan" or "TableFullScan_5".
	Name string
	// Object is the accessed table/index/collection, when applicable.
	Object string
	Props  []Prop
	// Task is the TiDB-style task placement ("root", "cop[tikv]").
	Task     string
	Children []*Node
}

// Plan is a full native plan with plan-level properties.
type Plan struct {
	Dialect   string
	Root      *Node
	PlanProps []Prop
}

// NewNode constructs a native node.
func NewNode(name string, children ...*Node) *Node {
	return &Node{Name: name, Children: children}
}

// Add appends a property and returns the node for chaining.
func (n *Node) Add(key string, val any) *Node {
	n.Props = append(n.Props, Prop{Key: key, Val: val})
	return n
}

// Prop returns the value of the named property and whether it exists.
func (n *Node) Prop(key string) (any, bool) {
	for _, p := range n.Props {
		if p.Key == key {
			return p.Val, true
		}
	}
	return nil, false
}

// Walk visits all nodes in pre-order.
func (p *Plan) Walk(fn func(n *Node, depth int)) {
	var walk func(n *Node, d int)
	walk = func(n *Node, d int) {
		if n == nil {
			return
		}
		fn(n, d)
		for _, c := range n.Children {
			walk(c, d+1)
		}
	}
	walk(p.Root, 0)
}

// FormatVal renders a property value for textual formats.
func FormatVal(v any) string {
	switch t := v.(type) {
	case string:
		return t
	case bool:
		return strconv.FormatBool(t)
	case int:
		return strconv.Itoa(t)
	case int64:
		return strconv.FormatInt(t, 10)
	case float64:
		if t == float64(int64(t)) && t < 1e15 && t > -1e15 {
			return strconv.FormatInt(int64(t), 10)
		}
		return strconv.FormatFloat(t, 'f', 2, 64)
	case nil:
		return ""
	default:
		return fmt.Sprint(t)
	}
}

// Format identifies a serialization format.
type Format string

// The serialization formats of the studied DBMSs.
const (
	FormatText  Format = "TEXT"
	FormatTable Format = "TABLE"
	FormatJSON  Format = "JSON"
	FormatXML   Format = "XML"
	FormatYAML  Format = "YAML"
	FormatGraph Format = "GRAPH" // DOT output, standing in for IDE graphs
)

// Serialize renders the plan in the requested format using the dialect's
// conventions. It fails for formats the dialect does not support.
func Serialize(p *Plan, f Format) (string, error) {
	switch p.Dialect {
	case "postgresql":
		switch f {
		case FormatText:
			return PostgresText(p), nil
		case FormatJSON:
			return PostgresJSON(p)
		case FormatXML:
			return PostgresXML(p), nil
		case FormatYAML:
			return PostgresYAML(p), nil
		case FormatGraph:
			return DOT(p), nil
		}
	case "mysql":
		switch f {
		case FormatText:
			return MySQLTree(p), nil
		case FormatJSON:
			return MySQLJSON(p)
		case FormatTable:
			return MySQLTable(p), nil
		case FormatGraph:
			return DOT(p), nil
		}
	case "tidb":
		switch f {
		case FormatTable, FormatText:
			return TiDBTable(p), nil
		case FormatJSON:
			return TiDBJSON(p)
		case FormatGraph:
			return DOT(p), nil
		}
	case "sqlite":
		if f == FormatText {
			return SQLiteText(p), nil
		}
	case "mongodb":
		switch f {
		case FormatJSON:
			return MongoJSON(p)
		case FormatGraph:
			return DOT(p), nil
		}
	case "neo4j":
		switch f {
		case FormatText, FormatTable:
			return Neo4jTable(p), nil
		case FormatJSON:
			return Neo4jJSON(p)
		case FormatGraph:
			return DOT(p), nil
		}
	case "sparksql":
		switch f {
		case FormatText:
			return SparkText(p), nil
		case FormatGraph:
			return DOT(p), nil
		}
	case "sqlserver":
		switch f {
		case FormatXML:
			return SQLServerXML(p), nil
		case FormatText:
			return SQLServerText(p), nil
		case FormatTable:
			return SQLServerTable(p), nil
		case FormatGraph:
			return DOT(p), nil
		}
	case "influxdb":
		if f == FormatText {
			return InfluxText(p), nil
		}
	}
	return "", fmt.Errorf("explain: dialect %q does not support format %s", p.Dialect, f)
}

// DOT renders any native plan as a Graphviz digraph; it stands in for the
// graph formats of the engines' IDEs (MySQL Workbench, MongoDB Compass, …).
func DOT(p *Plan) string {
	var b strings.Builder
	b.WriteString("digraph plan {\n  node [shape=box];\n")
	id := 0
	var walk func(n *Node) int
	walk = func(n *Node) int {
		my := id
		id++
		label := n.Name
		if n.Object != "" {
			label += "\\n" + n.Object
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\"];\n", my, label)
		for _, c := range n.Children {
			ci := walk(c)
			fmt.Fprintf(&b, "  n%d -> n%d;\n", my, ci)
		}
		return my
	}
	if p.Root != nil {
		walk(p.Root)
	}
	b.WriteString("}\n")
	return b.String()
}
