package explain

import (
	"encoding/json"
	"fmt"
	"strings"
)

// PostgreSQL serializations. The text format follows the EXPLAIN output
// documented for PostgreSQL 14 (paper Listing 1): operator lines with
// "(cost=startup..total rows=N width=W)" annotations, "->"-prefixed
// children indented six columns per level, property lines beneath their
// operator, and plan-level lines ("Planning Time: …") at the end.

// pgInlineProps are rendered inside the parenthesized annotation rather
// than as property lines.
func pgCostAnnotation(n *Node) string {
	sc, _ := n.Prop("startup_cost")
	tc, _ := n.Prop("total_cost")
	rows, _ := n.Prop("rows")
	width, _ := n.Prop("width")
	ann := fmt.Sprintf("(cost=%s..%s rows=%s width=%s)",
		costVal(sc), costVal(tc), FormatVal(rows), FormatVal(width))
	if ar, ok := n.Prop("actual_rows"); ok {
		at, _ := n.Prop("actual_time_ms")
		loops, lok := n.Prop("loops")
		if !lok {
			loops = 1
		}
		ann += fmt.Sprintf(" (actual time=0.000..%s rows=%s loops=%s)",
			FormatVal(at), FormatVal(ar), FormatVal(loops))
	}
	return ann
}

// costVal renders costs the way PostgreSQL does: always two decimals.
func costVal(v any) string {
	switch t := v.(type) {
	case float64:
		return fmt.Sprintf("%.2f", t)
	case int:
		return fmt.Sprintf("%d.00", t)
	case int64:
		return fmt.Sprintf("%d.00", t)
	}
	return FormatVal(v)
}

var pgHiddenProps = map[string]bool{
	"startup_cost": true, "total_cost": true, "rows": true, "width": true,
	"actual_rows": true, "actual_time_ms": true, "loops": true,
}

// PostgresText renders the plan in PostgreSQL's text format.
func PostgresText(p *Plan) string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		nameCol := 0
		if depth > 0 {
			nameCol = 6 * depth
			b.WriteString(strings.Repeat(" ", nameCol-4))
			b.WriteString("->  ")
		}
		title := n.Name
		if n.Object != "" {
			title += " on " + n.Object
		}
		fmt.Fprintf(&b, "%s  %s\n", title, pgCostAnnotation(n))
		for _, pr := range n.Props {
			if pgHiddenProps[pr.Key] {
				continue
			}
			b.WriteString(strings.Repeat(" ", nameCol+2))
			fmt.Fprintf(&b, "%s: %s\n", pr.Key, FormatVal(pr.Val))
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	if p.Root != nil {
		walk(p.Root, 0)
	}
	for _, pr := range p.PlanProps {
		fmt.Fprintf(&b, "%s: %s\n", pr.Key, FormatVal(pr.Val))
	}
	return b.String()
}

// pgNodeJSON builds the canonical PostgreSQL JSON plan object.
func pgNodeJSON(n *Node) map[string]any {
	m := map[string]any{"Node Type": n.Name}
	if n.Object != "" {
		m["Relation Name"] = n.Object
	}
	for _, pr := range n.Props {
		switch pr.Key {
		case "startup_cost":
			m["Startup Cost"] = pr.Val
		case "total_cost":
			m["Total Cost"] = pr.Val
		case "rows":
			m["Plan Rows"] = pr.Val
		case "width":
			m["Plan Width"] = pr.Val
		case "actual_rows":
			m["Actual Rows"] = pr.Val
		case "actual_time_ms":
			m["Actual Total Time"] = pr.Val
		case "loops":
			m["Actual Loops"] = pr.Val
		default:
			m[pr.Key] = pr.Val
		}
	}
	if len(n.Children) > 0 {
		var kids []any
		for _, c := range n.Children {
			child := pgNodeJSON(c)
			child["Parent Relationship"] = "Outer"
			kids = append(kids, child)
		}
		m["Plans"] = kids
	}
	return m
}

// PostgresJSON renders the plan in PostgreSQL's JSON format:
// a one-element array holding {"Plan": …, "Planning Time": …}.
func PostgresJSON(p *Plan) (string, error) {
	top := map[string]any{}
	if p.Root != nil {
		top["Plan"] = pgNodeJSON(p.Root)
	}
	for _, pr := range p.PlanProps {
		top[pr.Key] = pr.Val
	}
	data, err := json.MarshalIndent([]any{top}, "", "  ")
	if err != nil {
		return "", fmt.Errorf("explain: postgres json: %w", err)
	}
	return string(data), nil
}

// PostgresXML renders the plan in PostgreSQL's XML format.
func PostgresXML(p *Plan) string {
	var b strings.Builder
	b.WriteString("<explain xmlns=\"http://www.postgresql.org/2009/explain\">\n <Query>\n")
	var walk func(n *Node, indent string)
	walk = func(n *Node, indent string) {
		b.WriteString(indent + "<Plan>\n")
		fmt.Fprintf(&b, "%s <Node-Type>%s</Node-Type>\n", indent, xmlEscape(n.Name))
		if n.Object != "" {
			fmt.Fprintf(&b, "%s <Relation-Name>%s</Relation-Name>\n", indent, xmlEscape(n.Object))
		}
		for _, pr := range n.Props {
			tag := strings.ReplaceAll(strings.Title(strings.ReplaceAll(pr.Key, "_", " ")), " ", "-")
			fmt.Fprintf(&b, "%s <%s>%s</%s>\n", indent, tag, xmlEscape(FormatVal(pr.Val)), tag)
		}
		if len(n.Children) > 0 {
			b.WriteString(indent + " <Plans>\n")
			for _, c := range n.Children {
				walk(c, indent+"  ")
			}
			b.WriteString(indent + " </Plans>\n")
		}
		b.WriteString(indent + "</Plan>\n")
	}
	if p.Root != nil {
		walk(p.Root, "  ")
	}
	for _, pr := range p.PlanProps {
		tag := strings.ReplaceAll(strings.Title(pr.Key), " ", "-")
		fmt.Fprintf(&b, "  <%s>%s</%s>\n", tag, xmlEscape(FormatVal(pr.Val)), tag)
	}
	b.WriteString(" </Query>\n</explain>\n")
	return b.String()
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// PostgresYAML renders the plan in PostgreSQL's YAML format.
func PostgresYAML(p *Plan) string {
	var b strings.Builder
	b.WriteString("- Plan:\n")
	var walk func(n *Node, indent string)
	walk = func(n *Node, indent string) {
		fmt.Fprintf(&b, "%sNode Type: %q\n", indent, n.Name)
		if n.Object != "" {
			fmt.Fprintf(&b, "%sRelation Name: %q\n", indent, n.Object)
		}
		for _, pr := range n.Props {
			if s, ok := pr.Val.(string); ok {
				fmt.Fprintf(&b, "%s%s: %q\n", indent, pr.Key, s)
			} else {
				fmt.Fprintf(&b, "%s%s: %s\n", indent, pr.Key, FormatVal(pr.Val))
			}
		}
		if len(n.Children) > 0 {
			fmt.Fprintf(&b, "%sPlans:\n", indent)
			for _, c := range n.Children {
				fmt.Fprintf(&b, "%s- ", indent)
				// First key inline after the dash, rest indented.
				inner := indent + "  "
				fmt.Fprintf(&b, "Node Type: %q\n", c.Name)
				if c.Object != "" {
					fmt.Fprintf(&b, "%sRelation Name: %q\n", inner, c.Object)
				}
				for _, pr := range c.Props {
					if s, ok := pr.Val.(string); ok {
						fmt.Fprintf(&b, "%s%s: %q\n", inner, pr.Key, s)
					} else {
						fmt.Fprintf(&b, "%s%s: %s\n", inner, pr.Key, FormatVal(pr.Val))
					}
				}
				if len(c.Children) > 0 {
					fmt.Fprintf(&b, "%sPlans:\n", inner)
					for _, cc := range c.Children {
						fmt.Fprintf(&b, "%s- ", inner)
						walkInline(&b, cc, inner+"  ")
					}
				}
			}
		}
	}
	if p.Root != nil {
		walk(p.Root, "    ")
	}
	for _, pr := range p.PlanProps {
		fmt.Fprintf(&b, "  %s: %s\n", pr.Key, FormatVal(pr.Val))
	}
	return b.String()
}

func walkInline(b *strings.Builder, n *Node, indent string) {
	fmt.Fprintf(b, "Node Type: %q\n", n.Name)
	if n.Object != "" {
		fmt.Fprintf(b, "%sRelation Name: %q\n", indent, n.Object)
	}
	for _, pr := range n.Props {
		if s, ok := pr.Val.(string); ok {
			fmt.Fprintf(b, "%s%s: %q\n", indent, pr.Key, s)
		} else {
			fmt.Fprintf(b, "%s%s: %s\n", indent, pr.Key, FormatVal(pr.Val))
		}
	}
	if len(n.Children) > 0 {
		fmt.Fprintf(b, "%sPlans:\n", indent)
		for _, c := range n.Children {
			fmt.Fprintf(b, "%s- ", indent)
			walkInline(b, c, indent+"  ")
		}
	}
}
