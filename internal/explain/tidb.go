package explain

import (
	"encoding/json"
	"fmt"
	"strings"
)

// TiDB serializations: the tabular EXPLAIN output (id/estRows/task/access
// object/operator info columns with └─ tree art) and the JSON rendering.

// TiDBTable renders TiDB's default tabular format.
func TiDBTable(p *Plan) string {
	var rows [][]string
	rows = append(rows, []string{"id", "estRows", "task", "access object", "operator info"})
	var walk func(n *Node, prefix string, last bool, root bool)
	walk = func(n *Node, prefix string, last bool, root bool) {
		id := n.Name
		if !root {
			connector := "├─"
			if last {
				connector = "└─"
			}
			id = prefix + connector + n.Name
		}
		est := ""
		if r, ok := n.Prop("rows"); ok {
			est = fmt.Sprintf("%.2f", toF(r))
		}
		task := n.Task
		if task == "" {
			task = "root"
		}
		obj := ""
		if n.Object != "" {
			obj = "table:" + n.Object
		}
		if ix, ok := n.Prop("index"); ok {
			if obj != "" {
				obj += ", "
			}
			obj += "index:" + FormatVal(ix)
		}
		info, _ := n.Prop("operator info")
		rows = append(rows, []string{id, est, task, obj, FormatVal(info)})
		childPrefix := prefix
		if !root {
			if last {
				childPrefix += "  "
			} else {
				childPrefix += "│ "
			}
		}
		for i, c := range n.Children {
			walk(c, childPrefix, i == len(n.Children)-1, false)
		}
	}
	if p.Root != nil {
		walk(p.Root, "", true, true)
	}
	return renderASCIITable(rows)
}

func toF(v any) float64 {
	switch t := v.(type) {
	case float64:
		return t
	case int:
		return float64(t)
	case int64:
		return float64(t)
	}
	return 0
}

type tidbJSONNode struct {
	ID           string         `json:"id"`
	EstRows      string         `json:"estRows"`
	ActRows      string         `json:"actRows,omitempty"`
	TaskType     string         `json:"taskType"`
	AccessObject string         `json:"accessObject,omitempty"`
	OperatorInfo string         `json:"operatorInfo,omitempty"`
	SubOperators []tidbJSONNode `json:"subOperators,omitempty"`
}

func tidbJSON(n *Node) tidbJSONNode {
	est := ""
	if r, ok := n.Prop("rows"); ok {
		est = fmt.Sprintf("%.2f", toF(r))
	}
	task := n.Task
	if task == "" {
		task = "root"
	}
	obj := ""
	if n.Object != "" {
		obj = "table:" + n.Object
	}
	if ix, ok := n.Prop("index"); ok {
		if obj != "" {
			obj += ", "
		}
		obj += "index:" + FormatVal(ix)
	}
	info, _ := n.Prop("operator info")
	out := tidbJSONNode{
		ID: n.Name, EstRows: est, TaskType: task,
		AccessObject: obj, OperatorInfo: FormatVal(info),
	}
	if ar, ok := n.Prop("actual_rows"); ok {
		out.ActRows = FormatVal(ar)
	}
	for _, c := range n.Children {
		out.SubOperators = append(out.SubOperators, tidbJSON(c))
	}
	return out
}

// TiDBJSON renders TiDB's EXPLAIN FORMAT="tidb_json" output: an array with
// the operator tree.
func TiDBJSON(p *Plan) (string, error) {
	var arr []tidbJSONNode
	if p.Root != nil {
		arr = append(arr, tidbJSON(p.Root))
	}
	data, err := json.MarshalIndent(arr, "", "  ")
	if err != nil {
		return "", fmt.Errorf("explain: tidb json: %w", err)
	}
	return string(data), nil
}

// SQLiteText renders SQLite's EXPLAIN QUERY PLAN output (paper Listing 1):
// a QUERY PLAN header followed by |-- / `-- tree art.
func SQLiteText(p *Plan) string {
	var b strings.Builder
	b.WriteString("QUERY PLAN\n")
	var walk func(n *Node, prefix string, last bool)
	walk = func(n *Node, prefix string, last bool) {
		connector := "|--"
		if last {
			connector = "`--"
		}
		line := n.Name
		if n.Object != "" {
			line += " " + n.Object
		}
		if detail, ok := n.Prop("detail"); ok {
			line += " " + FormatVal(detail)
		}
		fmt.Fprintf(&b, "%s%s%s\n", prefix, connector, line)
		childPrefix := prefix + "|  "
		if last {
			childPrefix = prefix + "   "
		}
		for i, c := range n.Children {
			walk(c, childPrefix, i == len(n.Children)-1)
		}
	}
	if p.Root != nil {
		if p.Root.Name == "QUERY PLAN" {
			for i, c := range p.Root.Children {
				walk(c, "", i == len(p.Root.Children)-1)
			}
		} else {
			walk(p.Root, "", true)
		}
	}
	return b.String()
}

// InfluxText renders InfluxDB's EXPLAIN output: a list of plan-level
// properties, no operators.
func InfluxText(p *Plan) string {
	var b strings.Builder
	for _, pr := range p.PlanProps {
		fmt.Fprintf(&b, "%s: %s\n", strings.ToUpper(pr.Key), FormatVal(pr.Val))
	}
	return b.String()
}
