package explain

import (
	"encoding/json"
	"fmt"
	"strings"
)

// MongoDB, Neo4j, SparkSQL, and SQL Server serializations.

func mongoStage(n *Node) map[string]any {
	m := map[string]any{"stage": n.Name}
	if n.Object != "" {
		m["namespace"] = "test." + n.Object
	}
	for _, pr := range n.Props {
		switch pr.Key {
		case "rows", "width", "startup_cost", "total_cost":
			// Mongo exposes no estimates in winningPlan.
		case "actual_rows":
			m["nReturned"] = pr.Val
		default:
			m[pr.Key] = pr.Val
		}
	}
	switch len(n.Children) {
	case 0:
	case 1:
		m["inputStage"] = mongoStage(n.Children[0])
	default:
		var kids []any
		for _, c := range n.Children {
			kids = append(kids, mongoStage(c))
		}
		m["inputStages"] = kids
	}
	return m
}

// MongoJSON renders MongoDB's explain() document with the winning plan.
func MongoJSON(p *Plan) (string, error) {
	qp := map[string]any{
		"plannerVersion": 1,
		"rejectedPlans":  []any{},
	}
	if p.Root != nil {
		qp["winningPlan"] = mongoStage(p.Root)
		if p.Root.Object != "" {
			qp["namespace"] = "test." + p.Root.Object
		}
	}
	doc := map[string]any{"queryPlanner": qp, "ok": 1}
	for _, pr := range p.PlanProps {
		doc[pr.Key] = pr.Val
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", fmt.Errorf("explain: mongo json: %w", err)
	}
	return string(data), nil
}

// Neo4jTable renders Neo4j's plan table (paper Figure 1): planner/runtime
// header, an Operator/Details/Estimated Rows table, and the database
// accesses footer.
func Neo4jTable(p *Plan) string {
	var b strings.Builder
	planner := "COST"
	runtime := "5.10"
	var accesses, memory any = 0, 0
	for _, pr := range p.PlanProps {
		switch pr.Key {
		case "planner":
			planner = FormatVal(pr.Val)
		case "runtime version":
			runtime = FormatVal(pr.Val)
		case "database accesses":
			accesses = pr.Val
		case "memory":
			memory = pr.Val
		}
	}
	fmt.Fprintf(&b, "Planner %s\nRuntime version %s\n", planner, runtime)
	rows := [][]string{{"Operator", "Details", "Estimated Rows"}}
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		detail, _ := n.Prop("Details")
		if n.Object != "" {
			d := FormatVal(detail)
			if d != "" {
				d += "; "
			}
			detail = d + n.Object
		}
		est := ""
		if r, ok := n.Prop("rows"); ok {
			est = FormatVal(r)
		}
		rows = append(rows, []string{
			strings.Repeat("| ", depth) + "+" + n.Name,
			FormatVal(detail), est,
		})
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	if p.Root != nil {
		walk(p.Root, 0)
	}
	b.WriteString(renderASCIITable(rows))
	fmt.Fprintf(&b, "Total database accesses: %s, total allocated memory: %s\n",
		FormatVal(accesses), FormatVal(memory))
	return b.String()
}

func neo4jNode(n *Node) map[string]any {
	args := map[string]any{}
	for _, pr := range n.Props {
		switch pr.Key {
		case "rows":
			args["EstimatedRows"] = pr.Val
		case "actual_rows":
			args["Rows"] = pr.Val
		default:
			args[pr.Key] = pr.Val
		}
	}
	if n.Object != "" {
		args["Details"] = n.Object
	}
	m := map[string]any{"operatorType": n.Name, "arguments": args}
	if len(n.Children) > 0 {
		var kids []any
		for _, c := range n.Children {
			kids = append(kids, neo4jNode(c))
		}
		m["children"] = kids
	}
	return m
}

// Neo4jJSON renders the plan as the JSON structure Neo4j drivers expose.
func Neo4jJSON(p *Plan) (string, error) {
	doc := map[string]any{}
	if p.Root != nil {
		doc["plan"] = neo4jNode(p.Root)
	}
	for _, pr := range p.PlanProps {
		doc[pr.Key] = pr.Val
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", fmt.Errorf("explain: neo4j json: %w", err)
	}
	return string(data), nil
}

// SparkText renders SparkSQL's "== Physical Plan ==" text format.
func SparkText(p *Plan) string {
	var b strings.Builder
	b.WriteString("== Physical Plan ==\n")
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		if depth == 0 {
			b.WriteString(sparkTitle(n))
		} else {
			b.WriteString(strings.Repeat("   ", depth-1))
			b.WriteString("+- ")
			b.WriteString(sparkTitle(n))
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	if p.Root != nil {
		walk(p.Root, 0)
	}
	return b.String()
}

func sparkTitle(n *Node) string {
	title := n.Name
	if args, ok := n.Prop("args"); ok {
		title += FormatVal(args)
	}
	if n.Object != "" {
		title += " " + n.Object
	}
	return title
}

// SQLServerXML renders a SQL Server showplan XML document.
func SQLServerXML(p *Plan) string {
	var b strings.Builder
	b.WriteString(`<ShowPlanXML xmlns="http://schemas.microsoft.com/sqlserver/2004/07/showplan" Version="1.564">` + "\n")
	b.WriteString(" <BatchSequence><Batch><Statements><StmtSimple>\n  <QueryPlan>\n")
	var walk func(n *Node, indent string)
	walk = func(n *Node, indent string) {
		rows, _ := n.Prop("rows")
		cost, _ := n.Prop("total_cost")
		fmt.Fprintf(&b, "%s<RelOp PhysicalOp=%q LogicalOp=%q EstimateRows=%q EstimatedTotalSubtreeCost=%q>\n",
			indent, n.Name, logicalOpFor(n.Name), FormatVal(rows), FormatVal(cost))
		if n.Object != "" {
			fmt.Fprintf(&b, "%s <Object Table=\"[%s]\"/>\n", indent, n.Object)
		}
		for _, pr := range n.Props {
			switch pr.Key {
			case "rows", "total_cost", "startup_cost", "width":
				continue
			}
			fmt.Fprintf(&b, "%s <%s>%s</%s>\n", indent,
				sqlServerTag(pr.Key), xmlEscape(FormatVal(pr.Val)), sqlServerTag(pr.Key))
		}
		for _, c := range n.Children {
			walk(c, indent+" ")
		}
		fmt.Fprintf(&b, "%s</RelOp>\n", indent)
	}
	if p.Root != nil {
		walk(p.Root, "   ")
	}
	b.WriteString("  </QueryPlan>\n </StmtSimple></Statements></Batch></BatchSequence>\n</ShowPlanXML>\n")
	return b.String()
}

// SQLServerText renders SHOWPLAN_TEXT-style output: a StmtText tree with
// |-- art.
func SQLServerText(p *Plan) string {
	var b strings.Builder
	b.WriteString("StmtText\n---------\n")
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		if depth > 0 {
			b.WriteString(strings.Repeat("     ", depth-1))
			b.WriteString("  |--")
		}
		title := n.Name
		if n.Object != "" {
			title += "(OBJECT:([" + n.Object + "]))"
		}
		if pred, ok := n.Prop("Predicate"); ok {
			title += " WHERE:(" + FormatVal(pred) + ")"
		}
		b.WriteString(title)
		b.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	if p.Root != nil {
		walk(p.Root, 0)
	}
	return b.String()
}

// SQLServerTable renders SET STATISTICS PROFILE-style tabular output.
func SQLServerTable(p *Plan) string {
	rows := [][]string{{"Rows", "Executes", "StmtText", "EstimateRows", "TotalSubtreeCost"}}
	p.Walk(func(n *Node, depth int) {
		est, _ := n.Prop("rows")
		cost, _ := n.Prop("total_cost")
		actual := ""
		if ar, ok := n.Prop("actual_rows"); ok {
			actual = FormatVal(ar)
		}
		title := strings.Repeat("  ", depth) + "|--" + n.Name
		if n.Object != "" {
			title += "([" + n.Object + "])"
		}
		rows = append(rows, []string{actual, "1", title, FormatVal(est), FormatVal(cost)})
	})
	return renderASCIITable(rows)
}

func sqlServerTag(key string) string {
	parts := strings.Fields(strings.ReplaceAll(key, "_", " "))
	for i, p := range parts {
		parts[i] = strings.Title(p)
	}
	return strings.Join(parts, "")
}

func logicalOpFor(physical string) string {
	switch physical {
	case "Hash Match":
		return "Inner Join"
	case "Nested Loops":
		return "Inner Join"
	case "Merge Join":
		return "Inner Join"
	case "Stream Aggregate", "Hash Match Aggregate":
		return "Aggregate"
	case "Table Scan", "Clustered Index Scan", "Index Seek", "Clustered Index Seek":
		return "Scan"
	}
	return physical
}
