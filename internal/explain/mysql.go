package explain

import (
	"encoding/json"
	"fmt"
	"strings"
)

// MySQL serializations: the TREE format (EXPLAIN FORMAT=TREE), the JSON
// format (EXPLAIN FORMAT=JSON, simplified to the operation/cost_info
// nesting), and the classic tabular EXPLAIN (paper Figure 2).

// MySQLTree renders the TREE format: "-> " prefixed lines, four-space
// indentation per level, inline cost annotations.
func MySQLTree(p *Plan) string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		b.WriteString(strings.Repeat("    ", depth))
		b.WriteString("-> ")
		b.WriteString(mysqlTitle(n))
		if cost, ok := n.Prop("total_cost"); ok {
			rows, _ := n.Prop("rows")
			fmt.Fprintf(&b, "  (cost=%s rows=%s)", FormatVal(cost), FormatVal(rows))
		}
		if ar, ok := n.Prop("actual_rows"); ok {
			at, _ := n.Prop("actual_time_ms")
			fmt.Fprintf(&b, " (actual time=0.000..%s rows=%s loops=1)",
				FormatVal(at), FormatVal(ar))
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	if p.Root != nil {
		walk(p.Root, 0)
	}
	return b.String()
}

// mysqlTitle composes the TREE line text: operator name plus its inline
// detail (filter text, "on <table>", "using <index>").
func mysqlTitle(n *Node) string {
	title := n.Name
	if detail, ok := n.Prop("detail"); ok {
		title += ": " + FormatVal(detail)
	}
	if n.Object != "" {
		title += " on " + n.Object
	}
	if key, ok := n.Prop("key"); ok {
		title += " using " + FormatVal(key)
	}
	if cond, ok := n.Prop("condition"); ok {
		title += " (" + FormatVal(cond) + ")"
	}
	return title
}

func mysqlNodeJSON(n *Node) map[string]any {
	m := map[string]any{"operation": mysqlTitle(n)}
	ci := map[string]any{}
	if c, ok := n.Prop("total_cost"); ok {
		ci["query_cost"] = FormatVal(c)
	}
	if rc, ok := n.Prop("read_cost"); ok {
		ci["read_cost"] = FormatVal(rc)
	}
	if ec, ok := n.Prop("eval_cost"); ok {
		ci["eval_cost"] = FormatVal(ec)
	}
	if len(ci) > 0 {
		m["cost_info"] = ci
	}
	if rows, ok := n.Prop("rows"); ok {
		m["rows_examined_per_scan"] = rows
	}
	if n.Object != "" {
		m["table_name"] = n.Object
	}
	if key, ok := n.Prop("key"); ok {
		m["key"] = key
	}
	if cond, ok := n.Prop("condition"); ok {
		m["attached_condition"] = cond
	}
	if ar, ok := n.Prop("actual_rows"); ok {
		m["actual_rows"] = ar
	}
	if len(n.Children) > 0 {
		var kids []any
		for _, c := range n.Children {
			kids = append(kids, mysqlNodeJSON(c))
		}
		m["inputs"] = kids
	}
	return m
}

// MySQLJSON renders the (simplified) EXPLAIN FORMAT=JSON document: a
// query_block wrapping the operation tree.
func MySQLJSON(p *Plan) (string, error) {
	qb := map[string]any{"select_id": 1}
	if p.Root != nil {
		if c, ok := p.Root.Prop("total_cost"); ok {
			qb["cost_info"] = map[string]any{"query_cost": FormatVal(c)}
		}
		qb["plan"] = mysqlNodeJSON(p.Root)
	}
	data, err := json.MarshalIndent(map[string]any{"query_block": qb}, "", "  ")
	if err != nil {
		return "", fmt.Errorf("explain: mysql json: %w", err)
	}
	return string(data), nil
}

// MySQLTable renders the classic tabular EXPLAIN: one row per table
// access, as in paper Figure 2.
func MySQLTable(p *Plan) string {
	type rowT struct{ id, selectType, table, typ, key, rows, extra string }
	var rows []rowT
	p.Walk(func(n *Node, _ int) {
		if n.Object == "" {
			return
		}
		typ := "ALL"
		key := "NULL"
		var extras []string
		if k, ok := n.Prop("key"); ok {
			key = FormatVal(k)
			typ = "ref"
			if strings.Contains(strings.ToLower(n.Name), "range") {
				typ = "range"
			}
			if strings.Contains(strings.ToLower(n.Name), "covering") {
				typ = "index"
				extras = append(extras, "Using index")
			}
		}
		if _, ok := n.Prop("condition"); ok {
			extras = append(extras, "Using where")
		}
		est := ""
		if r, ok := n.Prop("rows"); ok {
			est = FormatVal(r)
		}
		extra := strings.Join(extras, "; ")
		if extra == "" {
			extra = "NULL"
		}
		rows = append(rows, rowT{"1", "SIMPLE", n.Object, typ, key, est, extra})
	})
	headers := []string{"id", "select_type", "table", "type", "key", "rows", "Extra"}
	cells := make([][]string, 0, len(rows)+1)
	cells = append(cells, headers)
	for _, r := range rows {
		cells = append(cells, []string{r.id, r.selectType, r.table, r.typ, r.key, r.rows, r.extra})
	}
	return renderASCIITable(cells)
}

// renderASCIITable renders rows as a +----+ bordered table; the first row
// is the header.
func renderASCIITable(cells [][]string) string {
	if len(cells) == 0 {
		return ""
	}
	widths := make([]int, len(cells[0]))
	for _, row := range cells {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	sep := func() {
		for _, w := range widths {
			b.WriteString("+" + strings.Repeat("-", w+2))
		}
		b.WriteString("+\n")
	}
	writeRow := func(row []string) {
		for i, c := range row {
			fmt.Fprintf(&b, "| %-*s ", widths[i], c)
		}
		b.WriteString("|\n")
	}
	sep()
	writeRow(cells[0])
	sep()
	for _, row := range cells[1:] {
		writeRow(row)
	}
	sep()
	return b.String()
}
