package explain

import (
	"encoding/json"
	"encoding/xml"
	"strings"
	"testing"
)

func samplePlan(dialect string) *Plan {
	scan := NewNode("Seq Scan")
	scan.Object = "t0"
	scan.Add("startup_cost", 0.0).Add("total_cost", 35.5).
		Add("rows", 2550.0).Add("width", 4)
	scan.Add("Filter", "(c0 < 100)")
	root := NewNode("Sort", scan)
	root.Add("startup_cost", 100.0).Add("total_cost", 101.0).
		Add("rows", 99.0).Add("width", 4)
	root.Add("Sort Key", "c0")
	p := &Plan{Dialect: dialect, Root: root}
	p.PlanProps = append(p.PlanProps, Prop{Key: "Planning Time", Val: "0.1 ms"})
	return p
}

func TestPostgresTextLayout(t *testing.T) {
	out := PostgresText(samplePlan("postgresql"))
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[0], "Sort  (cost=100.00..101.00 rows=99 width=4)") {
		t.Errorf("root line: %q", lines[0])
	}
	found := false
	for _, l := range lines {
		if strings.HasPrefix(l, "  ->  Seq Scan on t0") {
			found = true
		}
	}
	if !found {
		t.Errorf("child arrow missing:\n%s", out)
	}
	if !strings.Contains(out, "Planning Time: 0.1 ms") {
		t.Error("plan prop missing")
	}
}

func TestPostgresJSONIsValid(t *testing.T) {
	out, err := PostgresJSON(samplePlan("postgresql"))
	if err != nil {
		t.Fatal(err)
	}
	var doc []map[string]any
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	plan := doc[0]["Plan"].(map[string]any)
	if plan["Node Type"] != "Sort" {
		t.Errorf("node type: %v", plan["Node Type"])
	}
}

func TestPostgresXMLWellFormed(t *testing.T) {
	out := PostgresXML(samplePlan("postgresql"))
	var anyDoc struct{}
	if err := xml.Unmarshal([]byte(out), &anyDoc); err != nil {
		t.Fatalf("malformed XML: %v\n%s", err, out)
	}
	if !strings.Contains(out, "<Node-Type>Sort</Node-Type>") {
		t.Error("node type element missing")
	}
}

func TestSQLServerXMLWellFormed(t *testing.T) {
	p := samplePlan("sqlserver")
	p.Root.Name = "Sort"
	p.Root.Children[0].Name = "Table Scan"
	out := SQLServerXML(p)
	var anyDoc struct{}
	if err := xml.Unmarshal([]byte(out), &anyDoc); err != nil {
		t.Fatalf("malformed XML: %v\n%s", err, out)
	}
	if !strings.Contains(out, `PhysicalOp="Table Scan"`) {
		t.Error("physical op missing")
	}
}

func TestSerializeDispatch(t *testing.T) {
	p := samplePlan("postgresql")
	for _, f := range []Format{FormatText, FormatJSON, FormatXML, FormatYAML, FormatGraph} {
		out, err := Serialize(p, f)
		if err != nil || out == "" {
			t.Errorf("postgres %s: %v", f, err)
		}
	}
	if _, err := Serialize(p, FormatTable); err == nil {
		t.Error("postgres TABLE must be rejected (not in Table III)")
	}
	bad := &Plan{Dialect: "nosuch"}
	if _, err := Serialize(bad, FormatText); err == nil {
		t.Error("unknown dialect must fail")
	}
}

func TestDOTOutput(t *testing.T) {
	out := DOT(samplePlan("postgresql"))
	if !strings.Contains(out, "digraph plan") || !strings.Contains(out, "n0 -> n1") {
		t.Errorf("DOT malformed:\n%s", out)
	}
}

func TestFormatVal(t *testing.T) {
	cases := map[string]any{
		"42":   42,
		"1.50": 1.5,
		"3":    3.0,
		"true": true,
		"x":    "x",
		"":     nil,
		"9":    int64(9),
	}
	for want, in := range cases {
		if got := FormatVal(in); got != want {
			t.Errorf("FormatVal(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestNodePropLookup(t *testing.T) {
	n := NewNode("X").Add("a", 1)
	if v, ok := n.Prop("a"); !ok || v != 1 {
		t.Error("Prop lookup broken")
	}
	if _, ok := n.Prop("zz"); ok {
		t.Error("missing prop reported")
	}
}
