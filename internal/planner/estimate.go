package planner

import (
	"uplan/internal/catalog"
	"uplan/internal/datum"
	"uplan/internal/sql"
)

// Cost model constants, loosely following the classic disk/CPU conventions
// real optimizers document (sequential page cost 1.0, random page ~4x,
// per-tuple CPU a fraction of a page read).
const (
	costSeqRow    = 1.0  // read one row sequentially
	costRandomRow = 4.0  // fetch one row through an index
	costIndexStep = 0.5  // descend/advance one index entry
	costCPUTuple  = 0.01 // evaluate predicates on one row
	costHashBuild = 1.5  // insert one row into a hash table
	costSortRow   = 2.0  // comparison-sort amortized per row (× log n)
	costStartup   = 0.1  // operator fixed startup
	defaultWidth  = 8    // bytes per column estimate
	minRows       = 1.0  // estimates never drop below one row
)

// Estimator computes cardinalities and costs from catalog statistics. The
// Quirks hooks let the bug-injection layer perturb estimates the way the
// CERT experiment requires.
type Estimator struct {
	Schema *catalog.Schema
	Quirks EstimatorQuirks
}

// EstimatorQuirks are injectable estimation defects (see internal/bugs).
type EstimatorQuirks struct {
	// PredicateInflatesEstimate makes adding an equality predicate
	// *increase* the estimate by the given factor (>1), a classic CERT
	// finding where a more restrictive query gets a larger estimated
	// cardinality.
	PredicateInflatesEstimate float64
	// IgnoreHistogram disables histogram-based range selectivity, falling
	// back to the fixed default; widens estimation errors on skewed data.
	IgnoreHistogram bool
	// RangeSelectivityFloor clamps range selectivity from below; a large
	// floor (e.g. 0.9) models an engine that barely reduces row estimates
	// for range predicates.
	RangeSelectivityFloor float64
}

// TableRows returns the estimated row count of a base table.
func (e *Estimator) TableRows(table string) float64 {
	st := e.Schema.Stats(table)
	if st.RowCount <= 0 {
		return minRows
	}
	return float64(st.RowCount)
}

// Selectivity estimates the fraction of rows satisfying pred over the given
// table alias scope. Unknown predicate shapes use the standard defaults.
func (e *Estimator) Selectivity(pred sql.Expr, table string) float64 {
	if pred == nil {
		return 1
	}
	sel := e.selectivity(pred, table)
	if sel < 0 {
		sel = 0
	}
	// A correct estimator never exceeds selectivity 1; the inflation quirks
	// deliberately escape the clamp so CERT can observe the defect.
	if sel > 1 && e.Quirks.PredicateInflatesEstimate <= 1 &&
		e.Quirks.RangeSelectivityFloor <= 1 {
		sel = 1
	}
	return sel
}

func (e *Estimator) selectivity(pred sql.Expr, table string) float64 {
	switch t := pred.(type) {
	case *sql.Binary:
		switch t.Op {
		case sql.OpAnd:
			return e.selectivity(t.L, table) * e.selectivity(t.R, table)
		case sql.OpOr:
			a := e.selectivity(t.L, table)
			b := e.selectivity(t.R, table)
			return a + b - a*b
		case sql.OpEq:
			if col, val, ok := colConstant(t.L, t.R); ok {
				s := e.eqSelectivity(table, col, val)
				if e.Quirks.PredicateInflatesEstimate > 1 {
					s *= e.Quirks.PredicateInflatesEstimate
				}
				return s
			}
			return catalog.DefaultEqSelectivity() * 2
		case sql.OpNe:
			if col, val, ok := colConstant(t.L, t.R); ok {
				return 1 - e.eqSelectivity(table, col, val)
			}
			return 1 - catalog.DefaultEqSelectivity()
		case sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
			return e.rangeSelectivity(t, table)
		}
		return 0.5
	case *sql.Unary:
		if t.Op == "NOT" {
			return 1 - e.selectivity(t.X, table)
		}
		return 0.5
	case *sql.IsNull:
		s := e.nullFraction(pred, table)
		if t.Neg {
			return 1 - s
		}
		return s
	case *sql.InList:
		var s float64
		for _, item := range t.List {
			if col, val, ok := colConstant(t.X, item); ok {
				s += e.eqSelectivity(table, col, val)
			} else {
				s += catalog.DefaultEqSelectivity()
			}
		}
		if s > 1 {
			s = 1
		}
		if t.Neg {
			return 1 - s
		}
		return s
	case *sql.Between:
		// Model as two range predicates.
		lo := &sql.Binary{Op: sql.OpGe, L: t.X, R: t.Lo}
		hi := &sql.Binary{Op: sql.OpLe, L: t.X, R: t.Hi}
		s := e.rangeSelectivity(lo, table) * e.rangeSelectivity(hi, table)
		if t.Neg {
			return 1 - s
		}
		return s
	case *sql.Like:
		if t.Neg {
			return 0.9
		}
		return 0.1
	case *sql.Exists:
		return 0.5
	case *sql.InSubquery:
		if t.Neg {
			return 0.6
		}
		return 0.4
	case *sql.Literal:
		switch datum.TruthOf(t.Val) {
		case datum.True:
			return 1
		case datum.False:
			return 0
		}
		return 0
	}
	return 0.5
}

// colConstant matches "col op const" (either side) and returns the column
// name and constant value.
func colConstant(l, r sql.Expr) (string, datum.D, bool) {
	if c, ok := l.(*sql.ColumnRef); ok {
		if lit, ok := r.(*sql.Literal); ok {
			return c.Name, lit.Val, true
		}
	}
	if c, ok := r.(*sql.ColumnRef); ok {
		if lit, ok := l.(*sql.Literal); ok {
			return c.Name, lit.Val, true
		}
	}
	return "", datum.Null(), false
}

func (e *Estimator) eqSelectivity(table, col string, _ datum.D) float64 {
	cs := e.Schema.Stats(table).Column(col)
	return cs.SelectivityEQ()
}

func (e *Estimator) nullFraction(pred sql.Expr, table string) float64 {
	isn, ok := pred.(*sql.IsNull)
	if !ok {
		return 0.1
	}
	col, okc := isn.X.(*sql.ColumnRef)
	if !okc {
		return 0.1
	}
	st := e.Schema.Stats(table)
	cs := st.Column(col.Name)
	if cs == nil || st.RowCount == 0 {
		return 0.1
	}
	return float64(cs.NullCount) / float64(st.RowCount)
}

func (e *Estimator) rangeSelectivity(b *sql.Binary, table string) float64 {
	col, val, ok := colConstant(b.L, b.R)
	if !ok {
		return catalog.DefaultIneqSelectivity()
	}
	// Normalize to "col op val" direction.
	op := b.Op
	if _, isCol := b.R.(*sql.ColumnRef); isCol {
		switch op {
		case sql.OpLt:
			op = sql.OpGt
		case sql.OpLe:
			op = sql.OpGe
		case sql.OpGt:
			op = sql.OpLt
		case sql.OpGe:
			op = sql.OpLe
		}
	}
	cs := e.Schema.Stats(table).Column(col)
	var sel float64
	if cs == nil || cs.Histogram == nil || e.Quirks.IgnoreHistogram {
		sel = catalog.DefaultIneqSelectivity()
	} else {
		lt := cs.Histogram.SelectivityLT(val)
		switch op {
		case sql.OpLt, sql.OpLe:
			sel = lt
		default:
			sel = 1 - lt
		}
	}
	if f := e.Quirks.RangeSelectivityFloor; f > 0 && sel < f {
		sel = f
	}
	return sel
}

// IndexMatch describes how much of a filter an index can absorb.
type IndexMatch struct {
	Index     *catalog.Index
	IndexCond sql.Expr // conjuncts the index serves
	Residual  sql.Expr // conjuncts remaining as a filter
	// Selectivity of the index condition alone.
	Selectivity float64
}

// BestIndex finds the most selective usable index for the conjunctive
// predicate on a table, or nil. An index is usable when a conjunct compares
// its leading column to a constant with =, <, <=, >, >=, or IN-list.
func (e *Estimator) BestIndex(tbl *catalog.Table, pred sql.Expr) *IndexMatch {
	if pred == nil || tbl == nil {
		return nil
	}
	conjuncts := SplitConjuncts(pred)
	var best *IndexMatch
	for _, ix := range tbl.Indexes {
		if len(ix.Columns) == 0 {
			continue
		}
		lead := ix.Columns[0]
		var served []sql.Expr
		var residual []sql.Expr
		for _, c := range conjuncts {
			if predicateTargets(c, lead) {
				served = append(served, c)
			} else {
				residual = append(residual, c)
			}
		}
		if len(served) == 0 {
			continue
		}
		sel := 1.0
		for _, c := range served {
			sel *= e.Selectivity(c, tbl.Name)
		}
		m := &IndexMatch{
			Index:       ix,
			IndexCond:   JoinConjuncts(served),
			Residual:    JoinConjuncts(residual),
			Selectivity: sel,
		}
		if best == nil || m.Selectivity < best.Selectivity {
			best = m
		}
	}
	return best
}

// predicateTargets reports whether the conjunct is an indexable comparison
// on the named column.
func predicateTargets(c sql.Expr, col string) bool {
	switch t := c.(type) {
	case *sql.Binary:
		switch t.Op {
		case sql.OpEq, sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
			name, _, ok := colConstant(t.L, t.R)
			return ok && equalFold(name, col)
		}
	case *sql.InList:
		if ref, ok := t.X.(*sql.ColumnRef); ok && !t.Neg && equalFold(ref.Name, col) {
			for _, item := range t.List {
				if _, isLit := item.(*sql.Literal); !isLit {
					if _, isFn := item.(*sql.FuncCall); !isFn {
						return false
					}
				}
			}
			return true
		}
	case *sql.Between:
		if ref, ok := t.X.(*sql.ColumnRef); ok && !t.Neg && equalFold(ref.Name, col) {
			_, lok := t.Lo.(*sql.Literal)
			_, hok := t.Hi.(*sql.Literal)
			return lok && hok
		}
	}
	return false
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// SplitConjuncts flattens nested ANDs into a conjunct list.
func SplitConjuncts(e sql.Expr) []sql.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sql.Binary); ok && b.Op == sql.OpAnd {
		return append(SplitConjuncts(b.L), SplitConjuncts(b.R)...)
	}
	return []sql.Expr{e}
}

// JoinConjuncts rebuilds an AND tree from a conjunct list (nil for empty).
func JoinConjuncts(cs []sql.Expr) sql.Expr {
	var out sql.Expr
	for _, c := range cs {
		if out == nil {
			out = c
		} else {
			out = &sql.Binary{Op: sql.OpAnd, L: out, R: c}
		}
	}
	return out
}
