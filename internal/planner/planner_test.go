package planner

import (
	"strings"
	"testing"

	"uplan/internal/catalog"
	"uplan/internal/datum"
	"uplan/internal/sql"
)

func testSchema(t *testing.T) *catalog.Schema {
	t.Helper()
	s := catalog.NewSchema()
	t0 := &catalog.Table{Name: "t0", Columns: []catalog.Column{
		{Name: "c0", Type: catalog.TInt, PrimaryKey: true},
		{Name: "c1", Type: catalog.TInt},
	}}
	t0.Indexes = append(t0.Indexes, &catalog.Index{
		Name: "t0_pkey", Table: "t0", Columns: []string{"c0"}, Unique: true, Primary: true,
	})
	if err := s.AddTable(t0); err != nil {
		t.Fatal(err)
	}
	t1 := &catalog.Table{Name: "t1", Columns: []catalog.Column{
		{Name: "c0", Type: catalog.TInt},
		{Name: "v", Type: catalog.TText},
	}}
	if err := s.AddTable(t1); err != nil {
		t.Fatal(err)
	}
	s.SetStats("t0", &catalog.TableStats{RowCount: 100000, Columns: map[string]*catalog.ColumnStats{
		"c0": {Distinct: 100000, Min: datum.Int(1), Max: datum.Int(100000)},
		"c1": {Distinct: 100},
	}})
	s.SetStats("t1", &catalog.TableStats{RowCount: 50, Columns: map[string]*catalog.ColumnStats{
		"c0": {Distinct: 50},
	}})
	return s
}

func mustPlan(t *testing.T, pl *Planner, q string) *PhysOp {
	t.Helper()
	plan, err := pl.Plan(sql.MustParse(q))
	if err != nil {
		t.Fatalf("Plan(%q): %v", q, err)
	}
	return plan
}

func kinds(p *PhysOp) []OpKind {
	var out []OpKind
	p.Walk(func(op *PhysOp, _ int) { out = append(out, op.Kind) })
	return out
}

func hasKind(p *PhysOp, k OpKind) bool {
	for _, kk := range kinds(p) {
		if kk == k {
			return true
		}
	}
	return false
}

func TestPlanShapeSimpleScan(t *testing.T) {
	pl := New(testSchema(t), Options{})
	p := mustPlan(t, pl, "SELECT c0 FROM t0")
	if p.Kind != OpProject || p.Children[0].Kind != OpSeqScan {
		t.Fatalf("plan:\n%s", p)
	}
	if p.EstRows != 100000 {
		t.Errorf("EstRows = %v", p.EstRows)
	}
}

func TestPlanPushdownAndIndexSelection(t *testing.T) {
	pl := New(testSchema(t), Options{})
	// Selective predicate on the indexed PK: index scan wins on a big table.
	p := mustPlan(t, pl, "SELECT c1 FROM t0 WHERE c0 = 42")
	scan := p.Children[0]
	if scan.Kind != OpIndexScan {
		t.Fatalf("expected IndexScan, got:\n%s", p)
	}
	if scan.Index != "t0_pkey" || scan.IndexCond == nil {
		t.Errorf("index scan fields: %+v", scan)
	}
	// Unindexed column keeps the filter in a seq scan.
	p = mustPlan(t, pl, "SELECT c1 FROM t0 WHERE c1 = 42")
	scan = p.Children[0]
	if scan.Kind != OpSeqScan || scan.Filter == nil {
		t.Fatalf("expected filtered SeqScan, got:\n%s", p)
	}
}

func TestPlanEstimatesDecreaseWithPredicates(t *testing.T) {
	pl := New(testSchema(t), Options{})
	base := mustPlan(t, pl, "SELECT c0 FROM t0")
	filtered := mustPlan(t, pl, "SELECT c0 FROM t0 WHERE c1 = 5")
	if filtered.EstRows >= base.EstRows {
		t.Errorf("predicate should reduce estimate: %v >= %v",
			filtered.EstRows, base.EstRows)
	}
	// CERT's core monotonicity property.
	more := mustPlan(t, pl, "SELECT c0 FROM t0 WHERE c1 = 5 AND c0 < 100")
	if more.EstRows > filtered.EstRows {
		t.Errorf("extra conjunct must not increase estimate: %v > %v",
			more.EstRows, filtered.EstRows)
	}
}

func TestPlanQuirkInflatesEstimate(t *testing.T) {
	pl := New(testSchema(t), Options{Quirks: EstimatorQuirks{PredicateInflatesEstimate: 500000}})
	base := mustPlan(t, pl, "SELECT c0 FROM t0")
	filtered := mustPlan(t, pl, "SELECT c0 FROM t0 WHERE c1 = 5")
	if filtered.EstRows <= base.EstRows {
		t.Errorf("quirk should inflate the filtered estimate: %v <= %v",
			filtered.EstRows, base.EstRows)
	}
}

func TestPlanJoinSelection(t *testing.T) {
	pl := New(testSchema(t), Options{})
	p := mustPlan(t, pl, "SELECT t0.c0 FROM t0 INNER JOIN t1 ON t0.c0 = t1.c0")
	if !hasKind(p, OpHashJoin) {
		t.Fatalf("expected hash join on large tables:\n%s", p)
	}
	join := p.Children[0]
	if len(join.HashKeysL) != 1 || len(join.HashKeysR) != 1 {
		t.Errorf("hash keys not extracted: %+v", join)
	}
	// Forced preferences.
	plNL := New(testSchema(t), Options{Join: JoinPreferNL})
	if !hasKind(mustPlan(t, plNL, "SELECT t0.c0 FROM t0 INNER JOIN t1 ON t0.c0 = t1.c0"), OpNLJoin) {
		t.Error("JoinPreferNL ignored")
	}
	plM := New(testSchema(t), Options{Join: JoinPreferMerge})
	if !hasKind(mustPlan(t, plM, "SELECT t0.c0 FROM t0 INNER JOIN t1 ON t0.c0 = t1.c0"), OpMergeJoin) {
		t.Error("JoinPreferMerge ignored")
	}
	// Non-equi join cannot hash.
	p = mustPlan(t, pl, "SELECT t0.c0 FROM t0 INNER JOIN t1 ON t0.c0 < t1.c0")
	if !hasKind(p, OpNLJoin) {
		t.Errorf("non-equi join should be NL:\n%s", p)
	}
}

func TestPlanAggregates(t *testing.T) {
	pl := New(testSchema(t), Options{})
	p := mustPlan(t, pl, "SELECT c1, COUNT(*) FROM t0 GROUP BY c1 HAVING COUNT(*) > 2")
	ks := kinds(p)
	joined := ""
	for _, k := range ks {
		joined += string(k) + " "
	}
	if !strings.Contains(joined, string(OpHashAgg)) ||
		!strings.Contains(joined, string(OpFilter)) {
		t.Fatalf("agg plan: %v", ks)
	}
	plS := New(testSchema(t), Options{Agg: AggPreferSort})
	if !hasKind(mustPlan(t, plS, "SELECT c1, COUNT(*) FROM t0 GROUP BY c1"), OpSortAgg) {
		t.Error("AggPreferSort ignored")
	}
}

func TestPlanTopNFusion(t *testing.T) {
	pl := New(testSchema(t), Options{FuseTopN: true})
	p := mustPlan(t, pl, "SELECT c0 FROM t0 ORDER BY c0 LIMIT 5")
	if p.Kind != OpTopN || p.Limit != 5 {
		t.Fatalf("expected TopN root:\n%s", p)
	}
	plain := New(testSchema(t), Options{})
	p = mustPlan(t, plain, "SELECT c0 FROM t0 ORDER BY c0 LIMIT 5")
	if p.Kind != OpLimit || p.Children[0].Kind != OpSort {
		t.Fatalf("expected Limit over Sort:\n%s", p)
	}
}

func TestPlanCompound(t *testing.T) {
	pl := New(testSchema(t), Options{})
	p := mustPlan(t, pl, "SELECT c0 FROM t0 UNION SELECT c0 FROM t1")
	if p.Kind != OpUnion || len(p.Children) != 2 {
		t.Fatalf("compound plan:\n%s", p)
	}
	if _, err := pl.Plan(sql.MustParse("SELECT c0, c1 FROM t0 UNION SELECT c0 FROM t1")); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestPlanSubplans(t *testing.T) {
	pl := New(testSchema(t), Options{})
	p := mustPlan(t, pl, "SELECT c0 FROM t0 WHERE c1 IN (SELECT c0 FROM t1)")
	found := 0
	p.Walk(func(op *PhysOp, _ int) { found += len(op.Subplans) })
	if found != 1 {
		t.Fatalf("expected one subplan, got %d:\n%s", found, p)
	}
}

func TestPlanDML(t *testing.T) {
	pl := New(testSchema(t), Options{})
	p := mustPlan(t, pl, "INSERT INTO t0 VALUES (1, 2)")
	if p.Kind != OpInsert {
		t.Errorf("insert plan kind = %v", p.Kind)
	}
	p = mustPlan(t, pl, "UPDATE t0 SET c1 = 0 WHERE c0 = 5")
	if p.Kind != OpUpdate || len(p.Children) != 1 {
		t.Errorf("update plan:\n%s", p)
	}
	p = mustPlan(t, pl, "DELETE FROM t0 WHERE c0 = 5")
	if p.Kind != OpDelete {
		t.Errorf("delete plan:\n%s", p)
	}
	p = mustPlan(t, pl, "CREATE TABLE x (a INT)")
	if p.Kind != OpCreateTable {
		t.Errorf("create table plan kind = %v", p.Kind)
	}
	p = mustPlan(t, pl, "CREATE INDEX ix ON t0 (c1)")
	if p.Kind != OpCreateIndex {
		t.Errorf("create index plan kind = %v", p.Kind)
	}
}

func TestPlanExplainUnwraps(t *testing.T) {
	pl := New(testSchema(t), Options{})
	p := mustPlan(t, pl, "EXPLAIN SELECT c0 FROM t0")
	if p.Kind != OpProject {
		t.Errorf("EXPLAIN should plan the inner statement, got %v", p.Kind)
	}
}

func TestPlanErrors(t *testing.T) {
	pl := New(testSchema(t), Options{})
	bad := []string{
		"SELECT c0 FROM missing",
		"UPDATE missing SET a = 1",
	}
	for _, q := range bad {
		if _, err := pl.Plan(sql.MustParse(q)); err == nil {
			t.Errorf("Plan(%q) should fail", q)
		}
	}
}

func TestSplitJoinConjuncts(t *testing.T) {
	e := sql.MustParse("SELECT 1 FROM t0 WHERE c0 = 1 AND c1 = 2 AND c0 < 5").(*sql.Select)
	cs := SplitConjuncts(e.Core.Where)
	if len(cs) != 3 {
		t.Fatalf("conjuncts = %d", len(cs))
	}
	back := JoinConjuncts(cs)
	if len(SplitConjuncts(back)) != 3 {
		t.Error("JoinConjuncts round trip broken")
	}
	if JoinConjuncts(nil) != nil {
		t.Error("empty conjuncts should be nil")
	}
}

func TestEstimatorSelectivities(t *testing.T) {
	s := testSchema(t)
	e := &Estimator{Schema: s}
	eq := e.Selectivity(sql.MustParse("SELECT 1 FROM t0 WHERE c1 = 5").(*sql.Select).Core.Where, "t0")
	if eq != 0.01 { // distinct = 100
		t.Errorf("eq selectivity = %v, want 0.01", eq)
	}
	and := e.Selectivity(sql.MustParse("SELECT 1 FROM t0 WHERE c1 = 5 AND c1 = 6").(*sql.Select).Core.Where, "t0")
	if and >= eq {
		t.Errorf("AND must compound: %v >= %v", and, eq)
	}
	or := e.Selectivity(sql.MustParse("SELECT 1 FROM t0 WHERE c1 = 5 OR c1 = 6").(*sql.Select).Core.Where, "t0")
	if or <= eq {
		t.Errorf("OR must widen: %v <= %v", or, eq)
	}
	always := e.Selectivity(&sql.Literal{Val: datum.Bool(true)}, "t0")
	if always != 1 {
		t.Errorf("TRUE selectivity = %v", always)
	}
}

func TestBestIndex(t *testing.T) {
	s := testSchema(t)
	e := &Estimator{Schema: s}
	tbl := s.Table("t0")
	where := sql.MustParse("SELECT 1 FROM t0 WHERE c0 = 5 AND c1 > 2").(*sql.Select).Core.Where
	m := e.BestIndex(tbl, where)
	if m == nil || m.Index.Name != "t0_pkey" {
		t.Fatalf("BestIndex = %+v", m)
	}
	if m.IndexCond == nil || m.Residual == nil {
		t.Errorf("index/residual split: %+v", m)
	}
	if e.BestIndex(tbl, sql.MustParse("SELECT 1 FROM t0 WHERE c1 = 5").(*sql.Select).Core.Where) != nil {
		t.Error("no index on c1")
	}
}
