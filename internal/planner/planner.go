package planner

import (
	"fmt"
	"math"
	"strings"

	"uplan/internal/catalog"
	"uplan/internal/sql"
)

// JoinPreference biases join-algorithm selection for a dialect.
type JoinPreference uint8

// Join preferences.
const (
	JoinAuto JoinPreference = iota // pure cost-based
	JoinPreferHash
	JoinPreferNL
	JoinPreferMerge
)

// AggPreference biases aggregation-algorithm selection.
type AggPreference uint8

// Aggregation preferences.
const (
	AggAuto AggPreference = iota
	AggPreferHash
	AggPreferSort
)

// Options configure planning for a dialect.
type Options struct {
	Quirks EstimatorQuirks
	Join   JoinPreference
	Agg    AggPreference
	// FuseTopN merges Sort+Limit into a TopN operator (TiDB style).
	FuseTopN bool
	// NoIndexes disables index access paths entirely (a dialect that never
	// uses indexes for the workload, or a pre-index database state).
	NoIndexes bool
	// PreferIndexOnly aggressively chooses covering-index scans when the
	// index covers all referenced columns (TiDB's q11 behaviour).
	PreferIndexOnly bool
	// PreferIndexProbes always chooses an index access path when the
	// predicate contains an equality or IN probe on an indexed column
	// (MySQL's "ref access whenever usable" behaviour).
	PreferIndexProbes bool
}

// Planner builds physical plans over a schema.
type Planner struct {
	Schema *catalog.Schema
	Opts   Options
	est    *Estimator
}

// New returns a planner over the schema.
func New(schema *catalog.Schema, opts Options) *Planner {
	return &Planner{
		Schema: schema,
		Opts:   opts,
		est:    &Estimator{Schema: schema, Quirks: opts.Quirks},
	}
}

// Estimator exposes the planner's estimator (used by tests and CERT).
func (pl *Planner) Estimator() *Estimator { return pl.est }

// Plan builds a physical plan for the statement.
func (pl *Planner) Plan(stmt sql.Statement) (*PhysOp, error) {
	switch t := stmt.(type) {
	case *sql.Select:
		refs := collectColumnRefs(t)
		return pl.planSelect(t, nil, refs)
	case *sql.Insert:
		op := NewOp(OpInsert)
		op.Table = t.Table
		op.Stmt = t
		op.EstRows = float64(len(t.Rows))
		op.TotalCost = float64(len(t.Rows)) * costSeqRow
		return op, nil
	case *sql.Update:
		child, err := pl.planMutationScan(t.Table, t.Where, stmt)
		if err != nil {
			return nil, err
		}
		op := NewOp(OpUpdate, child)
		op.Table = t.Table
		op.Stmt = t
		op.EstRows = child.EstRows
		op.TotalCost = child.TotalCost + child.EstRows*costSeqRow
		return op, nil
	case *sql.Delete:
		child, err := pl.planMutationScan(t.Table, t.Where, stmt)
		if err != nil {
			return nil, err
		}
		op := NewOp(OpDelete, child)
		op.Table = t.Table
		op.Stmt = t
		op.EstRows = child.EstRows
		op.TotalCost = child.TotalCost + child.EstRows*costSeqRow
		return op, nil
	case *sql.CreateTable:
		op := NewOp(OpCreateTable)
		op.Table = t.Name
		op.Stmt = t
		op.EstRows = 0
		op.TotalCost = costStartup
		return op, nil
	case *sql.CreateIndex:
		op := NewOp(OpCreateIndex)
		op.Table = t.Table
		op.Index = t.Name
		op.Stmt = t
		op.EstRows = pl.est.TableRows(t.Table)
		op.TotalCost = op.EstRows * costSortRow
		return op, nil
	case *sql.Explain:
		return pl.Plan(t.Stmt)
	}
	return nil, fmt.Errorf("planner: unsupported statement %T", stmt)
}

func (pl *Planner) planMutationScan(table string, where sql.Expr, stmt sql.Statement) (*PhysOp, error) {
	tbl := pl.Schema.Table(table)
	if tbl == nil {
		return nil, fmt.Errorf("planner: no such table %q", table)
	}
	refs := map[string]map[string]bool{}
	if where != nil {
		collectRefsFromExpr(where, refs, strings.ToLower(table))
	}
	scan := pl.planScan(tbl, table, where, refs)
	if err := pl.planSubqueriesIn(scan, []sql.Expr{where}, scan.Schema); err != nil {
		return nil, err
	}
	return scan, nil
}

// planSelect plans a full select. outer is the schema visible from
// enclosing queries (for correlated subqueries); refs maps alias →
// referenced column set for covering-index decisions.
func (pl *Planner) planSelect(sel *sql.Select, outer []OutCol, refs map[string]map[string]bool) (*PhysOp, error) {
	var op *PhysOp
	var err error
	if sel.Compound != nil {
		op, err = pl.planCompound(sel.Compound, outer, refs)
	} else {
		op, err = pl.planCore(sel.Core, outer, refs, sel.OrderBy)
	}
	if err != nil {
		return nil, err
	}
	// ORDER BY. Keys that do not resolve in the projected schema (plain
	// columns dropped by the projection, aggregates) are appended to the
	// projection as hidden columns that the sort strips from its output.
	if len(sel.OrderBy) > 0 {
		hidden := 0
		if op.Kind == OpProject {
			child := op.Children[0]
			var extra []sql.Expr
			for _, o := range sel.OrderBy {
				if !resolvesInSchema(o.Expr, op.Schema) {
					extra = append(extra, o.Expr)
				}
			}
			for _, e := range extra {
				op.Projections = append(op.Projections, e)
				op.Schema = append(op.Schema, OutCol{Name: e.SQL(), ExprSQL: e.SQL()})
				hidden++
			}
			if len(extra) > 0 {
				if err := pl.planSubqueriesIn(op, extra, child.Schema); err != nil {
					return nil, err
				}
			}
		}
		sort := NewOp(OpSort, op)
		sort.SortKeys = sel.OrderBy
		sort.HiddenTrailing = hidden
		sort.Schema = op.Schema[:len(op.Schema)-hidden]
		sort.EstRows = op.EstRows
		sort.Width = op.Width
		n := math.Max(op.EstRows, 2)
		sort.StartCost = op.TotalCost + n*costSortRow*math.Log2(n)
		sort.TotalCost = sort.StartCost + n*costCPUTuple
		op = sort
	}
	// LIMIT / OFFSET.
	if sel.Limit != nil || sel.Offset != nil {
		n := int64(-1)
		off := int64(0)
		if lit, ok := sel.Limit.(*sql.Literal); ok && lit.Val.K != 0 {
			n = lit.Val.I
		}
		if lit, ok := sel.Offset.(*sql.Literal); ok && lit.Val.K != 0 {
			off = lit.Val.I
		}
		if pl.Opts.FuseTopN && op.Kind == OpSort && n >= 0 {
			op.Kind = OpTopN
			op.Limit = n
			op.Offset = off
			if float64(n) < op.EstRows {
				op.EstRows = float64(n)
			}
		} else {
			lim := NewOp(OpLimit, op)
			lim.Limit = n
			lim.Offset = off
			lim.Schema = op.Schema
			lim.Width = op.Width
			lim.EstRows = op.EstRows
			if n >= 0 && float64(n) < lim.EstRows {
				lim.EstRows = float64(n)
			}
			lim.StartCost = op.StartCost
			lim.TotalCost = op.TotalCost
			op = lim
		}
	}
	return op, nil
}

func (pl *Planner) planCompound(c *sql.Compound, outer []OutCol, refs map[string]map[string]bool) (*PhysOp, error) {
	left, err := pl.planSelect(c.Left, outer, refs)
	if err != nil {
		return nil, err
	}
	right, err := pl.planSelect(c.Right, outer, refs)
	if err != nil {
		return nil, err
	}
	if len(left.Schema) != len(right.Schema) {
		return nil, fmt.Errorf("planner: set operation arity mismatch: %d vs %d",
			len(left.Schema), len(right.Schema))
	}
	var kind OpKind
	switch c.Op {
	case sql.UnionAllOp:
		kind = OpUnionAll
	case sql.UnionOp:
		kind = OpUnion
	case sql.IntersectOp:
		kind = OpIntersect
	case sql.ExceptOp:
		kind = OpExcept
	default:
		return nil, fmt.Errorf("planner: unknown set operation %q", c.Op)
	}
	op := NewOp(kind, left, right)
	op.Schema = make([]OutCol, len(left.Schema))
	for i, col := range left.Schema {
		op.Schema[i] = OutCol{Name: col.Name, ExprSQL: col.ExprSQL}
	}
	switch kind {
	case OpUnionAll:
		op.EstRows = left.EstRows + right.EstRows
	case OpUnion:
		op.EstRows = (left.EstRows + right.EstRows) * 0.9
	case OpIntersect:
		op.EstRows = math.Min(left.EstRows, right.EstRows) * 0.5
	case OpExcept:
		op.EstRows = left.EstRows * 0.5
	}
	op.Width = left.Width
	op.TotalCost = left.TotalCost + right.TotalCost +
		(left.EstRows+right.EstRows)*costHashBuild
	return op, nil
}

func (pl *Planner) planCore(core *sql.SelectCore, outer []OutCol, refs map[string]map[string]bool, orderBy []sql.OrderItem) (*PhysOp, error) {
	var input *PhysOp
	var conjuncts []sql.Expr
	if core.Where != nil {
		conjuncts = SplitConjuncts(core.Where)
	}
	if core.From != nil {
		var err error
		input, conjuncts, err = pl.planFrom(core.From, conjuncts, refs)
		if err != nil {
			return nil, err
		}
	} else {
		input = NewOp(OpValues)
		input.EstRows = 1
		input.TotalCost = costStartup
	}
	// Residual WHERE conjuncts (multi-table predicates, subqueries, outer
	// references) become a Filter over the join tree.
	if len(conjuncts) > 0 {
		f := NewOp(OpFilter, input)
		f.Filter = JoinConjuncts(conjuncts)
		f.Schema = input.Schema
		f.Width = input.Width
		sel := pl.est.Selectivity(f.Filter, primaryAlias(input))
		f.EstRows = math.Max(minRows, input.EstRows*sel)
		f.StartCost = input.StartCost
		f.TotalCost = input.TotalCost + input.EstRows*costCPUTuple
		if err := pl.planSubqueriesIn(f, []sql.Expr{f.Filter}, input.Schema); err != nil {
			return nil, err
		}
		input = f
	}

	// Aggregation.
	aggs := collectAggregates(core, orderBy)
	if len(core.GroupBy) > 0 || len(aggs) > 0 {
		agg := pl.planAggregate(core, aggs, input)
		if err := pl.planSubqueriesIn(agg, exprList(core.GroupBy), input.Schema); err != nil {
			return nil, err
		}
		input = agg
		if core.Having != nil {
			hf := NewOp(OpFilter, input)
			hf.Filter = core.Having
			hf.Schema = input.Schema
			hf.Width = input.Width
			hf.EstRows = math.Max(minRows, input.EstRows*0.3)
			hf.StartCost = input.StartCost
			hf.TotalCost = input.TotalCost + input.EstRows*costCPUTuple
			if err := pl.planSubqueriesIn(hf, []sql.Expr{core.Having}, input.Schema); err != nil {
				return nil, err
			}
			input = hf
		}
	}

	// Projection.
	proj, err := pl.planProject(core, input)
	if err != nil {
		return nil, err
	}
	input = proj

	// DISTINCT.
	if core.Distinct {
		d := NewOp(OpDistinct, input)
		d.Schema = input.Schema
		d.Width = input.Width
		d.EstRows = math.Max(minRows, input.EstRows*0.8)
		d.StartCost = input.TotalCost
		d.TotalCost = input.TotalCost + input.EstRows*costHashBuild
		input = d
	}
	return input, nil
}

// planFrom builds the join tree, pushing single-alias conjuncts into scans.
// It returns the remaining conjuncts.
func (pl *Planner) planFrom(ref sql.TableRef, conjuncts []sql.Expr, refs map[string]map[string]bool) (*PhysOp, []sql.Expr, error) {
	switch t := ref.(type) {
	case *sql.BaseTable:
		tbl := pl.Schema.Table(t.Name)
		if tbl == nil {
			return nil, nil, fmt.Errorf("planner: no such table %q", t.Name)
		}
		alias := t.Alias
		if alias == "" {
			alias = t.Name
		}
		mine, rest := splitByAlias(conjuncts, alias, tbl)
		scan := pl.planScanAliased(tbl, alias, JoinConjuncts(mine), refs)
		return scan, rest, nil
	case *sql.SubqueryRef:
		subRefs := collectColumnRefs(t.Sub)
		sub, err := pl.planSelect(t.Sub, nil, subRefs)
		if err != nil {
			return nil, nil, err
		}
		// Re-alias output columns under the derived-table alias.
		schema := make([]OutCol, len(sub.Schema))
		for i, c := range sub.Schema {
			schema[i] = OutCol{Table: t.Alias, Name: c.Name}
		}
		sub.Schema = schema
		mine, rest := splitConjunctsBySchema(conjuncts, schema)
		if len(mine) > 0 {
			f := NewOp(OpFilter, sub)
			f.Filter = JoinConjuncts(mine)
			f.Schema = schema
			f.EstRows = math.Max(minRows, sub.EstRows*pl.est.Selectivity(f.Filter, ""))
			f.TotalCost = sub.TotalCost + sub.EstRows*costCPUTuple
			return f, rest, nil
		}
		return sub, rest, nil
	case *sql.JoinRef:
		left, rest, err := pl.planFrom(t.Left, conjuncts, refs)
		if err != nil {
			return nil, nil, err
		}
		right, rest, err := pl.planFrom(t.Right, rest, refs)
		if err != nil {
			return nil, nil, err
		}
		join := pl.planJoin(t, left, right)
		// Inner joins can also absorb WHERE conjuncts that span exactly
		// this join's schema as extra join predicates; re-select the join
		// algorithm afterwards since absorbed equalities enable hashing
		// (this is how comma-joins become hash joins).
		if t.Type != sql.JoinLeft {
			mine, remaining := splitConjunctsBySchema(rest, join.Schema)
			if len(mine) > 0 {
				all := append(SplitConjuncts(join.JoinCond), mine...)
				join.JoinCond = JoinConjuncts(all)
				pl.extractHashKeys(join, left.Schema, right.Schema)
				join.EstRows = math.Max(minRows, join.EstRows*0.5)
				rest = remaining
				pl.chooseJoinAlgo(join, left, right, join.JoinType == sql.JoinCross)
			}
		}
		return join, rest, nil
	}
	return nil, nil, fmt.Errorf("planner: unsupported table reference %T", ref)
}

func primaryAlias(op *PhysOp) string {
	if op == nil {
		return ""
	}
	if op.Alias != "" {
		return op.Alias
	}
	if op.Table != "" {
		return op.Table
	}
	for _, c := range op.Children {
		if a := primaryAlias(c); a != "" {
			return a
		}
	}
	return ""
}

// planScanAliased plans the access path for one base table.
func (pl *Planner) planScanAliased(tbl *catalog.Table, alias string, filter sql.Expr, refs map[string]map[string]bool) *PhysOp {
	scan := pl.planScan(tbl, alias, filter, refs)
	return scan
}

func (pl *Planner) planScan(tbl *catalog.Table, alias string, filter sql.Expr, refs map[string]map[string]bool) *PhysOp {
	rows := pl.est.TableRows(tbl.Name)
	schema := make([]OutCol, len(tbl.Columns))
	for i, c := range tbl.Columns {
		schema[i] = OutCol{Table: alias, Name: c.Name}
	}
	width := len(tbl.Columns) * defaultWidth

	seq := NewOp(OpSeqScan)
	seq.Table = tbl.Name
	seq.Alias = alias
	seq.Filter = filter
	seq.Schema = schema
	seq.Width = width
	sel := pl.est.Selectivity(filter, tbl.Name)
	seq.EstRows = math.Max(minRows, rows*sel)
	seq.StartCost = 0
	seq.TotalCost = rows*costSeqRow + rows*costCPUTuple

	if pl.Opts.NoIndexes || filter == nil {
		if best := pl.coveringIndexOnly(tbl, alias, refs, rows); best != nil && filter == nil && pl.Opts.PreferIndexOnly {
			return best
		}
		return seq
	}
	match := pl.est.BestIndex(tbl, filter)
	if match == nil {
		return seq
	}
	matchRows := math.Max(minRows, rows*match.Selectivity)
	idxCost := math.Log2(rows+2)*costIndexStep + matchRows*costRandomRow
	ix := NewOp(OpIndexScan)
	ix.Table = tbl.Name
	ix.Alias = alias
	ix.Index = match.Index.Name
	ix.IndexCond = match.IndexCond
	ix.Filter = match.Residual
	ix.Schema = schema
	ix.Width = width
	resSel := pl.est.Selectivity(match.Residual, tbl.Name)
	ix.EstRows = math.Max(minRows, matchRows*resSel)
	ix.StartCost = math.Log2(rows + 2)
	ix.TotalCost = idxCost + matchRows*costCPUTuple
	// Covering index: all referenced columns are in the index.
	if covers(match.Index, neededColumns(tbl, alias, refs)) {
		ix.Kind = OpIndexOnlyScan
		ix.TotalCost = math.Log2(rows+2)*costIndexStep + matchRows*(costSeqRow+costCPUTuple)
	}
	if pl.Opts.PreferIndexProbes && condHasProbe(match.IndexCond) {
		return ix
	}
	if ix.TotalCost < seq.TotalCost {
		return ix
	}
	return seq
}

// condHasProbe reports whether the index condition contains a usable probe
// (equality, IN-list, range, or BETWEEN) — engines with PreferIndexProbes
// use index access whenever any such condition exists.
func condHasProbe(cond sql.Expr) bool {
	for _, c := range SplitConjuncts(cond) {
		switch t := c.(type) {
		case *sql.Binary:
			switch t.Op {
			case sql.OpEq, sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
				return true
			}
		case *sql.InList:
			return true
		case *sql.Between:
			return true
		}
	}
	return false
}

// neededColumns merges the alias's qualified references with unqualified
// ("*") references that name one of the table's columns.
func neededColumns(tbl *catalog.Table, alias string, refs map[string]map[string]bool) map[string]bool {
	need := map[string]bool{}
	for col := range refs[strings.ToLower(alias)] {
		need[col] = true
	}
	for col := range refs["*"] {
		if tbl.ColumnIndex(col) >= 0 {
			need[col] = true
		}
	}
	if len(need) == 0 {
		return nil
	}
	return need
}

// coveringIndexOnly builds an unconditional index-only scan when an index
// covers every referenced column of the alias.
func (pl *Planner) coveringIndexOnly(tbl *catalog.Table, alias string, refs map[string]map[string]bool, rows float64) *PhysOp {
	need := neededColumns(tbl, alias, refs)
	if need == nil {
		return nil
	}
	for _, ixDef := range tbl.Indexes {
		if !covers(ixDef, need) {
			continue
		}
		schema := make([]OutCol, len(tbl.Columns))
		for i, c := range tbl.Columns {
			schema[i] = OutCol{Table: alias, Name: c.Name}
		}
		ix := NewOp(OpIndexOnlyScan)
		ix.Table = tbl.Name
		ix.Alias = alias
		ix.Index = ixDef.Name
		ix.Schema = schema
		ix.Width = len(ixDef.Columns) * defaultWidth
		ix.EstRows = rows
		ix.TotalCost = rows * (costSeqRow*0.5 + costCPUTuple)
		return ix
	}
	return nil
}

func covers(ix *catalog.Index, need map[string]bool) bool {
	if need == nil || len(need) == 0 {
		return false
	}
	have := map[string]bool{}
	for _, c := range ix.Columns {
		have[strings.ToLower(c)] = true
	}
	for col := range need {
		if !have[col] {
			return false
		}
	}
	return true
}

// planJoin selects a join algorithm for one JoinRef.
func (pl *Planner) planJoin(ref *sql.JoinRef, left, right *PhysOp) *PhysOp {
	schema := append(append([]OutCol(nil), left.Schema...), right.Schema...)
	var join *PhysOp
	cond := ref.On

	outRows := left.EstRows * right.EstRows
	if cond != nil {
		outRows *= 0.1 // default join selectivity
	}
	outRows = math.Max(minRows, outRows)

	join = NewOp(OpNLJoin, left, right)
	join.JoinType = ref.Type
	join.JoinCond = cond
	join.Schema = schema
	join.Width = left.Width + right.Width
	pl.extractHashKeys(join, left.Schema, right.Schema)
	pl.chooseJoinAlgo(join, left, right, ref.Type == sql.JoinCross)
	join.EstRows = outRows
	if ref.Type == sql.JoinLeft && outRows < left.EstRows {
		join.EstRows = left.EstRows
	}
	join.StartCost = left.StartCost
	return join
}

// chooseJoinAlgo selects the physical join algorithm from the current hash
// keys and the dialect preference, setting Kind and TotalCost.
func (pl *Planner) chooseJoinAlgo(join *PhysOp, left, right *PhysOp, pureCross bool) {
	nlCost := left.TotalCost + left.EstRows*right.TotalCost +
		left.EstRows*right.EstRows*costCPUTuple
	hashCost := left.TotalCost + right.TotalCost +
		right.EstRows*costHashBuild + left.EstRows*costCPUTuple*2
	mergeCost := left.TotalCost + right.TotalCost +
		(left.EstRows+right.EstRows)*costSortRow*2

	hashable := len(join.HashKeysL) > 0 && !(pureCross && join.JoinCond == nil)
	kind := OpNLJoin
	cost := nlCost
	if hashable {
		switch pl.Opts.Join {
		case JoinPreferHash:
			kind, cost = OpHashJoin, hashCost
		case JoinPreferNL:
			if nlCost > hashCost*100 {
				kind, cost = OpHashJoin, hashCost
			}
		case JoinPreferMerge:
			kind, cost = OpMergeJoin, mergeCost
		default:
			if hashCost < nlCost {
				kind, cost = OpHashJoin, hashCost
			}
		}
	}
	join.Kind = kind
	join.TotalCost = cost
}

// extractHashKeys pulls equality conjuncts "l = r" whose sides resolve to
// opposite inputs out of the join condition.
func (pl *Planner) extractHashKeys(join *PhysOp, lschema, rschema []OutCol) {
	join.HashKeysL = nil
	join.HashKeysR = nil
	for _, c := range SplitConjuncts(join.JoinCond) {
		b, ok := c.(*sql.Binary)
		if !ok || b.Op != sql.OpEq {
			continue
		}
		lIsL := exprResolves(b.L, lschema)
		lIsR := exprResolves(b.L, rschema)
		rIsL := exprResolves(b.R, lschema)
		rIsR := exprResolves(b.R, rschema)
		switch {
		case lIsL && rIsR && !lIsR:
			join.HashKeysL = append(join.HashKeysL, b.L)
			join.HashKeysR = append(join.HashKeysR, b.R)
		case lIsR && rIsL && !lIsL:
			join.HashKeysL = append(join.HashKeysL, b.R)
			join.HashKeysR = append(join.HashKeysR, b.L)
		}
	}
}

// exprResolves reports whether every column reference in e resolves in the
// schema.
func exprResolves(e sql.Expr, schema []OutCol) bool {
	ok := true
	any := false
	sql.WalkExpr(e, func(x sql.Expr) bool {
		if ref, isRef := x.(*sql.ColumnRef); isRef {
			any = true
			if FindColumn(schema, ref.Table, ref.Name) < 0 {
				ok = false
				return false
			}
		}
		return true
	})
	return ok && any
}

// splitByAlias partitions conjuncts into those referencing only the given
// alias (pushable into its scan) and the rest. Conjuncts containing
// subqueries are never pushed.
func splitByAlias(conjuncts []sql.Expr, alias string, tbl *catalog.Table) (mine, rest []sql.Expr) {
	for _, c := range conjuncts {
		if sql.ContainsSubquery(c) {
			rest = append(rest, c)
			continue
		}
		only := true
		sql.WalkExpr(c, func(x sql.Expr) bool {
			if ref, ok := x.(*sql.ColumnRef); ok {
				if ref.Table != "" {
					if !strings.EqualFold(ref.Table, alias) {
						only = false
						return false
					}
				} else if tbl.ColumnIndex(ref.Name) < 0 {
					only = false
					return false
				}
			}
			return true
		})
		if only {
			mine = append(mine, c)
		} else {
			rest = append(rest, c)
		}
	}
	return mine, rest
}

// splitConjunctsBySchema partitions conjuncts into those fully resolvable
// in the schema and the rest.
func splitConjunctsBySchema(conjuncts []sql.Expr, schema []OutCol) (mine, rest []sql.Expr) {
	for _, c := range conjuncts {
		if sql.ContainsSubquery(c) {
			rest = append(rest, c)
			continue
		}
		if exprResolves(c, schema) {
			mine = append(mine, c)
		} else {
			rest = append(rest, c)
		}
	}
	return mine, rest
}

// planAggregate builds the aggregation operator.
func (pl *Planner) planAggregate(core *sql.SelectCore, aggs []*sql.FuncCall, input *PhysOp) *PhysOp {
	kind := OpHashAgg
	if pl.Opts.Agg == AggPreferSort {
		kind = OpSortAgg
	}
	agg := NewOp(kind, input)
	agg.GroupBy = core.GroupBy
	agg.Aggs = aggs
	var schema []OutCol
	for _, g := range core.GroupBy {
		col := OutCol{ExprSQL: g.SQL()}
		if ref, ok := g.(*sql.ColumnRef); ok {
			col.Table = ref.Table
			col.Name = ref.Name
		} else {
			col.Name = g.SQL()
		}
		schema = append(schema, col)
	}
	for _, a := range aggs {
		schema = append(schema, OutCol{Name: a.SQL(), ExprSQL: a.SQL()})
	}
	agg.Schema = schema
	agg.Width = len(schema) * defaultWidth
	groups := math.Max(minRows, input.EstRows*0.1)
	if len(core.GroupBy) == 0 {
		groups = 1
	}
	agg.EstRows = groups
	agg.StartCost = input.TotalCost
	agg.TotalCost = input.TotalCost + input.EstRows*costHashBuild + groups*costCPUTuple
	if kind == OpSortAgg {
		n := math.Max(input.EstRows, 2)
		agg.TotalCost = input.TotalCost + n*costSortRow*math.Log2(n)
	}
	return agg
}

// planProject builds the projection for the select items.
func (pl *Planner) planProject(core *sql.SelectCore, input *PhysOp) (*PhysOp, error) {
	proj := NewOp(OpProject, input)
	var exprs []sql.Expr
	var schema []OutCol
	for _, item := range core.Items {
		if star, ok := item.Expr.(*sql.Star); ok {
			for _, c := range input.Schema {
				if star.Table != "" && !strings.EqualFold(c.Table, star.Table) {
					continue
				}
				exprs = append(exprs, &sql.ColumnRef{Table: c.Table, Name: c.Name})
				schema = append(schema, c)
			}
			continue
		}
		exprs = append(exprs, item.Expr)
		col := OutCol{ExprSQL: item.Expr.SQL()}
		switch {
		case item.Alias != "":
			col.Name = item.Alias
		default:
			if ref, ok := item.Expr.(*sql.ColumnRef); ok {
				col.Table = ref.Table
				col.Name = ref.Name
			} else {
				col.Name = item.Expr.SQL()
			}
		}
		schema = append(schema, col)
	}
	if len(exprs) == 0 {
		return nil, fmt.Errorf("planner: empty select list")
	}
	proj.Projections = exprs
	proj.Schema = schema
	proj.Width = len(schema) * defaultWidth
	proj.EstRows = input.EstRows
	proj.StartCost = input.StartCost
	proj.TotalCost = input.TotalCost + input.EstRows*costCPUTuple
	if err := pl.planSubqueriesIn(proj, exprs, input.Schema); err != nil {
		return nil, err
	}
	return proj, nil
}

// planSubqueriesIn plans every subquery appearing in the expressions and
// attaches the subplans to op.
func (pl *Planner) planSubqueriesIn(op *PhysOp, exprs []sql.Expr, scope []OutCol) error {
	for _, e := range exprs {
		var err error
		sql.WalkExpr(e, func(x sql.Expr) bool {
			if err != nil {
				return false
			}
			var sub *sql.Select
			switch t := x.(type) {
			case *sql.ScalarSubquery:
				sub = t.Sub
			case *sql.InSubquery:
				sub = t.Sub
			case *sql.Exists:
				sub = t.Sub
			}
			if sub == nil {
				return true
			}
			for _, sp := range op.Subplans {
				if sp.Sel == sub {
					return true // already planned for this operator
				}
			}
			refs := collectColumnRefs(sub)
			plan, perr := pl.planSelect(sub, scope, refs)
			if perr != nil {
				err = perr
				return false
			}
			op.Subplans = append(op.Subplans, Subplan{Sel: sub, Plan: plan})
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func exprList(es []sql.Expr) []sql.Expr { return es }

// resolvesInSchema reports whether an ORDER BY key can be evaluated against
// the given output schema: it matches a column or expression column, or
// every column reference and aggregate inside it resolves.
func resolvesInSchema(e sql.Expr, schema []OutCol) bool {
	if FindExprColumn(schema, e) >= 0 {
		return true
	}
	if ref, ok := e.(*sql.ColumnRef); ok {
		return FindColumn(schema, ref.Table, ref.Name) >= 0
	}
	if _, ok := e.(*sql.Literal); ok {
		return true
	}
	ok := true
	sql.WalkExpr(e, func(x sql.Expr) bool {
		switch t := x.(type) {
		case *sql.ColumnRef:
			if FindColumn(schema, t.Table, t.Name) < 0 {
				ok = false
				return false
			}
		case *sql.FuncCall:
			if t.IsAggregate() && FindExprColumn(schema, t) < 0 {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

// collectAggregates gathers all aggregate calls from items, HAVING and
// ORDER BY of the core (deduplicated by SQL text).
func collectAggregates(core *sql.SelectCore, orderBy []sql.OrderItem) []*sql.FuncCall {
	seen := map[string]bool{}
	var out []*sql.FuncCall
	visit := func(e sql.Expr) {
		sql.WalkExpr(e, func(x sql.Expr) bool {
			if f, ok := x.(*sql.FuncCall); ok && f.IsAggregate() {
				if !seen[f.SQL()] {
					seen[f.SQL()] = true
					out = append(out, f)
				}
				return false
			}
			return true
		})
	}
	for _, item := range core.Items {
		visit(item.Expr)
	}
	visit(core.Having)
	for _, o := range orderBy {
		visit(o.Expr)
	}
	return out
}

// collectColumnRefs maps alias → set of referenced column names for the
// whole select, used for covering-index decisions.
func collectColumnRefs(sel *sql.Select) map[string]map[string]bool {
	refs := map[string]map[string]bool{}
	var visitSelect func(s *sql.Select)
	var visitCore func(c *sql.SelectCore)
	add := func(e sql.Expr, defaultAlias string) {
		collectRefsFromExpr(e, refs, defaultAlias)
	}
	visitCore = func(c *sql.SelectCore) {
		if c == nil {
			return
		}
		// Determine the single-table default alias if the FROM clause has
		// exactly one base table.
		defaultAlias := soleAlias(c.From)
		for _, item := range c.Items {
			add(item.Expr, defaultAlias)
		}
		add(c.Where, defaultAlias)
		for _, g := range c.GroupBy {
			add(g, defaultAlias)
		}
		add(c.Having, defaultAlias)
		var visitFrom func(r sql.TableRef)
		visitFrom = func(r sql.TableRef) {
			switch t := r.(type) {
			case *sql.JoinRef:
				add(t.On, "")
				visitFrom(t.Left)
				visitFrom(t.Right)
			case *sql.SubqueryRef:
				visitSelect(t.Sub)
			}
		}
		visitFrom(c.From)
	}
	visitSelect = func(s *sql.Select) {
		if s == nil {
			return
		}
		if s.Compound != nil {
			visitSelect(s.Compound.Left)
			visitSelect(s.Compound.Right)
		}
		visitCore(s.Core)
		for _, o := range s.OrderBy {
			add(o.Expr, soleAliasOf(s))
		}
	}
	visitSelect(sel)
	return refs
}

func soleAliasOf(s *sql.Select) string {
	if s.Core != nil {
		return soleAlias(s.Core.From)
	}
	return ""
}

func soleAlias(r sql.TableRef) string {
	if bt, ok := r.(*sql.BaseTable); ok {
		if bt.Alias != "" {
			return strings.ToLower(bt.Alias)
		}
		return strings.ToLower(bt.Name)
	}
	return ""
}

func collectRefsFromExpr(e sql.Expr, refs map[string]map[string]bool, defaultAlias string) {
	sql.WalkExpr(e, func(x sql.Expr) bool {
		switch t := x.(type) {
		case *sql.ColumnRef:
			alias := strings.ToLower(t.Table)
			if alias == "" {
				alias = defaultAlias
			}
			if alias == "" {
				// Unqualified reference in a multi-table scope: record it
				// under the wildcard alias; covering-index checks attribute
				// it to every table that has such a column.
				alias = "*"
			}
			m := refs[alias]
			if m == nil {
				m = map[string]bool{}
				refs[alias] = m
			}
			m[strings.ToLower(t.Name)] = true
		case *sql.ScalarSubquery:
			inner := collectColumnRefs(t.Sub)
			mergeRefs(refs, inner)
		case *sql.InSubquery:
			inner := collectColumnRefs(t.Sub)
			mergeRefs(refs, inner)
		case *sql.Exists:
			inner := collectColumnRefs(t.Sub)
			mergeRefs(refs, inner)
		}
		return true
	})
}

func mergeRefs(dst, src map[string]map[string]bool) {
	for alias, cols := range src {
		m := dst[alias]
		if m == nil {
			m = map[string]bool{}
			dst[alias] = m
		}
		for c := range cols {
			m[c] = true
		}
	}
}
