// Package planner turns parsed SQL into physical query plans: logical
// analysis, cardinality estimation over catalog statistics, cost-based
// access-path and join-algorithm selection. The produced PhysOp tree is the
// engine-neutral plan that the executor runs and that each simulated DBMS
// dialect reshapes into its native operator vocabulary.
package planner

import (
	"fmt"
	"strings"

	"uplan/internal/sql"
)

// OpKind enumerates physical operators.
type OpKind string

// Physical operator kinds.
const (
	OpSeqScan       OpKind = "SeqScan"
	OpIndexScan     OpKind = "IndexScan"     // index probe + row fetch
	OpIndexOnlyScan OpKind = "IndexOnlyScan" // all columns served by the index
	OpValues        OpKind = "Values"        // constant rows (FROM-less SELECT)
	OpFilter        OpKind = "Filter"
	OpProject       OpKind = "Project"
	OpNLJoin        OpKind = "NestedLoopJoin"
	OpHashJoin      OpKind = "HashJoin"
	OpMergeJoin     OpKind = "MergeJoin"
	OpHashAgg       OpKind = "HashAggregate"
	OpSortAgg       OpKind = "SortAggregate"
	OpSort          OpKind = "Sort"
	OpTopN          OpKind = "TopN"
	OpLimit         OpKind = "Limit"
	OpDistinct      OpKind = "Distinct"
	OpUnion         OpKind = "Union"
	OpUnionAll      OpKind = "UnionAll"
	OpIntersect     OpKind = "Intersect"
	OpExcept        OpKind = "Except"
	OpInsert        OpKind = "Insert"
	OpUpdate        OpKind = "Update"
	OpDelete        OpKind = "Delete"
	OpCreateTable   OpKind = "CreateTable"
	OpCreateIndex   OpKind = "CreateIndex"
)

// OutCol describes one output column of a physical operator.
type OutCol struct {
	// Table is the table alias that owns the column (empty for computed
	// columns).
	Table string
	// Name is the visible column name or alias.
	Name string
	// ExprSQL is the SQL text of the expression that produced the column;
	// the evaluator uses it to resolve aggregate references in HAVING and
	// ORDER BY.
	ExprSQL string
}

// PhysOp is one node of a physical plan.
type PhysOp struct {
	Kind     OpKind
	Children []*PhysOp

	// Estimates filled by the planner.
	EstRows   float64
	StartCost float64
	TotalCost float64
	Width     int

	// Output schema.
	Schema []OutCol

	// Scan fields.
	Table     string // base table name
	Alias     string
	Index     string   // index name for index scans
	IndexCond sql.Expr // predicate satisfied via the index
	Filter    sql.Expr // residual predicate evaluated on rows

	// Join fields.
	JoinType sql.JoinType
	JoinCond sql.Expr // full join condition
	// HashKeysL/R are the equi-join key expressions (parallel slices).
	HashKeysL []sql.Expr
	HashKeysR []sql.Expr

	// Aggregation fields.
	GroupBy []sql.Expr
	Aggs    []*sql.FuncCall

	// Projection fields.
	Projections []sql.Expr

	// Sort/limit fields.
	SortKeys []sql.OrderItem
	Limit    int64 // -1 when unset
	Offset   int64
	// HiddenTrailing is the number of trailing input columns that exist
	// only to evaluate ORDER BY keys; the sort strips them from its output.
	HiddenTrailing int

	// DML/DDL payloads.
	Stmt sql.Statement

	// Subplans used by subquery expressions inside Filter/Projections, in
	// AST discovery order. The order is part of the plan: shapers render
	// subplans as extra children, and map iteration here used to make
	// serialized plans differ between identical runs.
	Subplans []Subplan
}

// Subplan pairs a subquery AST node with its planned subtree.
type Subplan struct {
	Sel  *sql.Select
	Plan *PhysOp
}

// NewOp constructs an operator with unset limit.
func NewOp(kind OpKind, children ...*PhysOp) *PhysOp {
	return &PhysOp{Kind: kind, Children: children, Limit: -1}
}

// Walk visits the plan tree in pre-order, including subplans.
func (p *PhysOp) Walk(fn func(op *PhysOp, depth int)) {
	var walk func(op *PhysOp, d int)
	walk = func(op *PhysOp, d int) {
		if op == nil {
			return
		}
		fn(op, d)
		for _, c := range op.Children {
			walk(c, d+1)
		}
		for _, sp := range op.Subplans {
			walk(sp.Plan, d+1)
		}
	}
	walk(p, 0)
}

// String renders the plan for debugging.
func (p *PhysOp) String() string {
	var b strings.Builder
	p.Walk(func(op *PhysOp, d int) {
		b.WriteString(strings.Repeat("  ", d))
		b.WriteString(string(op.Kind))
		if op.Table != "" {
			fmt.Fprintf(&b, " on %s", op.Table)
			if op.Alias != "" && op.Alias != op.Table {
				fmt.Fprintf(&b, " as %s", op.Alias)
			}
		}
		if op.Index != "" {
			fmt.Fprintf(&b, " using %s", op.Index)
		}
		if op.Filter != nil {
			fmt.Fprintf(&b, " filter=%s", op.Filter.SQL())
		}
		if op.JoinCond != nil {
			fmt.Fprintf(&b, " on=%s", op.JoinCond.SQL())
		}
		fmt.Fprintf(&b, " (rows=%.0f cost=%.2f)", op.EstRows, op.TotalCost)
		b.WriteByte('\n')
	})
	return b.String()
}

// ColumnNames returns the plan's output column names.
func (p *PhysOp) ColumnNames() []string {
	out := make([]string, len(p.Schema))
	for i, c := range p.Schema {
		out[i] = c.Name
	}
	return out
}

// FindColumn resolves a column reference against the schema, honoring an
// optional table qualifier. It returns the ordinal or -1.
func FindColumn(schema []OutCol, table, name string) int {
	match := -1
	for i, c := range schema {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if table != "" && !strings.EqualFold(c.Table, table) {
			continue
		}
		if match >= 0 {
			// Ambiguous unqualified reference: prefer exact single match
			// semantics by reporting the first, as the engines do for
			// natural scans; qualified references never get here.
			return match
		}
		match = i
	}
	return match
}

// FindExprColumn resolves an expression to a schema ordinal by its SQL text
// (used for aggregate results and group keys). It returns -1 if absent.
func FindExprColumn(schema []OutCol, e sql.Expr) int {
	if e == nil {
		return -1
	}
	text := e.SQL()
	for i, c := range schema {
		if c.ExprSQL != "" && c.ExprSQL == text {
			return i
		}
	}
	return -1
}
