package dbms

import (
	"strings"
	"testing"

	"uplan/internal/core"
	"uplan/internal/explain"
)

// tableII is the paper's Table II: operations and properties per category.
var tableIIOps = map[string]map[core.OperationCategory]int{
	"influxdb":   {core.Producer: 0, core.Combinator: 0, core.Join: 0, core.Folder: 0, core.Projector: 0, core.Executor: 0, core.Consumer: 0},
	"mongodb":    {core.Producer: 14, core.Combinator: 9, core.Join: 0, core.Folder: 5, core.Projector: 3, core.Executor: 10, core.Consumer: 3},
	"mysql":      {core.Producer: 15, core.Combinator: 3, core.Join: 2, core.Folder: 1, core.Projector: 0, core.Executor: 2, core.Consumer: 0},
	"neo4j":      {core.Producer: 18, core.Combinator: 11, core.Join: 43, core.Folder: 6, core.Projector: 3, core.Executor: 17, core.Consumer: 13},
	"postgresql": {core.Producer: 18, core.Combinator: 8, core.Join: 3, core.Folder: 3, core.Projector: 0, core.Executor: 9, core.Consumer: 1},
	"sqlserver":  {core.Producer: 15, core.Combinator: 3, core.Join: 3, core.Folder: 3, core.Projector: 0, core.Executor: 16, core.Consumer: 19},
	"sqlite":     {core.Producer: 3, core.Combinator: 6, core.Join: 3, core.Folder: 0, core.Projector: 0, core.Executor: 5, core.Consumer: 0},
	"sparksql":   {core.Producer: 7, core.Combinator: 1, core.Join: 2, core.Folder: 6, core.Projector: 0, core.Executor: 43, core.Consumer: 18},
	"tidb":       {core.Producer: 19, core.Combinator: 6, core.Join: 7, core.Folder: 5, core.Projector: 1, core.Executor: 13, core.Consumer: 5},
}

var tableIIProps = map[string]map[core.PropertyCategory]int{
	"influxdb":   {core.Cardinality: 5, core.Cost: 0, core.Configuration: 0, core.Status: 1},
	"mongodb":    {core.Cardinality: 16, core.Cost: 5, core.Configuration: 18, core.Status: 12},
	"mysql":      {core.Cardinality: 3, core.Cost: 6, core.Configuration: 3, core.Status: 10},
	"neo4j":      {core.Cardinality: 3, core.Cost: 3, core.Configuration: 12, core.Status: 7},
	"postgresql": {core.Cardinality: 8, core.Cost: 17, core.Configuration: 42, core.Status: 40},
	"sqlserver":  {core.Cardinality: 4, core.Cost: 4, core.Configuration: 7, core.Status: 3},
	"sqlite":     {core.Cardinality: 0, core.Cost: 0, core.Configuration: 3, core.Status: 0},
	"sparksql":   {core.Cardinality: 11, core.Cost: 11, core.Configuration: 0, core.Status: 0},
	"tidb":       {core.Cardinality: 2, core.Cost: 5, core.Configuration: 4, core.Status: 1},
}

func TestVocabulariesMatchTableII(t *testing.T) {
	for name, wantOps := range tableIIOps {
		v, ok := VocabularyFor(name)
		if !ok {
			t.Fatalf("no vocabulary for %s", name)
		}
		got := v.OperationCount()
		for cat, want := range wantOps {
			if got[cat] != want {
				t.Errorf("%s operations %s = %d, want %d", name, cat, got[cat], want)
			}
		}
		gotProps := v.PropertyCount()
		for cat, want := range tableIIProps[name] {
			if gotProps[cat] != want {
				t.Errorf("%s properties %s = %d, want %d", name, cat, gotProps[cat], want)
			}
		}
	}
}

func TestVocabularyNamesAreUnique(t *testing.T) {
	for name, v := range Vocabularies {
		seen := map[string]bool{}
		for cat, names := range v.Operations {
			for _, n := range names {
				if seen[n] {
					t.Errorf("%s: duplicate operation %q in %s", name, n, cat)
				}
				seen[n] = true
			}
		}
	}
}

func TestEngineLifecycle(t *testing.T) {
	for _, name := range Names() {
		e, err := New(name)
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if e.Info.Name != name {
			t.Errorf("info mismatch for %s", name)
		}
	}
	if _, err := New("oracle"); err == nil {
		t.Error("unknown engine must fail")
	}
}

func seedEngine(t *testing.T, e *Engine) {
	t.Helper()
	stmts := []string{
		"CREATE TABLE t0 (c0 INT PRIMARY KEY, c1 INT, c2 TEXT)",
		"INSERT INTO t0 VALUES (1, 10, 'a'), (2, 20, 'b'), (3, 30, 'a')",
	}
	for _, s := range stmts {
		if _, err := e.Execute(s); err != nil {
			t.Fatalf("%s: seed %q: %v", e.Info.Name, s, err)
		}
	}
	if err := e.Analyze(); err != nil {
		t.Fatal(err)
	}
}

func TestAllEnginesExecuteAndExplain(t *testing.T) {
	query := "SELECT c2, COUNT(*) FROM t0 WHERE c1 > 5 GROUP BY c2 ORDER BY c2 LIMIT 10"
	for _, name := range Names() {
		e := MustNew(name)
		seedEngine(t, e)
		res, err := e.Execute(query)
		if err != nil {
			t.Fatalf("%s: execute: %v", name, err)
		}
		if len(res.Rows) != 2 {
			t.Errorf("%s: rows = %d, want 2", name, len(res.Rows))
		}
		for _, f := range e.SupportedFormats() {
			out, err := e.Explain(query, f)
			if err != nil {
				t.Fatalf("%s: explain %s: %v", name, f, err)
			}
			if strings.TrimSpace(out) == "" {
				t.Errorf("%s: empty %s explain", name, f)
			}
		}
	}
}

func TestExplainAnalyzeIncludesActuals(t *testing.T) {
	e := MustNew("postgresql")
	seedEngine(t, e)
	out, err := e.ExplainAnalyze("SELECT * FROM t0 WHERE c1 > 5", explain.FormatText)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "actual time=") || !strings.Contains(out, "Execution Time") {
		t.Errorf("analyze output missing actuals:\n%s", out)
	}
}

func TestPostgresTextShape(t *testing.T) {
	e := MustNew("postgresql")
	seedEngine(t, e)
	out, err := e.Explain("SELECT c2, COUNT(*) FROM t0 WHERE c1 < 100 GROUP BY c2", explain.FormatText)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"HashAggregate", "Group Key: c2", "Seq Scan on t0",
		"Filter:", "(cost=", "rows=", "Planning Time"} {
		if !strings.Contains(out, want) {
			t.Errorf("postgres text missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Project") {
		t.Errorf("PostgreSQL plans must not contain projection operators:\n%s", out)
	}
}

func TestTiDBTableShape(t *testing.T) {
	e := MustNew("tidb")
	seedEngine(t, e)
	out, err := e.Explain("SELECT c1 FROM t0 WHERE c1 < 100", explain.FormatTable)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"TableReader_", "Selection_", "TableFullScan_",
		"cop[tikv]", "estRows", "└─"} {
		if !strings.Contains(out, want) {
			t.Errorf("tidb table missing %q:\n%s", want, out)
		}
	}
	// Unstable identifiers: the same query gets different suffixes next time.
	out2, _ := e.Explain("SELECT c1 FROM t0 WHERE c1 < 100", explain.FormatTable)
	if out == out2 {
		t.Error("TiDB operator identifiers should be unstable across queries")
	}
}

func TestSQLiteTextShape(t *testing.T) {
	e := MustNew("sqlite")
	seedEngine(t, e)
	out, err := e.Explain("SELECT c0 FROM t0 WHERE c0 = 1 UNION SELECT c1 FROM t0 GROUP BY c1", explain.FormatText)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"QUERY PLAN", "COMPOUND QUERY", "LEFT-MOST SUBQUERY",
		"UNION USING TEMP B-TREE", "SEARCH t0", "USE TEMP B-TREE FOR GROUP BY"} {
		if !strings.Contains(out, want) {
			t.Errorf("sqlite text missing %q:\n%s", want, out)
		}
	}
}

func TestMongoJSONShape(t *testing.T) {
	e := MustNew("mongodb")
	seedEngine(t, e)
	out, err := e.Explain("SELECT c1, c2 FROM t0 WHERE c1 > 5", explain.FormatJSON)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"queryPlanner", "winningPlan", "COLLSCAN", "PROJECTION_DEFAULT"} {
		if !strings.Contains(out, want) {
			t.Errorf("mongo json missing %q:\n%s", want, out)
		}
	}
	// SELECT * has no projection stage.
	out, err = e.Explain("SELECT * FROM t0", explain.FormatJSON)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "PROJECTION") {
		t.Errorf("SELECT * should not project:\n%s", out)
	}
}

func TestNeo4jShape(t *testing.T) {
	e := MustNew("neo4j")
	seedEngine(t, e)
	out, err := e.Explain("SELECT c1 FROM t0 WHERE c1 > 5", explain.FormatText)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Planner COST", "Runtime version", "+ProduceResults",
		"NodeByLabelScan", "Total database accesses"} {
		if !strings.Contains(out, want) {
			t.Errorf("neo4j table missing %q:\n%s", want, out)
		}
	}
}

func TestSparkShape(t *testing.T) {
	e := MustNew("sparksql")
	seedEngine(t, e)
	out, err := e.Explain("SELECT c2, SUM(c1) FROM t0 GROUP BY c2", explain.FormatText)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"== Physical Plan ==", "AdaptiveSparkPlan",
		"HashAggregate", "Exchange", "FileScan", "+-"} {
		if !strings.Contains(out, want) {
			t.Errorf("spark text missing %q:\n%s", want, out)
		}
	}
}

func TestSQLServerXMLShape(t *testing.T) {
	e := MustNew("sqlserver")
	seedEngine(t, e)
	out, err := e.Explain("SELECT c1 FROM t0 WHERE c1 > 5", explain.FormatXML)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<ShowPlanXML", "RelOp", "PhysicalOp=", "EstimateRows="} {
		if !strings.Contains(out, want) {
			t.Errorf("sqlserver xml missing %q:\n%s", want, out)
		}
	}
}

func TestInfluxShape(t *testing.T) {
	e := MustNew("influxdb")
	seedEngine(t, e)
	out, err := e.Explain("SELECT c1 FROM t0", explain.FormatText)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"EXPRESSION", "NUMBER OF SERIES", "NUMBER OF SHARDS"} {
		if !strings.Contains(out, want) {
			t.Errorf("influx text missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Scan") {
		t.Error("InfluxDB plans must not contain operations")
	}
}

func TestEngineExplainStatement(t *testing.T) {
	e := MustNew("postgresql")
	seedEngine(t, e)
	res, err := e.Execute("EXPLAIN SELECT * FROM t0")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || res.Columns[0] != "QUERY PLAN" {
		t.Errorf("EXPLAIN through Execute: %+v", res)
	}
	res, err = e.Execute("EXPLAIN (FORMAT JSON) SELECT * FROM t0")
	if err != nil {
		t.Fatal(err)
	}
	joined := ""
	for _, row := range res.Rows {
		joined += row[0].S
	}
	if !strings.Contains(joined, `"Node Type"`) {
		t.Errorf("JSON explain through Execute:\n%s", joined)
	}
}

func TestFormatsMatrixMatchesTableIII(t *testing.T) {
	wantCounts := map[string]int{
		"influxdb": 1, "mongodb": 2, "mysql": 3, "neo4j": 3, "postgresql": 5,
		"sqlserver": 4, "sqlite": 1, "sparksql": 2, "tidb": 3,
	}
	for name, want := range wantCounts {
		if got := len(Formats[name]); got != want {
			t.Errorf("Table III %s: %d formats, want %d", name, got, want)
		}
	}
}

func TestUnsupportedFormatRejected(t *testing.T) {
	e := MustNew("sqlite")
	seedEngine(t, e)
	if _, err := e.Explain("SELECT * FROM t0", explain.FormatJSON); err == nil {
		t.Error("sqlite must reject JSON format")
	}
}
