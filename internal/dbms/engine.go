// Package dbms implements the nine simulated database engines of the
// paper's case study (Table I). Every engine shares the SQL substrate
// (parser, planner, executor, storage) but has its own planning
// preferences, operator vocabulary, plan shaper, and native serialization
// formats — reproducing the observable differences in query plan
// representations that UPlan unifies.
package dbms

import (
	"fmt"
	"sort"
	"strings"

	"uplan/internal/datum"
	"uplan/internal/exec"
	"uplan/internal/explain"
	"uplan/internal/planner"
	"uplan/internal/sql"
	"uplan/internal/storage"
)

// Info is the Table I metadata of a studied DBMS.
type Info struct {
	Name      string // engine key: "postgresql", "mysql", …
	Display   string // "PostgreSQL"
	Version   string
	DataModel string
	Release   int // first release year
	Rank      int // db-engines rank (August 2024, per the paper)
}

// Infos lists the studied DBMSs in the paper's Table I order.
var Infos = []Info{
	{"influxdb", "InfluxDB", "2.7.0", "Time-series", 2013, 28},
	{"mongodb", "MongoDB", "6.0.5", "Document", 2009, 5},
	{"mysql", "MySQL", "8.0.32", "Relational", 1995, 2},
	{"neo4j", "Neo4j", "5.6.0", "Graph", 2007, 21},
	{"postgresql", "PostgreSQL", "14.7", "Relational", 1989, 4},
	{"sqlserver", "SQL Server", "16.0.4015.1", "Relational", 1989, 3},
	{"sqlite", "SQLite", "3.41.2", "Relational", 1990, 10},
	{"sparksql", "SparkSQL", "3.3.2", "Relational", 2014, 33},
	{"tidb", "TiDB", "6.5.1", "Relational", 2016, 79},
}

// Formats maps each engine to its officially supported serialization
// formats (paper Table III).
var Formats = map[string][]explain.Format{
	"influxdb":   {explain.FormatText},
	"mongodb":    {explain.FormatGraph, explain.FormatJSON},
	"mysql":      {explain.FormatGraph, explain.FormatText, explain.FormatJSON},
	"neo4j":      {explain.FormatGraph, explain.FormatText, explain.FormatJSON},
	"postgresql": {explain.FormatGraph, explain.FormatText, explain.FormatJSON, explain.FormatXML, explain.FormatYAML},
	"sqlserver":  {explain.FormatGraph, explain.FormatText, explain.FormatTable, explain.FormatXML},
	"sqlite":     {explain.FormatText},
	"sparksql":   {explain.FormatGraph, explain.FormatText},
	"tidb":       {explain.FormatGraph, explain.FormatTable, explain.FormatJSON},
}

// Names lists engine keys in Table I order.
func Names() []string {
	out := make([]string, len(Infos))
	for i, in := range Infos {
		out[i] = in.Name
	}
	return out
}

// InfoFor returns the Table I metadata for an engine key.
func InfoFor(name string) (Info, bool) {
	for _, in := range Infos {
		if in.Name == name {
			return in, true
		}
	}
	return Info{}, false
}

// shaperFunc converts an engine-neutral physical plan into the engine's
// native operator tree. stats carries EXPLAIN ANALYZE actuals (nil for
// plain EXPLAIN).
type shaperFunc func(e *Engine, op *planner.PhysOp, stats map[*planner.PhysOp]*exec.OpStats) *explain.Plan

// Engine is one simulated DBMS instance with its own storage.
type Engine struct {
	Info   Info
	DB     *storage.DB
	Opts   planner.Options
	Quirks exec.Quirks

	shaper shaperFunc
	// opSeq numbers operators across the engine's lifetime, reproducing
	// TiDB-style unstable operator identifiers (TableFullScan_17).
	opSeq int
	// queries counts executed statements (drives simulated timings).
	queries int
}

// New creates a fresh engine for the given key. Unknown keys fail.
func New(name string) (*Engine, error) {
	info, ok := InfoFor(name)
	if !ok {
		return nil, fmt.Errorf("dbms: unknown engine %q (known: %s)",
			name, strings.Join(Names(), ", "))
	}
	e := &Engine{Info: info, DB: storage.NewDB()}
	switch name {
	case "postgresql":
		e.Opts = planner.Options{Join: planner.JoinPreferHash, Agg: planner.AggPreferHash}
		e.shaper = shapePostgres
	case "mysql":
		e.Opts = planner.Options{Join: planner.JoinPreferNL, PreferIndexProbes: true}
		e.shaper = shapeMySQL
	case "tidb":
		e.Opts = planner.Options{
			Join: planner.JoinAuto, FuseTopN: true,
			PreferIndexProbes: true, PreferIndexOnly: true,
		}
		e.shaper = shapeTiDB
	case "sqlite":
		e.Opts = planner.Options{Join: planner.JoinPreferNL, PreferIndexProbes: true}
		e.shaper = shapeSQLite
	case "sqlserver":
		e.Opts = planner.Options{Join: planner.JoinAuto, Agg: planner.AggPreferSort}
		e.shaper = shapeSQLServer
	case "sparksql":
		e.Opts = planner.Options{Join: planner.JoinPreferMerge, Agg: planner.AggPreferHash}
		e.shaper = shapeSpark
	case "mongodb":
		e.Opts = planner.Options{Join: planner.JoinPreferNL, PreferIndexProbes: true}
		e.shaper = shapeMongo
	case "neo4j":
		e.Opts = planner.Options{Join: planner.JoinPreferHash}
		e.shaper = shapeNeo4j
	case "influxdb":
		e.Opts = planner.Options{}
		e.shaper = shapeInflux
	}
	return e, nil
}

// MustNew creates an engine or panics; for tests and static workloads.
func MustNew(name string) *Engine {
	e, err := New(name)
	if err != nil {
		panic(err)
	}
	return e
}

// planner returns a planner bound to the current schema state.
func (e *Engine) planner() *planner.Planner {
	return planner.New(e.DB.Schema, e.Opts)
}

// Execute parses, plans, and runs a statement, returning its result.
// EXPLAIN statements return the serialized plan as a single text column.
func (e *Engine) Execute(query string) (*exec.Result, error) {
	e.queries++
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	if ex, ok := stmt.(*sql.Explain); ok {
		format := explain.FormatText
		if ex.Format != "" {
			format = explain.Format(ex.Format)
		}
		var out string
		if ex.Analyze {
			out, err = e.explainStmt(ex.Stmt, format, true)
		} else {
			out, err = e.explainStmt(ex.Stmt, format, false)
		}
		if err != nil {
			return nil, err
		}
		return textResult(out), nil
	}
	plan, err := e.planner().Plan(stmt)
	if err != nil {
		return nil, err
	}
	ng := exec.New(e.DB)
	ng.Quirks = e.Quirks
	return ng.Run(plan)
}

// textResult wraps a serialized text plan as a one-column result, one row
// per line. It runs once per EXPLAIN on the campaign loop, so lines are
// cut with an index cursor rather than a per-call strings.Split slice.
//
//uplan:hotpath
func textResult(s string) *exec.Result {
	s = strings.TrimRight(s, "\n")
	res := &exec.Result{Columns: []string{"QUERY PLAN"}}
	for start := 0; start <= len(s); {
		end := strings.IndexByte(s[start:], '\n')
		if end < 0 {
			res.Rows = append(res.Rows, []datum.D{datum.Str(s[start:])})
			break
		}
		res.Rows = append(res.Rows, []datum.D{datum.Str(s[start : start+end])})
		start += end + 1
	}
	return res
}

// Explain plans the statement and serializes its native plan.
func (e *Engine) Explain(query string, format explain.Format) (string, error) {
	e.queries++
	stmt, err := sql.Parse(query)
	if err != nil {
		return "", err
	}
	if ex, ok := stmt.(*sql.Explain); ok {
		stmt = ex.Stmt
	}
	return e.explainStmt(stmt, format, false)
}

// ExplainAnalyze executes the statement and serializes its native plan
// with actual row counts and per-operator times.
func (e *Engine) ExplainAnalyze(query string, format explain.Format) (string, error) {
	e.queries++
	stmt, err := sql.Parse(query)
	if err != nil {
		return "", err
	}
	if ex, ok := stmt.(*sql.Explain); ok {
		stmt = ex.Stmt
	}
	return e.explainStmt(stmt, format, true)
}

func (e *Engine) explainStmt(stmt sql.Statement, format explain.Format, analyze bool) (string, error) {
	plan, err := e.planner().Plan(stmt)
	if err != nil {
		return "", err
	}
	var stats map[*planner.PhysOp]*exec.OpStats
	if analyze {
		ng := exec.New(e.DB)
		ng.Quirks = e.Quirks
		if _, err := ng.Run(plan); err != nil {
			return "", err
		}
		stats = ng.Stats
	}
	native := e.shaper(e, plan, stats)
	native.Dialect = e.Info.Name
	return explain.Serialize(native, format)
}

// NativePlan shapes a statement's plan without serialization (used by
// tests and the benchmark harness).
func (e *Engine) NativePlan(query string) (*explain.Plan, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	if ex, ok := stmt.(*sql.Explain); ok {
		stmt = ex.Stmt
	}
	plan, err := e.planner().Plan(stmt)
	if err != nil {
		return nil, err
	}
	native := e.shaper(e, plan, nil)
	native.Dialect = e.Info.Name
	return native, nil
}

// PhysicalPlan exposes the engine-neutral plan (used by CERT to read the
// optimizer's estimates directly in tests).
func (e *Engine) PhysicalPlan(query string) (*planner.PhysOp, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	if ex, ok := stmt.(*sql.Explain); ok {
		stmt = ex.Stmt
	}
	return e.planner().Plan(stmt)
}

// Analyze refreshes optimizer statistics for all tables.
func (e *Engine) Analyze() error { return e.DB.AnalyzeAll() }

// Queries returns how many statements (Execute, Explain, ExplainAnalyze)
// the engine has processed over its lifetime — the denominator campaign
// throughput stats report against.
func (e *Engine) Queries() int { return e.queries }

// DefaultFormat returns the engine's primary structured format when it has
// one, else its first supported format.
func (e *Engine) DefaultFormat() explain.Format {
	formats := Formats[e.Info.Name]
	for _, f := range formats {
		if f == explain.FormatJSON {
			return f
		}
	}
	for _, f := range formats {
		if f != explain.FormatGraph {
			return f
		}
	}
	return formats[0]
}

// nextID advances the engine's operator counter.
func (e *Engine) nextID() int {
	e.opSeq++
	return e.opSeq
}

// planningTimeMS derives a deterministic pseudo planning time from the
// plan's cost and the engine's query counter.
func (e *Engine) planningTimeMS(p *planner.PhysOp) float64 {
	base := 0.05 + p.TotalCost/1e6
	jitter := float64((e.queries*7+e.opSeq*3)%13) / 100
	return round3(base + jitter)
}

func round3(f float64) float64 { return float64(int(f*1000+0.5)) / 1000 }
func round2(f float64) float64 { return float64(int(f*100+0.5)) / 100 }

// SupportedFormats returns Table III's row for this engine.
func (e *Engine) SupportedFormats() []explain.Format {
	out := append([]explain.Format(nil), Formats[e.Info.Name]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
