package dbms

import (
	"fmt"
	"strings"

	"uplan/internal/exec"
	"uplan/internal/explain"
	"uplan/internal/planner"
	"uplan/internal/sql"
)

// -------------------------------------------------------------------- TiDB

// shapeTiDB reproduces TiDB's plan idioms: operators carry unstable _N
// suffixes, storage access is wrapped in root-task reader ("Collect")
// operators with cop-task children, filters appear as Selection operators,
// and a Projection caps most queries.
func shapeTiDB(e *Engine, root *planner.PhysOp, stats map[*planner.PhysOp]*exec.OpStats) *explain.Plan {
	id := func(name string) string { return fmt.Sprintf("%s_%d", name, e.nextID()) }
	var shape func(op *planner.PhysOp) *explain.Node
	shape = func(op *planner.PhysOp) *explain.Node {
		var n *explain.Node
		switch op.Kind {
		case planner.OpSeqScan:
			scan := explain.NewNode(id("TableFullScan"))
			scan.Object = op.Table
			scan.Task = "cop[tikv]"
			scan.Add("operator info", "keep order:false")
			scan.Add("rows", op.EstRows)
			actuals(scan, op, stats)
			inner := scan
			if op.Filter != nil {
				sel := explain.NewNode(id("Selection"), scan)
				sel.Task = "cop[tikv]"
				sel.Add("operator info", exprSQL(op.Filter))
				sel.Add("rows", op.EstRows)
				inner = sel
			}
			n = explain.NewNode(id("TableReader"), inner)
			n.Add("operator info", "data:"+inner.Name)
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpIndexScan:
			ixScan := explain.NewNode(id("IndexRangeScan"))
			ixScan.Object = op.Table
			ixScan.Task = "cop[tikv]"
			ixScan.Add("index", op.Index)
			ixScan.Add("operator info", "range decided by "+exprSQL(op.IndexCond))
			ixScan.Add("rows", op.EstRows)
			rowScan := explain.NewNode(id("TableRowIDScan"))
			rowScan.Object = op.Table
			rowScan.Task = "cop[tikv]"
			rowScan.Add("operator info", "keep order:false")
			rowScan.Add("rows", op.EstRows)
			if op.Filter != nil {
				sel := explain.NewNode(id("Selection"), rowScan)
				sel.Task = "cop[tikv]"
				sel.Add("operator info", exprSQL(op.Filter))
				n = explain.NewNode(id("IndexLookUp"), ixScan, sel)
			} else {
				n = explain.NewNode(id("IndexLookUp"), ixScan, rowScan)
			}
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpIndexOnlyScan:
			ixScan := explain.NewNode(id("IndexFullScan"))
			if op.IndexCond != nil {
				ixScan = explain.NewNode(id("IndexRangeScan"))
				ixScan.Add("operator info", "range decided by "+exprSQL(op.IndexCond))
			} else {
				ixScan.Add("operator info", "keep order:true")
			}
			ixScan.Object = op.Table
			ixScan.Task = "cop[tikv]"
			ixScan.Add("index", op.Index)
			ixScan.Add("rows", op.EstRows)
			n = explain.NewNode(id("IndexReader"), ixScan)
			n.Add("operator info", "index:"+ixScan.Name)
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpValues:
			n = explain.NewNode(id("TableDual"))
			n.Add("operator info", "rows:1")
			costProps(n, op)
		case planner.OpFilter:
			n = explain.NewNode(id("Selection"), shape(op.Children[0]))
			n.Add("operator info", exprSQL(op.Filter))
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpProject:
			n = explain.NewNode(id("Projection"), shape(op.Children[0]))
			var cols []string
			for _, c := range op.Schema {
				cols = append(cols, c.Name)
			}
			n.Add("operator info", strings.Join(cols, ", "))
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpNLJoin:
			n = explain.NewNode(id("IndexJoin"), shape(op.Children[0]), shape(op.Children[1]))
			n.Add("operator info", "inner join, "+exprSQL(op.JoinCond))
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpHashJoin, planner.OpMergeJoin:
			name := "HashJoin"
			if op.Kind == planner.OpMergeJoin {
				name = "MergeJoin"
			}
			// Joins whose inner side reads through an index become
			// IndexHashJoin (the q11 idiom of Listing 4).
			if innerUsesIndex(op.Children[1]) {
				name = "IndexHashJoin"
			}
			n = explain.NewNode(id(name), shape(op.Children[0]), shape(op.Children[1]))
			jt := "inner join"
			if op.JoinType == sql.JoinLeft {
				jt = "left outer join"
			}
			n.Add("operator info", jt+", equal:["+hashCondSQL(op)+"]")
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpHashAgg, planner.OpSortAgg:
			name := "HashAgg"
			if op.Kind == planner.OpSortAgg {
				name = "StreamAgg"
			}
			n = explain.NewNode(id(name), shape(op.Children[0]))
			n.Add("operator info", "group by:"+groupKeySQL(op.GroupBy)+", funcs:"+aggDetail(op))
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpSort:
			n = explain.NewNode(id("Sort"), shape(op.Children[0]))
			n.Add("operator info", sortKeySQL(op.SortKeys))
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpTopN:
			n = explain.NewNode(id("TopN"), shape(op.Children[0]))
			n.Add("operator info", fmt.Sprintf("%s, offset:%d, count:%d",
				sortKeySQL(op.SortKeys), op.Offset, op.Limit))
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpLimit:
			n = explain.NewNode(id("Limit"), shape(op.Children[0]))
			n.Add("operator info", fmt.Sprintf("offset:%d, count:%d", op.Offset, op.Limit))
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpDistinct:
			n = explain.NewNode(id("HashAgg"), shape(op.Children[0]))
			n.Add("operator info", "group by:all columns")
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpUnionAll, planner.OpUnion:
			n = explain.NewNode(id("Union"), shape(op.Children[0]), shape(op.Children[1]))
			costProps(n, op)
			if op.Kind == planner.OpUnion {
				agg := explain.NewNode(id("HashAgg"), n)
				agg.Add("operator info", "group by:all columns")
				costProps(agg, op)
				n = agg
			}
		case planner.OpIntersect, planner.OpExcept:
			n = explain.NewNode(id("HashJoin"), shape(op.Children[0]), shape(op.Children[1]))
			info := "semi join"
			if op.Kind == planner.OpExcept {
				info = "anti semi join"
			}
			n.Add("operator info", info)
			costProps(n, op)
		case planner.OpInsert, planner.OpUpdate, planner.OpDelete:
			name := map[planner.OpKind]string{
				planner.OpInsert: "Insert", planner.OpUpdate: "Update", planner.OpDelete: "Delete",
			}[op.Kind]
			n = explain.NewNode(id(name))
			n.Object = op.Table
			for _, c := range op.Children {
				n.Children = append(n.Children, shape(c))
			}
			costProps(n, op)
		default:
			n = explain.NewNode(id(string(op.Kind)))
			costProps(n, op)
		}
		appendSubplans(e, n, op, stats, shape)
		return n
	}
	return &explain.Plan{Root: shape(root)}
}

func innerUsesIndex(op *planner.PhysOp) bool {
	uses := false
	op.Walk(func(o *planner.PhysOp, _ int) {
		if o.Kind == planner.OpIndexScan || o.Kind == planner.OpIndexOnlyScan {
			uses = true
		}
	})
	return uses
}

// ------------------------------------------------------------------ SQLite

// shapeSQLite reproduces EXPLAIN QUERY PLAN: a flattened list of
// SCAN/SEARCH lines per table access in join order, TEMP B-TREE lines for
// grouping/ordering/distinct, and COMPOUND QUERY trees for set operations.
func shapeSQLite(e *Engine, root *planner.PhysOp, stats map[*planner.PhysOp]*exec.OpStats) *explain.Plan {
	var shapeQuery func(op *planner.PhysOp) []*explain.Node
	shapeQuery = func(op *planner.PhysOp) []*explain.Node {
		switch op.Kind {
		case planner.OpSeqScan:
			n := explain.NewNode("SCAN")
			n.Object = op.Alias
			return []*explain.Node{n}
		case planner.OpIndexScan:
			n := explain.NewNode("SEARCH")
			n.Object = op.Alias
			n.Add("detail", "USING INDEX "+op.Index+" ("+sqliteCond(op.IndexCond)+")")
			return []*explain.Node{n}
		case planner.OpIndexOnlyScan:
			n := explain.NewNode("SEARCH")
			n.Object = op.Alias
			n.Add("detail", "USING COVERING INDEX "+op.Index+" ("+sqliteCond(op.IndexCond)+")")
			return []*explain.Node{n}
		case planner.OpHashAgg, planner.OpSortAgg:
			nodes := shapeQuery(op.Children[0])
			if len(op.GroupBy) > 0 {
				nodes = append(nodes, explain.NewNode("USE TEMP B-TREE FOR GROUP BY"))
			}
			return nodes
		case planner.OpSort, planner.OpTopN:
			nodes := shapeQuery(op.Children[0])
			return append(nodes, explain.NewNode("USE TEMP B-TREE FOR ORDER BY"))
		case planner.OpDistinct:
			nodes := shapeQuery(op.Children[0])
			return append(nodes, explain.NewNode("USE TEMP B-TREE FOR DISTINCT"))
		case planner.OpUnion, planner.OpUnionAll, planner.OpIntersect, planner.OpExcept:
			leftSub := explain.NewNode("LEFT-MOST SUBQUERY")
			leftSub.Children = shapeQuery(op.Children[0])
			opName := map[planner.OpKind]string{
				planner.OpUnion: "UNION", planner.OpUnionAll: "UNION ALL",
				planner.OpIntersect: "INTERSECT", planner.OpExcept: "EXCEPT",
			}[op.Kind]
			rightSub := explain.NewNode(opName + " USING TEMP B-TREE")
			rightSub.Children = shapeQuery(op.Children[1])
			compound := explain.NewNode("COMPOUND QUERY", leftSub, rightSub)
			return []*explain.Node{compound}
		default:
			var nodes []*explain.Node
			for _, c := range op.Children {
				nodes = append(nodes, shapeQuery(c)...)
			}
			for _, sp := range op.Subplans {
				sub := explain.NewNode("CORRELATED SCALAR SUBQUERY")
				sub.Children = shapeQuery(sp.Plan)
				nodes = append(nodes, sub)
			}
			return nodes
		}
	}
	rootNode := explain.NewNode("QUERY PLAN")
	rootNode.Children = shapeQuery(root)
	return &explain.Plan{Root: rootNode}
}

func sqliteCond(cond sql.Expr) string {
	var parts []string
	for _, c := range planner.SplitConjuncts(cond) {
		switch t := c.(type) {
		case *sql.Binary:
			if ref, ok := t.L.(*sql.ColumnRef); ok {
				op := string(t.Op)
				if t.Op == sql.OpEq {
					op = "="
				}
				parts = append(parts, ref.Name+op+"?")
			}
		case *sql.InList:
			if ref, ok := t.X.(*sql.ColumnRef); ok {
				parts = append(parts, ref.Name+"=?")
			}
		case *sql.Between:
			if ref, ok := t.X.(*sql.ColumnRef); ok {
				parts = append(parts, ref.Name+">? AND "+ref.Name+"<?")
			}
		}
	}
	return strings.Join(parts, " AND ")
}

// -------------------------------------------------------------- SQL Server

func shapeSQLServer(e *Engine, root *planner.PhysOp, stats map[*planner.PhysOp]*exec.OpStats) *explain.Plan {
	var shape func(op *planner.PhysOp) *explain.Node
	shape = func(op *planner.PhysOp) *explain.Node {
		var n *explain.Node
		switch op.Kind {
		case planner.OpSeqScan:
			n = explain.NewNode("Table Scan")
			n.Object = op.Table
			if op.Filter != nil {
				n.Add("Predicate", exprSQL(op.Filter))
			}
			costProps(n, op)
			actuals(n, op, stats)
			if op.EstRows > pgParallelThreshold {
				par := explain.NewNode("Parallelism", n)
				par.Add("Partitioning Type", "Gather Streams")
				costProps(par, op)
				n = par
			}
		case planner.OpIndexScan:
			n = explain.NewNode("Index Seek")
			n.Object = op.Table
			n.Add("Object Index", op.Index)
			n.Add("Seek Predicate", exprSQL(op.IndexCond))
			if op.Filter != nil {
				n.Add("Predicate", exprSQL(op.Filter))
			}
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpIndexOnlyScan:
			n = explain.NewNode("Index Scan")
			n.Object = op.Table
			n.Add("Object Index", op.Index)
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpValues:
			n = explain.NewNode("Constant Scan")
			costProps(n, op)
		case planner.OpFilter:
			n = explain.NewNode("Filter", shape(op.Children[0]))
			n.Add("Predicate", exprSQL(op.Filter))
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpProject:
			n = explain.NewNode("Compute Scalar", shape(op.Children[0]))
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpNLJoin:
			n = explain.NewNode("Nested Loops", shape(op.Children[0]), shape(op.Children[1]))
			if op.JoinCond != nil {
				n.Add("Predicate", exprSQL(op.JoinCond))
			}
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpHashJoin:
			n = explain.NewNode("Hash Match", shape(op.Children[0]), shape(op.Children[1]))
			n.Add("Hash Keys Probe", hashCondSQL(op))
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpMergeJoin:
			n = explain.NewNode("Merge Join", shape(op.Children[0]), shape(op.Children[1]))
			n.Add("Predicate", hashCondSQL(op))
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpHashAgg:
			n = explain.NewNode("Hash Match Aggregate", shape(op.Children[0]))
			n.Add("Group By", groupKeySQL(op.GroupBy))
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpSortAgg:
			s := explain.NewNode("Sort", shape(op.Children[0]))
			s.Add("Order By", groupKeySQL(op.GroupBy))
			costProps(s, op.Children[0])
			n = explain.NewNode("Stream Aggregate", s)
			n.Add("Group By", groupKeySQL(op.GroupBy))
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpSort:
			n = explain.NewNode("Sort", shape(op.Children[0]))
			n.Add("Order By", sortKeySQL(op.SortKeys))
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpTopN, planner.OpLimit:
			var child *explain.Node
			if op.Kind == planner.OpTopN {
				child = explain.NewNode("Sort", shape(op.Children[0]))
				child.Add("Order By", sortKeySQL(op.SortKeys))
				costProps(child, op)
			} else {
				child = shape(op.Children[0])
			}
			n = explain.NewNode("Top", child)
			n.Add("Top Expression", fmt.Sprint(op.Limit))
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpDistinct:
			n = explain.NewNode("Hash Match Aggregate", shape(op.Children[0]))
			n.Add("Group By", "all output columns")
			costProps(n, op)
		case planner.OpUnionAll:
			n = explain.NewNode("Concatenation", shape(op.Children[0]), shape(op.Children[1]))
			costProps(n, op)
		case planner.OpUnion:
			cc := explain.NewNode("Concatenation", shape(op.Children[0]), shape(op.Children[1]))
			costProps(cc, op)
			n = explain.NewNode("Hash Match Aggregate", cc)
			n.Add("Group By", "all output columns")
			costProps(n, op)
		case planner.OpIntersect, planner.OpExcept:
			n = explain.NewNode("Hash Match", shape(op.Children[0]), shape(op.Children[1]))
			kind := "Left Semi Join"
			if op.Kind == planner.OpExcept {
				kind = "Left Anti Semi Join"
			}
			n.Add("Logical Operation", kind)
			costProps(n, op)
		case planner.OpInsert, planner.OpUpdate, planner.OpDelete:
			name := map[planner.OpKind]string{
				planner.OpInsert: "Table Insert", planner.OpUpdate: "Table Update",
				planner.OpDelete: "Table Delete",
			}[op.Kind]
			n = explain.NewNode(name)
			n.Object = op.Table
			for _, c := range op.Children {
				n.Children = append(n.Children, shape(c))
			}
			costProps(n, op)
		default:
			n = explain.NewNode(string(op.Kind))
			costProps(n, op)
		}
		appendSubplans(e, n, op, stats, shape)
		return n
	}
	return &explain.Plan{Root: shape(root)}
}
