package dbms

import (
	"fmt"
	"strings"

	"uplan/internal/exec"
	"uplan/internal/explain"
	"uplan/internal/planner"
	"uplan/internal/sql"
)

// The shapers convert the engine-neutral physical plan into each DBMS's
// native operator tree, reproducing the representational differences the
// paper documents: operator vocabularies, implicit vs explicit filter and
// projection operators, transport operators of distributed engines, and
// unstable operator identifiers.

// costProps attaches the standard estimate properties.
func costProps(n *explain.Node, op *planner.PhysOp) *explain.Node {
	n.Add("startup_cost", round2(op.StartCost)).
		Add("total_cost", round2(op.TotalCost)).
		Add("rows", round2(op.EstRows)).
		Add("width", op.Width)
	return n
}

// actuals attaches EXPLAIN ANALYZE data when available.
func actuals(n *explain.Node, op *planner.PhysOp, stats map[*planner.PhysOp]*exec.OpStats) *explain.Node {
	if stats == nil {
		return n
	}
	if st := stats[op]; st != nil {
		n.Add("actual_rows", st.ActualRows)
		n.Add("actual_time_ms", round3(float64(st.Duration.Microseconds())/1000))
		n.Add("loops", st.Loops)
	}
	return n
}

func exprSQL(e sql.Expr) string {
	if e == nil {
		return ""
	}
	return e.SQL()
}

func sortKeySQL(keys []sql.OrderItem) string {
	var parts []string
	for _, k := range keys {
		t := k.Expr.SQL()
		if k.Desc {
			t += " DESC"
		}
		parts = append(parts, t)
	}
	return strings.Join(parts, ", ")
}

func groupKeySQL(keys []sql.Expr) string {
	var parts []string
	for _, k := range keys {
		parts = append(parts, k.SQL())
	}
	return strings.Join(parts, ", ")
}

func hashCondSQL(op *planner.PhysOp) string {
	var parts []string
	for i := range op.HashKeysL {
		parts = append(parts, "("+op.HashKeysL[i].SQL()+" = "+op.HashKeysR[i].SQL()+")")
	}
	if len(parts) == 0 && op.JoinCond != nil {
		return op.JoinCond.SQL()
	}
	return strings.Join(parts, " AND ")
}

// scanObject renders "table" or "table alias" for scan nodes.
func scanObject(op *planner.PhysOp) string {
	if op.Alias != "" && !strings.EqualFold(op.Alias, op.Table) {
		return op.Table + " " + op.Alias
	}
	return op.Table
}

// appendSubplans shapes any subqueries attached to the operator and adds
// them as extra children (how PostgreSQL renders SubPlans, and the reason
// paper Listing 4 shows two aggregation trees for q11).
func appendSubplans(e *Engine, n *explain.Node, op *planner.PhysOp,
	stats map[*planner.PhysOp]*exec.OpStats,
	shape func(op *planner.PhysOp) *explain.Node) {
	for _, sp := range op.Subplans {
		n.Children = append(n.Children, shape(sp.Plan))
	}
}

// -------------------------------------------------------------- PostgreSQL

// pgParallelThreshold is the row estimate beyond which the simulated
// PostgreSQL plans a parallel scan under a Gather node (scaled to the
// harness's small populations the way min_parallel_table_scan_size scales
// to real ones).
const pgParallelThreshold = 150

func shapePostgres(e *Engine, root *planner.PhysOp, stats map[*planner.PhysOp]*exec.OpStats) *explain.Plan {
	var shape func(op *planner.PhysOp) *explain.Node
	shape = func(op *planner.PhysOp) *explain.Node {
		var n *explain.Node
		switch op.Kind {
		case planner.OpSeqScan:
			if op.EstRows > pgParallelThreshold {
				scan := explain.NewNode("Parallel Seq Scan")
				scan.Object = scanObject(op)
				costProps(scan, op)
				if op.Filter != nil {
					scan.Add("Filter", exprSQL(op.Filter))
				}
				actuals(scan, op, stats)
				n = explain.NewNode("Gather", scan)
				n.Add("Workers Planned", 2)
				costProps(n, op)
			} else {
				n = explain.NewNode("Seq Scan")
				n.Object = scanObject(op)
				costProps(n, op)
				if op.Filter != nil {
					n.Add("Filter", exprSQL(op.Filter))
				}
				actuals(n, op, stats)
			}
		case planner.OpIndexScan:
			if condHasRange(op.IndexCond) {
				inner := explain.NewNode("Bitmap Index Scan")
				inner.Object = op.Index
				inner.Add("Index Cond", exprSQL(op.IndexCond))
				costProps(inner, op)
				n = explain.NewNode("Bitmap Heap Scan", inner)
				n.Object = scanObject(op)
				n.Add("Recheck Cond", exprSQL(op.IndexCond))
				if op.Filter != nil {
					n.Add("Filter", exprSQL(op.Filter))
				}
				costProps(n, op)
				actuals(n, op, stats)
			} else {
				n = explain.NewNode("Index Scan")
				n.Object = scanObject(op)
				n.Add("Index Name", op.Index)
				n.Add("Index Cond", exprSQL(op.IndexCond))
				if op.Filter != nil {
					n.Add("Filter", exprSQL(op.Filter))
				}
				costProps(n, op)
				actuals(n, op, stats)
			}
		case planner.OpIndexOnlyScan:
			n = explain.NewNode("Index Only Scan")
			n.Object = scanObject(op)
			n.Add("Index Name", op.Index)
			if op.IndexCond != nil {
				n.Add("Index Cond", exprSQL(op.IndexCond))
			}
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpValues:
			n = explain.NewNode("Result")
			costProps(n, op)
		case planner.OpFilter:
			// PostgreSQL renders residual predicates as a property of the
			// node below, not as a standalone operator.
			n = shape(op.Children[0])
			n.Add("Filter", exprSQL(op.Filter))
			appendSubplans(e, n, op, stats, shape)
			return n
		case planner.OpProject:
			// No explicit projection operator in PostgreSQL plans.
			n = shape(op.Children[0])
			appendSubplans(e, n, op, stats, shape)
			return n
		case planner.OpNLJoin:
			// PostgreSQL materializes the rescanned inner side.
			inner := explain.NewNode("Materialize", shape(op.Children[1]))
			costProps(inner, op.Children[1])
			n = explain.NewNode("Nested Loop", shape(op.Children[0]), inner)
			if op.JoinCond != nil {
				n.Add("Join Filter", exprSQL(op.JoinCond))
			}
			if op.JoinType == sql.JoinLeft {
				n.Add("Join Type", "Left")
			}
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpHashJoin:
			hash := explain.NewNode("Hash", shape(op.Children[1]))
			costProps(hash, op.Children[1])
			n = explain.NewNode("Hash Join", shape(op.Children[0]), hash)
			n.Add("Hash Cond", hashCondSQL(op))
			if op.JoinType == sql.JoinLeft {
				n.Add("Join Type", "Left")
			}
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpMergeJoin:
			l := explain.NewNode("Sort", shape(op.Children[0]))
			l.Add("Sort Key", groupKeySQL(op.HashKeysL))
			costProps(l, op.Children[0])
			r := explain.NewNode("Sort", shape(op.Children[1]))
			r.Add("Sort Key", groupKeySQL(op.HashKeysR))
			costProps(r, op.Children[1])
			n = explain.NewNode("Merge Join", l, r)
			n.Add("Merge Cond", hashCondSQL(op))
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpHashAgg:
			name := "Aggregate"
			if len(op.GroupBy) > 0 {
				name = "HashAggregate"
			}
			n = explain.NewNode(name, shape(op.Children[0]))
			if len(op.GroupBy) > 0 {
				n.Add("Group Key", groupKeySQL(op.GroupBy))
			}
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpSortAgg:
			s := explain.NewNode("Sort", shape(op.Children[0]))
			s.Add("Sort Key", groupKeySQL(op.GroupBy))
			costProps(s, op.Children[0])
			n = explain.NewNode("GroupAggregate", s)
			n.Add("Group Key", groupKeySQL(op.GroupBy))
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpSort:
			n = explain.NewNode("Sort", shape(op.Children[0]))
			n.Add("Sort Key", sortKeySQL(op.SortKeys))
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpTopN:
			s := explain.NewNode("Sort", shape(op.Children[0]))
			s.Add("Sort Key", sortKeySQL(op.SortKeys))
			costProps(s, op)
			n = explain.NewNode("Limit", s)
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpLimit:
			n = explain.NewNode("Limit", shape(op.Children[0]))
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpDistinct:
			s := explain.NewNode("Sort", shape(op.Children[0]))
			costProps(s, op.Children[0])
			n = explain.NewNode("Unique", s)
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpUnionAll:
			n = explain.NewNode("Append", shape(op.Children[0]), shape(op.Children[1]))
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpUnion:
			app := explain.NewNode("Append", shape(op.Children[0]), shape(op.Children[1]))
			costProps(app, op)
			srt := explain.NewNode("Sort", app)
			costProps(srt, op)
			n = explain.NewNode("Unique", srt)
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpIntersect, planner.OpExcept:
			app := explain.NewNode("Append", shape(op.Children[0]), shape(op.Children[1]))
			costProps(app, op)
			n = explain.NewNode("SetOp", app)
			cmd := "Intersect"
			if op.Kind == planner.OpExcept {
				cmd = "Except"
			}
			n.Add("Command", cmd)
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpInsert, planner.OpUpdate, planner.OpDelete:
			name := map[planner.OpKind]string{
				planner.OpInsert: "Insert", planner.OpUpdate: "Update", planner.OpDelete: "Delete",
			}[op.Kind]
			n = explain.NewNode(name)
			n.Object = op.Table
			for _, c := range op.Children {
				n.Children = append(n.Children, shape(c))
			}
			costProps(n, op)
		default:
			n = explain.NewNode(string(op.Kind))
			costProps(n, op)
		}
		appendSubplans(e, n, op, stats, shape)
		return n
	}
	p := &explain.Plan{Root: shape(root)}
	p.PlanProps = append(p.PlanProps, explain.Prop{Key: "Planning Time", Val: fmt.Sprintf("%.3f ms", e.planningTimeMS(root))})
	if stats != nil {
		if st := stats[root]; st != nil {
			p.PlanProps = append(p.PlanProps, explain.Prop{Key: "Execution Time", Val: fmt.Sprintf("%.3f ms", float64(st.Duration.Microseconds())/1000)})
		}
	}
	return p
}

func condHasRange(cond sql.Expr) bool {
	for _, c := range planner.SplitConjuncts(cond) {
		switch t := c.(type) {
		case *sql.Binary:
			switch t.Op {
			case sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
				return true
			}
		case *sql.Between:
			return true
		case *sql.InList:
			return true
		}
	}
	return false
}

// ------------------------------------------------------------------ MySQL

func shapeMySQL(e *Engine, root *planner.PhysOp, stats map[*planner.PhysOp]*exec.OpStats) *explain.Plan {
	var shape func(op *planner.PhysOp) *explain.Node
	shape = func(op *planner.PhysOp) *explain.Node {
		var n *explain.Node
		switch op.Kind {
		case planner.OpSeqScan:
			scan := explain.NewNode("Table scan")
			scan.Object = op.Alias
			costProps(scan, op)
			actuals(scan, op, stats)
			if op.Filter != nil {
				n = explain.NewNode("Filter", scan)
				n.Add("detail", exprSQL(op.Filter))
				costProps(n, op)
			} else {
				n = scan
			}
		case planner.OpIndexScan, planner.OpIndexOnlyScan:
			name := "Index lookup"
			if condHasRange(op.IndexCond) && !condHasEq(op.IndexCond) {
				name = "Index range scan"
			}
			if op.Kind == planner.OpIndexOnlyScan {
				name = "Covering index lookup"
			}
			scan := explain.NewNode(name)
			scan.Object = op.Alias
			scan.Add("key", op.Index)
			scan.Add("condition", exprSQL(op.IndexCond))
			costProps(scan, op)
			actuals(scan, op, stats)
			if op.Filter != nil {
				n = explain.NewNode("Filter", scan)
				n.Add("detail", exprSQL(op.Filter))
				costProps(n, op)
			} else {
				n = scan
			}
		case planner.OpValues:
			n = explain.NewNode("Rows fetched before execution")
			costProps(n, op)
		case planner.OpFilter:
			n = explain.NewNode("Filter", shape(op.Children[0]))
			n.Add("detail", exprSQL(op.Filter))
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpProject:
			n = shape(op.Children[0])
			appendSubplans(e, n, op, stats, shape)
			return n
		case planner.OpNLJoin:
			name := "Nested loop inner join"
			if op.JoinType == sql.JoinLeft {
				name = "Nested loop left join"
			}
			n = explain.NewNode(name, shape(op.Children[0]), shape(op.Children[1]))
			if op.JoinCond != nil {
				n.Add("condition", exprSQL(op.JoinCond))
			}
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpHashJoin, planner.OpMergeJoin:
			name := "Inner hash join"
			if op.JoinType == sql.JoinLeft {
				name = "Left hash join"
			}
			n = explain.NewNode(name, shape(op.Children[0]), shape(op.Children[1]))
			n.Add("condition", hashCondSQL(op))
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpHashAgg, planner.OpSortAgg:
			var name string
			switch {
			case len(op.GroupBy) == 0:
				name = "Aggregate"
			case op.Kind == planner.OpSortAgg:
				name = "Group aggregate"
			default:
				name = "Aggregate using temporary table"
			}
			n = explain.NewNode(name, shape(op.Children[0]))
			n.Add("detail", aggDetail(op))
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpSort, planner.OpTopN:
			n = explain.NewNode("Sort", shape(op.Children[0]))
			n.Add("detail", sortKeySQL(op.SortKeys))
			costProps(n, op)
			actuals(n, op, stats)
			if op.Kind == planner.OpTopN {
				lim := explain.NewNode("Limit", n)
				lim.Add("detail", fmt.Sprintf("%d row(s)", op.Limit))
				costProps(lim, op)
				n = lim
			}
		case planner.OpLimit:
			n = explain.NewNode("Limit", shape(op.Children[0]))
			n.Add("detail", fmt.Sprintf("%d row(s)", op.Limit))
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpDistinct:
			n = explain.NewNode("Deduplicate", shape(op.Children[0]))
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpUnionAll:
			n = explain.NewNode("Union all", shape(op.Children[0]), shape(op.Children[1]))
			costProps(n, op)
		case planner.OpUnion:
			n = explain.NewNode("Union materialize", shape(op.Children[0]), shape(op.Children[1]))
			n.Add("detail", "with deduplication")
			costProps(n, op)
		case planner.OpIntersect:
			n = explain.NewNode("Intersect materialize", shape(op.Children[0]), shape(op.Children[1]))
			costProps(n, op)
		case planner.OpExcept:
			n = explain.NewNode("Except materialize", shape(op.Children[0]), shape(op.Children[1]))
			costProps(n, op)
		case planner.OpInsert, planner.OpUpdate, planner.OpDelete:
			name := map[planner.OpKind]string{
				planner.OpInsert: "Insert", planner.OpUpdate: "Update", planner.OpDelete: "Delete",
			}[op.Kind]
			n = explain.NewNode(name)
			n.Object = op.Table
			for _, c := range op.Children {
				n.Children = append(n.Children, shape(c))
			}
			costProps(n, op)
		default:
			n = explain.NewNode(string(op.Kind))
			costProps(n, op)
		}
		appendSubplans(e, n, op, stats, shape)
		return n
	}
	return &explain.Plan{Root: shape(root)}
}

func condHasEq(cond sql.Expr) bool {
	for _, c := range planner.SplitConjuncts(cond) {
		if b, ok := c.(*sql.Binary); ok && b.Op == sql.OpEq {
			return true
		}
		if _, ok := c.(*sql.InList); ok {
			return true
		}
	}
	return false
}

func aggDetail(op *planner.PhysOp) string {
	var parts []string
	for _, a := range op.Aggs {
		parts = append(parts, strings.ToLower(a.Name)+"("+aggArg(a)+")")
	}
	if len(op.GroupBy) > 0 {
		parts = append(parts, "group_by: "+groupKeySQL(op.GroupBy))
	}
	return strings.Join(parts, ", ")
}

func aggArg(a *sql.FuncCall) string {
	if a.Star {
		return "*"
	}
	var parts []string
	for _, x := range a.Args {
		parts = append(parts, x.SQL())
	}
	return strings.Join(parts, ", ")
}
