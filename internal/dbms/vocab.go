package dbms

import "uplan/internal/core"

// Vocabulary is the operation and property name inventory of one DBMS's
// query plan representation, classified into the paper's categories. The
// per-category counts reproduce paper Table II; the names are the
// documented operator/property identifiers of each system (collected, as
// in the paper, from documentation, source code, and observed plans).
type Vocabulary struct {
	Operations map[core.OperationCategory][]string
	Properties map[core.PropertyCategory][]string
}

// OperationCount returns the number of operations per category.
func (v Vocabulary) OperationCount() map[core.OperationCategory]int {
	out := map[core.OperationCategory]int{}
	for cat, names := range v.Operations {
		out[cat] = len(names)
	}
	return out
}

// PropertyCount returns the number of properties per category.
func (v Vocabulary) PropertyCount() map[core.PropertyCategory]int {
	out := map[core.PropertyCategory]int{}
	for cat, names := range v.Properties {
		out[cat] = len(names)
	}
	return out
}

// OperationTotal sums operation counts across categories.
func (v Vocabulary) OperationTotal() int {
	t := 0
	for _, names := range v.Operations {
		t += len(names)
	}
	return t
}

// PropertyTotal sums property counts across categories.
func (v Vocabulary) PropertyTotal() int {
	t := 0
	for _, names := range v.Properties {
		t += len(names)
	}
	return t
}

// Vocabularies maps engine key → vocabulary for all nine studied DBMSs.
var Vocabularies = map[string]Vocabulary{
	"influxdb": {
		// InfluxDB's query plans expose no operations at all (Section III-C).
		Operations: map[core.OperationCategory][]string{},
		Properties: map[core.PropertyCategory][]string{
			core.Cardinality: {"NUMBER OF SERIES", "NUMBER OF FILES", "NUMBER OF BLOCKS", "SIZE OF BLOCKS", "CACHED VALUES"},
			core.Status:      {"NUMBER OF SHARDS"},
		},
	},
	"mongodb": {
		Operations: map[core.OperationCategory][]string{
			core.Producer: {
				"COLLSCAN", "IXSCAN", "IDHACK", "GEO_NEAR_2D", "GEO_NEAR_2DSPHERE",
				"TEXT_MATCH", "DISTINCT_SCAN", "COUNT_SCAN", "RECORD_STORE_FAST_COUNT",
				"MULTI_ITERATOR", "QUEUED_DATA", "SUBPLAN", "EOF", "VIRTUAL_SCAN",
			},
			core.Combinator: {
				"SORT", "SORT_MERGE", "LIMIT", "SKIP", "OR", "AND_HASH",
				"AND_SORTED", "MERGE_SORT", "DEDUP",
			},
			core.Join: {},
			core.Folder: {
				"GROUP", "COUNT", "SAMPLE_FROM_RANDOM_CURSOR", "BUCKET_AUTO", "FACET",
			},
			core.Projector: {
				"PROJECTION_DEFAULT", "PROJECTION_SIMPLE", "PROJECTION_COVERED",
			},
			core.Executor: {
				"FETCH", "CACHED_PLAN", "SHARDING_FILTER", "SHARD_MERGE", "ENSURE_SORTED",
				"SPOOL", "RETURN_KEY", "TRIAL", "EXCHANGE", "BATCHED_DELETE",
			},
			core.Consumer: {"UPDATE", "DELETE", "UPSERT"},
		},
		Properties: map[core.PropertyCategory][]string{
			core.Cardinality: {
				"nReturned", "docsExamined", "keysExamined", "totalDocsExamined",
				"totalKeysExamined", "nCounted", "nSkipped", "dupsTested", "dupsDropped",
				"seenInvalidated", "nMatched", "nModified", "nWouldModify", "memLimit",
				"limitAmount", "skipAmount",
			},
			core.Cost: {"works", "advanced", "needTime", "needYield", "saveState"},
			core.Configuration: {
				"filter", "indexName", "keyPattern", "indexBounds", "direction",
				"isMultiKey", "multiKeyPaths", "isUnique", "isSparse", "isPartial",
				"indexVersion", "transformBy", "namespace", "parsedQuery",
				"sortPattern", "collation", "projection", "queryHash",
			},
			core.Status: {
				"executionTimeMillis", "executionTimeMillisEstimate", "isEOF",
				"restoreState", "isCached", "planCacheKey", "executionSuccess",
				"failed", "serverInfo", "serverParameters", "stage", "shards",
			},
		},
	},
	"mysql": {
		Operations: map[core.OperationCategory][]string{
			core.Producer: {
				"Table scan", "Index scan", "Index lookup", "Index range scan",
				"Covering index scan", "Covering index lookup", "Covering index range scan",
				"Single-row index lookup", "Single-row covering index lookup",
				"Full-text index search", "Index scan over a derived table",
				"Rows fetched before execution", "Constant row from child",
				"Index range scan (Multi-Range Read)", "Intersect rows sorted by row ID",
			},
			core.Combinator: {"Sort", "Limit", "Deduplicate"},
			core.Join:       {"Nested loop inner join", "Inner hash join"},
			core.Folder:     {"Aggregate"},
			core.Projector:  {},
			core.Executor:   {"Filter", "Materialize"},
			core.Consumer:   {},
		},
		Properties: map[core.PropertyCategory][]string{
			core.Cardinality: {"rows_examined_per_scan", "rows_produced_per_join", "filtered"},
			core.Cost: {
				"query_cost", "read_cost", "eval_cost", "prefix_cost",
				"sort_cost", "data_read_per_join",
			},
			core.Configuration: {"attached_condition", "key", "used_columns"},
			core.Status: {
				"select_id", "table_name", "access_type", "possible_keys", "key_length",
				"ref", "using_index", "using_filesort", "using_temporary_table", "backward_index_scan",
			},
		},
	},
	"neo4j": {
		Operations: map[core.OperationCategory][]string{
			core.Producer: {
				"AllNodesScan", "NodeByLabelScan", "NodeByIdSeek", "NodeByElementIdSeek",
				"NodeIndexSeek", "NodeUniqueIndexSeek", "NodeIndexSeekByRange",
				"NodeIndexScan", "NodeIndexContainsScan", "NodeIndexEndsWithScan",
				"MultiNodeIndexSeek", "AssertingMultiNodeIndexSeek", "IntersectionNodeByLabelsScan",
				"UnionNodeByLabelsScan", "SubtractionNodeByLabelsScan", "PartitionedAllNodesScan",
				"PartitionedNodeByLabelScan", "Argument",
			},
			core.Combinator: {
				"Sort", "PartialSort", "Top", "PartialTop", "Limit", "ExhaustiveLimit",
				"Skip", "Distinct", "OrderedDistinct", "Union", "OrderedUnion",
			},
			core.Join: {
				"DirectedRelationshipIndexScan", "UndirectedRelationshipIndexScan",
				"DirectedRelationshipIndexSeek", "UndirectedRelationshipIndexSeek",
				"DirectedRelationshipIndexContainsScan", "UndirectedRelationshipIndexContainsScan",
				"DirectedRelationshipIndexEndsWithScan", "UndirectedRelationshipIndexEndsWithScan",
				"DirectedRelationshipIndexSeekByRange", "UndirectedRelationshipIndexSeekByRange",
				"DirectedRelationshipTypeScan", "UndirectedRelationshipTypeScan",
				"DirectedAllRelationshipsScan", "UndirectedAllRelationshipsScan",
				"DirectedRelationshipByIdSeek", "UndirectedRelationshipByIdSeek",
				"DirectedRelationshipByElementIdSeek", "UndirectedRelationshipByElementIdSeek",
				"DirectedUnionRelationshipTypesScan", "UndirectedUnionRelationshipTypesScan",
				"Expand(All)", "Expand(Into)", "OptionalExpand(All)", "OptionalExpand(Into)",
				"VarLengthExpand(All)", "VarLengthExpand(Into)", "VarLengthExpand(Pruning)",
				"BFSPruningVarLengthExpand(All)", "BFSPruningVarLengthExpand(Into)",
				"ShortestPath", "AllShortestPaths", "StatefulShortestPath(All)",
				"StatefulShortestPath(Into)", "ProjectEndpoints", "NodeHashJoin",
				"ValueHashJoin", "LeftOuterHashJoin", "RightOuterHashJoin",
				"CartesianProduct", "TriadicSelection", "TriadicBuild", "TriadicFilter",
				"Trail",
			},
			core.Folder: {
				"EagerAggregation", "OrderedAggregation", "NodeCountFromCountStore",
				"RelationshipCountFromCountStore", "Rollup", "PercentileDisc",
			},
			core.Projector: {"ProduceResults", "Projection", "UnwindCollection"},
			core.Executor: {
				"Filter", "Apply", "SemiApply", "AntiSemiApply", "SelectOrSemiApply",
				"SelectOrAntiSemiApply", "LetSemiApply", "LetAntiSemiApply", "RollUpApply",
				"Optional", "Eager", "CacheProperties", "AssertSameNode", "AssertSameRelationship",
				"DropResult", "ErrorPlan", "NonFuseable",
			},
			core.Consumer: {
				"Create", "CreateNode", "CreateRelationship", "Delete", "DetachDelete",
				"SetLabels", "RemoveLabels", "SetNodeProperties", "SetRelationshipProperties",
				"SetProperty", "SetPropertiesFromMap", "Merge", "Foreach",
			},
		},
		Properties: map[core.PropertyCategory][]string{
			core.Cardinality: {"EstimatedRows", "Rows", "DbHits"},
			core.Cost:        {"Memory", "PageCacheHits", "PageCacheMisses"},
			core.Configuration: {
				"Details", "Order", "planner", "planner-impl", "planner-version",
				"runtime", "runtime-impl", "runtime-version", "batch-size",
				"Index", "LabelName", "RelationshipType",
			},
			core.Status: {
				"Time", "GlobalMemory", "AvailableWorkers", "Started",
				"TotalDatabaseAccesses", "TotalAllocatedMemory", "version",
			},
		},
	},
	"postgresql": {
		Operations: map[core.OperationCategory][]string{
			core.Producer: {
				"Seq Scan", "Parallel Seq Scan", "Index Scan", "Index Only Scan",
				"Bitmap Heap Scan", "Bitmap Index Scan", "Tid Scan", "Tid Range Scan",
				"Subquery Scan", "Function Scan", "Table Function Scan", "Values Scan",
				"CTE Scan", "Named Tuplestore Scan", "WorkTable Scan", "Foreign Scan",
				"Sample Scan", "Result",
			},
			core.Combinator: {
				"Sort", "Incremental Sort", "Limit", "Append", "Merge Append",
				"Unique", "SetOp", "LockRows",
			},
			core.Join:      {"Nested Loop", "Hash Join", "Merge Join"},
			core.Folder:    {"Aggregate", "GroupAggregate", "HashAggregate"},
			core.Projector: {},
			core.Executor: {
				"Hash", "Materialize", "Memoize", "Gather", "Gather Merge",
				"BitmapAnd", "BitmapOr", "WindowAgg", "Group",
			},
			core.Consumer: {"ModifyTable"},
		},
		Properties: map[core.PropertyCategory][]string{
			core.Cardinality: {
				"Plan Rows", "Plan Width", "Actual Rows", "Actual Loops",
				"Rows Removed by Filter", "Rows Removed by Index Recheck",
				"Exact Heap Blocks", "Lossy Heap Blocks",
			},
			core.Cost: {
				"Startup Cost", "Total Cost", "Actual Startup Time", "Actual Total Time",
				"Shared Hit Blocks", "Shared Read Blocks", "Shared Dirtied Blocks",
				"Shared Written Blocks", "Local Hit Blocks", "Local Read Blocks",
				"Local Dirtied Blocks", "Local Written Blocks", "Temp Read Blocks",
				"Temp Written Blocks", "I/O Read Time", "I/O Write Time", "Peak Memory Usage",
			},
			core.Configuration: {
				"Filter", "Index Cond", "Recheck Cond", "Hash Cond", "Merge Cond",
				"Join Filter", "Join Type", "Sort Key", "Presorted Key", "Group Key",
				"Grouping Sets", "Hash Key", "Index Name", "Relation Name", "Schema",
				"Alias", "Output", "CTE Name", "Subplan Name", "Function Name",
				"Table Function Name", "Tuplestore Name", "Scan Direction", "Strategy",
				"Partial Mode", "Parent Relationship", "Parallel Aware", "Async Capable",
				"Command", "Operation", "Inner Unique", "Single Copy", "Sort Method",
				"Sort Space Type", "Cache Key", "Cache Mode", "Conflict Resolution",
				"Conflict Arbiter Indexes", "Repeatable Seed", "Sampling Method",
				"Sampling Parameters", "Workers Planned",
			},
			core.Status: {
				"Planning Time", "Execution Time", "Workers Launched", "Workers",
				"Sort Space Used", "Hash Buckets", "Original Hash Buckets", "Hash Batches",
				"Original Hash Batches", "Heap Fetches", "WAL Records", "WAL FPI",
				"WAL Bytes", "Triggers", "Trigger Name", "Trigger Time", "Trigger Calls",
				"JIT", "JIT Functions", "JIT Options", "JIT Timing", "JIT Generation",
				"JIT Inlining", "JIT Optimization", "JIT Emission", "Planning Buffers",
				"Full-sort Groups", "Pre-sorted Groups", "Sort Methods Used",
				"Sort Space Memory", "Average Sort Space Used", "Peak Sort Space Used",
				"Disk Usage", "HashAgg Batches", "Memory Usage", "Buffers Hit",
				"Buffers Read", "Cache Hits", "Cache Misses", "Cache Evictions",
			},
		},
	},
	"sqlserver": {
		Operations: map[core.OperationCategory][]string{
			core.Producer: {
				"Table Scan", "Clustered Index Scan", "Clustered Index Seek", "Index Scan",
				"Index Seek", "Key Lookup", "RID Lookup", "Columnstore Index Scan",
				"Remote Scan", "Remote Index Scan", "Remote Index Seek", "Constant Scan",
				"Table-valued Function", "Deleted Scan", "Inserted Scan",
			},
			core.Combinator: {"Sort", "Top", "Concatenation"},
			core.Join:       {"Nested Loops", "Hash Match", "Merge Join"},
			core.Folder:     {"Stream Aggregate", "Hash Match Aggregate", "Window Aggregate"},
			core.Projector:  {},
			core.Executor: {
				"Compute Scalar", "Filter", "Parallelism", "Table Spool", "Index Spool",
				"Row Count Spool", "Window Spool", "Segment", "Sequence Project",
				"Assert", "Bitmap", "Merge Interval", "Split", "Collapse",
				"Compute Sequence", "Adaptive Join",
			},
			core.Consumer: {
				"Table Insert", "Table Update", "Table Delete", "Table Merge",
				"Clustered Index Insert", "Clustered Index Update", "Clustered Index Delete",
				"Clustered Index Merge", "Index Insert", "Index Update", "Index Delete",
				"Insert", "Update", "Delete", "Merge", "Assign", "Declare",
				"Sequence", "SELECT INTO",
			},
		},
		Properties: map[core.PropertyCategory][]string{
			core.Cardinality: {"EstimateRows", "EstimatedRowsRead", "ActualRows", "TableCardinality"},
			core.Cost:        {"EstimateIO", "EstimateCPU", "EstimatedTotalSubtreeCost", "EstimateRebinds"},
			core.Configuration: {
				"Predicate", "SeekPredicates", "OutputList", "OrderBy", "GroupBy",
				"Object", "DefinedValues",
			},
			core.Status: {"ActualExecutions", "ActualElapsedms", "DegreeOfParallelism"},
		},
	},
	"sqlite": {
		Operations: map[core.OperationCategory][]string{
			core.Producer: {"SCAN", "SEARCH", "SCAN CONSTANT ROW"},
			core.Combinator: {
				"COMPOUND QUERY", "UNION", "UNION ALL", "INTERSECT", "EXCEPT", "MERGE",
			},
			core.Join:      {"LEFT-MOST SUBQUERY", "RIGHT PART OF", "BLOOM FILTER ON"},
			core.Folder:    {},
			core.Projector: {},
			core.Executor: {
				"USE TEMP B-TREE FOR GROUP BY", "USE TEMP B-TREE FOR ORDER BY",
				"USE TEMP B-TREE FOR DISTINCT", "MATERIALIZE", "CO-ROUTINE",
			},
			core.Consumer: {},
		},
		Properties: map[core.PropertyCategory][]string{
			core.Configuration: {"USING INDEX", "USING COVERING INDEX", "USING INTEGER PRIMARY KEY"},
		},
	},
	"sparksql": {
		Operations: map[core.OperationCategory][]string{
			core.Producer: {
				"FileScan", "Scan ExistingRDD", "LocalTableScan", "Scan OneRowRelation",
				"BatchScan", "RowDataSourceScan", "InMemoryTableScan",
			},
			core.Combinator: {"Union"},
			core.Join:       {"SortMergeJoin", "BroadcastHashJoin"},
			core.Folder: {
				"HashAggregate", "SortAggregate", "ObjectHashAggregate",
				"Window", "WindowGroupLimit", "Expand",
			},
			core.Projector: {},
			core.Executor: {
				"Filter", "Project", "Sort", "Exchange", "BroadcastExchange",
				"AQEShuffleRead", "ShuffleQueryStage", "BroadcastQueryStage",
				"WholeStageCodegen", "AdaptiveSparkPlan", "InputAdapter", "ColumnarToRow",
				"RowToColumnar", "TakeOrderedAndProject", "GlobalLimit", "LocalLimit",
				"CollectLimit", "Coalesce", "Repartition", "RebalancePartitions",
				"CartesianProduct", "BroadcastNestedLoopJoin", "ShuffledHashJoin",
				"SubqueryBroadcast", "ReusedExchange", "ReusedSubquery", "Generate",
				"MapElements", "MapPartitions", "MapGroups", "FlatMapGroupsInPandas",
				"FlatMapGroupsWithState", "AppendColumns", "DeserializeToObject",
				"SerializeFromObject", "EvalPython", "ArrowEvalPython", "BatchEvalPython",
				"PythonMapInArrow", "MapInPandas", "Sample", "Range", "EventTimeWatermark",
			},
			core.Consumer: {
				"Execute InsertIntoHadoopFsRelationCommand", "Execute CreateViewCommand",
				"Execute DropTableCommand", "Execute CreateTableCommand",
				"Execute AlterTableCommand", "Execute TruncateTableCommand",
				"Execute RepairTableCommand", "Execute AnalyzeTableCommand",
				"Execute AnalyzeColumnCommand", "Execute SetCommand",
				"Execute ResetCommand", "Execute AddJarsCommand",
				"Execute CacheTableCommand", "Execute UncacheTableCommand",
				"Execute ClearCacheCommand", "Execute DescribeTableCommand",
				"Execute ShowTablesCommand", "SetCatalogAndNamespace",
			},
		},
		Properties: map[core.PropertyCategory][]string{
			core.Cardinality: {
				"rowCount", "sizeInBytes", "numFiles", "numPartitions", "numOutputRows",
				"dataSize", "numRows", "estimatedSize", "limit", "offset", "fetchSize",
			},
			core.Cost: {
				"spillSize", "shuffleBytesWritten", "shuffleRecordsWritten",
				"fetchWaitTime", "localBlocksRead", "remoteBlocksRead", "localBytesRead",
				"remoteBytesRead", "peakMemory", "sortTime", "aggTime",
			},
			core.Configuration: {},
			core.Status:        {},
		},
	},
	"tidb": {
		Operations: map[core.OperationCategory][]string{
			core.Producer: {
				"TableFullScan", "TableRangeScan", "TableRowIDScan", "IndexFullScan",
				"IndexRangeScan", "PointGet", "BatchPointGet", "TableDual", "TableSample",
				"MemTableScan", "IndexMergeReader", "CTEFullScan", "ForeignKeyCheck",
				"LoadData", "IndexLookUpReader", "Import", "DataSource", "ShowDDLJobs",
				"Show",
			},
			core.Combinator: {"Sort", "TopN", "Limit", "Union", "PartitionUnion", "HashDistinct"},
			core.Join: {
				"HashJoin", "MergeJoin", "IndexJoin", "IndexHashJoin",
				"IndexMergeJoin", "Apply", "CTETable",
			},
			core.Folder:    {"HashAgg", "StreamAgg", "WindowFunc", "Expand", "Grouping"},
			core.Projector: {"Projection"},
			core.Executor: {
				"TableReader", "IndexReader", "IndexLookUp", "IndexMerge", "Selection",
				"ExchangeSender", "ExchangeReceiver", "Shuffle", "ShuffleReceiver",
				"MaxOneRow", "UnionScan", "Cache", "CTE",
			},
			core.Consumer: {"Insert", "Update", "Delete", "Replace", "SelectLock"},
		},
		Properties: map[core.PropertyCategory][]string{
			core.Cardinality: {"estRows", "actRows"},
			core.Cost:        {"estCost", "costFormula", "memory", "disk", "cost_time"},
			core.Configuration: {
				"access object", "operator info", "partition", "index",
			},
			core.Status: {"task"},
		},
	},
}

// VocabularyFor returns the vocabulary of an engine key.
func VocabularyFor(name string) (Vocabulary, bool) {
	v, ok := Vocabularies[name]
	return v, ok
}
