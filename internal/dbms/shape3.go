package dbms

import (
	"fmt"
	"strings"

	"uplan/internal/exec"
	"uplan/internal/explain"
	"uplan/internal/planner"
	"uplan/internal/sql"
)

// ---------------------------------------------------------------- SparkSQL

// shapeSpark reproduces SparkSQL physical plans: FileScan leaves, explicit
// Filter/Project operators, partial/final aggregation pairs separated by
// Exchange operators, sort-merge joins over exchanges, and an
// AdaptiveSparkPlan root.
func shapeSpark(e *Engine, root *planner.PhysOp, stats map[*planner.PhysOp]*exec.OpStats) *explain.Plan {
	var shape func(op *planner.PhysOp) *explain.Node
	shape = func(op *planner.PhysOp) *explain.Node {
		var n *explain.Node
		switch op.Kind {
		case planner.OpSeqScan, planner.OpIndexScan, planner.OpIndexOnlyScan:
			scan := explain.NewNode("FileScan")
			scan.Object = "parquet [" + op.Table + "]"
			scan.Add("rows", op.EstRows)
			inner := scan
			filter := op.Filter
			if filter == nil {
				filter = op.IndexCond
			} else if op.IndexCond != nil {
				filter = &sql.Binary{Op: sql.OpAnd, L: op.IndexCond, R: op.Filter}
			}
			if filter != nil {
				f := explain.NewNode("Filter", scan)
				f.Add("args", "("+exprSQL(filter)+")")
				costProps(f, op)
				inner = f
			}
			n = inner
			actuals(n, op, stats)
		case planner.OpValues:
			n = explain.NewNode("LocalTableScan")
			costProps(n, op)
		case planner.OpFilter:
			n = explain.NewNode("Filter", shape(op.Children[0]))
			n.Add("args", "("+exprSQL(op.Filter)+")")
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpProject:
			var cols []string
			for _, c := range op.Schema {
				cols = append(cols, c.Name)
			}
			n = explain.NewNode("Project", shape(op.Children[0]))
			n.Add("args", " ["+strings.Join(cols, ", ")+"]")
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpNLJoin:
			n = explain.NewNode("BroadcastNestedLoopJoin",
				shape(op.Children[0]),
				explain.NewNode("BroadcastExchange", shape(op.Children[1])))
			if op.JoinCond != nil {
				n.Add("args", " "+exprSQL(op.JoinCond))
			}
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpHashJoin:
			bc := explain.NewNode("BroadcastExchange", shape(op.Children[1]))
			n = explain.NewNode("BroadcastHashJoin", shape(op.Children[0]), bc)
			n.Add("args", " ["+hashCondSQL(op)+"], Inner, BuildRight")
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpMergeJoin:
			l := explain.NewNode("Sort",
				explain.NewNode("Exchange", shape(op.Children[0])))
			l.Add("args", " ["+groupKeySQL(op.HashKeysL)+"]")
			r := explain.NewNode("Sort",
				explain.NewNode("Exchange", shape(op.Children[1])))
			r.Add("args", " ["+groupKeySQL(op.HashKeysR)+"]")
			n = explain.NewNode("SortMergeJoin", l, r)
			n.Add("args", " ["+hashCondSQL(op)+"], Inner")
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpHashAgg, planner.OpSortAgg:
			name := "HashAggregate"
			if op.Kind == planner.OpSortAgg {
				name = "SortAggregate"
			}
			partial := explain.NewNode(name, shape(op.Children[0]))
			partial.Add("args", fmt.Sprintf("(keys=[%s], functions=[partial_%s])",
				groupKeySQL(op.GroupBy), strings.ToLower(aggDetail(op))))
			exch := explain.NewNode("Exchange", partial)
			exch.Add("args", " hashpartitioning("+groupKeySQL(op.GroupBy)+", 200)")
			n = explain.NewNode(name, exch)
			n.Add("args", fmt.Sprintf("(keys=[%s], functions=[%s])",
				groupKeySQL(op.GroupBy), strings.ToLower(aggDetail(op))))
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpSort:
			exch := explain.NewNode("Exchange", shape(op.Children[0]))
			exch.Add("args", " rangepartitioning("+sortKeySQL(op.SortKeys)+", 200)")
			n = explain.NewNode("Sort", exch)
			n.Add("args", " ["+sortKeySQL(op.SortKeys)+"], true, 0")
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpTopN:
			n = explain.NewNode("TakeOrderedAndProject", shape(op.Children[0]))
			n.Add("args", fmt.Sprintf("(limit=%d, orderBy=[%s])", op.Limit, sortKeySQL(op.SortKeys)))
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpLimit:
			local := explain.NewNode("LocalLimit", shape(op.Children[0]))
			local.Add("args", fmt.Sprintf(" %d", op.Limit))
			n = explain.NewNode("GlobalLimit", local)
			n.Add("args", fmt.Sprintf(" %d", op.Limit))
			costProps(n, op)
			actuals(n, op, stats)
		case planner.OpDistinct:
			n = explain.NewNode("HashAggregate", shape(op.Children[0]))
			n.Add("args", "(keys=[all], functions=[])")
			costProps(n, op)
		case planner.OpUnionAll, planner.OpUnion:
			n = explain.NewNode("Union", shape(op.Children[0]), shape(op.Children[1]))
			costProps(n, op)
			if op.Kind == planner.OpUnion {
				agg := explain.NewNode("HashAggregate", n)
				agg.Add("args", "(keys=[all], functions=[])")
				costProps(agg, op)
				n = agg
			}
		case planner.OpIntersect, planner.OpExcept:
			n = explain.NewNode("BroadcastHashJoin", shape(op.Children[0]),
				explain.NewNode("BroadcastExchange", shape(op.Children[1])))
			kind := "LeftSemi"
			if op.Kind == planner.OpExcept {
				kind = "LeftAnti"
			}
			n.Add("args", " "+kind)
			costProps(n, op)
		default:
			n = explain.NewNode(string(op.Kind))
			for _, c := range op.Children {
				n.Children = append(n.Children, shape(c))
			}
			costProps(n, op)
		}
		appendSubplans(e, n, op, stats, shape)
		return n
	}
	body := shape(root)
	wsc := explain.NewNode("WholeStageCodegen (1)", body)
	top := explain.NewNode("AdaptiveSparkPlan", wsc)
	top.Add("args", " isFinalPlan=false")
	return &explain.Plan{Root: top}
}

// ----------------------------------------------------------------- MongoDB

// shapeMongo reproduces MongoDB's explain("queryPlanner") winning plan for
// the $cursor stage: a collection or index scan plus an optional
// projection. Aggregation pipeline stages ($group, $sort) do not appear in
// the winning plan, which is why the paper's Table VI reports exactly one
// Producer and one Projector per TPC-H query for MongoDB.
func shapeMongo(e *Engine, root *planner.PhysOp, stats map[*planner.PhysOp]*exec.OpStats) *explain.Plan {
	// Locate the primary scan and overall filter.
	var scanOp *planner.PhysOp
	var filters []string
	root.Walk(func(op *planner.PhysOp, _ int) {
		switch op.Kind {
		case planner.OpSeqScan, planner.OpIndexScan, planner.OpIndexOnlyScan:
			if scanOp == nil {
				scanOp = op
			}
		case planner.OpFilter:
			filters = append(filters, exprSQL(op.Filter))
		}
	})
	var scan *explain.Node
	switch {
	case scanOp == nil:
		scan = explain.NewNode("EOF")
	case scanOp.Kind == planner.OpIndexScan || scanOp.Kind == planner.OpIndexOnlyScan:
		ix := explain.NewNode("IXSCAN")
		ix.Object = scanOp.Table
		ix.Add("indexName", scanOp.Index)
		ix.Add("keyPattern", exprSQL(scanOp.IndexCond))
		ix.Add("direction", "forward")
		actuals(ix, scanOp, stats)
		scan = explain.NewNode("FETCH", ix)
		if scanOp.Filter != nil {
			scan.Add("filter", exprSQL(scanOp.Filter))
		}
	default:
		scan = explain.NewNode("COLLSCAN")
		scan.Object = scanOp.Table
		scan.Add("direction", "forward")
		if scanOp.Filter != nil {
			filters = append([]string{exprSQL(scanOp.Filter)}, filters...)
		}
		if len(filters) > 0 {
			scan.Add("filter", strings.Join(filters, " AND "))
		}
		actuals(scan, scanOp, stats)
	}
	// Projection wrapper only when the query projects specific columns.
	node := scan
	if proj := findProject(root); proj != nil && !projectsEverything(proj) {
		var cols []string
		for _, c := range proj.Schema {
			cols = append(cols, c.Name+": 1")
		}
		p := explain.NewNode("PROJECTION_DEFAULT", scan)
		p.Add("transformBy", "{ "+strings.Join(cols, ", ")+" }")
		node = p
	}
	return &explain.Plan{Root: node}
}

func findProject(root *planner.PhysOp) *planner.PhysOp {
	var found *planner.PhysOp
	root.Walk(func(op *planner.PhysOp, _ int) {
		if found == nil && op.Kind == planner.OpProject {
			found = op
		}
	})
	return found
}

// projectsEverything reports whether the projection is a plain SELECT *
// over its input: every output is a bare column reference and all input
// columns pass through. Computed outputs (aggregates, expressions) require
// a projection stage.
func projectsEverything(proj *planner.PhysOp) bool {
	if len(proj.Children) == 0 {
		return false
	}
	if len(proj.Projections) != len(proj.Children[0].Schema) {
		return false
	}
	for _, e := range proj.Projections {
		if _, ok := e.(*sql.ColumnRef); !ok {
			return false
		}
	}
	return true
}

// ------------------------------------------------------------------- Neo4j

// shapeNeo4j reproduces Neo4j plan tables: graph-model operators where
// table scans become label scans, joins become relationship traversals
// (classified Join per the paper's study), predicates become Filter
// operators, and every plan is capped by ProduceResults.
func shapeNeo4j(e *Engine, root *planner.PhysOp, stats map[*planner.PhysOp]*exec.OpStats) *explain.Plan {
	dbHits := 0
	var shape func(op *planner.PhysOp) *explain.Node
	joinDepth := 0
	root.Walk(func(op *planner.PhysOp, _ int) {
		switch op.Kind {
		case planner.OpNLJoin, planner.OpHashJoin, planner.OpMergeJoin:
			joinDepth++
		}
	})
	shape = func(op *planner.PhysOp) *explain.Node {
		var n *explain.Node
		switch op.Kind {
		case planner.OpSeqScan, planner.OpIndexOnlyScan:
			if joinDepth > 0 {
				// In the graph encoding of relational workloads, base data
				// for joined queries is reached through relationships.
				n = explain.NewNode("DirectedRelationshipTypeScan")
				n.Object = "(:" + op.Table + ")-[r]->()"
			} else {
				n = explain.NewNode("NodeByLabelScan")
				n.Object = ":" + op.Table
			}
			n.Add("rows", op.EstRows)
			dbHits += int(op.EstRows)
			actuals(n, op, stats)
			if op.Filter != nil {
				f := explain.NewNode("Filter", n)
				f.Add("Details", exprSQL(op.Filter))
				costProps(f, op)
				n = f
			}
		case planner.OpIndexScan:
			n = explain.NewNode("NodeIndexSeek")
			n.Object = ":" + op.Table + "(" + op.Index + ")"
			n.Add("Details", exprSQL(op.IndexCond))
			n.Add("rows", op.EstRows)
			dbHits += int(op.EstRows)
			actuals(n, op, stats)
			if op.Filter != nil {
				f := explain.NewNode("Filter", n)
				f.Add("Details", exprSQL(op.Filter))
				n = f
			}
		case planner.OpValues:
			n = explain.NewNode("Argument")
		case planner.OpFilter:
			n = explain.NewNode("Filter", shape(op.Children[0]))
			n.Add("Details", exprSQL(op.Filter))
			n.Add("rows", op.EstRows)
			actuals(n, op, stats)
		case planner.OpProject:
			n = explain.NewNode("Projection", shape(op.Children[0]))
			var cols []string
			for _, c := range op.Schema {
				cols = append(cols, c.Name)
			}
			n.Add("Details", strings.Join(cols, ", "))
			n.Add("rows", op.EstRows)
			actuals(n, op, stats)
		case planner.OpNLJoin, planner.OpHashJoin, planner.OpMergeJoin:
			// Relational joins become relationship expansions from the left
			// input; the right subtree's scans are implied by the expansion.
			left := shape(op.Children[0])
			n = explain.NewNode("Expand(All)", left)
			n.Add("Details", "("+joinDetail(op)+")")
			n.Add("rows", op.EstRows)
			dbHits += int(op.EstRows)
			actuals(n, op, stats)
			if op.JoinType == sql.JoinLeft {
				n.Name = "OptionalExpand(All)"
			}
			// A second expansion models reaching the right side's relation.
			if hasBaseScan(op.Children[1]) {
				into := explain.NewNode("Expand(Into)", n)
				into.Add("Details", "("+rightScanDetail(op.Children[1])+")")
				into.Add("rows", op.EstRows)
				n = into
			}
		case planner.OpHashAgg, planner.OpSortAgg:
			name := "EagerAggregation"
			if op.Kind == planner.OpSortAgg {
				name = "OrderedAggregation"
			}
			n = explain.NewNode(name, shape(op.Children[0]))
			n.Add("Details", groupKeySQL(op.GroupBy))
			n.Add("rows", op.EstRows)
			actuals(n, op, stats)
		case planner.OpSort:
			n = explain.NewNode("Sort", shape(op.Children[0]))
			n.Add("Details", sortKeySQL(op.SortKeys))
			n.Add("rows", op.EstRows)
			actuals(n, op, stats)
		case planner.OpTopN:
			n = explain.NewNode("Top", shape(op.Children[0]))
			n.Add("Details", fmt.Sprintf("%s LIMIT %d", sortKeySQL(op.SortKeys), op.Limit))
			n.Add("rows", op.EstRows)
		case planner.OpLimit:
			n = explain.NewNode("Limit", shape(op.Children[0]))
			n.Add("Details", fmt.Sprint(op.Limit))
			n.Add("rows", op.EstRows)
		case planner.OpDistinct:
			n = explain.NewNode("Distinct", shape(op.Children[0]))
			n.Add("rows", op.EstRows)
		case planner.OpUnion, planner.OpUnionAll:
			n = explain.NewNode("Union", shape(op.Children[0]), shape(op.Children[1]))
			n.Add("rows", op.EstRows)
			if op.Kind == planner.OpUnion {
				d := explain.NewNode("Distinct", n)
				d.Add("rows", op.EstRows)
				n = d
			}
		default:
			if len(op.Children) == 1 {
				return shape(op.Children[0])
			}
			n = explain.NewNode("Apply")
			for _, c := range op.Children {
				n.Children = append(n.Children, shape(c))
			}
		}
		appendSubplans(e, n, op, stats, shape)
		return n
	}
	body := shape(root)
	top := explain.NewNode("ProduceResults", body)
	var cols []string
	for _, c := range root.Schema {
		cols = append(cols, c.Name)
	}
	top.Add("Details", strings.Join(cols, ", "))
	top.Add("rows", root.EstRows)
	p := &explain.Plan{Root: top}
	p.PlanProps = append(p.PlanProps,
		explain.Prop{Key: "planner", Val: "COST"},
		explain.Prop{Key: "runtime version", Val: "5.10"},
		explain.Prop{Key: "database accesses", Val: dbHits},
		explain.Prop{Key: "memory", Val: 184},
	)
	return p
}

func joinDetail(op *planner.PhysOp) string {
	if len(op.HashKeysL) > 0 {
		return op.HashKeysL[0].SQL() + ")-[r]->(" + op.HashKeysR[0].SQL()
	}
	return "a)-[r]->(b"
}

func hasBaseScan(op *planner.PhysOp) bool {
	has := false
	op.Walk(func(o *planner.PhysOp, _ int) {
		switch o.Kind {
		case planner.OpSeqScan, planner.OpIndexScan, planner.OpIndexOnlyScan:
			has = true
		}
	})
	return has
}

func rightScanDetail(op *planner.PhysOp) string {
	detail := "b"
	op.Walk(func(o *planner.PhysOp, _ int) {
		if o.Table != "" {
			detail = "b:" + o.Table
		}
	})
	return detail
}

// ---------------------------------------------------------------- InfluxDB

// shapeInflux reproduces InfluxDB's EXPLAIN output: no operators at all,
// only plan-level properties (paper Section III-B: "InfluxDB's query plan
// representation includes only a list of plan-associated properties").
func shapeInflux(e *Engine, root *planner.PhysOp, stats map[*planner.PhysOp]*exec.OpStats) *explain.Plan {
	expr := ""
	if proj := findProject(root); proj != nil && len(proj.Projections) > 0 {
		expr = proj.Projections[0].SQL()
	}
	series := int(root.EstRows)
	if series < 1 {
		series = 1
	}
	p := &explain.Plan{}
	p.PlanProps = append(p.PlanProps,
		explain.Prop{Key: "expression", Val: expr},
		explain.Prop{Key: "number of shards", Val: 2},
		explain.Prop{Key: "number of series", Val: series},
		explain.Prop{Key: "cached values", Val: 0},
		explain.Prop{Key: "number of files", Val: 2 + series/100},
		explain.Prop{Key: "number of blocks", Val: 4 + series/50},
		explain.Prop{Key: "size of blocks", Val: 1024 + series*16},
	)
	return p
}
