// Package campaign is the concurrent multi-engine testing orchestrator —
// the paper's headline application (A.1) run at fleet scale. QPG (Ba &
// Rigger, ICSE 2023), CERT (ICSE 2024), and the TLP oracle are each
// implemented once over the unified plan representation; this package
// fans all three out across every simulated engine on one bounded worker
// pool (the chunked-dispatch core shared with internal/pipeline), merges
// their findings into a race-safe deduplicating store, and aggregates
// per-engine statistics in the style of pipeline.Stats.
//
// Determinism contract: each (engine, oracle) task derives its generator
// seed from the top-level seed and its own identity, runs strictly
// sequentially inside one worker, and dedups findings on a key that
// embeds that identity — so the same top-level seed produces a
// byte-identical finding set at any worker count and under any
// scheduling.
package campaign

import (
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"time"

	"uplan/internal/cert"
	"uplan/internal/core"
	"uplan/internal/dbms"
	"uplan/internal/exec"
	"uplan/internal/pipeline"
	"uplan/internal/qpg"
	"uplan/internal/sqlancer"
	"uplan/internal/tlp"
)

// Oracle names one of the DBMS-agnostic testing techniques the
// orchestrator can run.
type Oracle string

// The three oracles, in canonical order.
const (
	OracleQPG  Oracle = "qpg"  // plan-guided generation + differential oracle
	OracleCERT Oracle = "cert" // cardinality-estimate monotonicity
	OracleTLP  Oracle = "tlp"  // ternary logic partitioning
)

// AllOracles lists the oracles in canonical order.
func AllOracles() []Oracle { return []Oracle{OracleQPG, OracleCERT, OracleTLP} }

// Kind classifies campaign findings.
type Kind string

// Finding kinds. The first three mirror qpg.BugKind; estimate findings
// come from the CERT oracle.
const (
	KindLogic    Kind = "logic"      // wrong results (TLP or differential)
	KindCrash    Kind = "crash"      // execution error on generated input
	KindPlan     Kind = "plan-parse" // converter failed on the engine's plan
	KindEstimate Kind = "estimate"   // estimate monotonicity broken or unreadable
)

// Finding is one deduplicated campaign discovery.
type Finding struct {
	Engine string
	Oracle Oracle
	Kind   Kind
	Query  string
	Detail string
}

func (f Finding) String() string {
	return fmt.Sprintf("[%s/%s/%s] %s — %s", f.Engine, f.Oracle, f.Kind, f.Query, f.Detail)
}

// Options tune a campaign run.
type Options struct {
	// Engines lists the engine keys to test. Empty means all nine studied
	// engines, in Table I order.
	Engines []string
	// Oracles lists the techniques to run per engine. Empty means all
	// three.
	Oracles []Oracle
	// Queries is the generated-query budget per (engine, oracle) task.
	Queries int
	// StallThreshold is QPG's mutation trigger: queries without a new plan
	// fingerprint before the database is mutated.
	StallThreshold int
	// Tables and Rows size each task's generated schema.
	Tables int
	Rows   int
	// Seed is the top-level seed. Every task derives its own generator
	// seed from it deterministically, so the finding set depends only on
	// Seed (and the other option values), never on scheduling.
	Seed int64
	// Workers bounds the task pool. Non-positive means GOMAXPROCS; the
	// pool additionally clamps to the task count.
	Workers int
	// MaxFindings stops an individual task after it has contributed that
	// many findings; 0 means no cap.
	MaxFindings int
	// Inject, when set, is applied to every target engine right after
	// construction — the hook the Table V reproduction uses to plant
	// defects. QPG's pristine reference engines are never injected.
	Inject func(e *dbms.Engine)
}

// DefaultOptions returns the budget the campaign smoke runs use.
func DefaultOptions() Options {
	return Options{
		Queries:        100,
		StallThreshold: 8,
		Tables:         2,
		Rows:           12,
		Seed:           1,
		MaxFindings:    10,
	}
}

func (o Options) withDefaults() Options {
	if len(o.Engines) == 0 {
		o.Engines = dbms.Names()
	}
	if len(o.Oracles) == 0 {
		o.Oracles = AllOracles()
	}
	if o.Queries <= 0 {
		o.Queries = 100
	}
	if o.StallThreshold <= 0 {
		o.StallThreshold = 8
	}
	if o.Tables <= 0 {
		o.Tables = 2
	}
	if o.Rows <= 0 {
		o.Rows = 12
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Result is a campaign run's outcome: the deduplicated findings in
// canonical order plus the merged statistics.
type Result struct {
	Findings []Finding
	Stats    Stats
}

// task is one (engine, oracle) unit of fan-out work.
type task struct {
	engine string
	oracle Oracle
}

// taskDelta is one task's contribution to the merged stats, plus its
// hard failure (engine construction or schema setup), if any.
type taskDelta struct {
	queries, statements      int
	planQueries, newPlans    int
	distinctPlans, mutations int
	checks, skipped          int
	err                      error
}

// Run fans the configured oracles out across the configured engines on a
// bounded worker pool and returns the merged result. Each task builds its
// own engine instance(s), so tasks share no mutable state except the
// race-safe finding store. Hard task failures (an unknown engine key, a
// schema that would not apply) are joined into the returned error; the
// Result still covers every task that ran.
func Run(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	tasks := make([]task, 0, len(opts.Engines)*len(opts.Oracles))
	for _, e := range opts.Engines {
		for _, o := range opts.Oracles {
			tasks = append(tasks, task{engine: e, oracle: o})
		}
	}

	st := newStore()
	start := time.Now()
	deltas := make([]taskDelta, len(tasks))
	// Chunk size 1: campaign tasks are seconds-long, so per-task claiming
	// keeps the pool balanced; the worker state the conversion pipeline
	// threads through the pool is unused here because every task owns its
	// engines outright.
	pipeline.ForEachChunked(len(tasks), opts.Workers, 1,
		func() struct{} { return struct{}{} },
		func(_ struct{}, lo, hi int) {
			for i := lo; i < hi; i++ {
				deltas[i] = runTask(tasks[i], opts, st)
			}
		},
		func(struct{}) {})

	res := &Result{Stats: Stats{Engines: map[string]*EngineStats{}}}
	var errs []error
	for i, d := range deltas {
		es := res.Stats.engineStats(tasks[i].engine)
		es.Queries += d.queries
		es.Statements += d.statements
		es.PlanQueries += d.planQueries
		es.NewPlans += d.newPlans
		es.DistinctPlans += d.distinctPlans
		es.Mutations += d.mutations
		es.Checks += d.checks
		es.Skipped += d.skipped
		res.Stats.Queries += d.queries
		res.Stats.Statements += d.statements
		if d.err != nil {
			errs = append(errs, fmt.Errorf("campaign: %s/%s: %w", tasks[i].engine, tasks[i].oracle, d.err))
		}
	}
	res.Stats.Elapsed = time.Since(start)
	res.Stats.DistinctPlans = st.distinctPlans()
	res.Findings = st.sorted()
	res.Stats.Findings = len(res.Findings)
	for _, f := range res.Findings {
		es := res.Stats.engineStats(f.Engine)
		es.Findings++
		es.ByKind[f.Kind]++
	}
	return res, errors.Join(errs...)
}

// deriveSeed mixes the top-level seed with the task identity so every
// task gets an independent, reproducible generator stream regardless of
// which worker runs it or when.
func deriveSeed(seed int64, engine string, oracle Oracle) int64 {
	h := fnv.New64a()
	h.Write([]byte(engine))
	h.Write([]byte{0})
	h.Write([]byte(oracle))
	return seed ^ int64(h.Sum64())
}

// runTask builds the task's target engine and dispatches to its oracle.
func runTask(t task, opts Options, st *store) taskDelta {
	var d taskDelta
	e, err := dbms.New(t.engine)
	if err != nil {
		d.err = err
		return d
	}
	if opts.Inject != nil {
		opts.Inject(e)
	}
	seed := deriveSeed(opts.Seed, t.engine, t.oracle)
	switch t.oracle {
	case OracleQPG:
		runQPGTask(e, seed, opts, st, &d)
	case OracleCERT:
		runCERTTask(e, seed, opts, st, &d)
	case OracleTLP:
		runTLPTask(e, seed, opts, st, &d)
	default:
		d.err = fmt.Errorf("unknown oracle %q", t.oracle)
	}
	d.statements = e.Queries()
	return d
}

// runQPGTask runs a full QPG campaign (plan guidance, differential and TLP
// oracles, mutation feedback) against the engine, streaming every observed
// unified plan into the cross-engine store.
func runQPGTask(e *dbms.Engine, seed int64, opts Options, st *store, d *taskDelta) {
	qopts := qpg.Options{
		Queries:        opts.Queries,
		StallThreshold: opts.StallThreshold,
		Seed:           seed,
		MaxFindings:    opts.MaxFindings,
	}
	c, err := qpg.New(e, qopts)
	if err != nil {
		d.err = err
		return
	}
	// The campaign's hot loop decodes plans into a reused arena; the
	// observer must only fingerprint, never retain.
	c.Observer = func(p *core.Plan) { st.observePlan(p) }
	if err := c.Setup(opts.Tables, opts.Rows); err != nil {
		d.err = err
		return
	}
	for _, f := range c.Run(qopts) {
		st.add(Finding{
			Engine: e.Info.Name,
			Oracle: OracleQPG,
			Kind:   Kind(f.Kind),
			Query:  f.Query,
			Detail: f.Detail,
		})
	}
	d.queries = c.QueriesRun
	d.planQueries = c.PlansObserved
	d.newPlans = c.NewPlans
	d.distinctPlans = c.Plans.Size()
	d.mutations = c.Mutations
}

// runCERTTask runs the CERT oracle: random base/restricted pairs whose
// estimates must shrink. Unplannable pairs are skipped; a readable-estimate
// failure is itself a finding (the engine planned the query but its plan
// exposes no estimate, or the plan did not convert).
func runCERTTask(e *dbms.Engine, seed int64, opts Options, st *store, d *taskDelta) {
	gen := sqlancer.New(seed)
	if err := applySchema(e, gen, opts); err != nil {
		d.err = err
		return
	}
	checker, err := cert.New(e)
	if err != nil {
		d.err = err
		return
	}
	found := 0
	for i := 0; i < opts.Queries; i++ {
		if opts.MaxFindings > 0 && found >= opts.MaxFindings {
			break
		}
		d.queries++
		base, restricted := gen.RestrictableQuery()
		v, err := checker.CheckPair(base, restricted)
		var f Finding
		switch {
		case errors.Is(err, cert.ErrUnplannable):
			d.skipped++
			continue
		case errors.Is(err, cert.ErrNoEstimate):
			f = Finding{
				Engine: e.Info.Name, Oracle: OracleCERT, Kind: KindEstimate,
				Query: base, Detail: "no cardinality estimate in plan",
			}
		case err != nil:
			f = Finding{
				Engine: e.Info.Name, Oracle: OracleCERT, Kind: KindPlan,
				Query: base, Detail: err.Error(),
			}
		case v != nil:
			f = Finding{
				Engine: e.Info.Name, Oracle: OracleCERT, Kind: KindEstimate,
				Query: v.Restricted, Detail: v.String(),
			}
		default:
			continue
		}
		added := st.add(f)
		if added {
			found++
		}
		if !added && errors.Is(err, cert.ErrNoEstimate) {
			// A plan format that exposes no estimate for one query exposes
			// none for any (the finding is already recorded); spending the
			// rest of the budget would only re-derive it at two
			// EXPLAIN-plus-convert round trips per pair.
			break
		}
	}
	d.checks = checker.Checked
}

// runTLPTask runs the standalone TLP oracle loop: partition every random
// predicate into φ / NOT φ / φ IS NULL and compare the union with the
// unpartitioned result.
func runTLPTask(e *dbms.Engine, seed int64, opts Options, st *store, d *taskDelta) {
	gen := sqlancer.New(seed)
	if err := applySchema(e, gen, opts); err != nil {
		d.err = err
		return
	}
	found := 0
	for i := 0; i < opts.Queries; i++ {
		if opts.MaxFindings > 0 && found >= opts.MaxFindings {
			break
		}
		d.queries++
		table, pred := gen.PartitionableQuery()
		v, err := tlp.Check(e, table, pred)
		var f Finding
		switch {
		case errors.Is(err, exec.ErrUnresolvedColumn):
			// Generator noise: the predicate names a column this table
			// lacks.
			d.skipped++
			continue
		case err != nil:
			f = Finding{
				Engine: e.Info.Name, Oracle: OracleTLP, Kind: KindCrash,
				Query: "TLP " + table + " / " + pred, Detail: err.Error(),
			}
		case v != nil:
			f = Finding{
				Engine: e.Info.Name, Oracle: OracleTLP, Kind: KindLogic,
				Query: v.Base + " WHERE " + pred, Detail: v.Detail,
			}
		default:
			continue
		}
		if st.add(f) {
			found++
		}
	}
}

// applySchema loads the generator's random schema into the engine and
// refreshes its statistics.
func applySchema(e *dbms.Engine, gen *sqlancer.Generator, opts Options) error {
	for _, stmt := range gen.SchemaSQL(opts.Tables, opts.Rows) {
		if _, err := e.Execute(stmt); err != nil {
			return fmt.Errorf("schema %q: %w", stmt, err)
		}
	}
	return e.Analyze()
}
