// Package campaign is the concurrent multi-engine testing orchestrator —
// the paper's headline application (A.1) run at fleet scale. Every
// registered testing oracle (QPG, CERT, TLP, the cardinality-bounds
// oracle — see internal/oracle) is implemented once over the unified
// plan representation; this package fans them out across every simulated
// engine on one bounded worker pool (the chunked-dispatch core shared
// with internal/pipeline), merges their findings into a race-safe
// deduplicating store, and aggregates per-engine and per-oracle
// statistics in the style of pipeline.Stats. The orchestrator knows no
// oracle by name: dispatch, stats, and seed derivation flow through the
// oracle registry, so a new technique is a leaf-package addition.
//
// Determinism contract: each (engine, oracle) task derives its generator
// seed from the top-level seed and its own identity, runs strictly
// sequentially inside one worker, and dedups findings on a key that
// embeds that identity — so the same top-level seed produces a
// byte-identical finding set at any worker count and under any
// scheduling.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"time"

	"uplan/internal/dbms"
	"uplan/internal/oracle"
	// The built-in oracle implementations register themselves; the
	// orchestrator dispatches purely through the registry and this blank
	// import is what links the built-in set into any campaign binary.
	_ "uplan/internal/oracle/all"
	"uplan/internal/pipeline"
	pstore "uplan/internal/store"
)

// Oracle names one of the DBMS-agnostic testing techniques the
// orchestrator can run — an oracle registry key.
type Oracle = string

// The built-in oracles, in canonical order.
const (
	OracleQPG    Oracle = "qpg"    // plan-guided generation + differential oracle
	OracleCERT   Oracle = "cert"   // cardinality-estimate monotonicity
	OracleTLP    Oracle = "tlp"    // ternary logic partitioning
	OracleBounds Oracle = "bounds" // static SPJU output-size bounds
)

// AllOracles lists the registered oracles in canonical order.
func AllOracles() []Oracle { return oracle.Names() }

// Kind classifies campaign findings; see the oracle package for the
// shared kinds. Oracles may add their own (the bounds oracle's
// "bound-violation").
type Kind = oracle.Kind

// Finding kinds shared across the built-in oracles.
const (
	KindLogic    = oracle.KindLogic
	KindCrash    = oracle.KindCrash
	KindPlan     = oracle.KindPlan
	KindEstimate = oracle.KindEstimate
)

// Finding is one deduplicated campaign discovery.
type Finding struct {
	Engine string
	Oracle Oracle
	Kind   Kind
	Query  string
	Detail string
}

func (f Finding) String() string {
	return fmt.Sprintf("[%s/%s/%s] %s — %s", f.Engine, f.Oracle, f.Kind, f.Query, f.Detail)
}

// Options tune a campaign run.
type Options struct {
	// Engines lists the engine keys to test. Empty means all nine studied
	// engines, in Table I order.
	Engines []string
	// Oracles lists the techniques to run per engine. Empty means every
	// registered oracle; unknown names are refused before any task runs.
	Oracles []Oracle
	// Queries is the generated-query budget per (engine, oracle) task.
	Queries int
	// StallThreshold is QPG's mutation trigger: queries without a new plan
	// fingerprint before the database is mutated.
	StallThreshold int
	// Tables and Rows size each task's generated schema.
	Tables int
	Rows   int
	// Seed is the top-level seed. Every task derives its own generator
	// seed from it deterministically, so the finding set depends only on
	// Seed (and the other option values), never on scheduling.
	Seed int64
	// Workers bounds the task pool. Non-positive means GOMAXPROCS; the
	// pool additionally clamps to the task count.
	Workers int
	// MaxFindings stops an individual task after it has contributed that
	// many findings; 0 means no cap.
	MaxFindings int
	// Inject, when set, is applied to every target engine right after
	// construction — the hook the Table V reproduction uses to plant
	// defects. QPG's pristine reference engines are never injected.
	Inject func(e *dbms.Engine)
	// Context, when non-nil, cancels the run cooperatively: workers stop
	// claiming tasks, in-flight tasks yield at their next query boundary,
	// and Run returns the partial result with ctx's error joined into the
	// returned error. With a Store attached, everything produced before
	// cancellation is journaled, so a later Resume run completes the
	// campaign with the byte-identical finding set of an uninterrupted one.
	Context context.Context
	// Store, when non-nil, is the durable plan-and-finding log the run
	// journals through: every new plan fingerprint, every new finding, and
	// a Done checkpoint per completed task. The caller owns the store
	// (Run syncs it but never closes it). Persistence failures are sticky
	// and joined into Run's error; the in-memory result stays complete.
	Store *pstore.Store
	// CheckpointEvery, when positive, additionally writes a durable
	// progress record every that-many queries inside each task, bounding
	// the data a crash can leave unsynced. Zero checkpoints only at task
	// completion. Either way the resume unit is the task: only Done
	// checkpoints let a resumed run skip work.
	CheckpointEvery int
	// Resume permits running against a non-empty Store: tasks with a
	// recovered Done checkpoint are skipped (their stats and findings come
	// from the log), the rest re-run from scratch. The options must match
	// the ones the store was created with (enforced via a config stamp
	// that includes the oracle set); Inject is the one exception — it
	// cannot be serialized, so a resumed run must supply the same
	// injection by hand. Without Resume, a non-empty store is an error:
	// refusing to silently mix two campaigns' journals is what keeps a log
	// attributable to one configuration.
	Resume bool
	// OnProgress, when set, is invoked after every durably written
	// checkpoint (periodic and Done alike), from whichever worker wrote
	// it. Tests and progress UIs hook it; it must be safe for concurrent
	// use.
	OnProgress func(p pstore.TaskProgress)
}

// DefaultOptions returns the budget the campaign smoke runs use.
func DefaultOptions() Options {
	return Options{
		Queries:        100,
		StallThreshold: 8,
		Tables:         2,
		Rows:           12,
		Seed:           1,
		MaxFindings:    10,
	}
}

func (o Options) withDefaults() Options {
	if len(o.Engines) == 0 {
		o.Engines = dbms.Names()
	}
	if len(o.Oracles) == 0 {
		o.Oracles = AllOracles()
	}
	if o.Queries <= 0 {
		o.Queries = 100
	}
	if o.StallThreshold <= 0 {
		o.StallThreshold = 8
	}
	if o.Tables <= 0 {
		o.Tables = 2
	}
	if o.Rows <= 0 {
		o.Rows = 12
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// validateOracles refuses unknown oracle names before any task runs —
// a typo in Options.Oracles should fail the whole run up front, not
// surface mid-campaign as one failed task per engine.
func (o Options) validateOracles() error {
	for _, name := range o.Oracles {
		if _, ok := oracle.Lookup(name); !ok {
			return fmt.Errorf("campaign: unknown oracle %q (registered: %s)",
				name, strings.Join(oracle.Names(), ", "))
		}
	}
	return nil
}

// metaBlob renders the determinism-relevant options as the store's config
// stamp. Must be called after withDefaults so the engine and oracle lists
// are concrete. Workers, CheckpointEvery, and the callbacks are excluded
// on purpose: they change scheduling and durability cadence, never the
// finding set, so they may differ between the original and resumed run.
func (o Options) metaBlob() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "uplan-campaign v1\nseed=%d queries=%d stall=%d tables=%d rows=%d maxfindings=%d\n",
		o.Seed, o.Queries, o.StallThreshold, o.Tables, o.Rows, o.MaxFindings)
	fmt.Fprintf(&b, "engines=%s\n", strings.Join(o.Engines, ","))
	fmt.Fprintf(&b, "oracles=%s\n", strings.Join(o.Oracles, ","))
	return []byte(b.String())
}

// Result is a campaign run's outcome: the deduplicated findings in
// canonical order plus the merged statistics.
type Result struct {
	Findings []Finding
	Stats    Stats
}

// task is one (engine, oracle) unit of fan-out work.
type task struct {
	engine string
	oracle Oracle
}

// taskDelta is one task's contribution to the merged stats, plus its
// hard failure (engine construction or schema setup), if any.
type taskDelta struct {
	rep        oracle.TaskReport
	statements int
	err        error
}

// Run fans the configured oracles out across the configured engines on a
// bounded worker pool and returns the merged result. Each task builds its
// own engine instance(s), so tasks share no mutable state except the
// race-safe finding store. Hard task failures (an unknown engine key, a
// schema that would not apply) are joined into the returned error; the
// Result still covers every task that ran.
func Run(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := opts.validateOracles(); err != nil {
		return nil, err
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	tasks := make([]task, 0, len(opts.Engines)*len(opts.Oracles))
	for _, e := range opts.Engines {
		for _, o := range opts.Oracles {
			tasks = append(tasks, task{engine: e, oracle: o})
		}
	}

	st := newStore(opts.Store)
	// done maps tasks whose Done checkpoint was recovered; built before
	// the pool starts, read-only inside it.
	done := map[task]pstore.TaskProgress{}
	if opts.Store != nil {
		rec := opts.Store.Recovered()
		if !rec.Empty() && !opts.Resume {
			return nil, fmt.Errorf("campaign: store %q already holds a run; set Resume to continue it or point at a fresh directory", opts.Store.Dir())
		}
		// Stamp (or, on resume, validate) the configuration: AppendMeta is
		// idempotent on an identical blob and errors on a different one,
		// which is exactly the resume-under-changed-options guard — an
		// added or removed oracle changes the stamp's oracles= line and is
		// refused here.
		if err := opts.Store.AppendMeta(opts.metaBlob()); err != nil {
			return nil, fmt.Errorf("campaign: config stamp: %w", err)
		}
		if opts.Resume {
			for key, p := range rec.Progress {
				if p.Done {
					done[task{engine: key.Engine, oracle: key.Oracle}] = p
				}
			}
			// Every recovered plan key seeds the cross-engine set (union
			// semantics); findings seed only from finished tasks, so an
			// unfinished task re-runs in a clean per-task dedup space.
			st.seedPlans(rec.Plans)
			for _, f := range rec.Findings {
				if _, ok := done[task{engine: f.Engine, oracle: f.Oracle}]; ok {
					st.seedFinding(Finding{
						Engine: f.Engine, Oracle: f.Oracle,
						Kind: Kind(f.Kind), Query: f.Query, Detail: f.Detail,
					})
				}
			}
		}
	}

	start := time.Now()
	deltas := make([]taskDelta, len(tasks))
	// Chunk size 1: campaign tasks are seconds-long, so per-task claiming
	// keeps the pool balanced; the worker state the conversion pipeline
	// threads through the pool is unused here because every task owns its
	// engines outright. Cancellation stops claiming; the claimed task
	// yields at its next query boundary via its ticker.
	pipeline.ForEachChunkedCtx(ctx, len(tasks), opts.Workers, 1,
		func() struct{} { return struct{}{} },
		func(_ struct{}, lo, hi int) {
			for i := lo; i < hi; i++ {
				if p, ok := done[tasks[i]]; ok {
					deltas[i] = deltaFromProgress(p)
					continue
				}
				deltas[i] = runTask(ctx, tasks[i], opts, st)
			}
		},
		func(struct{}) {})

	res := &Result{Stats: Stats{Engines: map[string]*EngineStats{}, Oracles: map[string]*OracleStats{}}}
	var errs []error
	for i, d := range deltas {
		es := res.Stats.engineStats(tasks[i].engine)
		es.Queries += d.rep.Queries
		es.Statements += d.statements
		es.PlanQueries += d.rep.PlanQueries
		es.NewPlans += d.rep.NewPlans
		es.DistinctPlans += d.rep.DistinctPlans
		es.Mutations += d.rep.Mutations
		es.Checks += d.rep.Checks
		es.Skipped += d.rep.Skipped
		os := res.Stats.oracleStats(tasks[i].oracle)
		os.Queries += d.rep.Queries
		os.Statements += d.statements
		os.PlanQueries += d.rep.PlanQueries
		os.NewPlans += d.rep.NewPlans
		os.DistinctPlans += d.rep.DistinctPlans
		os.Mutations += d.rep.Mutations
		os.Checks += d.rep.Checks
		os.Skipped += d.rep.Skipped
		for name, n := range d.rep.Extra {
			if os.Extra == nil {
				os.Extra = map[string]int{}
			}
			os.Extra[name] += n
		}
		res.Stats.Queries += d.rep.Queries
		res.Stats.Statements += d.statements
		if d.err != nil {
			errs = append(errs, fmt.Errorf("campaign: %s/%s: %w", tasks[i].engine, tasks[i].oracle, d.err))
		}
	}
	res.Stats.Elapsed = time.Since(start)
	res.Stats.DistinctPlans = st.distinctPlans()
	res.Findings = st.sorted()
	res.Stats.Findings = len(res.Findings)
	for _, f := range res.Findings {
		es := res.Stats.engineStats(f.Engine)
		es.Findings++
		es.ByKind[f.Kind]++
		os := res.Stats.oracleStats(f.Oracle)
		os.Findings++
		os.ByKind[f.Kind]++
	}
	// Final durability barrier: whatever the tasks journaled is on disk
	// before Run returns, even when no checkpoint happened to land last.
	if opts.Store != nil {
		if err := opts.Store.Sync(); err != nil {
			errs = append(errs, fmt.Errorf("campaign: store sync: %w", err))
		}
	}
	if err := st.persistErr(); err != nil {
		errs = append(errs, fmt.Errorf("campaign: persistence: %w", err))
	}
	if err := ctx.Err(); err != nil {
		// A cancelled run's result is valid but partial; surfacing ctx's
		// error lets callers distinguish it from a completed run.
		errs = append(errs, err)
	}
	return res, errors.Join(errs...)
}

// deltaFromProgress reconstructs a finished task's stats contribution
// from its recovered Done checkpoint, so a resumed run reports the exact
// numbers of an uninterrupted one without re-running the task.
func deltaFromProgress(p pstore.TaskProgress) taskDelta {
	var d taskDelta
	d.statements = p.Statements
	d.rep.Queries = p.Queries
	d.rep.PlanQueries = p.PlanQueries
	d.rep.NewPlans = p.NewPlans
	d.rep.DistinctPlans = p.DistinctPlans
	d.rep.Mutations = p.Mutations
	d.rep.Checks = p.Checks
	d.rep.Skipped = p.Skipped
	for name, n := range p.Extra {
		d.rep.AddExtra(name, n)
	}
	return d
}

// ticker threads a task's cooperative cancellation and periodic
// checkpointing through its oracle loop: consulted once per query, it
// stops the loop when the run's context is done and, at the configured
// cadence, journals a Done=false progress record so a crash loses at
// most CheckpointEvery queries of unsynced work.
type ticker struct {
	ctx        context.Context
	st         *store
	every      int
	prog       pstore.TaskProgress // task identity; counters zero except Queries
	last       int
	onProgress func(pstore.TaskProgress)
}

func (tk *ticker) tick(queries int) bool {
	if tk.ctx.Err() != nil {
		return false
	}
	if tk.every > 0 && queries-tk.last >= tk.every {
		tk.last = queries
		p := tk.prog
		p.Queries = queries
		if tk.st.checkpoint(p) && tk.onProgress != nil {
			tk.onProgress(p)
		}
	}
	return true
}

// deriveSeed mixes the top-level seed with the task identity so every
// task gets an independent, reproducible generator stream regardless of
// which worker runs it or when. The derivation lives in the oracle
// package; the campaign's contract is that it never changes.
func deriveSeed(seed int64, engine string, o Oracle) int64 {
	return oracle.DeriveSeed(seed, engine, o)
}

// runTask builds the task's target engine, resolves its oracle from the
// registry, and runs it with the orchestrator's hooks wired into the
// task context. A task that runs to completion (no hard failure, no
// cancellation) journals a Done checkpoint: the store syncs the task's
// data shards before the marker, so a recovered Done proves the task's
// plans and findings survived too — the ordering resume correctness
// rests on.
func runTask(ctx context.Context, t task, opts Options, st *store) taskDelta {
	var d taskDelta
	impl, ok := oracle.Lookup(t.oracle)
	if !ok {
		// Unreachable after validateOracles; kept so a registry mutated
		// mid-run still fails loudly instead of panicking.
		d.err = fmt.Errorf("unknown oracle %q", t.oracle)
		return d
	}
	e, err := dbms.New(t.engine)
	if err != nil {
		d.err = err
		return d
	}
	if opts.Inject != nil {
		opts.Inject(e)
	}
	dec, err := oracle.NewDecoder(e.Info.Name)
	if err != nil {
		d.err = err
		return d
	}
	tk := &ticker{
		ctx:        ctx,
		st:         st,
		every:      opts.CheckpointEvery,
		prog:       pstore.TaskProgress{Engine: t.engine, Oracle: t.oracle},
		onProgress: opts.OnProgress,
	}
	tc := &oracle.TaskContext{
		Engine:         e,
		Seed:           deriveSeed(opts.Seed, t.engine, t.oracle),
		Queries:        opts.Queries,
		StallThreshold: opts.StallThreshold,
		Tables:         opts.Tables,
		Rows:           opts.Rows,
		MaxFindings:    opts.MaxFindings,
		Decoder:        dec,
		Report: func(f oracle.Finding) bool {
			return st.add(Finding{
				Engine: t.engine, Oracle: t.oracle,
				Kind: f.Kind, Query: f.Query, Detail: f.Detail,
			})
		},
		ObservePlan: st.observePlan,
		Tick:        tk.tick,
	}
	d.rep, d.err = impl.Run(tc)
	d.statements = e.Queries()
	if d.err == nil && ctx.Err() == nil {
		// Failed tasks never get a Done marker: a resumed run re-runs them
		// and resurfaces the error instead of silently forgetting it.
		p := pstore.TaskProgress{
			Engine: t.engine, Oracle: t.oracle, Done: true,
			Queries: d.rep.Queries, Statements: d.statements,
			PlanQueries: d.rep.PlanQueries, NewPlans: d.rep.NewPlans,
			DistinctPlans: d.rep.DistinctPlans, Mutations: d.rep.Mutations,
			Checks: d.rep.Checks, Skipped: d.rep.Skipped,
			Extra: d.rep.Extra,
		}
		if st.checkpoint(p) && opts.OnProgress != nil {
			opts.OnProgress(p)
		}
	}
	return d
}
