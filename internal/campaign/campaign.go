// Package campaign is the concurrent multi-engine testing orchestrator —
// the paper's headline application (A.1) run at fleet scale. QPG (Ba &
// Rigger, ICSE 2023), CERT (ICSE 2024), and the TLP oracle are each
// implemented once over the unified plan representation; this package
// fans all three out across every simulated engine on one bounded worker
// pool (the chunked-dispatch core shared with internal/pipeline), merges
// their findings into a race-safe deduplicating store, and aggregates
// per-engine statistics in the style of pipeline.Stats.
//
// Determinism contract: each (engine, oracle) task derives its generator
// seed from the top-level seed and its own identity, runs strictly
// sequentially inside one worker, and dedups findings on a key that
// embeds that identity — so the same top-level seed produces a
// byte-identical finding set at any worker count and under any
// scheduling.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"strings"
	"time"

	"uplan/internal/cert"
	"uplan/internal/core"
	"uplan/internal/dbms"
	"uplan/internal/exec"
	"uplan/internal/pipeline"
	"uplan/internal/qpg"
	"uplan/internal/sqlancer"
	pstore "uplan/internal/store"
	"uplan/internal/tlp"
)

// Oracle names one of the DBMS-agnostic testing techniques the
// orchestrator can run.
type Oracle string

// The three oracles, in canonical order.
const (
	OracleQPG  Oracle = "qpg"  // plan-guided generation + differential oracle
	OracleCERT Oracle = "cert" // cardinality-estimate monotonicity
	OracleTLP  Oracle = "tlp"  // ternary logic partitioning
)

// AllOracles lists the oracles in canonical order.
func AllOracles() []Oracle { return []Oracle{OracleQPG, OracleCERT, OracleTLP} }

// Kind classifies campaign findings.
type Kind string

// Finding kinds. The first three mirror qpg.BugKind; estimate findings
// come from the CERT oracle.
const (
	KindLogic    Kind = "logic"      // wrong results (TLP or differential)
	KindCrash    Kind = "crash"      // execution error on generated input
	KindPlan     Kind = "plan-parse" // converter failed on the engine's plan
	KindEstimate Kind = "estimate"   // estimate monotonicity broken or unreadable
)

// Finding is one deduplicated campaign discovery.
type Finding struct {
	Engine string
	Oracle Oracle
	Kind   Kind
	Query  string
	Detail string
}

func (f Finding) String() string {
	return fmt.Sprintf("[%s/%s/%s] %s — %s", f.Engine, f.Oracle, f.Kind, f.Query, f.Detail)
}

// Options tune a campaign run.
type Options struct {
	// Engines lists the engine keys to test. Empty means all nine studied
	// engines, in Table I order.
	Engines []string
	// Oracles lists the techniques to run per engine. Empty means all
	// three.
	Oracles []Oracle
	// Queries is the generated-query budget per (engine, oracle) task.
	Queries int
	// StallThreshold is QPG's mutation trigger: queries without a new plan
	// fingerprint before the database is mutated.
	StallThreshold int
	// Tables and Rows size each task's generated schema.
	Tables int
	Rows   int
	// Seed is the top-level seed. Every task derives its own generator
	// seed from it deterministically, so the finding set depends only on
	// Seed (and the other option values), never on scheduling.
	Seed int64
	// Workers bounds the task pool. Non-positive means GOMAXPROCS; the
	// pool additionally clamps to the task count.
	Workers int
	// MaxFindings stops an individual task after it has contributed that
	// many findings; 0 means no cap.
	MaxFindings int
	// Inject, when set, is applied to every target engine right after
	// construction — the hook the Table V reproduction uses to plant
	// defects. QPG's pristine reference engines are never injected.
	Inject func(e *dbms.Engine)
	// Context, when non-nil, cancels the run cooperatively: workers stop
	// claiming tasks, in-flight tasks yield at their next query boundary,
	// and Run returns the partial result with ctx's error joined into the
	// returned error. With a Store attached, everything produced before
	// cancellation is journaled, so a later Resume run completes the
	// campaign with the byte-identical finding set of an uninterrupted one.
	Context context.Context
	// Store, when non-nil, is the durable plan-and-finding log the run
	// journals through: every new plan fingerprint, every new finding, and
	// a Done checkpoint per completed task. The caller owns the store
	// (Run syncs it but never closes it). Persistence failures are sticky
	// and joined into Run's error; the in-memory result stays complete.
	Store *pstore.Store
	// CheckpointEvery, when positive, additionally writes a durable
	// progress record every that-many queries inside each task, bounding
	// the data a crash can leave unsynced. Zero checkpoints only at task
	// completion. Either way the resume unit is the task: only Done
	// checkpoints let a resumed run skip work.
	CheckpointEvery int
	// Resume permits running against a non-empty Store: tasks with a
	// recovered Done checkpoint are skipped (their stats and findings come
	// from the log), the rest re-run from scratch. The options must match
	// the ones the store was created with (enforced via a config stamp);
	// Inject is the one exception — it cannot be serialized, so a resumed
	// run must supply the same injection by hand. Without Resume, a
	// non-empty store is an error: refusing to silently mix two campaigns'
	// journals is what keeps a log attributable to one configuration.
	Resume bool
	// OnProgress, when set, is invoked after every durably written
	// checkpoint (periodic and Done alike), from whichever worker wrote
	// it. Tests and progress UIs hook it; it must be safe for concurrent
	// use.
	OnProgress func(p pstore.TaskProgress)
}

// DefaultOptions returns the budget the campaign smoke runs use.
func DefaultOptions() Options {
	return Options{
		Queries:        100,
		StallThreshold: 8,
		Tables:         2,
		Rows:           12,
		Seed:           1,
		MaxFindings:    10,
	}
}

func (o Options) withDefaults() Options {
	if len(o.Engines) == 0 {
		o.Engines = dbms.Names()
	}
	if len(o.Oracles) == 0 {
		o.Oracles = AllOracles()
	}
	if o.Queries <= 0 {
		o.Queries = 100
	}
	if o.StallThreshold <= 0 {
		o.StallThreshold = 8
	}
	if o.Tables <= 0 {
		o.Tables = 2
	}
	if o.Rows <= 0 {
		o.Rows = 12
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// metaBlob renders the determinism-relevant options as the store's config
// stamp. Must be called after withDefaults so the engine and oracle lists
// are concrete. Workers, CheckpointEvery, and the callbacks are excluded
// on purpose: they change scheduling and durability cadence, never the
// finding set, so they may differ between the original and resumed run.
func (o Options) metaBlob() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "uplan-campaign v1\nseed=%d queries=%d stall=%d tables=%d rows=%d maxfindings=%d\n",
		o.Seed, o.Queries, o.StallThreshold, o.Tables, o.Rows, o.MaxFindings)
	fmt.Fprintf(&b, "engines=%s\n", strings.Join(o.Engines, ","))
	oracles := make([]string, len(o.Oracles))
	for i, or := range o.Oracles {
		oracles[i] = string(or)
	}
	fmt.Fprintf(&b, "oracles=%s\n", strings.Join(oracles, ","))
	return []byte(b.String())
}

// Result is a campaign run's outcome: the deduplicated findings in
// canonical order plus the merged statistics.
type Result struct {
	Findings []Finding
	Stats    Stats
}

// task is one (engine, oracle) unit of fan-out work.
type task struct {
	engine string
	oracle Oracle
}

// taskDelta is one task's contribution to the merged stats, plus its
// hard failure (engine construction or schema setup), if any.
type taskDelta struct {
	queries, statements      int
	planQueries, newPlans    int
	distinctPlans, mutations int
	checks, skipped          int
	err                      error
}

// Run fans the configured oracles out across the configured engines on a
// bounded worker pool and returns the merged result. Each task builds its
// own engine instance(s), so tasks share no mutable state except the
// race-safe finding store. Hard task failures (an unknown engine key, a
// schema that would not apply) are joined into the returned error; the
// Result still covers every task that ran.
func Run(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	tasks := make([]task, 0, len(opts.Engines)*len(opts.Oracles))
	for _, e := range opts.Engines {
		for _, o := range opts.Oracles {
			tasks = append(tasks, task{engine: e, oracle: o})
		}
	}

	st := newStore(opts.Store)
	// done maps tasks whose Done checkpoint was recovered; built before
	// the pool starts, read-only inside it.
	done := map[task]pstore.TaskProgress{}
	if opts.Store != nil {
		rec := opts.Store.Recovered()
		if !rec.Empty() && !opts.Resume {
			return nil, fmt.Errorf("campaign: store %q already holds a run; set Resume to continue it or point at a fresh directory", opts.Store.Dir())
		}
		// Stamp (or, on resume, validate) the configuration: AppendMeta is
		// idempotent on an identical blob and errors on a different one,
		// which is exactly the resume-under-changed-options guard.
		if err := opts.Store.AppendMeta(opts.metaBlob()); err != nil {
			return nil, fmt.Errorf("campaign: config stamp: %w", err)
		}
		if opts.Resume {
			for key, p := range rec.Progress {
				if p.Done {
					done[task{engine: key.Engine, oracle: Oracle(key.Oracle)}] = p
				}
			}
			// Every recovered plan key seeds the cross-engine set (union
			// semantics); findings seed only from finished tasks, so an
			// unfinished task re-runs in a clean per-task dedup space.
			st.seedPlans(rec.Plans)
			for _, f := range rec.Findings {
				if _, ok := done[task{engine: f.Engine, oracle: Oracle(f.Oracle)}]; ok {
					st.seedFinding(Finding{
						Engine: f.Engine, Oracle: Oracle(f.Oracle),
						Kind: Kind(f.Kind), Query: f.Query, Detail: f.Detail,
					})
				}
			}
		}
	}

	start := time.Now()
	deltas := make([]taskDelta, len(tasks))
	// Chunk size 1: campaign tasks are seconds-long, so per-task claiming
	// keeps the pool balanced; the worker state the conversion pipeline
	// threads through the pool is unused here because every task owns its
	// engines outright. Cancellation stops claiming; the claimed task
	// yields at its next query boundary via its ticker.
	pipeline.ForEachChunkedCtx(ctx, len(tasks), opts.Workers, 1,
		func() struct{} { return struct{}{} },
		func(_ struct{}, lo, hi int) {
			for i := lo; i < hi; i++ {
				if p, ok := done[tasks[i]]; ok {
					deltas[i] = deltaFromProgress(p)
					continue
				}
				deltas[i] = runTask(ctx, tasks[i], opts, st)
			}
		},
		func(struct{}) {})

	res := &Result{Stats: Stats{Engines: map[string]*EngineStats{}}}
	var errs []error
	for i, d := range deltas {
		es := res.Stats.engineStats(tasks[i].engine)
		es.Queries += d.queries
		es.Statements += d.statements
		es.PlanQueries += d.planQueries
		es.NewPlans += d.newPlans
		es.DistinctPlans += d.distinctPlans
		es.Mutations += d.mutations
		es.Checks += d.checks
		es.Skipped += d.skipped
		res.Stats.Queries += d.queries
		res.Stats.Statements += d.statements
		if d.err != nil {
			errs = append(errs, fmt.Errorf("campaign: %s/%s: %w", tasks[i].engine, tasks[i].oracle, d.err))
		}
	}
	res.Stats.Elapsed = time.Since(start)
	res.Stats.DistinctPlans = st.distinctPlans()
	res.Findings = st.sorted()
	res.Stats.Findings = len(res.Findings)
	for _, f := range res.Findings {
		es := res.Stats.engineStats(f.Engine)
		es.Findings++
		es.ByKind[f.Kind]++
	}
	// Final durability barrier: whatever the tasks journaled is on disk
	// before Run returns, even when no checkpoint happened to land last.
	if opts.Store != nil {
		if err := opts.Store.Sync(); err != nil {
			errs = append(errs, fmt.Errorf("campaign: store sync: %w", err))
		}
	}
	if err := st.persistErr(); err != nil {
		errs = append(errs, fmt.Errorf("campaign: persistence: %w", err))
	}
	if err := ctx.Err(); err != nil {
		// A cancelled run's result is valid but partial; surfacing ctx's
		// error lets callers distinguish it from a completed run.
		errs = append(errs, err)
	}
	return res, errors.Join(errs...)
}

// deltaFromProgress reconstructs a finished task's stats contribution
// from its recovered Done checkpoint, so a resumed run reports the exact
// numbers of an uninterrupted one without re-running the task.
func deltaFromProgress(p pstore.TaskProgress) taskDelta {
	return taskDelta{
		queries:       p.Queries,
		statements:    p.Statements,
		planQueries:   p.PlanQueries,
		newPlans:      p.NewPlans,
		distinctPlans: p.DistinctPlans,
		mutations:     p.Mutations,
		checks:        p.Checks,
		skipped:       p.Skipped,
	}
}

// ticker threads a task's cooperative cancellation and periodic
// checkpointing through its oracle loop: consulted once per query, it
// stops the loop when the run's context is done and, at the configured
// cadence, journals a Done=false progress record so a crash loses at
// most CheckpointEvery queries of unsynced work.
type ticker struct {
	ctx        context.Context
	st         *store
	every      int
	prog       pstore.TaskProgress // task identity; counters zero except Queries
	last       int
	onProgress func(pstore.TaskProgress)
}

func (tk *ticker) tick(queries int) bool {
	if tk.ctx.Err() != nil {
		return false
	}
	if tk.every > 0 && queries-tk.last >= tk.every {
		tk.last = queries
		p := tk.prog
		p.Queries = queries
		if tk.st.checkpoint(p) && tk.onProgress != nil {
			tk.onProgress(p)
		}
	}
	return true
}

// deriveSeed mixes the top-level seed with the task identity so every
// task gets an independent, reproducible generator stream regardless of
// which worker runs it or when.
func deriveSeed(seed int64, engine string, oracle Oracle) int64 {
	h := fnv.New64a()
	h.Write([]byte(engine))
	h.Write([]byte{0})
	h.Write([]byte(oracle))
	return seed ^ int64(h.Sum64())
}

// runTask builds the task's target engine and dispatches to its oracle.
// A task that runs to completion (no hard failure, no cancellation)
// journals a Done checkpoint: the store syncs the task's data shards
// before the marker, so a recovered Done proves the task's plans and
// findings survived too — the ordering resume correctness rests on.
func runTask(ctx context.Context, t task, opts Options, st *store) taskDelta {
	var d taskDelta
	e, err := dbms.New(t.engine)
	if err != nil {
		d.err = err
		return d
	}
	if opts.Inject != nil {
		opts.Inject(e)
	}
	tk := &ticker{
		ctx:        ctx,
		st:         st,
		every:      opts.CheckpointEvery,
		prog:       pstore.TaskProgress{Engine: t.engine, Oracle: string(t.oracle)},
		onProgress: opts.OnProgress,
	}
	seed := deriveSeed(opts.Seed, t.engine, t.oracle)
	switch t.oracle {
	case OracleQPG:
		runQPGTask(e, seed, opts, st, tk, &d)
	case OracleCERT:
		runCERTTask(e, seed, opts, st, tk, &d)
	case OracleTLP:
		runTLPTask(e, seed, opts, st, tk, &d)
	default:
		d.err = fmt.Errorf("unknown oracle %q", t.oracle)
	}
	d.statements = e.Queries()
	if d.err == nil && ctx.Err() == nil {
		// Failed tasks never get a Done marker: a resumed run re-runs them
		// and resurfaces the error instead of silently forgetting it.
		p := pstore.TaskProgress{
			Engine: t.engine, Oracle: string(t.oracle), Done: true,
			Queries: d.queries, Statements: d.statements,
			PlanQueries: d.planQueries, NewPlans: d.newPlans,
			DistinctPlans: d.distinctPlans, Mutations: d.mutations,
			Checks: d.checks, Skipped: d.skipped,
		}
		if st.checkpoint(p) && opts.OnProgress != nil {
			opts.OnProgress(p)
		}
	}
	return d
}

// runQPGTask runs a full QPG campaign (plan guidance, differential and TLP
// oracles, mutation feedback) against the engine, streaming every observed
// unified plan into the cross-engine store.
func runQPGTask(e *dbms.Engine, seed int64, opts Options, st *store, tk *ticker, d *taskDelta) {
	qopts := qpg.Options{
		Queries:        opts.Queries,
		StallThreshold: opts.StallThreshold,
		Seed:           seed,
		MaxFindings:    opts.MaxFindings,
	}
	c, err := qpg.New(e, qopts)
	if err != nil {
		d.err = err
		return
	}
	// The campaign's hot loop decodes plans into a reused arena; the
	// observer must only fingerprint, never retain.
	c.Observer = func(p *core.Plan) { st.observePlan(p) }
	c.Tick = tk.tick
	if err := c.Setup(opts.Tables, opts.Rows); err != nil {
		d.err = err
		return
	}
	for _, f := range c.Run(qopts) {
		st.add(Finding{
			Engine: e.Info.Name,
			Oracle: OracleQPG,
			Kind:   Kind(f.Kind),
			Query:  f.Query,
			Detail: f.Detail,
		})
	}
	d.queries = c.QueriesRun
	d.planQueries = c.PlansObserved
	d.newPlans = c.NewPlans
	d.distinctPlans = c.Plans.Size()
	d.mutations = c.Mutations
}

// runCERTTask runs the CERT oracle: random base/restricted pairs whose
// estimates must shrink. Unplannable pairs are skipped; a readable-estimate
// failure is itself a finding (the engine planned the query but its plan
// exposes no estimate, or the plan did not convert).
func runCERTTask(e *dbms.Engine, seed int64, opts Options, st *store, tk *ticker, d *taskDelta) {
	gen := sqlancer.New(seed)
	if err := applySchema(e, gen, opts); err != nil {
		d.err = err
		return
	}
	checker, err := cert.New(e)
	if err != nil {
		d.err = err
		return
	}
	found := 0
	for i := 0; i < opts.Queries; i++ {
		if opts.MaxFindings > 0 && found >= opts.MaxFindings {
			break
		}
		if !tk.tick(d.queries) {
			break
		}
		d.queries++
		base, restricted := gen.RestrictableQuery()
		v, err := checker.CheckPair(base, restricted)
		var f Finding
		switch {
		case errors.Is(err, cert.ErrUnplannable):
			d.skipped++
			continue
		case errors.Is(err, cert.ErrNoEstimate):
			f = Finding{
				Engine: e.Info.Name, Oracle: OracleCERT, Kind: KindEstimate,
				Query: base, Detail: "no cardinality estimate in plan",
			}
		case err != nil:
			f = Finding{
				Engine: e.Info.Name, Oracle: OracleCERT, Kind: KindPlan,
				Query: base, Detail: err.Error(),
			}
		case v != nil:
			f = Finding{
				Engine: e.Info.Name, Oracle: OracleCERT, Kind: KindEstimate,
				Query: v.Restricted, Detail: v.String(),
			}
		default:
			continue
		}
		added := st.add(f)
		if added {
			found++
		}
		if !added && errors.Is(err, cert.ErrNoEstimate) {
			// A plan format that exposes no estimate for one query exposes
			// none for any (the finding is already recorded); spending the
			// rest of the budget would only re-derive it at two
			// EXPLAIN-plus-convert round trips per pair.
			break
		}
	}
	d.checks = checker.Checked
}

// runTLPTask runs the standalone TLP oracle loop: partition every random
// predicate into φ / NOT φ / φ IS NULL and compare the union with the
// unpartitioned result.
func runTLPTask(e *dbms.Engine, seed int64, opts Options, st *store, tk *ticker, d *taskDelta) {
	gen := sqlancer.New(seed)
	if err := applySchema(e, gen, opts); err != nil {
		d.err = err
		return
	}
	found := 0
	for i := 0; i < opts.Queries; i++ {
		if opts.MaxFindings > 0 && found >= opts.MaxFindings {
			break
		}
		if !tk.tick(d.queries) {
			break
		}
		d.queries++
		table, pred := gen.PartitionableQuery()
		v, err := tlp.Check(e, table, pred)
		var f Finding
		switch {
		case errors.Is(err, exec.ErrUnresolvedColumn):
			// Generator noise: the predicate names a column this table
			// lacks.
			d.skipped++
			continue
		case err != nil:
			f = Finding{
				Engine: e.Info.Name, Oracle: OracleTLP, Kind: KindCrash,
				Query: "TLP " + table + " / " + pred, Detail: err.Error(),
			}
		case v != nil:
			f = Finding{
				Engine: e.Info.Name, Oracle: OracleTLP, Kind: KindLogic,
				Query: v.Base + " WHERE " + pred, Detail: v.Detail,
			}
		default:
			continue
		}
		if st.add(f) {
			found++
		}
	}
}

// applySchema loads the generator's random schema into the engine and
// refreshes its statistics.
func applySchema(e *dbms.Engine, gen *sqlancer.Generator, opts Options) error {
	for _, stmt := range gen.SchemaSQL(opts.Tables, opts.Rows) {
		if _, err := e.Execute(stmt); err != nil {
			return fmt.Errorf("schema %q: %w", stmt, err)
		}
	}
	return e.Analyze()
}
