package campaign

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	pstore "uplan/internal/store"
	"uplan/internal/store/faultio"
)

// storeOptions is testOptions plus the durable-log knobs the resume tests
// exercise: a mid-task checkpoint cadence so the periodic path runs too.
func storeOptions(workers int) Options {
	opts := testOptions(workers)
	opts.CheckpointEvery = 10
	return opts
}

func mustOpenLog(t *testing.T, dir string) *pstore.Store {
	t.Helper()
	s, err := pstore.Open(dir, pstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// assertSameOutcome compares the determinism-relevant parts of two campaign
// results: the canonical finding set and every per-task-derived statistic.
func assertSameOutcome(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if !reflect.DeepEqual(want.Findings, got.Findings) {
		t.Errorf("%s: finding sets differ:\n want %v\n  got %v", label, want.Findings, got.Findings)
	}
	if fmt.Sprintf("%v", want.Findings) != fmt.Sprintf("%v", got.Findings) {
		t.Errorf("%s: rendered finding sets differ", label)
	}
	if want.Stats.DistinctPlans != got.Stats.DistinctPlans {
		t.Errorf("%s: distinct plans %d, want %d", label, got.Stats.DistinctPlans, want.Stats.DistinctPlans)
	}
	if want.Stats.Queries != got.Stats.Queries || want.Stats.Statements != got.Stats.Statements {
		t.Errorf("%s: totals (%d q, %d stmts), want (%d q, %d stmts)", label,
			got.Stats.Queries, got.Stats.Statements, want.Stats.Queries, want.Stats.Statements)
	}
	for name, w := range want.Stats.Engines {
		g := got.Stats.Engines[name]
		if g == nil {
			t.Errorf("%s: engine %s missing", label, name)
			continue
		}
		if w.Queries != g.Queries || w.Statements != g.Statements ||
			w.PlanQueries != g.PlanQueries || w.NewPlans != g.NewPlans ||
			w.DistinctPlans != g.DistinctPlans || w.Mutations != g.Mutations ||
			w.Checks != g.Checks || w.Skipped != g.Skipped || w.Findings != g.Findings {
			t.Errorf("%s: %s stats differ:\n want %+v\n  got %+v", label, name, w, g)
		}
	}
}

// TestCampaignStoreFullRun: a store-backed run equals a storeless run, and
// resuming the finished store skips every task yet reports the identical
// outcome — the pure replay-from-log path.
func TestCampaignStoreFullRun(t *testing.T) {
	baseline, err := Run(testOptions(4))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	log := mustOpenLog(t, dir)
	opts := storeOptions(4)
	opts.Store = log
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutcome(t, "store-backed", baseline, res)
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay: every task Done, nothing re-runs, counters come from the log.
	log2 := mustOpenLog(t, dir)
	defer log2.Close()
	framesBefore := log2.Findings()
	opts2 := storeOptions(4)
	opts2.Store = log2
	opts2.Resume = true
	var reran atomic.Int32
	opts2.OnProgress = func(pstore.TaskProgress) { reran.Add(1) }
	res2, err := Run(opts2)
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutcome(t, "replay", baseline, res2)
	if n := reran.Load(); n != 0 {
		t.Errorf("replay wrote %d checkpoints; every task should have been skipped", n)
	}
	if log2.Findings() != framesBefore {
		t.Errorf("replay grew the log: %d findings, had %d", log2.Findings(), framesBefore)
	}
}

// TestCampaignKillAndResume is the tentpole contract: cancel a store-backed
// run after N completed tasks, reopen the log, resume — the combined run
// must produce the byte-identical finding set and statistics of an
// uninterrupted run, at any worker count and any interruption point.
func TestCampaignKillAndResume(t *testing.T) {
	baseline, err := Run(testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		for _, after := range []int32{1, 5, 13} {
			t.Run(fmt.Sprintf("workers=%d/cancel-after=%d", workers, after), func(t *testing.T) {
				dir := t.TempDir()
				log := mustOpenLog(t, dir)
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				opts := storeOptions(workers)
				opts.Store = log
				opts.Context = ctx
				var dones atomic.Int32
				opts.OnProgress = func(p pstore.TaskProgress) {
					if p.Done && dones.Add(1) == after {
						cancel()
					}
				}
				res, err := Run(opts)
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
				}
				if res == nil {
					t.Fatal("interrupted run must still return its partial result")
				}
				if err := log.Close(); err != nil {
					t.Fatal(err)
				}

				log2 := mustOpenLog(t, dir)
				defer log2.Close()
				rec := log2.Recovered()
				if len(rec.Progress) == 0 {
					t.Fatal("no progress records recovered — the resume path is vacuous")
				}
				opts2 := storeOptions(workers)
				opts2.Store = log2
				opts2.Resume = true
				res2, err := Run(opts2)
				if err != nil {
					t.Fatal(err)
				}
				assertSameOutcome(t, "resumed", baseline, res2)
			})
		}
	}
}

// TestCampaignResumeAfterTornWrite: the log's writer dies mid-frame during
// the run (torn write). The run surfaces the persistence failure but keeps
// its in-memory result; reopening truncates the torn tail and a resumed run
// still converges on the uninterrupted outcome — tasks whose Done marker
// was lost simply re-run.
func TestCampaignResumeAfterTornWrite(t *testing.T) {
	baseline, err := Run(testOptions(1))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	faults := faultio.NewFaults()
	faults.FailAt = 900
	log, err := pstore.Open(dir, pstore.Options{
		Open: func(path string) (pstore.WriteSyncer, error) {
			ws, err := pstore.OpenFile(path)
			if err != nil {
				return nil, err
			}
			return faultio.Wrap(ws, faults), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := storeOptions(2)
	opts.Store = log
	res, err := Run(opts)
	if !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("run over failing media: err = %v, want ErrInjected surfaced", err)
	}
	if res == nil {
		t.Fatal("persistence failure must not destroy the in-memory result")
	}
	// The in-memory outcome is complete even though the journal died.
	assertSameOutcome(t, "in-memory despite fault", baseline, res)
	log.Close() // reports the sticky failure; the tail state is what matters

	log2 := mustOpenLog(t, dir)
	defer log2.Close()
	opts2 := storeOptions(2)
	opts2.Store = log2
	opts2.Resume = true
	res2, err := Run(opts2)
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutcome(t, "resumed after torn write", baseline, res2)
}

// TestCampaignStoreGuards pins the two refusal paths: resuming under
// different options, and non-resume against a non-empty store.
func TestCampaignStoreGuards(t *testing.T) {
	dir := t.TempDir()
	log := mustOpenLog(t, dir)
	opts := storeOptions(2)
	opts.Store = log
	if _, err := Run(opts); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	t.Run("meta-mismatch", func(t *testing.T) {
		log2 := mustOpenLog(t, dir)
		defer log2.Close()
		opts2 := storeOptions(2)
		opts2.Store = log2
		opts2.Resume = true
		opts2.Seed++ // different campaign
		if _, err := Run(opts2); err == nil {
			t.Fatal("resume under a different seed must be refused")
		}
	})
	t.Run("non-resume-non-empty", func(t *testing.T) {
		log2 := mustOpenLog(t, dir)
		defer log2.Close()
		opts2 := storeOptions(2)
		opts2.Store = log2
		if _, err := Run(opts2); err == nil {
			t.Fatal("running without Resume against a non-empty store must be refused")
		}
	})
}

// TestCampaignPreCancelled: a context cancelled before Run starts yields an
// empty (but well-formed) result and ctx's error — no hangs, no partial
// task launches.
func TestCampaignPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := testOptions(4)
	opts.Context = ctx
	res, err := Run(opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled run must still return a result")
	}
	if len(res.Findings) != 0 {
		t.Errorf("pre-cancelled run produced findings: %v", res.Findings)
	}
}
