package campaign

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"uplan/internal/core"
	"uplan/internal/dbms"
)

// testOptions is a small-budget nine-engine configuration with injected
// defects so campaigns actually find something.
func testOptions(workers int) Options {
	opts := DefaultOptions()
	opts.Queries = 30
	opts.Workers = workers
	opts.Seed = 3
	opts.Inject = func(e *dbms.Engine) {
		e.Quirks.LeftJoinAsInner = true
		e.Quirks.DistinctDropsNulls = true
		e.Opts.Quirks.PredicateInflatesEstimate = 900
	}
	return opts
}

// TestCampaignDeterminism pins the orchestrator's core contract: the same
// top-level seed produces a byte-identical finding set at any worker
// count, because every (engine, oracle) task derives its own seed and
// dedup never crosses task identities.
func TestCampaignDeterminism(t *testing.T) {
	sequential, err := Run(testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(testOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(sequential.Findings) == 0 {
		t.Fatal("injected defects produced no findings — the determinism check is vacuous")
	}
	if !reflect.DeepEqual(sequential.Findings, parallel.Findings) {
		t.Errorf("findings differ across worker counts:\n-parallel 1: %v\n-parallel 8: %v",
			sequential.Findings, parallel.Findings)
	}
	// The byte-identical form of the contract.
	if fmt.Sprintf("%v", sequential.Findings) != fmt.Sprintf("%v", parallel.Findings) {
		t.Error("rendered finding sets differ across worker counts")
	}
	// Stats that derive from task-local determinism must agree too.
	for name, seq := range sequential.Stats.Engines {
		par := parallel.Stats.Engines[name]
		if par == nil {
			t.Fatalf("engine %s missing from parallel run", name)
		}
		if seq.NewPlans != par.NewPlans || seq.Mutations != par.Mutations ||
			seq.Checks != par.Checks || seq.Skipped != par.Skipped ||
			seq.Findings != par.Findings {
			t.Errorf("%s stats differ: sequential %+v parallel %+v", name, seq, par)
		}
	}
	if sequential.Stats.DistinctPlans != parallel.Stats.DistinctPlans {
		t.Errorf("cross-engine distinct plans differ: %d vs %d",
			sequential.Stats.DistinctPlans, parallel.Stats.DistinctPlans)
	}
}

// TestCampaignFindsInjectedDefects: the fleet rediscovers planted logic
// bugs, and every finding names an engine that was actually tested.
func TestCampaignFindsInjectedDefects(t *testing.T) {
	res, err := Run(testOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[Kind]int{}
	for _, f := range res.Findings {
		kinds[f.Kind]++
		if _, ok := res.Stats.Engines[f.Engine]; !ok {
			t.Errorf("finding names untested engine: %v", f)
		}
		if f.String() == "" {
			t.Error("finding must render")
		}
	}
	if kinds[KindLogic] == 0 {
		t.Errorf("LEFT JOIN / DISTINCT defects not rediscovered: %v", kinds)
	}
	if kinds[KindEstimate] == 0 {
		t.Errorf("estimate inflation not rediscovered: %v", kinds)
	}
}

// TestCampaignPristine: a defect-free fleet yields no logic or crash
// findings. The four engines whose plans expose no cardinality estimate
// still produce their (real) estimate-signal findings.
func TestCampaignPristine(t *testing.T) {
	opts := DefaultOptions()
	opts.Queries = 25
	opts.Workers = 4
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Engines) != len(dbms.Names()) {
		t.Fatalf("stats cover %d engines, want %d", len(res.Stats.Engines), len(dbms.Names()))
	}
	for _, f := range res.Findings {
		if f.Kind == KindLogic || f.Kind == KindCrash || f.Kind == KindPlan {
			t.Errorf("pristine fleet produced %v", f)
		}
	}
	if res.Stats.DistinctPlans == 0 {
		t.Error("cross-engine plan store observed nothing")
	}
	// Engines with estimates run their full three-oracle budget; the four
	// estimate-free engines stop their CERT task after the deduplicated
	// no-estimate finding instead of burning the remaining budget.
	fullBudget := len(AllOracles()) * opts.Queries
	if got := res.Stats.Engines["postgresql"].Queries; got != fullBudget {
		t.Errorf("postgresql Queries = %d, want full budget %d", got, fullBudget)
	}
	if got := res.Stats.Engines["sqlite"].Queries; got >= fullBudget {
		t.Errorf("sqlite Queries = %d, want < %d (CERT must stop early without estimates)", got, fullBudget)
	}
	if res.Stats.Queries == 0 || res.Stats.Queries > len(dbms.Names())*fullBudget {
		t.Errorf("Queries = %d out of range", res.Stats.Queries)
	}
	if res.Stats.Statements == 0 {
		t.Error("no executed statements counted")
	}
	for _, es := range res.Stats.ByEngine() {
		if es.PlanQueries == 0 || es.DistinctPlans == 0 {
			t.Errorf("%s: QPG observed no plans: %+v", es.Engine, es)
		}
	}
}

// TestStoreConcurrent hammers the shared finding store from many
// goroutines — the -race test over the cross-engine store. Every plan and
// finding is pushed from several goroutines at once; the store must end
// up with exactly the deduplicated set.
func TestStoreConcurrent(t *testing.T) {
	st := newStore(nil)
	plan := func(op string) *core.Plan {
		return &core.Plan{Root: &core.Node{Op: core.Operation{Name: op, Category: core.Producer}}}
	}
	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				st.add(Finding{
					Engine: "postgresql",
					Oracle: OracleTLP,
					Kind:   KindLogic,
					Query:  fmt.Sprintf("q%d", i%50),
					Detail: fmt.Sprintf("detail %d", i%50),
				})
				st.observePlan(plan(fmt.Sprintf("Op %d", i%25)))
			}
		}(g)
	}
	wg.Wait()
	if got := len(st.sorted()); got != 50 {
		t.Errorf("store kept %d findings, want 50 deduplicated", got)
	}
	if got := st.distinctPlans(); got != 25 {
		t.Errorf("store kept %d distinct plans, want 25", got)
	}
}

// TestDeriveSeedIdentity: every (engine, oracle) task must get its own
// stream, stable across runs.
func TestDeriveSeedIdentity(t *testing.T) {
	seen := map[int64]string{}
	for _, e := range dbms.Names() {
		for _, o := range AllOracles() {
			s := deriveSeed(42, e, o)
			if prev, dup := seen[s]; dup {
				t.Errorf("seed collision: %s/%s and %s", e, o, prev)
			}
			seen[s] = e + "/" + string(o)
			if s != deriveSeed(42, e, o) {
				t.Errorf("%s/%s: derivation not stable", e, o)
			}
			if s == deriveSeed(43, e, o) {
				t.Errorf("%s/%s: top-level seed ignored", e, o)
			}
		}
	}
}

// TestUnknownEngineSurfaces: a bad engine key is a hard task failure that
// joins into Run's error while the rest of the fleet still runs.
func TestUnknownEngineSurfaces(t *testing.T) {
	opts := DefaultOptions()
	opts.Queries = 5
	opts.Engines = []string{"postgresql", "oracle23c"}
	res, err := Run(opts)
	if err == nil {
		t.Fatal("unknown engine must surface in Run's error")
	}
	if res == nil || res.Stats.Engines["postgresql"] == nil {
		t.Fatal("healthy engines must still have run")
	}
	if res.Stats.Engines["postgresql"].Queries == 0 {
		t.Error("postgresql task did not run")
	}
}

// TestFindingStringFormat pins the rendered form campaign reports use.
func TestFindingStringFormat(t *testing.T) {
	f := Finding{Engine: "mysql", Oracle: OracleQPG, Kind: KindLogic, Query: "SELECT 1", Detail: "boom"}
	want := "[mysql/qpg/logic] SELECT 1 — boom"
	if f.String() != want {
		t.Errorf("String() = %q, want %q", f.String(), want)
	}
}
