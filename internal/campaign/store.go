package campaign

import (
	"hash/fnv"
	"sort"
	"sync"

	"uplan/internal/core"
	pstore "uplan/internal/store"
)

// store is the race-safe cross-engine finding store: every campaign task
// pushes its findings and observed plans here, from whichever worker
// goroutine happens to run it. Findings dedup on a fingerprint of
// (engine, oracle, kind, detail) — the key QPG's per-campaign store
// established, widened with the task identity — and plans dedup on their
// structural fingerprints in one shared core.FingerprintSet, giving the
// fleet-wide "how many distinct plan shapes did the whole campaign see"
// number no single-engine run can produce.
//
// When a durable log backs the store, every newly observed plan key and
// every newly added finding is journaled through it. The in-memory store
// stays authoritative for the run's result; the log is a journal whose
// first persistence failure is captured sticky (logErr) and joined into
// Run's returned error — never dropped, never fatal to the in-flight run.
type store struct {
	mu       sync.Mutex
	plans    *core.FingerprintSet
	seen     map[uint64]struct{}
	findings []Finding
	log      *pstore.Store
	logErr   error
}

func newStore(log *pstore.Store) *store {
	return &store{
		// The same structural options QPG uses for coverage: operations
		// plus configuration property names, never values, so the same
		// plan shape on two engines with different constants collapses.
		plans: core.NewFingerprintSet(core.FingerprintOptions{
			IncludeConfiguration: true,
		}),
		seen: map[uint64]struct{}{},
		log:  log,
	}
}

// seedPlans preloads recovered plan fingerprints. Resume preloads every
// recovered key — even those written by tasks that did not finish —
// because the cross-engine set is a union: re-running an unfinished task
// re-observes the same keys (dedup absorbs them), and the final size
// equals the uninterrupted run's.
func (s *store) seedPlans(keys [][32]byte) {
	for _, fp := range keys {
		s.plans.ObserveKey(fp)
	}
}

// seedFinding preloads one recovered finding without re-journaling it.
// Resume calls this only for findings of tasks whose Done checkpoint was
// recovered: an unfinished task re-runs from a clean per-task dedup space
// (its keys embed the task identity, so no other task is affected), which
// is what keeps MaxFindings counting — and therefore the finding set —
// byte-identical to an uninterrupted run.
func (s *store) seedFinding(f Finding) {
	key := f.fingerprint()
	if _, dup := s.seen[key]; dup {
		return
	}
	s.seen[key] = struct{}{}
	s.findings = append(s.findings, f)
}

// observePlan records the plan's structural fingerprint in the
// cross-engine set and reports whether it was globally new. Safe for
// concurrent use. The plan may be arena-backed and about to be reset —
// only its fingerprint (a fixed-size key) is retained, and only the key
// is journaled.
func (s *store) observePlan(p *core.Plan) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	fp := s.plans.Key(p)
	fresh := s.plans.ObserveKey(fp)
	if s.log != nil && fresh {
		if _, err := s.log.AppendPlan(fp); err != nil && s.logErr == nil {
			s.logErr = err
		}
	}
	return fresh
}

// distinctPlans is the size of the cross-engine plan set.
func (s *store) distinctPlans() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.plans.Size()
}

// add appends the finding unless an equivalent one was already recorded,
// reporting whether it was added. Because the dedup key embeds the
// (engine, oracle) pair — exactly one task per pair — dedup decisions
// never depend on cross-task scheduling: the store's final contents are a
// pure function of each task's sequential, seed-determined output, which
// is what makes the campaign's finding set identical at any worker count.
func (s *store) add(f Finding) bool {
	key := f.fingerprint()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.seen[key]; dup {
		return false
	}
	s.seen[key] = struct{}{}
	s.findings = append(s.findings, f)
	if s.log != nil {
		// The log's own index dedups too (a resumed task re-producing a
		// finding it journaled before the crash appends no second frame).
		if _, err := s.log.AppendFinding(pstore.Finding{
			Engine: f.Engine,
			Oracle: string(f.Oracle),
			Kind:   string(f.Kind),
			Query:  f.Query,
			Detail: f.Detail,
		}); err != nil && s.logErr == nil {
			s.logErr = err
		}
	}
	return true
}

// checkpoint writes a durable progress record through the log, capturing
// the first failure sticky. Reports whether the checkpoint was durably
// written.
func (s *store) checkpoint(p pstore.TaskProgress) bool {
	if s.log == nil {
		return false
	}
	err := s.log.Checkpoint(p)
	if err != nil {
		s.mu.Lock()
		if s.logErr == nil {
			s.logErr = err
		}
		s.mu.Unlock()
		return false
	}
	return true
}

// persistErr returns the sticky first persistence failure, if any.
func (s *store) persistErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logErr
}

// sorted snapshots the findings in canonical order (engine, oracle, kind,
// query, detail) — the byte-stable order Run returns.
func (s *store) sorted() []Finding {
	s.mu.Lock()
	out := append([]Finding(nil), s.findings...)
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		switch {
		case a.Engine != b.Engine:
			return a.Engine < b.Engine
		case a.Oracle != b.Oracle:
			return a.Oracle < b.Oracle
		case a.Kind != b.Kind:
			return a.Kind < b.Kind
		case a.Query != b.Query:
			return a.Query < b.Query
		default:
			return a.Detail < b.Detail
		}
	})
	return out
}

// fingerprint hashes the finding's dedup identity.
func (f Finding) fingerprint() uint64 {
	h := fnv.New64a()
	for _, part := range [...]string{f.Engine, string(f.Oracle), string(f.Kind), f.Detail} {
		h.Write([]byte(part))
		h.Write([]byte{0})
	}
	return h.Sum64()
}
