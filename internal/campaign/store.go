package campaign

import (
	"hash/fnv"
	"sort"
	"sync"

	"uplan/internal/core"
)

// store is the race-safe cross-engine finding store: every campaign task
// pushes its findings and observed plans here, from whichever worker
// goroutine happens to run it. Findings dedup on a fingerprint of
// (engine, oracle, kind, detail) — the key QPG's per-campaign store
// established, widened with the task identity — and plans dedup on their
// structural fingerprints in one shared core.FingerprintSet, giving the
// fleet-wide "how many distinct plan shapes did the whole campaign see"
// number no single-engine run can produce.
type store struct {
	mu       sync.Mutex
	plans    *core.FingerprintSet
	seen     map[uint64]struct{}
	findings []Finding
}

func newStore() *store {
	return &store{
		// The same structural options QPG uses for coverage: operations
		// plus configuration property names, never values, so the same
		// plan shape on two engines with different constants collapses.
		plans: core.NewFingerprintSet(core.FingerprintOptions{
			IncludeConfiguration: true,
		}),
		seen: map[uint64]struct{}{},
	}
}

// observePlan records the plan's structural fingerprint in the
// cross-engine set and reports whether it was globally new. Safe for
// concurrent use. The plan may be arena-backed and about to be reset —
// only its fingerprint (a fixed-size key) is retained.
func (s *store) observePlan(p *core.Plan) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.plans.Observe(p)
}

// distinctPlans is the size of the cross-engine plan set.
func (s *store) distinctPlans() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.plans.Size()
}

// add appends the finding unless an equivalent one was already recorded,
// reporting whether it was added. Because the dedup key embeds the
// (engine, oracle) pair — exactly one task per pair — dedup decisions
// never depend on cross-task scheduling: the store's final contents are a
// pure function of each task's sequential, seed-determined output, which
// is what makes the campaign's finding set identical at any worker count.
func (s *store) add(f Finding) bool {
	key := f.fingerprint()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.seen[key]; dup {
		return false
	}
	s.seen[key] = struct{}{}
	s.findings = append(s.findings, f)
	return true
}

// sorted snapshots the findings in canonical order (engine, oracle, kind,
// query, detail) — the byte-stable order Run returns.
func (s *store) sorted() []Finding {
	s.mu.Lock()
	out := append([]Finding(nil), s.findings...)
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		switch {
		case a.Engine != b.Engine:
			return a.Engine < b.Engine
		case a.Oracle != b.Oracle:
			return a.Oracle < b.Oracle
		case a.Kind != b.Kind:
			return a.Kind < b.Kind
		case a.Query != b.Query:
			return a.Query < b.Query
		default:
			return a.Detail < b.Detail
		}
	})
	return out
}

// fingerprint hashes the finding's dedup identity.
func (f Finding) fingerprint() uint64 {
	h := fnv.New64a()
	for _, part := range [...]string{f.Engine, string(f.Oracle), string(f.Kind), f.Detail} {
		h.Write([]byte(part))
		h.Write([]byte{0})
	}
	return h.Sum64()
}
