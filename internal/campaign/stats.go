package campaign

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// EngineStats aggregates one engine's campaign outcomes across every
// oracle that ran against it, in the style of pipeline.DialectStats.
type EngineStats struct {
	// Engine is the engine key ("postgresql", …).
	Engine string
	// Queries counts generated queries actually processed across the
	// engine's oracle tasks — less than the configured budget when a task
	// stopped early (MaxFindings reached, or a CERT task whose plan
	// format exposes no estimates).
	Queries int
	// Statements counts the statements the engine instances actually
	// executed (schema setup, oracle probes, EXPLAINs, mutations).
	Statements int
	// PlanQueries is the QPG share of the budget — queries whose unified
	// plan was observed through the arena-backed conversion path.
	PlanQueries int
	// NewPlans counts plan structures the engine's QPG campaign had not
	// seen before (its coverage signal).
	NewPlans int
	// DistinctPlans is the engine-local distinct plan structure count.
	DistinctPlans int
	// Mutations counts database mutations QPG applied when coverage
	// stalled.
	Mutations int
	// Checks counts CERT estimate comparisons performed.
	Checks int
	// Skipped counts skip-worthy probes: CERT pairs the engine could not
	// plan and TLP predicates naming columns the table lacks.
	Skipped int
	// Findings is how many deduplicated findings name this engine.
	Findings int
	// ByKind breaks Findings down by kind.
	ByKind map[Kind]int
}

// NewPlanRate is the engine's plan-coverage yield: newly seen plan
// structures per plan-observed query. High early, decaying as coverage
// plateaus — the signal QPG's mutation feedback loop keys on.
func (es *EngineStats) NewPlanRate() float64 {
	if es.PlanQueries == 0 {
		return 0
	}
	return float64(es.NewPlans) / float64(es.PlanQueries)
}

// OracleStats aggregates one oracle's campaign outcomes across every
// engine it ran against — the transpose of EngineStats. The counter set
// is the generic oracle.Counters vocabulary; technique-specific signals
// land in Extra under oracle-chosen names, so the orchestrator never
// grows per-oracle fields.
type OracleStats struct {
	// Oracle is the oracle's registry name ("qpg", …).
	Oracle string
	// Queries counts generated queries the oracle's tasks processed.
	Queries int
	// Statements counts statements its engine instances executed.
	Statements int
	// PlanQueries, NewPlans, DistinctPlans, Mutations, Checks, and Skipped
	// mirror the generic per-task counters (see oracle.Counters); an
	// oracle leaves the ones it has no use for at zero.
	PlanQueries   int
	NewPlans      int
	DistinctPlans int
	Mutations     int
	Checks        int
	Skipped       int
	// Findings is how many deduplicated findings this oracle produced.
	Findings int
	// ByKind breaks Findings down by kind.
	ByKind map[Kind]int
	// Extra sums the oracle-owned named counters its tasks reported (the
	// bounds oracle's "unbounded" and "no-estimate"). Nil when the oracle
	// reported none.
	Extra map[string]int
}

// Stats aggregates a whole campaign run.
type Stats struct {
	// Queries, Statements, and Findings total the per-engine counts.
	Queries    int
	Statements int
	Findings   int
	// DistinctPlans is the cross-engine distinct plan structure count from
	// the shared store (not the sum of the per-engine counts: the same
	// shape on two engines counts once).
	DistinctPlans int
	// Elapsed is the wall time of the whole fan-out.
	Elapsed time.Duration
	// Engines holds the per-engine aggregates, keyed by engine.
	Engines map[string]*EngineStats
	// Oracles holds the per-oracle aggregates, keyed by oracle name.
	Oracles map[string]*OracleStats
}

// QueriesPerSec is the fleet's generated-query throughput over the run's
// wall time. Zero before the run finishes.
func (s Stats) QueriesPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Queries) / s.Elapsed.Seconds()
}

// StatementsPerSec is the fleet's executed-statement throughput.
func (s Stats) StatementsPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Statements) / s.Elapsed.Seconds()
}

// ByEngine returns the per-engine aggregates sorted by engine name.
func (s Stats) ByEngine() []*EngineStats {
	out := make([]*EngineStats, 0, len(s.Engines))
	for _, es := range s.Engines {
		out = append(out, es)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Engine < out[j].Engine })
	return out
}

// ByOracle returns the per-oracle aggregates in canonical registry
// order (unknown names, if any, after the registered ones, sorted).
func (s Stats) ByOracle() []*OracleStats {
	out := make([]*OracleStats, 0, len(s.Oracles))
	seen := map[string]bool{}
	for _, name := range AllOracles() {
		if os := s.Oracles[name]; os != nil {
			out = append(out, os)
			seen[name] = true
		}
	}
	rest := make([]*OracleStats, 0, len(s.Oracles))
	for name, os := range s.Oracles {
		if !seen[name] {
			rest = append(rest, os)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].Oracle < rest[j].Oracle })
	return append(out, rest...)
}

// engineStats returns (creating if needed) the aggregate for an engine.
func (s *Stats) engineStats(engine string) *EngineStats {
	es := s.Engines[engine]
	if es == nil {
		es = &EngineStats{Engine: engine, ByKind: map[Kind]int{}}
		s.Engines[engine] = es
	}
	return es
}

// oracleStats returns (creating if needed) the aggregate for an oracle.
func (s *Stats) oracleStats(name string) *OracleStats {
	if s.Oracles == nil {
		s.Oracles = map[string]*OracleStats{}
	}
	os := s.Oracles[name]
	if os == nil {
		os = &OracleStats{Oracle: name, ByKind: map[Kind]int{}}
		s.Oracles[name] = os
	}
	return os
}

// String renders the stats as a fixed-width per-engine table with a totals
// row, in the style of pipeline.Stats.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %8s %8s %7s %5s %7s %6s %6s %9s\n",
		"engine", "queries", "stmts", "newplans", "plans", "mut", "checks", "skip", "finds", "plan-rate")
	for _, es := range s.ByEngine() {
		fmt.Fprintf(&b, "%-12s %8d %8d %8d %7d %5d %7d %6d %6d %9.3f\n",
			es.Engine, es.Queries, es.Statements, es.NewPlans, es.DistinctPlans,
			es.Mutations, es.Checks, es.Skipped, es.Findings, es.NewPlanRate())
	}
	fmt.Fprintf(&b, "%-12s %8d %8d %8s %7d %5s %7s %6s %6d   (%.3fs, %.0f q/s)\n",
		"total", s.Queries, s.Statements, "", s.DistinctPlans, "", "", "", s.Findings,
		s.Elapsed.Seconds(), s.QueriesPerSec())
	if len(s.Oracles) > 0 {
		fmt.Fprintf(&b, "%-12s %8s %8s %7s %6s %6s  %s\n",
			"oracle", "queries", "checks", "skipped", "finds", "", "extra")
		for _, os := range s.ByOracle() {
			extra := ""
			if len(os.Extra) > 0 {
				keys := make([]string, 0, len(os.Extra))
				for k := range os.Extra {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				parts := make([]string, 0, len(keys))
				for _, k := range keys {
					parts = append(parts, fmt.Sprintf("%s=%d", k, os.Extra[k]))
				}
				extra = strings.Join(parts, " ")
			}
			fmt.Fprintf(&b, "%-12s %8d %8d %7d %6d %6s  %s\n",
				os.Oracle, os.Queries, os.Checks, os.Skipped, os.Findings, "", extra)
		}
	}
	return b.String()
}
