package campaign

import (
	"strings"
	"testing"

	pstore "uplan/internal/store"
)

// TestUnknownOracleRefusedUpFront pins the validation contract: a typo in
// Options.Oracles fails the whole run before any task executes — no
// partial result, no stats, and, with a store attached, no config stamp
// that would poison a later correctly-spelled run.
func TestUnknownOracleRefusedUpFront(t *testing.T) {
	opts := testOptions(1)
	opts.Engines = []string{"sqlite"}
	opts.Oracles = []Oracle{OracleQPG, "certt"}
	progressed := 0
	opts.OnProgress = func(pstore.TaskProgress) { progressed++ }

	res, err := Run(opts)
	if err == nil {
		t.Fatal("unknown oracle must fail the run")
	}
	if !strings.Contains(err.Error(), `unknown oracle "certt"`) {
		t.Fatalf("error must name the bad oracle: %v", err)
	}
	if !strings.Contains(err.Error(), OracleBounds) {
		t.Fatalf("error must list the registered oracles: %v", err)
	}
	if res != nil {
		t.Fatalf("refusal must not produce a partial result: %+v", res)
	}
	if progressed != 0 {
		t.Fatalf("%d tasks progressed before validation", progressed)
	}

	// With a store attached the refusal must come before the config stamp:
	// the same directory must still accept a correctly-spelled run.
	dir := t.TempDir()
	log := mustOpenLog(t, dir)
	opts.Store = log
	if _, err := Run(opts); err == nil {
		t.Fatal("unknown oracle must fail a store-backed run too")
	}
	opts.Oracles = []Oracle{OracleQPG}
	opts.Queries = 5
	if _, err := Run(opts); err != nil {
		t.Fatalf("store was poisoned by the refused run: %v", err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCampaignResumeOracleSetChange pins the resume guard for the oracle
// half of the configuration: adding or removing an oracle between the
// original run and the resume changes the config stamp and must be
// refused, while resuming with the identical set succeeds.
func TestCampaignResumeOracleSetChange(t *testing.T) {
	base := storeOptions(2)
	base.Engines = []string{"sqlite", "mysql"}
	base.Oracles = []Oracle{OracleQPG, OracleCERT, OracleBounds}
	base.Queries = 5

	dir := t.TempDir()
	log := mustOpenLog(t, dir)
	opts := base
	opts.Store = log
	if _, err := Run(opts); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	cases := map[string][]Oracle{
		"added":     {OracleQPG, OracleCERT, OracleBounds, OracleTLP},
		"removed":   {OracleQPG, OracleCERT},
		"reordered": {OracleCERT, OracleQPG, OracleBounds},
	}
	for name, oracles := range cases {
		log := mustOpenLog(t, dir)
		opts := base
		opts.Store = log
		opts.Resume = true
		opts.Oracles = oracles
		if _, err := Run(opts); err == nil || !strings.Contains(err.Error(), "config stamp") {
			t.Errorf("%s oracle set must be refused on resume, got %v", name, err)
		}
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// The identical set still resumes (and replays without re-running).
	log = mustOpenLog(t, dir)
	opts = base
	opts.Store = log
	opts.Resume = true
	reran := 0
	opts.OnProgress = func(pstore.TaskProgress) { reran++ }
	if _, err := Run(opts); err != nil {
		t.Fatalf("identical oracle set must resume: %v", err)
	}
	if reran != 0 {
		t.Errorf("replay of a finished run re-ran %d tasks", reran)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCampaignOracleStats pins the per-oracle aggregation: every
// configured oracle gets an aggregate, their query counts sum to the
// fleet total, and the bounds oracle's named extra counters surface.
func TestCampaignOracleStats(t *testing.T) {
	opts := testOptions(2)
	opts.Engines = []string{"postgresql", "sqlite"}
	opts.Queries = 10
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.Stats.Oracles), len(AllOracles()); got != want {
		t.Fatalf("Oracles has %d entries, want %d", got, want)
	}
	sum := 0
	for _, name := range AllOracles() {
		os := res.Stats.Oracles[name]
		if os == nil {
			t.Fatalf("no aggregate for oracle %q", name)
		}
		if os.Oracle != name {
			t.Errorf("aggregate for %q names itself %q", name, os.Oracle)
		}
		sum += os.Queries
	}
	if sum != res.Stats.Queries {
		t.Errorf("per-oracle queries sum %d != fleet total %d", sum, res.Stats.Queries)
	}
	bo := res.Stats.Oracles[OracleBounds]
	if bo.Queries == 0 {
		t.Error("bounds oracle processed no queries")
	}
	// sqlite exposes no estimates, so the bounds task there must have
	// counted no-estimate skips under its named extra counter.
	if bo.Extra["no-estimate"] == 0 {
		t.Errorf("bounds extra counters missing no-estimate skips: %+v", bo.Extra)
	}
	if order := res.Stats.ByOracle(); len(order) != len(AllOracles()) || order[0].Oracle != OracleQPG {
		t.Errorf("ByOracle order wrong: %+v", order)
	}
}
