package pipeline

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"uplan/internal/core"
)

// DialectStats aggregates one dialect's conversion outcomes.
type DialectStats struct {
	// Dialect is the lowercased engine key the records carried.
	Dialect string
	// Records is the number of records processed (Converted + Errors).
	Records int
	// Converted counts successful conversions.
	Converted int
	// Errors counts failures: unknown dialect or unparsable plan.
	Errors int
	// FirstError samples the first failure seen for the dialect.
	FirstError error
	// Operations is the merged operation histogram of every converted
	// plan, keyed by the paper's seven categories.
	Operations core.CategoryHistogram
}

// Stats aggregates a pipeline run.
type Stats struct {
	// Records, Converted, and Errors total the per-dialect counts.
	Records   int
	Converted int
	Errors    int
	// Elapsed is the wall time from pipeline start until the last worker
	// finished.
	Elapsed time.Duration
	// Dialects holds the per-dialect aggregates, keyed by lowercased
	// dialect.
	Dialects map[string]*DialectStats
}

// merge folds one worker's local aggregate for a dialect into s.
func (s *Stats) merge(key string, ds *DialectStats) {
	tot := s.Dialects[key]
	if tot == nil {
		tot = &DialectStats{Dialect: key, Operations: core.CategoryHistogram{}}
		s.Dialects[key] = tot
	}
	tot.Records += ds.Records
	tot.Converted += ds.Converted
	tot.Errors += ds.Errors
	if tot.FirstError == nil {
		tot.FirstError = ds.FirstError
	}
	for cat, n := range ds.Operations {
		tot.Operations[cat] += n
	}
	s.Records += ds.Records
	s.Converted += ds.Converted
	s.Errors += ds.Errors
}

// clone deep-copies s so snapshots are isolated from later merges.
func (s Stats) clone() Stats {
	out := s
	out.Dialects = make(map[string]*DialectStats, len(s.Dialects))
	for k, ds := range s.Dialects {
		cp := *ds
		cp.Operations = core.CategoryHistogram{}
		for cat, n := range ds.Operations {
			cp.Operations[cat] += n
		}
		out.Dialects[k] = &cp
	}
	return out
}

// PlansPerSec is the overall conversion throughput: converted plans per
// second of wall time. Zero before the run finishes.
func (s Stats) PlansPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Converted) / s.Elapsed.Seconds()
}

// DialectPlansPerSec is one dialect's share of the throughput over the
// run's wall time.
func (s Stats) DialectPlansPerSec(dialect string) float64 {
	ds, ok := s.Dialects[strings.ToLower(dialect)]
	if !ok || s.Elapsed <= 0 {
		return 0
	}
	return float64(ds.Converted) / s.Elapsed.Seconds()
}

// Report is the machine-readable snapshot of a pipeline run, used by
// benchmark tooling (uplan-bench -out) to record the perf trajectory.
type Report struct {
	Records        int             `json:"records"`
	Converted      int             `json:"converted"`
	Errors         int             `json:"errors"`
	ElapsedSeconds float64         `json:"elapsed_seconds"`
	PlansPerSec    float64         `json:"plans_per_sec"`
	Dialects       []DialectReport `json:"dialects"`
}

// DialectReport is one dialect's share of a Report.
type DialectReport struct {
	Dialect     string             `json:"dialect"`
	Records     int                `json:"records"`
	Converted   int                `json:"converted"`
	Errors      int                `json:"errors"`
	PlansPerSec float64            `json:"plans_per_sec"`
	FirstError  string             `json:"first_error,omitempty"`
	Operations  map[string]float64 `json:"operations,omitempty"`
}

// Report renders the stats as a JSON-friendly snapshot.
func (s Stats) Report() Report {
	r := Report{
		Records:        s.Records,
		Converted:      s.Converted,
		Errors:         s.Errors,
		ElapsedSeconds: s.Elapsed.Seconds(),
		PlansPerSec:    s.PlansPerSec(),
	}
	for _, ds := range s.ByDialect() {
		dr := DialectReport{
			Dialect:     ds.Dialect,
			Records:     ds.Records,
			Converted:   ds.Converted,
			Errors:      ds.Errors,
			PlansPerSec: s.DialectPlansPerSec(ds.Dialect),
		}
		if ds.FirstError != nil {
			dr.FirstError = ds.FirstError.Error()
		}
		if len(ds.Operations) > 0 {
			dr.Operations = make(map[string]float64, len(ds.Operations))
			for cat, n := range ds.Operations {
				dr.Operations[string(cat)] = n
			}
		}
		r.Dialects = append(r.Dialects, dr)
	}
	return r
}

// ByDialect returns the per-dialect aggregates sorted by dialect name.
func (s Stats) ByDialect() []*DialectStats {
	out := make([]*DialectStats, 0, len(s.Dialects))
	for _, ds := range s.Dialects {
		out = append(out, ds)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dialect < out[j].Dialect })
	return out
}

// String renders the stats as a fixed-width per-dialect table with a
// totals row, in the spirit of the paper's category tables.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %8s %7s %10s %8s\n",
		"dialect", "records", "plans", "errors", "plans/s", "ops")
	for _, ds := range s.ByDialect() {
		fmt.Fprintf(&b, "%-12s %8d %8d %7d %10.0f %8.0f\n",
			ds.Dialect, ds.Records, ds.Converted, ds.Errors,
			s.DialectPlansPerSec(ds.Dialect), ds.Operations.Sum())
	}
	fmt.Fprintf(&b, "%-12s %8d %8d %7d %10.0f   (%.3fs)\n",
		"total", s.Records, s.Converted, s.Errors, s.PlansPerSec(),
		s.Elapsed.Seconds())
	return b.String()
}
