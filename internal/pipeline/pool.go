package pipeline

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEachChunked is the chunked-dispatch worker-pool core that ConvertBatch
// pioneered, extracted so other fan-out subsystems (the campaign
// orchestrator) reuse the same pattern: workers claim chunk-sized,
// half-open index ranges [lo, hi) covering [0, n) through an atomic
// cursor — no channels, no per-item synchronization — and each worker
// carries a private state value S for its whole lifetime (converter
// caches, arenas, local stat aggregates).
//
// newState builds one S per worker that runs; body processes one claimed
// range and runs sequentially within its worker; drain is called exactly
// once per worker, serialized under an internal mutex, so per-worker
// aggregates merge into shared totals race-free.
//
// The pool is bounded: the worker count is clamped to the chunk count and
// to GOMAXPROCS (the workloads are CPU-bound — goroutines beyond the
// schedulable cores only add overhead), and a single-worker pool runs
// inline on the calling goroutine. ForEachChunked returns once every index
// has been processed and every drain has completed.
func ForEachChunked[S any](n, workers, chunk int, newState func() S, body func(s S, lo, hi int), drain func(s S)) {
	ForEachChunkedCtx(context.Background(), n, workers, chunk, newState, body, drain)
}

// ForEachChunkedCtx is ForEachChunked with cooperative cancellation: once
// ctx is done, workers stop claiming new chunks. The chunk a worker is
// mid-way through still completes (the pool cannot preempt a body; bodies
// that run long should watch ctx themselves), every started worker still
// drains, and the call returns only when all workers have exited — so
// aggregates stay consistent even on a cancelled run. Indexes not yet
// claimed at cancellation are simply never processed; the caller decides
// what an unprocessed index means (the campaign orchestrator checkpoints
// them as unfinished, ConvertBatch marks them with ctx's error).
func ForEachChunkedCtx[S any](ctx context.Context, n, workers, chunk int, newState func() S, body func(s S, lo, hi int), drain func(s S)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = 1
	}
	nChunks := (n + chunk - 1) / chunk
	if workers > nChunks {
		workers = nChunks
	}
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	if workers <= 1 {
		s := newState()
		// Chunk-at-a-time even inline, so cancellation has the same
		// granularity a pooled run gets.
		for lo := 0; lo < n && ctx.Err() == nil; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			body(s, lo, hi)
		}
		drain(s)
		return
	}
	var (
		cursor atomic.Int64
		mu     sync.Mutex
		wg     sync.WaitGroup
	)
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			s := newState()
			for ctx.Err() == nil {
				hi := int(cursor.Add(int64(chunk)))
				lo := hi - chunk
				if lo >= n {
					break
				}
				if hi > n {
					hi = n
				}
				body(s, lo, hi)
			}
			mu.Lock()
			drain(s)
			mu.Unlock()
		}()
	}
	wg.Wait()
}
