package pipeline

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEachChunked is the chunked-dispatch worker-pool core that ConvertBatch
// pioneered, extracted so other fan-out subsystems (the campaign
// orchestrator) reuse the same pattern: workers claim chunk-sized,
// half-open index ranges [lo, hi) covering [0, n) through an atomic
// cursor — no channels, no per-item synchronization — and each worker
// carries a private state value S for its whole lifetime (converter
// caches, arenas, local stat aggregates).
//
// newState builds one S per worker that runs; body processes one claimed
// range and runs sequentially within its worker; drain is called exactly
// once per worker, serialized under an internal mutex, so per-worker
// aggregates merge into shared totals race-free.
//
// The pool is bounded: the worker count is clamped to the chunk count and
// to GOMAXPROCS (the workloads are CPU-bound — goroutines beyond the
// schedulable cores only add overhead), and a single-worker pool runs
// inline on the calling goroutine. ForEachChunked returns once every index
// has been processed and every drain has completed.
func ForEachChunked[S any](n, workers, chunk int, newState func() S, body func(s S, lo, hi int), drain func(s S)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = 1
	}
	nChunks := (n + chunk - 1) / chunk
	if workers > nChunks {
		workers = nChunks
	}
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	if workers <= 1 {
		s := newState()
		body(s, 0, n)
		drain(s)
		return
	}
	var (
		cursor atomic.Int64
		mu     sync.Mutex
		wg     sync.WaitGroup
	)
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			s := newState()
			for {
				hi := int(cursor.Add(int64(chunk)))
				lo := hi - chunk
				if lo >= n {
					break
				}
				if hi > n {
					hi = n
				}
				body(s, lo, hi)
			}
			mu.Lock()
			drain(s)
			mu.Unlock()
		}()
	}
	wg.Wait()
}
