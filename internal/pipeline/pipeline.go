// Package pipeline implements UPlan's concurrent batch-conversion
// subsystem: a worker-pool fan-out that consumes a stream of (dialect,
// serialized-plan) records over bounded channels, converts each record to
// the unified representation, and aggregates per-dialect statistics
// (throughput, parse errors, merged operation histograms).
//
// Two entry points:
//
//   - ConvertBatch converts a slice of records and returns results indexed
//     like the input plus the aggregate stats — the corpus-at-once API.
//   - New returns a streaming Pipeline: Submit records from any number of
//     goroutines, read Results as they complete (optionally in submission
//     order), Close once every Submit has returned, then read Stats.
//
// Each worker keeps one converter per dialect for its lifetime, and all
// workers share a single registry, so a batch of n records performs n
// parses — not n registry constructions, which is what the one-shot
// convert.Convert path costs. Name resolution inside the workers reads
// the registry's immutable snapshot (see core.Registry), so workers never
// serialize on a registry lock even while a client concurrently registers
// new keywords.
package pipeline

import (
	"runtime"
	"strings"
	"sync"
	"time"

	"uplan/internal/convert"
	"uplan/internal/core"
)

// Record is one unit of work: a serialized plan tagged with its dialect.
type Record struct {
	// Dialect is the engine key ("postgresql", …); case-insensitive.
	Dialect string
	// Serialized is the native EXPLAIN output to convert.
	Serialized string
}

// Result pairs a record with its conversion outcome. Exactly one of Plan
// and Err is non-nil.
type Result struct {
	// Seq is the record's 0-based submission sequence number. ConvertBatch
	// results are indexed by it; streaming ordered mode emits in Seq order.
	Seq    int
	Record Record
	Plan   *core.Plan
	Err    error
}

// Options configures a Pipeline.
type Options struct {
	// Workers is the number of concurrent conversion workers.
	// Non-positive values use GOMAXPROCS.
	Workers int
	// Buffer is the capacity of the bounded input and output channels.
	// Non-positive values use 2×Workers.
	Buffer int
	// Ordered, when true, emits results in submission (Seq) order; a small
	// reorder buffer holds results that complete ahead of their turn.
	// When false, results are emitted as workers finish them.
	Ordered bool
	// Registry backs the workers' converters. Nil uses the process-wide
	// shared default registry (convert.SharedRegistry).
	Registry *core.Registry
}

// withDefaults resolves zero values to the documented defaults.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Buffer <= 0 {
		o.Buffer = 2 * o.Workers
	}
	return o
}

// job is a sequenced record travelling from Submit to a worker.
type job struct {
	seq int
	rec Record
}

// Pipeline is a running worker pool. Create with New; the zero value is
// not usable.
type Pipeline struct {
	opts Options

	seqMu sync.Mutex
	seq   int

	in  chan job
	out chan Result

	workers sync.WaitGroup

	statsMu sync.Mutex
	stats   Stats
	start   time.Time
}

// New starts a pipeline's workers and returns it. The caller must consume
// Results (the output channel is bounded; workers block when it fills)
// and must Close the pipeline once every Submit has returned.
func New(opts Options) *Pipeline {
	opts = opts.withDefaults()
	p := &Pipeline{
		opts:  opts,
		in:    make(chan job, opts.Buffer),
		out:   make(chan Result, opts.Buffer),
		start: time.Now(),
	}
	p.stats.Dialects = map[string]*DialectStats{}

	reg := opts.Registry
	if reg == nil {
		reg = convert.SharedRegistry()
	}

	// Workers send to sink; the closer routes sink into out, reordering
	// when requested.
	sink := p.out
	if opts.Ordered {
		sink = make(chan Result, opts.Buffer)
		go p.reorder(sink)
	}
	p.workers.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go p.worker(reg, sink)
	}
	go func() {
		p.workers.Wait()
		p.statsMu.Lock()
		p.stats.Elapsed = time.Since(p.start)
		p.statsMu.Unlock()
		// In ordered mode closing sink ends the reorder goroutine, which
		// flushes and closes out; otherwise sink is out.
		close(sink)
	}()
	return p
}

// Submit enqueues one record and returns its sequence number, blocking
// while the input buffer is full. Submit is safe for concurrent use from
// multiple goroutines; calling it after Close panics.
func (p *Pipeline) Submit(rec Record) int {
	p.seqMu.Lock()
	seq := p.seq
	p.seq++
	p.seqMu.Unlock()
	p.in <- job{seq: seq, rec: rec}
	return seq
}

// Close signals that no further records will be submitted. It must be
// called exactly once, after every Submit has returned; workers drain the
// remaining input and then the Results channel closes.
func (p *Pipeline) Close() { close(p.in) }

// Results returns the output channel. It closes after Close once every
// submitted record's result has been emitted.
func (p *Pipeline) Results() <-chan Result { return p.out }

// Stats returns a snapshot of the aggregate statistics. Workers fold
// their local aggregates in when they finish, so the snapshot is complete
// once Results has closed (or been fully drained); mid-run it only
// reflects workers that have already exited.
func (p *Pipeline) Stats() Stats {
	p.statsMu.Lock()
	defer p.statsMu.Unlock()
	return p.stats.clone()
}

// worker converts jobs until the input closes. It builds at most one
// converter per dialect for its lifetime and aggregates stats locally,
// merging them into the pipeline once on exit so the shared mutex is
// touched once per worker, not once per record.
func (p *Pipeline) worker(reg *core.Registry, sink chan<- Result) {
	defer p.workers.Done()

	type entry struct {
		conv convert.Converter
		err  error
	}
	convs := map[string]*entry{}
	local := map[string]*DialectStats{}

	for j := range p.in {
		key := strings.ToLower(j.rec.Dialect)
		e, ok := convs[key]
		if !ok {
			c, err := convert.For(key, reg)
			e = &entry{conv: c, err: err}
			convs[key] = e
		}

		res := Result{Seq: j.seq, Record: j.rec}
		if e.err != nil {
			res.Err = e.err
		} else {
			res.Plan, res.Err = e.conv.Convert(j.rec.Serialized)
		}

		ds := local[key]
		if ds == nil {
			ds = &DialectStats{Dialect: key, Operations: core.CategoryHistogram{}}
			local[key] = ds
		}
		ds.Records++
		if res.Err != nil {
			ds.Errors++
			if ds.FirstError == nil {
				ds.FirstError = res.Err
			}
		} else {
			ds.Converted++
			for cat, n := range res.Plan.Histogram() {
				ds.Operations[cat] += n
			}
		}
		sink <- res
	}

	p.statsMu.Lock()
	for key, ds := range local {
		p.stats.merge(key, ds)
	}
	p.statsMu.Unlock()
}

// reorder buffers out-of-order results and releases them in Seq order.
// Sequence numbers are dense (every Submit produces exactly one result),
// so the pending map fully drains by the time in closes.
func (p *Pipeline) reorder(in <-chan Result) {
	pending := map[int]Result{}
	next := 0
	for r := range in {
		pending[r.Seq] = r
		for {
			nr, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			p.out <- nr
		}
	}
	close(p.out)
}

// ConvertBatch converts records through a temporary pipeline and returns
// the results indexed like the input (results[i] is records[i]'s outcome)
// plus the aggregate statistics. Per-record failures — unknown dialects,
// malformed plans — are reported in the matching Result.Err and counted
// in the stats; they do not stop the batch.
func ConvertBatch(records []Record, opts Options) ([]Result, Stats) {
	// Results land at their sequence index, so the reorder buffer of
	// ordered mode would be pure overhead here.
	opts.Ordered = false
	p := New(opts)
	go func() {
		for _, r := range records {
			p.Submit(r)
		}
		p.Close()
	}()
	out := make([]Result, len(records))
	for r := range p.Results() {
		out[r.Seq] = r
	}
	return out, p.Stats()
}
